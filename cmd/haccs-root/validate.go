package main

import (
	"fmt"
)

// rootFlags collects the flag values subject to validation, so the
// checks can be exercised by tests without spawning the binary
// (mirrors cmd/haccs-sim's validateFlags pattern).
type rootFlags struct {
	Listen          string
	Shards          int
	Rounds          int
	K               int
	Deadline        float64
	Mode            string
	BufferK         int
	MaxStaleness    int
	ResyncEvery     int
	ParamDim        int
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	LocalClients    int
	HTTP            string
}

// validateFlags rejects configurations that would misbehave deep in
// the runtime. The caller prints the error and exits with status 2.
func validateFlags(f rootFlags) error {
	if f.Listen == "" {
		return fmt.Errorf("-listen must not be empty")
	}
	if f.Shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", f.Shards)
	}
	positive := []struct {
		name string
		v    int
	}{
		{"-rounds", f.Rounds},
		{"-k", f.K},
		{"-param-dim", f.ParamDim},
	}
	for _, p := range positive {
		if p.v <= 0 {
			return fmt.Errorf("%s must be positive (got %d)", p.name, p.v)
		}
	}
	if f.Deadline < 0 {
		return fmt.Errorf("-deadline must be >= 0 (got %v)", f.Deadline)
	}
	switch f.Mode {
	case "sync":
		// Deadline is meaningful; nothing more to check.
	case "async":
		if f.Deadline != 0 {
			return fmt.Errorf("-deadline must be 0 in async mode (got %v)", f.Deadline)
		}
		if f.BufferK < 0 || f.MaxStaleness < 0 || f.ResyncEvery < 0 {
			return fmt.Errorf("async tuning flags must be >= 0")
		}
	default:
		return fmt.Errorf("-mode must be sync or async (got %q)", f.Mode)
	}
	if f.CheckpointDir != "" && f.CheckpointEvery <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive with -checkpoint-dir (got %d)", f.CheckpointEvery)
	}
	if f.Resume && f.CheckpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if f.LocalClients < 0 {
		return fmt.Errorf("-local-clients must be >= 0 (got %d)", f.LocalClients)
	}
	if f.LocalClients > 0 {
		if f.LocalClients < f.Shards {
			return fmt.Errorf("-local-clients (%d) must cover every shard (-shards %d)", f.LocalClients, f.Shards)
		}
		if f.K > f.LocalClients {
			return fmt.Errorf("-k (%d) cannot exceed -local-clients (%d)", f.K, f.LocalClients)
		}
	}
	return nil
}
