package main

import (
	"strings"
	"testing"
)

func validRootFlags() rootFlags {
	return rootFlags{
		Listen: "127.0.0.1:0", Shards: 2, Rounds: 10, K: 8,
		Deadline: 0, Mode: "sync", ParamDim: 64,
		CheckpointEvery: 1, LocalClients: 40, HTTP: "",
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*rootFlags)
		wantErr string
	}{
		{"valid", func(f *rootFlags) {}, ""},
		{"empty listen", func(f *rootFlags) { f.Listen = "" }, "-listen"},
		{"zero shards", func(f *rootFlags) { f.Shards = 0 }, "-shards"},
		{"zero rounds", func(f *rootFlags) { f.Rounds = 0 }, "-rounds"},
		{"zero k", func(f *rootFlags) { f.K = 0 }, "-k"},
		{"zero param dim", func(f *rootFlags) { f.ParamDim = 0 }, "-param-dim"},
		{"negative deadline", func(f *rootFlags) { f.Deadline = -1 }, "-deadline"},
		{"bad mode", func(f *rootFlags) { f.Mode = "turbo" }, "-mode"},
		{"async with deadline", func(f *rootFlags) { f.Mode = "async"; f.Deadline = 5 }, "-deadline"},
		{"async valid", func(f *rootFlags) { f.Mode = "async" }, ""},
		{"checkpoint cadence", func(f *rootFlags) { f.CheckpointDir = "/tmp/x"; f.CheckpointEvery = 0 }, "-checkpoint-every"},
		{"resume without dir", func(f *rootFlags) { f.Resume = true }, "-resume"},
		{"negative local clients", func(f *rootFlags) { f.LocalClients = -1 }, "-local-clients"},
		{"fewer clients than shards", func(f *rootFlags) { f.LocalClients = 1 }, "-local-clients"},
		{"k over local clients", func(f *rootFlags) { f.K = 100 }, "-k"},
		{"external agents skip k bound", func(f *rootFlags) { f.LocalClients = 0; f.K = 100 }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := validRootFlags()
			c.mutate(&f)
			err := validateFlags(f)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// TestRunLocalHierarchyWithResume drives the self-contained mode end
// to end twice against one checkpoint directory: the first invocation
// checkpoints every round, the second resumes from the latest snapshot
// and continues the round sequence — the process-restart recovery path
// the shard-smoke CI job exercises through the built binary.
func TestRunLocalHierarchyWithResume(t *testing.T) {
	f := validRootFlags()
	f.Rounds = 3
	f.K = 6
	f.LocalClients = 24
	f.CheckpointDir = t.TempDir()
	if err := run(f, 7); err != nil {
		t.Fatalf("first run: %v", err)
	}
	f.Resume = true
	f.Rounds = 6
	if err := run(f, 7); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
}

func TestRunAsyncLocalHierarchy(t *testing.T) {
	f := validRootFlags()
	f.Mode = "async"
	f.Rounds = 4
	f.K = 6
	f.LocalClients = 20
	f.BufferK = 2
	f.ResyncEvery = 2
	if err := run(f, 11); err != nil {
		t.Fatalf("async run: %v", err)
	}
}
