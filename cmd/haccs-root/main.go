// Command haccs-root runs the root aggregator of the hierarchical
// (sharded) coordination topology: it listens for shard coordinator
// agents on -listen, computes the heterogeneity-aware θ-budget plan
// from their Hello representatives, drives hierarchical FedAvg rounds
// over them, and serves the merged observability endpoints (/metrics,
// /debug/shards, /debug/fleet?shard=).
//
// With -checkpoint-dir the root persists its run state on cadence;
// restarting with -resume picks the latest snapshot and continues the
// round sequence after the shards re-register — the crash-recovery
// path the scale harness exercises under load.
//
// With -local-clients N the process additionally spawns the whole
// hierarchy below itself — -shards in-process shard coordinators, the
// consistent-hash partition of N synthetic clients, and the uplink
// agents — which makes a single invocation a self-contained smoke of
// the full shard wire protocol over loopback TCP:
//
//	haccs-root -shards 2 -local-clients 80 -k 8 -rounds 6 \
//	    -checkpoint-dir /tmp/root-ckpt
//	haccs-root -shards 2 -local-clients 80 -k 8 -rounds 12 \
//	    -checkpoint-dir /tmp/root-ckpt -resume   # continues at round 6
//
// Without -local-clients the root waits for -shards external agents.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"haccs/internal/checkpoint"
	"haccs/internal/fleet"
	"haccs/internal/flnet"
	"haccs/internal/loadgen"
	"haccs/internal/rounds"
	"haccs/internal/shard"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:0", "address the root listens on for shard agents")
		shards       = flag.Int("shards", 2, "number of shard coordinators to accept before starting")
		roundsN      = flag.Int("rounds", 20, "total rounds to drive (a resumed root continues up to this index)")
		k            = flag.Int("k", 16, "global per-round selection budget")
		deadline     = flag.Float64("deadline", 0, "sync straggler deadline in virtual seconds (0 = none)")
		mode         = flag.String("mode", "sync", "round runtime: sync | async")
		bufferK      = flag.Int("buffer-k", 0, "async: shard-local aggregation buffer size (0 = k/2)")
		maxStale     = flag.Int("max-staleness", 0, "async: drop shard flushes staler than this many versions (0 = unbounded)")
		resyncEvery  = flag.Int("resync-every", 0, "async: push a fresh global base to shards every N cycles (0 = every cycle)")
		paramDim     = flag.Int("param-dim", 256, "global parameter vector length")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for root snapshots (empty = no checkpointing)")
		ckptEvery    = flag.Int("checkpoint-every", 1, "rounds between snapshots")
		resume       = flag.Bool("resume", false, "restore the latest snapshot from -checkpoint-dir and continue")
		localClients = flag.Int("local-clients", 0, "spawn this many synthetic clients across in-process shard coordinators (0 = wait for external agents)")
		httpAddr     = flag.String("http", "127.0.0.1:0", "observability endpoint address (empty = disabled)")
		seed         = flag.Uint64("seed", 42, "root random seed (selection and the local fleet)")
	)
	flag.Parse()

	f := rootFlags{
		Listen: *listen, Shards: *shards, Rounds: *roundsN, K: *k,
		Deadline: *deadline, Mode: *mode, BufferK: *bufferK,
		MaxStaleness: *maxStale, ResyncEvery: *resyncEvery, ParamDim: *paramDim,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *resume,
		LocalClients: *localClients, HTTP: *httpAddr,
	}
	if err := validateFlags(f); err != nil {
		fmt.Fprintln(os.Stderr, "haccs-root:", err)
		os.Exit(2)
	}
	if err := run(f, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "haccs-root:", err)
		os.Exit(1)
	}
}

func run(f rootFlags, seed uint64) error {
	rootSrv, err := shard.NewRootServer(f.Listen)
	if err != nil {
		return err
	}
	defer rootSrv.Shutdown()
	fmt.Println("haccs-root: listening on", rootSrv.Addr())

	reg := telemetry.NewRegistry()
	var fleetReg *fleet.Registry

	// Self-contained mode: the whole hierarchy below the root runs
	// in-process — shard coordinators over their ring slices, a routed
	// synthetic fleet, and the uplink agents.
	var local *localHierarchy
	if f.LocalClients > 0 {
		fleetReg = fleet.NewRegistry(f.LocalClients, fleet.Options{Metrics: reg})
		local, err = startLocalHierarchy(f, seed, rootSrv.Addr())
		if err != nil {
			return err
		}
		defer local.stop()
	}

	hellos, err := rootSrv.AcceptShards(f.Shards)
	if err != nil {
		return err
	}
	rootSrv.ServeReconnects()
	total := 0
	for _, h := range hellos {
		fmt.Printf("haccs-root: shard %d registered with %d clients\n", h.ShardID, len(h.Clients))
		total += len(h.Clients)
	}

	var store *checkpoint.Store
	if f.CheckpointDir != "" {
		if store, err = checkpoint.NewStore(f.CheckpointDir, 3); err != nil {
			return err
		}
	}
	// The observability handlers come up before the Root exists (the
	// endpoint serves during the shard handshake), so they read it
	// through an atomic pointer.
	var rootPtr atomic.Pointer[shard.Root]
	if f.HTTP != "" {
		owner := map[int]int{}
		for _, h := range hellos {
			for _, c := range h.Clients {
				owner[c.ID] = h.ShardID
			}
		}
		ownerID := func(clientID int) int {
			if s, ok := owner[clientID]; ok {
				return s
			}
			return -1
		}
		opts := []telemetry.ServeOption{
			telemetry.WithEndpoint("/debug/shards", shard.StatusHandler(func() []rounds.ShardStatus {
				if r := rootPtr.Load(); r != nil {
					return r.ShardStatuses()
				}
				return nil
			})),
		}
		if fleetReg != nil {
			opts = append(opts, telemetry.WithEndpoint("/debug/fleet", shard.FleetHandler(fleetReg, ownerID)))
		}
		bound, err := rootSrv.EnableTelemetry(reg, nil, nil, f.HTTP, opts...)
		if err != nil {
			return err
		}
		fmt.Println("haccs-root: observability on", bound)
	}

	rcfg := shard.RootConfig{
		ClientsPerRound: f.K,
		Deadline:        f.Deadline,
		Metrics:         reg,
		Fleet:           fleetReg,
		Checkpoint:      store,
		CheckpointEvery: f.CheckpointEvery,
	}
	if f.Mode == "async" {
		rcfg.Mode = rounds.ModeAsync
		rcfg.Async = rounds.AsyncConfig{
			BufferK:      f.BufferK,
			MaxStaleness: f.MaxStaleness,
		}
		rcfg.ResyncEvery = f.ResyncEvery
	}
	var strategy rounds.Strategy
	if rcfg.Mode != rounds.ModeAsync {
		strategy = loadgen.NewUniformStrategy(stats.DeriveSeed(seed, 0x5e1ec7))
	}
	root, err := shard.NewRoot(rootSrv, rcfg, strategy, make([]float64, f.ParamDim))
	if err != nil {
		return err
	}
	rootPtr.Store(root)

	if f.Resume {
		snap, err := store.LoadLatest()
		if err != nil {
			return fmt.Errorf("load snapshot: %w", err)
		}
		if err := root.Restore(snap); err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		fmt.Println("haccs-root: resumed from checkpoint at round", root.NextRound())
	}

	for r := root.NextRound(); r < f.Rounds; r++ {
		out := root.RunRound(r)
		fmt.Printf("haccs-root: round %d: %d selected, %d reported, clock %.1fs\n",
			r, len(out.Selected), len(out.Reporters), root.Clock())
	}
	fmt.Printf("haccs-root: done — %d clients across %d shards, clock %.1fs, model version %d\n",
		total, len(hellos), root.Clock(), root.Driver().Version())
	return nil
}

// localHierarchy is the in-process shard layer spawned by
// -local-clients: flat coordinators over the ring partition, the
// routed synthetic fleet, and the uplink agents.
type localHierarchy struct {
	servers []*flnet.Server
	agents  []*shard.Agent
	fl      *loadgen.Fleet
}

func startLocalHierarchy(f rootFlags, seed uint64, rootAddr string) (*localHierarchy, error) {
	shardIDs := make([]int, f.Shards)
	for s := range shardIDs {
		shardIDs[s] = s
	}
	ring, err := shard.NewRing(shardIDs, 0)
	if err != nil {
		return nil, err
	}
	parts := ring.Partition(f.LocalClients)

	lh := &localHierarchy{}
	fail := func(err error) (*localHierarchy, error) {
		lh.stop()
		return nil, err
	}
	lh.servers = make([]*flnet.Server, f.Shards)
	for s := range lh.servers {
		if lh.servers[s], err = flnet.NewServer("127.0.0.1:0"); err != nil {
			return fail(err)
		}
	}
	fcfg := loadgen.FleetConfig{
		N:     f.LocalClients,
		Seed:  seed,
		Route: func(id int) string { return lh.servers[ring.Owner(id)].Addr() },
	}
	if lh.fl, err = loadgen.StartFleet(fcfg, lh.servers[0].Addr()); err != nil {
		return fail(err)
	}
	for s, srv := range lh.servers {
		if _, err := srv.AcceptClients(len(parts[s])); err != nil {
			return fail(fmt.Errorf("shard %d accept: %w", s, err))
		}
		srv.ServeReconnects()
	}
	lh.agents = make([]*shard.Agent, f.Shards)
	for s, srv := range lh.servers {
		agent, err := shard.NewAgent(shard.AgentConfig{ShardID: s, Root: rootAddr, Server: srv})
		if err != nil {
			return fail(fmt.Errorf("shard %d agent: %w", s, err))
		}
		lh.agents[s] = agent
		go agent.Run()
	}
	return lh, nil
}

func (lh *localHierarchy) stop() {
	for _, a := range lh.agents {
		if a != nil {
			a.Close()
		}
	}
	if lh.fl != nil {
		lh.fl.Stop()
	}
	for _, s := range lh.servers {
		if s != nil {
			s.Close()
		}
	}
}
