// Command haccs-bench regenerates the HACCS paper's tables and figures
// (see DESIGN.md for the experiment index). Each experiment prints the
// same rows/series the paper plots; absolute times are virtual seconds
// from the simulator, so shapes and ratios — not raw numbers — are the
// reproduction target.
//
// Examples:
//
//	haccs-bench -experiment fig5a
//	haccs-bench -experiment all -scale full -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"haccs/internal/benchrun"
	"haccs/internal/core"
	"haccs/internal/experiments"
	"haccs/internal/telemetry"
)

// experimentFunc runs one experiment and returns its printed report.
type experimentFunc func(scale experiments.Scale, seed uint64) string

var registry = map[string]experimentFunc{
	"fig1": func(s experiments.Scale, seed uint64) string {
		return experiments.RunFig1(s, seed).String()
	},
	"fig5a": func(s experiments.Scale, seed uint64) string {
		r := experiments.RunFig5("cifar", s, seed)
		return r.String() + r.Curves(6)
	},
	"fig5b": func(s experiments.Scale, seed uint64) string {
		r := experiments.RunFig5("femnist", s, seed)
		return r.String() + r.Curves(6)
	},
	"fig6": func(s experiments.Scale, seed uint64) string {
		return experiments.RunFig6(s, seed).String()
	},
	"fig7": func(s experiments.Scale, seed uint64) string {
		return experiments.RunFig7(s, seed).String()
	},
	"fig8a": func(s experiments.Scale, seed uint64) string {
		return experiments.RunFig8a(s, seed).String()
	},
	"fig8b": func(s experiments.Scale, seed uint64) string {
		return experiments.RunFig8b(s, seed).String()
	},
	"fig9": func(s experiments.Scale, seed uint64) string {
		return experiments.RunFig9(s, seed).String()
	},
	"fig10": func(s experiments.Scale, seed uint64) string {
		return experiments.RunFig10(s, seed).String()
	},
	"table3": func(s experiments.Scale, seed uint64) string {
		// Table III and Fig. 11 come from the same instrumented runs,
		// one per summary kind.
		return experiments.RunBias(core.PY, s, seed).String() +
			experiments.RunBias(core.PXY, s, seed).String()
	},
	"ablation-clustering": func(s experiments.Scale, seed uint64) string {
		return experiments.RunClusteringAblation(s, 0.1, seed).String()
	},
	"ablation-latency": func(s experiments.Scale, seed uint64) string {
		return experiments.RunLatencyAblation(20000, seed).String()
	},
	"ablation-summary-size": func(s experiments.Scale, seed uint64) string {
		return experiments.RunSummarySizeAblation(s, seed).String()
	},
	"ablation-gradient": func(s experiments.Scale, seed uint64) string {
		return experiments.RunGradientAblation(s, seed).String()
	},
	"ablation-distance": func(s experiments.Scale, seed uint64) string {
		return experiments.RunDistanceAblation(s, seed).String()
	},
	"async-comparison": func(s experiments.Scale, seed uint64) string {
		return experiments.RunAsyncComparison(s, seed).String()
	},
}

// aliases map paper artifact names onto shared runs.
var aliases = map[string]string{
	"table1": "fig1",   // Table I is the Fig. 1 partition
	"fig11":  "table3", // Fig. 11 is produced by the Table III runs
	"table2": "ablation-latency",
}

func names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id ("+strings.Join(names(), ", ")+", all) or alias (table1, table2, fig11)")
		scaleFlag  = flag.String("scale", "quick", "quick (minutes) or full (paper-scale client counts; much slower)")
		seed       = flag.Uint64("seed", 1, "root random seed")

		jsonlPath   = flag.String("telemetry-jsonl", "", "stream the round traces of every instrumented run as JSONL to this path")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/trace on this address while experiments run")

		benchMode     = flag.Bool("bench", false, "run the tracked benchmark suite instead of the paper experiments")
		benchOut      = flag.String("bench-out", "", "write the benchmark report as JSON to this path (e.g. BENCH_$(git rev-parse --short HEAD).json)")
		benchRev      = flag.String("bench-rev", "", "revision label stamped into the report (default: git short HEAD)")
		benchBaseline = flag.String("bench-baseline", "", "compare the run against a previously written BENCH_*.json")
	)
	flag.Parse()

	if *benchMode {
		rev := *benchRev
		if rev == "" {
			rev = benchrun.GitRev()
		}
		rep := benchrun.Run(rev)
		fmt.Print(rep.String())
		if *benchBaseline != "" {
			base, err := benchrun.ReadJSON(*benchBaseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(rep.Compare(base))
		}
		if *benchOut != "" {
			if err := rep.WriteJSON(*benchOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
		return
	}

	scale, ok := experiments.ParseScale(*scaleFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "haccs-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	// Observability is opt-in: the runners consult the experiments
	// package's process-wide hook, so one flag instruments every engine
	// and HACCS scheduler the suite constructs.
	if *jsonlPath != "" || *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		var sinks []telemetry.Tracer
		if *jsonlPath != "" {
			jsonl, err := telemetry.NewJSONLFile(*jsonlPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer func() {
				if err := jsonl.Close(); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}()
			sinks = append(sinks, jsonl)
		}
		var ring *telemetry.RingSink
		if *metricsAddr != "" {
			ring = telemetry.NewRingSink(4096)
			sinks = append(sinks, ring)
			srv, err := telemetry.Serve(*metricsAddr, reg, ring)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Printf("telemetry: serving /metrics and /debug/trace on http://%s\n", srv.Addr())
		}
		experiments.EnableTelemetry(reg, telemetry.Combine(sinks...))
	}

	run := func(name string) {
		fn := registry[name]
		start := time.Now()
		out := fn(scale, *seed)
		fmt.Print(out)
		fmt.Printf("(%s completed in %s wall time at %s scale)\n\n", name, time.Since(start).Round(time.Millisecond), scale)
	}

	name := *experiment
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	switch {
	case name == "all":
		for _, n := range names() {
			run(n)
		}
	case registry[name] != nil:
		run(name)
	default:
		fmt.Fprintf(os.Stderr, "haccs-bench: unknown experiment %q (have: %s)\n", *experiment, strings.Join(names(), ", "))
		os.Exit(2)
	}
}
