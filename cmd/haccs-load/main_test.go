package main

import (
	"strings"
	"testing"
)

func validLoadFlags() loadFlags {
	return loadFlags{
		Clients: 200, K: 16, Rounds: 10, ScrapeEvery: 5, ParamDim: 64,
		Deadline: 8, StormFraction: 0.25, Flakiness: 0, SleepScale: 0.001,
		Legs: "sync,async,storm,crash,sharded", Out: "tests/results/scale",
		Shards: 4,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*loadFlags)
		wantErr string
	}{
		{"valid", func(f *loadFlags) {}, ""},
		{"zero clients", func(f *loadFlags) { f.Clients = 0 }, "-clients"},
		{"negative rounds", func(f *loadFlags) { f.Rounds = -1 }, "-rounds"},
		{"zero k", func(f *loadFlags) { f.K = 0 }, "-k"},
		{"k over clients", func(f *loadFlags) { f.K = 500 }, "cannot exceed"},
		{"negative deadline", func(f *loadFlags) { f.Deadline = -1 }, "-deadline"},
		{"storm fraction zero", func(f *loadFlags) { f.StormFraction = 0 }, "-storm-fraction"},
		{"storm fraction over one", func(f *loadFlags) { f.StormFraction = 1.5 }, "-storm-fraction"},
		{"flakiness one", func(f *loadFlags) { f.Flakiness = 1 }, "-flakiness"},
		{"negative sleep scale", func(f *loadFlags) { f.SleepScale = -0.1 }, "-sleep-scale"},
		{"empty legs", func(f *loadFlags) { f.Legs = " , " }, "-legs"},
		{"unknown leg", func(f *loadFlags) { f.Legs = "sync,chaos" }, "unknown leg"},
		{"empty out", func(f *loadFlags) { f.Out = "" }, "-out"},
		{"one shard", func(f *loadFlags) { f.Shards = 1 }, "-shards"},
		{"shards over clients", func(f *loadFlags) { f.Shards = 500 }, "-shards"},
		{"no sharded leg ignores shards", func(f *loadFlags) { f.Legs = "sync"; f.Shards = 0 }, ""},
		{"zero scrape cadence", func(f *loadFlags) { f.ScrapeEvery = 0 }, "-scrape-every"},
		{"zero param dim", func(f *loadFlags) { f.ParamDim = 0 }, "-param-dim"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := validLoadFlags()
			c.mutate(&f)
			err := validateFlags(f)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestBuildLegs(t *testing.T) {
	f := validLoadFlags()
	legs := buildLegs(f)
	if len(legs) != 5 {
		t.Fatalf("built %d legs, want 5", len(legs))
	}
	names := map[string]bool{}
	for _, l := range legs {
		names[l.Name] = true
	}
	for _, want := range []string{"sync", "async", "storm", "crash", "sharded"} {
		if !names[want] {
			t.Errorf("missing leg %s", want)
		}
	}
	for _, l := range legs {
		switch l.Name {
		case "async":
			if l.Deadline != 0 {
				t.Error("async leg carries a deadline")
			}
			if l.Async.BufferK != 8 {
				t.Errorf("async BufferK = %d, want k/2 = 8", l.Async.BufferK)
			}
		case "storm":
			if l.StormFraction != 0.25 {
				t.Errorf("storm fraction = %v", l.StormFraction)
			}
		case "crash":
			if !l.Crash {
				t.Error("crash leg not marked Crash")
			}
		case "sharded":
			if l.Shards != 4 {
				t.Errorf("sharded leg shards = %d, want 4", l.Shards)
			}
			if !l.Crash || l.StormFraction != 1 {
				t.Errorf("sharded leg must storm a shard and crash the root: %+v", l)
			}
		}
	}

	f.Legs = "async"
	if legs := buildLegs(f); len(legs) != 1 || legs[0].Name != "async" {
		t.Errorf("single-leg build: %+v", legs)
	}
}

func TestVCSRevisionFallback(t *testing.T) {
	// Test binaries carry no vcs stamp; the fallback must be stable.
	if got := vcsRevision(); got != "dev" && len(got) != 7 {
		t.Errorf("vcsRevision() = %q, want \"dev\" or a 7-char hash", got)
	}
}
