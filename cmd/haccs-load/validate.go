package main

import (
	"fmt"
	"strings"
)

// loadFlags collects the flag values subject to validation, so the
// checks can be exercised by tests without spawning the binary
// (mirrors cmd/haccs-sim's validateFlags pattern).
type loadFlags struct {
	Clients, K, Rounds, ScrapeEvery, ParamDim int
	Deadline, StormFraction, Flakiness        float64
	SleepScale                                float64
	Legs                                      string
	Out                                       string
	Shards                                    int
}

// knownLegs is the scenario vocabulary -legs accepts.
var knownLegs = map[string]bool{"sync": true, "async": true, "storm": true, "crash": true, "sharded": true}

// splitLegs parses the -legs list, dropping empty elements.
func splitLegs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// validateFlags rejects configurations that would misbehave deep in
// the harness. The caller prints the error and exits with status 2.
func validateFlags(f loadFlags) error {
	positive := []struct {
		name string
		v    int
	}{
		{"-clients", f.Clients},
		{"-k", f.K},
		{"-rounds", f.Rounds},
		{"-scrape-every", f.ScrapeEvery},
		{"-param-dim", f.ParamDim},
	}
	for _, p := range positive {
		if p.v <= 0 {
			return fmt.Errorf("%s must be positive (got %d)", p.name, p.v)
		}
	}
	if f.K > f.Clients {
		return fmt.Errorf("-k (%d) cannot exceed -clients (%d)", f.K, f.Clients)
	}
	if f.Deadline < 0 {
		return fmt.Errorf("-deadline must be >= 0 (got %v)", f.Deadline)
	}
	if f.StormFraction <= 0 || f.StormFraction > 1 {
		return fmt.Errorf("-storm-fraction must be in (0,1] (got %v)", f.StormFraction)
	}
	if f.Flakiness < 0 || f.Flakiness >= 1 {
		return fmt.Errorf("-flakiness must be in [0,1) (got %v)", f.Flakiness)
	}
	if f.SleepScale < 0 {
		return fmt.Errorf("-sleep-scale must be >= 0 (got %v)", f.SleepScale)
	}
	legs := splitLegs(f.Legs)
	if len(legs) == 0 {
		return fmt.Errorf("-legs must name at least one leg")
	}
	sharded := false
	for _, l := range legs {
		if !knownLegs[l] {
			return fmt.Errorf("unknown leg %q in -legs (want sync, async, storm, crash, sharded)", l)
		}
		if l == "sharded" {
			sharded = true
		}
	}
	if sharded {
		if f.Shards < 2 {
			return fmt.Errorf("-shards must be >= 2 for the sharded leg (got %d)", f.Shards)
		}
		if f.Shards > f.Clients {
			return fmt.Errorf("-shards (%d) cannot exceed -clients (%d)", f.Shards, f.Clients)
		}
	}
	if f.Out == "" {
		return fmt.Errorf("-out must not be empty")
	}
	return nil
}
