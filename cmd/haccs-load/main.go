// Command haccs-load drives the scale-test scenario matrix against a
// live flnet coordinator: a synthetic TCP fleet of -clients goroutine
// clients runs sync, async, reconnect-storm and crash+resume legs
// while the harness scrapes the coordinator's own /metrics and
// /debug/fleet endpoints, then writes a versioned results file under
// -out (tests/results/scale/<rev>.md, committed per revision like
// BENCH files).
//
// Example (the committed-results configuration):
//
//	haccs-load -clients 2000 -k 64 -rounds 40 -rev $(git rev-parse --short HEAD)
//
// The process exits nonzero when any leg fails — a scrape error, an
// exposition lint violation, an unrecovered storm, or a crash leg that
// did not resume — so CI's scale-smoke job can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"haccs/internal/loadgen"
	"haccs/internal/rounds"
)

func main() {
	var (
		clients     = flag.Int("clients", 2000, "synthetic fleet size")
		k           = flag.Int("k", 64, "clients selected per round")
		roundsN     = flag.Int("rounds", 40, "rounds per leg")
		legsFlag    = flag.String("legs", "sync,async,storm,crash,sharded", "comma-separated legs to run: sync | async | storm | crash | sharded")
		shards      = flag.Int("shards", 4, "shard coordinators in the sharded leg's hierarchy")
		deadline    = flag.Float64("deadline", 8, "sync-leg straggler deadline in virtual seconds")
		stormFrac   = flag.Float64("storm-fraction", 0.25, "fraction of connections the storm leg kills")
		flakiness   = flag.Float64("flakiness", 0, "per-request probability a client hangs up mid-round")
		sleepScale  = flag.Float64("sleep-scale", 0.001, "wall seconds slept per virtual second of client latency")
		maxSleep    = flag.Duration("max-sleep", 50*time.Millisecond, "clamp on any single training sleep")
		scrapeEvery = flag.Int("scrape-every", 5, "rounds between periodic /metrics scrapes")
		paramDim    = flag.Int("param-dim", 256, "global parameter vector length")
		seed        = flag.Uint64("seed", 42, "root random seed")
		out         = flag.String("out", "tests/results/scale", "directory for the versioned results file")
		rev         = flag.String("rev", "", "revision stamp for the results file name (default: VCS revision from build info)")
	)
	flag.Parse()

	f := loadFlags{
		Clients: *clients, K: *k, Rounds: *roundsN, ScrapeEvery: *scrapeEvery,
		ParamDim: *paramDim, Deadline: *deadline, StormFraction: *stormFrac,
		Flakiness: *flakiness, SleepScale: *sleepScale, Legs: *legsFlag, Out: *out,
		Shards: *shards,
	}
	if err := validateFlags(f); err != nil {
		fmt.Fprintln(os.Stderr, "haccs-load:", err)
		os.Exit(2)
	}
	legs := buildLegs(f)

	ckptDir, err := os.MkdirTemp("", "haccs-load-ckpt-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccs-load:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(ckptDir)

	cfg := loadgen.MatrixConfig{
		Fleet: loadgen.FleetConfig{
			N:          f.Clients,
			Latency:    loadgen.HeavyTailLatency{BaseSec: 2, SlowEvery: 4, SlowFactor: 15},
			SleepScale: f.SleepScale,
			MaxSleep:   *maxSleep,
			Flakiness:  f.Flakiness,
			Seed:       *seed,
		},
		ScrapeEvery:   f.ScrapeEvery,
		ParamDim:      f.ParamDim,
		CheckpointDir: ckptDir,
	}

	fmt.Printf("haccs-load: %d clients, %d rounds/leg, legs: %s\n", f.Clients, f.Rounds, f.Legs)
	start := time.Now()
	results, err := loadgen.RunMatrix(cfg, legs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccs-load:", err)
		os.Exit(1)
	}
	fmt.Printf("haccs-load: matrix done in %.1fs\n", time.Since(start).Seconds())

	revision := *rev
	if revision == "" {
		revision = vcsRevision()
	}
	host, _ := os.Hostname()
	meta := loadgen.RunMeta{
		Rev:       revision,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Host:      host,
		Clients:   f.Clients,
		Seed:      *seed,
	}
	path := loadgen.ReportPath(f.Out, revision)
	if err := writeReportFile(path, meta, results); err != nil {
		fmt.Fprintln(os.Stderr, "haccs-load:", err)
		os.Exit(1)
	}
	fmt.Println("haccs-load: wrote", path)

	for _, r := range results {
		fmt.Printf("  leg %-6s p50 %.4fs p99 %.4fs %.2f rounds/s: %s\n",
			r.Name, r.P50, r.P99, r.RoundsPerSec, passString(r.Pass))
	}
	if !loadgen.AllPass(results) {
		fmt.Fprintln(os.Stderr, "haccs-load: FAIL\n"+loadgen.FailureSummary(results))
		os.Exit(1)
	}
	fmt.Println("haccs-load: PASS")
}

func passString(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// buildLegs expands the -legs list into scenario configurations.
// Unknown names were rejected by validateFlags.
func buildLegs(f loadFlags) []loadgen.Leg {
	var legs []loadgen.Leg
	for _, name := range splitLegs(f.Legs) {
		switch name {
		case "sync":
			legs = append(legs, loadgen.Leg{Name: "sync", Rounds: f.Rounds, K: f.K, Deadline: f.Deadline})
		case "async":
			legs = append(legs, loadgen.Leg{
				Name: "async", Mode: rounds.ModeAsync, Rounds: f.Rounds, K: f.K,
				Async: rounds.AsyncConfig{BufferK: maxInt(1, f.K/2), MaxStaleness: 16},
			})
		case "storm":
			legs = append(legs, loadgen.Leg{Name: "storm", Rounds: f.Rounds, K: f.K, Deadline: f.Deadline, StormFraction: f.StormFraction})
		case "crash":
			legs = append(legs, loadgen.Leg{Name: "crash", Rounds: f.Rounds, K: f.K, Deadline: f.Deadline, Crash: true})
		case "sharded":
			// The hierarchical leg storms one whole shard a third of the
			// way in and kills the root (not a shard) two thirds in.
			legs = append(legs, loadgen.Leg{
				Name: "sharded", Rounds: f.Rounds, K: f.K, Deadline: f.Deadline,
				Shards: f.Shards, StormFraction: 1, Crash: true,
			})
		}
	}
	return legs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// vcsRevision resolves the short VCS revision from the binary's build
// info ("dev" when built without VCS stamping, e.g. go run in tests).
func vcsRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 7 {
				return s.Value[:7]
			}
		}
	}
	return "dev"
}

func writeReportFile(path string, meta loadgen.RunMeta, results []loadgen.LegResult) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := loadgen.WriteReport(file, meta, results); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
