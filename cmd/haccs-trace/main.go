// Command haccs-trace replays a flight-recorder JSONL stream (written
// by haccs-sim -telemetry-jsonl or any telemetry.JSONLSink) into a
// human-readable per-round timeline — selection, cutoffs, aggregation
// and the span tree of every round — plus a per-cluster selection
// summary table and a fleet health summary (top stragglers, fairness
// trajectory, cluster drift timeline) for the whole run.
//
// Malformed or truncated lines — the normal tail state of a trace cut
// off by a crash — are skipped with a warning instead of aborting the
// replay; the skip count is reported so a corrupted stream is visible.
//
// Example:
//
//	haccs-sim -strategy haccs-py -rounds 20 -telemetry-jsonl trace.jsonl
//	haccs-trace trace.jsonl
//	haccs-trace -selection=false -fleet=false trace.jsonl   # timeline only
package main

import (
	"flag"
	"fmt"
	"os"

	"haccs/internal/fleet"
	"haccs/internal/introspect"
	"haccs/internal/telemetry"
)

func main() {
	var (
		timeline   = flag.Bool("timeline", true, "print the per-round timeline (events + span tree)")
		selection  = flag.Bool("selection", true, "print the per-cluster selection summary table")
		fleetSum   = flag.Bool("fleet", true, "print the fleet health summary (stragglers, fairness, drift)")
		asyncSum   = flag.Bool("async", true, "print the async summary (staleness distribution, buffer flush timeline) when the trace came from an async-mode run")
		quietSkips = flag.Bool("quiet-skips", false, "suppress per-line warnings for malformed JSONL lines (the total is still reported)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: haccs-trace [flags] <trace.jsonl>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccs-trace:", err)
		os.Exit(1)
	}
	onSkip := func(line int, err error) {
		if !*quietSkips {
			fmt.Fprintf(os.Stderr, "haccs-trace: %s:%d: skipping malformed line: %v\n", flag.Arg(0), line, err)
		}
	}
	events, skipped, err := telemetry.ReadJSONLLenient(f, onSkip)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccs-trace:", err)
		os.Exit(1)
	}
	if *timeline {
		if err := introspect.WriteTimeline(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, "haccs-trace:", err)
			os.Exit(1)
		}
	}
	if *selection {
		if *timeline {
			fmt.Println()
		}
		if err := introspect.WriteSelectionTable(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, "haccs-trace:", err)
			os.Exit(1)
		}
	}
	if *asyncSum && introspect.HasAsyncEvents(events) {
		if *timeline || *selection {
			fmt.Println()
		}
		if err := introspect.WriteAsyncSummary(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, "haccs-trace:", err)
			os.Exit(1)
		}
	}
	if *fleetSum {
		if *timeline || *selection {
			fmt.Println()
		}
		fleet.WriteReplaySummary(os.Stdout, events)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "haccs-trace: skipped %d malformed line(s) of %s\n", skipped, flag.Arg(0))
	}
}
