// Command haccs-trace replays a flight-recorder JSONL stream (written
// by haccs-sim -telemetry-jsonl or any telemetry.JSONLSink) into a
// human-readable per-round timeline — selection, cutoffs, aggregation
// and the span tree of every round — plus a per-cluster selection
// summary table for the whole run.
//
// Example:
//
//	haccs-sim -strategy haccs-py -rounds 20 -telemetry-jsonl trace.jsonl
//	haccs-trace trace.jsonl
//	haccs-trace -selection=false trace.jsonl   # timeline only
package main

import (
	"flag"
	"fmt"
	"os"

	"haccs/internal/introspect"
	"haccs/internal/telemetry"
)

func main() {
	var (
		timeline  = flag.Bool("timeline", true, "print the per-round timeline (events + span tree)")
		selection = flag.Bool("selection", true, "print the per-cluster selection summary table")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: haccs-trace [flags] <trace.jsonl>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccs-trace:", err)
		os.Exit(1)
	}
	events, err := telemetry.ReadJSONL(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccs-trace:", err)
		os.Exit(1)
	}
	if *timeline {
		if err := introspect.WriteTimeline(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, "haccs-trace:", err)
			os.Exit(1)
		}
	}
	if *selection {
		if *timeline {
			fmt.Println()
		}
		if err := introspect.WriteSelectionTable(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, "haccs-trace:", err)
			os.Exit(1)
		}
	}
}
