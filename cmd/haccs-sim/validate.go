package main

import "fmt"

// simFlags collects the flag values subject to validation, so the
// checks can be exercised by tests without spawning the binary.
type simFlags struct {
	Rounds, Clients, Classes, K, Size, Epochs int
	Dropout, Deadline, Rho                    float64
	Policy                                    string
	Backend                                   string
	CheckpointDir                             string
	CheckpointEvery, CheckpointRetain         int
	Resume                                    bool
	FleetCheck                                bool
	MetricsAddr                               string
}

// validateFlags rejects flag combinations that would otherwise panic
// deep inside the engine (negative budgets) or silently do the wrong
// thing (-resume with nowhere to resume from). The caller prints the
// error and exits with status 2.
func validateFlags(f simFlags) error {
	positive := []struct {
		name string
		v    int
	}{
		{"-rounds", f.Rounds},
		{"-clients", f.Clients},
		{"-classes", f.Classes},
		{"-k", f.K},
		{"-size", f.Size},
		{"-epochs", f.Epochs},
	}
	for _, p := range positive {
		if p.v <= 0 {
			return fmt.Errorf("%s must be positive (got %d)", p.name, p.v)
		}
	}
	if f.Dropout < 0 || f.Dropout > 1 {
		return fmt.Errorf("-dropout must be in [0,1] (got %v)", f.Dropout)
	}
	if f.Deadline < 0 {
		return fmt.Errorf("-deadline must be >= 0 (got %v)", f.Deadline)
	}
	if f.Rho < 0 || f.Rho > 1 {
		return fmt.Errorf("-rho must be in [0,1] (got %v)", f.Rho)
	}
	if f.Policy != "fastest" && f.Policy != "weighted" {
		return fmt.Errorf("unknown -policy %q (want fastest or weighted)", f.Policy)
	}
	if f.Backend != "" && f.Backend != "dense" && f.Backend != "sketch" {
		return fmt.Errorf("unknown -cluster-backend %q (want dense or sketch)", f.Backend)
	}
	if f.Resume && f.CheckpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir (nowhere to resume from)")
	}
	if f.FleetCheck && f.MetricsAddr == "" {
		return fmt.Errorf("-fleet-check requires -metrics-addr (nothing to scrape)")
	}
	if f.CheckpointDir != "" {
		if f.CheckpointEvery <= 0 {
			return fmt.Errorf("-checkpoint-every must be positive (got %d)", f.CheckpointEvery)
		}
		if f.CheckpointRetain <= 0 {
			return fmt.Errorf("-checkpoint-retain must be positive (got %d)", f.CheckpointRetain)
		}
	}
	return nil
}
