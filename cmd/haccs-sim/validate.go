package main

import (
	"fmt"

	"haccs/internal/rounds"
)

// simFlags collects the flag values subject to validation, so the
// checks can be exercised by tests without spawning the binary.
type simFlags struct {
	Rounds, Clients, Classes, K, Size, Epochs int
	Dropout, Deadline, Rho                    float64
	Policy                                    string
	Backend                                   string
	Mode                                      string
	BufferK, MaxStaleness                     int
	AsyncCheck                                bool
	CheckpointDir                             string
	CheckpointEvery, CheckpointRetain         int
	Resume                                    bool
	FleetCheck                                bool
	MetricsAddr                               string
}

// validateFlags rejects flag combinations that would otherwise panic
// deep inside the engine (negative budgets) or silently do the wrong
// thing (-resume with nowhere to resume from). The caller prints the
// error and exits with status 2.
func validateFlags(f simFlags) error {
	positive := []struct {
		name string
		v    int
	}{
		{"-rounds", f.Rounds},
		{"-clients", f.Clients},
		{"-classes", f.Classes},
		{"-k", f.K},
		{"-size", f.Size},
		{"-epochs", f.Epochs},
	}
	for _, p := range positive {
		if p.v <= 0 {
			return fmt.Errorf("%s must be positive (got %d)", p.name, p.v)
		}
	}
	if f.Dropout < 0 || f.Dropout > 1 {
		return fmt.Errorf("-dropout must be in [0,1] (got %v)", f.Dropout)
	}
	if f.Deadline < 0 {
		return fmt.Errorf("-deadline must be >= 0 (got %v)", f.Deadline)
	}
	if f.Rho < 0 || f.Rho > 1 {
		return fmt.Errorf("-rho must be in [0,1] (got %v)", f.Rho)
	}
	if f.Policy != "fastest" && f.Policy != "weighted" {
		return fmt.Errorf("unknown -policy %q (want fastest or weighted)", f.Policy)
	}
	if f.Backend != "" && f.Backend != "dense" && f.Backend != "sketch" {
		return fmt.Errorf("unknown -cluster-backend %q (want dense or sketch)", f.Backend)
	}
	mode, ok := rounds.ParseMode(f.Mode)
	if !ok {
		return fmt.Errorf("unknown -mode %q (want sync or async)", f.Mode)
	}
	if mode == rounds.ModeAsync {
		if f.Deadline != 0 {
			return fmt.Errorf("-deadline is sync-only; bound slow updates with -max-staleness in async mode")
		}
		if f.BufferK < 0 || f.BufferK > f.K {
			return fmt.Errorf("-buffer-k must be in [0,%d] (0 = auto; got %d)", f.K, f.BufferK)
		}
		if f.MaxStaleness < 0 {
			return fmt.Errorf("-max-staleness must be >= 0 (got %d)", f.MaxStaleness)
		}
	} else {
		if f.BufferK != 0 {
			return fmt.Errorf("-buffer-k requires -mode async")
		}
		if f.MaxStaleness != 0 {
			return fmt.Errorf("-max-staleness requires -mode async")
		}
		if f.AsyncCheck {
			return fmt.Errorf("-async-check requires -mode async")
		}
	}
	if f.AsyncCheck && f.MetricsAddr == "" {
		return fmt.Errorf("-async-check requires -metrics-addr (nothing to scrape)")
	}
	if f.Resume && f.CheckpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir (nowhere to resume from)")
	}
	if f.FleetCheck && f.MetricsAddr == "" {
		return fmt.Errorf("-fleet-check requires -metrics-addr (nothing to scrape)")
	}
	if f.CheckpointDir != "" {
		if f.CheckpointEvery <= 0 {
			return fmt.Errorf("-checkpoint-every must be positive (got %d)", f.CheckpointEvery)
		}
		if f.CheckpointRetain <= 0 {
			return fmt.Errorf("-checkpoint-retain must be positive (got %d)", f.CheckpointRetain)
		}
	}
	return nil
}
