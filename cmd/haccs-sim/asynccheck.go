package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"haccs/internal/introspect"
)

// lateAsyncInspector adapts the engine's async driver to the
// /debug/selection handler, which goes live before the engine is
// built: it serves the zero AsyncState until bind is called.
type lateAsyncInspector struct {
	mu   sync.Mutex
	insp introspect.AsyncInspector
}

func (l *lateAsyncInspector) bind(insp introspect.AsyncInspector) {
	l.mu.Lock()
	l.insp = insp
	l.mu.Unlock()
}

func (l *lateAsyncInspector) AsyncState() introspect.AsyncState {
	l.mu.Lock()
	insp := l.insp
	l.mu.Unlock()
	if insp == nil {
		return introspect.AsyncState{}
	}
	return insp.AsyncState()
}

// checkAsyncEndpoints self-scrapes the telemetry endpoints after an
// async run and verifies the async driver actually published its
// state: the haccs_async_staleness histogram on /metrics and a live
// buffer state (aggregations happened) on /debug/selection. A failure
// exits the binary nonzero, which is what the async-smoke CI target
// asserts on.
func checkAsyncEndpoints(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	for _, series := range []string{
		"haccs_async_staleness",
		"haccs_async_updates_buffered_total",
		"haccs_async_aggregations_total",
	} {
		if !strings.Contains(text, series) {
			return fmt.Errorf("/metrics missing %s", series)
		}
	}

	resp, err = http.Get(base + "/debug/selection")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/selection: status %d", resp.StatusCode)
	}
	var st introspect.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decode /debug/selection: %w", err)
	}
	if st.Async == nil {
		return fmt.Errorf("/debug/selection has no async state")
	}
	if st.Async.BufferK <= 0 {
		return fmt.Errorf("async state has buffer_k %d (driver never bound?)", st.Async.BufferK)
	}
	if st.Async.Buffered == 0 || st.Async.Version == 0 {
		return fmt.Errorf("async driver buffered %d updates across %d aggregations; expected progress",
			st.Async.Buffered, st.Async.Version)
	}
	return nil
}
