package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"haccs/internal/fleet"
)

// checkFleetEndpoint self-scrapes /debug/fleet after a run and verifies
// the registry actually observed the workload: every round recorded, a
// fairness index inside (0,1], and at least one straggler cut (the
// -fleet-check smoke invocation runs with a deadline precisely so cuts
// must occur). A failure exits the binary nonzero, which is what the
// fleet-smoke CI target asserts on.
func checkFleetEndpoint(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var st fleet.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decode %s: %w", url, err)
	}
	if st.Rounds == 0 {
		return fmt.Errorf("registry observed no rounds")
	}
	if !(st.Fairness > 0 && st.Fairness <= 1) {
		return fmt.Errorf("fairness %v outside (0,1]", st.Fairness)
	}
	cuts := 0
	for _, c := range st.Clients {
		cuts += c.StragglerCut
	}
	if cuts == 0 {
		return fmt.Errorf("no straggler cuts recorded (is -deadline set?)")
	}
	return nil
}
