// Command haccs-sim runs a single federated training simulation with a
// chosen client-selection strategy and prints the accuracy-vs-virtual-
// time curve. It is the quickstart binary: one run, one strategy, one
// curve.
//
// Example:
//
//	haccs-sim -dataset cifar -strategy haccs-py -clients 30 -k 6 -rounds 100
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"haccs/internal/checkpoint"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/fleet"
	"haccs/internal/introspect"
	"haccs/internal/metrics"
	"haccs/internal/nn"
	roundspkg "haccs/internal/rounds"
	"haccs/internal/selection"
	"haccs/internal/simnet"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

func main() {
	var (
		family   = flag.String("dataset", "cifar", "synthetic dataset family: mnist | femnist | cifar")
		strategy = flag.String("strategy", "haccs-py", "selection strategy: random | tifl | oort | haccs-py | haccs-pxy")
		clients  = flag.Int("clients", 30, "number of clients")
		classes  = flag.Int("classes", 10, "number of class labels")
		k        = flag.Int("k", 6, "clients selected per round")
		rounds   = flag.Int("rounds", 100, "training rounds")
		rho      = flag.Float64("rho", 0.75, "HACCS latency/loss trade-off in [0,1]")
		eps      = flag.Float64("eps", 0, "differential-privacy epsilon for summaries (0 = off)")
		target   = flag.Float64("target", 0.5, "target accuracy for the TTA report")
		seed     = flag.Uint64("seed", 1, "root random seed")
		size     = flag.Int("size", 8, "image side length (8 for quick runs, 16+ for larger)")
		dropout  = flag.Float64("dropout", 0, "per-epoch transient client dropout rate")
		deadline = flag.Float64("deadline", 0, "per-round straggler deadline in virtual seconds (0 = wait for every selected client; sync mode only)")
		mode     = flag.String("mode", "sync", "round runtime: sync (barrier rounds) | async (FedBuff-style buffered aggregation)")
		bufferK  = flag.Int("buffer-k", 0, "async aggregation trigger: flush the buffer at K updates (0 = half of -k)")
		maxStale = flag.Int("max-staleness", 0, "async staleness bound: drop updates more than this many model versions behind (0 = unlimited)")
		lr       = flag.Float64("lr", 0.05, "local SGD learning rate")
		epochs   = flag.Int("epochs", 2, "local epochs per round")
		prox     = flag.Float64("prox", 0, "FedProx proximal coefficient mu (0 = plain FedAvg)")
		policy   = flag.String("policy", "fastest", "HACCS intra-cluster device policy: fastest | weighted")
		backend  = flag.String("cluster-backend", "dense", "HACCS clustering backend: dense (exact N×N Hellinger matrix) | sketch (representative index, scales to 100k+ clients)")
		csvPath  = flag.String("csv", "", "write the accuracy curve as CSV to this path")
		jsonPath = flag.String("json", "", "write the run summary as JSON to this path")

		ckptDir    = flag.String("checkpoint-dir", "", "persist run-state snapshots into this directory (crash recovery; see -resume)")
		ckptEvery  = flag.Int("checkpoint-every", 1, "snapshot cadence in rounds when -checkpoint-dir is set")
		ckptRetain = flag.Int("checkpoint-retain", 3, "how many snapshots to keep on disk")
		resume     = flag.Bool("resume", false, "resume from the newest good snapshot in -checkpoint-dir and continue to -rounds")

		jsonlPath   = flag.String("telemetry-jsonl", "", "stream the round trace as JSONL to this path (replay it with haccs-trace)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /debug/trace, /debug/spans, /debug/selection and /debug/fleet on this address during the run")
		fleetCheck  = flag.Bool("fleet-check", false, "after the run, self-scrape /debug/fleet and fail unless the fleet registry recorded straggler cuts and a sane fairness index (requires -metrics-addr; smoke-test hook)")
		asyncCheck  = flag.Bool("async-check", false, "after the run, self-scrape /metrics and /debug/selection and fail unless the async staleness histogram and buffer state were published (requires -mode async and -metrics-addr; smoke-test hook)")
		pprof       = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on -metrics-addr")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the metrics endpoint up this long after the run finishes")
		statsdAddr  = flag.String("statsd-addr", "", "flush metrics to this UDP statsd endpoint")
		statsdEvery = flag.Duration("statsd-interval", 10*time.Second, "statsd flush interval")
	)
	flag.Parse()

	if err := validateFlags(simFlags{
		Rounds: *rounds, Clients: *clients, Classes: *classes, K: *k, Size: *size, Epochs: *epochs,
		Dropout: *dropout, Deadline: *deadline, Rho: *rho, Policy: *policy, Backend: *backend,
		Mode: *mode, BufferK: *bufferK, MaxStaleness: *maxStale, AsyncCheck: *asyncCheck,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, CheckpointRetain: *ckptRetain, Resume: *resume,
		FleetCheck: *fleetCheck, MetricsAddr: *metricsAddr,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "haccs-sim:", err)
		os.Exit(2)
	}
	runMode, _ := roundspkg.ParseMode(*mode)
	spec, err := specFor(*family, *classes, *size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	planRNG := stats.NewRNG(stats.DeriveSeed(*seed, 14))
	plan := dataset.MajorityNoisePlan(*clients, *classes, 100, 240, planRNG)
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(*seed, 10))
	dataRNG := stats.NewRNG(stats.DeriveSeed(*seed, 110))
	profRNG := stats.NewRNG(stats.DeriveSeed(*seed, 11))
	clientData := plan.Materialize(gen, 0.8, dataRNG)

	roster := make([]*fl.Client, len(clientData))
	trainSets := make([]*dataset.Dataset, len(clientData))
	for i, cd := range clientData {
		roster[i] = &fl.Client{ID: i, Data: cd, Profile: simnet.SampleProfile(profRNG)}
		trainSets[i] = cd.Train
	}

	// validateFlags pinned *policy to fastest|weighted already.
	intra := core.PickFastest
	if *policy == "weighted" {
		intra = core.PickWeighted
	}
	// ...and *backend to dense|sketch.
	clusterBackend, _ := core.ParseClusterBackend(*backend)
	// Telemetry: registry + trace sinks are only allocated when a flag
	// asks for them; engines treat nil as "off".
	var (
		reg    *telemetry.Registry
		tracer telemetry.Tracer
		jsonl  *telemetry.JSONLSink
		ring   *telemetry.RingSink
	)
	if *jsonlPath != "" || *metricsAddr != "" || *statsdAddr != "" {
		reg = telemetry.NewRegistry()
	}
	if *jsonlPath != "" {
		jsonl, err = telemetry.NewJSONLFile(*jsonlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metricsAddr != "" {
		ring = telemetry.NewRingSink(4096)
	}
	// Append only live sinks: a typed-nil *JSONLSink inside a Tracer
	// interface would defeat Combine's nil filtering.
	var sinks []telemetry.Tracer
	if jsonl != nil {
		sinks = append(sinks, jsonl)
	}
	if ring != nil {
		sinks = append(sinks, ring)
	}
	tracer = telemetry.Combine(sinks...)
	// Spans ride the same sinks: nil when telemetry is entirely off, so
	// the instrumented round loop stays zero-cost by default.
	spans := telemetry.NewSpanTracer(tracer, reg)
	if *pprof && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "haccs-sim: -pprof requires -metrics-addr")
		os.Exit(2)
	}

	strat, err := buildStrategy(*strategy, trainSets, *eps, *rho, intra, clusterBackend, *seed, tracer, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Fleet health registry: on whenever any telemetry surface is on, so
	// the same run that traces or serves metrics also accumulates the
	// longitudinal per-client view. HACCS strategies additionally feed
	// the per-cluster share/target/drift gauges.
	var fleetReg *fleet.Registry
	if reg != nil {
		var src fleet.ClusterSource
		if cs, ok := strat.(fleet.ClusterSource); ok {
			src = cs
		}
		fleetReg = fleet.NewRegistry(len(roster), fleet.Options{Tracer: tracer, Metrics: reg, Source: src})
	}

	// In async mode /debug/selection additionally carries the driver's
	// buffer state; the engine is built after the HTTP server comes up,
	// so the inspector binds late (serving the zero state until then).
	var asyncInsp *lateAsyncInspector
	if runMode == roundspkg.ModeAsync {
		asyncInsp = &lateAsyncInspector{}
	}
	var srv *telemetry.HTTPServer
	if *metricsAddr != "" {
		opts := []telemetry.ServeOption{}
		endpoints := "/metrics, /debug/trace and /debug/spans"
		selInsp, hasSel := strat.(introspect.SelectionInspector)
		if hasSel || asyncInsp != nil {
			var handler = introspect.Handler(selInsp)
			if asyncInsp != nil {
				handler = introspect.HandlerWithAsync(selInsp, asyncInsp)
			}
			opts = append(opts, telemetry.WithEndpoint("/debug/selection", handler))
			endpoints += ", /debug/selection"
		}
		opts = append(opts, telemetry.WithEndpoint("/debug/fleet", fleet.Handler(fleetReg)))
		endpoints += ", /debug/fleet"
		if *pprof {
			opts = append(opts, telemetry.WithPprof())
			endpoints += ", /debug/pprof"
		}
		srv, err = telemetry.Serve(*metricsAddr, reg, ring, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving %s on http://%s\n", endpoints, srv.Addr())
		if *metricsHold > 0 {
			defer func() {
				fmt.Printf("telemetry: holding the endpoint for %s\n", *metricsHold)
				time.Sleep(*metricsHold)
			}()
		}
	}
	if *statsdAddr != "" {
		sd, err := telemetry.NewStatsd(*statsdAddr, "haccs")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer sd.Start(reg, *statsdEvery)()
	}
	if jsonl != nil {
		defer func() {
			if err := jsonl.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Printf("trace written to %s\n", *jsonlPath)
			}
		}()
	}

	cfg := fl.Config{
		Arch:                modelFor(spec),
		Seed:                stats.DeriveSeed(*seed, 12),
		Local:               fl.LocalTrainConfig{Epochs: *epochs, BatchSize: 32, LR: *lr, ProxMu: *prox},
		ClientsPerRound:     *k,
		MaxRounds:           *rounds,
		EvalEvery:           5,
		PerSampleComputeSec: 0.01,
		RoundDeadline:       *deadline,
		Mode:                runMode,
		Async:               roundspkg.AsyncConfig{BufferK: *bufferK, MaxStaleness: *maxStale},
		Tracer:              tracer,
		Spans:               spans,
		Metrics:             reg,
		Fleet:               fleetReg,
	}
	if *dropout > 0 {
		cfg.Dropout = simnet.TransientDropout{
			Rate:   *dropout,
			Seed:   stats.DeriveSeed(*seed, 13),
			NewRNG: func(s uint64) interface{ Float64() float64 } { return stats.NewRNG(s) },
		}
	}

	var store *checkpoint.Store
	if *ckptDir != "" {
		store, err = checkpoint.NewStore(*ckptDir, *ckptRetain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "haccs-sim:", err)
			os.Exit(1)
		}
		cfg.Checkpoint = store
		cfg.CheckpointEvery = *ckptEvery
	}

	fmt.Printf("haccs-sim: %s on %s, %d clients, k=%d, %d rounds, seed=%d\n",
		strat.Name(), spec.Name, *clients, *k, *rounds, *seed)
	if *deadline > 0 {
		fmt.Printf("haccs-sim: straggler deadline %.1f virtual seconds (partial aggregation)\n", *deadline)
	}
	if runMode == roundspkg.ModeAsync {
		fmt.Printf("haccs-sim: async mode (buffer-k %d, max-staleness %d; 0 = auto/unlimited)\n", *bufferK, *maxStale)
	}
	eng := fl.NewEngine(cfg, roster, strat)
	if asyncInsp != nil {
		if ai, ok := eng.Runner().(introspect.AsyncInspector); ok {
			asyncInsp.bind(ai)
		}
	}
	if *resume {
		snap, err := store.LoadLatest()
		if err != nil {
			fmt.Fprintln(os.Stderr, "haccs-sim:", err)
			os.Exit(1)
		}
		if err := eng.Restore(snap); err != nil {
			fmt.Fprintln(os.Stderr, "haccs-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("haccs-sim: resumed from snapshot after round %d in %s\n", snap.Round, *ckptDir)
	}
	res := eng.Run()

	if *fleetCheck {
		if err := checkFleetEndpoint("http://" + srv.Addr() + "/debug/fleet"); err != nil {
			fmt.Fprintln(os.Stderr, "haccs-sim: fleet-check:", err)
			os.Exit(1)
		}
		fmt.Println("fleet-check: /debug/fleet healthy (straggler cuts recorded, fairness in (0,1])")
	}
	if *asyncCheck {
		if err := checkAsyncEndpoints("http://" + srv.Addr()); err != nil {
			fmt.Fprintln(os.Stderr, "haccs-sim: async-check:", err)
			os.Exit(1)
		}
		fmt.Println("async-check: staleness histogram on /metrics and buffer state on /debug/selection")
	}

	tab := metrics.NewTable("round", "virtual-time", "accuracy", "loss")
	for _, p := range res.History {
		tab.AddRow(p.Round, p.Time, p.Acc, p.Loss)
	}
	fmt.Print(tab.String())
	if tta, ok := metrics.TTA(res.History, *target); ok {
		fmt.Printf("time to %.0f%% accuracy: %.1f virtual seconds\n", *target*100, tta)
	} else {
		fmt.Printf("target accuracy %.0f%% not reached (final %.3f)\n", *target*100, res.FinalAccuracy())
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return metrics.WriteHistoryCSV(w, res.History)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("curve written to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(w io.Writer) error {
			return metrics.Summarize(res, *target).WriteJSON(w)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("summary written to %s\n", *jsonPath)
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("haccs-sim: %w", err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		return fmt.Errorf("haccs-sim: write %s: %w", path, err)
	}
	return f.Close()
}

func specFor(family string, classes, size int) (dataset.Spec, error) {
	var spec dataset.Spec
	switch family {
	case "mnist":
		spec = dataset.SyntheticMNIST()
		spec.Classes = classes
	case "femnist":
		spec = dataset.SyntheticFEMNIST(classes)
	case "cifar":
		spec = dataset.SyntheticCIFAR()
		spec.Classes = classes
	default:
		return spec, fmt.Errorf("haccs-sim: unknown dataset %q", family)
	}
	return spec.Compact(size, size), nil
}

func modelFor(spec dataset.Spec) nn.Arch {
	return nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{32}, Classes: spec.Classes}
}

func buildStrategy(name string, trainSets []*dataset.Dataset, eps, rho float64, intra core.IntraClusterPolicy, backend core.ClusterBackend, seed uint64, tracer telemetry.Tracer, reg *telemetry.Registry) (fl.Strategy, error) {
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, 15))
	switch name {
	case "random":
		return selection.NewRandom(), nil
	case "tifl":
		return selection.NewTiFL(5), nil
	case "oort":
		return selection.NewOort(), nil
	case "haccs-py":
		sums := core.BuildSummaries(trainSets, core.PY, 0, eps, noiseRNG)
		return core.NewScheduler(core.Config{Kind: core.PY, Rho: rho, IntraCluster: intra, Backend: backend, Tracer: tracer, Metrics: reg}, sums), nil
	case "haccs-pxy":
		sums := core.BuildSummaries(trainSets, core.PXY, 0, eps, noiseRNG)
		return core.NewScheduler(core.Config{Kind: core.PXY, Rho: rho, IntraCluster: intra, Backend: backend, Tracer: tracer, Metrics: reg}, sums), nil
	default:
		return nil, fmt.Errorf("haccs-sim: unknown strategy %q", name)
	}
}
