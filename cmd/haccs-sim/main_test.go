package main

import (
	"strings"
	"testing"
)

// goodFlags returns a baseline that passes validation; cases mutate
// one field each.
func goodFlags() simFlags {
	return simFlags{
		Rounds: 100, Clients: 30, Classes: 10, K: 6, Size: 8, Epochs: 2,
		Dropout: 0, Deadline: 0, Rho: 0.75, Policy: "fastest",
		CheckpointEvery: 1, CheckpointRetain: 3,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*simFlags)
		wantErr string // empty = valid
	}{
		{"baseline", func(f *simFlags) {}, ""},
		{"negative_rounds", func(f *simFlags) { f.Rounds = -1 }, "-rounds"},
		{"zero_rounds", func(f *simFlags) { f.Rounds = 0 }, "-rounds"},
		{"negative_clients", func(f *simFlags) { f.Clients = -5 }, "-clients"},
		{"negative_k", func(f *simFlags) { f.K = -2 }, "-k"},
		{"zero_k", func(f *simFlags) { f.K = 0 }, "-k"},
		{"zero_classes", func(f *simFlags) { f.Classes = 0 }, "-classes"},
		{"zero_size", func(f *simFlags) { f.Size = 0 }, "-size"},
		{"zero_epochs", func(f *simFlags) { f.Epochs = 0 }, "-epochs"},
		{"dropout_negative", func(f *simFlags) { f.Dropout = -0.1 }, "-dropout"},
		{"dropout_over_one", func(f *simFlags) { f.Dropout = 1.5 }, "-dropout"},
		{"deadline_negative", func(f *simFlags) { f.Deadline = -1 }, "-deadline"},
		{"rho_out_of_range", func(f *simFlags) { f.Rho = 1.2 }, "-rho"},
		{"unknown_policy", func(f *simFlags) { f.Policy = "slowest" }, "-policy"},
		{"unknown_backend", func(f *simFlags) { f.Backend = "exact" }, "-cluster-backend"},
		{"sketch_backend_ok", func(f *simFlags) { f.Backend = "sketch" }, ""},
		{"resume_without_dir", func(f *simFlags) { f.Resume = true }, "-resume requires -checkpoint-dir"},
		{"resume_with_dir", func(f *simFlags) { f.Resume = true; f.CheckpointDir = "/tmp/ck" }, ""},
		{"checkpoint_every_zero", func(f *simFlags) { f.CheckpointDir = "/tmp/ck"; f.CheckpointEvery = 0 }, "-checkpoint-every"},
		{"checkpoint_retain_zero", func(f *simFlags) { f.CheckpointDir = "/tmp/ck"; f.CheckpointRetain = 0 }, "-checkpoint-retain"},
		{"every_zero_without_dir_ok", func(f *simFlags) { f.CheckpointEvery = 0 }, ""},
		{"fleet_check_without_metrics", func(f *simFlags) { f.FleetCheck = true }, "-fleet-check requires -metrics-addr"},
		{"async_mode_ok", func(f *simFlags) { f.Mode = "async" }, ""},
		{"sync_mode_explicit_ok", func(f *simFlags) { f.Mode = "sync" }, ""},
		{"unknown_mode", func(f *simFlags) { f.Mode = "buffered" }, "-mode"},
		{"async_with_deadline", func(f *simFlags) { f.Mode = "async"; f.Deadline = 5 }, "-deadline is sync-only"},
		{"async_buffer_k_ok", func(f *simFlags) { f.Mode = "async"; f.BufferK = 3 }, ""},
		{"async_buffer_k_over_budget", func(f *simFlags) { f.Mode = "async"; f.BufferK = 7 }, "-buffer-k"},
		{"async_buffer_k_negative", func(f *simFlags) { f.Mode = "async"; f.BufferK = -1 }, "-buffer-k"},
		{"async_max_staleness_ok", func(f *simFlags) { f.Mode = "async"; f.MaxStaleness = 4 }, ""},
		{"async_max_staleness_negative", func(f *simFlags) { f.Mode = "async"; f.MaxStaleness = -1 }, "-max-staleness"},
		{"buffer_k_in_sync", func(f *simFlags) { f.BufferK = 3 }, "-buffer-k requires -mode async"},
		{"max_staleness_in_sync", func(f *simFlags) { f.MaxStaleness = 2 }, "-max-staleness requires -mode async"},
		{"async_check_in_sync", func(f *simFlags) { f.AsyncCheck = true; f.MetricsAddr = "127.0.0.1:0" }, "-async-check requires -mode async"},
		{"async_check_without_metrics", func(f *simFlags) { f.Mode = "async"; f.AsyncCheck = true }, "-async-check requires -metrics-addr"},
		{"async_check_ok", func(f *simFlags) { f.Mode = "async"; f.AsyncCheck = true; f.MetricsAddr = "127.0.0.1:0" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := goodFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
