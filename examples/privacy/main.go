// Privacy trade-off: each client noises its P(y) histogram with the
// Laplace mechanism before upload. This example sweeps the privacy
// budget ε and shows (a) what the noised histograms look like (the
// paper's Fig. 3) and (b) how clustering accuracy degrades as ε shrinks
// (Fig. 8a's trade-off).
//
// Run with: go run ./examples/privacy
package main

import (
	"fmt"
	"math"
	"strings"

	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/metrics"
	"haccs/internal/stats"
)

func main() {
	const (
		seed            = 11
		classes         = 10
		clientsPerLabel = 2
		samples         = 800
	)

	spec := dataset.SyntheticCIFAR().Compact(8, 8)
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, 1))
	rng := stats.NewRNG(stats.DeriveSeed(seed, 2))
	plan := dataset.PairedLabelPlan(classes, clientsPerLabel, samples, rng)
	var sets []*dataset.Dataset
	for i := 0; i < plan.NumClients(); i++ {
		sets = append(sets, gen.Generate(plan.Dists[i].Draw(plan.Samples[i], rng), rng))
	}

	// (a) Fig. 3 style: one client's histogram before and after noising.
	clean := core.Summarize(sets[0], core.PY, 0)
	fmt.Println("client 0 label histogram (true counts vs Laplace-noised):")
	for _, eps := range []float64{0.1, 0.005} {
		noised := clean.Noised(eps, stats.NewRNG(stats.DeriveSeed(seed, 3)))
		fmt.Printf("  eps=%-6g:", eps)
		for c := 0; c < classes; c++ {
			fmt.Printf(" %6.0f", noised.Label.Counts[c])
		}
		fmt.Println()
	}
	fmt.Printf("  true     :")
	for c := 0; c < classes; c++ {
		fmt.Printf(" %6.0f", clean.Label.Counts[c])
	}
	fmt.Println()
	fmt.Printf("  (per-bin noise stddev at eps: 0.1 -> %.0f, 0.005 -> %.0f)\n\n",
		math.Sqrt(stats.LaplaceNoiseVariance(0.1)), math.Sqrt(stats.LaplaceNoiseVariance(0.005)))

	// (b) Fig. 8a style: clustering accuracy vs epsilon.
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, 4))
	tab := metrics.NewTable("epsilon", "clusters-found", "exact-recovery", "bar")
	for _, eps := range []float64{1, 0.1, 0.05, 0.01, 0.005, 0.001} {
		sums := core.BuildSummaries(sets, core.PY, 0, eps, noiseRNG)
		m := core.DistanceMatrix(sums)
		labels := cluster.OPTICS(m, 2, math.Inf(1)).ExtractBestSilhouette(m, 0)
		acc := cluster.ExactRecovery(labels, plan.Group)
		tab.AddRow(eps, cluster.NumClusters(labels), acc, strings.Repeat("#", int(acc*20)))
	}
	fmt.Println("clustering accuracy vs privacy budget (10 true clusters):")
	fmt.Print(tab.String())
	fmt.Println("\nsmaller epsilon = stronger privacy = noisier summaries = worse clustering —")
	fmt.Println("the fundamental trade-off HACCS exposes as a single tunable parameter.")
}
