// Dropout robustness: when a cluster's fastest device disappears, HACCS
// substitutes the next-fastest device with the same data distribution, so
// training barely notices — the paper's §V-C scenario. This example runs
// HACCS and Oort under 20% per-epoch transient dropout and reports both
// curves plus a per-cluster substitution trace.
//
// Run with: go run ./examples/dropout
package main

import (
	"fmt"

	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/metrics"
	"haccs/internal/nn"
	"haccs/internal/selection"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

func main() {
	const (
		seed        = 7
		clients     = 24
		classes     = 8
		rounds      = 60
		k           = 5
		dropoutRate = 0.20
	)

	spec := dataset.SyntheticFEMNIST(classes).Compact(8, 8)
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, 1))
	plan := dataset.MajorityNoisePlan(clients, classes, 120, 240, stats.NewRNG(stats.DeriveSeed(seed, 2)))
	clientData := plan.Materialize(gen, 0.8, stats.NewRNG(stats.DeriveSeed(seed, 3)))

	profRNG := stats.NewRNG(stats.DeriveSeed(seed, 4))
	roster := make([]*fl.Client, clients)
	trainSets := make([]*dataset.Dataset, clients)
	for i, cd := range clientData {
		roster[i] = &fl.Client{ID: i, Data: cd, Profile: simnet.SampleProfile(profRNG)}
		trainSets[i] = cd.Train
	}

	// The identical dropout schedule hits both strategies (the paper
	// seeds its RNGs so the same devices drop for every strategy).
	dropout := simnet.TransientDropout{
		Rate:   dropoutRate,
		Seed:   stats.DeriveSeed(seed, 5),
		NewRNG: func(s uint64) interface{ Float64() float64 } { return stats.NewRNG(s) },
	}
	cfg := fl.Config{
		Arch:                nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{32}, Classes: classes},
		Seed:                stats.DeriveSeed(seed, 6),
		Local:               fl.LocalTrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05},
		ClientsPerRound:     k,
		MaxRounds:           rounds,
		EvalEvery:           5,
		PerSampleComputeSec: 0.01,
		Dropout:             dropout,
		RecordSelections:    true,
	}

	summaries := core.BuildSummaries(trainSets, core.PY, 0, 0, stats.NewRNG(stats.DeriveSeed(seed, 7)))
	haccs := core.NewScheduler(core.Config{Kind: core.PY, Rho: 0.75}, summaries)

	fmt.Printf("running HACCS-P(y) and Oort with %.0f%% per-epoch dropout...\n", dropoutRate*100)
	haccsRes := fl.NewEngine(cfg, roster, haccs).Run()
	oortRes := fl.NewEngine(cfg, roster, selection.NewOort()).Run()

	tab := metrics.NewTable("round", "haccs-acc", "oort-acc")
	for i := range haccsRes.History {
		tab.AddRow(haccsRes.History[i].Round, haccsRes.History[i].Acc, oortRes.History[i].Acc)
	}
	fmt.Print(tab.String())
	fmt.Printf("final accuracy: haccs %.3f, oort %.3f\n\n", haccsRes.FinalAccuracy(), oortRes.FinalAccuracy())

	// Substitution trace: how many distinct devices per cluster HACCS
	// actually used — dropout forces rotation inside clusters.
	used := map[int]map[int]bool{}
	labels := haccs.ClusterLabels()
	for _, sel := range haccsRes.Selected {
		for _, id := range sel {
			c := labels[id]
			if used[c] == nil {
				used[c] = map[int]bool{}
			}
			used[c][id] = true
		}
	}
	trace := metrics.NewTable("cluster", "members", "distinct-devices-used")
	for c, members := range haccs.Clusters() {
		trace.AddRow(c, len(members), len(used[c]))
	}
	fmt.Println("HACCS per-cluster substitution under dropout:")
	fmt.Print(trace.String())
}
