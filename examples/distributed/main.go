// Distributed: the full HACCS pipeline over real TCP connections, in one
// process for convenience — a coordinator and N client goroutines that
// could just as well be separate machines. Clients register privacy-
// noised P(y) summaries; the coordinator clusters them server-side,
// schedules clusters per round, pushes global parameters, and folds the
// replies with federated averaging. This mirrors the paper's
// gRPC/PySyft deployment (Fig. 2) end to end.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sync"

	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/flnet"
	"haccs/internal/metrics"
	"haccs/internal/nn"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

func main() {
	const (
		seed    = 23
		nClient = 12
		classes = 6
		k       = 4
		rounds  = 40
		eps     = 0.5 // differential-privacy budget for the uploaded summaries
	)

	// Build the federated workload: 6 majority-label groups of 2, with
	// Table II system profiles.
	spec := dataset.SyntheticMNIST().Compact(8, 8)
	spec.Classes = classes
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, 1))
	plan := dataset.MajorityNoisePlan(nClient, classes, 150, 250, stats.NewRNG(stats.DeriveSeed(seed, 2)))
	clientData := plan.Materialize(gen, 0.8, stats.NewRNG(stats.DeriveSeed(seed, 3)))
	profRNG := stats.NewRNG(stats.DeriveSeed(seed, 4))
	arch := nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{32}, Classes: classes}

	srv, err := flnet.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	fmt.Printf("coordinator listening on %s\n", srv.Addr())

	// Launch the clients.
	var wg sync.WaitGroup
	for i := 0; i < nClient; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			me := &fl.Client{ID: i, Data: clientData[i], Profile: simnet.SampleProfile(profRNG)}
			model := arch.Build(stats.NewRNG(1))
			trainer := flnet.TrainerFunc(func(round int, params []float64) ([]float64, int, float64) {
				res := me.LocalTrain(model, params,
					fl.LocalTrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05},
					stats.NewRNG(stats.DeriveSeed(seed, uint64(1000+i*100+round))))
				return res.Params, res.NumSamples, res.Loss
			})
			// The client noises its own histogram before upload: the
			// coordinator never sees true counts.
			noised := core.Summarize(me.Data.Train, core.PY, 0).
				Noised(eps, stats.NewRNG(stats.DeriveSeed(seed, uint64(2000+i))))
			reg := flnet.RegisterFromSummary(i, noised.Label.Counts, nil,
				me.RoundLatency(0.01, 2, 4*arch.Build(stats.NewRNG(1)).NumParams()), me.NumTrainSamples())
			c := &flnet.Client{Reg: reg, Trainer: trainer}
			if _, err := c.Run(srv.Addr()); err != nil {
				log.Printf("client %d: %v", i, err)
			}
		}(i)
	}

	regs, err := srv.AcceptClients(nClient)
	if err != nil {
		log.Fatalf("accept: %v", err)
	}
	fmt.Printf("registered %d clients (P(y) summaries noised at eps=%g)\n", len(regs), eps)

	// Server-side HACCS: cluster the wire summaries, then schedule.
	sums := make([]core.Summary, nClient)
	infos := make([]fl.ClientInfo, nClient)
	for _, r := range regs {
		sums[r.ClientID] = core.Summary{Kind: core.PY, Label: r.LabelHistogram()}
		infos[r.ClientID] = fl.ClientInfo{ID: r.ClientID, Latency: r.LatencyEstimate, NumSamples: r.NumSamples}
	}
	sched := core.NewScheduler(core.Config{Kind: core.PY, Rho: 0.75}, sums)
	sched.Init(infos, stats.NewRNG(stats.DeriveSeed(seed, 5)))
	fmt.Printf("coordinator clustered clients into %d groups: %v\n", sched.NumClusters(), sched.ClusterLabels())

	// The shared round runtime drives selection, dispatch, aggregation
	// and loss feedback over the wire — the same state machine the
	// in-process simulation engine uses. Refreshed summaries piggybacked
	// on replies feed the scheduler's re-clustering.
	global := arch.Build(stats.NewRNG(stats.DeriveSeed(seed, 6)))
	coord, err := flnet.NewCoordinator(srv, flnet.CoordinatorConfig{
		ClientsPerRound: k,
		OnSummary: func(id int, counts []float64) {
			sched.UpdateSummaries(map[int]core.Summary{
				id: {Kind: core.PY, Label: &stats.Histogram{Counts: counts}},
			})
		},
	}, sched, global.ParamsVector())
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	tab := metrics.NewTable("round", "selected", "mean-loss")
	for round := 0; round < rounds; round++ {
		out := coord.RunRound(round)
		if round%8 == 0 || round == rounds-1 {
			mean := 0.0
			for _, l := range out.Losses {
				mean += l / float64(len(out.Losses))
			}
			tab.AddRow(round, fmt.Sprintf("%v", out.Selected), mean)
		}
	}
	srv.Close()
	wg.Wait()
	fmt.Print(tab.String())

	// Evaluate the aggregated model against every client's test data.
	global.SetParamsVector(coord.Global())
	total := 0.0
	for i := range clientData {
		_, acc := global.Evaluate(clientData[i].Test.X, clientData[i].Test.Y)
		total += acc
	}
	fmt.Printf("final mean test accuracy across %d clients: %.3f\n", nClient, total/float64(nClient))
}
