// Quickstart: build a small federated workload, cluster the clients with
// HACCS from their P(y) summaries, train for a few rounds, and print the
// accuracy curve alongside a random-selection baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/metrics"
	"haccs/internal/nn"
	"haccs/internal/selection"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

func main() {
	const (
		seed    = 42
		clients = 20
		classes = 8
		rounds  = 100
		k       = 5
	)

	// 1. A synthetic image dataset: one majority label per client plus
	//    three noise labels (the paper's 75/12/7/6 skew).
	spec := dataset.SyntheticMNIST().Compact(8, 8)
	spec.Classes = classes
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, 1))
	plan := dataset.MajorityNoisePlan(clients, classes, 120, 240, stats.NewRNG(stats.DeriveSeed(seed, 2)))
	clientData := plan.Materialize(gen, 0.8, stats.NewRNG(stats.DeriveSeed(seed, 3)))

	// 2. Clients with Table II system profiles (fast/medium/slow/very
	//    slow devices).
	profRNG := stats.NewRNG(stats.DeriveSeed(seed, 4))
	roster := make([]*fl.Client, clients)
	trainSets := make([]*dataset.Dataset, clients)
	for i, cd := range clientData {
		roster[i] = &fl.Client{ID: i, Data: cd, Profile: simnet.SampleProfile(profRNG)}
		trainSets[i] = cd.Train
	}

	// 3. HACCS: every client ships a privacy-preserving P(y) histogram;
	//    the server clusters them and schedules clusters, not devices.
	summaries := core.BuildSummaries(trainSets, core.PY, 0, 0, stats.NewRNG(stats.DeriveSeed(seed, 5)))
	haccs := core.NewScheduler(core.Config{Kind: core.PY, Rho: 0.75}, summaries)

	cfg := fl.Config{
		Arch:                nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{32}, Classes: classes},
		Seed:                stats.DeriveSeed(seed, 6),
		Local:               fl.LocalTrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05},
		ClientsPerRound:     k,
		MaxRounds:           rounds,
		EvalEvery:           5,
		PerSampleComputeSec: 0.01,
	}

	fmt.Println("training with HACCS-P(y) cluster scheduling...")
	haccsRes := fl.NewEngine(cfg, roster, haccs).Run()
	fmt.Printf("identified %d clusters over %d clients\n", haccs.NumClusters(), clients)

	fmt.Println("training the same workload with random selection...")
	randRes := fl.NewEngine(cfg, roster, selection.NewRandom()).Run()

	tab := metrics.NewTable("round", "haccs-time", "haccs-acc", "random-time", "random-acc")
	for i := range haccsRes.History {
		h := haccsRes.History[i]
		r := randRes.History[i]
		tab.AddRow(h.Round, h.Time, h.Acc, r.Time, r.Acc)
	}
	fmt.Print(tab.String())

	const target = 0.5
	ht, hok := metrics.TTA(haccsRes.History, target)
	rt, rok := metrics.TTA(randRes.History, target)
	switch {
	case hok && rok:
		fmt.Printf("time to %.0f%%: haccs %.1fs vs random %.1fs (%.0f%% reduction)\n",
			target*100, ht, rt, 100*metrics.Reduction(rt, ht))
	case hok:
		fmt.Printf("haccs reached %.0f%% in %.1fs; random never did\n", target*100, ht)
	default:
		fmt.Printf("neither run reached %.0f%% — raise rounds for a longer demo\n", target*100)
	}
}
