// Feature skew: half the clients hold 45°-rotated images, so their
// class-conditional feature distributions P(X|y) differ even when label
// distributions match. The P(y) summary cannot see this; the P(X|y)
// summary can. This example clusters the same roster with both summaries
// and compares how well each separates rotated from upright clients —
// the paper's §V-D4 scenario.
//
// Run with: go run ./examples/featureskew
package main

import (
	"fmt"
	"math"

	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/metrics"
	"haccs/internal/stats"
)

func main() {
	const (
		seed     = 13
		classes  = 6
		perMajor = 4 // clients per majority label; half of them rotated
		samples  = 400
		rotation = 45.0
	)

	spec := dataset.SyntheticMNIST().Compact(8, 8)
	spec.Classes = classes
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, 1))
	rng := stats.NewRNG(stats.DeriveSeed(seed, 2))

	var sets []*dataset.Dataset
	var rotated []bool // ground truth: was this client's data rotated?
	var major []int
	for m := 0; m < classes; m++ {
		for k := 0; k < perMajor; k++ {
			noise := []int{(m + 1) % classes, (m + 2) % classes, (m + 3) % classes}
			ld := dataset.MajorityNoise(m, 0.75, noise, dataset.DefaultMajorityFractions)
			d := gen.Generate(ld.Draw(samples, rng), rng)
			rot := k >= perMajor/2
			if rot {
				d = d.Rotate(rotation)
			}
			sets = append(sets, d)
			rotated = append(rotated, rot)
			major = append(major, m)
		}
	}

	// Ground truth for P(X|y): (majority, rotation) pairs are distinct
	// distributions. For P(y): rotation is invisible, only majors.
	truthXY := make([]int, len(sets))
	truthY := make([]int, len(sets))
	for i := range sets {
		truthY[i] = major[i]
		truthXY[i] = major[i]*2 + boolToInt(rotated[i])
	}

	clusterWith := func(kind core.SummaryKind) []int {
		sums := core.BuildSummaries(sets, kind, 0, 0, stats.NewRNG(stats.DeriveSeed(seed, 3)))
		m := core.DistanceMatrix(sums)
		return cluster.OPTICS(m, 2, math.Inf(1)).ExtractBestSilhouette(m, 0)
	}

	py := clusterWith(core.PY)
	pxy := clusterWith(core.PXY)

	tab := metrics.NewTable("summary", "clusters-found", "recovers-majors", "recovers-major+rotation")
	tab.AddRow("P(y)", cluster.NumClusters(py), cluster.ExactRecovery(py, truthY), cluster.ExactRecovery(py, truthXY))
	tab.AddRow("P(X|y)", cluster.NumClusters(pxy), cluster.ExactRecovery(pxy, truthY), cluster.ExactRecovery(pxy, truthXY))
	fmt.Printf("%d clients: %d majority labels x {upright, rotated %g°}\n", len(sets), classes, rotation)
	fmt.Print(tab.String())

	// Show whether P(X|y) tells rotated apart from upright within one
	// majority label, which P(y) cannot by construction.
	sumsY := core.BuildSummaries(sets, core.PY, 0, 0, stats.NewRNG(stats.DeriveSeed(seed, 3)))
	sumsXY := core.BuildSummaries(sets, core.PXY, 0, 0, stats.NewRNG(stats.DeriveSeed(seed, 3)))
	// Clients 0 and 1 share major 0 upright; client 2 is major 0 rotated.
	fmt.Println("\npairwise distances within majority label 0:")
	pair := metrics.NewTable("pair", "P(y) distance", "P(X|y) distance")
	pair.AddRow("upright vs upright", core.Distance(sumsY[0], sumsY[1]), core.Distance(sumsXY[0], sumsXY[1]))
	pair.AddRow("upright vs rotated", core.Distance(sumsY[0], sumsY[2]), core.Distance(sumsXY[0], sumsXY[2]))
	fmt.Print(pair.String())
	fmt.Println("\nP(X|y) separates rotated data that P(y) is structurally blind to.")
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
