// Package haccs is a from-scratch Go reproduction of "HACCS:
// Heterogeneity-Aware Clustered Client Selection for Accelerated
// Federated Learning" (Wolfrath et al., IPDPS 2022).
//
// The implementation lives under internal/: the statistical substrate
// (stats), dense tensor math (tensor), a neural-network stack (nn),
// synthetic federated datasets (dataset), density-based clustering
// (cluster), the Table II system-heterogeneity model (simnet), the
// virtual-clock federated engine (fl), a TCP protocol transport (flnet),
// the baseline selection strategies (selection), the HACCS scheduler
// itself (core), result post-processing (metrics), and one runner per
// paper table/figure (experiments). Binaries are cmd/haccs-sim and
// cmd/haccs-bench; runnable walkthroughs live in examples/.
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation via `go test -bench=.`; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
package haccs
