package cluster

import (
	"time"

	"haccs/internal/telemetry"
)

// Instrumented clustering entry points: identical results to the plain
// functions, plus run count, duration and output-size gauges recorded
// into a telemetry registry under one "algo" label. A nil registry is
// a pure passthrough, so callers thread their (possibly nil) registry
// through unconditionally. Re-clustering cost is the paper's §IV-C
// concern — summary updates trigger OPTICS reruns whose cost must stay
// visible per run.

// observeRun records one clustering pass under the algorithm's label.
func observeRun(reg *telemetry.Registry, algo string, points int, seconds float64) {
	reg.CounterVec("haccs_clustering_runs_total", "Clustering passes executed.", "algo").With(algo).Inc()
	reg.GaugeVec("haccs_clustering_points", "Points fed into the latest clustering pass.", "algo").With(algo).Set(float64(points))
	reg.GaugeVec("haccs_clustering_duration_seconds", "Host wall-clock duration of the latest clustering pass.", "algo").With(algo).Set(seconds)
}

// InstrumentedOPTICS runs OPTICS and records its cost into reg.
func InstrumentedOPTICS(reg *telemetry.Registry, m *Matrix, minPts int, maxEps float64) *OPTICSResult {
	if reg == nil {
		return OPTICS(m, minPts, maxEps)
	}
	start := time.Now()
	res := OPTICS(m, minPts, maxEps)
	observeRun(reg, "optics", m.Len(), time.Since(start).Seconds())
	return res
}

// InstrumentedAgglomerative runs hierarchical clustering and records
// its cost into reg.
func InstrumentedAgglomerative(reg *telemetry.Registry, m *Matrix, linkage Linkage) *Dendrogram {
	if reg == nil {
		return Agglomerative(m, linkage)
	}
	start := time.Now()
	d := Agglomerative(m, linkage)
	observeRun(reg, "agglomerative", m.Len(), time.Since(start).Seconds())
	return d
}

// ObserveClusterCount records how many clusters an extraction produced
// (noise labels excluded) for the given algorithm label.
func ObserveClusterCount(reg *telemetry.Registry, algo string, labels []int) {
	if reg == nil {
		return
	}
	reg.GaugeVec("haccs_clustering_clusters", "Clusters extracted by the latest pass.", "algo").With(algo).Set(float64(NumClusters(labels)))
}
