package cluster

import (
	"math"
	"sync/atomic"
	"testing"
)

// pairDist is a deterministic pure function of the pair — what every
// real FromFunc call site looks like (a read-only closure over
// precomputed per-point data).
func pairDist(i, j int) float64 {
	return math.Abs(math.Sin(float64(i*131+j*7)))*2 + float64(i+j)*1e-3
}

// TestFromFuncParallelMatchesSerial builds matrices straddling the
// serial/parallel threshold and checks every cell against a serial
// reference build, plus symmetry and a zero diagonal. With 128 points
// (8128 pairs) the parallel path runs whenever GOMAXPROCS > 1.
func TestFromFuncParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 17, 50, 64, 65, 128} {
		m := FromFunc(n, pairDist)
		want := NewMatrix(n)
		want.fillRows(0, 1, pairDist)
		for i := 0; i < n; i++ {
			if m.At(i, i) != 0 {
				t.Fatalf("n=%d: diagonal (%d,%d) = %v, want 0", n, i, i, m.At(i, i))
			}
			for j := 0; j < n; j++ {
				if m.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d: cell (%d,%d) = %v, want %v", n, i, j, m.At(i, j), want.At(i, j))
				}
				if m.At(i, j) != m.At(j, i) {
					t.Fatalf("n=%d: asymmetric at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

// TestFromFuncCallsEachPairOnce counts dist invocations: exactly one per
// unordered pair regardless of the serial/parallel split.
func TestFromFuncCallsEachPairOnce(t *testing.T) {
	for _, n := range []int{3, 50, 90} {
		var calls atomic.Int64
		FromFunc(n, func(i, j int) float64 {
			calls.Add(1)
			if j <= i {
				t.Errorf("n=%d: dist called with j=%d <= i=%d", n, j, i)
			}
			return 1
		})
		if got, want := calls.Load(), int64(n*(n-1)/2); got != want {
			t.Fatalf("n=%d: dist called %d times, want %d", n, got, want)
		}
	}
}

// TestFromFuncNegativePanicParallel pins the negative-distance panic on
// a matrix large enough to take the parallel path.
func TestFromFuncNegativePanicParallel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative distance")
		}
	}()
	FromFunc(128, func(i, j int) float64 {
		if i == 100 && j == 101 {
			return -0.5
		}
		return 1
	})
}
