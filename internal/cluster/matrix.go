// Package cluster implements the density-based clustering algorithms the
// HACCS server runs on pairwise distribution distances: DBSCAN (Ester et
// al., KDD'96) and OPTICS (Ankerst et al., SIGMOD'99), both operating on
// a precomputed symmetric distance matrix, plus the cluster-quality
// metrics used in the paper's privacy experiment (Fig. 8a).
package cluster

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a symmetric pairwise distance matrix over n points, stored
// as the packed upper triangle (diagonal included): n·(n+1)/2 floats
// instead of n², row-major with row i holding cells (i,i)..(i,n-1). The
// At/Set API is unchanged — both index orders read and write the same
// packed cell — so symmetry is structural rather than maintained by
// mirror writes.
type Matrix struct {
	n int
	d []float64
}

// NewMatrix allocates a zero matrix over n points.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic("cluster: NewMatrix with non-positive size")
	}
	return &Matrix{n: n, d: make([]float64, n*(n+1)/2)}
}

// idx maps an (i, j) pair in either order to its packed-triangle offset:
// row i (i <= j) starts at i·n − i·(i−1)/2 and cell (i, j) sits j−i in.
func (m *Matrix) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*m.n - i*(i-1)/2 + (j - i)
}

// fromFuncSerialPairs is the pair count below which FromFunc stays
// serial: for small matrices (a 50-client roster is 1225 pairs) goroutine
// fan-out costs more than it saves.
const fromFuncSerialPairs = 2048

// FromFunc builds a symmetric matrix by evaluating dist(i, j) for every
// pair i < j; the diagonal is zero.
//
// For large matrices the pairs are evaluated in parallel across
// GOMAXPROCS workers, each owning a strided set of rows (row i carries
// n-1-i pairs, so striding balances the triangular workload). dist must
// therefore be safe for concurrent calls — every call site passes a
// read-only closure over precomputed per-point data, which is safe by
// construction. Each (i, j) pair is evaluated exactly once and written
// to its single packed cell by the worker owning row i, so the result
// is identical to the serial build. A panic inside dist (including the
// negative-distance panic) is re-raised on the calling goroutine.
func FromFunc(n int, dist func(i, j int) float64) *Matrix {
	m := NewMatrix(n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n/2 {
		workers = n / 2
	}
	if workers <= 1 || n*(n-1)/2 < fromFuncSerialPairs {
		m.fillRows(0, 1, dist)
		return m
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		go func(start int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			m.fillRows(start, workers, dist)
		}(w)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
	return m
}

// fillRows evaluates every pair (i, j), j > i, for rows start, start+
// stride, start+2·stride, …. Every cell of packed row i belongs to row i
// alone, so strided workers never write the same cell.
func (m *Matrix) fillRows(start, stride int, dist func(i, j int) float64) {
	n := m.n
	for i := start; i < n; i += stride {
		row := m.d[m.idx(i, i) : m.idx(i, i)+n-i]
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			if v < 0 {
				panic(fmt.Sprintf("cluster: negative distance %v for pair (%d,%d)", v, i, j))
			}
			row[j-i] = v
		}
	}
}

// Len returns the number of points.
func (m *Matrix) Len() int { return m.n }

// At returns the distance between points i and j.
func (m *Matrix) At(i, j int) float64 { return m.d[m.idx(i, j)] }

// Set assigns the symmetric distance between points i and j.
func (m *Matrix) Set(i, j int, v float64) {
	if v < 0 {
		panic("cluster: negative distance")
	}
	m.d[m.idx(i, j)] = v
}

// Noise is the cluster label assigned to points not belonging to any
// cluster.
const Noise = -1

// NumClusters returns the number of distinct non-noise labels in an
// assignment.
func NumClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l != Noise {
			seen[l] = true
		}
	}
	return len(seen)
}

// Members returns the point indices of each cluster, indexed by cluster
// label (labels are assumed to be 0..k-1 as produced by DBSCAN/OPTICS).
func Members(labels []int) [][]int {
	k := 0
	for _, l := range labels {
		if l >= k {
			k = l + 1
		}
	}
	out := make([][]int, k)
	for i, l := range labels {
		if l != Noise {
			out[l] = append(out[l], i)
		}
	}
	return out
}
