package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"haccs/internal/stats"
)

// pointsMatrix builds a distance matrix from 1-D coordinates.
func pointsMatrix(xs []float64) *Matrix {
	return FromFunc(len(xs), func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) })
}

// twoBlobs returns 1-D points forming two well-separated groups of the
// given sizes.
func twoBlobs(n1, n2 int) ([]float64, []int) {
	var xs []float64
	var truth []int
	for i := 0; i < n1; i++ {
		xs = append(xs, 0+0.01*float64(i))
		truth = append(truth, 0)
	}
	for i := 0; i < n2; i++ {
		xs = append(xs, 10+0.01*float64(i))
		truth = append(truth, 1)
	}
	return xs, truth
}

func TestMatrixSymmetric(t *testing.T) {
	m := FromFunc(3, func(i, j int) float64 { return float64(i + j) })
	if m.At(0, 2) != m.At(2, 0) || m.At(0, 2) != 2 {
		t.Errorf("matrix not symmetric: %v vs %v", m.At(0, 2), m.At(2, 0))
	}
	if m.At(1, 1) != 0 {
		t.Error("diagonal not zero")
	}
	m.Set(0, 1, 7)
	if m.At(1, 0) != 7 {
		t.Error("Set not symmetric")
	}
}

func TestMatrixNegativeDistancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromFunc(2, func(i, j int) float64 { return -1 })
}

func TestDBSCANTwoClusters(t *testing.T) {
	xs, truth := twoBlobs(5, 5)
	labels := DBSCAN(pointsMatrix(xs), 0.5, 2)
	if NumClusters(labels) != 2 {
		t.Fatalf("found %d clusters, want 2 (labels %v)", NumClusters(labels), labels)
	}
	if RandIndex(labels, truth) != 1 {
		t.Errorf("imperfect recovery: %v", labels)
	}
}

func TestDBSCANNoise(t *testing.T) {
	// Two tight pairs and one far-away singleton.
	xs := []float64{0, 0.1, 10, 10.1, 100}
	labels := DBSCAN(pointsMatrix(xs), 0.5, 2)
	if labels[4] != Noise {
		t.Errorf("outlier labeled %d, want Noise", labels[4])
	}
	if NumClusters(labels) != 2 {
		t.Errorf("clusters = %d, want 2", NumClusters(labels))
	}
}

func TestDBSCANSingleCluster(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.3, 0.4}
	labels := DBSCAN(pointsMatrix(xs), 0.15, 2)
	if NumClusters(labels) != 1 {
		t.Errorf("chain should form one cluster, got %v", labels)
	}
	for _, l := range labels {
		if l != 0 {
			t.Errorf("chain member labeled %d", l)
		}
	}
}

func TestDBSCANAllNoiseWithHighMinPts(t *testing.T) {
	xs := []float64{0, 5, 10}
	labels := DBSCAN(pointsMatrix(xs), 0.1, 2)
	for _, l := range labels {
		if l != Noise {
			t.Errorf("isolated point labeled %d", l)
		}
	}
}

func TestDBSCANBorderPointAbsorbed(t *testing.T) {
	// Points 0..3 dense; point at 0.45 is within eps of the last core
	// point but has too few neighbours to be core itself.
	xs := []float64{0, 0.1, 0.2, 0.3, 0.45}
	labels := DBSCAN(pointsMatrix(xs), 0.16, 3)
	if labels[4] == Noise {
		t.Errorf("border point left as noise: %v", labels)
	}
}

func TestOPTICSOrderingCoversAllPoints(t *testing.T) {
	xs, _ := twoBlobs(4, 4)
	res := OPTICS(pointsMatrix(xs), 2, math.Inf(1))
	if len(res.Order) != 8 || len(res.Reach) != 8 {
		t.Fatalf("order/reach lengths %d/%d", len(res.Order), len(res.Reach))
	}
	seen := map[int]bool{}
	for _, p := range res.Order {
		if seen[p] {
			t.Fatalf("point %d visited twice", p)
		}
		seen[p] = true
	}
}

func TestOPTICSExtractMatchesDBSCAN(t *testing.T) {
	// On clean, well-separated data, OPTICS ExtractDBSCAN at eps should
	// reproduce DBSCAN's partition at the same eps.
	xs, _ := twoBlobs(6, 5)
	m := pointsMatrix(xs)
	want := DBSCAN(m, 0.5, 2)
	got := OPTICS(m, 2, math.Inf(1)).ExtractDBSCAN(0.5)
	if RandIndex(got, want) != 1 {
		t.Errorf("OPTICS extraction %v != DBSCAN %v", got, want)
	}
}

func TestOPTICSExtractAutoTwoBlobs(t *testing.T) {
	xs, truth := twoBlobs(6, 6)
	labels := OPTICS(pointsMatrix(xs), 2, math.Inf(1)).ExtractAuto()
	if NumClusters(labels) != 2 {
		t.Fatalf("auto extraction found %d clusters: %v", NumClusters(labels), labels)
	}
	if RandIndex(labels, truth) != 1 {
		t.Errorf("auto extraction mismatch: %v", labels)
	}
}

func TestOPTICSExtractAutoSingleBlob(t *testing.T) {
	// Near-IID case: one flat blob must collapse to a single cluster,
	// the behaviour the paper relies on for the IID sensitivity run.
	rng := stats.NewRNG(1)
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = rng.Uniform(0, 0.1)
	}
	labels := OPTICS(pointsMatrix(xs), 2, math.Inf(1)).ExtractAuto()
	if NumClusters(labels) != 1 {
		t.Errorf("IID-like data produced %d clusters: %v", NumClusters(labels), labels)
	}
}

func TestOPTICSManyClusters(t *testing.T) {
	// Ten groups of three points each at well-separated centers.
	var xs []float64
	var truth []int
	for g := 0; g < 10; g++ {
		for k := 0; k < 3; k++ {
			xs = append(xs, float64(g*10)+0.05*float64(k))
			truth = append(truth, g)
		}
	}
	labels := OPTICS(pointsMatrix(xs), 2, math.Inf(1)).ExtractAuto()
	if NumClusters(labels) != 10 {
		t.Fatalf("found %d clusters, want 10", NumClusters(labels))
	}
	if ExactRecovery(labels, truth) != 1 {
		t.Errorf("exact recovery < 1: %v", labels)
	}
}

func TestOPTICSMaxEpsBoundsReachability(t *testing.T) {
	xs, _ := twoBlobs(4, 4)
	res := OPTICS(pointsMatrix(xs), 2, 1.0)
	// The cross-blob jump (distance 10) exceeds maxEps, so the second
	// blob must start with infinite reachability.
	infs := 0
	for _, r := range res.Reach {
		if math.IsInf(r, 1) {
			infs++
		}
	}
	if infs != 2 {
		t.Errorf("expected 2 infinite-reachability starts, got %d", infs)
	}
}

func TestOPTICSDeterministic(t *testing.T) {
	xs, _ := twoBlobs(5, 7)
	m := pointsMatrix(xs)
	a := OPTICS(m, 2, math.Inf(1))
	b := OPTICS(m, 2, math.Inf(1))
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("OPTICS ordering not deterministic")
		}
	}
}

func TestRandIndex(t *testing.T) {
	if r := RandIndex([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}); r != 1 {
		t.Errorf("label-permuted identical clustering RandIndex = %v", r)
	}
	if r := RandIndex([]int{0, 0, 0, 0}, []int{0, 0, 1, 1}); r != 2.0/6.0 {
		t.Errorf("RandIndex = %v, want %v", r, 2.0/6.0)
	}
	if r := RandIndex([]int{0}, []int{5}); r != 1 {
		t.Errorf("single point RandIndex = %v", r)
	}
}

func TestRandIndexPropertyBounds(t *testing.T) {
	f := func(a, b [8]uint8) bool {
		la := make([]int, 8)
		lb := make([]int, 8)
		for i := range la {
			la[i] = int(a[i]%4) - 1 // includes Noise
			lb[i] = int(b[i]%4) - 1
		}
		r := RandIndex(la, lb)
		return r >= 0 && r <= 1 && RandIndex(la, la) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExactRecovery(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	// Perfect (with permuted label names).
	if r := ExactRecovery([]int{5, 5, 9, 9, 1, 1}, truth); r != 1 {
		t.Errorf("permuted perfect recovery = %v", r)
	}
	// One group merged: only group 2 recovered exactly.
	if r := ExactRecovery([]int{0, 0, 0, 0, 1, 1}, truth); math.Abs(r-1.0/3.0) > 1e-12 {
		t.Errorf("merged recovery = %v, want 1/3", r)
	}
	// All noise: nothing recovered.
	if r := ExactRecovery([]int{-1, -1, -1, -1, -1, -1}, truth); r != 0 {
		t.Errorf("all-noise recovery = %v", r)
	}
}

func TestPurity(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	if p := Purity([]int{0, 0, 1, 1}, truth); p != 1 {
		t.Errorf("perfect purity = %v", p)
	}
	if p := Purity([]int{0, 0, 0, 0}, truth); p != 0.5 {
		t.Errorf("merged purity = %v, want 0.5", p)
	}
	// Noise points count against purity.
	if p := Purity([]int{0, 0, Noise, Noise}, truth); p != 0.5 {
		t.Errorf("noisy purity = %v, want 0.5", p)
	}
}

func TestMembersAndNumClusters(t *testing.T) {
	labels := []int{0, 1, 0, Noise, 1, 2}
	if NumClusters(labels) != 3 {
		t.Errorf("NumClusters = %d", NumClusters(labels))
	}
	mem := Members(labels)
	if len(mem) != 3 || len(mem[0]) != 2 || mem[2][0] != 5 {
		t.Errorf("Members = %v", mem)
	}
}

func TestHellingerHistogramClustering(t *testing.T) {
	// End-to-end: clients with matching majority labels cluster together
	// under Hellinger distance on label histograms — the actual HACCS
	// P(y) pipeline at small scale.
	rng := stats.NewRNG(42)
	makeHist := func(major int) []float64 {
		h := stats.NewLabelHistogram(5)
		for i := 0; i < 300; i++ {
			if rng.Float64() < 0.8 {
				h.AddLabel(major)
			} else {
				h.AddLabel(rng.Intn(5))
			}
		}
		return h.Normalize()
	}
	var hists [][]float64
	var truth []int
	for major := 0; major < 5; major++ {
		for k := 0; k < 3; k++ {
			hists = append(hists, makeHist(major))
			truth = append(truth, major)
		}
	}
	m := FromFunc(len(hists), func(i, j int) float64 { return stats.Hellinger(hists[i], hists[j]) })
	labels := OPTICS(m, 2, math.Inf(1)).ExtractAuto()
	if NumClusters(labels) != 5 {
		t.Fatalf("found %d clusters, want 5: %v", NumClusters(labels), labels)
	}
	if ExactRecovery(labels, truth) != 1 {
		t.Errorf("imperfect recovery of label groups: %v", labels)
	}
}
