package cluster

import (
	"math"
	"sort"
)

// OPTICSResult holds the cluster-ordering produced by OPTICS: points in
// visit order with their reachability distances. Clusters are extracted
// afterwards by thresholding the reachability plot (ExtractDBSCAN) or
// automatically from its largest gap (ExtractAuto).
type OPTICSResult struct {
	// Order lists point indices in OPTICS visiting order.
	Order []int
	// Reach[i] is the reachability distance of Order[i]
	// (+Inf for points that start a new density-connected component).
	Reach []float64
	// CoreDist[p] is the core distance of point p (+Inf if p is never a
	// core point within MaxEps).
	CoreDist []float64
	// MinPts and MaxEps echo the parameters used.
	MinPts int
	MaxEps float64
}

// OPTICS computes the density-based cluster ordering of the points in m.
// minPts plays the same role as in DBSCAN; maxEps bounds neighbourhood
// searches (use math.Inf(1) for the unbounded variant — distribution
// distances are already bounded in [0,1], so this is the HACCS default,
// and it is the reason the paper prefers OPTICS: one fewer hyperparameter
// than DBSCAN).
func OPTICS(m *Matrix, minPts int, maxEps float64) *OPTICSResult {
	if minPts < 1 {
		panic("cluster: OPTICS minPts must be >= 1")
	}
	n := m.Len()
	res := &OPTICSResult{
		CoreDist: make([]float64, n),
		MinPts:   minPts,
		MaxEps:   maxEps,
	}
	for p := 0; p < n; p++ {
		res.CoreDist[p] = coreDistance(m, p, minPts, maxEps)
	}
	processed := make([]bool, n)
	reachability := make([]float64, n)
	for i := range reachability {
		reachability[i] = math.Inf(1)
	}

	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		// Process a new density-connected component beginning at start.
		processed[start] = true
		res.Order = append(res.Order, start)
		res.Reach = append(res.Reach, math.Inf(1))
		seeds := newSeedQueue()
		if !math.IsInf(res.CoreDist[start], 1) {
			updateSeeds(m, start, res, processed, reachability, seeds, maxEps)
		}
		for seeds.len() > 0 {
			q := seeds.popMin(reachability)
			processed[q] = true
			res.Order = append(res.Order, q)
			res.Reach = append(res.Reach, reachability[q])
			if !math.IsInf(res.CoreDist[q], 1) {
				updateSeeds(m, q, res, processed, reachability, seeds, maxEps)
			}
		}
	}
	return res
}

// coreDistance is the distance to the minPts-th nearest neighbour
// (counting the point itself), or +Inf if fewer than minPts points lie
// within maxEps.
func coreDistance(m *Matrix, p, minPts int, maxEps float64) float64 {
	n := m.Len()
	ds := make([]float64, 0, n)
	for j := 0; j < n; j++ {
		if d := m.At(p, j); d <= maxEps {
			ds = append(ds, d)
		}
	}
	if len(ds) < minPts {
		return math.Inf(1)
	}
	sort.Float64s(ds)
	return ds[minPts-1]
}

func updateSeeds(m *Matrix, p int, res *OPTICSResult, processed []bool, reachability []float64, seeds *seedQueue, maxEps float64) {
	core := res.CoreDist[p]
	for q := 0; q < m.Len(); q++ {
		if processed[q] {
			continue
		}
		d := m.At(p, q)
		if d > maxEps {
			continue
		}
		newReach := math.Max(core, d)
		if newReach < reachability[q] {
			reachability[q] = newReach
			seeds.push(q)
		}
	}
}

// seedQueue is a small set of candidate points; popMin scans for the
// minimum-reachability entry. With the O(n²) distance-matrix formulation
// a heap buys nothing asymptotically, so keep the structure simple.
type seedQueue struct {
	present map[int]bool
}

func newSeedQueue() *seedQueue { return &seedQueue{present: map[int]bool{}} }

func (s *seedQueue) len() int   { return len(s.present) }
func (s *seedQueue) push(q int) { s.present[q] = true }
func (s *seedQueue) popMin(reachability []float64) int {
	best := -1
	for q := range s.present {
		if best == -1 || reachability[q] < reachability[best] ||
			(reachability[q] == reachability[best] && q < best) {
			best = q
		}
	}
	delete(s.present, best)
	return best
}

// ExtractDBSCAN cuts the reachability plot at epsPrime, yielding the
// clustering DBSCAN would produce at that radius (up to border-point
// ties): a point begins a new cluster when its reachability exceeds
// epsPrime but its core distance does not; points with reachability
// within epsPrime continue the current cluster; everything else is
// Noise.
func (r *OPTICSResult) ExtractDBSCAN(epsPrime float64) []int {
	labels := make([]int, len(r.Order))
	for i := range labels {
		labels[i] = Noise
	}
	cluster := -1
	for i, p := range r.Order {
		if r.Reach[i] > epsPrime {
			if r.CoreDist[p] <= epsPrime {
				cluster++
				labels[p] = cluster
			}
			// else: noise
		} else if cluster >= 0 {
			labels[p] = cluster
		}
	}
	return labels
}

// MinStructureGap is the smallest jump in the reachability plot that
// ExtractAuto treats as evidence of cluster structure. Distribution
// distances in HACCS are Hellinger distances, bounded in [0,1]; clients
// drawn from the same label distribution sit within a few hundredths of
// each other while cross-distribution jumps exceed several tenths, so a
// 0.1 floor cleanly separates "flat plot, treat as one cluster" (the
// paper's IID case) from genuine structure.
const MinStructureGap = 0.1

// ExtractAuto picks the extraction threshold from the reachability plot
// itself: it sorts the finite reachability values and cuts at the largest
// gap, which separates intra-cluster reachabilities (small) from
// cross-cluster jumps (large). When the largest gap is below
// MinStructureGap the plot is considered flat and all density-connected
// points collapse into a single cluster — the behaviour HACCS relies on
// for near-IID data. The heuristic assumes a bounded distance scale
// (Hellinger's [0,1]); arbitrary metrics should call ExtractDBSCAN with a
// domain-appropriate threshold instead.
func (r *OPTICSResult) ExtractAuto() []int {
	finite := make([]float64, 0, len(r.Reach))
	for _, v := range r.Reach {
		if !math.IsInf(v, 1) {
			finite = append(finite, v)
		}
	}
	if len(finite) < 2 {
		// Degenerate: everything is its own component.
		return r.ExtractDBSCAN(math.Inf(1))
	}
	sort.Float64s(finite)
	bestGap, bestCut := -1.0, finite[len(finite)-1]
	for i := 0; i+1 < len(finite); i++ {
		gap := finite[i+1] - finite[i]
		if gap > bestGap {
			bestGap = gap
			bestCut = finite[i] + gap/2
		}
	}
	if bestGap < MinStructureGap {
		// Flat plot: cut above the maximum so every density-connected
		// point joins one cluster.
		bestCut = finite[len(finite)-1] + 1
	}
	return r.ExtractDBSCAN(bestCut)
}
