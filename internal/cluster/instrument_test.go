package cluster

import (
	"math"
	"reflect"
	"testing"

	"haccs/internal/telemetry"
)

// twoBlobMatrix builds a distance matrix with two well-separated
// groups of three points each.
func twoBlobMatrix() *Matrix {
	coords := []float64{0, 0.01, 0.02, 1, 1.01, 1.02}
	m := NewMatrix(len(coords))
	for i := range coords {
		for j := range coords {
			m.Set(i, j, math.Abs(coords[i]-coords[j]))
		}
	}
	return m
}

// TestInstrumentedOPTICSRecordsAndMatches checks both halves of the
// contract: identical output to the plain call, and the run recorded
// under the optics label.
func TestInstrumentedOPTICSRecordsAndMatches(t *testing.T) {
	m := twoBlobMatrix()
	plain := OPTICS(m, 2, math.Inf(1))

	reg := telemetry.NewRegistry()
	inst := InstrumentedOPTICS(reg, m, 2, math.Inf(1))
	if !reflect.DeepEqual(plain.Order, inst.Order) || !reflect.DeepEqual(plain.Reach, inst.Reach) {
		t.Fatal("instrumented OPTICS diverged from the plain run")
	}

	if got := reg.CounterVec("haccs_clustering_runs_total", "", "algo").With("optics").Value(); got != 1 {
		t.Errorf("runs counter = %v, want 1", got)
	}
	if got := reg.GaugeVec("haccs_clustering_points", "", "algo").With("optics").Value(); got != 6 {
		t.Errorf("points gauge = %v, want 6", got)
	}
	if got := reg.GaugeVec("haccs_clustering_duration_seconds", "", "algo").With("optics").Value(); got < 0 {
		t.Errorf("duration gauge negative: %v", got)
	}

	labels := inst.ExtractDBSCAN(0.1)
	ObserveClusterCount(reg, "optics", labels)
	if got := reg.GaugeVec("haccs_clustering_clusters", "", "algo").With("optics").Value(); got != float64(NumClusters(labels)) {
		t.Errorf("clusters gauge = %v, want %d", got, NumClusters(labels))
	}
	if NumClusters(labels) != 2 {
		t.Errorf("expected 2 clusters in the fixture, got %d (%v)", NumClusters(labels), labels)
	}
}

// TestInstrumentedNilRegistryPassthrough checks the nil path for both
// wrappers (a nil registry must not allocate or panic).
func TestInstrumentedNilRegistryPassthrough(t *testing.T) {
	m := twoBlobMatrix()
	if res := InstrumentedOPTICS(nil, m, 2, math.Inf(1)); len(res.Order) != 6 {
		t.Error("nil-registry OPTICS broken")
	}
	if d := InstrumentedAgglomerative(nil, m, CompleteLinkage); d.NumMerges() != 5 {
		t.Error("nil-registry agglomerative broken")
	}
	ObserveClusterCount(nil, "optics", []int{0, 1})
}

// TestInstrumentedAgglomerativeRecords mirrors the OPTICS check for
// the hierarchical path.
func TestInstrumentedAgglomerativeRecords(t *testing.T) {
	m := twoBlobMatrix()
	reg := telemetry.NewRegistry()
	d := InstrumentedAgglomerative(reg, m, CompleteLinkage)
	labels := d.CutK(2)
	ObserveClusterCount(reg, "agglomerative", labels)
	if got := reg.CounterVec("haccs_clustering_runs_total", "", "algo").With("agglomerative").Value(); got != 1 {
		t.Errorf("runs counter = %v, want 1", got)
	}
	if got := reg.GaugeVec("haccs_clustering_clusters", "", "algo").With("agglomerative").Value(); got != 2 {
		t.Errorf("clusters gauge = %v, want 2", got)
	}
}
