package cluster

import (
	"math"
	"testing"
)

func TestSilhouetteKnownValues(t *testing.T) {
	// Two tight pairs far apart: near-perfect silhouette.
	xs := []float64{0, 0.1, 10, 10.1}
	m := pointsMatrix(xs)
	good := Silhouette(m, []int{0, 0, 1, 1})
	if good < 0.95 {
		t.Errorf("well-separated silhouette = %v, want ~1", good)
	}
	// Degenerate labelings score 0.
	if s := Silhouette(m, []int{0, 0, 0, 0}); s != 0 {
		t.Errorf("single-cluster silhouette = %v", s)
	}
	if s := Silhouette(m, []int{Noise, Noise, Noise, Noise}); s != 0 {
		t.Errorf("all-noise silhouette = %v", s)
	}
	// A bad split (cutting through one blob) scores much worse.
	bad := Silhouette(m, []int{0, 1, 1, 1})
	if bad >= good {
		t.Errorf("bad split silhouette %v >= good split %v", bad, good)
	}
}

func TestSilhouetteSingletonsContributeZero(t *testing.T) {
	xs := []float64{0, 0.1, 5, 10, 10.1}
	m := pointsMatrix(xs)
	withSingleton := Silhouette(m, []int{0, 0, Noise, 1, 1})
	// 4 of 5 points are perfectly clustered, one is a noise singleton:
	// the mean is pulled down by exactly the zero contribution.
	if withSingleton <= 0.5 || withSingleton >= 1 {
		t.Errorf("silhouette with singleton = %v, want in (0.5, 1)", withSingleton)
	}
}

func TestSilhouetteLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Silhouette(pointsMatrix([]float64{0, 1}), []int{0})
}

func TestSilhouetteBounds(t *testing.T) {
	// Any labeling scores within [-1, 1].
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	m := pointsMatrix(xs)
	labelings := [][]int{
		{0, 1, 0, 1, 0, 1, 0, 1}, // pathological interleaving
		{0, 0, 0, 0, 1, 1, 1, 1},
		{0, 1, 2, 3, 0, 1, 2, 3},
	}
	for _, ls := range labelings {
		s := Silhouette(m, ls)
		if s < -1 || s > 1 {
			t.Errorf("silhouette %v out of [-1,1] for %v", s, ls)
		}
	}
	// Interleaved labels must score worse than the contiguous split.
	if Silhouette(m, labelings[0]) >= Silhouette(m, labelings[1]) {
		t.Error("interleaved labeling scored as well as the natural split")
	}
}

func TestExtractBestSilhouetteTwoBlobs(t *testing.T) {
	xs, truth := twoBlobs(6, 6)
	m := pointsMatrix(xs)
	labels := OPTICS(m, 2, math.Inf(1)).ExtractBestSilhouette(m, 0)
	if NumClusters(labels) != 2 {
		t.Fatalf("found %d clusters: %v", NumClusters(labels), labels)
	}
	if RandIndex(labels, truth) != 1 {
		t.Errorf("imperfect recovery: %v", labels)
	}
}

func TestExtractBestSilhouetteFlatData(t *testing.T) {
	// The IID case: all pairwise distances nearly equal (as Hellinger
	// distances between large-sample uniform label histograms are). No
	// split can score well, so everything collapses to a single cluster.
	m := FromFunc(24, func(i, j int) float64 {
		return 0.05 + 0.004*float64((i*7+j*13)%11)/11
	})
	labels := OPTICS(m, 2, math.Inf(1)).ExtractBestSilhouette(m, 0)
	if NumClusters(labels) != 1 {
		t.Errorf("flat data produced %d clusters: %v", NumClusters(labels), labels)
	}
}

func TestExtractBestSilhouetteOverlappingGroups(t *testing.T) {
	// The case that defeats the single-gap heuristic: within-group
	// spread (0..0.5) overlaps the spacing pattern of cross-group jumps
	// (0.57+). Silhouette scoring still separates the five groups.
	var xs []float64
	var truth []int
	for g := 0; g < 5; g++ {
		for k := 0; k < 4; k++ {
			xs = append(xs, float64(g)*1.0+0.12*float64(k))
			truth = append(truth, g)
		}
	}
	m := pointsMatrix(xs)
	labels := OPTICS(m, 2, math.Inf(1)).ExtractBestSilhouette(m, 0)
	if NumClusters(labels) != 5 {
		t.Fatalf("found %d clusters: %v", NumClusters(labels), labels)
	}
	if ExactRecovery(labels, truth) != 1 {
		t.Errorf("imperfect recovery: %v", labels)
	}
}

func TestExtractBestSilhouetteThreshold(t *testing.T) {
	// With an absurdly high threshold, even clean structure is rejected
	// and a single cluster comes back.
	xs, _ := twoBlobs(5, 5)
	m := pointsMatrix(xs)
	labels := OPTICS(m, 2, math.Inf(1)).ExtractBestSilhouette(m, 0.9999)
	if NumClusters(labels) != 1 {
		t.Errorf("threshold 0.9999 still split: %v", labels)
	}
}

func TestExtractBestSilhouetteTinyInput(t *testing.T) {
	m := pointsMatrix([]float64{0})
	labels := OPTICS(m, 1, math.Inf(1)).ExtractBestSilhouette(m, 0)
	if len(labels) != 1 {
		t.Fatalf("labels %v", labels)
	}
}
