package cluster

import (
	"fmt"
	"math"
)

// Linkage selects how agglomerative clustering measures the distance
// between two clusters.
type Linkage int

const (
	// SingleLinkage merges by the minimum pairwise distance (chains).
	SingleLinkage Linkage = iota
	// CompleteLinkage merges by the maximum pairwise distance (compact
	// clusters).
	CompleteLinkage
	// AverageLinkage merges by the mean pairwise distance (UPGMA).
	AverageLinkage
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Dendrogram records an agglomerative clustering: n-1 merges over n
// points, each with the inter-cluster distance at which it happened.
// Cut it at a distance (CutDistance) or at a cluster count (CutK).
type Dendrogram struct {
	n      int
	merges []merge
}

type merge struct {
	a, b int     // cluster ids being merged (points are 0..n-1; merged clusters n, n+1, ...)
	dist float64 // linkage distance of the merge
}

// Agglomerative builds the dendrogram for the points of m under the
// given linkage, using the O(n³) textbook algorithm (rosters here are
// tens of clients; simplicity wins).
func Agglomerative(m *Matrix, linkage Linkage) *Dendrogram {
	n := m.Len()
	d := &Dendrogram{n: n}
	// active[id] = member points of the cluster with that id.
	active := map[int][]int{}
	for i := 0; i < n; i++ {
		active[i] = []int{i}
	}
	nextID := n
	for len(active) > 1 {
		// Find the closest active pair under the linkage.
		bestA, bestB := -1, -1
		bestD := math.Inf(1)
		for a, membersA := range active {
			for b, membersB := range active {
				if a >= b {
					continue
				}
				dist := linkageDistance(m, membersA, membersB, linkage)
				if dist < bestD || (dist == bestD && (bestA == -1 || a < bestA || (a == bestA && b < bestB))) {
					bestA, bestB, bestD = a, b, dist
				}
			}
		}
		d.merges = append(d.merges, merge{a: bestA, b: bestB, dist: bestD})
		merged := append(append([]int{}, active[bestA]...), active[bestB]...)
		delete(active, bestA)
		delete(active, bestB)
		active[nextID] = merged
		nextID++
	}
	return d
}

func linkageDistance(m *Matrix, a, b []int, linkage Linkage) float64 {
	switch linkage {
	case SingleLinkage:
		best := math.Inf(1)
		for _, i := range a {
			for _, j := range b {
				if d := m.At(i, j); d < best {
					best = d
				}
			}
		}
		return best
	case CompleteLinkage:
		worst := 0.0
		for _, i := range a {
			for _, j := range b {
				if d := m.At(i, j); d > worst {
					worst = d
				}
			}
		}
		return worst
	case AverageLinkage:
		sum := 0.0
		for _, i := range a {
			for _, j := range b {
				sum += m.At(i, j)
			}
		}
		return sum / float64(len(a)*len(b))
	default:
		panic(fmt.Sprintf("cluster: unknown linkage %d", int(linkage)))
	}
}

// CutDistance returns the flat clustering obtained by applying only the
// merges whose linkage distance is <= maxDist. Labels are 0..k-1.
func (d *Dendrogram) CutDistance(maxDist float64) []int {
	return d.cut(func(mg merge) bool { return mg.dist <= maxDist })
}

// CutK returns the flat clustering with exactly k clusters (1 <= k <= n),
// i.e. the first n-k merges applied.
func (d *Dendrogram) CutK(k int) []int {
	if k < 1 || k > d.n {
		panic(fmt.Sprintf("cluster: CutK(%d) out of [1, %d]", k, d.n))
	}
	applied := 0
	limit := d.n - k
	return d.cut(func(mg merge) bool {
		if applied < limit {
			applied++
			return true
		}
		return false
	})
}

// cut replays merges accepted by keep (in order) and labels the
// resulting components.
func (d *Dendrogram) cut(keep func(merge) bool) []int {
	parent := make([]int, d.n+len(d.merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	nextID := d.n
	for _, mg := range d.merges {
		if keep(mg) {
			ra, rb := find(mg.a), find(mg.b)
			parent[ra] = nextID
			parent[rb] = nextID
		}
		// Even unapplied merges consume their cluster id so later merge
		// references resolve consistently.
		nextID++
	}
	// Map component roots to dense labels over the original points.
	labels := make([]int, d.n)
	rootLabel := map[int]int{}
	next := 0
	for i := 0; i < d.n; i++ {
		r := find(i)
		l, ok := rootLabel[r]
		if !ok {
			l = next
			rootLabel[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}

// NumMerges returns the number of recorded merges (n-1).
func (d *Dendrogram) NumMerges() int { return len(d.merges) }

// MergeDistances returns the linkage distances in merge order; a large
// jump marks the natural cluster count.
func (d *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(d.merges))
	for i, mg := range d.merges {
		out[i] = mg.dist
	}
	return out
}
