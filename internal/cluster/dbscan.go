package cluster

// DBSCAN clusters points by density: a point with at least minPts
// neighbours within eps (itself included) is a core point; clusters are
// the transitive closure of core-point neighbourhoods; non-core points
// reachable from a core point join its cluster as border points;
// everything else is Noise.
//
// Returns one label per point: 0..k-1 for cluster members, Noise (-1)
// otherwise.
func DBSCAN(m *Matrix, eps float64, minPts int) []int {
	if minPts < 1 {
		panic("cluster: DBSCAN minPts must be >= 1")
	}
	n := m.Len()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)
	next := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nbrs := regionQuery(m, i, eps)
		if len(nbrs) < minPts {
			continue // remains noise unless later absorbed as border
		}
		labels[i] = next
		expandCluster(m, labels, visited, nbrs, next, eps, minPts)
		next++
	}
	return labels
}

func regionQuery(m *Matrix, p int, eps float64) []int {
	var out []int
	for j := 0; j < m.Len(); j++ {
		if m.At(p, j) <= eps {
			out = append(out, j) // includes p itself (distance 0)
		}
	}
	return out
}

func expandCluster(m *Matrix, labels []int, visited []bool, seeds []int, cluster int, eps float64, minPts int) {
	// Classic seed-list expansion; seeds grows as new core points are
	// discovered.
	for qi := 0; qi < len(seeds); qi++ {
		q := seeds[qi]
		if !visited[q] {
			visited[q] = true
			qNbrs := regionQuery(m, q, eps)
			if len(qNbrs) >= minPts {
				seeds = append(seeds, qNbrs...)
			}
		}
		if labels[q] == Noise {
			labels[q] = cluster
		}
	}
}
