package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdjustedRand(t *testing.T) {
	if r := AdjustedRand([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}); r != 1 {
		t.Errorf("label-permuted identical clustering AdjustedRand = %v, want 1", r)
	}
	// Known hand-computed value: partitions {01|23} vs {0|123}.
	// sumIJ = C(1,2)+C(1,2)+C(2,2) = 1; sumA = 2, sumB = 3, C(4,2) = 6;
	// expected = 1, max = 2.5 → ARI = 0.
	if r := AdjustedRand([]int{0, 0, 1, 1}, []int{0, 1, 1, 1}); math.Abs(r) > 1e-12 {
		t.Errorf("AdjustedRand = %v, want 0", r)
	}
	if r := AdjustedRand([]int{0}, []int{5}); r != 1 {
		t.Errorf("single point AdjustedRand = %v, want 1", r)
	}
	// Degenerate agreement: both all-singletons.
	if r := AdjustedRand([]int{0, 1, 2}, []int{2, 0, 1}); r != 1 {
		t.Errorf("all-singleton AdjustedRand = %v, want 1", r)
	}
	// Both one big cluster.
	if r := AdjustedRand([]int{0, 0, 0}, []int{7, 7, 7}); r != 1 {
		t.Errorf("single-cluster AdjustedRand = %v, want 1", r)
	}
}

func TestAdjustedRandPropertyBounds(t *testing.T) {
	f := func(a, b [8]uint8) bool {
		la := make([]int, 8)
		lb := make([]int, 8)
		for i := range la {
			la[i] = int(a[i]%4) - 1 // includes Noise
			lb[i] = int(b[i]%4) - 1
		}
		r := AdjustedRand(la, lb)
		// ARI is bounded above by 1, can dip slightly negative, and is
		// exactly 1 on identical labelings.
		return r <= 1+1e-12 && r >= -1 && AdjustedRand(la, la) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
