package cluster

// RandIndex measures agreement between two labelings as the fraction of
// point pairs on which they agree (same-cluster vs different-cluster).
// Noise points are treated as singleton clusters. Result is in [0, 1].
func RandIndex(a, b []int) float64 {
	if len(a) != len(b) {
		panic("cluster: RandIndex length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	agree := 0
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := a[i] == a[j] && a[i] != Noise
			sameB := b[i] == b[j] && b[i] != Noise
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total)
}

// AdjustedRand is the chance-corrected Rand index (Hubert & Arabie
// 1985): 1 for identical partitions, ~0 for independent random
// labelings (possibly slightly negative). Unlike the raw RandIndex it
// does not reward agreement that would occur by chance, which makes it
// the right yardstick for comparing the dense and sketch clustering
// pipelines. Noise points are treated as singleton clusters.
func AdjustedRand(a, b []int) float64 {
	if len(a) != len(b) {
		panic("cluster: AdjustedRand length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	// Singletonize noise so both labelings are true partitions.
	canon := func(labels []int) []int {
		out := make([]int, len(labels))
		next := 0
		for _, l := range labels {
			if l >= next {
				next = l + 1
			}
		}
		for i, l := range labels {
			if l == Noise {
				out[i] = next
				next++
			} else {
				out[i] = l
			}
		}
		return out
	}
	ca, cb := canon(a), canon(b)
	// Contingency table and its marginals.
	cont := map[[2]int]int{}
	rowSum := map[int]int{}
	colSum := map[int]int{}
	for i := 0; i < n; i++ {
		cont[[2]int{ca[i], cb[i]}]++
		rowSum[ca[i]]++
		colSum[cb[i]]++
	}
	choose2 := func(m int) float64 { return float64(m) * float64(m-1) / 2 }
	sumIJ, sumA, sumB := 0.0, 0.0, 0.0
	for _, c := range cont {
		sumIJ += choose2(c)
	}
	for _, c := range rowSum {
		sumA += choose2(c)
	}
	for _, c := range colSum {
		sumB += choose2(c)
	}
	expected := sumA * sumB / choose2(n)
	maxIndex := (sumA + sumB) / 2
	if maxIndex == expected {
		// Both partitions are all-singletons or all-one-cluster; they
		// agree perfectly iff they are equal, which they are here (the
		// contingency structure forces it).
		return 1
	}
	return (sumIJ - expected) / (maxIndex - expected)
}

// ExactRecovery is the paper's Fig. 8a clustering-accuracy metric: the
// fraction of ground-truth groups whose member set is reproduced exactly
// as one predicted cluster. ("The clustering accuracy will be based on
// the number of clusters we correctly identify.")
func ExactRecovery(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("cluster: ExactRecovery length mismatch")
	}
	truthGroups := groupSets(truth)
	predGroups := groupSets(pred)
	if len(truthGroups) == 0 {
		return 1
	}
	recovered := 0
	for _, tg := range truthGroups {
		for _, pg := range predGroups {
			if sameSet(tg, pg) {
				recovered++
				break
			}
		}
	}
	return float64(recovered) / float64(len(truthGroups))
}

func groupSets(labels []int) map[int][]int {
	out := map[int][]int{}
	for i, l := range labels {
		if l == Noise {
			continue
		}
		out[l] = append(out[l], i)
	}
	return out
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[int]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}

// Purity returns the weighted average, over predicted clusters, of the
// largest ground-truth class fraction inside each cluster. Noise points
// count as errors (their own never-matching cluster).
func Purity(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("cluster: Purity length mismatch")
	}
	if len(pred) == 0 {
		return 1
	}
	correct := 0
	for _, members := range groupSets(pred) {
		counts := map[int]int{}
		for _, i := range members {
			counts[truth[i]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}
