package cluster

import (
	"math"
	"testing"
)

func TestAgglomerativeTwoBlobs(t *testing.T) {
	xs, truth := twoBlobs(5, 4)
	m := pointsMatrix(xs)
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		d := Agglomerative(m, link)
		if d.NumMerges() != len(xs)-1 {
			t.Fatalf("%v: %d merges for %d points", link, d.NumMerges(), len(xs))
		}
		labels := d.CutK(2)
		if NumClusters(labels) != 2 {
			t.Fatalf("%v: CutK(2) gave %d clusters", link, NumClusters(labels))
		}
		if RandIndex(labels, truth) != 1 {
			t.Errorf("%v: imperfect recovery %v", link, labels)
		}
	}
}

func TestCutDistance(t *testing.T) {
	xs, truth := twoBlobs(4, 4)
	m := pointsMatrix(xs)
	d := Agglomerative(m, CompleteLinkage)
	// Cut below the inter-blob gap: two clusters.
	labels := d.CutDistance(1.0)
	if NumClusters(labels) != 2 || RandIndex(labels, truth) != 1 {
		t.Errorf("cut at 1.0: %v", labels)
	}
	// Cut above everything: one cluster.
	if NumClusters(d.CutDistance(100)) != 1 {
		t.Error("cut at 100 did not merge everything")
	}
	// Cut below everything: all singletons.
	if NumClusters(d.CutDistance(0.001)) != len(xs) {
		t.Error("cut at 0.001 merged something")
	}
}

func TestCutKExtremes(t *testing.T) {
	xs, _ := twoBlobs(3, 3)
	m := pointsMatrix(xs)
	d := Agglomerative(m, AverageLinkage)
	if NumClusters(d.CutK(1)) != 1 {
		t.Error("CutK(1) != 1 cluster")
	}
	if NumClusters(d.CutK(6)) != 6 {
		t.Error("CutK(n) != n clusters")
	}
	for _, bad := range []int{0, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CutK(%d) did not panic", bad)
				}
			}()
			d.CutK(bad)
		}()
	}
}

func TestMergeDistancesMonotone(t *testing.T) {
	// Single, complete and average linkage are inversion-free: merge
	// distances never decrease.
	var xs []float64
	for g := 0; g < 4; g++ {
		for k := 0; k < 3; k++ {
			xs = append(xs, float64(g)*5+0.3*float64(k))
		}
	}
	m := pointsMatrix(xs)
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		ds := Agglomerative(m, link).MergeDistances()
		for i := 1; i < len(ds); i++ {
			if ds[i] < ds[i-1]-1e-12 {
				t.Errorf("%v: inversion at merge %d (%v < %v)", link, i, ds[i], ds[i-1])
			}
		}
	}
}

func TestLinkagesDifferOnChains(t *testing.T) {
	// A chain of equally spaced points: single linkage happily merges it
	// all at the spacing distance; complete linkage needs the full span.
	xs := []float64{0, 1, 2, 3, 4}
	m := pointsMatrix(xs)
	single := Agglomerative(m, SingleLinkage).MergeDistances()
	complete := Agglomerative(m, CompleteLinkage).MergeDistances()
	if single[len(single)-1] != 1 {
		t.Errorf("single linkage final merge %v, want 1", single[len(single)-1])
	}
	if complete[len(complete)-1] != 4 {
		t.Errorf("complete linkage final merge %v, want 4", complete[len(complete)-1])
	}
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" || AverageLinkage.String() != "average" {
		t.Error("linkage strings")
	}
}

func TestAgglomerativeMatchesOPTICSOnCleanData(t *testing.T) {
	// On clean well-separated groups, hierarchical CutK and OPTICS
	// auto-extraction agree exactly.
	var xs []float64
	var truth []int
	for g := 0; g < 5; g++ {
		for k := 0; k < 3; k++ {
			xs = append(xs, float64(g)*10+0.05*float64(k))
			truth = append(truth, g)
		}
	}
	m := pointsMatrix(xs)
	h := Agglomerative(m, AverageLinkage).CutK(5)
	o := OPTICS(m, 2, math.Inf(1)).ExtractBestSilhouette(m, 0)
	if RandIndex(h, o) != 1 || RandIndex(h, truth) != 1 {
		t.Errorf("hierarchical %v and OPTICS %v disagree", h, o)
	}
}

func TestCutKPropertyExactClusterCount(t *testing.T) {
	// CutK(k) yields exactly k clusters for every valid k.
	xs := []float64{0, 0.5, 3, 3.5, 8, 8.1, 12, 15, 15.2}
	m := pointsMatrix(xs)
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		d := Agglomerative(m, link)
		for k := 1; k <= len(xs); k++ {
			if got := NumClusters(d.CutK(k)); got != k {
				t.Fatalf("%v: CutK(%d) produced %d clusters", link, k, got)
			}
		}
	}
}
