package cluster

import (
	"math"
	"sort"
)

// Silhouette returns the mean silhouette coefficient of a labeling over
// the distance matrix. For a point i in cluster C with |C| > 1,
// a(i) is its mean distance to the rest of C, b(i) the smallest mean
// distance to any other cluster, and s(i) = (b-a)/max(a,b). Points in
// singleton clusters (including Noise points, which are treated as
// singletons) contribute 0. A labeling with fewer than two clusters has
// no separation structure to score and returns 0.
func Silhouette(m *Matrix, labels []int) float64 {
	if len(labels) != m.Len() {
		panic("cluster: Silhouette label/matrix size mismatch")
	}
	// Materialize clusters, treating each noise point as its own
	// singleton so it penalizes (0-contributes) rather than distorts.
	groups := map[int][]int{}
	next := -2 // synthetic ids for noise singletons, distinct from real labels
	for i, l := range labels {
		if l == Noise {
			groups[next] = []int{i}
			next--
			continue
		}
		groups[l] = append(groups[l], i)
	}
	if len(groups) < 2 {
		return 0
	}
	total := 0.0
	for li, members := range groups {
		for _, i := range members {
			if len(members) < 2 {
				continue // singleton: s = 0
			}
			a := 0.0
			for _, j := range members {
				if j != i {
					a += m.At(i, j)
				}
			}
			a /= float64(len(members) - 1)
			b := math.Inf(1)
			for lj, other := range groups {
				if lj == li {
					continue
				}
				d := 0.0
				for _, j := range other {
					d += m.At(i, j)
				}
				d /= float64(len(other))
				if d < b {
					b = d
				}
			}
			denom := math.Max(a, b)
			if denom > 0 {
				total += (b - a) / denom
			}
		}
	}
	return total / float64(m.Len())
}

// DefaultMinSilhouette is the structure threshold below which
// ExtractBestSilhouette declares the data unclustered and returns a
// single cluster; near-IID summaries score near zero while genuine
// distribution groups score well above it.
const DefaultMinSilhouette = 0.25

// ExtractBestSilhouette chooses the reachability-plot cut
// data-adaptively: it sweeps candidate thresholds (midpoints between
// consecutive distinct finite reachability values), extracts the DBSCAN
// clustering at each, scores it with the mean silhouette over the
// original distance matrix, and returns the best-scoring labeling. When
// no cut scores at least minScore (pass 0 for DefaultMinSilhouette), the
// plot is treated as structureless and all density-connected points
// collapse into one cluster.
//
// This replaces the single-gap heuristic for realistic summaries, where
// within-group distances (same majority label, disjoint noise labels)
// can run up to ~0.5 and overlap the spacing pattern of cross-group
// jumps; scoring actual extractions is robust where a gap test is not.
func (r *OPTICSResult) ExtractBestSilhouette(m *Matrix, minScore float64) []int {
	if minScore <= 0 {
		minScore = DefaultMinSilhouette
	}
	finite := make([]float64, 0, len(r.Reach))
	for _, v := range r.Reach {
		if !math.IsInf(v, 1) {
			finite = append(finite, v)
		}
	}
	single := func() []int {
		if len(finite) == 0 {
			return r.ExtractDBSCAN(math.Inf(1))
		}
		return r.ExtractDBSCAN(finite[len(finite)-1] + 1)
	}
	if len(finite) < 2 {
		return single()
	}
	sort.Float64s(finite)
	// Deduplicate and form candidate cuts at midpoints.
	uniq := finite[:1]
	for _, v := range finite[1:] {
		if v > uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	bestScore := math.Inf(-1)
	var bestLabels []int
	for i := 0; i+1 < len(uniq); i++ {
		cut := (uniq[i] + uniq[i+1]) / 2
		labels := r.ExtractDBSCAN(cut)
		// A candidate labeling carries structure if it separates at
		// least two dense clusters, or one dense cluster plus noise
		// points (outliers are structure too — the scheduler treats
		// them as singleton distributions).
		if NumClusters(labels) < 2 && !hasNoise(labels) {
			continue
		}
		score := Silhouette(m, labels)
		if score > bestScore {
			bestScore = score
			bestLabels = labels
		}
	}
	if bestLabels == nil || bestScore < minScore {
		return single()
	}
	return bestLabels
}

// hasNoise reports whether any point is labeled Noise.
func hasNoise(labels []int) bool {
	for _, l := range labels {
		if l == Noise {
			return true
		}
	}
	return false
}
