package shard

import (
	"sort"

	"haccs/internal/sketch"
)

// PlanBudgets apportions the global selection budget k across shards
// from the sketch representatives they announced in their Hellos,
// keeping selection heterogeneity-aware across the tree: the root
// clusters every shard's representatives into one global ε-net, gives
// each global cluster (distribution mode) an equal share of the
// budget — the HACCS equal-cluster-sampling principle one level up —
// and splits a cluster's share among the shards proportionally to how
// many of their clients live in it. Budgets are integers that sum to
// min(k, total clients) via largest-remainder apportionment with
// deterministic shard-order tie-breaking, and never exceed a shard's
// client count.
//
// Shards that ship no representatives (or disagree on sketch
// geometry) degrade the plan to client-count-proportional
// apportionment, which is the correct weight under homogeneity.
func PlanBudgets(hellos []Hello, k int, attachRadius float64) []int {
	budgets := make([]int, len(hellos))
	if k <= 0 || len(hellos) == 0 {
		return budgets
	}
	capacity := make([]int, len(hellos))
	total := 0
	for i, h := range hellos {
		capacity[i] = len(h.Clients)
		total += capacity[i]
	}
	if k > total {
		k = total
	}

	weights := clusterWeights(hellos, attachRadius)
	if weights == nil {
		// Degenerate geometry: weight by roster size.
		weights = make([]float64, len(hellos))
		for i := range hellos {
			weights[i] = float64(capacity[i])
		}
	}
	apportion(budgets, weights, capacity, k)
	return budgets
}

// clusterWeights computes each shard's share of the budget from a
// global ε-net over all shards' representatives, or nil when the
// representatives are unusable (absent or with mismatched dims).
func clusterWeights(hellos []Hello, attachRadius float64) []float64 {
	dim, reps := 0, 0
	for _, h := range hellos {
		if len(h.Reps) == 0 {
			return nil
		}
		if dim == 0 {
			dim = h.SketchDim
		}
		if h.SketchDim != dim || dim <= 0 {
			return nil
		}
		reps += len(h.Reps)
	}
	idx := sketch.NewIndex(reps, dim, attachRadius, nil)
	// Pseudo-client c enumerates (shard, rep) pairs in shard order;
	// cluster[c] is its global cluster, pop[g] the client mass in g.
	cluster := make([]int, reps)
	var pop []int
	c := 0
	for _, h := range hellos {
		for i, rep := range h.Reps {
			g, created := idx.Observe(c, rep)
			if created {
				pop = append(pop, 0)
			}
			cluster[c] = g
			pop[g] += h.RepCounts[i]
			c++
		}
	}
	weights := make([]float64, len(hellos))
	share := 1 / float64(len(pop))
	c = 0
	for s, h := range hellos {
		for i := range h.Reps {
			g := cluster[c]
			weights[s] += share * float64(h.RepCounts[i]) / float64(pop[g])
			c++
		}
	}
	return weights
}

// apportion fills budgets with a largest-remainder split of k by
// weight, capped by per-shard capacity; capped-off surplus recycles to
// shards with headroom. Ties break by ascending shard index, so the
// plan is a pure function of its inputs.
func apportion(budgets []int, weights []float64, capacity []int, k int) {
	totalW := 0.0
	for i, w := range weights {
		if w < 0 {
			weights[i] = 0
			continue
		}
		totalW += w
	}
	if totalW <= 0 {
		for i := range weights {
			weights[i] = float64(capacity[i])
			totalW += weights[i]
		}
		if totalW <= 0 {
			return
		}
	}
	type rem struct {
		idx  int
		frac float64
	}
	assigned := 0
	rems := make([]rem, 0, len(budgets))
	for i, w := range weights {
		exact := float64(k) * w / totalW
		b := int(exact)
		if b > capacity[i] {
			b = capacity[i]
		}
		budgets[i] = b
		assigned += b
		frac := exact - float64(int(exact))
		rems = append(rems, rem{idx: i, frac: frac})
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	// Hand out the remainder (and any capacity-capped surplus) one seat
	// at a time to the largest fractional parts with headroom, cycling
	// until k seats are placed; headroom is guaranteed because k was
	// clamped to the total capacity.
	for assigned < k {
		progressed := false
		for _, r := range rems {
			if assigned == k {
				break
			}
			if budgets[r.idx] < capacity[r.idx] {
				budgets[r.idx]++
				assigned++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
}
