package shard

import (
	"fmt"
	"math"

	"haccs/internal/fleet"
	"haccs/internal/rounds"
)

// The shard↔root wire protocol mirrors flnet's client↔coordinator
// protocol one level up the tree: gob framing, a single envelope union
// per stream, typed errors for every violation, and session drop (never
// a wedged round) as the failure response. One Hello from the shard,
// one Ack from the root, then an alternating stream of Cmd/Report pairs
// driven by the root, terminated by Bye.

// ProtocolErrorKind classifies a shard-protocol violation.
type ProtocolErrorKind string

const (
	// ErrEmptyEnvelope: no field of the union was set.
	ErrEmptyEnvelope ProtocolErrorKind = "empty_envelope"
	// ErrAmbiguousEnvelope: more than one field of the union was set.
	ErrAmbiguousEnvelope ProtocolErrorKind = "ambiguous_envelope"
	// ErrUnexpectedMessage: a well-formed envelope carried the wrong
	// message type for the protocol state (e.g. a Report where a Hello
	// was due).
	ErrUnexpectedMessage ProtocolErrorKind = "unexpected_message"
	// ErrDuplicateShard: a second Hello arrived for a shard ID that
	// already holds a live session during initial accept.
	ErrDuplicateShard ProtocolErrorKind = "duplicate_shard"
	// ErrBadHello: a Hello with an invalid roster or malformed sketch
	// representatives.
	ErrBadHello ProtocolErrorKind = "bad_hello"
	// ErrRosterMismatch: a reconnecting shard announced a different
	// roster than its original Hello — the root's partition is fixed for
	// the run, so the session is refused.
	ErrRosterMismatch ProtocolErrorKind = "roster_mismatch"
	// ErrNotConnected: a round dispatch targeted a shard with no live
	// session.
	ErrNotConnected ProtocolErrorKind = "not_connected"
	// ErrWrongRound: a Report for a different round than the Cmd in
	// flight.
	ErrWrongRound ProtocolErrorKind = "wrong_round"
	// ErrWrongShard: a Report claiming a different shard ID than the
	// session it arrived on.
	ErrWrongShard ProtocolErrorKind = "wrong_shard"
	// ErrBadReport: a Report violating the wire contract (non-finite
	// partial, negative counters, inconsistent reporter block).
	ErrBadReport ProtocolErrorKind = "bad_report"
)

// ProtocolError is the typed error for shard-protocol violations,
// mirroring flnet.EnvelopeError. The session that produced it is
// dropped; the root then treats the shard as failed for the round
// (its clients cut, not dead) rather than wedging the barrier.
type ProtocolError struct {
	Kind ProtocolErrorKind
	// ShardID is the offending session's shard (-1 when unknown).
	ShardID int
	// Round is the round in flight (-1 outside a round).
	Round int
	// Detail carries human-readable context.
	Detail string
}

func (e *ProtocolError) Error() string {
	msg := fmt.Sprintf("shard: %s", e.Kind)
	if e.ShardID >= 0 {
		msg += fmt.Sprintf(" (shard %d", e.ShardID)
		if e.Round >= 0 {
			msg += fmt.Sprintf(", round %d", e.Round)
		}
		msg += ")"
	} else if e.Round >= 0 {
		msg += fmt.Sprintf(" (round %d)", e.Round)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// protoErr builds a ProtocolError; shardID/round use -1 for "not
// applicable".
func protoErr(kind ProtocolErrorKind, shardID, round int, detail string) *ProtocolError {
	return &ProtocolError{Kind: kind, ShardID: shardID, Round: round, Detail: detail}
}

// Hello is the shard's first message: its identity, the roster slice
// it owns (with latency estimates), and sketch representatives of its
// clients' label distributions so the root can plan heterogeneity-
// aware per-shard selection budgets without seeing every client.
type Hello struct {
	ShardID int
	// Clients is the shard's roster slice: global IDs and expected
	// round latencies.
	Clients []rounds.ShardClient
	// SketchDim is the width of each representative vector (0 when the
	// shard ships no representatives).
	SketchDim int
	// Reps are the shard-local ε-net representative sketches; RepCounts
	// holds how many of the shard's clients attach to each.
	Reps      [][]float64
	RepCounts []int
	// Sessions is the shard's live client-session count at handshake.
	Sessions int
}

// check validates a Hello's internal consistency.
func (h *Hello) check() error {
	if h.ShardID < 0 {
		return protoErr(ErrBadHello, h.ShardID, -1, "negative shard ID")
	}
	if len(h.Clients) == 0 {
		return protoErr(ErrBadHello, h.ShardID, -1, "empty roster")
	}
	for _, c := range h.Clients {
		if c.ID < 0 {
			return protoErr(ErrBadHello, h.ShardID, -1, fmt.Sprintf("negative client ID %d", c.ID))
		}
		if c.Latency < 0 || math.IsNaN(c.Latency) || math.IsInf(c.Latency, 0) {
			return protoErr(ErrBadHello, h.ShardID, -1, fmt.Sprintf("client %d latency %v", c.ID, c.Latency))
		}
	}
	if len(h.Reps) != len(h.RepCounts) {
		return protoErr(ErrBadHello, h.ShardID, -1,
			fmt.Sprintf("%d representatives with %d counts", len(h.Reps), len(h.RepCounts)))
	}
	for i, rep := range h.Reps {
		if len(rep) != h.SketchDim {
			return protoErr(ErrBadHello, h.ShardID, -1,
				fmt.Sprintf("representative %d has dim %d, announced %d", i, len(rep), h.SketchDim))
		}
		if h.RepCounts[i] <= 0 {
			return protoErr(ErrBadHello, h.ShardID, -1,
				fmt.Sprintf("representative %d covers %d clients", i, h.RepCounts[i]))
		}
	}
	return nil
}

// Ack is the root's reply to a Hello: everything the shard needs to
// run its half of the protocol. The root computes it once the full
// shard set has said hello (the θ-budget plan needs every shard's
// representatives) and replays it, with a fresh NextRound, to shards
// that reconnect mid-run.
type Ack struct {
	// Mode is the round runtime ("sync" or "async", rounds.Mode values).
	Mode string
	// Deadline is the sync straggler deadline in virtual seconds; the
	// shard must apply exactly the root's deadline arithmetic (the root
	// cross-checks every report against its own latency table).
	Deadline float64
	// Budget is this shard's async local selection budget θ_s, from the
	// root's sketch-clustering plan. Unused in sync mode (the root
	// selects globally).
	Budget int
	// ResyncEvery, MaxStaleness, StalenessExponent and BufferK tune the
	// shard's async local driver; ignored in sync mode.
	ResyncEvery       int
	MaxStaleness      int
	StalenessExponent float64
	BufferK           int
	// NextRound is where the root's round sequence continues — 0 on a
	// fresh run, the checkpoint round after a crash-restore.
	NextRound int
}

// Cmd is one root→shard work order (the wire form of rounds.ShardCmd).
type Cmd struct {
	Round int
	// Params is the global snapshot to train from; nil between async
	// resyncs.
	Params []float64
	// Selected are this shard's selected clients in global selection
	// order (sync; nil in async, where the shard selects locally).
	Selected []int
	// Version is the root model version Params carries.
	Version int
}

// WireResult is one reporter's metadata riding back on a Report —
// everything rounds.Result carries except the parameters, which only
// cross the tree summed into the partial.
type WireResult struct {
	ClientID   int
	NumSamples int
	Loss       float64
	// Summary, when non-nil, is a refreshed P(y) histogram the client
	// piggybacked (§IV-C); the root forwards it to the scheduler.
	Summary []float64
	// Stats, when non-nil, is the client's self-reported training
	// stats block for the root's fleet registry.
	Stats *fleet.ClientStats
}

// Report is the shard's reply to a Cmd (the wire form of
// rounds.ShardReport, plus the shard/round echo the root validates).
type Report struct {
	ShardID int
	Round   int
	// Partial is the unnormalized sample-weighted partial aggregate
	// (sync: Σ n_r·w_r over reporters; async: the local model delta for
	// the cycle). Samples is the total weight behind it.
	Partial []float64
	Samples int
	// Reporters carries per-reporter metadata in shard selection order.
	Reporters []WireResult
	// Cut are selected clients discarded at the deadline; Failed are
	// clients whose transport died mid-round (the root marks them dead).
	Cut    []int
	Failed []int
	// LocalClock is the shard driver's virtual clock (async; 0 sync).
	LocalClock float64
	// BaseVersion is the root version of the shard's training base.
	BaseVersion int
	// Sessions/Reconnects are the shard's client-facing transport
	// counters, piggybacked for the root's merged fleet gauges.
	Sessions   int
	Reconnects int
}

// Bye ends a shard session.
type Bye struct{ Reason string }

// Envelope wraps every shard↔root message so one gob stream carries
// all types.
type Envelope struct {
	Hello  *Hello
	Ack    *Ack
	Cmd    *Cmd
	Report *Report
	Bye    *Bye
}

// Check validates the one-of-union invariant: exactly one field set.
func (e *Envelope) Check() error {
	n := 0
	if e.Hello != nil {
		n++
	}
	if e.Ack != nil {
		n++
	}
	if e.Cmd != nil {
		n++
	}
	if e.Report != nil {
		n++
	}
	if e.Bye != nil {
		n++
	}
	switch n {
	case 1:
		return nil
	case 0:
		return protoErr(ErrEmptyEnvelope, -1, -1, "no message in envelope")
	default:
		return protoErr(ErrAmbiguousEnvelope, -1, -1, fmt.Sprintf("%d messages in one envelope", n))
	}
}

// checkReport validates a Report against the Cmd in flight: correct
// session and round, finite partial, consistent counters. The deeper
// semantic validation (cut sets against the root's latency table)
// happens in rounds.HierDriver; this is the transport-level contract
// whose violation drops the session.
func checkReport(env *Envelope, shardID, round int) (*Report, error) {
	if err := env.Check(); err != nil {
		return nil, err
	}
	rep := env.Report
	if rep == nil {
		return nil, protoErr(ErrUnexpectedMessage, shardID, round, "expected Report")
	}
	if rep.ShardID != shardID {
		return nil, protoErr(ErrWrongShard, shardID, round, fmt.Sprintf("report claims shard %d", rep.ShardID))
	}
	if rep.Round != round {
		return nil, protoErr(ErrWrongRound, shardID, round, fmt.Sprintf("report for round %d", rep.Round))
	}
	if rep.Samples < 0 || rep.Sessions < 0 || rep.Reconnects < 0 {
		return nil, protoErr(ErrBadReport, shardID, round, "negative counter")
	}
	if math.IsNaN(rep.LocalClock) || rep.LocalClock < 0 {
		return nil, protoErr(ErrBadReport, shardID, round, fmt.Sprintf("local clock %v", rep.LocalClock))
	}
	for _, v := range rep.Partial {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, protoErr(ErrBadReport, shardID, round, "non-finite partial")
		}
	}
	for _, r := range rep.Reporters {
		if r.NumSamples <= 0 {
			return nil, protoErr(ErrBadReport, shardID, round,
				fmt.Sprintf("reporter %d with %d samples", r.ClientID, r.NumSamples))
		}
		if math.IsNaN(r.Loss) {
			return nil, protoErr(ErrBadReport, shardID, round, fmt.Sprintf("reporter %d loss NaN", r.ClientID))
		}
	}
	return rep, nil
}

// toShardReport converts a wire Report into the driver's in-memory
// form.
func toShardReport(rep *Report) *rounds.ShardReport {
	out := &rounds.ShardReport{
		Partial:     rep.Partial,
		Samples:     rep.Samples,
		Cut:         rep.Cut,
		Failed:      rep.Failed,
		LocalClock:  rep.LocalClock,
		BaseVersion: rep.BaseVersion,
		Sessions:    rep.Sessions,
		Reconnects:  rep.Reconnects,
	}
	if len(rep.Reporters) > 0 {
		out.Reporters = make([]rounds.Result, len(rep.Reporters))
		for i, r := range rep.Reporters {
			out.Reporters[i] = rounds.Result{
				ClientID:   r.ClientID,
				NumSamples: r.NumSamples,
				Loss:       r.Loss,
				Summary:    r.Summary,
				Stats:      r.Stats,
			}
		}
	}
	return out
}

// sameRoster reports whether two Hello rosters describe the same
// clients with the same latencies (the reconnect validation: a shard
// may not change its slice mid-run).
func sameRoster(a, b []rounds.ShardClient) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
