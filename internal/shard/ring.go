// Package shard splits the coordinator across processes: clients are
// partitioned over S shard coordinators by consistent hashing on
// client ID, each shard runs the shared round runtime over its slice,
// and a root aggregator folds the shards' sample-weighted partial
// aggregates into one global model (hierarchical FedAvg — see
// rounds.HierDriver for the arithmetic and DESIGN.md §15 for the wire
// protocol and failure model). Selection stays heterogeneity-aware
// globally: shards ship sketch representatives of their local label
// distributions upward in the Hello handshake, and the root clusters
// them to hand per-shard selection budgets back down.
package shard

import (
	"errors"
	"fmt"
	"sort"

	"haccs/internal/stats"
)

// DefaultVirtualNodes is the per-shard virtual-node count used when a
// Ring is built with vnodes <= 0. 128 points per shard keeps the
// expected load imbalance across a handful of shards within a few
// percent while the ring stays small enough to rebuild per lookup
// table in microseconds.
const DefaultVirtualNodes = 128

// Hash-domain separators so shard points and client keys never draw
// from the same stream (a shard ID equal to a client ID must not
// collide by construction).
const (
	ringShardSalt  = 0x5ac1d_0001
	ringClientSalt = 0x5ac1d_0002
)

// Ring is a consistent-hash ring over shard IDs. Placement is a pure
// function of the ID sets: two rings built from the same shard IDs and
// vnodes agree on every client's owner across process restarts, and
// adding or removing one shard reassigns only the clients that hash
// into the affected arcs — about 1/S of the population in expectation,
// never a client whose owner survives the change.
type Ring struct {
	points []ringPoint
	shards []int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over the given shard IDs with vnodes virtual
// nodes per shard (<= 0 selects DefaultVirtualNodes). Shard IDs must
// be non-negative and unique; order does not matter.
func NewRing(shardIDs []int, vnodes int) (*Ring, error) {
	if len(shardIDs) == 0 {
		return nil, errors.New("shard: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[int]bool, len(shardIDs))
	r := &Ring{
		points: make([]ringPoint, 0, len(shardIDs)*vnodes),
		shards: append([]int(nil), shardIDs...),
	}
	sort.Ints(r.shards)
	for _, id := range r.shards {
		if id < 0 {
			return nil, fmt.Errorf("shard: negative shard ID %d", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("shard: duplicate shard ID %d", id)
		}
		seen[id] = true
		root := stats.DeriveSeed(ringShardSalt, uint64(id))
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: stats.DeriveSeed(root, uint64(v)), shard: id})
		}
	}
	// Ties between points of different shards are broken by shard ID so
	// the ring order itself is deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the ring's shard IDs in ascending order.
func (r *Ring) Shards() []int { return append([]int(nil), r.shards...) }

// Owner returns the shard owning a client: the first ring point at or
// after the client's hash, wrapping at the top of the key space.
func (r *Ring) Owner(clientID int) int {
	h := stats.DeriveSeed(ringClientSalt, uint64(clientID))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Partition maps the dense client roster 0..n-1 onto the ring,
// returning each shard's client IDs in ascending order, indexed in the
// same order as Shards().
func (r *Ring) Partition(n int) [][]int {
	slot := make(map[int]int, len(r.shards))
	for i, id := range r.shards {
		slot[id] = i
	}
	out := make([][]int, len(r.shards))
	for c := 0; c < n; c++ {
		s := slot[r.Owner(c)]
		out[s] = append(out[s], c)
	}
	return out
}
