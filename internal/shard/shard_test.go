package shard

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"haccs/internal/checkpoint"
	"haccs/internal/flnet"
	"haccs/internal/rounds"
)

// intTrainer returns the deterministic integer trainer used across the
// equivalence tests: out = params + (id+1) elementwise, one sample,
// loss = id. Integer updates with power-of-2 reporter counts keep
// every FedAvg expression exact in float64, so flat and hierarchical
// aggregation agree bitwise.
func intTrainer(id, dim int) flnet.TrainerFunc {
	return func(round int, params []float64) ([]float64, int, float64) {
		out := make([]float64, dim)
		for i := range out {
			var p float64
			if i < len(params) {
				p = params[i]
			}
			out[i] = p + float64(id+1)
		}
		return out, 1, float64(id)
	}
}

func testLatency(id int) float64 {
	// Dyadic latencies 1,2,4 with clients 6 and 7 as deadline-5
	// stragglers at 8.
	if id >= 6 {
		return 8
	}
	return []float64{1, 2, 4}[id%3]
}

// startFleet connects n flnet clients with the integer trainer to a
// fresh server and returns it seated.
func startFleet(t *testing.T, ids []int, dim int) *flnet.Server {
	t.Helper()
	srv, err := flnet.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		c := &flnet.Client{
			Reg: flnet.Register{
				ClientID:        id,
				LabelCounts:     oneHot(id % 4),
				LatencyEstimate: testLatency(id),
				NumSamples:      1,
			},
			Trainer: intTrainer(id, dim),
		}
		go c.Run(srv.Addr())
	}
	if _, err := srv.AcceptClients(len(ids)); err != nil {
		t.Fatal(err)
	}
	srv.ServeReconnects()
	t.Cleanup(func() { srv.Shutdown() })
	return srv
}

// startAgent builds and runs a shard agent over its fleet slice.
func startAgent(t *testing.T, shardID int, ids []int, dim int, rootAddr string) *Agent {
	t.Helper()
	srv := startFleet(t, ids, dim)
	a, err := NewAgent(AgentConfig{
		ShardID:     shardID,
		Root:        rootAddr,
		Server:      srv,
		RedialEvery: 5 * time.Millisecond,
		RedialFor:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	go a.Run()
	t.Cleanup(a.Close)
	return a
}

// fixedStrategy selects the available prefix of a preferred order —
// deterministic and stateless, so it survives a checkpoint resume
// without a strategy snapshot.
type fixedStrategy struct{ preferred []int }

func (s *fixedStrategy) Select(round int, available []bool, k int) []int {
	out := make([]int, 0, k)
	for _, id := range s.preferred {
		if len(out) == k {
			break
		}
		if id < len(available) && available[id] {
			out = append(out, id)
		}
	}
	return out
}

func (s *fixedStrategy) Update(round int, selected []int, losses []float64) {}

const testDim = 3

// TestSyncEquivalenceOverTCP is the golden equivalence check: two
// shard coordinators plus a root over real loopback TCP produce a
// bit-identical global trajectory (parameters and virtual clock) to
// the flat single-coordinator sync path over the same roster, seed and
// deadline — including a round with deadline-cut stragglers.
func TestSyncEquivalenceOverTCP(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// Rounds select 4 clients; the preferred order brings the two
	// stragglers (6, 7) in so the cut path is exercised with a
	// power-of-2 reporter count.
	preferred := []int{0, 1, 6, 7, 2, 3, 4, 5}

	// Flat reference: one coordinator over all eight clients.
	flatSrv := startFleet(t, ids, testDim)
	flat, err := flnet.NewCoordinator(flatSrv, flnet.CoordinatorConfig{
		ClientsPerRound: 4,
		Deadline:        5,
	}, &fixedStrategy{preferred}, make([]float64, testDim))
	if err != nil {
		t.Fatal(err)
	}

	// Sharded run: even clients on shard 0, odd on shard 1.
	rootSrv, err := NewRootServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rootSrv.Shutdown() })
	startAgent(t, 0, []int{0, 2, 4, 6}, testDim, rootSrv.Addr())
	startAgent(t, 1, []int{1, 3, 5, 7}, testDim, rootSrv.Addr())
	if _, err := rootSrv.AcceptShards(2); err != nil {
		t.Fatal(err)
	}
	rootSrv.ServeReconnects()
	root, err := NewRoot(rootSrv, RootConfig{
		ClientsPerRound: 4,
		Deadline:        5,
	}, &fixedStrategy{preferred}, make([]float64, testDim))
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 5; round++ {
		fo := flat.RunRound(round)
		ho := root.RunRound(round)
		if len(fo.Reporters) != len(ho.Reporters) {
			t.Fatalf("round %d: %d flat reporters, %d sharded", round, len(fo.Reporters), len(ho.Reporters))
		}
		if flat.Clock() != root.Clock() {
			t.Fatalf("round %d: clock %v flat, %v sharded", round, flat.Clock(), root.Clock())
		}
		fg, hg := flat.Global(), root.Global()
		for i := range fg {
			if fg[i] != hg[i] {
				t.Fatalf("round %d: global[%d] = %v flat, %v sharded", round, i, fg[i], hg[i])
			}
		}
	}
	// The straggler rounds must actually have cut someone, or the test
	// is weaker than it claims.
	if root.Driver().Clock() == 0 {
		t.Fatal("clock never advanced")
	}
	st := root.ShardStatuses()
	if len(st) != 2 || st[0].Clients != 4 || st[1].Clients != 4 {
		t.Fatalf("shard statuses = %+v", st)
	}
}

// TestRootCrashResume kills the root mid-run with Abort (no farewells
// — the crash path), rebuilds a fresh RootServer on the same address,
// re-admits the redialing shards, restores the latest checkpoint and
// finishes the schedule. The trajectory must match an uninterrupted
// run bitwise.
func TestRootCrashResume(t *testing.T) {
	const totalRounds = 6
	preferred := []int{0, 1, 2, 3, 4, 5}

	runRounds := func(root *Root, from, to int) {
		for r := from; r < to; r++ {
			root.RunRound(r)
		}
	}

	// Reference: uninterrupted run.
	refSrv, err := NewRootServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { refSrv.Shutdown() })
	startAgent(t, 0, []int{0, 2, 4}, testDim, refSrv.Addr())
	startAgent(t, 1, []int{1, 3, 5}, testDim, refSrv.Addr())
	if _, err := refSrv.AcceptShards(2); err != nil {
		t.Fatal(err)
	}
	refSrv.ServeReconnects()
	ref, err := NewRoot(refSrv, RootConfig{ClientsPerRound: 4, Deadline: 5},
		&fixedStrategy{preferred}, make([]float64, testDim))
	if err != nil {
		t.Fatal(err)
	}
	runRounds(ref, 0, totalRounds)

	// Crashy run with a checkpoint every round.
	store, err := checkpoint.NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewRootServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()
	startAgent(t, 0, []int{0, 2, 4}, testDim, addr)
	startAgent(t, 1, []int{1, 3, 5}, testDim, addr)
	if _, err := srv1.AcceptShards(2); err != nil {
		t.Fatal(err)
	}
	srv1.ServeReconnects()
	root1, err := NewRoot(srv1, RootConfig{
		ClientsPerRound: 4,
		Deadline:        5,
		Checkpoint:      store,
		CheckpointEvery: 1,
	}, &fixedStrategy{preferred}, make([]float64, testDim))
	if err != nil {
		t.Fatal(err)
	}
	runRounds(root1, 0, 3)
	if err := srv1.Abort(); err != nil {
		t.Fatal(err)
	}

	// Restart: same address, shards redial and re-offer their rosters.
	srv2, err := NewRootServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Shutdown() })
	if _, err := srv2.AcceptShards(2); err != nil {
		t.Fatal(err)
	}
	srv2.ServeReconnects()
	root2, err := NewRoot(srv2, RootConfig{
		ClientsPerRound: 4,
		Deadline:        5,
		Checkpoint:      store,
		CheckpointEvery: 1,
	}, &fixedStrategy{preferred}, make([]float64, testDim))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if err := root2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if root2.NextRound() != 3 {
		t.Fatalf("NextRound = %d after restoring round-3 snapshot", root2.NextRound())
	}
	runRounds(root2, root2.NextRound(), totalRounds)

	if ref.Clock() != root2.Clock() {
		t.Fatalf("clock %v uninterrupted, %v resumed", ref.Clock(), root2.Clock())
	}
	for i := range ref.Global() {
		if ref.Global()[i] != root2.Global()[i] {
			t.Fatalf("global[%d] = %v uninterrupted, %v resumed", i, ref.Global()[i], root2.Global()[i])
		}
	}
}

// TestReconnectRosterValidation: the admission loop refuses a
// reconnect that re-offers a different roster (or an unknown shard)
// with a Bye instead of seating it.
func TestReconnectRosterValidation(t *testing.T) {
	rootSrv, err := NewRootServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rootSrv.Shutdown() })
	startAgent(t, 0, []int{0, 2}, testDim, rootSrv.Addr())
	startAgent(t, 1, []int{1, 3}, testDim, rootSrv.Addr())
	if _, err := rootSrv.AcceptShards(2); err != nil {
		t.Fatal(err)
	}
	rootSrv.ServeReconnects()
	if _, err := NewRoot(rootSrv, RootConfig{ClientsPerRound: 2},
		&fixedStrategy{preferred: []int{0, 1, 2, 3}}, make([]float64, testDim)); err != nil {
		t.Fatal(err)
	}

	tryHello := func(h Hello) *Envelope {
		conn, err := net.Dial("tcp", rootSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		if err := enc.Encode(Envelope{Hello: &h}); err != nil {
			t.Fatal(err)
		}
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return nil // connection closed without farewell
		}
		return &env
	}

	wrongRoster := tryHello(Hello{ShardID: 0, Clients: []rounds.ShardClient{{ID: 9, Latency: 1}}})
	if wrongRoster == nil || wrongRoster.Bye == nil {
		t.Errorf("roster-changing reconnect got %+v, want Bye", wrongRoster)
	}
	unknown := tryHello(Hello{ShardID: 9, Clients: []rounds.ShardClient{{ID: 0, Latency: 1}}})
	if unknown == nil || unknown.Bye == nil {
		t.Errorf("unknown shard got %+v, want Bye", unknown)
	}
}

// TestAsyncOverTCP runs the hierarchical async mode end to end: shards
// run local buffered cycles under their θ budgets and the root merges
// their deltas; the run must aggregate, advance versions, and keep the
// per-shard base versions within the resync cadence.
func TestAsyncOverTCP(t *testing.T) {
	rootSrv, err := NewRootServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rootSrv.Shutdown() })
	startAgent(t, 0, []int{0, 2, 4}, testDim, rootSrv.Addr())
	startAgent(t, 1, []int{1, 3, 5}, testDim, rootSrv.Addr())
	if _, err := rootSrv.AcceptShards(2); err != nil {
		t.Fatal(err)
	}
	rootSrv.ServeReconnects()
	root, err := NewRoot(rootSrv, RootConfig{
		ClientsPerRound: 4,
		Mode:            rounds.ModeAsync,
		Async:           rounds.AsyncConfig{BufferK: 2, MaxStaleness: 4},
		ResyncEvery:     2,
	}, nil, make([]float64, testDim))
	if err != nil {
		t.Fatal(err)
	}
	if root.Budget(0)+root.Budget(1) != 4 {
		t.Fatalf("budgets %d + %d != k", root.Budget(0), root.Budget(1))
	}

	aggregated := 0
	for r := 0; r < 6; r++ {
		out := root.RunRound(r)
		if out.Aggregated {
			aggregated++
		}
	}
	if aggregated == 0 {
		t.Fatal("no async cycle aggregated")
	}
	if root.Driver().Version() == 0 {
		t.Fatal("version never advanced")
	}
	moved := false
	for _, v := range root.Global() {
		if v != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("global never moved")
	}
	for _, st := range root.ShardStatuses() {
		if st.LocalClock <= 0 {
			t.Errorf("shard %d local clock %v", st.ID, st.LocalClock)
		}
		if root.Driver().Version()-st.BaseVersion > 2+1 {
			t.Errorf("shard %d base version %d lags version %d past the resync cadence",
				st.ID, st.BaseVersion, root.Driver().Version())
		}
	}
}
