package shard

import (
	"errors"
	"math"
	"strings"
	"testing"

	"haccs/internal/rounds"
)

func TestEnvelopeCheck(t *testing.T) {
	var kind ProtocolErrorKind
	get := func(e Envelope) ProtocolErrorKind {
		err := e.Check()
		if err == nil {
			return ""
		}
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Fatalf("error %v is not a *ProtocolError", err)
		}
		return pe.Kind
	}
	if kind = get(Envelope{}); kind != ErrEmptyEnvelope {
		t.Errorf("empty envelope -> %q", kind)
	}
	if kind = get(Envelope{Hello: &Hello{}, Bye: &Bye{}}); kind != ErrAmbiguousEnvelope {
		t.Errorf("two-field envelope -> %q", kind)
	}
	if err := (&Envelope{Cmd: &Cmd{}}).Check(); err != nil {
		t.Errorf("single-field envelope rejected: %v", err)
	}
}

func TestHelloCheck(t *testing.T) {
	ok := Hello{
		ShardID:   1,
		Clients:   []rounds.ShardClient{{ID: 0, Latency: 1}, {ID: 2, Latency: 3}},
		SketchDim: 2,
		Reps:      [][]float64{{0.5, 0.5}},
		RepCounts: []int{2},
	}
	if err := ok.check(); err != nil {
		t.Fatalf("valid hello rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(h *Hello)
	}{
		{"negative shard", func(h *Hello) { h.ShardID = -1 }},
		{"empty roster", func(h *Hello) { h.Clients = nil }},
		{"negative client", func(h *Hello) { h.Clients[0].ID = -4 }},
		{"nan latency", func(h *Hello) { h.Clients[1].Latency = math.NaN() }},
		{"counts mismatch", func(h *Hello) { h.RepCounts = nil }},
		{"rep dim", func(h *Hello) { h.Reps[0] = []float64{1} }},
		{"empty rep", func(h *Hello) { h.RepCounts[0] = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := ok
			h.Clients = append([]rounds.ShardClient(nil), ok.Clients...)
			h.Reps = [][]float64{append([]float64(nil), ok.Reps[0]...)}
			h.RepCounts = append([]int(nil), ok.RepCounts...)
			tc.mutate(&h)
			if h.check() == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestCheckReport(t *testing.T) {
	good := func() *Report {
		return &Report{
			ShardID: 3, Round: 7,
			Partial: []float64{1, 2}, Samples: 2,
			Reporters: []WireResult{{ClientID: 5, NumSamples: 2, Loss: 0.5}},
		}
	}
	if _, err := checkReport(&Envelope{Report: good()}, 3, 7); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := []struct {
		name   string
		env    Envelope
		kind   ProtocolErrorKind
		mutate func(r *Report)
	}{
		{name: "not a report", env: Envelope{Hello: &Hello{}}, kind: ErrUnexpectedMessage},
		{name: "wrong shard", kind: ErrWrongShard, mutate: func(r *Report) { r.ShardID = 4 }},
		{name: "wrong round", kind: ErrWrongRound, mutate: func(r *Report) { r.Round = 8 }},
		{name: "negative samples", kind: ErrBadReport, mutate: func(r *Report) { r.Samples = -1 }},
		{name: "nan partial", kind: ErrBadReport, mutate: func(r *Report) { r.Partial[0] = math.NaN() }},
		{name: "zero-sample reporter", kind: ErrBadReport, mutate: func(r *Report) { r.Reporters[0].NumSamples = 0 }},
		{name: "nan clock", kind: ErrBadReport, mutate: func(r *Report) { r.LocalClock = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := tc.env
			if tc.mutate != nil {
				rep := good()
				tc.mutate(rep)
				env = Envelope{Report: rep}
			}
			_, err := checkReport(&env, 3, 7)
			var pe *ProtocolError
			if !errors.As(err, &pe) || pe.Kind != tc.kind {
				t.Errorf("err = %v, want kind %q", err, tc.kind)
			}
		})
	}
}

func TestProtocolErrorFormat(t *testing.T) {
	e := protoErr(ErrWrongRound, 2, 5, "report for round 9")
	want := "shard: wrong_round (shard 2, round 5): report for round 9"
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
	if msg := protoErr(ErrEmptyEnvelope, -1, -1, "").Error(); !strings.HasPrefix(msg, "shard: empty_envelope") {
		t.Errorf("anonymous error = %q", msg)
	}
}
