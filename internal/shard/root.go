package shard

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"haccs/internal/checkpoint"
	"haccs/internal/fleet"
	"haccs/internal/nn"
	"haccs/internal/rounds"
	"haccs/internal/simnet"
	"haccs/internal/telemetry"
)

// shardSession is one connected shard on the root side.
type shardSession struct {
	hello Hello
	enc   *gob.Encoder
	dec   *gob.Decoder
	conn  net.Conn
}

// RootServer is the root aggregator's transport endpoint: it accepts
// shard Hellos, replays Acks to reconnecting shards, and runs the
// Cmd/Report exchange the hierarchical driver's proxies call. It
// mirrors flnet.Server one level up the tree, with the same failure
// responses: a protocol violation or transport error drops the shard
// session (the round runtime then treats the shard as failed for the
// round), and a reconnecting shard replaces its stale session after
// roster validation.
type RootServer struct {
	ln net.Listener

	mu       sync.Mutex
	sessions map[int]*shardSession
	// hellos pins each shard's first-announced roster; reconnects must
	// re-offer it exactly (the partition is fixed for the run).
	hellos     map[int]Hello
	acks       map[int]Ack
	nextRound  func() int
	reconnects int
	closed     bool
	reconnDone chan struct{}

	reg    *telemetry.Registry
	tracer telemetry.Tracer
	http   *telemetry.HTTPServer
}

// NewRootServer listens on addr (use "127.0.0.1:0" for an ephemeral
// port).
func NewRootServer(addr string) (*RootServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shard: listen: %w", err)
	}
	return &RootServer{
		ln:       ln,
		sessions: map[int]*shardSession{},
		hellos:   map[int]Hello{},
	}, nil
}

// Addr returns the root's listen address.
func (s *RootServer) Addr() string { return s.ln.Addr().String() }

// EnableTelemetry attaches a metrics registry and tracer and, when
// httpAddr is non-empty, mounts /metrics and /debug/trace (plus any
// extra endpoints passed as options — the root adds /debug/shards and
// the shard-filtered /debug/fleet) on it, returning the bound address.
func (s *RootServer) EnableTelemetry(reg *telemetry.Registry, tracer telemetry.Tracer, ring *telemetry.RingSink, httpAddr string, opts ...telemetry.ServeOption) (string, error) {
	s.mu.Lock()
	s.reg = reg
	s.tracer = tracer
	s.mu.Unlock()
	if httpAddr == "" {
		return "", nil
	}
	srv, err := telemetry.Serve(httpAddr, reg, ring, opts...)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.http = srv
	s.mu.Unlock()
	return srv.Addr(), nil
}

// AcceptShards blocks until n distinct shards have said Hello (or an
// accept fails) and returns their Hellos sorted by shard ID. No Acks
// are sent yet: the root's plan (θ budgets, mode parameters) needs
// every shard's representatives, so NewRoot computes it over the full
// set and sends the Acks then. A malformed Hello or a duplicate shard
// ID closes that connection and fails the accept with a typed
// *ProtocolError.
func (s *RootServer) AcceptShards(n int) ([]Hello, error) {
	for {
		s.mu.Lock()
		have := len(s.sessions)
		s.mu.Unlock()
		if have >= n {
			break
		}
		conn, err := s.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("shard: accept: %w", err)
		}
		sess := &shardSession{
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
			conn: conn,
		}
		var env Envelope
		if err := sess.dec.Decode(&env); err != nil {
			conn.Close()
			return nil, fmt.Errorf("shard: bad hello: %w", err)
		}
		if err := env.Check(); err != nil {
			conn.Close()
			return nil, err
		}
		if env.Hello == nil {
			conn.Close()
			return nil, protoErr(ErrUnexpectedMessage, -1, -1, "expected Hello as first message")
		}
		if err := env.Hello.check(); err != nil {
			conn.Close()
			return nil, err
		}
		sess.hello = *env.Hello
		s.mu.Lock()
		if _, dup := s.sessions[sess.hello.ShardID]; dup {
			s.mu.Unlock()
			conn.Close()
			return nil, protoErr(ErrDuplicateShard, sess.hello.ShardID, -1, "shard already connected")
		}
		s.sessions[sess.hello.ShardID] = sess
		s.hellos[sess.hello.ShardID] = sess.hello
		s.mu.Unlock()
	}
	return s.Hellos(), nil
}

// Hellos returns the accepted shards' Hellos sorted by shard ID.
func (s *RootServer) Hellos() []Hello {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Hello, 0, len(s.hellos))
	for _, h := range s.hellos {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ShardID < out[j].ShardID })
	return out
}

// setPlan stores the per-shard Acks and pushes them to every connected
// shard; reconnecting shards get theirs replayed (with a fresh
// NextRound) by the admission loop. Called by NewRoot once the plan is
// computed over the full Hello set.
func (s *RootServer) setPlan(acks map[int]Ack, nextRound func() int) error {
	s.mu.Lock()
	s.acks = acks
	s.nextRound = nextRound
	sessions := make([]*shardSession, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		ack, ok := acks[sess.hello.ShardID]
		if !ok {
			continue
		}
		ack.NextRound = nextRound()
		if err := sess.enc.Encode(Envelope{Ack: &ack}); err != nil {
			s.dropSession(sess.hello.ShardID, sess)
			return fmt.Errorf("shard: ack shard %d: %w", sess.hello.ShardID, err)
		}
	}
	return nil
}

// ServeReconnects starts the background admission loop for shards
// redialing after a connection loss (or after a root crash-restore,
// where every shard redials a fresh RootServer that learned the
// rosters from AcceptShards again). The loop exits when the listener
// closes; Shutdown and Abort wait for it.
func (s *RootServer) ServeReconnects() {
	s.mu.Lock()
	if s.closed || s.reconnDone != nil {
		s.mu.Unlock()
		return
	}
	done := make(chan struct{})
	s.reconnDone = done
	s.mu.Unlock()
	go func() {
		defer close(done)
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.admit(conn)
		}
	}()
}

// reconnectTimeout bounds how long the admission loop waits for a
// fresh connection's Hello so one wedged dialer cannot stall everyone
// behind it.
const reconnectTimeout = 5 * time.Second

// admit runs the handshake for one reconnecting shard: the re-offered
// roster must match the original Hello exactly (the partition is fixed
// for the run), after which the stale session is replaced and the
// stored Ack replayed with the current round position.
func (s *RootServer) admit(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(reconnectTimeout))
	sess := &shardSession{
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
		conn: conn,
	}
	var env Envelope
	if err := sess.dec.Decode(&env); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if env.Check() != nil || env.Hello == nil || env.Hello.check() != nil {
		conn.Close()
		return
	}
	sess.hello = *env.Hello
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	known, seen := s.hellos[sess.hello.ShardID]
	if !seen || !sameRoster(known.Clients, sess.hello.Clients) {
		// An unknown shard mid-run, or a shard trying to change its
		// slice: refuse (the typed error is advisory — the agent will
		// keep redialing and keep being refused, which is the correct
		// steady state until the operator fixes the ring).
		s.mu.Unlock()
		kind := ErrRosterMismatch
		if !seen {
			kind = ErrNotConnected
		}
		_ = sess.enc.Encode(Envelope{Bye: &Bye{Reason: protoErr(kind, sess.hello.ShardID, -1, "reconnect refused").Error()}})
		conn.Close()
		return
	}
	old := s.sessions[sess.hello.ShardID]
	s.sessions[sess.hello.ShardID] = sess
	s.reconnects++
	ack, haveAck := s.acks[sess.hello.ShardID]
	next := s.nextRound
	reg := s.reg
	s.mu.Unlock()
	if old != nil {
		old.conn.Close()
	}
	if reg != nil {
		reg.Counter("haccs_root_shard_reconnects_total", "Shard re-registrations with the root (uplink churn).").Inc()
	}
	if haveAck {
		if next != nil {
			ack.NextRound = next()
		}
		if err := sess.enc.Encode(Envelope{Ack: &ack}); err != nil {
			s.dropSession(sess.hello.ShardID, sess)
		}
	}
}

// ShardReconnects returns the cumulative count of shard re-admissions.
func (s *RootServer) ShardReconnects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// exec runs one Cmd/Report exchange with a single connected shard —
// the transport primitive behind the hierarchical driver's proxies.
// Any failure drops the session (a reconnecting shard re-admits
// through ServeReconnects) and surfaces to the driver as a whole-shard
// round failure.
func (s *RootServer) exec(shardID int, cmd Cmd) (*Report, error) {
	s.mu.Lock()
	sess, ok := s.sessions[shardID]
	s.mu.Unlock()
	if !ok {
		return nil, protoErr(ErrNotConnected, shardID, cmd.Round, "no live session")
	}
	if err := sess.enc.Encode(Envelope{Cmd: &cmd}); err != nil {
		s.dropSession(shardID, sess)
		return nil, fmt.Errorf("shard: push to shard %d: %w", shardID, err)
	}
	var env Envelope
	if err := sess.dec.Decode(&env); err != nil {
		s.dropSession(shardID, sess)
		return nil, fmt.Errorf("shard: receive from shard %d: %w", shardID, err)
	}
	rep, err := checkReport(&env, shardID, cmd.Round)
	if err != nil {
		s.dropSession(shardID, sess)
		return nil, err
	}
	return rep, nil
}

// dropSession closes and forgets one shard session. Pointer-matched so
// a round failure racing a reconnect cannot evict the shard's fresh
// replacement session.
func (s *RootServer) dropSession(shardID int, failed *shardSession) {
	s.mu.Lock()
	if cur, ok := s.sessions[shardID]; ok && cur == failed {
		delete(s.sessions, shardID)
	}
	s.mu.Unlock()
	failed.conn.Close()
}

// Sessions returns the number of live shard sessions.
func (s *RootServer) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close shuts the root down gracefully; see Shutdown.
func (s *RootServer) Close() error { return s.Shutdown() }

// Shutdown gracefully stops the root: every connected shard receives a
// Bye (so Agent.Run returns nil), the listener and admission loop
// stop, and the telemetry endpoint drains.
func (s *RootServer) Shutdown() error { return s.teardown(&Bye{Reason: "shutdown"}) }

// Abort tears the root down without farewells: connections close, so
// shards observe a receive error and start redialing — exactly what a
// root crash looks like from below. The scale harness uses it to
// inject a mid-run kill before exercising checkpoint resume.
func (s *RootServer) Abort() error { return s.teardown(nil) }

func (s *RootServer) teardown(farewell *Bye) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, sess := range s.sessions {
		if farewell != nil {
			_ = sess.enc.Encode(Envelope{Bye: farewell})
		}
		sess.conn.Close()
	}
	s.sessions = map[int]*shardSession{}
	httpSrv := s.http
	s.http = nil
	reconnDone := s.reconnDone
	s.mu.Unlock()
	err := s.ln.Close()
	if reconnDone != nil {
		<-reconnDone
	}
	if httpSrv != nil {
		if herr := httpSrv.Close(); err == nil {
			err = herr
		}
	}
	return err
}

// RootConfig parameterizes the hierarchical root runtime. It mirrors
// flnet.CoordinatorConfig with the hierarchical additions: the async
// resync cadence, the shard-local buffer size pushed down in the Acks,
// and the sketch attach radius of the θ-budget plan.
type RootConfig struct {
	// ClientsPerRound is the global selection budget k. In async mode
	// it is apportioned across shards as their local θ budgets.
	ClientsPerRound int
	// Deadline is the sync straggler deadline in virtual seconds,
	// applied by the shards and cross-checked by the root.
	Deadline float64
	// Mode selects sync barrier rounds or async staleness-weighted
	// merging of shard flushes (see rounds.HierConfig).
	Mode rounds.Mode
	// Async tunes the root merge and, through the Acks, the shards'
	// local buffered drivers.
	Async rounds.AsyncConfig
	// ResyncEvery is the async base-refresh cadence (see
	// rounds.HierConfig.ResyncEvery).
	ResyncEvery int
	// Dropout injects per-round unavailability at the root's global
	// selection (sync mode; nil = none).
	Dropout simnet.DropoutModel
	// Tracer receives the root's round-trace event stream, including
	// the shard_report/shard_merge/shard_failed hierarchy events.
	Tracer telemetry.Tracer
	// Metrics, when non-nil, receives the driver collectors plus the
	// haccs_shard_* family and the merged fleet gauges.
	Metrics *telemetry.Registry
	// OnSummary receives refreshed client summaries forwarded up by the
	// shards.
	OnSummary func(clientID int, labelCounts []float64)
	// Fleet, when non-nil, is the root's per-client health registry; it
	// joins the checkpoint component set.
	Fleet *fleet.Registry
	// Checkpoint/CheckpointEvery persist the root's run state on
	// cadence, so a crashed root rebuilt over re-registered shards
	// resumes the round sequence (see Root.Restore). Sync shards are
	// stateless between rounds, so sync resume is exact; async shards
	// lose at most one un-merged local buffer each (bounded loss).
	Checkpoint      *checkpoint.Store
	CheckpointEvery int
	// Arch stamps the model component of snapshots.
	Arch nn.Arch
	// AttachRadius is the ε of the root's representative clustering for
	// the θ-budget plan (0 selects the sketch default).
	AttachRadius float64
}

// Root drives hierarchical federated rounds over connected shard
// agents: flnet.Coordinator's role, one level up. Build it after
// AcceptShards has gathered the full shard set; construction computes
// the θ-budget plan and sends every shard its Ack.
type Root struct {
	srv      *RootServer
	driver   *rounds.HierDriver
	strategy rounds.Strategy
	arch     nn.Arch
	dropout  simnet.DropoutModel
	fleet    *fleet.Registry

	saver *checkpoint.Saver

	mu         sync.Mutex
	startRound int
	statuses   []rounds.ShardStatus

	budgets map[int]int

	tracer telemetry.Tracer
	reg    *telemetry.Registry
}

// rootProxy adapts one shard session to the hierarchical driver.
type rootProxy struct {
	srv     *RootServer
	id      int
	clients []rounds.ShardClient
}

func (p *rootProxy) ID() int                       { return p.id }
func (p *rootProxy) Clients() []rounds.ShardClient { return p.clients }

func (p *rootProxy) Exec(cmd rounds.ShardCmd) (*rounds.ShardReport, error) {
	rep, err := p.srv.exec(p.id, Cmd{
		Round:    cmd.Round,
		Params:   cmd.Params,
		Selected: cmd.Selected,
		Version:  cmd.Version,
	})
	if err != nil {
		return nil, err
	}
	return toShardReport(rep), nil
}

// NewRoot builds the hierarchical runtime over the server's accepted
// shards: the shards' announced rosters must partition a dense client
// ID space 0..n-1 (consistent hashing via Ring produces exactly that);
// in sync mode the strategy must already be initialized over the full
// roster. initial is the starting global vector (the driver takes
// ownership). Construction computes the per-shard θ-budget plan from
// the Hello representatives and acks every connected shard.
func NewRoot(srv *RootServer, cfg RootConfig, strategy rounds.Strategy, initial []float64) (*Root, error) {
	hellos := srv.Hellos()
	if len(hellos) == 0 {
		return nil, fmt.Errorf("shard: no connected shards")
	}
	mode := cfg.Mode
	if mode == "" {
		mode = rounds.ModeSync
	}
	budgets := PlanBudgets(hellos, cfg.ClientsPerRound, cfg.AttachRadius)
	proxies := make([]rounds.ShardProxy, len(hellos))
	for i, h := range hellos {
		proxies[i] = &rootProxy{srv: srv, id: h.ShardID, clients: h.Clients}
	}
	rcfg := rounds.Config{
		ClientsPerRound: cfg.ClientsPerRound,
		Deadline:        cfg.Deadline,
		Dropout:         cfg.Dropout,
		Tracer:          cfg.Tracer,
		Metrics:         cfg.Metrics,
		OnSummary:       cfg.OnSummary,
		Fleet:           cfg.Fleet,
	}
	hcfg := rounds.HierConfig{Mode: mode, Async: cfg.Async, ResyncEvery: cfg.ResyncEvery}
	driver, err := rounds.NewHierDriver(rcfg, hcfg, proxies, strategy, initial)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	r := &Root{
		srv:      srv,
		driver:   driver,
		strategy: strategy,
		arch:     cfg.Arch,
		dropout:  cfg.Dropout,
		fleet:    cfg.Fleet,
		tracer:   cfg.Tracer,
		reg:      cfg.Metrics,
		budgets:  make(map[int]int, len(hellos)),
		statuses: driver.ShardStatuses(),
	}
	r.saver = checkpoint.NewSaver(cfg.Checkpoint, cfg.CheckpointEvery, r.checkpointComponents(), cfg.Tracer, nil, cfg.Metrics)
	acks := make(map[int]Ack, len(hellos))
	for i, h := range hellos {
		r.budgets[h.ShardID] = budgets[i]
		acks[h.ShardID] = Ack{
			Mode:              string(mode),
			Deadline:          cfg.Deadline,
			Budget:            budgets[i],
			ResyncEvery:       cfg.ResyncEvery,
			MaxStaleness:      cfg.Async.MaxStaleness,
			StalenessExponent: cfg.Async.StalenessExponent,
			BufferK:           cfg.Async.BufferK,
		}
	}
	if err := srv.setPlan(acks, r.NextRound); err != nil {
		return nil, err
	}
	return r, nil
}

// Budget returns a shard's planned async selection budget θ_s (0 for
// unknown shards).
func (r *Root) Budget(shardID int) int { return r.budgets[shardID] }

// checkpointComponents lists the root's stateful layers under the
// shared component names ("driver_hier" marks hierarchical snapshots)
// so tooling reads root snapshots like any coordinator's.
func (r *Root) checkpointComponents() []checkpoint.Component {
	comps := []checkpoint.Component{
		{Name: "model", S: checkpoint.Model{Arch: r.arch, Params: r.driver.Global, SetParams: r.driver.SetGlobal}},
		{Name: "driver_hier", S: r.driver},
	}
	if s, ok := r.strategy.(checkpoint.Snapshotter); ok {
		comps = append(comps, checkpoint.Component{Name: "strategy", S: s})
	}
	if l, ok := r.strategy.(checkpoint.ComponentLister); ok {
		comps = append(comps, l.ExtraComponents()...)
	}
	if d, ok := r.dropout.(checkpoint.Snapshotter); ok {
		comps = append(comps, checkpoint.Component{Name: "dropout", S: d})
	}
	if r.fleet != nil {
		comps = append(comps, checkpoint.Component{Name: "fleet", S: r.fleet})
	}
	return comps
}

// Snapshot captures the root's run state after roundsDone completed
// rounds, independent of any configured store.
func (r *Root) Snapshot(roundsDone int) (*checkpoint.Snapshot, error) {
	return checkpoint.Capture(roundsDone, r.checkpointComponents())
}

// Restore replays a snapshot into a freshly built root: same strategy,
// same model dimensions, same shard partition (the shards re-said
// Hello to the new RootServer). NextRound then reports where the round
// sequence continues.
func (r *Root) Restore(snap *checkpoint.Snapshot) error {
	if err := snap.Restore(r.checkpointComponents()); err != nil {
		return err
	}
	r.mu.Lock()
	r.startRound = snap.Round
	r.statuses = r.driver.ShardStatuses()
	r.mu.Unlock()
	// A restore implies a root restart: every shard currently seated
	// re-registered with the new process — uplink churn the crashed
	// root could not count through its admission loop.
	if r.reg != nil {
		if n := r.srv.Sessions(); n > 0 {
			r.reg.Counter("haccs_root_shard_reconnects_total", "Shard re-registrations with the root (uplink churn).").Add(float64(n))
		}
	}
	return nil
}

// NextRound returns the round index to continue from: 0 on a fresh
// root, the snapshot round after Restore.
func (r *Root) NextRound() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.startRound
}

// RunRound executes one hierarchical round through the shared driver,
// emits the coordinator-level NetRound event and haccs_net_* metrics,
// refreshes the /debug/shards view, and persists a checkpoint on
// cadence.
func (r *Root) RunRound(round int) rounds.Outcome {
	start := time.Now()
	out := r.driver.RunRound(round)
	wall := time.Since(start).Seconds()
	if r.tracer != nil {
		r.tracer.Emit(telemetry.NetRound(round, append([]int(nil), out.Selected...), wall))
	}
	if r.reg != nil {
		r.reg.Counter("haccs_net_rounds_total", "Coordinator rounds completed.").Inc()
		r.reg.Histogram("haccs_net_round_seconds", "Wall-clock duration of one coordinator round (push + all replies).", nil).Observe(wall)
	}
	r.mu.Lock()
	r.statuses = r.driver.ShardStatuses()
	r.mu.Unlock()
	if _, err := r.saver.MaybeSave(round + 1); err != nil {
		panic(fmt.Sprintf("shard: checkpoint save after round %d: %v", round+1, err))
	}
	return out
}

// ShardStatuses returns the per-shard view after the last completed
// round. Safe to call concurrently with RunRound (it reads the copy
// refreshed at each round boundary), which is what the /debug/shards
// handler does.
func (r *Root) ShardStatuses() []rounds.ShardStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]rounds.ShardStatus(nil), r.statuses...)
}

// Owner returns the shard slot owning a client (see
// rounds.HierDriver.Owner); used by the shard-filtered fleet view.
func (r *Root) Owner(clientID int) int { return r.driver.Owner(clientID) }

// OwnerID returns the shard ID owning a client, or -1.
func (r *Root) OwnerID(clientID int) int {
	slot := r.driver.Owner(clientID)
	if slot < 0 {
		return -1
	}
	st := r.ShardStatuses()
	if slot >= len(st) {
		return -1
	}
	return st[slot].ID
}

// Global returns the driver-owned global parameter vector (read-only).
func (r *Root) Global() []float64 { return r.driver.Global() }

// Clock returns the virtual time elapsed across the hierarchy.
func (r *Root) Clock() float64 { return r.driver.Clock() }

// Driver exposes the underlying hierarchical runtime.
func (r *Root) Driver() *rounds.HierDriver { return r.driver }

// Runner exposes the round runtime as the generic interface.
func (r *Root) Runner() rounds.Runner { return r.driver }
