package shard

import (
	"reflect"
	"testing"
)

// TestRingDeterministicPlacement checks that placement is a pure
// function of the shard ID set: rebuilding the ring (a process
// restart) and permuting the input order reproduce every client's
// owner exactly.
func TestRingDeterministicPlacement(t *testing.T) {
	cases := []struct {
		name   string
		shards []int
		perm   []int
		vnodes int
		n      int
	}{
		{"four shards", []int{0, 1, 2, 3}, []int{3, 1, 0, 2}, 0, 5000},
		{"sparse ids", []int{7, 100, 12}, []int{100, 12, 7}, 64, 2000},
		{"single shard", []int{5}, []int{5}, 16, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewRing(tc.shards, tc.vnodes)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewRing(tc.perm, tc.vnodes)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < tc.n; c++ {
				if a.Owner(c) != b.Owner(c) {
					t.Fatalf("client %d: owner %d after rebuild, %d before", c, b.Owner(c), a.Owner(c))
				}
			}
			if !reflect.DeepEqual(a.Partition(tc.n), b.Partition(tc.n)) {
				t.Fatal("Partition disagrees across rebuilds")
			}
		})
	}
}

// TestRingPartitionCoversRoster checks Partition is a partition: every
// client appears exactly once, in ascending order within its shard.
func TestRingPartitionCoversRoster(t *testing.T) {
	r, err := NewRing([]int{0, 1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	seen := make([]bool, n)
	for slot, ids := range r.Partition(n) {
		for i, id := range ids {
			if id < 0 || id >= n {
				t.Fatalf("slot %d holds out-of-range client %d", slot, id)
			}
			if seen[id] {
				t.Fatalf("client %d appears twice", id)
			}
			seen[id] = true
			if i > 0 && ids[i-1] >= id {
				t.Fatalf("slot %d not ascending at %d", slot, i)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("client %d unassigned", id)
		}
	}
}

// TestRingBalance checks no shard ends up pathologically loaded: with
// default vnodes each of S shards should hold a reasonable fraction of
// the roster.
func TestRingBalance(t *testing.T) {
	const n = 20000
	for _, s := range []int{2, 4, 8} {
		ids := make([]int, s)
		for i := range ids {
			ids[i] = i
		}
		r, err := NewRing(ids, 0)
		if err != nil {
			t.Fatal(err)
		}
		for slot, owned := range r.Partition(n) {
			frac := float64(len(owned)) / n
			ideal := 1.0 / float64(s)
			if frac < ideal/3 || frac > ideal*3 {
				t.Errorf("S=%d shard %d owns %.3f of the roster (ideal %.3f)", s, slot, frac, ideal)
			}
		}
	}
}

// TestRingBoundedRemap is the consistent-hashing contract: removing
// one of S shards moves only the clients that shard owned (everyone
// else keeps their owner), adding a shard steals clients only for the
// newcomer, and the stolen fraction is about 1/S.
func TestRingBoundedRemap(t *testing.T) {
	const n = 10000
	cases := []struct {
		name    string
		before  []int
		after   []int
		changed int // shard appearing/disappearing
	}{
		{"remove one of four", []int{0, 1, 2, 3}, []int{0, 1, 3}, 2},
		{"add a fifth", []int{0, 1, 2, 3}, []int{0, 1, 2, 3, 4}, 4},
		{"remove one of two", []int{10, 20}, []int{10}, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewRing(tc.before, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewRing(tc.after, 0)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for c := 0; c < n; c++ {
				oa, ob := a.Owner(c), b.Owner(c)
				if oa == ob {
					continue
				}
				moved++
				if oa != tc.changed && ob != tc.changed {
					t.Fatalf("client %d moved %d -> %d, neither is the changed shard %d", c, oa, ob, tc.changed)
				}
			}
			// The changed shard's arc is ~1/max(S_before, S_after) of the
			// ring; allow 2x slack for hashing variance.
			s := len(tc.before)
			if len(tc.after) > s {
				s = len(tc.after)
			}
			if bound := 2 * n / s; moved > bound {
				t.Errorf("moved %d clients, want <= %d (~1/%d of %d)", moved, bound, s, n)
			}
			if moved == 0 {
				t.Error("no clients moved; remap test is vacuous")
			}
		})
	}
}

// TestRingRejectsBadInput exercises the constructor's validation.
func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty shard set accepted")
	}
	if _, err := NewRing([]int{1, 2, 1}, 0); err == nil {
		t.Error("duplicate shard ID accepted")
	}
	if _, err := NewRing([]int{0, -3}, 0); err == nil {
		t.Error("negative shard ID accepted")
	}
}
