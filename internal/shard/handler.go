package shard

import (
	"encoding/json"
	"net/http"
	"strconv"

	"haccs/internal/fleet"
	"haccs/internal/rounds"
)

// StatusHandler serves the root's per-shard view (client counts,
// self-reported sessions/reconnects, local clocks, base versions,
// failure counts) as indented JSON — mount it at /debug/shards. The
// statuses callback is Root.ShardStatuses, which reads the copy
// refreshed at each round boundary, so scraping never races the
// driver.
func StatusHandler(statuses func() []rounds.ShardStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(statuses()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// FleetHandler serves the root's merged fleet registry like
// fleet.Handler — indented JSON, ?format=table, ?sort= — with one
// addition: ?shard=<id> restricts the client rows to the slice owned
// by that shard (ownerID is Root.OwnerID). The fleet-wide aggregates
// (rounds, clock, fairness) stay global: they describe the run, not
// the slice.
func FleetHandler(reg *fleet.Registry, ownerID func(clientID int) int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		st := reg.State()
		if q := req.URL.Query().Get("shard"); q != "" {
			want, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "shard: ?shard= must be an integer shard ID", http.StatusBadRequest)
				return
			}
			kept := st.Clients[:0:0]
			for _, c := range st.Clients {
				if ownerID(c.ID) == want {
					kept = append(kept, c)
				}
			}
			st.Clients = kept
		}
		if req.URL.Query().Get("format") == "table" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fleet.WriteTable(w, st, req.URL.Query().Get("sort"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
