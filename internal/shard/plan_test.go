package shard

import (
	"testing"

	"haccs/internal/rounds"
)

// mkHello builds a Hello with c anonymous clients and the given
// one-hot-style representatives over dim 4.
func mkHello(id, nClients int, reps [][]float64, counts []int) Hello {
	clients := make([]rounds.ShardClient, nClients)
	for i := range clients {
		clients[i] = rounds.ShardClient{ID: id*1000 + i, Latency: 1}
	}
	return Hello{ShardID: id, Clients: clients, SketchDim: 4, Reps: reps, RepCounts: counts}
}

func oneHot(i int) []float64 {
	v := make([]float64, 4)
	v[i] = 1
	return v
}

// TestPlanBudgetsEqualClusterShare: the plan gives each distribution
// mode an equal slice of the budget, so a shard covering two modes
// with few clients outranks a shard covering one mode with many.
func TestPlanBudgetsEqualClusterShare(t *testing.T) {
	hellos := []Hello{
		mkHello(0, 20, [][]float64{oneHot(0), oneHot(1)}, []int{10, 10}),
		mkHello(1, 80, [][]float64{oneHot(2)}, []int{80}),
	}
	got := PlanBudgets(hellos, 6, 0)
	// Three global clusters, two owned solely by shard 0: weights 2/3
	// vs 1/3 -> budgets 4 and 2.
	if got[0] != 4 || got[1] != 2 {
		t.Errorf("budgets = %v, want [4 2]", got)
	}
}

// TestPlanBudgetsSharedCluster: when two shards hold clients of the
// same mode, the mode's share splits by client mass.
func TestPlanBudgetsSharedCluster(t *testing.T) {
	hellos := []Hello{
		mkHello(0, 30, [][]float64{oneHot(0)}, []int{30}),
		mkHello(1, 10, [][]float64{oneHot(0)}, []int{10}),
	}
	got := PlanBudgets(hellos, 8, 0)
	if got[0] != 6 || got[1] != 2 {
		t.Errorf("budgets = %v, want [6 2]", got)
	}
}

// TestPlanBudgetsSumAndCap: budgets always sum to min(k, capacity) and
// never exceed a shard's client count, regardless of skewed weights.
func TestPlanBudgetsSumAndCap(t *testing.T) {
	hellos := []Hello{
		mkHello(0, 2, [][]float64{oneHot(0), oneHot(1)}, []int{1, 1}),
		mkHello(1, 50, [][]float64{oneHot(2)}, []int{50}),
	}
	for _, k := range []int{1, 3, 10, 52, 100} {
		got := PlanBudgets(hellos, k, 0)
		sum := 0
		for i, b := range got {
			sum += b
			if b > len(hellos[i].Clients) {
				t.Errorf("k=%d: shard %d budget %d exceeds %d clients", k, i, b, len(hellos[i].Clients))
			}
		}
		want := k
		if want > 52 {
			want = 52
		}
		if sum != want {
			t.Errorf("k=%d: budgets %v sum to %d, want %d", k, got, sum, want)
		}
	}
}

// TestPlanBudgetsFallback: shards without representatives degrade to
// client-count-proportional apportionment.
func TestPlanBudgetsFallback(t *testing.T) {
	hellos := []Hello{
		mkHello(0, 30, nil, nil),
		mkHello(1, 10, nil, nil),
	}
	got := PlanBudgets(hellos, 4, 0)
	if got[0] != 3 || got[1] != 1 {
		t.Errorf("budgets = %v, want [3 1]", got)
	}
}

// TestPlanBudgetsDeterministic: the plan is a pure function of its
// inputs.
func TestPlanBudgetsDeterministic(t *testing.T) {
	hellos := []Hello{
		mkHello(0, 7, [][]float64{oneHot(0), oneHot(3)}, []int{3, 4}),
		mkHello(1, 9, [][]float64{oneHot(1)}, []int{9}),
		mkHello(2, 5, [][]float64{oneHot(3)}, []int{5}),
	}
	a := PlanBudgets(hellos, 10, 0)
	b := PlanBudgets(hellos, 10, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan not deterministic: %v vs %v", a, b)
		}
	}
}
