package shard

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"haccs/internal/fleet"
	"haccs/internal/flnet"
	"haccs/internal/rounds"
	"haccs/internal/sketch"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// Defaults for the agent's sketch representatives. Every shard in a
// deployment must use the same sketch geometry and seed, or the root's
// cross-shard clustering compares incomparable vectors; these defaults
// make the zero-config case consistent.
const (
	DefaultSketchDim  = 32
	DefaultSketchSeed = 0x5ac1d
)

// AgentConfig parameterizes one shard coordinator's root-facing side.
type AgentConfig struct {
	// ShardID is this shard's stable identity on the consistent-hash
	// ring. Must be >= 0 and unique across the deployment.
	ShardID int
	// Root is the root aggregator's TCP address.
	Root string
	// Server is the shard's client-facing coordinator with its fleet
	// slice already registered (AcceptClients done). The agent builds
	// its roster and sketch representatives from the registrations and
	// drives training through Server.Train.
	Server *flnet.Server
	// Metrics, when non-nil, receives the shard-local driver collectors
	// (async mode) — the root separately exports the haccs_shard_*
	// family from its own vantage point.
	Metrics *telemetry.Registry
	// Tracer receives the shard-local round events (async mode).
	Tracer telemetry.Tracer
	// SketchDim/SketchSeed/AttachRadius shape the label-distribution
	// representatives shipped in the Hello (zero values select the
	// shared defaults). All shards must agree on dim and seed.
	SketchDim    int
	SketchSeed   uint64
	AttachRadius float64
	// StrategySeed seeds the async local uniform selection stream
	// (derived per shard, so equal seeds across shards do not correlate).
	StrategySeed uint64
	// RedialEvery is the pause between reconnection attempts to the
	// root; RedialFor bounds how long the agent keeps dialing a dead
	// root before giving up. Defaults: 50ms / 30s.
	RedialEvery time.Duration
	RedialFor   time.Duration
}

// Agent is the shard coordinator's uplink: it registers the shard's
// roster slice with the root (Hello/Ack), then serves Cmd/Report
// exchanges — training its clients through the local flnet server in
// sync mode, or running a local buffered async driver between root
// resyncs — until the root says Bye. A lost root connection is
// redialed with the full handshake; the root validates the re-offered
// roster and replays the Ack, so a root crash-and-restore looks to the
// agent like one long round gap.
type Agent struct {
	cfg     AgentConfig
	roster  []rounds.ShardClient
	latency map[int]float64
	hello   Hello

	mu     sync.Mutex
	conn   net.Conn
	closed bool

	ack   Ack
	acked bool

	// Async-mode local state, built lazily on first Ack.
	local       *rounds.AsyncDriver
	localRound  int
	baseVersion int
	prev        []float64
	globalIDs   []int // local dense index -> global ID
	lastResults []asyncResult
}

// asyncResult is the per-client metadata the local async transport
// captured at the client's last training exchange, consumed when the
// buffered update flushes.
type asyncResult struct {
	samples int
	summary []float64
	stats   *fleet.ClientStats
}

// NewAgent builds the agent over an already-seated shard server: the
// roster comes from the server's registrations (sorted by global ID),
// and the Hello's sketch representatives from a shard-local ε-net over
// the clients' label histograms.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.ShardID < 0 {
		return nil, fmt.Errorf("shard: negative shard ID %d", cfg.ShardID)
	}
	if cfg.Server == nil {
		return nil, errors.New("shard: agent needs a client-facing server")
	}
	if cfg.RedialEvery <= 0 {
		cfg.RedialEvery = 50 * time.Millisecond
	}
	if cfg.RedialFor <= 0 {
		cfg.RedialFor = 30 * time.Second
	}
	if cfg.SketchDim <= 0 {
		cfg.SketchDim = DefaultSketchDim
	}
	if cfg.SketchSeed == 0 {
		cfg.SketchSeed = DefaultSketchSeed
	}
	regs := cfg.Server.Registrations()
	if len(regs) == 0 {
		return nil, errors.New("shard: agent owns no registered clients")
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].ClientID < regs[j].ClientID })
	a := &Agent{
		cfg:     cfg,
		roster:  make([]rounds.ShardClient, len(regs)),
		latency: make(map[int]float64, len(regs)),
	}
	for i, r := range regs {
		if r.ClientID < 0 {
			return nil, fmt.Errorf("shard: registered client has negative ID %d", r.ClientID)
		}
		a.roster[i] = rounds.ShardClient{ID: r.ClientID, Latency: r.LatencyEstimate}
		a.latency[r.ClientID] = r.LatencyEstimate
	}
	reps, counts, dim := buildReps(regs, cfg.SketchDim, cfg.SketchSeed, cfg.AttachRadius)
	a.hello = Hello{
		ShardID:   cfg.ShardID,
		Clients:   a.roster,
		SketchDim: dim,
		Reps:      reps,
		RepCounts: counts,
		Sessions:  cfg.Server.Sessions(),
	}
	if err := a.hello.check(); err != nil {
		return nil, err
	}
	return a, nil
}

// buildReps runs a shard-local ε-net over the registrations' label
// histograms (amplitude-encoded, the same √p embedding the scheduler's
// sketch backend uses) and returns the representative sketches with
// their member counts. Clients without label counts attach to a zero
// histogram's uniform amplitude, so the shard still announces one
// representative.
func buildReps(regs []flnet.Register, dim int, seed uint64, attach float64) ([][]float64, []int, int) {
	sk := sketch.New(sketch.Config{Dim: dim, Seed: seed})
	idx := sketch.NewIndex(len(regs), sk.Dim(), attach, nil)
	var amp []float64
	for i, r := range regs {
		if len(amp) < max(len(r.LabelCounts), 1) {
			amp = make([]float64, max(len(r.LabelCounts), 1))
		}
		bins := max(len(r.LabelCounts), 1)
		writeAmplitude(amp[:bins], r.LabelCounts)
		idx.Observe(i, sk.Sketch(amp[:bins]))
	}
	reps := make([][]float64, idx.Len())
	counts := make([]int, idx.Len())
	for r := 0; r < idx.Len(); r++ {
		reps[r] = append([]float64(nil), idx.Rep(r)...)
		counts[r] = idx.Count(r)
	}
	return reps, counts, sk.Dim()
}

// writeAmplitude fills dst with √p where p is the positive-part
// normalization of counts, uniform when counts carry no positive mass
// (mirroring stats.Histogram.Amplitude).
func writeAmplitude(dst, counts []float64) {
	total := 0.0
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total <= 0 {
		u := math.Sqrt(1 / float64(len(dst)))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i := range dst {
		c := 0.0
		if i < len(counts) && counts[i] > 0 {
			c = counts[i]
		}
		dst[i] = math.Sqrt(c / total)
	}
}

// Roster returns the shard's client slice as announced to the root.
func (a *Agent) Roster() []rounds.ShardClient { return a.roster }

// Close stops the agent: the current root connection is torn down and
// Run returns after its in-flight exchange (if any) fails.
func (a *Agent) Close() {
	a.mu.Lock()
	a.closed = true
	conn := a.conn
	a.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

func (a *Agent) stopped() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// Run dials the root, performs the Hello/Ack handshake, and serves
// Cmd/Report exchanges until the root sends Bye (returns nil), Close
// is called (returns nil), or the root stays unreachable past
// RedialFor (returns the last error). A broken connection mid-run is
// redialed with a fresh handshake — the root replays the Ack after
// validating the roster, so rounds resume transparently.
func (a *Agent) Run() error {
	var lastErr error
	deadline := time.Now().Add(a.cfg.RedialFor)
	for {
		if a.stopped() {
			return nil
		}
		conn, err := net.Dial("tcp", a.cfg.Root)
		if err != nil {
			lastErr = err
			if time.Now().After(deadline) {
				return fmt.Errorf("shard %d: root unreachable: %w", a.cfg.ShardID, lastErr)
			}
			time.Sleep(a.cfg.RedialEvery)
			continue
		}
		deadline = time.Now().Add(a.cfg.RedialFor)
		err = a.serve(conn)
		if err == nil || a.stopped() {
			return nil
		}
		lastErr = err
		time.Sleep(a.cfg.RedialEvery)
	}
}

// serve runs one connected session: handshake, then the Cmd/Report
// loop. Returns nil only on a clean Bye.
func (a *Agent) serve(conn net.Conn) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		conn.Close()
		return nil
	}
	a.conn = conn
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		if a.conn == conn {
			a.conn = nil
		}
		a.mu.Unlock()
		conn.Close()
	}()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	hello := a.hello
	hello.Sessions = a.cfg.Server.Sessions()
	if err := enc.Encode(Envelope{Hello: &hello}); err != nil {
		return fmt.Errorf("shard %d: hello: %w", a.cfg.ShardID, err)
	}
	var env Envelope
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("shard %d: await ack: %w", a.cfg.ShardID, err)
	}
	if err := env.Check(); err != nil {
		return err
	}
	if env.Bye != nil {
		return nil
	}
	if env.Ack == nil {
		return protoErr(ErrUnexpectedMessage, a.cfg.ShardID, -1, "expected Ack after Hello")
	}
	a.ack = *env.Ack
	a.acked = true
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return fmt.Errorf("shard %d: receive: %w", a.cfg.ShardID, err)
		}
		if err := env.Check(); err != nil {
			return err
		}
		switch {
		case env.Bye != nil:
			return nil
		case env.Cmd != nil:
			rep := a.exec(env.Cmd)
			if err := enc.Encode(Envelope{Report: rep}); err != nil {
				return fmt.Errorf("shard %d: report: %w", a.cfg.ShardID, err)
			}
		default:
			return protoErr(ErrUnexpectedMessage, a.cfg.ShardID, -1, "expected Cmd or Bye")
		}
	}
}

// exec runs one root work order and builds the report.
func (a *Agent) exec(cmd *Cmd) *Report {
	if a.ack.Mode == string(rounds.ModeAsync) {
		return a.execAsync(cmd)
	}
	return a.execSync(cmd)
}

// execSync trains every selected client in parallel through the local
// flnet server — the exchange completes even for stragglers, exactly
// like the flat coordinator — then applies the root's deadline
// arithmetic to split selected into reporters/cut/failed and sums the
// reporters' updates into the unnormalized partial Σ n_r·w_r.
func (a *Agent) execSync(cmd *Cmd) *Report {
	sel := cmd.Selected
	replies := make([]flnet.TrainReply, len(sel))
	errs := make([]error, len(sel))
	var wg sync.WaitGroup
	for i, id := range sel {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			replies[i], errs[i] = a.cfg.Server.Train(id, cmd.Round, cmd.Params, telemetry.SpanContext{})
		}(i, id)
	}
	wg.Wait()

	rep := &Report{
		ShardID:    a.cfg.ShardID,
		Round:      cmd.Round,
		Sessions:   a.cfg.Server.Sessions(),
		Reconnects: a.cfg.Server.Reconnects(),
	}
	deadline := a.ack.Deadline
	var partial []float64
	for i, id := range sel {
		if errs[i] != nil {
			rep.Failed = append(rep.Failed, id)
			continue
		}
		lat, known := a.latency[id]
		if !known {
			// The root believes we own a client we never saw; report it
			// failed rather than silently inventing an update.
			rep.Failed = append(rep.Failed, id)
			continue
		}
		if deadline > 0 && lat > deadline {
			rep.Cut = append(rep.Cut, id)
			continue
		}
		r := &replies[i]
		rep.Reporters = append(rep.Reporters, WireResult{
			ClientID:   id,
			NumSamples: r.NumSamples,
			Loss:       r.Loss,
			Summary:    r.UpdatedLabelCounts,
			Stats:      r.Stats,
		})
		if partial == nil {
			partial = make([]float64, len(r.Params))
		}
		n := float64(r.NumSamples)
		for j, v := range r.Params {
			partial[j] += n * v
		}
		rep.Samples += r.NumSamples
	}
	rep.Partial = partial
	return rep
}

// execAsync runs one local buffered cycle: on resync (Params non-nil)
// the local driver's base is replaced with the root's fresh global,
// then one AsyncDriver round runs over the shard's clients and the
// resulting local model delta ships upward with the flushed reporters'
// metadata.
func (a *Agent) execAsync(cmd *Cmd) *Report {
	rep := &Report{
		ShardID:     a.cfg.ShardID,
		Round:       cmd.Round,
		Sessions:    a.cfg.Server.Sessions(),
		Reconnects:  a.cfg.Server.Reconnects(),
		BaseVersion: a.baseVersion,
	}
	if a.local == nil {
		// The driver is built on the root's first resync push: the model
		// dimension arrives with the parameters, and the root always
		// resyncs on cycle 0, so at most the pre-handshake cycles of a
		// reconnect report empty.
		if cmd.Params == nil {
			return rep
		}
		if err := a.buildLocalDriver(len(cmd.Params)); err != nil {
			return rep
		}
	}
	if cmd.Params != nil {
		if err := a.local.SetGlobal(cmd.Params); err != nil {
			// Geometry disagreement with the root; report an empty cycle.
			rep.LocalClock = a.local.Clock()
			return rep
		}
		a.baseVersion = cmd.Version
		rep.BaseVersion = cmd.Version
	}
	copy(a.prev, a.local.Global())
	out := a.local.RunRound(a.localRound)
	a.localRound++
	rep.LocalClock = a.local.Clock()
	for _, local := range out.Failed {
		rep.Failed = append(rep.Failed, a.globalIDs[local])
	}
	for _, local := range out.Cut {
		rep.Cut = append(rep.Cut, a.globalIDs[local])
	}
	if !out.Aggregated {
		return rep
	}
	delta := make([]float64, len(a.prev))
	for i, v := range a.local.Global() {
		delta[i] = v - a.prev[i]
	}
	rep.Partial = delta
	for i, local := range out.Reporters {
		last := a.lastResults[local]
		n := last.samples
		if n <= 0 {
			n = 1
		}
		rep.Reporters = append(rep.Reporters, WireResult{
			ClientID:   a.globalIDs[local],
			NumSamples: n,
			Loss:       out.Losses[i],
			Summary:    last.summary,
			Stats:      last.stats,
		})
		rep.Samples += n
	}
	return rep
}

// buildLocalDriver assembles the async local runtime: a dense local
// index over the shard's global IDs, proxies that train through the
// local flnet server while capturing per-client metadata for the
// flush, a derived-seed uniform strategy under the root's θ budget,
// and the shared buffered async driver over a dim-wide model.
func (a *Agent) buildLocalDriver(dim int) error {
	m := len(a.roster)
	a.globalIDs = make([]int, m)
	a.lastResults = make([]asyncResult, m)
	proxies := make([]rounds.Proxy, m)
	for i, c := range a.roster {
		a.globalIDs[i] = c.ID
		proxies[i] = &localProxy{agent: a, local: i, global: c.ID, latency: c.Latency}
	}
	budget := a.ack.Budget
	if budget < 1 {
		budget = 1
	}
	if budget > m {
		budget = m
	}
	cfg := rounds.Config{
		ClientsPerRound: budget,
		Tracer:          a.cfg.Tracer,
		Metrics:         a.cfg.Metrics,
	}
	acfg := rounds.AsyncConfig{
		BufferK:           a.ack.BufferK,
		StalenessExponent: a.ack.StalenessExponent,
	}
	if err := rounds.ValidateAsync(cfg, acfg); err != nil {
		return fmt.Errorf("shard %d: local async driver: %w", a.cfg.ShardID, err)
	}
	seed := stats.DeriveSeed(a.cfg.StrategySeed, uint64(a.cfg.ShardID))
	a.local = rounds.NewAsyncDriver(cfg, acfg, localTransport{proxies}, newLocalUniform(seed), make([]float64, dim))
	a.prev = make([]float64, dim)
	return nil
}

// localTransport adapts the shard's client sessions to the local async
// driver.
type localTransport struct{ proxies []rounds.Proxy }

func (t localTransport) Proxies() []rounds.Proxy { return t.proxies }
func (t localTransport) Parallelism() int        { return len(t.proxies) }

// localProxy trains one shard-owned client through the flnet server,
// capturing the reply metadata for the next flush report.
type localProxy struct {
	agent   *Agent
	local   int
	global  int
	latency float64
}

func (p *localProxy) Train(round, worker, slot int, params []float64, sc telemetry.SpanContext) (rounds.Result, error) {
	reply, err := p.agent.cfg.Server.Train(p.global, round, params, sc)
	if err != nil {
		return rounds.Result{}, err
	}
	p.agent.lastResults[p.local] = asyncResult{
		samples: reply.NumSamples,
		summary: reply.UpdatedLabelCounts,
		stats:   reply.Stats,
	}
	return rounds.Result{
		ClientID:   p.local,
		Params:     reply.Params,
		NumSamples: reply.NumSamples,
		Loss:       reply.Loss,
	}, nil
}

func (p *localProxy) Latency() float64 { return p.latency }

// localUniform is a self-contained uniform sampler (partial
// Fisher-Yates over the available set) for shard-local async
// selection; the heterogeneity awareness lives in the root's θ-budget
// plan, not in the within-shard draw.
type localUniform struct {
	rng *stats.RNG
	ids []int
}

func newLocalUniform(seed uint64) *localUniform {
	return &localUniform{rng: stats.NewRNG(seed)}
}

func (s *localUniform) Select(round int, available []bool, k int) []int {
	s.ids = s.ids[:0]
	for i, ok := range available {
		if ok {
			s.ids = append(s.ids, i)
		}
	}
	if k > len(s.ids) {
		k = len(s.ids)
	}
	for i := 0; i < k; i++ {
		j := i + s.rng.Intn(len(s.ids)-i)
		s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	}
	return append([]int(nil), s.ids[:k]...)
}

func (s *localUniform) Update(round int, selected []int, losses []float64) {}
