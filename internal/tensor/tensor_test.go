package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"haccs/internal/stats"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(3, 4)
	if a.Size() != 12 || a.Rows() != 3 || a.Cols() != 4 {
		t.Fatalf("shape accessor mismatch: %v", a.Shape)
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", a.At(1, 2))
	}
	a.Set(0, 1, 9)
	if a.At(0, 1) != 9 {
		t.Errorf("Set failed")
	}
	r := a.Row(1)
	if len(r) != 3 || r[0] != 4 {
		t.Errorf("Row(1) = %v", r)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2}, 3, 3)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	a.Add(b)
	if a.Data[3] != 44 {
		t.Errorf("Add: %v", a.Data)
	}
	a.Sub(b)
	if a.Data[0] != 1 {
		t.Errorf("Sub: %v", a.Data)
	}
	a.Mul(b)
	if a.Data[1] != 40 {
		t.Errorf("Mul: %v", a.Data)
	}
	a.Scale(0.5)
	if a.Data[1] != 20 {
		t.Errorf("Scale: %v", a.Data)
	}
	a = FromSlice([]float64{1, 1}, 1, 2)
	a.AXPY(2, FromSlice([]float64{3, 4}, 1, 2))
	if a.Data[0] != 7 || a.Data[1] != 9 {
		t.Errorf("AXPY: %v", a.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestDotNormSum(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 1, 2)
	if Dot(a, a) != 25 {
		t.Errorf("Dot = %v", Dot(a, a))
	}
	if a.Norm2() != 5 {
		t.Errorf("Norm2 = %v", a.Norm2())
	}
	if a.Sum() != 7 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape %v", at.Shape)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeLargeBlocked(t *testing.T) {
	rng := stats.NewRNG(1)
	a := New(67, 129)
	a.RandNormal(0, 1, rng)
	at := a.Transpose()
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("blocked transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := New(2, 3)
	b := a.Reshape(3, 2)
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Error("Reshape does not share data")
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float64{0.1, 0.9, 0.5, 0.2, 0.2, 0.1}, 2, 3)
	got := a.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgMaxRows = %v", got)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	s := a.SoftmaxRows()
	for i := 0; i < 2; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			v := s.At(i, j)
			if v <= 0 || v >= 1 {
				t.Fatalf("softmax entry out of (0,1): %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d softmax sum %v", i, sum)
		}
	}
	// Shift invariance: rows 0 and 1 differ by a constant, so the
	// softmax outputs must match.
	for j := 0; j < 3; j++ {
		if math.Abs(s.At(0, j)-s.At(1, j)) > 1e-9 {
			t.Fatalf("softmax not shift invariant at col %d", j)
		}
	}
}

func naiveMatMul(a, b *Dense) *Dense {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{19, 22, 43, 50}, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 9, 23}, {64, 32, 48}} {
		a := New(dims[0], dims[1])
		b := New(dims[1], dims[2])
		a.RandNormal(0, 1, rng)
		b.RandNormal(0, 1, rng)
		if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9) {
			t.Errorf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulParallelPathMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(3)
	// 80^3 = 512000 > parallelThreshold: exercises the goroutine fan-out.
	a := New(80, 80)
	b := New(80, 80)
	a.RandNormal(0, 1, rng)
	b.RandNormal(0, 1, rng)
	if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-8) {
		t.Error("parallel MatMul diverges from naive")
	}
}

func TestMatMulInto(t *testing.T) {
	rng := stats.NewRNG(4)
	a := New(5, 7)
	b := New(7, 3)
	a.RandNormal(0, 1, rng)
	b.RandNormal(0, 1, rng)
	dst := New(5, 3)
	dst.Fill(99) // must be overwritten, not accumulated into
	MatMulInto(dst, a, b)
	if !Equal(dst, naiveMatMul(a, b), 1e-9) {
		t.Error("MatMulInto mismatch")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulTransB(t *testing.T) {
	rng := stats.NewRNG(5)
	a := New(6, 9)
	b := New(4, 9)
	a.RandNormal(0, 1, rng)
	b.RandNormal(0, 1, rng)
	want := naiveMatMul(a, b.Transpose())
	if !Equal(MatMulTransB(a, b), want, 1e-9) {
		t.Error("MatMulTransB mismatch")
	}
}

func TestMatMulTransBParallel(t *testing.T) {
	rng := stats.NewRNG(6)
	a := New(90, 90)
	b := New(90, 90)
	a.RandNormal(0, 1, rng)
	b.RandNormal(0, 1, rng)
	want := naiveMatMul(a, b.Transpose())
	if !Equal(MatMulTransB(a, b), want, 1e-8) {
		t.Error("parallel MatMulTransB mismatch")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := stats.NewRNG(7)
	a := New(9, 6)
	b := New(9, 4)
	a.RandNormal(0, 1, rng)
	b.RandNormal(0, 1, rng)
	want := naiveMatMul(a.Transpose(), b)
	if !Equal(MatMulTransA(a, b), want, 1e-9) {
		t.Error("MatMulTransA mismatch")
	}
}

func TestMatMulPropertyDistributive(t *testing.T) {
	// (A+B)·C == A·C + B·C on random small matrices.
	rng := stats.NewRNG(8)
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 1)
		m, k, n := r.Intn(6)+1, r.Intn(6)+1, r.Intn(6)+1
		a, b, c := New(m, k), New(m, k), New(k, n)
		a.RandNormal(0, 1, rng)
		b.RandNormal(0, 1, rng)
		c.RandNormal(0, 1, rng)
		ab := a.Clone()
		ab.Add(b)
		left := MatMul(ab, c)
		right := MatMul(a, c)
		right.Add(MatMul(b, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: Im2Col is the identity layout.
	img := []float64{1, 2, 3, 4}
	g := ConvGeom{Channels: 1, Height: 2, Width: 2, Kernel: 1, Stride: 1, Pad: 0}
	cols := Im2Col(img, g)
	if cols.Rows() != 1 || cols.Cols() != 4 {
		t.Fatalf("shape %v", cols.Shape)
	}
	for i, v := range img {
		if cols.Data[i] != v {
			t.Fatalf("identity im2col mismatch at %d", i)
		}
	}
}

func TestIm2ColKnown(t *testing.T) {
	// 3x3 image, 2x2 kernel, stride 1: 4 output positions.
	img := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	g := ConvGeom{Channels: 1, Height: 3, Width: 3, Kernel: 2, Stride: 1, Pad: 0}
	cols := Im2Col(img, g)
	if cols.Rows() != 4 || cols.Cols() != 4 {
		t.Fatalf("shape %v", cols.Shape)
	}
	// Column for output (0,0) is the window [1,2,4,5] spread down rows.
	want00 := []float64{1, 2, 4, 5}
	for r := 0; r < 4; r++ {
		if cols.At(r, 0) != want00[r] {
			t.Errorf("col 0 row %d = %v, want %v", r, cols.At(r, 0), want00[r])
		}
	}
	// Output (1,1) window is [5,6,8,9].
	want11 := []float64{5, 6, 8, 9}
	for r := 0; r < 4; r++ {
		if cols.At(r, 3) != want11[r] {
			t.Errorf("col 3 row %d = %v, want %v", r, cols.At(r, 3), want11[r])
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	img := []float64{1, 1, 1, 1}
	g := ConvGeom{Channels: 1, Height: 2, Width: 2, Kernel: 3, Stride: 1, Pad: 1}
	cols := Im2Col(img, g)
	if cols.Rows() != 9 || cols.Cols() != 4 {
		t.Fatalf("shape %v", cols.Shape)
	}
	// Top-left output, kernel position (0,0) hits padding -> zero.
	if cols.At(0, 0) != 0 {
		t.Error("padding position not zero")
	}
	// Center kernel position (1,1) of output (0,0) hits pixel (0,0) = 1.
	if cols.At(4, 0) != 1 {
		t.Error("center tap wrong")
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// Adjoint test: <Im2Col(x), y> == <x, Col2Im(y)> for random x, y.
	rng := stats.NewRNG(9)
	geoms := []ConvGeom{
		{Channels: 1, Height: 5, Width: 5, Kernel: 3, Stride: 1, Pad: 0},
		{Channels: 2, Height: 6, Width: 4, Kernel: 2, Stride: 2, Pad: 0},
		{Channels: 3, Height: 5, Width: 5, Kernel: 3, Stride: 1, Pad: 1},
	}
	for _, g := range geoms {
		x := make([]float64, g.Channels*g.Height*g.Width)
		for i := range x {
			x[i] = rng.Normal(0, 1)
		}
		cols := Im2Col(x, g)
		y := New(cols.Rows(), cols.Cols())
		y.RandNormal(0, 1, rng)
		lhs := Dot(cols, y)
		back := Col2Im(y, g)
		rhs := 0.0
		for i := range x {
			rhs += x[i] * back[i]
		}
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Errorf("adjoint identity violated for %+v: %v vs %v", g, lhs, rhs)
		}
	}
}

func TestConvGeomOutputDims(t *testing.T) {
	g := ConvGeom{Channels: 1, Height: 28, Width: 28, Kernel: 5, Stride: 1, Pad: 0}
	if g.OutHeight() != 24 || g.OutWidth() != 24 {
		t.Errorf("LeNet conv1 out dims %dx%d, want 24x24", g.OutHeight(), g.OutWidth())
	}
	g2 := ConvGeom{Channels: 6, Height: 24, Width: 24, Kernel: 2, Stride: 2, Pad: 0}
	if g2.OutHeight() != 12 || g2.OutWidth() != 12 {
		t.Errorf("pool out dims %dx%d, want 12x12", g2.OutHeight(), g2.OutWidth())
	}
}

func TestEqualToleranceAndShape(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{1, 2.0001}, 1, 2)
	if !Equal(a, b, 1e-3) {
		t.Error("Equal within tolerance failed")
	}
	if Equal(a, b, 1e-6) {
		t.Error("Equal beyond tolerance passed")
	}
	if Equal(a, New(2, 1), 1) {
		t.Error("Equal across shapes passed")
	}
}
