//go:build amd64

package tensor

// useAVX2 gates the vector saxpy microkernels, detected once at
// package init. The AVX2 path issues the identical IEEE multiply and
// add per element as the scalar loop (four lanes per instruction, each
// lane an independent accumulation chain), so enabling or disabling it
// never changes a single output bit — only throughput.
var useAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avxBit = 1 << 28
	if c&osxsave == 0 || c&avxBit == 0 {
		return false
	}
	// The OS must have enabled both SSE and AVX register state
	// (XCR0 bits 1 and 2) for YMM registers to be usable.
	lo, _ := xgetbv0()
	if lo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return b&avx2Bit != 0
}

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// axpy4avx2 handles n columns (n must be a multiple of 4) of the
// four-row update; the Go wrapper covers the ragged tail.
//
//go:noescape
func axpy4avx2(o0, o1, o2, o3, bp *float64, v *[4]float64, n int)

//go:noescape
func axpy1avx2(o, bp *float64, v float64, n int)

func axpy4(o0, o1, o2, o3, bp []float64, v0, v1, v2, v3 float64) {
	n := len(bp)
	if useAVX2 && n >= 8 {
		n4 := n &^ 3
		v := [4]float64{v0, v1, v2, v3}
		axpy4avx2(&o0[0], &o1[0], &o2[0], &o3[0], &bp[0], &v, n4)
		for j := n4; j < n; j++ {
			bv := bp[j]
			o0[j] += v0 * bv
			o1[j] += v1 * bv
			o2[j] += v2 * bv
			o3[j] += v3 * bv
		}
		return
	}
	axpy4generic(o0, o1, o2, o3, bp, v0, v1, v2, v3)
}

func axpy1(o, bp []float64, v float64) {
	n := len(bp)
	if useAVX2 && n >= 8 {
		n4 := n &^ 3
		axpy1avx2(&o[0], &bp[0], v, n4)
		for j := n4; j < n; j++ {
			o[j] += v * bp[j]
		}
		return
	}
	axpy1generic(o, bp, v)
}
