package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling over an
// input of Channels × Height × Width with square kernels.
type ConvGeom struct {
	Channels int // input channels
	Height   int // input height
	Width    int // input width
	Kernel   int // kernel side length
	Stride   int
	Pad      int
}

// OutHeight returns the output height of the convolution.
func (g ConvGeom) OutHeight() int { return (g.Height+2*g.Pad-g.Kernel)/g.Stride + 1 }

// OutWidth returns the output width of the convolution.
func (g ConvGeom) OutWidth() int { return (g.Width+2*g.Pad-g.Kernel)/g.Stride + 1 }

// Validate panics if the geometry is degenerate.
func (g ConvGeom) Validate() {
	if g.Channels <= 0 || g.Height <= 0 || g.Width <= 0 || g.Kernel <= 0 || g.Stride <= 0 || g.Pad < 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	if g.OutHeight() <= 0 || g.OutWidth() <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields empty output", g))
	}
}

// Im2Col unrolls one image (flattened C×H×W in img) into a matrix of
// shape (C*K*K) × (outH*outW) so that convolution with F filters becomes
// a single (F × C*K*K) · (C*K*K × outH*outW) matrix multiply. Out-of-pad
// positions contribute zeros.
func Im2Col(img []float64, g ConvGeom) *Dense {
	g.Validate()
	if len(img) != g.Channels*g.Height*g.Width {
		panic(fmt.Sprintf("tensor: Im2Col image length %d != %d", len(img), g.Channels*g.Height*g.Width))
	}
	outH, outW := g.OutHeight(), g.OutWidth()
	rows := g.Channels * g.Kernel * g.Kernel
	cols := outH * outW
	out := New(rows, cols)
	for c := 0; c < g.Channels; c++ {
		chanBase := c * g.Height * g.Width
		for ky := 0; ky < g.Kernel; ky++ {
			for kx := 0; kx < g.Kernel; kx++ {
				row := (c*g.Kernel+ky)*g.Kernel + kx
				dst := out.Data[row*cols : (row+1)*cols]
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.Height {
						continue // row of zeros
					}
					srcRow := chanBase + iy*g.Width
					dstRow := oy * outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.Width {
							continue
						}
						dst[dstRow+ox] = img[srcRow+ix]
					}
				}
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters a (C*K*K) × (outH*outW)
// gradient matrix back into an image-shaped gradient, accumulating where
// kernel windows overlap. It is used by the convolution backward pass.
func Col2Im(cols *Dense, g ConvGeom) []float64 {
	g.Validate()
	outH, outW := g.OutHeight(), g.OutWidth()
	wantRows := g.Channels * g.Kernel * g.Kernel
	if cols.Rows() != wantRows || cols.Cols() != outH*outW {
		panic(fmt.Sprintf("tensor: Col2Im shape %v, want (%d, %d)", cols.Shape, wantRows, outH*outW))
	}
	img := make([]float64, g.Channels*g.Height*g.Width)
	nCols := outH * outW
	for c := 0; c < g.Channels; c++ {
		chanBase := c * g.Height * g.Width
		for ky := 0; ky < g.Kernel; ky++ {
			for kx := 0; kx < g.Kernel; kx++ {
				row := (c*g.Kernel+ky)*g.Kernel + kx
				src := cols.Data[row*nCols : (row+1)*nCols]
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.Height {
						continue
					}
					dstRow := chanBase + iy*g.Width
					srcRow := oy * outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.Width {
							continue
						}
						img[dstRow+ix] += src[srcRow+ox]
					}
				}
			}
		}
	}
	return img
}
