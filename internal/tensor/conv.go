package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling over an
// input of Channels × Height × Width with square kernels.
type ConvGeom struct {
	Channels int // input channels
	Height   int // input height
	Width    int // input width
	Kernel   int // kernel side length
	Stride   int
	Pad      int
}

// OutHeight returns the output height of the convolution.
func (g ConvGeom) OutHeight() int { return (g.Height+2*g.Pad-g.Kernel)/g.Stride + 1 }

// OutWidth returns the output width of the convolution.
func (g ConvGeom) OutWidth() int { return (g.Width+2*g.Pad-g.Kernel)/g.Stride + 1 }

// Validate panics if the geometry is degenerate.
func (g ConvGeom) Validate() {
	if g.Channels <= 0 || g.Height <= 0 || g.Width <= 0 || g.Kernel <= 0 || g.Stride <= 0 || g.Pad < 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	if g.OutHeight() <= 0 || g.OutWidth() <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields empty output", g))
	}
}

// ColRows returns the row count C·K·K of the im2col matrix.
func (g ConvGeom) ColRows() int { return g.Channels * g.Kernel * g.Kernel }

// validRange returns the inclusive output-coordinate range [lo, hi] for
// which o·Stride + k − Pad lands inside [0, size). hi < lo means the
// whole extent falls in padding.
func validRange(k, size, extent int, g ConvGeom) (lo, hi int) {
	lo = 0
	if d := g.Pad - k; d > 0 {
		lo = (d + g.Stride - 1) / g.Stride
	}
	hi = extent - 1
	if m := size - 1 + g.Pad - k; m < 0 {
		return 1, 0
	} else if m/g.Stride < hi {
		hi = m / g.Stride
	}
	return lo, hi
}

// Im2Col unrolls one image (flattened C×H×W in img) into a matrix of
// shape (C*K*K) × (outH*outW) so that convolution with F filters becomes
// a single (F × C*K*K) · (C*K*K × outH*outW) matrix multiply. Out-of-pad
// positions contribute zeros.
func Im2Col(img []float64, g ConvGeom) *Dense {
	g.Validate()
	out := New(g.ColRows(), g.OutHeight()*g.OutWidth())
	Im2ColInto(out, img, g)
	return out
}

// Im2ColInto is Im2Col writing into a caller-owned matrix of shape
// (C*K*K) × (outH*outW); every element is written (padding positions are
// zeroed), so dst need not be cleared.
func Im2ColInto(dst *Dense, img []float64, g ConvGeom) {
	g.Validate()
	if len(img) != g.Channels*g.Height*g.Width {
		panic(fmt.Sprintf("tensor: Im2Col image length %d != %d", len(img), g.Channels*g.Height*g.Width))
	}
	if dst.Rows() != g.ColRows() || dst.Cols() != g.OutHeight()*g.OutWidth() {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want (%d, %d)", dst.Shape, g.ColRows(), g.OutHeight()*g.OutWidth()))
	}
	x := Dense{Shape: []int{1, len(img)}, Data: img}
	im2ColBatchedRange(dst, &x, g, 0, dst.Rows())
}

// Im2ColBatchedInto unrolls a whole minibatch x (batch × C·H·W, one
// flattened image per row) into dst of shape (C·K·K) × (batch·outH·outW),
// where column b·outH·outW + oy·outW + ox holds image b's window at
// (oy, ox). One GEMM against this matrix convolves the entire batch.
// Every element of dst is written. Large unrolls are banded across the
// worker pool by dst row; x is only read, so concurrent bands are safe.
func Im2ColBatchedInto(dst, x *Dense, g ConvGeom) {
	g.Validate()
	x.must2D()
	if x.Shape[1] != g.Channels*g.Height*g.Width {
		panic(fmt.Sprintf("tensor: Im2ColBatchedInto image length %d != %d", x.Shape[1], g.Channels*g.Height*g.Width))
	}
	rows := g.ColRows()
	width := x.Shape[0] * g.OutHeight() * g.OutWidth()
	if dst.Rows() != rows || dst.Cols() != width {
		panic(fmt.Sprintf("tensor: Im2ColBatchedInto dst shape %v, want (%d, %d)", dst.Shape, rows, width))
	}
	if rows*width < parallelThreshold/8 {
		im2ColBatchedRange(dst, x, g, 0, rows)
		return
	}
	parallelBands(kernelTask{op: opIm2Col, out: dst, a: x, geom: g}, rows)
}

// im2ColBatchedRange fills dst rows [lo, hi). Row r = (c·K+ky)·K+kx
// gathers input pixel (ky, kx) of every kernel window of channel c,
// laid out per image. The stride-1 fast path copies whole output rows.
func im2ColBatchedRange(dst, x *Dense, g ConvGeom, lo, hi int) {
	outH, outW := g.OutHeight(), g.OutWidth()
	outHW := outH * outW
	batch := x.Shape[0]
	chw := x.Shape[1]
	width := batch * outHW
	K := g.Kernel
	for r := lo; r < hi; r++ {
		c := r / (K * K)
		ky := (r / K) % K
		kx := r % K
		row := dst.Data[r*width : (r+1)*width]
		oyLo, oyHi := validRange(ky, g.Height, outH, g)
		oxLo, oxHi := validRange(kx, g.Width, outW, g)
		if g.Pad > 0 {
			// Padding leaves gaps between the valid spans; clear first.
			for i := range row {
				row[i] = 0
			}
		}
		chanBase := c * g.Height * g.Width
		for b := 0; b < batch; b++ {
			img := x.Data[b*chw : (b+1)*chw]
			base := b * outHW
			for oy := oyLo; oy <= oyHi; oy++ {
				iy := oy*g.Stride + ky - g.Pad
				srcRow := chanBase + iy*g.Width
				dstRow := base + oy*outW
				if g.Stride == 1 {
					ix := oxLo + kx - g.Pad
					copy(row[dstRow+oxLo:dstRow+oxHi+1], img[srcRow+ix:srcRow+ix+oxHi-oxLo+1])
					continue
				}
				for ox := oxLo; ox <= oxHi; ox++ {
					row[dstRow+ox] = img[srcRow+ox*g.Stride+kx-g.Pad]
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a (C*K*K) × (outH*outW)
// gradient matrix back into an image-shaped gradient, accumulating where
// kernel windows overlap. It is used by the convolution backward pass.
func Col2Im(cols *Dense, g ConvGeom) []float64 {
	g.Validate()
	outH, outW := g.OutHeight(), g.OutWidth()
	if cols.Rows() != g.ColRows() || cols.Cols() != outH*outW {
		panic(fmt.Sprintf("tensor: Col2Im shape %v, want (%d, %d)", cols.Shape, g.ColRows(), outH*outW))
	}
	img := make([]float64, g.Channels*g.Height*g.Width)
	Col2ImInto(img, cols, g)
	return img
}

// Col2ImInto is Col2Im writing into a caller-owned image buffer, which
// is zeroed before accumulation.
func Col2ImInto(img []float64, cols *Dense, g ConvGeom) {
	g.Validate()
	outHW := g.OutHeight() * g.OutWidth()
	if cols.Rows() != g.ColRows() || cols.Cols() != outHW {
		panic(fmt.Sprintf("tensor: Col2ImInto shape %v, want (%d, %d)", cols.Shape, g.ColRows(), outHW))
	}
	if len(img) != g.Channels*g.Height*g.Width {
		panic(fmt.Sprintf("tensor: Col2ImInto image length %d != %d", len(img), g.Channels*g.Height*g.Width))
	}
	dst := Dense{Shape: []int{1, len(img)}, Data: img}
	col2ImBatchedRange(&dst, cols, g, 0, 1)
}

// Col2ImBatchedInto scatters a batched (C·K·K) × (batch·outH·outW)
// gradient matrix (the layout of Im2ColBatchedInto) back into dst of
// shape batch × C·H·W, zeroing dst first and accumulating where kernel
// windows overlap. Images are independent, so large batches are banded
// across the worker pool by image.
func Col2ImBatchedInto(dst, cols *Dense, g ConvGeom) {
	g.Validate()
	dst.must2D()
	batch := dst.Shape[0]
	chw := g.Channels * g.Height * g.Width
	outHW := g.OutHeight() * g.OutWidth()
	if dst.Shape[1] != chw {
		panic(fmt.Sprintf("tensor: Col2ImBatchedInto image length %d != %d", dst.Shape[1], chw))
	}
	if cols.Rows() != g.ColRows() || cols.Cols() != batch*outHW {
		panic(fmt.Sprintf("tensor: Col2ImBatchedInto shape %v, want (%d, %d)", cols.Shape, g.ColRows(), batch*outHW))
	}
	if batch*chw < parallelThreshold/8 {
		col2ImBatchedRange(dst, cols, g, 0, batch)
		return
	}
	parallelBands(kernelTask{op: opCol2Im, out: dst, a: cols, geom: g}, batch)
}

// col2ImBatchedRange scatters images [lo, hi). The (c, ky, kx, oy, ox)
// loop order matches the single-image Col2Im exactly, so per-element
// accumulation order — and hence the floating-point result — is
// identical to running Col2Im once per image.
func col2ImBatchedRange(dst, cols *Dense, g ConvGeom, lo, hi int) {
	outH, outW := g.OutHeight(), g.OutWidth()
	outHW := outH * outW
	chw := dst.Shape[1]
	width := dst.Shape[0] * outHW
	K := g.Kernel
	for b := lo; b < hi; b++ {
		img := dst.Data[b*chw : (b+1)*chw]
		for i := range img {
			img[i] = 0
		}
		base := b * outHW
		for c := 0; c < g.Channels; c++ {
			chanBase := c * g.Height * g.Width
			for ky := 0; ky < K; ky++ {
				oyLo, oyHi := validRange(ky, g.Height, outH, g)
				for kx := 0; kx < K; kx++ {
					oxLo, oxHi := validRange(kx, g.Width, outW, g)
					r := (c*K+ky)*K + kx
					src := cols.Data[r*width+base : r*width+base+outHW]
					for oy := oyLo; oy <= oyHi; oy++ {
						iy := oy*g.Stride + ky - g.Pad
						dstRow := chanBase + iy*g.Width
						srcRow := oy * outW
						for ox := oxLo; ox <= oxHi; ox++ {
							img[dstRow+ox*g.Stride+kx-g.Pad] += src[srcRow+ox]
						}
					}
				}
			}
		}
	}
}
