// Package tensor implements the dense numerical arrays underlying the
// neural-network substrate. It provides row-major float64 tensors with
// elementwise arithmetic, a cache-blocked parallel matrix multiply, and
// the im2col/col2im transforms used to express convolution as GEMM.
//
// The package is deliberately small: only the operations the federated
// training workloads need, each implemented without external
// dependencies. Shapes are validated eagerly and mismatches panic,
// because a shape error in simulation code is always a programming bug.
package tensor

import (
	"fmt"
	"math"

	"haccs/internal/stats"
)

// Dense is a row-major dense tensor. Data is a flat backing slice whose
// length equals the product of Shape. A Dense with an empty shape is a
// scalar holding one element.
type Dense struct {
	Shape []int
	Data  []float64
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Dense{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); its length must match the shape volume.
func FromSlice(data []float64, shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Dense{Shape: append([]int(nil), shape...), Data: data}
}

// Size returns the total number of elements.
func (t *Dense) Size() int { return len(t.Data) }

// Dims returns the number of dimensions.
func (t *Dense) Dims() int { return len(t.Shape) }

// Rows and Cols report the dimensions of a 2-D tensor; they panic on
// tensors of any other rank.
func (t *Dense) Rows() int { t.must2D(); return t.Shape[0] }

// Cols returns the number of columns of a 2-D tensor.
func (t *Dense) Cols() int { t.must2D(); return t.Shape[1] }

func (t *Dense) must2D() {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: expected 2-D tensor, have shape %v", t.Shape))
	}
}

// At returns the element of a 2-D tensor at (i, j).
func (t *Dense) At(i, j int) float64 { t.must2D(); return t.Data[i*t.Shape[1]+j] }

// Set assigns the element of a 2-D tensor at (i, j).
func (t *Dense) Set(i, j int, v float64) { t.must2D(); t.Data[i*t.Shape[1]+j] = v }

// Row returns a view (not a copy) of row i of a 2-D tensor.
func (t *Dense) Row(i int) []float64 {
	t.must2D()
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape of equal
// volume. The returned tensor shares the backing slice.
func (t *Dense) Reshape(shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Dense{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets every element to 0 in place.
func (t *Dense) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Dense) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Dense) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

func mustSameShape(op string, a, b *Dense) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// Add computes t += other element-wise.
func (t *Dense) Add(other *Dense) {
	mustSameShape("Add", t, other)
	for i, v := range other.Data {
		t.Data[i] += v
	}
}

// Sub computes t -= other element-wise.
func (t *Dense) Sub(other *Dense) {
	mustSameShape("Sub", t, other)
	for i, v := range other.Data {
		t.Data[i] -= v
	}
}

// Mul computes t *= other element-wise (Hadamard product).
func (t *Dense) Mul(other *Dense) {
	mustSameShape("Mul", t, other)
	for i, v := range other.Data {
		t.Data[i] *= v
	}
}

// Scale computes t *= s element-wise.
func (t *Dense) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY computes t += alpha * other element-wise.
func (t *Dense) AXPY(alpha float64, other *Dense) {
	mustSameShape("AXPY", t, other)
	for i, v := range other.Data {
		t.Data[i] += alpha * v
	}
}

// Dot returns the inner product of two tensors of identical shape.
func Dot(a, b *Dense) float64 {
	mustSameShape("Dot", a, b)
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Dense) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (t *Dense) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty data).
func (t *Dense) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Transpose returns a new tensor that is the transpose of a 2-D tensor.
func (t *Dense) Transpose() *Dense {
	t.must2D()
	r, c := t.Shape[0], t.Shape[1]
	out := New(c, r)
	// Block the loops for cache friendliness on large matrices.
	const blk = 32
	for ii := 0; ii < r; ii += blk {
		iMax := min(ii+blk, r)
		for jj := 0; jj < c; jj += blk {
			jMax := min(jj+blk, c)
			for i := ii; i < iMax; i++ {
				for j := jj; j < jMax; j++ {
					out.Data[j*r+i] = t.Data[i*c+j]
				}
			}
		}
	}
	return out
}

// ArgMaxRows returns, for a 2-D tensor, the column index of the maximum
// entry in each row — the predicted class for a batch of logit rows.
func (t *Dense) ArgMaxRows() []int {
	out := make([]int, t.Rows())
	t.ArgMaxRowsInto(out)
	return out
}

// ArgMaxRowsInto writes each row's argmax into dst, which must have one
// entry per row.
func (t *Dense) ArgMaxRowsInto(dst []int) {
	t.must2D()
	r, c := t.Shape[0], t.Shape[1]
	if len(dst) != r {
		panic("tensor: ArgMaxRowsInto length mismatch")
	}
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		dst[i] = best
	}
}

// SoftmaxRows applies a numerically stable softmax to each row of a 2-D
// tensor, returning a new tensor.
func (t *Dense) SoftmaxRows() *Dense {
	t.must2D()
	out := New(t.Shape[0], t.Shape[1])
	t.SoftmaxRowsInto(out)
	return out
}

// SoftmaxRowsInto is SoftmaxRows writing into a caller-owned tensor of
// the same shape. Every element is overwritten.
func (t *Dense) SoftmaxRowsInto(out *Dense) {
	t.must2D()
	out.must2D()
	r, c := t.Shape[0], t.Shape[1]
	if out.Shape[0] != r || out.Shape[1] != c {
		panic("tensor: SoftmaxRowsInto shape mismatch")
	}
	for i := 0; i < r; i++ {
		in := t.Data[i*c : (i+1)*c]
		o := out.Data[i*c : (i+1)*c]
		maxV := in[0]
		for _, v := range in[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range in {
			e := math.Exp(v - maxV)
			o[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range o {
			o[j] *= inv
		}
	}
}

// RandNormal fills the tensor with draws from N(mean, stddev).
func (t *Dense) RandNormal(mean, stddev float64, rng *stats.RNG) {
	for i := range t.Data {
		t.Data[i] = rng.Normal(mean, stddev)
	}
}

// RandUniform fills the tensor with draws from Uniform[lo, hi).
func (t *Dense) RandUniform(lo, hi float64, rng *stats.RNG) {
	for i := range t.Data {
		t.Data[i] = rng.Uniform(lo, hi)
	}
}

// Equal reports whether two tensors have the same shape and all elements
// within tol of each other.
func Equal(a, b *Dense, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
