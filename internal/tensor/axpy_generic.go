package tensor

// Scalar reference implementations of the saxpy microkernels behind the
// accumulating matrix kernels. On amd64 these are the fallback for the
// AVX2 versions in axpy_amd64.s; elsewhere they are the only
// implementation. The vector path performs the same IEEE multiply and
// add per element, only several lanes at a time, so both produce
// bit-identical output — which path runs is purely a speed matter and
// never a correctness one.

// axpy4generic computes oX[j] += vX*bp[j] for four output rows sharing
// one streamed b row. All five slices must have equal length.
func axpy4generic(o0, o1, o2, o3, bp []float64, v0, v1, v2, v3 float64) {
	if len(bp) == 0 {
		return
	}
	_, _, _, _ = o0[len(bp)-1], o1[len(bp)-1], o2[len(bp)-1], o3[len(bp)-1]
	for j, bv := range bp {
		o0[j] += v0 * bv
		o1[j] += v1 * bv
		o2[j] += v2 * bv
		o3[j] += v3 * bv
	}
}

// axpy1generic computes o[j] += v*bp[j]. Both slices must have equal
// length.
func axpy1generic(o, bp []float64, v float64) {
	if len(bp) == 0 {
		return
	}
	_ = o[len(bp)-1]
	for j, bv := range bp {
		o[j] += v * bv
	}
}
