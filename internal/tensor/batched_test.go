package tensor

import "testing"

// fill writes a deterministic, sign-varying pattern so kernel identity
// tests exercise non-trivial values without a seed dependency.
func fill(data []float64, salt uint64) {
	s := salt*2654435761 + 12345
	for i := range data {
		s = s*6364136223846793005 + 1442695040888963407
		data[i] = float64(int64(s>>33)%2000-1000) / 997
	}
}

func mustExact(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v (must be bit-exact)", what, i, got[i], want[i])
		}
	}
}

func TestScratchReuseAndGrowth(t *testing.T) {
	var s Scratch
	a := s.Dense2D("x", 4, 8)
	a.Data[0] = 42
	b := s.Dense2D("x", 2, 8) // shrink: same backing array, same header
	if b != a {
		t.Fatalf("Dense2D did not reuse the *Dense header on shrink")
	}
	if b.Rows() != 2 || b.Cols() != 8 || len(b.Data) != 16 {
		t.Fatalf("Dense2D shrink shape = %v len %d", b.Shape, len(b.Data))
	}
	if b.Data[0] != 42 {
		t.Fatalf("Dense2D must not zero reused storage")
	}
	c := s.Dense2D("x", 8, 8) // grow past capacity: fresh storage
	if c != a {
		t.Fatalf("Dense2D should keep reusing the header on growth")
	}
	if len(c.Data) != 64 {
		t.Fatalf("Dense2D grow len = %d", len(c.Data))
	}
	if s.Dense2D("y", 4, 8) == a {
		t.Fatalf("distinct keys must get distinct tensors")
	}

	f := s.Floats("buf", 10)
	f[3] = 7
	f2 := s.Floats("buf", 5)
	if &f2[0] != &f[0] || len(f2) != 5 || f2[3] != 7 {
		t.Fatalf("Floats must reuse backing storage without zeroing")
	}
	ints := s.Ints("idx", 6)
	ints[0] = 9
	if got := s.Ints("idx", 6); &got[0] != &ints[0] || got[0] != 9 {
		t.Fatalf("Ints must reuse backing storage without zeroing")
	}
}

// convGeoms are the geometries the identity tests sweep: valid and
// padded, unit and non-unit stride, single- and multi-channel.
var convGeoms = []ConvGeom{
	{Channels: 1, Height: 5, Width: 5, Kernel: 3, Stride: 1, Pad: 0},
	{Channels: 3, Height: 8, Width: 8, Kernel: 3, Stride: 1, Pad: 1},
	{Channels: 2, Height: 9, Width: 7, Kernel: 3, Stride: 2, Pad: 1},
	{Channels: 3, Height: 12, Width: 12, Kernel: 5, Stride: 1, Pad: 2},
	{Channels: 1, Height: 6, Width: 6, Kernel: 2, Stride: 2, Pad: 0},
}

func TestIm2ColBatchedMatchesPerImage(t *testing.T) {
	const batch = 3
	for _, g := range convGeoms {
		chw := g.Channels * g.Height * g.Width
		outHW := g.OutHeight() * g.OutWidth()
		x := New(batch, chw)
		fill(x.Data, uint64(g.Kernel*100+g.Pad*10+g.Stride))
		cols := New(g.ColRows(), batch*outHW)
		fill(cols.Data, 99) // pre-soil: every element must be overwritten
		Im2ColBatchedInto(cols, x, g)
		for b := 0; b < batch; b++ {
			ref := Im2Col(x.Row(b), g)
			for r := 0; r < g.ColRows(); r++ {
				got := cols.Data[r*batch*outHW+b*outHW : r*batch*outHW+(b+1)*outHW]
				mustExact(t, got, ref.Data[r*outHW:(r+1)*outHW], "im2col batched")
			}
		}
	}
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	for _, g := range convGeoms {
		img := make([]float64, g.Channels*g.Height*g.Width)
		fill(img, 7)
		want := Im2Col(img, g)
		got := New(g.ColRows(), g.OutHeight()*g.OutWidth())
		fill(got.Data, 3)
		Im2ColInto(got, img, g)
		mustExact(t, got.Data, want.Data, "Im2ColInto")
	}
}

func TestCol2ImBatchedMatchesPerImage(t *testing.T) {
	const batch = 3
	for _, g := range convGeoms {
		outHW := g.OutHeight() * g.OutWidth()
		chw := g.Channels * g.Height * g.Width
		cols := New(g.ColRows(), batch*outHW)
		fill(cols.Data, uint64(g.Kernel))
		dst := New(batch, chw)
		fill(dst.Data, 5) // must be fully overwritten
		Col2ImBatchedInto(dst, cols, g)
		for b := 0; b < batch; b++ {
			// Extract image b's column block and run the single-image path.
			one := New(g.ColRows(), outHW)
			for r := 0; r < g.ColRows(); r++ {
				copy(one.Data[r*outHW:(r+1)*outHW], cols.Data[r*batch*outHW+b*outHW:r*batch*outHW+(b+1)*outHW])
			}
			mustExact(t, dst.Row(b), Col2Im(one, g), "col2im batched")
		}
	}
}

func TestCol2ImIntoMatchesCol2Im(t *testing.T) {
	g := ConvGeom{Channels: 2, Height: 7, Width: 7, Kernel: 3, Stride: 1, Pad: 1}
	cols := New(g.ColRows(), g.OutHeight()*g.OutWidth())
	fill(cols.Data, 11)
	want := Col2Im(cols, g)
	got := make([]float64, g.Channels*g.Height*g.Width)
	fill(got, 13)
	Col2ImInto(got, cols, g)
	mustExact(t, got, want, "Col2ImInto")
}

func TestMatMulTransBIntoMatchesAlloc(t *testing.T) {
	a, b := New(9, 31), New(13, 31)
	fill(a.Data, 1)
	fill(b.Data, 2)
	want := MatMulTransB(a, b)
	got := New(9, 13)
	fill(got.Data, 3)
	MatMulTransBInto(got, a, b)
	mustExact(t, got.Data, want.Data, "MatMulTransBInto")
}

func TestMatMulTransAIntoMatchesAlloc(t *testing.T) {
	a, b := New(17, 9), New(17, 21)
	fill(a.Data, 4)
	fill(b.Data, 5)
	want := MatMulTransA(a, b)
	got := New(9, 21)
	fill(got.Data, 6)
	MatMulTransAInto(got, a, b)
	mustExact(t, got.Data, want.Data, "MatMulTransAInto")
}

// TestAddMatMulTransBChunkedMatchesPerChunk checks the chunked kernel
// against its defining decomposition: one MatMulTransB per inner-dim
// chunk, each product added into the accumulator — the per-image weight
// gradient pattern the batched convolution relies on. Results must be
// bit-exact, including a tail chunk that does not divide k evenly.
func TestAddMatMulTransBChunkedMatchesPerChunk(t *testing.T) {
	for _, tc := range []struct{ m, n, k, chunk int }{
		{6, 75, 4 * 49, 49}, // conv dW shape: chunk = outHW divides k
		{5, 7, 23, 10},      // ragged tail chunk
		{1, 3, 8, 8},        // single chunk = plain MatMulTransB
		{3, 9, 40, 1},       // element-at-a-time chunks
	} {
		a, b := New(tc.m, tc.k), New(tc.n, tc.k)
		fill(a.Data, uint64(tc.k))
		fill(b.Data, uint64(tc.k+1))
		want := New(tc.m, tc.n)
		fill(want.Data, 8) // both sides accumulate onto identical garbage
		got := want.Clone()
		for c0 := 0; c0 < tc.k; c0 += tc.chunk {
			c1 := min(c0+tc.chunk, tc.k)
			ac, bc := New(tc.m, c1-c0), New(tc.n, c1-c0)
			for i := 0; i < tc.m; i++ {
				copy(ac.Data[i*(c1-c0):], a.Data[i*tc.k+c0:i*tc.k+c1])
			}
			for j := 0; j < tc.n; j++ {
				copy(bc.Data[j*(c1-c0):], b.Data[j*tc.k+c0:j*tc.k+c1])
			}
			want.Add(MatMulTransB(ac, bc))
		}
		AddMatMulTransBChunked(got, a, b, tc.chunk)
		mustExact(t, got.Data, want.Data, "AddMatMulTransBChunked")
	}
}

// TestGemmColumnBandedMatchesSerial pushes a wide-and-short product (the
// batched im2col shape) over the parallel threshold so the column-banded
// pool path runs, and requires bit-exact agreement with the serial
// kernel.
func TestGemmColumnBandedMatchesSerial(t *testing.T) {
	a, b := New(6, 80), New(80, 1024) // 6·80·1024 ≈ 491k madds > threshold
	fill(a.Data, 21)
	fill(b.Data, 22)
	got := New(6, 1024)
	MatMulInto(got, a, b)
	want := New(6, 1024)
	matMulRowsCols(want, a, b, 0, 6, 0, 1024)
	mustExact(t, got.Data, want.Data, "column-banded gemm")
}

// TestGemmRowBandedMatchesSerial does the same for the row-banded path.
func TestGemmRowBandedMatchesSerial(t *testing.T) {
	a, b := New(128, 64), New(64, 128)
	fill(a.Data, 31)
	fill(b.Data, 32)
	got := New(128, 128)
	MatMulInto(got, a, b)
	want := New(128, 128)
	matMulRowsCols(want, a, b, 0, 128, 0, 128)
	mustExact(t, got.Data, want.Data, "row-banded gemm")
}
