//go:build !amd64

package tensor

func axpy4(o0, o1, o2, o3, bp []float64, v0, v1, v2, v3 float64) {
	axpy4generic(o0, o1, o2, o3, bp, v0, v1, v2, v3)
}

func axpy1(o, bp []float64, v float64) {
	axpy1generic(o, bp, v)
}
