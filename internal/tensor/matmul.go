package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-adds before MatMul
// fans work out to multiple goroutines; below it the goroutine and
// synchronization overhead dominates.
const parallelThreshold = 64 * 64 * 64

// MatMul returns a × b for 2-D tensors, using a cache-blocked ikj loop
// order and, for large products, parallelism across row bands. The inner
// kernel is the classic "saxpy row" formulation: for each (i, k) it
// streams b's row k into the output row, which keeps all three access
// patterns sequential.
func MatMul(a, b *Dense) *Dense {
	a.must2D()
	b.must2D()
	m, ka := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic("tensor: MatMul inner dimension mismatch")
	}
	out := New(m, n)
	matMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a × b, reusing dst's storage. dst must have
// shape (a.Rows, b.Cols) and must not alias a or b.
func MatMulInto(dst, a, b *Dense) {
	a.must2D()
	b.must2D()
	dst.must2D()
	if a.Shape[1] != b.Shape[0] || dst.Shape[0] != a.Shape[0] || dst.Shape[1] != b.Shape[1] {
		panic("tensor: MatMulInto shape mismatch")
	}
	dst.Zero()
	matMulInto(dst, a, b)
}

func matMulInto(out, a, b *Dense) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	work := m * n * k
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers <= 1 || m == 1 {
		matMulRange(out, a, b, 0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := min(lo+band, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	_ = k
	_ = n
}

// matMulRange computes output rows [lo, hi).
func matMulRange(out, a, b *Dense, lo, hi int) {
	k := a.Shape[1]
	n := b.Shape[1]
	for i := lo; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			aip := ai[p]
			if aip == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j, bv := range bp {
				oi[j] += aip * bv
			}
		}
	}
}

// MatMulTransB returns a × bᵀ without materializing the transpose;
// useful in backward passes where the weight gradient pattern is
// (m×n)·(k×n)ᵀ.
func MatMulTransB(a, b *Dense) *Dense {
	a.must2D()
	b.must2D()
	m, ka := a.Shape[0], a.Shape[1]
	n, kb := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	out := New(m, n)
	workers := runtime.GOMAXPROCS(0)
	if m*n*ka < parallelThreshold || workers <= 1 || m == 1 {
		matMulTransBRange(out, a, b, 0, m)
		return out
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := min(lo+band, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulTransBRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matMulTransBRange(out, a, b *Dense, lo, hi int) {
	k := a.Shape[1]
	n := b.Shape[0]
	for i := lo; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			oi[j] = s
		}
	}
}

// MatMulTransA returns aᵀ × b without materializing the transpose; this
// is the (k×m)ᵀ·(k×n) pattern of dense-layer weight gradients.
func MatMulTransA(a, b *Dense) *Dense {
	a.must2D()
	b.must2D()
	ka, m := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	out := New(m, n)
	// Accumulate rank-1 updates; output rows are streamed per k-row of a.
	for p := 0; p < ka; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			oi := out.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				oi[j] += av * bv
			}
		}
	}
	return out
}
