package tensor

import "runtime"

// parallelThreshold is the minimum number of multiply-adds before a
// matrix kernel fans work out to the worker pool; below it the
// synchronization overhead dominates.
const parallelThreshold = 64 * 64 * 64

// All kernels in this file keep one invariant: the order in which
// products are accumulated into any single output element is the
// ascending inner-dimension order of the plain three-loop formulation.
// Register blocking widens how many output rows or columns share one
// streamed pass, and the pool bands disjoint output regions — neither
// changes any element's own accumulation order. Floating-point results
// are therefore bit-identical across block widths, band splits and
// worker counts, which is what lets the batched convolution promise
// exact equality with its per-image reference.

// MatMul returns a × b for 2-D tensors, using a cache-blocked ikj loop
// order and, for large products, parallelism across row or column bands
// of the worker pool.
func MatMul(a, b *Dense) *Dense {
	a.must2D()
	b.must2D()
	if a.Shape[1] != b.Shape[0] {
		panic("tensor: MatMul inner dimension mismatch")
	}
	out := New(a.Shape[0], b.Shape[1])
	gemm(out, a, b)
	return out
}

// MatMulInto computes dst = a × b, reusing dst's storage. dst must have
// shape (a.Rows, b.Cols) and must not alias a or b.
func MatMulInto(dst, a, b *Dense) {
	a.must2D()
	b.must2D()
	dst.must2D()
	if a.Shape[1] != b.Shape[0] || dst.Shape[0] != a.Shape[0] || dst.Shape[1] != b.Shape[1] {
		panic("tensor: MatMulInto shape mismatch")
	}
	dst.Zero()
	gemm(dst, a, b)
}

// gemm accumulates out += a × b, choosing serial execution for small
// products and row- or column-banded pool execution for large ones.
// Wide-and-short products (the batched im2col GEMM is filters × huge-n)
// band across columns so every worker still gets a full share.
func gemm(out, a, b *Dense) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if m*n*k < parallelThreshold || runtime.GOMAXPROCS(0) <= 1 {
		matMulRowsCols(out, a, b, 0, m, 0, n)
		return
	}
	if m >= 2*runtime.GOMAXPROCS(0) || n < 4*m {
		parallelBands(kernelTask{op: opMatMulRows, out: out, a: a, b: b}, m)
	} else {
		parallelBands(kernelTask{op: opMatMulCols, out: out, a: a, b: b}, n)
	}
}

// gemmColTile is the column-tile width of the accumulating kernels:
// 512 float64s = 4KB per row slice, so a 4-row output tile plus the
// streamed b-row tile stay resident in L1 across the whole k loop.
const gemmColTile = 512

// matMulRowsCols accumulates out[lo:hi, cLo:cHi) += a × b restricted to
// the given row and column bands. Columns are tiled so each output tile
// is touched once per call rather than once per k-iteration, and rows
// are processed four at a time so each streamed b-row tile feeds four
// output rows per pass. Per output element the k-loop still accumulates
// in ascending order, so results are bit-identical to the scalar
// three-loop kernel.
func matMulRowsCols(out, a, b *Dense, lo, hi, cLo, cHi int) {
	k := a.Shape[1]
	n := b.Shape[1]
	for j0 := cLo; j0 < cHi; j0 += gemmColTile {
		j1 := min(j0+gemmColTile, cHi)
		i := lo
		for ; i+4 <= hi; i += 4 {
			a0 := a.Data[i*k : (i+1)*k]
			a1 := a.Data[(i+1)*k : (i+2)*k]
			a2 := a.Data[(i+2)*k : (i+3)*k]
			a3 := a.Data[(i+3)*k : (i+4)*k]
			o0 := out.Data[i*n+j0 : i*n+j1]
			o1 := out.Data[(i+1)*n+j0 : (i+1)*n+j1]
			o2 := out.Data[(i+2)*n+j0 : (i+2)*n+j1]
			o3 := out.Data[(i+3)*n+j0 : (i+3)*n+j1]
			for p := 0; p < k; p++ {
				v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				axpy4(o0, o1, o2, o3, b.Data[p*n+j0:p*n+j1], v0, v1, v2, v3)
			}
		}
		for ; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			oi := out.Data[i*n+j0 : i*n+j1]
			for p := 0; p < k; p++ {
				aip := ai[p]
				if aip == 0 {
					continue
				}
				axpy1(oi, b.Data[p*n+j0:p*n+j1], aip)
			}
		}
	}
}

// MatMulTransB returns a × bᵀ without materializing the transpose;
// useful in backward passes where the gradient pattern is (m×k)·(n×k)ᵀ.
func MatMulTransB(a, b *Dense) *Dense {
	a.must2D()
	b.must2D()
	if a.Shape[1] != b.Shape[1] {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	out := New(a.Shape[0], b.Shape[0])
	transB(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a × bᵀ, reusing dst's storage. dst
// must have shape (a.Rows, b.Rows) and must not alias a or b. Every
// element is overwritten, so dst need not be zeroed.
func MatMulTransBInto(dst, a, b *Dense) {
	a.must2D()
	b.must2D()
	dst.must2D()
	if a.Shape[1] != b.Shape[1] || dst.Shape[0] != a.Shape[0] || dst.Shape[1] != b.Shape[0] {
		panic("tensor: MatMulTransBInto shape mismatch")
	}
	transB(dst, a, b)
}

func transB(out, a, b *Dense) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if m*n*k < parallelThreshold || runtime.GOMAXPROCS(0) <= 1 || m == 1 {
		matMulTransBRange(out, a, b, 0, m)
		return
	}
	parallelBands(kernelTask{op: opTransB, out: out, a: a, b: b}, m)
}

// matMulTransBRange writes output rows [lo, hi) as dot products,
// visiting four rows of b per pass over a's row so the a-side stream is
// amortized.
func matMulTransBRange(out, a, b *Dense, lo, hi int) {
	k := a.Shape[1]
	n := b.Shape[0]
	for i := lo; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := out.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			b2 := b.Data[(j+2)*k : (j+3)*k]
			b3 := b.Data[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float64
			if k > 0 {
				_, _, _, _ = b0[k-1], b1[k-1], b2[k-1], b3[k-1]
			}
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			oi[j], oi[j+1], oi[j+2], oi[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			oi[j] = s
		}
	}
}

// AddMatMulTransBChunked accumulates dst += a × bᵀ with the inner
// dimension summed in consecutive chunks of the given length: each chunk
// is reduced into its own partial sum before being added to dst. With
// chunk = outH·outW this reproduces, bit for bit, the accumulation order
// of a per-image weight-gradient loop (one MatMulTransB per image added
// into dst), which is what keeps the batched convolution backward pass
// exactly equal to the per-image reference.
func AddMatMulTransBChunked(dst, a, b *Dense, chunk int) {
	a.must2D()
	b.must2D()
	dst.must2D()
	if a.Shape[1] != b.Shape[1] || dst.Shape[0] != a.Shape[0] || dst.Shape[1] != b.Shape[0] {
		panic("tensor: AddMatMulTransBChunked shape mismatch")
	}
	if chunk <= 0 {
		panic("tensor: AddMatMulTransBChunked chunk must be positive")
	}
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if m*n*k < parallelThreshold || runtime.GOMAXPROCS(0) <= 1 || m == 1 {
		addMatMulTransBChunkedRange(dst, a, b, chunk, 0, m)
		return
	}
	parallelBands(kernelTask{op: opChunkAcc, out: dst, a: a, b: b, chunk: chunk}, m)
}

// addMatMulTransBChunkedRange walks chunks outermost so one chunk-slice
// of b (one image's columns in the conv dW case) is reused across every
// output row before the stream advances. Per output element the chunk
// partial sums are still added in ascending chunk order, matching the
// per-image reference exactly.
func addMatMulTransBChunkedRange(dst, a, b *Dense, chunk, lo, hi int) {
	k := a.Shape[1]
	n := b.Shape[0]
	for c0 := 0; c0 < k; c0 += chunk {
		c1 := min(c0+chunk, k)
		w := c1 - c0
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k+c0 : i*k+c1]
			di := dst.Data[i*n : (i+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b0 := b.Data[j*k+c0 : j*k+c1]
				b1 := b.Data[(j+1)*k+c0 : (j+1)*k+c1]
				b2 := b.Data[(j+2)*k+c0 : (j+2)*k+c1]
				b3 := b.Data[(j+3)*k+c0 : (j+3)*k+c1]
				var s0, s1, s2, s3 float64
				if w > 0 {
					_, _, _, _ = b0[w-1], b1[w-1], b2[w-1], b3[w-1]
				}
				for p, av := range ai {
					s0 += av * b0[p]
					s1 += av * b1[p]
					s2 += av * b2[p]
					s3 += av * b3[p]
				}
				di[j] += s0
				di[j+1] += s1
				di[j+2] += s2
				di[j+3] += s3
			}
			for ; j < n; j++ {
				bj := b.Data[j*k+c0 : j*k+c1]
				s := 0.0
				for p, av := range ai {
					s += av * bj[p]
				}
				di[j] += s
			}
		}
	}
}

// MatMulTransA returns aᵀ × b without materializing the transpose; this
// is the (k×m)ᵀ·(k×n) pattern of dense-layer weight gradients.
func MatMulTransA(a, b *Dense) *Dense {
	a.must2D()
	b.must2D()
	if a.Shape[0] != b.Shape[0] {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	out := New(a.Shape[1], b.Shape[1])
	transA(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ × b, reusing dst's storage. dst
// must have shape (a.Cols, b.Cols) and must not alias a or b.
func MatMulTransAInto(dst, a, b *Dense) {
	a.must2D()
	b.must2D()
	dst.must2D()
	if a.Shape[0] != b.Shape[0] || dst.Shape[0] != a.Shape[1] || dst.Shape[1] != b.Shape[1] {
		panic("tensor: MatMulTransAInto shape mismatch")
	}
	dst.Zero()
	transA(dst, a, b)
}

func transA(out, a, b *Dense) {
	ka, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if m*n*ka < parallelThreshold || runtime.GOMAXPROCS(0) <= 1 || m == 1 {
		matMulTransARange(out, a, b, 0, m)
		return
	}
	parallelBands(kernelTask{op: opTransA, out: out, a: a, b: b}, m)
}

// matMulTransARange accumulates output rows [lo, hi) (columns of a)
// with the same tiled row-major structure as matMulRowsCols, reading a
// column-wise; per output element the ka-loop accumulates in ascending
// order, identical to the rank-1 formulation.
func matMulTransARange(out, a, b *Dense, lo, hi int) {
	ka, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	for j0 := 0; j0 < n; j0 += gemmColTile {
		j1 := min(j0+gemmColTile, n)
		i := lo
		for ; i+4 <= hi; i += 4 {
			o0 := out.Data[i*n+j0 : i*n+j1]
			o1 := out.Data[(i+1)*n+j0 : (i+1)*n+j1]
			o2 := out.Data[(i+2)*n+j0 : (i+2)*n+j1]
			o3 := out.Data[(i+3)*n+j0 : (i+3)*n+j1]
			for p := 0; p < ka; p++ {
				base := p * m
				v0, v1, v2, v3 := a.Data[base+i], a.Data[base+i+1], a.Data[base+i+2], a.Data[base+i+3]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				axpy4(o0, o1, o2, o3, b.Data[p*n+j0:p*n+j1], v0, v1, v2, v3)
			}
		}
		for ; i < hi; i++ {
			oi := out.Data[i*n+j0 : i*n+j1]
			for p := 0; p < ka; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				axpy1(oi, b.Data[p*n+j0:p*n+j1], av)
			}
		}
	}
}
