package tensor

// Scratch is a grow-only arena of named, reusable buffers. It exists so
// hot paths (layer forward/backward, minibatch staging, engine workers)
// can reuse storage across steps instead of allocating per call: the
// first request for a key allocates, later requests reuse the backing
// array whenever its capacity suffices, and capacity only grows.
//
// Ownership rules (see DESIGN.md "Performance"):
//
//   - A Scratch belongs to exactly one goroutine at a time; it is not
//     safe for concurrent use. Give each worker its own arena.
//   - A buffer returned for a key is valid until the next request for
//     the same key on the same arena. Callers must not retain it across
//     that boundary (copy out instead).
//   - Returned buffers are NOT zeroed; contents are whatever the
//     previous use left behind. Callers that accumulate must clear
//     first (Dense.Zero, explicit loops).
//
// The zero value is ready to use.
type Scratch struct {
	f map[string][]float64
	i map[string][]int
	d map[string]*Dense
}

// NewScratch returns an empty arena. The zero value is equally valid;
// the constructor exists for pointer-typed fields.
func NewScratch() *Scratch { return &Scratch{} }

// Dense2D returns the arena's tensor for key, shaped rows × cols. The
// backing array and the *Dense header are reused across calls, so a
// steady-state caller allocates nothing. Contents are not zeroed.
func (s *Scratch) Dense2D(key string, rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic("tensor: Scratch.Dense2D with non-positive dimensions")
	}
	if s.d == nil {
		s.d = make(map[string]*Dense)
	}
	n := rows * cols
	t := s.d[key]
	if t == nil {
		t = &Dense{Shape: []int{rows, cols}, Data: make([]float64, n)}
		s.d[key] = t
		return t
	}
	if cap(t.Data) < n {
		t.Data = make([]float64, n)
	} else {
		t.Data = t.Data[:n]
	}
	t.Shape[0], t.Shape[1] = rows, cols
	return t
}

// Floats returns the arena's []float64 for key, resized to length n.
// Contents are not zeroed.
func (s *Scratch) Floats(key string, n int) []float64 {
	if s.f == nil {
		s.f = make(map[string][]float64)
	}
	buf := s.f[key]
	if cap(buf) < n {
		buf = make([]float64, n)
		s.f[key] = buf
		return buf
	}
	buf = buf[:n]
	s.f[key] = buf
	return buf
}

// Ints returns the arena's []int for key, resized to length n. Contents
// are not zeroed.
func (s *Scratch) Ints(key string, n int) []int {
	if s.i == nil {
		s.i = make(map[string][]int)
	}
	buf := s.i[key]
	if cap(buf) < n {
		buf = make([]int, n)
		s.i[key] = buf
		return buf
	}
	buf = buf[:n]
	s.i[key] = buf
	return buf
}
