//go:build amd64

#include "textflag.h"

// AVX2 saxpy microkernels. Each lane performs the same IEEE-754
// multiply then add as the scalar loops in axpy_generic.go (VMULPD /
// VADDPD, never fused), and lanes are independent accumulation chains,
// so results are bit-identical to the scalar path.

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy4avx2(o0, o1, o2, o3, bp *float64, v *[4]float64, n int)
// oK[j] += v[K] * bp[j] for j in [0, n); n must be a multiple of 4.
TEXT ·axpy4avx2(SB), NOSPLIT, $0-56
	MOVQ o0+0(FP), DI
	MOVQ o1+8(FP), SI
	MOVQ o2+16(FP), DX
	MOVQ o3+24(FP), CX
	MOVQ bp+32(FP), BX
	MOVQ v+40(FP), AX
	MOVQ n+48(FP), R8
	VBROADCASTSD 0(AX), Y0
	VBROADCASTSD 8(AX), Y1
	VBROADCASTSD 16(AX), Y2
	VBROADCASTSD 24(AX), Y3
	XORQ R9, R9
	MOVQ R8, R10
	ANDQ $-8, R10 // 8-column unrolled portion

axpy4_loop8:
	CMPQ R9, R10
	JGE  axpy4_loop4
	VMOVUPD (BX)(R9*8), Y4
	VMOVUPD 32(BX)(R9*8), Y9
	VMULPD  Y4, Y0, Y5
	VMULPD  Y9, Y0, Y10
	VADDPD  (DI)(R9*8), Y5, Y5
	VADDPD  32(DI)(R9*8), Y10, Y10
	VMOVUPD Y5, (DI)(R9*8)
	VMOVUPD Y10, 32(DI)(R9*8)
	VMULPD  Y4, Y1, Y6
	VMULPD  Y9, Y1, Y11
	VADDPD  (SI)(R9*8), Y6, Y6
	VADDPD  32(SI)(R9*8), Y11, Y11
	VMOVUPD Y6, (SI)(R9*8)
	VMOVUPD Y11, 32(SI)(R9*8)
	VMULPD  Y4, Y2, Y7
	VMULPD  Y9, Y2, Y12
	VADDPD  (DX)(R9*8), Y7, Y7
	VADDPD  32(DX)(R9*8), Y12, Y12
	VMOVUPD Y7, (DX)(R9*8)
	VMOVUPD Y12, 32(DX)(R9*8)
	VMULPD  Y4, Y3, Y8
	VMULPD  Y9, Y3, Y13
	VADDPD  (CX)(R9*8), Y8, Y8
	VADDPD  32(CX)(R9*8), Y13, Y13
	VMOVUPD Y8, (CX)(R9*8)
	VMOVUPD Y13, 32(CX)(R9*8)
	ADDQ    $8, R9
	JMP     axpy4_loop8

axpy4_loop4:
	CMPQ R9, R8
	JGE  axpy4_done
	VMOVUPD (BX)(R9*8), Y4
	VMULPD  Y4, Y0, Y5
	VADDPD  (DI)(R9*8), Y5, Y5
	VMOVUPD Y5, (DI)(R9*8)
	VMULPD  Y4, Y1, Y6
	VADDPD  (SI)(R9*8), Y6, Y6
	VMOVUPD Y6, (SI)(R9*8)
	VMULPD  Y4, Y2, Y7
	VADDPD  (DX)(R9*8), Y7, Y7
	VMOVUPD Y7, (DX)(R9*8)
	VMULPD  Y4, Y3, Y8
	VADDPD  (CX)(R9*8), Y8, Y8
	VMOVUPD Y8, (CX)(R9*8)
	ADDQ    $4, R9
	JMP     axpy4_loop4

axpy4_done:
	VZEROUPPER
	RET

// func axpy1avx2(o, bp *float64, v float64, n int)
// o[j] += v * bp[j] for j in [0, n); n must be a multiple of 4.
TEXT ·axpy1avx2(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), DI
	MOVQ bp+8(FP), BX
	VBROADCASTSD v+16(FP), Y0
	MOVQ n+24(FP), R8
	XORQ R9, R9
	MOVQ R8, R10
	ANDQ $-16, R10 // 16-column unrolled portion

axpy1_loop16:
	CMPQ R9, R10
	JGE  axpy1_loop4
	VMOVUPD (BX)(R9*8), Y4
	VMOVUPD 32(BX)(R9*8), Y5
	VMOVUPD 64(BX)(R9*8), Y6
	VMOVUPD 96(BX)(R9*8), Y7
	VMULPD  Y4, Y0, Y4
	VMULPD  Y5, Y0, Y5
	VMULPD  Y6, Y0, Y6
	VMULPD  Y7, Y0, Y7
	VADDPD  (DI)(R9*8), Y4, Y4
	VADDPD  32(DI)(R9*8), Y5, Y5
	VADDPD  64(DI)(R9*8), Y6, Y6
	VADDPD  96(DI)(R9*8), Y7, Y7
	VMOVUPD Y4, (DI)(R9*8)
	VMOVUPD Y5, 32(DI)(R9*8)
	VMOVUPD Y6, 64(DI)(R9*8)
	VMOVUPD Y7, 96(DI)(R9*8)
	ADDQ    $16, R9
	JMP     axpy1_loop16

axpy1_loop4:
	CMPQ R9, R8
	JGE  axpy1_done
	VMOVUPD (BX)(R9*8), Y4
	VMULPD  Y4, Y0, Y4
	VADDPD  (DI)(R9*8), Y4, Y4
	VMOVUPD Y4, (DI)(R9*8)
	ADDQ    $4, R9
	JMP     axpy1_loop4

axpy1_done:
	VZEROUPPER
	RET
