package tensor

import (
	"runtime"
	"sync"
)

// The kernel pool is a process-wide set of persistent worker goroutines
// that large tensor kernels band their work across. Submitting a band is
// one struct send on a buffered channel — no per-call goroutine spawn,
// no closure allocation — so a training step that issues thousands of
// GEMMs over its lifetime stays allocation-free in steady state.
//
// Tasks are plain value structs tagged with an op code. The submitting
// goroutine always executes the first band itself (the pool only needs
// poolSize-1 workers to saturate the machine), and if the queue is full
// it runs the band inline instead of blocking, so submission can never
// deadlock even when many engine workers issue kernels concurrently.

type kernelOp uint8

const (
	opMatMulRows kernelOp = iota
	opMatMulCols
	opTransB
	opTransA
	opChunkAcc
	opIm2Col
	opCol2Im
)

// kernelTask is one band of one kernel invocation. lo/hi select the band
// along the op's banded dimension (rows, columns or images); chunk and
// geom carry the extra operands of the chunked-accumulate and im2col /
// col2im ops.
type kernelTask struct {
	op     kernelOp
	out    *Dense
	a, b   *Dense
	lo, hi int
	chunk  int
	geom   ConvGeom
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolSize  int
	taskQueue chan kernelTask
	wgPool    = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	if poolSize <= 1 {
		return // single-proc: everything runs inline
	}
	taskQueue = make(chan kernelTask, 4*poolSize)
	for w := 0; w < poolSize-1; w++ {
		go func() {
			for t := range taskQueue {
				runKernel(t)
				t.wg.Done()
			}
		}()
	}
}

func runKernel(t kernelTask) {
	switch t.op {
	case opMatMulRows:
		matMulRowsCols(t.out, t.a, t.b, t.lo, t.hi, 0, t.b.Shape[1])
	case opMatMulCols:
		matMulRowsCols(t.out, t.a, t.b, 0, t.a.Shape[0], t.lo, t.hi)
	case opTransB:
		matMulTransBRange(t.out, t.a, t.b, t.lo, t.hi)
	case opTransA:
		matMulTransARange(t.out, t.a, t.b, t.lo, t.hi)
	case opChunkAcc:
		addMatMulTransBChunkedRange(t.out, t.a, t.b, t.chunk, t.lo, t.hi)
	case opIm2Col:
		im2ColBatchedRange(t.out, t.a, t.geom, t.lo, t.hi)
	case opCol2Im:
		col2ImBatchedRange(t.out, t.a, t.geom, t.lo, t.hi)
	}
}

// parallelBands splits [0, span) into one band per worker and runs t's
// kernel over them, executing the first band on the calling goroutine.
// Bands of a single invocation never overlap along the banded dimension,
// so kernels need no further synchronization.
func parallelBands(t kernelTask, span int) {
	poolOnce.Do(startPool)
	workers := poolSize
	if workers > span {
		workers = span
	}
	if workers <= 1 || taskQueue == nil {
		t.lo, t.hi = 0, span
		runKernel(t)
		return
	}
	band := (span + workers - 1) / workers
	wg := wgPool.Get().(*sync.WaitGroup)
	t.wg = wg
	for lo := band; lo < span; lo += band {
		bt := t
		bt.lo, bt.hi = lo, min(lo+band, span)
		wg.Add(1)
		select {
		case taskQueue <- bt:
		default: // queue saturated: run the band inline rather than block
			runKernel(bt)
			wg.Done()
		}
	}
	t.lo, t.hi = 0, band
	runKernel(t)
	wg.Wait()
	wgPool.Put(wg)
}
