// Package benchrun defines the repository's tracked benchmark suite: a
// fixed set of micro benchmarks (hot tensor/nn kernels) and macro
// benchmarks (one client's local round, a short federated run) measured
// with testing.Benchmark and serialized to BENCH_<rev>.json files that
// live in the repository root.
//
// The same benchmark bodies back the `go test -bench` entry points in
// bench_test.go and the `haccs-bench -bench` runner, so numbers from CI,
// local `make bench-json` runs and the committed trajectory files are
// produced by identical workloads. Every workload is seeded, sized
// deliberately (CIFAR-shaped conv geometry, LeNet train steps, a
// 100-client Hellinger matrix) and uses only the package's stable public
// APIs so the suite keeps compiling across hot-path rewrites — that is
// what makes the JSON trajectory comparable between revisions.
package benchrun

import (
	"math"
	"testing"

	"haccs/internal/checkpoint"
	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/fleet"
	"haccs/internal/nn"
	"haccs/internal/rounds"
	"haccs/internal/simnet"
	"haccs/internal/sketch"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
	"haccs/internal/tensor"
)

// seed keeps every tracked benchmark deterministic.
const seed = 1

// Entry is one named benchmark of the tracked suite.
type Entry struct {
	// Name is the stable identifier results are keyed by across
	// revisions; renaming an entry breaks the trajectory.
	Name string
	// Bench is the benchmark body, written against testing.B exactly
	// like a normal benchmark function.
	Bench func(b *testing.B)
	// RoundsPerOp, when non-zero, declares that one benchmark op spans
	// that many federated rounds, so the report can derive a per-round
	// wall time for macro entries.
	RoundsPerOp int
}

// Suite returns the tracked benchmark suite in report order.
func Suite() []Entry {
	return []Entry{
		{Name: "conv_forward", Bench: ConvForward},
		{Name: "conv_train", Bench: ConvTrain},
		{Name: "train_step_lenet", Bench: TrainStepLeNet},
		{Name: "train_step_mlp", Bench: TrainStepMLP},
		{Name: "matmul_128x256x128", Bench: MatMul},
		{Name: "local_train_round", Bench: LocalTrainRound},
		{Name: "engine_run_5rounds", Bench: EngineRun, RoundsPerOp: engineRounds},
		{Name: "rounds_driver_overhead", Bench: RoundsDriverOverhead, RoundsPerOp: driverRounds},
		{Name: "async_round_throughput", Bench: AsyncRoundThroughput, RoundsPerOp: asyncCycles},
		{Name: "span_nil_tracer", Bench: SpanNilTracer},
		{Name: "checkpoint_encode", Bench: CheckpointEncode},
		{Name: "checkpoint_disabled", Bench: CheckpointDisabled},
		{Name: "fleet_record_disabled", Bench: FleetRecordDisabled},
		{Name: "runtime_sample_disabled", Bench: RuntimeSampleDisabled},
		{Name: "hellinger_matrix_100", Bench: HellingerMatrix100},
		{Name: "sketch_cluster_100k", Bench: SketchCluster100k},
		{Name: "sketch_assign", Bench: SketchAssign},
	}
}

// cifarConvGeom is the first-layer geometry of the synthetic-CIFAR LeNet:
// a 3×32×32 image under a 5×5 valid convolution.
func cifarConvGeom() tensor.ConvGeom {
	return tensor.ConvGeom{Channels: 3, Height: 32, Width: 32, Kernel: 5, Stride: 1, Pad: 0}
}

// convBatch is the minibatch size used by the conv and train-step
// benchmarks, matching the experiments' local batch size of 32.
const convBatch = 32

// ConvForward measures the forward pass of the synthetic-CIFAR first
// conv layer over one 32-image minibatch — the single hottest kernel of
// local training.
func ConvForward(b *testing.B) {
	rng := stats.NewRNG(seed)
	layer := nn.NewConv2D(cifarConvGeom(), 6, rng)
	x := tensor.New(convBatch, cifarConvGeom().Channels*32*32)
	x.RandNormal(0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x)
	}
}

// ConvTrain measures a full forward+backward pass of the same conv
// layer, covering the im2col, GEMM, weight-gradient and col2im paths.
func ConvTrain(b *testing.B) {
	rng := stats.NewRNG(seed)
	g := cifarConvGeom()
	layer := nn.NewConv2D(g, 6, rng)
	x := tensor.New(convBatch, g.Channels*g.Height*g.Width)
	x.RandNormal(0, 1, rng)
	grad := tensor.New(convBatch, layer.OutSize())
	grad.RandNormal(0, 0.1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x)
		layer.Backward(grad)
		layer.ZeroGrads()
	}
}

// TrainStepLeNet measures one SGD training step (forward, loss,
// backward, update) of the synthetic-CIFAR LeNet on a 32-image batch.
// Its allocs/op is the tracked "allocation-free hot path" signal.
func TrainStepLeNet(b *testing.B) {
	rng := stats.NewRNG(seed)
	net := nn.NewLeNet(3, 32, 32, 10, 6, 16, rng)
	opt := nn.NewSGD(0.05, 0.9, 0)
	x := tensor.New(convBatch, 3*32*32)
	x.RandNormal(0, 1, rng)
	y := make([]int, convBatch)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	// Warm the scratch arenas and momentum state so the measured loop
	// reflects steady-state rounds.
	nn.TrainBatch(net, opt, x, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.TrainBatch(net, opt, x, y)
	}
}

// TrainStepMLP measures one SGD training step of the MLP family the
// Quick-scale experiments train.
func TrainStepMLP(b *testing.B) {
	rng := stats.NewRNG(seed)
	net := nn.NewMLP(192, []int{64}, 10, rng)
	opt := nn.NewSGD(0.05, 0.9, 0)
	x := tensor.New(convBatch, 192)
	x.RandNormal(0, 1, rng)
	y := make([]int, convBatch)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	nn.TrainBatch(net, opt, x, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.TrainBatch(net, opt, x, y)
	}
}

// MatMul measures the GEMM kernel on a training-shaped 128×256×128
// product.
func MatMul(b *testing.B) {
	rng := stats.NewRNG(seed)
	x := tensor.New(128, 256)
	w := tensor.New(256, 128)
	x.RandNormal(0, 1, rng)
	w.RandNormal(0, 1, rng)
	dst := tensor.New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, w)
	}
	b.SetBytes(int64(8 * (x.Size() + w.Size() + dst.Size())))
}

// LocalTrainRound measures one client's full local update — the
// engine's inner loop including batch staging.
func LocalTrainRound(b *testing.B) {
	spec := dataset.SyntheticCIFAR().Compact(8, 8)
	gen := dataset.NewGenerator(spec, seed)
	rng := stats.NewRNG(2)
	ld := dataset.MajorityNoise(0, 0.75, []int{1, 2, 3}, dataset.DefaultMajorityFractions)
	train := gen.Generate(ld.Draw(200, rng), rng)
	client := &fl.Client{ID: 0, Data: dataset.ClientData{Train: train, Test: train}}
	arch := nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{32}, Classes: 10}
	model := arch.Build(stats.NewRNG(3))
	global := model.ParamsVector()
	cfg := fl.LocalTrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.LocalTrain(model, global, cfg, stats.NewRNG(uint64(i)))
	}
}

// engineRounds is the round count of the EngineRun macro benchmark.
const engineRounds = 5

// EngineRun measures a full 5-round federated run (selection, parallel
// local training, aggregation, evaluation) on a 12-client MLP workload.
// Dividing its ns/op by engineRounds gives the tracked round wall time.
func EngineRun(b *testing.B) {
	spec := dataset.SyntheticCIFAR().Compact(8, 8)
	planRNG := stats.NewRNG(stats.DeriveSeed(seed, 14))
	plan := dataset.MajorityNoisePlan(12, 10, 60, 80, planRNG)
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, 10))
	dataRNG := stats.NewRNG(stats.DeriveSeed(seed, 110))
	profRNG := stats.NewRNG(stats.DeriveSeed(seed, 11))
	clientData := plan.Materialize(gen, 0.8, dataRNG)
	roster := make([]*fl.Client, len(clientData))
	for i, cd := range clientData {
		roster[i] = &fl.Client{ID: i, Data: cd, Profile: simnet.SampleProfile(profRNG)}
	}
	cfg := fl.Config{
		Arch:                nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{16}, Classes: 10},
		Seed:                seed,
		Local:               fl.LocalTrainConfig{Epochs: 1, BatchSize: 32, LR: 0.05},
		ClientsPerRound:     4,
		MaxRounds:           engineRounds,
		EvalEvery:           engineRounds,
		PerSampleComputeSec: 0.01,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.NewEngine(cfg, roster, newRoundRobin()).Run()
	}
}

// driverRounds is the round count of the RoundsDriverOverhead benchmark.
const driverRounds = 100

// instantProxy returns a fixed parameter vector with no training work,
// so the benchmark isolates pure orchestration cost.
type instantProxy struct {
	id     int
	params []float64
}

func (p *instantProxy) Train(round, worker, slot int, _ []float64, _ telemetry.SpanContext) (rounds.Result, error) {
	return rounds.Result{ClientID: p.id, Params: p.params, NumSamples: 100, Loss: 1}, nil
}

func (p *instantProxy) Latency() float64 { return float64(p.id + 1) }

type instantTransport struct{ proxies []rounds.Proxy }

func (t instantTransport) Proxies() []rounds.Proxy { return t.proxies }
func (t instantTransport) Parallelism() int        { return 4 }

// RoundsDriverOverhead measures the shared round driver's per-round
// orchestration cost — selection, worker fan-out, collection, FedAvg —
// over instant no-op clients, tracking what the runtime extraction adds
// on top of local training itself. One op is driverRounds rounds over a
// 32-client roster with k=8 and a 1k-parameter model.
func RoundsDriverOverhead(b *testing.B) {
	const nClients, dim = 32, 1000
	proxies := make([]rounds.Proxy, nClients)
	for i := range proxies {
		params := make([]float64, dim)
		for j := range params {
			params[j] = float64(i)
		}
		proxies[i] = &instantProxy{id: i, params: params}
	}
	strat := newRoundRobin()
	strat.Init(make([]fl.ClientInfo, nClients), stats.NewRNG(seed))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := rounds.NewDriver(rounds.Config{ClientsPerRound: 8},
			instantTransport{proxies}, strat, make([]float64, dim))
		for r := 0; r < driverRounds; r++ {
			d.RunRound(r)
		}
	}
}

// asyncCycles is the scheduling-cycle count of the AsyncRoundThroughput
// benchmark.
const asyncCycles = 100

// tailProxy is an instant no-op client with an explicit latency, so the
// async benchmark can shape a heavy-tailed virtual latency distribution
// independent of client IDs.
type tailProxy struct {
	instantProxy
	lat float64
}

func (p *tailProxy) Latency() float64 { return p.lat }

// AsyncRoundThroughput measures the buffered async driver's pure
// orchestration throughput — eager dispatch, event-queue drain,
// staleness-weighted buffer flush — over a 256-client fleet with a
// deliberately heavy-tailed latency distribution (every 16th client is
// 40x slower than its peers, the regime the async runtime exists for).
// One op is asyncCycles scheduling cycles at concurrency 32 with a
// 16-deep buffer and a 1k-parameter model; the updates/s metric is the
// aggregated-updates wall throughput.
func AsyncRoundThroughput(b *testing.B) {
	const nClients, dim, concurrency, bufferK = 256, 1000, 32, 16
	proxies := make([]rounds.Proxy, nClients)
	for i := range proxies {
		params := make([]float64, dim)
		for j := range params {
			params[j] = float64(i)
		}
		lat := 1 + float64(i%7)
		if i%16 == 0 {
			lat *= 40
		}
		proxies[i] = &tailProxy{instantProxy: instantProxy{id: i, params: params}, lat: lat}
	}
	strat := newRoundRobin()
	strat.Init(make([]fl.ClientInfo, nClients), stats.NewRNG(seed))
	updates := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := rounds.NewAsyncDriver(rounds.Config{ClientsPerRound: concurrency},
			rounds.AsyncConfig{BufferK: bufferK, MaxStaleness: 32},
			instantTransport{proxies}, strat, make([]float64, dim))
		for r := 0; r < asyncCycles; r++ {
			updates += len(d.RunRound(r).Reporters)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(updates)/sec, "updates/s")
	}
}

// SpanNilTracer measures the fully instrumented span path with tracing
// off: one root, one phase child, one per-client child and their Ends,
// exactly the shape the round driver executes per dispatch. The tracked
// contract is 0 allocs/op and single-digit nanoseconds — the guard that
// keeps "instrument everything" free for the default untraced run
// (bench-guard fails the build if allocations creep in).
func SpanNilTracer(b *testing.B) {
	var tr *telemetry.SpanTracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.Root("round", i)
		sp := root.Child("dispatch")
		ts := sp.ChildClient("train", 3)
		_ = ts.Context()
		ts.End()
		sp.End()
		root.End()
	}
}

// CheckpointEncode measures capturing and gob-encoding one run
// snapshot whose model component is the paper-scale LeNet parameter
// vector — the dominant cost of a per-round checkpoint before it
// reaches the disk. SetBytes is the raw parameter payload, so MB/s
// reads as serialization throughput.
func CheckpointEncode(b *testing.B) {
	rng := stats.NewRNG(seed)
	net := nn.NewLeNet(3, 32, 32, 10, 6, 16, rng)
	params := net.ParamsVector()
	comps := []checkpoint.Component{{
		Name: "model",
		S: checkpoint.Model{
			Params:    func() []float64 { return params },
			SetParams: func([]float64) error { return nil },
		},
	}}
	b.ReportAllocs()
	b.SetBytes(int64(8 * len(params)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := checkpoint.Capture(i+1, comps)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snap.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// CheckpointDisabled pins the cost the checkpoint hook adds to the
// round hot path when checkpointing is off: a nil Saver's MaybeSave
// must stay a zero-allocation no-op (the contract
// checkpoint.TestNilSaverZeroAllocs enforces; this entry tracks it in
// the benchmark trajectory).
func CheckpointDisabled(b *testing.B) {
	var s *checkpoint.Saver
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if saved, err := s.MaybeSave(i + 1); saved || err != nil {
			b.Fatal("nil saver must never save or fail")
		}
	}
}

// FleetRecordDisabled pins the cost the fleet health hook adds to the
// round hot path when observability is off: a nil *fleet.Registry's
// ObserveRound and State must stay zero-allocation no-ops, exactly
// like the nil checkpoint Saver and nil span tracer it sits beside.
func FleetRecordDisabled(b *testing.B) {
	var r *fleet.Registry
	obs := fleet.RoundObservation{
		Round:    1,
		Selected: []int{0, 1, 2},
		Reports:  []fleet.ClientReport{{ClientID: 0, NumSamples: 10, VirtualSec: 1}},
		Cut:      []int{1},
		Clock:    1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ObserveRound(obs)
		if r.State().Rounds != 0 {
			b.Fatal("nil registry must record nothing")
		}
	}
}

// RuntimeSampleDisabled pins the cost the runtime self-metrics hook
// adds when observability is off: a nil *telemetry.RuntimeCollector's
// SampleOnce must stay a zero-allocation no-op, joining the nil span
// tracer, nil checkpoint saver and nil fleet registry contracts that
// keep the uninstrumented path free.
func RuntimeSampleDisabled(b *testing.B) {
	var c *telemetry.RuntimeCollector
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SampleOnce()
		c.Start()
		c.Stop()
	}
}

// roundRobin is a minimal deterministic strategy for the engine macro
// benchmark: it rotates through the roster without any scheduler cost,
// so the measurement isolates the engine + training hot path.
type roundRobin struct {
	n    int
	next int
}

func newRoundRobin() fl.Strategy { return &roundRobin{} }

func (r *roundRobin) Name() string { return "roundrobin" }

func (r *roundRobin) Init(infos []fl.ClientInfo, _ *stats.RNG) { r.n = len(infos) }

func (r *roundRobin) Select(_ int, available []bool, k int) []int {
	out := make([]int, 0, k)
	for scanned := 0; scanned < r.n && len(out) < k; scanned++ {
		id := r.next
		r.next = (r.next + 1) % r.n
		if available[id] {
			out = append(out, id)
		}
	}
	return out
}

func (r *roundRobin) Update(int, []int, []float64) {}

// HellingerMatrix100 measures the server's pairwise distance matrix for
// a 100-client roster — the O(n²) input to clustering.
func HellingerMatrix100(b *testing.B) {
	rng := stats.NewRNG(seed)
	hists := make([]*stats.Histogram, 100)
	for i := range hists {
		h := stats.NewLabelHistogram(10)
		for j := 0; j < 500; j++ {
			h.AddLabel(rng.Intn(10))
		}
		hists[i] = h
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.FromFunc(len(hists), func(i, j int) float64 {
			return stats.HistogramHellinger(hists[i], hists[j])
		})
	}
}

// sketchBenchSummaries builds n synthetic P(y) summaries drawn from
// groups well-separated majority-label distributions (75% majority mass,
// the standard workloads' shape) with per-client multinomial-scale
// jitter for a 2000-sample device dataset. Counts are jittered directly
// rather than sampled so building a 100k-client population stays cheap.
func sketchBenchSummaries(n, classes, groups int) []core.Summary {
	rng := stats.NewRNG(seed)
	const samples = 2000
	sums := make([]core.Summary, n)
	for i := range sums {
		h := stats.NewLabelHistogram(classes)
		major := i % groups % classes
		for c := 0; c < classes; c++ {
			p := 0.25 / float64(classes)
			if c == major {
				p += 0.75
			}
			mean := p * samples
			cnt := mean + rng.Normal(0, math.Sqrt(mean*(1-p)))
			if cnt < 0 {
				cnt = 0
			}
			h.Counts[c] = cnt
		}
		sums[i] = core.Summary{Kind: core.PY, Label: h}
	}
	return sums
}

// SketchCluster100k measures a full sketch-backend clustering of a
// 100k-client fleet: every client routed through the representative
// index plus OPTICS over the K ≪ N representatives. Memory stays
// O(N·sketch + K²); the dense path's N×N matrix would need ~40 GB here.
func SketchCluster100k(b *testing.B) {
	const n = 100_000
	sums := sketchBenchSummaries(n, 10, 20)
	infos := make([]fl.ClientInfo, n)
	for i := range infos {
		infos[i] = fl.ClientInfo{ID: i, Latency: float64(1 + i%37), NumSamples: 200}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewScheduler(core.Config{Kind: core.PY, Rho: 0.5, Backend: core.SketchBackend,
			Sketch: core.SketchOptions{Dim: 32}}, sums)
		s.Init(infos, stats.NewRNG(seed))
		if s.NumClusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}

// SketchAssign measures the steady-state per-client assignment kernel
// (encode + nearest-representative routing), the cost one summary
// update pays on the sketch backend. Its allocs/op is the tracked
// "zero-allocation churn path" signal.
func SketchAssign(b *testing.B) {
	rng := stats.NewRNG(seed)
	sk := sketch.New(sketch.Config{Dim: 32, Seed: seed})
	idx := sketch.NewIndex(1000, sk.Dim(), 0, nil)
	amp := make([]float64, 10)
	enc := make([]float64, sk.Dim())
	for c := 0; c < 1000; c++ {
		p := make([]float64, 10)
		total := 0.0
		for j := range p {
			p[j] = 0.05 + rng.Float64()*0.05
			total += p[j]
		}
		p[c%10] += 3
		total += 3
		for j := range p {
			amp[j] = math.Sqrt(p[j] / total)
		}
		sk.SketchInto(enc, amp)
		idx.Observe(c, enc)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.SketchInto(enc, amp)
		idx.Observe(i%1000, enc)
	}
}
