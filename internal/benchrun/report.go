package benchrun

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// RoundWallNs is the derived per-federated-round wall time for
	// macro entries (0 for micro benchmarks).
	RoundWallNs float64 `json:"round_wall_ns,omitempty"`
}

// Report is the serialized form of one full suite run — the unit of the
// in-repo BENCH_<rev>.json trajectory.
type Report struct {
	Schema     int      `json:"schema"`
	Rev        string   `json:"rev"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	When       string   `json:"when"`
	Results    []Result `json:"results"`
}

// Run executes the tracked suite with testing.Benchmark and returns the
// report stamped with rev.
func Run(rev string) *Report {
	rep := &Report{
		Schema:     1,
		Rev:        rev,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		When:       time.Now().UTC().Format(time.RFC3339),
	}
	for _, e := range Suite() {
		br := testing.Benchmark(e.Bench)
		r := Result{
			Name:        e.Name,
			N:           br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if e.RoundsPerOp > 0 {
			r.RoundWallNs = r.NsPerOp / float64(e.RoundsPerOp)
		}
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// WriteJSON writes the report to path with stable formatting.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchrun: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchrun: write report: %w", err)
	}
	return nil
}

// ReadJSON loads a previously written report.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchrun: read report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchrun: parse %s: %w", path, err)
	}
	return &rep, nil
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== benchmark suite (rev %s, %s, GOMAXPROCS=%d) ==\n",
		r.Rev, r.GoVersion, r.GOMAXPROCS)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-24s %14.0f ns/op %10d B/op %6d allocs/op",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if res.RoundWallNs > 0 {
			fmt.Fprintf(&b, "  (%.2f ms/round)", res.RoundWallNs/1e6)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Compare renders a speedup table of r against a baseline report,
// matching results by name; entries present in only one report are
// listed without a ratio.
func (r *Report) Compare(base *Report) string {
	byName := make(map[string]Result, len(base.Results))
	for _, res := range base.Results {
		byName[res.Name] = res
	}
	names := make([]string, 0, len(r.Results))
	for _, res := range r.Results {
		names = append(names, res.Name)
	}
	sort.Strings(names)
	cur := make(map[string]Result, len(r.Results))
	for _, res := range r.Results {
		cur[res.Name] = res
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s vs baseline %s ==\n", r.Rev, base.Rev)
	for _, name := range names {
		now := cur[name]
		old, ok := byName[name]
		if !ok || now.NsPerOp == 0 {
			fmt.Fprintf(&b, "%-24s (no baseline)\n", name)
			continue
		}
		fmt.Fprintf(&b, "%-24s %8.2fx faster  (%.0f -> %.0f ns/op, allocs %d -> %d)\n",
			name, old.NsPerOp/now.NsPerOp, old.NsPerOp, now.NsPerOp,
			old.AllocsPerOp, now.AllocsPerOp)
	}
	return b.String()
}

// GitRev returns the short HEAD revision of the working tree, or
// "unknown" when git is unavailable.
func GitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
