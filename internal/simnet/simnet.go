// Package simnet models the system heterogeneity of the HACCS testbed.
// The paper injects time-based delays to emulate differences in
// computation, bandwidth and network latency across clients (Table II);
// this package reproduces those distributions exactly and converts them
// into deterministic virtual-time latencies, so experiments never sleep
// and whole training runs are reproducible from a seed.
package simnet

import "fmt"

// Category is a device performance tier from Table II of the paper.
type Category int

// Performance categories with assignment probabilities 60/20/15/5%.
const (
	Fast Category = iota
	Medium
	Slow
	VerySlow
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Fast:
		return "fast"
	case Medium:
		return "medium"
	case Slow:
		return "slow"
	case VerySlow:
		return "very-slow"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// CategoryProbabilities are the Table II assignment probabilities for
// fast, medium, slow and very slow devices.
var CategoryProbabilities = []float64{0.60, 0.20, 0.15, 0.05}

// categoryRanges encodes Table II. Compute delay is a multiplier applied
// on top of the baseline computation time ("no delay" = 1.0x); bandwidth
// is in Mbps; network latency is one-way in milliseconds and identical
// across categories.
var categoryRanges = [numCategories]struct {
	computeLo, computeHi     float64
	bandwidthLo, bandwidthHi float64
}{
	Fast:     {1.0, 1.0, 75, 100},
	Medium:   {1.5, 2.0, 50, 75},
	Slow:     {2.0, 2.5, 25, 50},
	VerySlow: {2.5, 3.0, 1, 25},
}

// Network latency bounds (ms), common to all categories (Table II).
const (
	netLatencyLoMS = 20
	netLatencyHiMS = 200
)

// Profile is one client's sampled system characteristics.
type Profile struct {
	Category Category
	// ComputeMultiplier scales baseline computation time (>= 1).
	ComputeMultiplier float64
	// BandwidthMbps is the link bandwidth in megabits per second.
	BandwidthMbps float64
	// NetLatencySec is the one-way network latency in seconds.
	NetLatencySec float64
}

// rng is the subset of stats.RNG simnet needs; taking an interface keeps
// the package decoupled and easy to drive from table-driven tests.
type rng interface {
	Float64() float64
	Uniform(lo, hi float64) float64
}

// SampleCategory draws a performance category with the Table II
// probabilities.
func SampleCategory(r rng) Category {
	u := r.Float64()
	acc := 0.0
	for c, p := range CategoryProbabilities {
		acc += p
		if u < acc {
			return Category(c)
		}
	}
	return VerySlow
}

// SampleProfile draws a full device profile: a category, then uniform
// draws over that category's Table II intervals.
func SampleProfile(r rng) Profile {
	return ProfileForCategory(SampleCategory(r), r)
}

// ProfileForCategory draws the interval attributes for a fixed category.
func ProfileForCategory(c Category, r rng) Profile {
	if c < 0 || c >= numCategories {
		panic(fmt.Sprintf("simnet: invalid category %d", int(c)))
	}
	rg := categoryRanges[c]
	cm := rg.computeLo
	if rg.computeHi > rg.computeLo {
		cm = r.Uniform(rg.computeLo, rg.computeHi)
	}
	return Profile{
		Category:          c,
		ComputeMultiplier: cm,
		BandwidthMbps:     r.Uniform(rg.bandwidthLo, rg.bandwidthHi),
		NetLatencySec:     r.Uniform(netLatencyLoMS, netLatencyHiMS) / 1000,
	}
}

// SampleProfiles draws n independent profiles.
func SampleProfiles(n int, r rng) []Profile {
	out := make([]Profile, n)
	for i := range out {
		out[i] = SampleProfile(r)
	}
	return out
}

// RoundLatency returns the virtual seconds a client needs to complete one
// training round, as defined in the paper (§IV-D): "the expected time
// required to transfer the model parameters to and from the client, plus
// the time required to perform a single epoch."
//
//	latency = computeSec * ComputeMultiplier            (local epoch)
//	        + 2 * modelBytes*8 / (BandwidthMbps * 1e6)  (down + up transfer)
//	        + 2 * NetLatencySec                          (request/response RTT)
func (p Profile) RoundLatency(computeSec float64, modelBytes int) float64 {
	if computeSec < 0 || modelBytes < 0 {
		panic("simnet: negative latency inputs")
	}
	transfer := 2 * float64(modelBytes) * 8 / (p.BandwidthMbps * 1e6)
	return computeSec*p.ComputeMultiplier + transfer + 2*p.NetLatencySec
}
