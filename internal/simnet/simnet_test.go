package simnet

import (
	"math"
	"testing"

	"haccs/internal/stats"
)

func TestCategoryString(t *testing.T) {
	want := map[Category]string{Fast: "fast", Medium: "medium", Slow: "slow", VerySlow: "very-slow"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if Category(99).String() != "Category(99)" {
		t.Errorf("unknown category string %q", Category(99).String())
	}
}

func TestCategoryProbabilitiesSumToOne(t *testing.T) {
	sum := 0.0
	for _, p := range CategoryProbabilities {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("category probabilities sum to %v", sum)
	}
}

func TestSampleCategoryDistribution(t *testing.T) {
	r := stats.NewRNG(1)
	counts := make([]int, 4)
	n := 100000
	for i := 0; i < n; i++ {
		counts[SampleCategory(r)]++
	}
	for c, want := range CategoryProbabilities {
		got := float64(counts[c]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %v frequency %v, want ~%v", Category(c), got, want)
		}
	}
}

func TestProfileForCategoryRanges(t *testing.T) {
	r := stats.NewRNG(2)
	cases := []struct {
		c          Category
		cmLo, cmHi float64
		bwLo, bwHi float64
	}{
		{Fast, 1.0, 1.0, 75, 100},
		{Medium, 1.5, 2.0, 50, 75},
		{Slow, 2.0, 2.5, 25, 50},
		{VerySlow, 2.5, 3.0, 1, 25},
	}
	for _, tc := range cases {
		for i := 0; i < 500; i++ {
			p := ProfileForCategory(tc.c, r)
			if p.Category != tc.c {
				t.Fatalf("category not preserved")
			}
			if p.ComputeMultiplier < tc.cmLo || p.ComputeMultiplier > tc.cmHi {
				t.Fatalf("%v compute multiplier %v outside [%v,%v]", tc.c, p.ComputeMultiplier, tc.cmLo, tc.cmHi)
			}
			if p.BandwidthMbps < tc.bwLo || p.BandwidthMbps > tc.bwHi {
				t.Fatalf("%v bandwidth %v outside [%v,%v]", tc.c, p.BandwidthMbps, tc.bwLo, tc.bwHi)
			}
			if p.NetLatencySec < 0.020 || p.NetLatencySec > 0.200 {
				t.Fatalf("%v network latency %v outside [20ms,200ms]", tc.c, p.NetLatencySec)
			}
		}
	}
}

func TestProfileForCategoryInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProfileForCategory(Category(9), stats.NewRNG(1))
}

func TestSampleProfiles(t *testing.T) {
	r := stats.NewRNG(3)
	ps := SampleProfiles(50, r)
	if len(ps) != 50 {
		t.Fatalf("got %d profiles", len(ps))
	}
}

func TestRoundLatencyComposition(t *testing.T) {
	p := Profile{Category: Medium, ComputeMultiplier: 2, BandwidthMbps: 50, NetLatencySec: 0.1}
	// 1 second of compute, 1 MB model:
	// compute 2s + transfer 2*1e6*8/(50e6) = 0.32s + rtt 0.2s.
	got := p.RoundLatency(1, 1_000_000)
	want := 2 + 0.32 + 0.2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("RoundLatency = %v, want %v", got, want)
	}
}

func TestRoundLatencyMonotonic(t *testing.T) {
	r := stats.NewRNG(4)
	fast := ProfileForCategory(Fast, r)
	slow := ProfileForCategory(VerySlow, r)
	// Same network parameters to isolate compute ordering.
	slow.BandwidthMbps = fast.BandwidthMbps
	slow.NetLatencySec = fast.NetLatencySec
	if fast.RoundLatency(5, 1000) >= slow.RoundLatency(5, 1000) {
		t.Error("fast device not faster than very-slow at equal network")
	}
	// More data -> more time.
	if fast.RoundLatency(1, 1000) >= fast.RoundLatency(2, 1000) {
		t.Error("latency not increasing in compute time")
	}
	if fast.RoundLatency(1, 1000) >= fast.RoundLatency(1, 10_000_000) {
		t.Error("latency not increasing in model size")
	}
}

func TestRoundLatencyNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Profile{BandwidthMbps: 10}.RoundLatency(-1, 0)
}

func TestNoDropout(t *testing.T) {
	mask := NoDropout{}.Unavailable(5, 10)
	for i, down := range mask {
		if down {
			t.Fatalf("client %d unavailable under NoDropout", i)
		}
	}
}

func newRNGAdapter(seed uint64) interface{ Float64() float64 } {
	return stats.NewRNG(seed)
}

func TestTransientDropoutRate(t *testing.T) {
	d := TransientDropout{Rate: 0.1, Seed: 7, NewRNG: newRNGAdapter}
	down := 0
	epochs, n := 400, 50
	for e := 0; e < epochs; e++ {
		for _, m := range d.Unavailable(e, n) {
			if m {
				down++
			}
		}
	}
	rate := float64(down) / float64(epochs*n)
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("observed dropout rate %v, want ~0.1", rate)
	}
}

func TestTransientDropoutDeterministicPerEpoch(t *testing.T) {
	d := TransientDropout{Rate: 0.3, Seed: 9, NewRNG: newRNGAdapter}
	a := d.Unavailable(3, 20)
	b := d.Unavailable(3, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same epoch produced different masks")
		}
	}
	// Different epochs should (almost surely) differ.
	c := d.Unavailable(4, 20)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("epochs 3 and 4 produced identical masks (suspicious)")
	}
}

func TestTransientDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransientDropout{Rate: 1.5, Seed: 1, NewRNG: newRNGAdapter}.Unavailable(0, 5)
}

func TestPermanentDropout(t *testing.T) {
	d := PermanentDropout{Dropped: []int{1, 3}, FromEpoch: 2}
	// Before FromEpoch: everyone up.
	for _, m := range d.Unavailable(1, 5) {
		if m {
			t.Fatal("dropout before FromEpoch")
		}
	}
	// At and after FromEpoch: exactly the listed clients are down.
	for _, e := range []int{2, 10} {
		mask := d.Unavailable(e, 5)
		want := []bool{false, true, false, true, false}
		for i := range want {
			if mask[i] != want[i] {
				t.Fatalf("epoch %d mask %v", e, mask)
			}
		}
	}
	// Out-of-range indices are ignored.
	d2 := PermanentDropout{Dropped: []int{99}}
	for _, m := range d2.Unavailable(0, 3) {
		if m {
			t.Fatal("out-of-range drop index applied")
		}
	}
}
