package simnet

import (
	"fmt"
	"math"
)

// DropoutModel decides which clients are unavailable in a given epoch.
// The paper exercises three regimes: no dropout (scheduling experiments),
// per-epoch transient dropout with recovery (§V-C), and permanent dropout
// of individuals or whole groups (the §III motivation experiment).
type DropoutModel interface {
	// Unavailable returns the set of client indices (as a boolean mask
	// over n clients) that are down during the given epoch.
	Unavailable(epoch, n int) []bool
}

// NoDropout keeps every client available in every epoch.
type NoDropout struct{}

// Unavailable implements DropoutModel.
func (NoDropout) Unavailable(epoch, n int) []bool { return make([]bool, n) }

// bernoulliRNG is the RNG surface the transient model needs.
type bernoulliRNG interface {
	Float64() float64
}

// TransientDropout marks each client unavailable independently with
// probability Rate at the start of each epoch; clients recover at the
// end of the epoch (paper §V-C uses Rate = 0.10). The mask for an epoch
// is drawn from a stream derived from Seed and the epoch number only, so
// every selection strategy sees the identical dropout schedule — the
// paper seeds its RNGs the same way across strategies.
type TransientDropout struct {
	Rate float64
	Seed uint64
	// NewRNG constructs the per-epoch stream; injected so the package
	// does not depend on stats directly.
	NewRNG func(seed uint64) interface{ Float64() float64 }
}

// Unavailable implements DropoutModel.
func (t TransientDropout) Unavailable(epoch, n int) []bool {
	if t.Rate < 0 || t.Rate > 1 {
		panic("simnet: TransientDropout rate out of [0,1]")
	}
	r := t.NewRNG(t.Seed ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = r.Float64() < t.Rate
	}
	return mask
}

// SnapshotState implements checkpoint.Snapshotter. The per-epoch mask
// is a pure function of (Seed, epoch), so the schedule carries no
// mutable state — the payload records the configuration so a resumed
// run can verify it reproduces the identical dropout sequence.
func (t TransientDropout) SnapshotState() ([]byte, error) {
	if t.Rate < 0 || t.Rate > 1 {
		return nil, fmt.Errorf("simnet: TransientDropout rate %v out of [0,1]", t.Rate)
	}
	return fmt.Appendf(nil, "transient v1 rate=%x seed=%d", math.Float64bits(t.Rate), t.Seed), nil
}

// RestoreState implements checkpoint.Snapshotter: it verifies (bit
// for bit) that the configured schedule matches the snapshotted one
// rather than mutating anything, since the schedule is stateless.
func (t TransientDropout) RestoreState(data []byte) error {
	var rateBits, seed uint64
	if _, err := fmt.Sscanf(string(data), "transient v1 rate=%x seed=%d", &rateBits, &seed); err != nil {
		return fmt.Errorf("simnet: decode TransientDropout state %q: %w", data, err)
	}
	if rateBits != math.Float64bits(t.Rate) || seed != t.Seed {
		return fmt.Errorf("simnet: snapshot dropout (rate=%v seed=%d) does not match configured (rate=%v seed=%d)",
			math.Float64frombits(rateBits), seed, t.Rate, t.Seed)
	}
	return nil
}

// PermanentDropout removes a fixed set of clients from a given epoch
// onward, never recovering them — the §III motivation experiment drops
// 80 of 100 devices permanently (randomly or by whole groups).
type PermanentDropout struct {
	Dropped   []int
	FromEpoch int
}

// Unavailable implements DropoutModel.
func (p PermanentDropout) Unavailable(epoch, n int) []bool {
	mask := make([]bool, n)
	if epoch < p.FromEpoch {
		return mask
	}
	for _, i := range p.Dropped {
		if i >= 0 && i < n {
			mask[i] = true
		}
	}
	return mask
}

var (
	_ DropoutModel = NoDropout{}
	_ DropoutModel = TransientDropout{}
	_ DropoutModel = PermanentDropout{}
)
