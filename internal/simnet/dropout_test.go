package simnet

import (
	"strings"
	"testing"

	"haccs/internal/stats"
)

func transient(rate float64, seed uint64) TransientDropout {
	return TransientDropout{
		Rate:   rate,
		Seed:   seed,
		NewRNG: func(s uint64) interface{ Float64() float64 } { return stats.NewRNG(s) },
	}
}

// TestTransientDropoutInvalidRate pins that rates outside [0,1] are a
// loud programming error, not a silently clamped probability.
func TestTransientDropoutInvalidRate(t *testing.T) {
	for _, rate := range []float64{-0.01, -1, 1.0001, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v did not panic", rate)
				}
			}()
			transient(rate, 1).Unavailable(0, 10)
		}()
		if _, err := transient(rate, 1).SnapshotState(); err == nil {
			t.Errorf("SnapshotState accepted rate %v", rate)
		}
	}
	// Boundary rates are valid.
	for _, rate := range []float64{0, 1} {
		mask := transient(rate, 1).Unavailable(0, 10)
		for i, down := range mask {
			if down != (rate == 1) {
				t.Errorf("rate %v client %d down=%v", rate, i, down)
			}
		}
	}
}

// TestTransientDropoutMaskIdenticalAcrossStrategies pins the property
// the paper's cross-strategy comparison rests on: the per-epoch mask
// is a pure function of (Seed, epoch, n), so independently constructed
// models with the same seed — one per strategy under comparison — see
// the identical dropout schedule, regardless of evaluation order or
// how often a mask is recomputed.
func TestTransientDropoutMaskIdenticalAcrossStrategies(t *testing.T) {
	const n, epochs = 40, 20
	strategies := 5
	models := make([]TransientDropout, strategies)
	for i := range models {
		models[i] = transient(0.25, 99) // fresh value per "strategy run"
	}
	for epoch := 0; epoch < epochs; epoch++ {
		want := models[0].Unavailable(epoch, n)
		sawDown := false
		for s := 1; s < strategies; s++ {
			got := models[s].Unavailable(epoch, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("epoch %d client %d: strategy %d mask %v, strategy 0 mask %v", epoch, i, s, got[i], want[i])
				}
				sawDown = sawDown || got[i]
			}
		}
		// Re-querying the same epoch must also be stable (no hidden
		// stream advance inside the model).
		again := models[0].Unavailable(epoch, n)
		for i := range want {
			if again[i] != want[i] {
				t.Fatalf("epoch %d not idempotent at client %d", epoch, i)
			}
		}
		_ = sawDown
	}
}

// TestTransientDropoutSnapshotVerifies covers the checkpoint surface:
// the payload round-trips against an identical configuration and
// rejects a different rate or seed.
func TestTransientDropoutSnapshotVerifies(t *testing.T) {
	d := transient(0.1, 42)
	data, err := d.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := transient(0.1, 42).RestoreState(data); err != nil {
		t.Fatalf("identical config rejected: %v", err)
	}
	if err := transient(0.2, 42).RestoreState(data); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("different rate accepted: %v", err)
	}
	if err := transient(0.1, 43).RestoreState(data); err == nil {
		t.Fatal("different seed accepted")
	}
	if err := transient(0.1, 42).RestoreState([]byte("garbage")); err == nil {
		t.Fatal("garbage payload accepted")
	}
}
