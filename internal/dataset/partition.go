package dataset

import (
	"fmt"

	"haccs/internal/stats"
)

// LabelDist is a per-client categorical distribution over class labels,
// used to draw that client's local label sequence. It is the ground
// truth that HACCS's P(y) summaries estimate.
type LabelDist struct {
	Labels []int     // labels with positive probability
	Probs  []float64 // parallel probabilities, summing to 1
}

// Draw samples n labels from the distribution.
func (ld LabelDist) Draw(n int, rng *stats.RNG) []int {
	if len(ld.Labels) == 0 || len(ld.Labels) != len(ld.Probs) {
		panic("dataset: malformed LabelDist")
	}
	out := make([]int, n)
	for i := range out {
		out[i] = ld.Labels[rng.WeightedChoice(ld.Probs)]
	}
	return out
}

// MajorityNoise builds the paper's default per-client skew: one majority
// label holding majorFrac of the mass and len(noise) noise labels with
// the given fractions. The paper's default is 75% / 12% / 7% / 6%
// (§V-A); Fig. 8a uses 70/10/10/10.
func MajorityNoise(major int, majorFrac float64, noise []int, noiseFracs []float64) LabelDist {
	if len(noise) != len(noiseFracs) {
		panic("dataset: MajorityNoise noise label/fraction length mismatch")
	}
	total := majorFrac
	for _, f := range noiseFracs {
		total += f
	}
	if total <= 0 {
		panic("dataset: MajorityNoise with non-positive total mass")
	}
	labels := append([]int{major}, noise...)
	probs := append([]float64{majorFrac / total}, make([]float64, len(noiseFracs))...)
	for i, f := range noiseFracs {
		probs[i+1] = f / total
	}
	return LabelDist{Labels: labels, Probs: probs}
}

// DefaultMajorityFractions is the paper's standard noise-label split:
// majority 75%, then 12% / 7% / 6%.
var DefaultMajorityFractions = []float64{0.12, 0.07, 0.06}

// Uniform returns the IID distribution over classes 0..classes-1.
func Uniform(classes int) LabelDist {
	labels := make([]int, classes)
	probs := make([]float64, classes)
	for i := range labels {
		labels[i] = i
		probs[i] = 1 / float64(classes)
	}
	return LabelDist{Labels: labels, Probs: probs}
}

// UniformOver returns the uniform distribution over an explicit label
// subset.
func UniformOver(labels []int) LabelDist {
	if len(labels) == 0 {
		panic("dataset: UniformOver with empty label set")
	}
	probs := make([]float64, len(labels))
	for i := range probs {
		probs[i] = 1 / float64(len(labels))
	}
	return LabelDist{Labels: append([]int(nil), labels...), Probs: probs}
}

// PartitionPlan assigns one LabelDist and sample count to each client.
type PartitionPlan struct {
	Dists   []LabelDist
	Samples []int
	// Group optionally records a ground-truth group id per client (the
	// generating distribution), used to score clustering accuracy.
	Group []int
}

// NumClients returns the number of clients in the plan.
func (p *PartitionPlan) NumClients() int { return len(p.Dists) }

// IIDPlan gives every client the uniform distribution over all classes
// and identical sample counts — the paper's "no skew" sensitivity case,
// which also equalizes data volume across clients (§V-D1).
func IIDPlan(clients, classes, samplesPerClient int) *PartitionPlan {
	p := &PartitionPlan{}
	for i := 0; i < clients; i++ {
		p.Dists = append(p.Dists, Uniform(classes))
		p.Samples = append(p.Samples, samplesPerClient)
		p.Group = append(p.Group, 0)
	}
	return p
}

// KRandomLabelsPlan assigns each client k randomly chosen labels,
// uniformly weighted — the paper's moderate-skew case (5 labels per
// client on CIFAR-10).
func KRandomLabelsPlan(clients, classes, k, samplesPerClient int, rng *stats.RNG) *PartitionPlan {
	if k <= 0 || k > classes {
		panic("dataset: KRandomLabelsPlan with k out of range")
	}
	p := &PartitionPlan{}
	for i := 0; i < clients; i++ {
		labels := rng.SampleWithoutReplacement(classes, k)
		p.Dists = append(p.Dists, UniformOver(labels))
		p.Samples = append(p.Samples, samplesPerClient)
		p.Group = append(p.Group, -1) // no crisp ground-truth grouping
	}
	return p
}

// MajorityNoisePlan assigns each client one majority label (round-robin
// over classes so every label is somebody's majority) plus three random
// noise labels in the standard 75/12/7/6 proportions, with per-client
// sample counts varying uniformly in [minSamples, maxSamples] — the
// paper's default high-skew workload where "the amount of data available
// in each client varies" (§V-A).
func MajorityNoisePlan(clients, classes, minSamples, maxSamples int, rng *stats.RNG) *PartitionPlan {
	if minSamples <= 0 || maxSamples < minSamples {
		panic("dataset: MajorityNoisePlan with bad sample bounds")
	}
	p := &PartitionPlan{}
	for i := 0; i < clients; i++ {
		major := i % classes
		noise := pickNoiseLabels(classes, major, len(DefaultMajorityFractions), rng)
		p.Dists = append(p.Dists, MajorityNoise(major, 0.75, noise, DefaultMajorityFractions))
		n := minSamples
		if maxSamples > minSamples {
			n += rng.Intn(maxSamples - minSamples + 1)
		}
		p.Samples = append(p.Samples, n)
		p.Group = append(p.Group, major)
	}
	return p
}

// pickNoiseLabels chooses count distinct labels excluding the majority.
func pickNoiseLabels(classes, major, count int, rng *stats.RNG) []int {
	if count > classes-1 {
		count = classes - 1
	}
	pool := make([]int, 0, classes-1)
	for c := 0; c < classes; c++ {
		if c != major {
			pool = append(pool, c)
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:count]
}

// GroupPlan implements the motivation experiment's Table I layout:
// clients are divided into equal groups, each group holding data from
// exactly the listed labels (uniformly). The HACCS paper partitions 100
// clients into 10 groups of 2 labels each.
func GroupPlan(groupLabels [][]int, clientsPerGroup, samplesPerClient int) *PartitionPlan {
	p := &PartitionPlan{}
	for g, labels := range groupLabels {
		for c := 0; c < clientsPerGroup; c++ {
			p.Dists = append(p.Dists, UniformOver(labels))
			p.Samples = append(p.Samples, samplesPerClient)
			p.Group = append(p.Group, g)
		}
	}
	return p
}

// TableIGroups is the exact label-to-group assignment of the paper's
// Table I (10 groups × 2 labels over MNIST's 10 classes).
var TableIGroups = [][]int{
	{6, 7}, {1, 4}, {5, 9}, {2, 3}, {0, 4},
	{2, 5}, {6, 8}, {0, 9}, {7, 8}, {1, 3},
}

// PairedLabelPlan assigns exactly clientsPerLabel clients to each single
// label — the Fig. 8a clustering-accuracy setup (20 clients, exactly 2
// per CIFAR-10 label) with a 70/10/10/10 majority/noise split.
func PairedLabelPlan(classes, clientsPerLabel, samplesPerClient int, rng *stats.RNG) *PartitionPlan {
	p := &PartitionPlan{}
	for c := 0; c < classes; c++ {
		for k := 0; k < clientsPerLabel; k++ {
			noise := pickNoiseLabels(classes, c, 3, rng)
			p.Dists = append(p.Dists, MajorityNoise(c, 0.70, noise, []float64{0.10, 0.10, 0.10}))
			p.Samples = append(p.Samples, samplesPerClient)
			p.Group = append(p.Group, c)
		}
	}
	return p
}

// Materialize draws every client's local dataset from the plan using the
// shared generator, splitting each into train and test portions.
func (p *PartitionPlan) Materialize(gen *Generator, trainFrac float64, rng *stats.RNG) []ClientData {
	out := make([]ClientData, p.NumClients())
	for i := range out {
		labels := p.Dists[i].Draw(p.Samples[i], rng)
		full := gen.Generate(labels, rng)
		train, test := full.Split(trainFrac, rng)
		out[i] = ClientData{Train: train, Test: test, Group: p.Group[i]}
	}
	return out
}

// ClientData is one client's local train/test data plus its ground-truth
// generating group (or -1 when the plan has no crisp grouping).
type ClientData struct {
	Train *Dataset
	Test  *Dataset
	Group int
}

// String describes the client data volume.
func (c ClientData) String() string {
	return fmt.Sprintf("ClientData{train=%d test=%d group=%d}", c.Train.Len(), c.Test.Len(), c.Group)
}

// DirichletPlan assigns each client a label distribution drawn from a
// symmetric Dirichlet(alpha) over the classes — the standard non-IID
// partitioning knob in federated-learning benchmarks (smaller alpha =
// stronger skew; alpha -> infinity approaches IID). It generalizes the
// paper's discrete skew levels (Fig. 7) to a continuum.
func DirichletPlan(clients, classes int, alpha float64, minSamples, maxSamples int, rng *stats.RNG) *PartitionPlan {
	if minSamples <= 0 || maxSamples < minSamples {
		panic("dataset: DirichletPlan with bad sample bounds")
	}
	p := &PartitionPlan{}
	for i := 0; i < clients; i++ {
		probs := rng.Dirichlet(classes, alpha)
		labels := make([]int, classes)
		for c := range labels {
			labels[c] = c
		}
		p.Dists = append(p.Dists, LabelDist{Labels: labels, Probs: probs})
		n := minSamples
		if maxSamples > minSamples {
			n += rng.Intn(maxSamples - minSamples + 1)
		}
		p.Samples = append(p.Samples, n)
		// Ground-truth group: the dominant label (a soft proxy; with
		// small alpha most mass sits on one label).
		p.Group = append(p.Group, stats.ArgMaxFloat(probs))
	}
	return p
}
