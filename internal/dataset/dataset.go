// Package dataset generates the synthetic federated workloads that stand
// in for MNIST, FEMNIST and CIFAR-10 in this reproduction. Real datasets
// are unavailable offline; the experiments only require controllable
// label and feature skew across clients, which class-conditional
// generators provide exactly (see DESIGN.md §2 for the substitution
// argument).
//
// A Dataset is a dense batch of flattened images plus integer labels.
// Generators produce samples as a fixed per-class prototype pattern plus
// Gaussian pixel noise, so two clients holding the same labels hold
// samples from the same distribution — the property HACCS clusters on.
package dataset

import (
	"fmt"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Dataset is a batch of examples: X rows are flattened C×H×W images (or
// plain feature vectors), Y holds the integer class labels.
type Dataset struct {
	X        *tensor.Dense
	Y        []int
	Channels int
	Height   int
	Width    int
	Classes  int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// FeatureDim returns the flattened feature length per example.
func (d *Dataset) FeatureDim() int { return d.X.Cols() }

// Subset returns a new Dataset containing the examples at the given
// indices (copied).
func (d *Dataset) Subset(indices []int) *Dataset {
	out := &Dataset{
		X:        tensor.New(max(len(indices), 1), d.X.Cols()),
		Y:        make([]int, len(indices)),
		Channels: d.Channels, Height: d.Height, Width: d.Width, Classes: d.Classes,
	}
	if len(indices) == 0 {
		out.X = tensor.New(1, d.X.Cols())
		out.Y = nil
		return out
	}
	for i, idx := range indices {
		copy(out.X.Row(i), d.X.Row(idx))
		out.Y[i] = d.Y[idx]
	}
	return out
}

// Split partitions the dataset into train and test subsets with the
// given train fraction, after a deterministic shuffle.
func (d *Dataset) Split(trainFrac float64, rng *stats.RNG) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("dataset: Split fraction must be in (0, 1)")
	}
	perm := rng.Perm(d.Len())
	nTrain := int(float64(d.Len()) * trainFrac)
	if nTrain == 0 {
		nTrain = 1
	}
	if nTrain == d.Len() {
		nTrain = d.Len() - 1
	}
	return d.Subset(perm[:nTrain]), d.Subset(perm[nTrain:])
}

// Batches cuts the dataset into minibatches of the given size in a
// deterministic shuffled order, invoking fn with each batch's features
// and labels. The final short batch is included.
func (d *Dataset) Batches(batchSize int, rng *stats.RNG, fn func(x *tensor.Dense, y []int)) {
	d.BatchesScratch(batchSize, rng, nil, fn)
}

// BatchesScratch is Batches with the per-batch buffers drawn from the
// caller's scratch arena (keys "batch_perm", "batch_x", "batch_y"): the
// batch order and contents are identical — the RNG is consumed exactly
// as in Batches — but each fn invocation reuses the previous batch's
// storage, so fn must not retain x or y past its return. A nil scratch
// falls back to freshly allocated buffers per batch.
func (d *Dataset) BatchesScratch(batchSize int, rng *stats.RNG, scratch *tensor.Scratch, fn func(x *tensor.Dense, y []int)) {
	if batchSize <= 0 {
		panic("dataset: non-positive batch size")
	}
	var perm []int
	if scratch != nil {
		perm = scratch.Ints("batch_perm", d.Len())
		rng.PermInto(perm)
	} else {
		perm = rng.Perm(d.Len())
	}
	for start := 0; start < len(perm); start += batchSize {
		end := min(start+batchSize, len(perm))
		idx := perm[start:end]
		var x *tensor.Dense
		var y []int
		if scratch != nil {
			x = scratch.Dense2D("batch_x", len(idx), d.X.Cols())
			y = scratch.Ints("batch_y", len(idx))
		} else {
			x = tensor.New(len(idx), d.X.Cols())
			y = make([]int, len(idx))
		}
		for i, p := range idx {
			copy(x.Row(i), d.X.Row(p))
			y[i] = d.Y[p]
		}
		fn(x, y)
	}
}

// LabelHistogram returns the (exact, un-noised) label histogram of the
// dataset over its class count — the P(y) summary before privacy noise.
func (d *Dataset) LabelHistogram() *stats.Histogram {
	h := stats.NewLabelHistogram(d.Classes)
	for _, y := range d.Y {
		h.AddLabel(y)
	}
	return h
}

// FeatureHistograms returns per-class feature histograms over pixel
// values in [0,1] — the P(X|y) summary before privacy noise. Classes
// absent from the dataset yield nil entries.
func (d *Dataset) FeatureHistograms(bins int) []*stats.Histogram {
	hists := make([]*stats.Histogram, d.Classes)
	for i := 0; i < d.Len(); i++ {
		y := d.Y[i]
		if hists[y] == nil {
			hists[y] = stats.NewRangeHistogram(bins, 0, 1)
		}
		for _, v := range d.X.Row(i) {
			hists[y].AddValue(v)
		}
	}
	return hists
}

// Labels returns the sorted set of distinct labels present.
func (d *Dataset) Labels() []int {
	seen := make(map[int]bool)
	for _, y := range d.Y {
		seen[y] = true
	}
	out := make([]int, 0, len(seen))
	for c := 0; c < d.Classes; c++ {
		if seen[c] {
			out = append(out, c)
		}
	}
	return out
}

// Concat appends other's examples to a copy of d. Geometries must match.
func Concat(a, b *Dataset) *Dataset {
	if a.X.Cols() != b.X.Cols() || a.Classes != b.Classes {
		panic(fmt.Sprintf("dataset: Concat geometry mismatch (%d,%d) vs (%d,%d)",
			a.X.Cols(), a.Classes, b.X.Cols(), b.Classes))
	}
	out := &Dataset{
		X:        tensor.New(a.Len()+b.Len(), a.X.Cols()),
		Y:        make([]int, 0, a.Len()+b.Len()),
		Channels: a.Channels, Height: a.Height, Width: a.Width, Classes: a.Classes,
	}
	for i := 0; i < a.Len(); i++ {
		copy(out.X.Row(i), a.X.Row(i))
	}
	for i := 0; i < b.Len(); i++ {
		copy(out.X.Row(a.Len()+i), b.X.Row(i))
	}
	out.Y = append(out.Y, a.Y...)
	out.Y = append(out.Y, b.Y...)
	return out
}
