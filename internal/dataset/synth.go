package dataset

import (
	"fmt"
	"math"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Spec describes a synthetic image dataset family.
type Spec struct {
	Name     string
	Channels int
	Height   int
	Width    int
	Classes  int
	// NoiseStd is the per-pixel Gaussian noise standard deviation around
	// the class prototype. Larger values make classification harder.
	NoiseStd float64
	// Blobs is the number of Gaussian bumps composing each class
	// prototype; more blobs produce richer patterns.
	Blobs int
	// ClassSep in (0, 1] scales the class-specific component of each
	// prototype relative to a pattern shared by all classes. Low values
	// make classes overlap heavily and slow convergence, emulating the
	// difficulty of the real datasets; 1 gives fully independent
	// prototypes.
	ClassSep float64
}

// SyntheticMNIST returns a 1×28×28, 10-class spec standing in for MNIST.
func SyntheticMNIST() Spec {
	return Spec{Name: "synthetic-mnist", Channels: 1, Height: 28, Width: 28, Classes: 10, NoiseStd: 0.30, Blobs: 4, ClassSep: 0.45}
}

// SyntheticFEMNIST returns a 1×28×28 spec with the given class count
// (the paper uses 10 or 20 of FEMNIST's 62 classes per experiment).
func SyntheticFEMNIST(classes int) Spec {
	return Spec{Name: "synthetic-femnist", Channels: 1, Height: 28, Width: 28, Classes: classes, NoiseStd: 0.30, Blobs: 4, ClassSep: 0.45}
}

// SyntheticCIFAR returns a 3×32×32, 10-class spec standing in for
// CIFAR-10. Higher noise reflects CIFAR's greater difficulty.
func SyntheticCIFAR() Spec {
	return Spec{Name: "synthetic-cifar", Channels: 3, Height: 32, Width: 32, Classes: 10, NoiseStd: 0.32, Blobs: 5, ClassSep: 0.35}
}

// Compact returns a reduced-resolution copy of the spec for quick-scale
// benchmark runs; class structure and noise level are preserved.
func (s Spec) Compact(height, width int) Spec {
	s.Height, s.Width = height, width
	s.Name += fmt.Sprintf("-%dx%d", height, width)
	return s
}

// FeatureDim returns the flattened per-example feature length.
func (s Spec) FeatureDim() int { return s.Channels * s.Height * s.Width }

// Generator produces samples from a Spec. Prototypes are derived
// deterministically from the seed, so two Generators with the same spec
// and seed define the same class-conditional distributions — this is what
// lets distinct simulated clients share a data distribution.
type Generator struct {
	Spec   Spec
	protos [][]float64 // class -> flattened prototype image in [0,1]
}

// NewGenerator builds the per-class prototypes for a spec.
func NewGenerator(spec Spec, seed uint64) *Generator {
	if spec.Classes <= 0 || spec.Channels <= 0 || spec.Height <= 0 || spec.Width <= 0 {
		panic(fmt.Sprintf("dataset: invalid spec %+v", spec))
	}
	if spec.Blobs <= 0 {
		spec.Blobs = 4
	}
	if spec.ClassSep <= 0 || spec.ClassSep > 1 {
		spec.ClassSep = 1
	}
	g := &Generator{Spec: spec, protos: make([][]float64, spec.Classes)}
	// A pattern shared by every class dilutes the class signal, making
	// the classification task genuinely hard (ClassSep controls the mix).
	sharedRNG := stats.NewRNG(stats.DeriveSeed(seed, 1<<40))
	shared := renderBlobs(spec, sharedRNG)
	for c := 0; c < spec.Classes; c++ {
		// Each class owns an independent deterministic stream so adding
		// classes never perturbs existing prototypes.
		rng := stats.NewRNG(stats.DeriveSeed(seed, uint64(c)))
		own := renderBlobs(spec, rng)
		proto := make([]float64, len(own))
		for i := range proto {
			proto[i] = (1-spec.ClassSep)*shared[i] + spec.ClassSep*own[i]
		}
		g.protos[c] = normalizePrototype(proto)
	}
	return g
}

// renderBlobs renders a smooth pattern: a sum of randomly placed
// Gaussian bumps per channel (un-normalized).
func renderBlobs(spec Spec, rng *stats.RNG) []float64 {
	d := spec.FeatureDim()
	img := make([]float64, d)
	for ch := 0; ch < spec.Channels; ch++ {
		base := ch * spec.Height * spec.Width
		for b := 0; b < spec.Blobs; b++ {
			cy := rng.Uniform(0, float64(spec.Height))
			cx := rng.Uniform(0, float64(spec.Width))
			amp := rng.Uniform(0.5, 1.0)
			sigma := rng.Uniform(float64(min(spec.Height, spec.Width))/8, float64(min(spec.Height, spec.Width))/3)
			inv := 1 / (2 * sigma * sigma)
			for y := 0; y < spec.Height; y++ {
				dy := float64(y) - cy
				for x := 0; x < spec.Width; x++ {
					dx := float64(x) - cx
					img[base+y*spec.Width+x] += amp * math.Exp(-(dy*dy+dx*dx)*inv)
				}
			}
		}
	}
	return img
}

// normalizePrototype maps a pattern into the [0.15, 0.85] band so that
// additive pixel noise rarely clips.
func normalizePrototype(img []float64) []float64 {
	lo, hi := img[0], img[0]
	for _, v := range img {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	scale := 0.0
	if hi > lo {
		scale = 0.7 / (hi - lo)
	}
	for i, v := range img {
		img[i] = 0.15 + (v-lo)*scale
	}
	return img
}

// Prototype returns the noiseless pattern for a class (a copy).
func (g *Generator) Prototype(class int) []float64 {
	return append([]float64(nil), g.protos[class]...)
}

// Sample writes one noisy sample of the class into dst (length
// FeatureDim), clipping to [0, 1].
func (g *Generator) Sample(class int, dst []float64, rng *stats.RNG) {
	proto := g.protos[class]
	if len(dst) != len(proto) {
		panic("dataset: Sample dst length mismatch")
	}
	std := g.Spec.NoiseStd
	for i, p := range proto {
		v := p + rng.Normal(0, std)
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		dst[i] = v
	}
}

// Generate materializes a dataset with the given label sequence.
func (g *Generator) Generate(labels []int, rng *stats.RNG) *Dataset {
	d := &Dataset{
		X:        tensor.New(max(len(labels), 1), g.Spec.FeatureDim()),
		Y:        append([]int(nil), labels...),
		Channels: g.Spec.Channels, Height: g.Spec.Height, Width: g.Spec.Width,
		Classes: g.Spec.Classes,
	}
	for i, y := range labels {
		if y < 0 || y >= g.Spec.Classes {
			panic(fmt.Sprintf("dataset: label %d out of range [0, %d)", y, g.Spec.Classes))
		}
		g.Sample(y, d.X.Row(i), rng)
	}
	return d
}
