package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

func smallSpec() Spec {
	return Spec{Name: "test", Channels: 1, Height: 8, Width: 8, Classes: 4, NoiseStd: 0.1, Blobs: 3}
}

func TestGeneratorDeterministicPrototypes(t *testing.T) {
	g1 := NewGenerator(smallSpec(), 42)
	g2 := NewGenerator(smallSpec(), 42)
	for c := 0; c < 4; c++ {
		p1, p2 := g1.Prototype(c), g2.Prototype(c)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("class %d prototype differs at %d", c, i)
			}
		}
	}
}

func TestGeneratorDistinctClassPrototypes(t *testing.T) {
	g := NewGenerator(smallSpec(), 42)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			pa, pb := g.Prototype(a), g.Prototype(b)
			diff := 0.0
			for i := range pa {
				diff += math.Abs(pa[i] - pb[i])
			}
			if diff/float64(len(pa)) < 0.01 {
				t.Errorf("classes %d and %d have nearly identical prototypes", a, b)
			}
		}
	}
}

func TestPrototypeRange(t *testing.T) {
	g := NewGenerator(SyntheticCIFAR(), 7)
	for c := 0; c < 10; c++ {
		for i, v := range g.Prototype(c) {
			if v < 0.1 || v > 0.9 {
				t.Fatalf("class %d prototype[%d] = %v outside [0.15, 0.85] band", c, i, v)
			}
		}
	}
}

func TestSampleClipped(t *testing.T) {
	spec := smallSpec()
	spec.NoiseStd = 2 // extreme noise to force clipping
	g := NewGenerator(spec, 1)
	rng := stats.NewRNG(2)
	dst := make([]float64, spec.FeatureDim())
	for i := 0; i < 50; i++ {
		g.Sample(0, dst, rng)
		for _, v := range dst {
			if v < 0 || v > 1 {
				t.Fatalf("sample value %v outside [0,1]", v)
			}
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	g := NewGenerator(smallSpec(), 3)
	rng := stats.NewRNG(4)
	labels := []int{0, 1, 2, 3, 0, 1}
	d := g.Generate(labels, rng)
	if d.Len() != 6 || d.FeatureDim() != 64 || d.Classes != 4 {
		t.Fatalf("dataset geometry: len=%d dim=%d classes=%d", d.Len(), d.FeatureDim(), d.Classes)
	}
	for i, y := range labels {
		if d.Y[i] != y {
			t.Fatal("labels not preserved")
		}
	}
}

func TestGenerateOutOfRangeLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(smallSpec(), 1).Generate([]int{9}, stats.NewRNG(1))
}

func TestSamplesOfSameClassCloserThanDifferent(t *testing.T) {
	// The core property HACCS exploits: same-class samples are closer
	// to each other than cross-class samples, on average.
	g := NewGenerator(smallSpec(), 5)
	rng := stats.NewRNG(6)
	a1 := make([]float64, 64)
	a2 := make([]float64, 64)
	b := make([]float64, 64)
	sameD, diffD := 0.0, 0.0
	n := 100
	for i := 0; i < n; i++ {
		g.Sample(0, a1, rng)
		g.Sample(0, a2, rng)
		g.Sample(1, b, rng)
		for j := range a1 {
			sameD += (a1[j] - a2[j]) * (a1[j] - a2[j])
			diffD += (a1[j] - b[j]) * (a1[j] - b[j])
		}
	}
	if sameD >= diffD {
		t.Errorf("same-class distance %v >= cross-class %v", sameD, diffD)
	}
}

func TestSubset(t *testing.T) {
	g := NewGenerator(smallSpec(), 7)
	d := g.Generate([]int{0, 1, 2, 3}, stats.NewRNG(8))
	s := d.Subset([]int{3, 1})
	if s.Len() != 2 || s.Y[0] != 3 || s.Y[1] != 1 {
		t.Fatalf("subset labels %v", s.Y)
	}
	// Mutating the subset must not touch the parent.
	s.X.Data[0] = 99
	if d.X.At(3, 0) == 99 {
		t.Error("Subset shares storage with parent")
	}
	empty := d.Subset(nil)
	if empty.Len() != 0 {
		t.Error("empty subset has samples")
	}
}

func TestSplit(t *testing.T) {
	g := NewGenerator(smallSpec(), 9)
	labels := make([]int, 100)
	for i := range labels {
		labels[i] = i % 4
	}
	d := g.Generate(labels, stats.NewRNG(10))
	train, test := d.Split(0.8, stats.NewRNG(11))
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Degenerate fractions panic.
	for _, f := range []float64{0, 1, -1} {
		func() {
			defer func() { recover() }()
			d.Split(f, stats.NewRNG(1))
			t.Errorf("Split(%v) did not panic", f)
		}()
	}
}

func TestBatchesCoverAll(t *testing.T) {
	g := NewGenerator(smallSpec(), 12)
	labels := make([]int, 23)
	for i := range labels {
		labels[i] = i % 4
	}
	d := g.Generate(labels, stats.NewRNG(13))
	total := 0
	nBatches := 0
	d.Batches(8, stats.NewRNG(14), func(x *tensor.Dense, y []int) {
		total += len(y)
		nBatches++
		if x.Rows() != len(y) {
			t.Fatal("batch x/y mismatch")
		}
	})
	if total != 23 || nBatches != 3 {
		t.Fatalf("batches covered %d samples in %d batches", total, nBatches)
	}
}

func TestLabelHistogram(t *testing.T) {
	g := NewGenerator(smallSpec(), 15)
	d := g.Generate([]int{0, 0, 0, 1, 2}, stats.NewRNG(16))
	h := d.LabelHistogram()
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[3] != 0 {
		t.Errorf("label histogram %v", h.Counts)
	}
}

func TestFeatureHistograms(t *testing.T) {
	g := NewGenerator(smallSpec(), 17)
	d := g.Generate([]int{0, 0, 2}, stats.NewRNG(18))
	hists := d.FeatureHistograms(16)
	if hists[1] != nil || hists[3] != nil {
		t.Error("absent classes should have nil histograms")
	}
	if hists[0] == nil || hists[2] == nil {
		t.Fatal("present classes missing histograms")
	}
	if got := hists[0].Total(); got != float64(2*64) {
		t.Errorf("class 0 histogram total %v, want 128 pixels", got)
	}
}

func TestLabelsSorted(t *testing.T) {
	g := NewGenerator(smallSpec(), 19)
	d := g.Generate([]int{3, 1, 3, 1}, stats.NewRNG(20))
	got := d.Labels()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Labels = %v", got)
	}
}

func TestConcat(t *testing.T) {
	g := NewGenerator(smallSpec(), 21)
	a := g.Generate([]int{0, 1}, stats.NewRNG(22))
	b := g.Generate([]int{2}, stats.NewRNG(23))
	c := Concat(a, b)
	if c.Len() != 3 || c.Y[2] != 2 {
		t.Fatalf("concat: %v", c.Y)
	}
}

func TestLabelDistDraw(t *testing.T) {
	ld := MajorityNoise(5, 0.75, []int{1, 2, 3}, DefaultMajorityFractions)
	rng := stats.NewRNG(24)
	counts := map[int]int{}
	n := 100000
	for _, y := range ld.Draw(n, rng) {
		counts[y]++
	}
	if f := float64(counts[5]) / float64(n); math.Abs(f-0.75) > 0.01 {
		t.Errorf("majority fraction %v, want ~0.75", f)
	}
	if f := float64(counts[1]) / float64(n); math.Abs(f-0.12) > 0.01 {
		t.Errorf("first noise fraction %v, want ~0.12", f)
	}
	if counts[0] != 0 || counts[4] != 0 {
		t.Error("drew labels outside the distribution")
	}
}

func TestUniformDistProperties(t *testing.T) {
	u := Uniform(10)
	if len(u.Labels) != 10 {
		t.Fatal("bad uniform")
	}
	sum := 0.0
	for _, p := range u.Probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("uniform probs sum %v", sum)
	}
}

func TestIIDPlan(t *testing.T) {
	p := IIDPlan(10, 5, 100)
	if p.NumClients() != 10 {
		t.Fatal("client count")
	}
	for i := 0; i < 10; i++ {
		if p.Samples[i] != 100 || len(p.Dists[i].Labels) != 5 {
			t.Fatalf("client %d plan wrong", i)
		}
	}
}

func TestKRandomLabelsPlan(t *testing.T) {
	rng := stats.NewRNG(25)
	p := KRandomLabelsPlan(20, 10, 5, 50, rng)
	for i, d := range p.Dists {
		if len(d.Labels) != 5 {
			t.Fatalf("client %d has %d labels, want 5", i, len(d.Labels))
		}
		seen := map[int]bool{}
		for _, l := range d.Labels {
			if l < 0 || l >= 10 || seen[l] {
				t.Fatalf("client %d bad label set %v", i, d.Labels)
			}
			seen[l] = true
		}
	}
}

func TestMajorityNoisePlan(t *testing.T) {
	rng := stats.NewRNG(26)
	p := MajorityNoisePlan(50, 10, 100, 300, rng)
	for i := 0; i < 50; i++ {
		if p.Group[i] != i%10 {
			t.Fatalf("client %d group %d, want %d", i, p.Group[i], i%10)
		}
		if p.Samples[i] < 100 || p.Samples[i] > 300 {
			t.Fatalf("client %d samples %d out of bounds", i, p.Samples[i])
		}
		d := p.Dists[i]
		if len(d.Labels) != 4 {
			t.Fatalf("client %d has %d labels, want 4", i, len(d.Labels))
		}
		if d.Labels[0] != i%10 {
			t.Fatalf("client %d majority label %d", i, d.Labels[0])
		}
		// Noise labels must be distinct and differ from the majority.
		seen := map[int]bool{d.Labels[0]: true}
		for _, l := range d.Labels[1:] {
			if seen[l] {
				t.Fatalf("client %d duplicate label %d", i, l)
			}
			seen[l] = true
		}
	}
}

func TestGroupPlanTableI(t *testing.T) {
	p := GroupPlan(TableIGroups, 10, 60)
	if p.NumClients() != 100 {
		t.Fatalf("Table I plan has %d clients, want 100", p.NumClients())
	}
	// Client 0 is in group 0 which holds labels {6,7}.
	if p.Group[0] != 0 || p.Dists[0].Labels[0] != 6 || p.Dists[0].Labels[1] != 7 {
		t.Errorf("group 0 labels %v", p.Dists[0].Labels)
	}
	// Client 95 is in group 9 -> labels {1,3}.
	if p.Group[95] != 9 || p.Dists[95].Labels[0] != 1 {
		t.Errorf("group 9 labels %v", p.Dists[95].Labels)
	}
}

func TestPairedLabelPlan(t *testing.T) {
	rng := stats.NewRNG(27)
	p := PairedLabelPlan(10, 2, 100, rng)
	if p.NumClients() != 20 {
		t.Fatalf("paired plan has %d clients", p.NumClients())
	}
	for i := 0; i < 20; i++ {
		if p.Group[i] != i/2 {
			t.Errorf("client %d group %d, want %d", i, p.Group[i], i/2)
		}
	}
}

func TestMaterialize(t *testing.T) {
	g := NewGenerator(smallSpec(), 28)
	rng := stats.NewRNG(29)
	p := GroupPlan([][]int{{0, 1}, {2, 3}}, 3, 50)
	clients := p.Materialize(g, 0.8, rng)
	if len(clients) != 6 {
		t.Fatalf("materialized %d clients", len(clients))
	}
	for i, c := range clients {
		if c.Train.Len() != 40 || c.Test.Len() != 10 {
			t.Fatalf("client %d split %d/%d", i, c.Train.Len(), c.Test.Len())
		}
		// Every label must come from the group's label set.
		want := p.Dists[i].Labels
		for _, y := range append(append([]int{}, c.Train.Y...), c.Test.Y...) {
			if y != want[0] && y != want[1] {
				t.Fatalf("client %d drew label %d outside %v", i, y, want)
			}
		}
	}
}

func TestRotateImageIdentityAt0(t *testing.T) {
	g := NewGenerator(smallSpec(), 30)
	img := g.Prototype(0)
	rot := RotateImage(img, 1, 8, 8, 0)
	for i := range img {
		if math.Abs(img[i]-rot[i]) > 1e-9 {
			t.Fatalf("0-degree rotation changed pixel %d", i)
		}
	}
}

func TestRotate360RoundTrip(t *testing.T) {
	g := NewGenerator(smallSpec(), 31)
	img := g.Prototype(1)
	// Four 90° rotations compose to the identity (within interpolation
	// error — 90° hits grid points exactly, so error is tiny).
	cur := img
	for i := 0; i < 4; i++ {
		cur = RotateImage(cur, 1, 8, 8, 90)
	}
	for i := range img {
		if math.Abs(img[i]-cur[i]) > 1e-6 {
			t.Fatalf("4x90° rotation not identity at pixel %d: %v vs %v", i, img[i], cur[i])
		}
	}
}

func TestRotate45ChangesFeaturesKeepsLabels(t *testing.T) {
	g := NewGenerator(smallSpec(), 32)
	d := g.Generate([]int{0, 1, 2}, stats.NewRNG(33))
	r := d.Rotate(45)
	for i, y := range d.Y {
		if r.Y[i] != y {
			t.Fatal("rotation changed labels")
		}
	}
	diff := 0.0
	for i := range d.X.Data {
		diff += math.Abs(d.X.Data[i] - r.X.Data[i])
	}
	if diff/float64(len(d.X.Data)) < 1e-3 {
		t.Error("45° rotation left features nearly unchanged")
	}
}

func TestRotatePropertyValuesBounded(t *testing.T) {
	g := NewGenerator(smallSpec(), 34)
	rng := stats.NewRNG(35)
	f := func(angleRaw uint16) bool {
		angle := float64(angleRaw%360) + 0.5
		dst := make([]float64, 64)
		g.Sample(int(angleRaw)%4, dst, rng)
		rot := RotateImage(dst, 1, 8, 8, angle)
		for _, v := range rot {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpecConstructors(t *testing.T) {
	m := SyntheticMNIST()
	if m.FeatureDim() != 784 || m.Classes != 10 {
		t.Errorf("MNIST spec %+v", m)
	}
	f := SyntheticFEMNIST(20)
	if f.Classes != 20 || f.FeatureDim() != 784 {
		t.Errorf("FEMNIST spec %+v", f)
	}
	c := SyntheticCIFAR()
	if c.FeatureDim() != 3*32*32 || c.Classes != 10 {
		t.Errorf("CIFAR spec %+v", c)
	}
	cc := c.Compact(12, 12)
	if cc.FeatureDim() != 3*12*12 || cc.Classes != 10 {
		t.Errorf("compact spec %+v", cc)
	}
}

func TestDirichletPlan(t *testing.T) {
	rng := stats.NewRNG(40)
	p := DirichletPlan(30, 10, 0.1, 100, 200, rng)
	if p.NumClients() != 30 {
		t.Fatalf("clients = %d", p.NumClients())
	}
	for i := 0; i < 30; i++ {
		if len(p.Dists[i].Labels) != 10 || len(p.Dists[i].Probs) != 10 {
			t.Fatalf("client %d distribution malformed", i)
		}
		sum := 0.0
		maxP := 0.0
		for _, v := range p.Dists[i].Probs {
			sum += v
			if v > maxP {
				maxP = v
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("client %d probs sum %v", i, sum)
		}
		if p.Samples[i] < 100 || p.Samples[i] > 200 {
			t.Fatalf("client %d samples %d", i, p.Samples[i])
		}
		// Group is the argmax label.
		if p.Dists[i].Probs[p.Group[i]] != maxP {
			t.Fatalf("client %d group %d not the dominant label", i, p.Group[i])
		}
	}
}

func TestDirichletPlanSkewControl(t *testing.T) {
	rng := stats.NewRNG(41)
	domMass := func(alpha float64) float64 {
		p := DirichletPlan(50, 10, alpha, 100, 100, rng)
		total := 0.0
		for i := range p.Dists {
			total += stats.Max(p.Dists[i].Probs)
		}
		return total / float64(len(p.Dists))
	}
	if skewed, iid := domMass(0.05), domMass(100); skewed <= iid+0.3 {
		t.Errorf("alpha=0.05 dominant mass %v not well above alpha=100 mass %v", skewed, iid)
	}
}

func TestDirichletPlanBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DirichletPlan(5, 5, 1, 0, 10, stats.NewRNG(1))
}

// TestBatchesScratchMatchesBatches checks that the arena-backed batch
// iterator yields the identical batch sequence (order, features,
// labels) as the allocating one, consuming the same RNG stream.
func TestBatchesScratchMatchesBatches(t *testing.T) {
	g := NewGenerator(smallSpec(), 41)
	labels := make([]int, 25)
	for i := range labels {
		labels[i] = i % 4
	}
	d := g.Generate(labels, stats.NewRNG(42))
	type batch struct {
		x []float64
		y []int
	}
	collect := func(scratch *tensor.Scratch, seed uint64) []batch {
		var out []batch
		d.BatchesScratch(4, stats.NewRNG(seed), scratch, func(x *tensor.Dense, y []int) {
			// Copy: scratch-backed buffers are reused between calls.
			out = append(out, batch{append([]float64(nil), x.Data...), append([]int(nil), y...)})
		})
		return out
	}
	want := collect(nil, 3)
	got := collect(tensor.NewScratch(), 3)
	if len(want) != len(got) {
		t.Fatalf("batch count %d != %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i].x) != len(got[i].x) || len(want[i].y) != len(got[i].y) {
			t.Fatalf("batch %d: size mismatch", i)
		}
		for j := range want[i].x {
			if want[i].x[j] != got[i].x[j] {
				t.Fatalf("batch %d: feature %d differs", i, j)
			}
		}
		for j := range want[i].y {
			if want[i].y[j] != got[i].y[j] {
				t.Fatalf("batch %d: label %d differs", i, j)
			}
		}
	}
}
