package dataset

import (
	"math"

	"haccs/internal/tensor"
)

// RotateImage rotates one flattened C×H×W image by angleDeg degrees
// counter-clockwise about its center using bilinear interpolation.
// Pixels sampled from outside the source are treated as the image's
// background (its minimum value), matching how rotated-MNIST benchmarks
// pad with background rather than black holes.
func RotateImage(img []float64, channels, height, width int, angleDeg float64) []float64 {
	if len(img) != channels*height*width {
		panic("dataset: RotateImage length mismatch")
	}
	bg := img[0]
	for _, v := range img {
		if v < bg {
			bg = v
		}
	}
	rad := angleDeg * math.Pi / 180
	sin, cos := math.Sin(rad), math.Cos(rad)
	cy := float64(height-1) / 2
	cx := float64(width-1) / 2
	out := make([]float64, len(img))
	for ch := 0; ch < channels; ch++ {
		base := ch * height * width
		for y := 0; y < height; y++ {
			for x := 0; x < width; x++ {
				// Inverse-map the destination pixel to source space.
				dy := float64(y) - cy
				dx := float64(x) - cx
				sy := cy + dy*cos - dx*sin
				sx := cx + dy*sin + dx*cos
				out[base+y*width+x] = bilinear(img[base:base+height*width], height, width, sy, sx, bg)
			}
		}
	}
	return out
}

func bilinear(plane []float64, height, width int, y, x, bg float64) float64 {
	y0 := int(math.Floor(y))
	x0 := int(math.Floor(x))
	fy := y - float64(y0)
	fx := x - float64(x0)
	get := func(yy, xx int) float64 {
		if yy < 0 || yy >= height || xx < 0 || xx >= width {
			return bg
		}
		return plane[yy*width+xx]
	}
	top := get(y0, x0)*(1-fx) + get(y0, x0+1)*fx
	bot := get(y0+1, x0)*(1-fx) + get(y0+1, x0+1)*fx
	return top*(1-fy) + bot*fy
}

// Rotate returns a copy of the dataset with every image rotated by
// angleDeg degrees. This is the paper's feature-skew transform (§V-D4):
// rotating half the data 45° skews P(X|y) while leaving P(y) untouched.
func (d *Dataset) Rotate(angleDeg float64) *Dataset {
	out := &Dataset{
		X:        tensor.New(max(d.Len(), 1), d.X.Cols()),
		Y:        append([]int(nil), d.Y...),
		Channels: d.Channels, Height: d.Height, Width: d.Width, Classes: d.Classes,
	}
	for i := 0; i < d.Len(); i++ {
		rot := RotateImage(d.X.Row(i), d.Channels, d.Height, d.Width, angleDeg)
		copy(out.X.Row(i), rot)
	}
	return out
}
