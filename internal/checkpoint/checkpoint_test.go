package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"haccs/internal/nn"
	"haccs/internal/stats"
)

// memComponent is a trivial Snapshotter over one integer.
type memComponent struct{ v int }

func (m *memComponent) SnapshotState() ([]byte, error) {
	return []byte(fmt.Sprintf("%d", m.v)), nil
}

func (m *memComponent) RestoreState(data []byte) error {
	_, err := fmt.Sscanf(string(data), "%d", &m.v)
	return err
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	a, b := &memComponent{v: 7}, &memComponent{v: 11}
	comps := []Component{{"a", a}, {"b", b}}
	snap, err := Capture(3, comps)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != 3 || snap.Version != FormatVersion {
		t.Fatalf("snap header %+v", snap)
	}
	a.v, b.v = 0, 0
	if err := snap.Restore(comps); err != nil {
		t.Fatal(err)
	}
	if a.v != 7 || b.v != 11 {
		t.Fatalf("restored a=%d b=%d", a.v, b.v)
	}
}

func TestRestoreMissingComponent(t *testing.T) {
	snap, err := Capture(1, []Component{{"a", &memComponent{v: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	err = snap.Restore([]Component{{"a", &memComponent{}}, {"ghost", &memComponent{}}})
	if err == nil {
		t.Fatal("missing component accepted")
	}
}

func TestRestoreIgnoresExtraComponents(t *testing.T) {
	snap, err := Capture(1, []Component{{"a", &memComponent{v: 4}}, {"extra", &memComponent{v: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	a := &memComponent{}
	if err := snap.Restore([]Component{{"a", a}}); err != nil {
		t.Fatal(err)
	}
	if a.v != 4 {
		t.Fatalf("a=%d", a.v)
	}
}

func TestCaptureRejectsDuplicateNames(t *testing.T) {
	if _, err := Capture(0, []Component{{"x", &memComponent{}}, {"x", &memComponent{}}}); err == nil {
		t.Fatal("duplicate component names accepted")
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	snap := &Snapshot{Version: FormatVersion + 1, Round: 1}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Fatal("future format version accepted")
	}
	if err := snap.Restore(nil); err == nil {
		t.Fatal("Restore accepted wrong version")
	}
}

func saveN(t *testing.T, s *Store, rounds ...int) {
	t.Helper()
	for _, r := range rounds {
		snap, err := Capture(r, []Component{{"mem", &memComponent{v: 100 + r}}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Save(snap); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreSaveLoadLatest(t *testing.T) {
	s, err := NewStore(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty store: %v", err)
	}
	saveN(t, s, 1, 2, 3)
	snap, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != 3 {
		t.Fatalf("latest round %d", snap.Round)
	}
	mem := &memComponent{}
	if err := snap.Restore([]Component{{"mem", mem}}); err != nil {
		t.Fatal(err)
	}
	if mem.v != 103 {
		t.Fatalf("mem=%d", mem.v)
	}
	mid, err := s.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Round != 2 {
		t.Fatalf("Load(2) round %d", mid.Round)
	}
}

func TestStoreRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	saveN(t, s, 1, 2, 3, 4)
	if got := s.Rounds(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("retained rounds %v", got)
	}
	if _, err := s.Load(1); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("evicted round still loadable: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files on disk: %v", files)
	}
}

func TestStoreCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	saveN(t, s, 1, 2, 3)
	// Damage the newest snapshot: CRC verification must skip it and
	// serve round 2 instead.
	path := filepath.Join(dir, snapshotFileName(3))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != 2 {
		t.Fatalf("fallback served round %d, want 2", snap.Round)
	}
	var ce *CorruptSnapshotError
	if _, err := s.Load(3); !errors.As(err, &ce) {
		t.Fatalf("Load(3) error %v, want CorruptSnapshotError", err)
	}
	// All snapshots damaged: ErrNoSnapshot.
	for _, r := range []int{1, 2} {
		if err := os.Truncate(filepath.Join(dir, snapshotFileName(r)), 3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("all-corrupt store: %v", err)
	}
}

func TestStoreReopenSeesHistory(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	saveN(t, s, 1, 2)
	// A second process (the resumed run) opens the same directory.
	s2, err := NewStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s2.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != 2 {
		t.Fatalf("reopened latest %d", snap.Round)
	}
	// And keeps appending to the same history.
	saveN(t, s2, 3)
	if got := s2.Rounds(); len(got) != 3 {
		t.Fatalf("rounds after reopen+save: %v", got)
	}
}

func TestStoreSameRoundOverwrites(t *testing.T) {
	s, err := NewStore(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	saveN(t, s, 1, 1, 1)
	if got := s.Rounds(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rounds %v", got)
	}
}

func TestModelSnapshotterRoundTrip(t *testing.T) {
	arch := nn.Arch{Kind: "mlp", In: 4, Hidden: []int{3}, Classes: 2}
	live := arch.Build(stats.NewRNG(1)).ParamsVector()
	want := append([]float64(nil), live...)
	m := Model{
		Arch:   arch,
		Params: func() []float64 { return live },
		SetParams: func(p []float64) error {
			copy(live, p)
			return nil
		},
	}
	data, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		live[i] = -1
	}
	if err := m.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if live[i] != want[i] {
			t.Fatalf("param %d differs after restore", i)
		}
	}
	// A payload for a different architecture must be rejected.
	other := Model{Arch: nn.Arch{Kind: "mlp", In: 5, Hidden: []int{3}, Classes: 2}, Params: m.Params, SetParams: m.SetParams}
	bad, err := other.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	var am *nn.ArchMismatchError
	if err := m.RestoreState(bad); !errors.As(err, &am) {
		t.Fatalf("wrong-arch payload: %v", err)
	}
}

// TestNilSaverZeroAllocs pins that disabled checkpointing adds zero
// allocations to the round hot path: the engine calls MaybeSave once
// per round whether or not a store is configured.
func TestNilSaverZeroAllocs(t *testing.T) {
	var s *Saver
	allocs := testing.AllocsPerRun(1000, func() {
		if saved, err := s.MaybeSave(5); saved || err != nil {
			t.Fatal("nil saver saved")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-saver MaybeSave allocates %v allocs/op, want 0", allocs)
	}
}

func TestSaverCadence(t *testing.T) {
	store, err := NewStore(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	mem := &memComponent{v: 1}
	s := NewSaver(store, 3, []Component{{"mem", mem}}, nil, nil, nil)
	var saved []int
	for r := 1; r <= 7; r++ {
		mem.v = r
		ok, err := s.MaybeSave(r)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			saved = append(saved, r)
		}
	}
	if len(saved) != 2 || saved[0] != 3 || saved[1] != 6 {
		t.Fatalf("saved at %v, want [3 6]", saved)
	}
	if got := store.Rounds(); len(got) != 2 || got[1] != 6 {
		t.Fatalf("store rounds %v", got)
	}
}
