package checkpoint

import (
	"time"

	"haccs/internal/telemetry"
)

// SecondsBuckets cover checkpoint save durations: sub-ms in-memory
// encodes up to seconds for paper-scale models on slow disks.
var SecondsBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// Saver bundles a Store with a component list, a cadence, and the
// telemetry that reports every save: a "checkpoint" span, the
// haccs_checkpoint_* metrics, and a checkpoint_saved trace event.
//
// A nil *Saver is the documented "checkpointing off" state: MaybeSave
// on a nil receiver returns immediately without allocating, so the
// round hot path pays one branch when the feature is disabled (pinned
// by TestNilSaverZeroAllocs and the checkpoint_disabled benchmark).
type Saver struct {
	store  *Store
	every  int
	comps  []Component
	tracer telemetry.Tracer
	spans  *telemetry.SpanTracer

	bytes   *telemetry.Gauge
	seconds *telemetry.Histogram
}

// NewSaver builds a saver over the store (nil store returns a nil
// saver — checkpointing off). every is the cadence in rounds (<= 0
// saves every round). tracer, spans and reg may each be nil.
func NewSaver(store *Store, every int, comps []Component, tracer telemetry.Tracer, spans *telemetry.SpanTracer, reg *telemetry.Registry) *Saver {
	if store == nil {
		return nil
	}
	if every <= 0 {
		every = 1
	}
	s := &Saver{store: store, every: every, comps: comps, tracer: tracer, spans: spans}
	if reg != nil {
		s.bytes = reg.Gauge("haccs_checkpoint_bytes", "Encoded size of the last run-state snapshot written.")
		s.seconds = reg.Histogram("haccs_checkpoint_seconds", "Wall-clock duration of one snapshot capture + durable write.", SecondsBuckets)
	}
	return s
}

// Store returns the underlying store (nil on a nil saver).
func (s *Saver) Store() *Store {
	if s == nil {
		return nil
	}
	return s.store
}

// MaybeSave persists a snapshot when roundsDone is a positive multiple
// of the cadence, reporting whether a save happened. On a nil receiver
// it is a zero-allocation no-op.
func (s *Saver) MaybeSave(roundsDone int) (bool, error) {
	if s == nil || roundsDone <= 0 || roundsDone%s.every != 0 {
		return false, nil
	}
	return true, s.Save(roundsDone)
}

// Save captures and durably persists a snapshot after roundsDone
// completed rounds, regardless of cadence.
func (s *Saver) Save(roundsDone int) error {
	sp := s.spans.Root("checkpoint", roundsDone)
	defer sp.End()
	start := time.Now()
	snap, err := Capture(roundsDone, s.comps)
	if err != nil {
		return err
	}
	n, err := s.store.Save(snap)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	if s.tracer != nil {
		s.tracer.Emit(telemetry.CheckpointSaved(roundsDone, n, wall, s.store.Dir()))
	}
	if s.bytes != nil {
		s.bytes.Set(float64(n))
		s.seconds.Observe(wall)
	}
	return nil
}
