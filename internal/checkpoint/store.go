package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// manifestName is the store's index file inside the directory.
const manifestName = "MANIFEST.json"

// ErrNoSnapshot is returned by LoadLatest and Load when the store holds
// no (usable) snapshot: an empty or never-written directory, or a
// manifest whose every entry failed verification.
var ErrNoSnapshot = errors.New("checkpoint: no usable snapshot in store")

// CorruptSnapshotError describes one snapshot file that failed
// verification (missing, size or CRC mismatch, undecodable). LoadLatest
// skips past corrupt entries to the previous good one; the error is
// surfaced only when nothing good remains (wrapped around
// ErrNoSnapshot) or through Load of a specific round.
type CorruptSnapshotError struct {
	File   string
	Round  int
	Reason string
}

func (e *CorruptSnapshotError) Error() string {
	return fmt.Sprintf("checkpoint: snapshot %s (round %d) corrupt: %s", e.File, e.Round, e.Reason)
}

// manifest is the JSON index of the store directory: the entries on
// disk, oldest first. It is rewritten atomically after every save so a
// crash between the snapshot rename and the manifest rename leaves at
// worst an unlisted (orphaned) snapshot file, never a listed-but-
// missing one.
type manifest struct {
	Version int             `json:"version"`
	Entries []manifestEntry `json:"entries"`
}

// manifestEntry describes one snapshot file.
type manifestEntry struct {
	// File is the snapshot's file name within the store directory.
	File string `json:"file"`
	// Round is the number of rounds completed at capture time.
	Round int `json:"round"`
	// CRC32 is the IEEE checksum of the encoded snapshot bytes.
	CRC32 uint32 `json:"crc32"`
	// Size is the encoded snapshot length in bytes.
	Size int64 `json:"size"`
}

// Store persists snapshots in one directory with bounded retention.
// Writes are atomic (temp file + fsync + rename); reads verify the
// manifest checksum and fall back past corrupt snapshots to the newest
// good one. A Store is not safe for concurrent use — it belongs to the
// single-threaded round loop.
type Store struct {
	dir    string
	retain int
	man    manifest
}

// NewStore opens (creating if needed) a snapshot store over dir,
// keeping at most retain snapshots (retain <= 0 keeps 3). An existing
// manifest is loaded so a resumed process appends to the same history.
func NewStore(dir string, retain int) (*Store, error) {
	if retain <= 0 {
		retain = 3
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store dir: %w", err)
	}
	s := &Store{dir: dir, retain: retain}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		s.man = manifest{Version: FormatVersion}
	case err != nil:
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	default:
		if err := json.Unmarshal(data, &s.man); err != nil {
			return nil, fmt.Errorf("checkpoint: parse manifest: %w", err)
		}
		if s.man.Version != FormatVersion {
			return nil, fmt.Errorf("checkpoint: manifest version %d, this build reads %d", s.man.Version, FormatVersion)
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Rounds returns the rounds of the snapshots currently listed, oldest
// first.
func (s *Store) Rounds() []int {
	out := make([]int, len(s.man.Entries))
	for i, e := range s.man.Entries {
		out[i] = e.Round
	}
	return out
}

func snapshotFileName(round int) string { return fmt.Sprintf("snap-%08d.ckpt", round) }

// Save encodes and durably persists the snapshot, updates the manifest,
// and enforces retention by deleting the oldest snapshots. It returns
// the encoded snapshot size in bytes. Saving the same round twice
// overwrites the earlier snapshot in place.
func (s *Store) Save(snap *Snapshot) (int, error) {
	data, err := snap.Encode()
	if err != nil {
		return 0, err
	}
	name := snapshotFileName(snap.Round)
	if err := s.writeAtomic(name, data); err != nil {
		return 0, err
	}
	entry := manifestEntry{File: name, Round: snap.Round, CRC32: crc32.ChecksumIEEE(data), Size: int64(len(data))}
	kept := s.man.Entries[:0]
	for _, e := range s.man.Entries {
		if e.File != name {
			kept = append(kept, e)
		}
	}
	s.man.Entries = append(kept, entry)
	for len(s.man.Entries) > s.retain {
		old := s.man.Entries[0]
		s.man.Entries = s.man.Entries[1:]
		// Best-effort: a stale snapshot file that survives deletion is
		// merely orphaned, never served (reads go through the manifest).
		os.Remove(filepath.Join(s.dir, old.File))
	}
	if err := s.writeManifest(); err != nil {
		return 0, err
	}
	return len(data), nil
}

// writeAtomic lands data at name via temp file + fsync + rename, so a
// crash mid-write can never leave a half-written file under the final
// name.
func (s *Store) writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: sync %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename %s: %w", name, err)
	}
	return nil
}

func (s *Store) writeManifest() error {
	data, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode manifest: %w", err)
	}
	return s.writeAtomic(manifestName, append(data, '\n'))
}

// load reads and verifies one listed snapshot.
func (s *Store) load(e manifestEntry) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, e.File))
	if err != nil {
		return nil, &CorruptSnapshotError{File: e.File, Round: e.Round, Reason: err.Error()}
	}
	if int64(len(data)) != e.Size {
		return nil, &CorruptSnapshotError{File: e.File, Round: e.Round, Reason: fmt.Sprintf("size %d, manifest says %d", len(data), e.Size)}
	}
	if sum := crc32.ChecksumIEEE(data); sum != e.CRC32 {
		return nil, &CorruptSnapshotError{File: e.File, Round: e.Round, Reason: fmt.Sprintf("CRC32 %08x, manifest says %08x", sum, e.CRC32)}
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, &CorruptSnapshotError{File: e.File, Round: e.Round, Reason: err.Error()}
	}
	return snap, nil
}

// LoadLatest returns the newest snapshot that verifies, skipping past
// corrupt or missing entries to the previous good one. It returns
// ErrNoSnapshot (possibly wrapping the last corruption seen) when
// nothing usable remains.
func (s *Store) LoadLatest() (*Snapshot, error) {
	var lastErr error
	for i := len(s.man.Entries) - 1; i >= 0; i-- {
		snap, err := s.load(s.man.Entries[i])
		if err == nil {
			return snap, nil
		}
		lastErr = err
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w (last failure: %v)", ErrNoSnapshot, lastErr)
	}
	return nil, ErrNoSnapshot
}

// Load returns the verified snapshot taken after the given round, or
// ErrNoSnapshot if none is listed (a *CorruptSnapshotError if listed
// but damaged).
func (s *Store) Load(round int) (*Snapshot, error) {
	for i := len(s.man.Entries) - 1; i >= 0; i-- {
		if s.man.Entries[i].Round == round {
			return s.load(s.man.Entries[i])
		}
	}
	return nil, fmt.Errorf("%w: no snapshot for round %d", ErrNoSnapshot, round)
}
