// Package checkpoint provides durable run-state snapshots with
// bit-identical crash recovery. A Snapshot is a versioned bundle of
// opaque per-component payloads — the global model, each selection
// strategy's mutable state, the round driver's clock, the dropout
// schedule — captured through the Snapshotter interface and persisted
// by a file-backed Store (atomic temp-file + rename writes, CRC32
// checksums in a JSON manifest, bounded retention, and fallback past
// corrupt snapshots to the newest good one).
//
// The contract that makes resume exact rather than approximate: every
// stateful layer of a run implements Snapshotter, all remaining
// randomness is either derived statelessly from (seed, round) pairs or
// carried inside a snapshotted stats.RNG stream, and restoring a
// Snapshot into a freshly constructed run (same config, same roster)
// reproduces the uninterrupted trajectory bit for bit — pinned by
// experiments.TestResumeBitIdentical.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// FormatVersion is the snapshot format version this build writes and
// the only one it accepts on decode.
const FormatVersion = 1

// Snapshotter is implemented by every stateful layer that participates
// in checkpointing. SnapshotState serializes the component's mutable
// state; RestoreState overwrites it from a previously captured payload.
// RestoreState is only called on a component that has been constructed
// and initialized exactly as it was for the run that produced the
// snapshot (same config, same roster) — implementations validate what
// they can (lengths, seeds) and return an error on mismatch rather
// than restoring a half-compatible state.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState(data []byte) error
}

// Component pairs a Snapshotter with the stable name it is stored
// under inside a Snapshot.
type Component struct {
	Name string
	S    Snapshotter
}

// ComponentLister is implemented by layers that contribute additional
// named components beyond their own Snapshotter — e.g. a strategy whose
// optional clustering backend carries separate state. Engines append
// ExtraComponents to their component list; an implementation that has
// nothing extra to add for its current configuration returns nil, so
// snapshots of runs without the optional layer stay readable by builds
// that predate it.
type ComponentLister interface {
	ExtraComponents() []Component
}

// Snapshot is one captured run state: the number of rounds completed
// when it was taken plus each component's opaque payload.
type Snapshot struct {
	// Version is the snapshot format version (FormatVersion).
	Version int
	// Round is the number of rounds completed at capture time; a
	// resumed run continues with round index Round.
	Round int
	// Components maps component name to its serialized state.
	Components map[string][]byte
}

// Capture snapshots every component into a new Snapshot taken after
// roundsDone completed rounds.
func Capture(roundsDone int, comps []Component) (*Snapshot, error) {
	snap := &Snapshot{Version: FormatVersion, Round: roundsDone, Components: make(map[string][]byte, len(comps))}
	for _, c := range comps {
		if _, dup := snap.Components[c.Name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate component %q", c.Name)
		}
		data, err := c.S.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: snapshot component %q: %w", c.Name, err)
		}
		snap.Components[c.Name] = data
	}
	return snap, nil
}

// Restore replays the snapshot into every component. Each component
// listed must be present in the snapshot; payloads for components not
// listed are ignored (a run configured without an optional layer can
// still consume a snapshot that captured one, but never the reverse).
func (s *Snapshot) Restore(comps []Component) error {
	if s.Version != FormatVersion {
		return fmt.Errorf("checkpoint: snapshot format version %d, this build reads %d", s.Version, FormatVersion)
	}
	for _, c := range comps {
		data, ok := s.Components[c.Name]
		if !ok {
			return fmt.Errorf("checkpoint: snapshot has no %q component (components: %d)", c.Name, len(s.Components))
		}
		if err := c.S.RestoreState(data); err != nil {
			return fmt.Errorf("checkpoint: restore component %q: %w", c.Name, err)
		}
	}
	return nil
}

// Encode serializes the snapshot as a gob stream.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses a gob-encoded snapshot and validates its format
// version.
func Decode(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("checkpoint: decode snapshot: %w", err)
	}
	if snap.Version != FormatVersion {
		return nil, fmt.Errorf("checkpoint: snapshot format version %d, this build reads %d", snap.Version, FormatVersion)
	}
	return &snap, nil
}
