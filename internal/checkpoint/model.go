package checkpoint

import (
	"bytes"
	"fmt"

	"haccs/internal/nn"
)

// Model is the Snapshotter for a flat global parameter vector, stamped
// with its architecture so restores are validated — it reuses the
// nn.Checkpoint wire form, keeping the model component readable by the
// same tooling that reads bare weight checkpoints. Arch may be the
// zero value when the owning transport does not know the model family
// (e.g. a generic flnet coordinator); validation then reduces to the
// parameter count.
type Model struct {
	// Arch stamps and validates the payload.
	Arch nn.Arch
	// Params returns the live parameter vector (read-only view).
	Params func() []float64
	// SetParams overwrites the live parameter vector from a restored
	// copy of equal length.
	SetParams func(params []float64) error
}

// SnapshotState implements Snapshotter.
func (m Model) SnapshotState() ([]byte, error) {
	var buf bytes.Buffer
	if err := nn.EncodeCheckpoint(&buf, m.Arch, m.Params(), 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreState implements Snapshotter.
func (m Model) RestoreState(data []byte) error {
	want := len(m.Params())
	params, _, err := nn.DecodeCheckpoint(bytes.NewReader(data), m.Arch, want)
	if err != nil {
		return err
	}
	if err := m.SetParams(params); err != nil {
		return fmt.Errorf("checkpoint: restore model params: %w", err)
	}
	return nil
}
