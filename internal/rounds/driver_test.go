package rounds

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"haccs/internal/telemetry"
)

// fakeProxy is a deterministic in-memory client: params = base+round in
// every coordinate, so the expected FedAvg is computable by hand.
type fakeProxy struct {
	id      int
	latency float64
	samples int
	dim     int
	fail    map[int]bool // rounds in which Train errors
	summary []float64
	calls   int
}

func (p *fakeProxy) Train(round, worker, slot int, params []float64, _ telemetry.SpanContext) (Result, error) {
	p.calls++
	if p.fail[round] {
		return Result{}, errors.New("fake transport failure")
	}
	out := make([]float64, p.dim)
	for i := range out {
		out[i] = float64(p.id) + float64(round)
	}
	return Result{
		ClientID:   p.id,
		Params:     out,
		NumSamples: p.samples,
		Loss:       float64(p.id) * 10,
		Summary:    p.summary,
	}, nil
}

func (p *fakeProxy) Latency() float64 { return p.latency }

type fakeTransport struct {
	proxies []Proxy
	par     int
}

func (t fakeTransport) Proxies() []Proxy { return t.proxies }
func (t fakeTransport) Parallelism() int { return t.par }

// scriptStrategy returns a fixed selection per round and records every
// Update call (with copies, since the driver reuses its buffers).
type scriptStrategy struct {
	selections [][]int
	updates    []updateCall
}

type updateCall struct {
	round    int
	selected []int
	losses   []float64
}

func (s *scriptStrategy) Select(round int, available []bool, k int) []int {
	if round >= len(s.selections) {
		return nil
	}
	return s.selections[round]
}

func (s *scriptStrategy) Update(round int, selected []int, losses []float64) {
	s.updates = append(s.updates, updateCall{
		round:    round,
		selected: append([]int(nil), selected...),
		losses:   append([]float64(nil), losses...),
	})
}

const testDim = 3

func newFakeCluster(latencies []float64, samples []int) ([]*fakeProxy, fakeTransport) {
	fakes := make([]*fakeProxy, len(latencies))
	proxies := make([]Proxy, len(latencies))
	for i := range latencies {
		fakes[i] = &fakeProxy{id: i, latency: latencies[i], samples: samples[i], dim: testDim}
		proxies[i] = fakes[i]
	}
	return fakes, fakeTransport{proxies: proxies, par: 2}
}

// captureTracer records events by kind for assertion.
type captureTracer struct{ events []telemetry.Event }

func (c *captureTracer) Emit(e telemetry.Event) { c.events = append(c.events, e) }

func (c *captureTracer) kinds() []string {
	out := make([]string, len(c.events))
	for i, e := range c.events {
		out[i] = e.Kind
	}
	return out
}

func (c *captureTracer) find(kind string) *telemetry.Event {
	for i := range c.events {
		if c.events[i].Kind == kind {
			return &c.events[i]
		}
	}
	return nil
}

func TestDeadlineCutsStragglerAndRenormalizes(t *testing.T) {
	// Client 2 (latency 10) misses the deadline of 5; clients 0 and 1
	// report with 100 and 300 samples, so weights renormalize to
	// 1/4 and 3/4 over the reporters.
	_, tr := newFakeCluster([]float64{1, 2, 10}, []int{100, 300, 600})
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}}}
	tc := &captureTracer{}
	d := NewDriver(Config{ClientsPerRound: 3, Deadline: 5, Tracer: tc}, tr, strat, make([]float64, testDim))

	out := d.RunRound(0)
	if !reflect.DeepEqual(out.Reporters, []int{0, 1}) {
		t.Fatalf("reporters = %v, want [0 1]", out.Reporters)
	}
	if !reflect.DeepEqual(out.Cut, []int{2}) {
		t.Fatalf("cut = %v, want [2]", out.Cut)
	}
	if len(out.Failed) != 0 || !out.Aggregated {
		t.Fatalf("failed = %v aggregated = %v", out.Failed, out.Aggregated)
	}
	// FedAvg over reporters only: (100*0 + 300*1)/400 = 0.75 per coord.
	for i, v := range d.Global() {
		if v != 0.75 {
			t.Fatalf("global[%d] = %v, want 0.75 (renormalized over reporters)", i, v)
		}
	}
	// The round waits out the deadline because someone was cut.
	if out.RoundVirtual != 5 || d.Clock() != 5 {
		t.Fatalf("roundVirtual = %v clock = %v, want 5", out.RoundVirtual, d.Clock())
	}
	// Update sees reporters only, in selection order.
	if len(strat.updates) != 1 {
		t.Fatalf("got %d Update calls, want 1", len(strat.updates))
	}
	u := strat.updates[0]
	if !reflect.DeepEqual(u.selected, []int{0, 1}) || !reflect.DeepEqual(u.losses, []float64{0, 10}) {
		t.Fatalf("Update(%v, %v), want ([0 1], [0 10])", u.selected, u.losses)
	}
	ev := tc.find(telemetry.KindStragglerCut)
	if ev == nil {
		t.Fatal("no straggler_cut event emitted")
	}
	if !reflect.DeepEqual(ev.Clients, []int{2}) || ev.VirtualSec != 5 {
		t.Fatalf("straggler_cut clients=%v deadline=%v", ev.Clients, ev.VirtualSec)
	}
}

func TestNoDeadlineRoundLastsForSlowest(t *testing.T) {
	_, tr := newFakeCluster([]float64{1, 7, 3}, []int{10, 10, 10})
	strat := &scriptStrategy{selections: [][]int{{2, 0, 1}}}
	d := NewDriver(Config{ClientsPerRound: 3}, tr, strat, make([]float64, testDim))
	out := d.RunRound(0)
	if out.RoundVirtual != 7 || d.Clock() != 7 {
		t.Fatalf("roundVirtual = %v clock = %v, want 7", out.RoundVirtual, d.Clock())
	}
	if !reflect.DeepEqual(out.Reporters, []int{2, 0, 1}) {
		t.Fatalf("reporters = %v, want selection order [2 0 1]", out.Reporters)
	}
	if len(out.Cut) != 0 || len(out.Failed) != 0 {
		t.Fatalf("cut = %v failed = %v, want none", out.Cut, out.Failed)
	}
}

func TestTransportFailureMarksClientDead(t *testing.T) {
	fakes, tr := newFakeCluster([]float64{1, 2, 3}, []int{10, 10, 10})
	fakes[1].fail = map[int]bool{0: true}
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}, {0, 2}}}
	tc := &captureTracer{}
	d := NewDriver(Config{ClientsPerRound: 3, Tracer: tc}, tr, strat, make([]float64, testDim))

	out := d.RunRound(0)
	if !reflect.DeepEqual(out.Failed, []int{1}) {
		t.Fatalf("failed = %v, want [1]", out.Failed)
	}
	if !reflect.DeepEqual(out.Reporters, []int{0, 2}) || !out.Aggregated {
		t.Fatalf("reporters = %v aggregated = %v, want [0 2] true", out.Reporters, out.Aggregated)
	}
	// Without a deadline the server waits for the dead client's expected
	// reply time: max latency over all selected = 3.
	if out.RoundVirtual != 3 {
		t.Fatalf("roundVirtual = %v, want 3", out.RoundVirtual)
	}
	if !d.Dead(1) || d.Dead(0) || d.Dead(2) {
		t.Fatal("client 1 should be dead, 0 and 2 alive")
	}
	if ev := tc.find(telemetry.KindClientFailed); ev == nil || !reflect.DeepEqual(ev.Clients, []int{1}) {
		t.Fatalf("client_failed event = %+v, want clients [1]", ev)
	}

	// Next round: the dead client is excluded from availability, and the
	// transport is never asked to train it again.
	d.RunRound(1)
	if fakes[1].calls != 1 {
		t.Fatalf("dead client trained %d times, want 1 (the failed attempt)", fakes[1].calls)
	}
	if ev := tc.find(telemetry.KindUnavailable); ev == nil || ev.Round != 1 || !reflect.DeepEqual(ev.Clients, []int{1}) {
		t.Fatalf("unavailable event = %+v, want round 1 clients [1]", ev)
	}
}

func TestAllCutSkipsAggregation(t *testing.T) {
	_, tr := newFakeCluster([]float64{8, 9}, []int{10, 10})
	strat := &scriptStrategy{selections: [][]int{{0, 1}}}
	init := []float64{1, 2, 3}
	d := NewDriver(Config{ClientsPerRound: 2, Deadline: 5}, tr, strat, append([]float64(nil), init...))
	out := d.RunRound(0)
	if out.Aggregated || len(out.Reporters) != 0 {
		t.Fatalf("aggregated = %v reporters = %v, want no aggregation", out.Aggregated, out.Reporters)
	}
	if !reflect.DeepEqual(d.Global(), init) {
		t.Fatalf("global mutated to %v with zero reporters", d.Global())
	}
	if len(strat.updates) != 1 || len(strat.updates[0].selected) != 0 {
		t.Fatalf("Update calls = %+v, want one empty call", strat.updates)
	}
	if d.Clock() != 5 {
		t.Fatalf("clock = %v, want the deadline 5", d.Clock())
	}
}

func TestEmptySelectionAdvancesRetryTick(t *testing.T) {
	_, tr := newFakeCluster([]float64{1}, []int{10})
	strat := &scriptStrategy{selections: [][]int{nil}}
	d := NewDriver(Config{ClientsPerRound: 1}, tr, strat, make([]float64, testDim))
	out := d.RunRound(0)
	if d.Clock() != 1 || out.RoundVirtual != 1 {
		t.Fatalf("clock = %v roundVirtual = %v, want 1 (retry tick)", d.Clock(), out.RoundVirtual)
	}
	if out.Selected != nil || out.Aggregated {
		t.Fatalf("outcome = %+v, want empty round", out)
	}
	if len(strat.updates) != 1 || strat.updates[0].selected != nil && len(strat.updates[0].selected) != 0 {
		t.Fatalf("Update calls = %+v, want one nil call", strat.updates)
	}
}

func TestSummaryForwarding(t *testing.T) {
	fakes, tr := newFakeCluster([]float64{1, 2}, []int{10, 10})
	fakes[1].summary = []float64{3, 4}
	strat := &scriptStrategy{selections: [][]int{{0, 1}}}
	var got []struct {
		id     int
		counts []float64
	}
	d := NewDriver(Config{
		ClientsPerRound: 2,
		OnSummary: func(id int, counts []float64) {
			got = append(got, struct {
				id     int
				counts []float64
			}{id, counts})
		},
	}, tr, strat, make([]float64, testDim))
	d.RunRound(0)
	if len(got) != 1 || got[0].id != 1 || !reflect.DeepEqual(got[0].counts, []float64{3, 4}) {
		t.Fatalf("OnSummary calls = %+v, want one call for client 1", got)
	}
}

func TestSelectionValidationPanics(t *testing.T) {
	cases := map[string][]int{
		"invalid id":  {5},
		"negative id": {-1},
		"duplicate":   {0, 0},
		"over budget": {0, 1, 2},
	}
	for name, sel := range cases {
		t.Run(name, func(t *testing.T) {
			_, tr := newFakeCluster([]float64{1, 2, 3}, []int{10, 10, 10})
			strat := &scriptStrategy{selections: [][]int{sel}}
			d := NewDriver(Config{ClientsPerRound: 2}, tr, strat, make([]float64, testDim))
			defer func() {
				if recover() == nil {
					t.Fatalf("%s selection did not panic", name)
				}
			}()
			d.RunRound(0)
		})
	}
}

func TestSelectingUnavailableClientPanics(t *testing.T) {
	fakes, tr := newFakeCluster([]float64{1, 2}, []int{10, 10})
	fakes[0].fail = map[int]bool{0: true}
	// Round 0 kills client 0; round 1 selects it anyway.
	strat := &scriptStrategy{selections: [][]int{{0}, {0}}}
	d := NewDriver(Config{ClientsPerRound: 1}, tr, strat, make([]float64, testDim))
	d.RunRound(0)
	defer func() {
		if recover() == nil {
			t.Fatal("selecting a dead client did not panic")
		}
	}()
	d.RunRound(1)
}

func TestDriverMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	fakes, tr := newFakeCluster([]float64{1, 2, 10}, []int{10, 10, 10})
	fakes[1].fail = map[int]bool{0: true}
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}}}
	d := NewDriver(Config{ClientsPerRound: 3, Deadline: 5, Metrics: reg}, tr, strat, make([]float64, testDim))
	d.RunRound(0)
	check := func(name string, want float64) {
		t.Helper()
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("haccs_rounds_total", 1)
	check("haccs_clients_selected_total", 3)
	check("haccs_clients_straggler_cut_total", 1)
	check("haccs_clients_failed_total", 1)
	if got := reg.Gauge("haccs_virtual_clock_seconds", "").Value(); got != 5 {
		t.Errorf("clock gauge = %v, want 5", got)
	}
}

func TestFedAvgRenormalizesOverReporters(t *testing.T) {
	// Direct FedAvg unit check: weights over the passed results only.
	results := []Result{
		{Params: []float64{1, 1}, NumSamples: 1},
		{Params: []float64{4, 4}, NumSamples: 3},
	}
	avg := FedAvg(results)
	want := (1.0*1 + 3.0*4) / 4
	for i, v := range avg {
		if math.Abs(v-want) > 1e-15 {
			t.Fatalf("avg[%d] = %v, want %v", i, v, want)
		}
	}
}

// TestDriverSpanTree checks the round lifecycle span shape: one root
// "round" span per round, the six phase children under it, and one
// train span per selected client under dispatch.
func TestDriverSpanTree(t *testing.T) {
	sink := &telemetry.MemorySink{}
	spans := telemetry.NewSpanTracer(sink, nil)
	_, tr := newFakeCluster([]float64{1, 2, 3}, []int{10, 10, 10})
	strat := &scriptStrategy{selections: [][]int{{0, 2}}}
	d := NewDriver(Config{ClientsPerRound: 2, Spans: spans}, tr, strat, make([]float64, testDim))
	d.RunRound(0)

	byName := map[string][]telemetry.Event{}
	for _, e := range sink.Filter(telemetry.KindSpan) {
		byName[e.Span] = append(byName[e.Span], e)
	}
	if len(byName["round"]) != 1 {
		t.Fatalf("round spans = %d, want 1", len(byName["round"]))
	}
	root := byName["round"][0]
	if root.ParentID != "" {
		t.Fatalf("round span has parent %q", root.ParentID)
	}
	for _, phase := range []string{"availability", "select", "dispatch", "collect", "aggregate", "update"} {
		evs := byName[phase]
		if len(evs) != 1 {
			t.Fatalf("%q spans = %d, want 1", phase, len(evs))
		}
		e := evs[0]
		if e.ParentID != root.SpanID || e.TraceID != root.TraceID {
			t.Errorf("%q parent/trace = %s/%s, want %s/%s", phase, e.ParentID, e.TraceID, root.SpanID, root.TraceID)
		}
		if e.Round != 0 || e.Client != -1 {
			t.Errorf("%q round/client = %d/%d", phase, e.Round, e.Client)
		}
	}
	dispatch := byName["dispatch"][0]
	trains := byName["train"]
	if len(trains) != 2 {
		t.Fatalf("train spans = %d, want 2", len(trains))
	}
	clients := map[int]bool{}
	for _, e := range trains {
		if e.ParentID != dispatch.SpanID || e.TraceID != root.TraceID {
			t.Errorf("train span parent/trace = %s/%s, want under dispatch %s", e.ParentID, e.TraceID, dispatch.SpanID)
		}
		clients[e.Client] = true
	}
	if !clients[0] || !clients[2] {
		t.Errorf("train spans cover clients %v, want 0 and 2", clients)
	}
}

// TestDriverSpanTreeEmptySelection checks an empty round still closes
// its spans without a dispatch subtree.
func TestDriverSpanTreeEmptySelection(t *testing.T) {
	sink := &telemetry.MemorySink{}
	spans := telemetry.NewSpanTracer(sink, nil)
	_, tr := newFakeCluster([]float64{1}, []int{10})
	strat := &scriptStrategy{selections: [][]int{nil}}
	d := NewDriver(Config{ClientsPerRound: 1, Spans: spans}, tr, strat, make([]float64, testDim))
	d.RunRound(0)

	names := map[string]int{}
	for _, e := range sink.Filter(telemetry.KindSpan) {
		names[e.Span]++
	}
	if names["round"] != 1 || names["availability"] != 1 || names["select"] != 1 {
		t.Fatalf("span counts = %v", names)
	}
	if names["train"] != 0 {
		t.Fatalf("empty selection produced %d train spans", names["train"])
	}
}
