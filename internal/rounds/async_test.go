package rounds

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"haccs/internal/telemetry"
)

func TestConfigValidateTypedErrors(t *testing.T) {
	if err := (Config{ClientsPerRound: 3}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{ClientsPerRound: 0}).Validate(); !errors.Is(err, ErrBadClientsPerRound) {
		t.Fatalf("ClientsPerRound 0: got %v, want ErrBadClientsPerRound", err)
	}
	if err := (Config{ClientsPerRound: 3, Deadline: -1}).Validate(); !errors.Is(err, ErrNegativeDeadline) {
		t.Fatalf("Deadline -1: got %v, want ErrNegativeDeadline", err)
	}
}

func TestValidateAsyncTypedErrors(t *testing.T) {
	base := Config{ClientsPerRound: 4}
	if err := ValidateAsync(base, AsyncConfig{}); err != nil {
		t.Fatalf("zero AsyncConfig rejected: %v", err)
	}
	if err := ValidateAsync(Config{ClientsPerRound: 4, Deadline: 5}, AsyncConfig{}); !errors.Is(err, ErrDeadlineInAsync) {
		t.Fatalf("deadline in async: got %v, want ErrDeadlineInAsync", err)
	}
	if err := ValidateAsync(base, AsyncConfig{BufferK: 5}); !errors.Is(err, ErrBadBufferK) {
		t.Fatalf("BufferK > budget: got %v, want ErrBadBufferK", err)
	}
	if err := ValidateAsync(base, AsyncConfig{BufferK: -1}); !errors.Is(err, ErrBadBufferK) {
		t.Fatalf("BufferK -1: got %v, want ErrBadBufferK", err)
	}
	if err := ValidateAsync(base, AsyncConfig{MaxStaleness: -1}); !errors.Is(err, ErrBadMaxStaleness) {
		t.Fatalf("MaxStaleness -1: got %v, want ErrBadMaxStaleness", err)
	}
	if err := ValidateAsync(Config{ClientsPerRound: 0}, AsyncConfig{}); !errors.Is(err, ErrBadClientsPerRound) {
		t.Fatalf("bad budget: got %v, want ErrBadClientsPerRound", err)
	}
}

func TestNewDriverPanicsWithTypedError(t *testing.T) {
	_, tr := newFakeCluster([]float64{1}, []int{100})
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrNegativeDeadline) {
			t.Fatalf("panic value = %v, want error wrapping ErrNegativeDeadline", r)
		}
	}()
	NewDriver(Config{ClientsPerRound: 1, Deadline: -2}, tr, &scriptStrategy{}, make([]float64, testDim))
}

// asyncCluster is the shared hand-computable fixture: three clients
// with latencies {1, 1.5, 4} and samples {100, 300, 600}, concurrency
// 3, BufferK 2. Fake params are id+round per coordinate, so deltas are
// computable by hand against the dispatch-time global.
func newAsyncDriver(t *testing.T, strat Strategy, async AsyncConfig, opts ...func(*Config)) (*AsyncDriver, []*fakeProxy) {
	t.Helper()
	fakes, tr := newFakeCluster([]float64{1, 1.5, 4}, []int{100, 300, 600})
	cfg := Config{ClientsPerRound: 3}
	for _, o := range opts {
		o(&cfg)
	}
	return NewAsyncDriver(cfg, async, tr, strat, make([]float64, testDim)), fakes
}

func TestAsyncBufferedAggregation(t *testing.T) {
	// Cycle 0: dispatch {0,1,2}; 0 and 1 finish first and flush at K=2
	// while 2 keeps training. Cycle 1: refill {0,1} against v1; they
	// flush again. Cycle 2: refill {0,1}; client 2 (dispatched at v0)
	// ties client 0 at finish 4 and pops first on the dispatch-seq
	// tie-break, flushing a mixed-staleness buffer {τ=2, τ=0}.
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}, {0, 1}, {0, 1}}}
	d, _ := newAsyncDriver(t, strat, AsyncConfig{BufferK: 2})

	out := d.RunRound(0)
	if !reflect.DeepEqual(out.Selected, []int{0, 1, 2}) || !reflect.DeepEqual(out.Reporters, []int{0, 1}) {
		t.Fatalf("cycle 0: selected %v reporters %v", out.Selected, out.Reporters)
	}
	if out.RoundVirtual != 1.5 || d.Clock() != 1.5 || !out.Aggregated {
		t.Fatalf("cycle 0: virtual %v clock %v aggregated %v", out.RoundVirtual, d.Clock(), out.Aggregated)
	}
	// Deltas at v0 are id per coord; both τ=0, so plain sample-weighted
	// FedAvg over the buffer: (100·0 + 300·1)/400 = 0.75.
	g1 := 0.75
	for i, v := range d.Global() {
		if v != g1 {
			t.Fatalf("cycle 0: global[%d] = %v, want %v", i, v, g1)
		}
	}
	if d.InFlight() != 1 {
		t.Fatalf("cycle 0: in-flight = %d, want 1 (client 2 still training)", d.InFlight())
	}

	out = d.RunRound(1)
	if !reflect.DeepEqual(out.Selected, []int{0, 1}) || !reflect.DeepEqual(out.Reporters, []int{0, 1}) {
		t.Fatalf("cycle 1: selected %v reporters %v", out.Selected, out.Reporters)
	}
	// Round-1 params are id+1; deltas vs g1: {0.25, 1.25}.
	g2 := g1 + (100*(1-g1)+300*(2-g1))/400
	for i, v := range d.Global() {
		if v != g2 {
			t.Fatalf("cycle 1: global[%d] = %v, want %v", i, v, g2)
		}
	}
	if d.Clock() != 3 {
		t.Fatalf("cycle 1: clock %v, want 3", d.Clock())
	}

	out = d.RunRound(2)
	// Pop order at the finish-time tie (both at clock 4): client 2
	// (seq 2) before client 0 (seq 5).
	if !reflect.DeepEqual(out.Reporters, []int{2, 0}) {
		t.Fatalf("cycle 2: reporters %v, want [2 0] (dispatch-seq tie-break)", out.Reporters)
	}
	if !reflect.DeepEqual(out.Losses, []float64{20, 0}) {
		t.Fatalf("cycle 2: losses %v", out.Losses)
	}
	// Client 2 trained at v0 (delta 2 per coord) and pops at v2 → τ=2;
	// client 0 trained at v2 (delta 2 − g2) with τ=0. FedBuff weights
	// n/(1+τ)^0.5 renormalized over the buffer.
	w2 := 600 / math.Pow(3, DefaultStalenessExponent)
	w0 := 100.0
	g3 := g2 + (w2*2+w0*(2-g2))/(w2+w0)
	for i, v := range d.Global() {
		if v != g3 {
			t.Fatalf("cycle 2: global[%d] = %v, want %v", i, v, g3)
		}
	}
	if d.Clock() != 4 || out.RoundVirtual != 1 {
		t.Fatalf("cycle 2: clock %v virtual %v, want 4 / 1", d.Clock(), out.RoundVirtual)
	}
	if d.Version() != 3 {
		t.Fatalf("version = %d, want 3", d.Version())
	}
	// Client 1's cycle-2 update is still in flight.
	if d.InFlight() != 1 {
		t.Fatalf("cycle 2: in-flight = %d, want 1", d.InFlight())
	}
}

func TestAsyncStaleDrop(t *testing.T) {
	// Same trajectory as TestAsyncBufferedAggregation, but with
	// MaxStaleness 1 client 2's τ=2 update is dropped at its finish
	// event instead of buffered; the buffer then fills from the fresh
	// cycle-2 dispatches.
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}, {0, 1}, {0, 1}}}
	tc := &captureTracer{}
	d, _ := newAsyncDriver(t, strat, AsyncConfig{BufferK: 2, MaxStaleness: 1}, func(c *Config) { c.Tracer = tc })

	d.RunRound(0)
	d.RunRound(1)
	out := d.RunRound(2)
	if !reflect.DeepEqual(out.Cut, []int{2}) {
		t.Fatalf("cut = %v, want [2] (stale-dropped)", out.Cut)
	}
	if !reflect.DeepEqual(out.Reporters, []int{0, 1}) {
		t.Fatalf("reporters = %v, want [0 1]", out.Reporters)
	}
	ev := tc.find(telemetry.KindUpdateStale)
	if ev == nil || ev.Client != 2 || ev.Staleness != 2 {
		t.Fatalf("update_stale event = %+v, want client 2 staleness 2", ev)
	}
	// Clock rides to client 1's cycle-2 finish: 3 + 1.5 = 4.5.
	if d.Clock() != 4.5 {
		t.Fatalf("clock = %v, want 4.5", d.Clock())
	}
	st := d.AsyncState()
	if st.StaleDropped != 1 || st.Buffered != 6 {
		t.Fatalf("introspection: stale %d buffered %d, want 1 / 6", st.StaleDropped, st.Buffered)
	}
}

func TestAsyncFailureMarksDead(t *testing.T) {
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}}}
	fakes, tr := newFakeCluster([]float64{1, 1.5, 4}, []int{100, 300, 600})
	fakes[1].fail = map[int]bool{0: true}
	d := NewAsyncDriver(Config{ClientsPerRound: 3}, AsyncConfig{BufferK: 2}, tr, strat, make([]float64, testDim))

	out := d.RunRound(0)
	if !reflect.DeepEqual(out.Failed, []int{1}) {
		t.Fatalf("failed = %v, want [1]", out.Failed)
	}
	if !d.Dead(1) {
		t.Fatal("client 1 not marked dead")
	}
	// The surviving dispatches still drain and flush: 0 and 2 fill the
	// buffer at client 2's finish.
	if !reflect.DeepEqual(out.Reporters, []int{0, 2}) {
		t.Fatalf("reporters = %v, want [0 2]", out.Reporters)
	}
	if d.Clock() != 4 {
		t.Fatalf("clock = %v, want 4", d.Clock())
	}
}

func TestAsyncIdleTick(t *testing.T) {
	strat := &scriptStrategy{} // selects nothing, ever
	d, _ := newAsyncDriver(t, strat, AsyncConfig{BufferK: 1})
	out := d.RunRound(0)
	if out.Aggregated || out.RoundVirtual != 1 || d.Clock() != 1 {
		t.Fatalf("idle cycle: %+v clock %v, want 1-second retry tick", out, d.Clock())
	}
	if len(strat.updates) != 1 || len(strat.updates[0].selected) != 0 {
		t.Fatalf("strategy updates = %+v, want one empty update", strat.updates)
	}
}

func TestAsyncPartialFlushOnDryQueue(t *testing.T) {
	// BufferK 3 can never fill once only one client remains schedulable:
	// the dry-queue partial flush must still fold what arrived.
	strat := &scriptStrategy{selections: [][]int{{0}}}
	d, _ := newAsyncDriver(t, strat, AsyncConfig{BufferK: 3})
	out := d.RunRound(0)
	if !out.Aggregated || !reflect.DeepEqual(out.Reporters, []int{0}) {
		t.Fatalf("partial flush: %+v", out)
	}
	if d.Version() != 1 {
		t.Fatalf("version = %d, want 1", d.Version())
	}
}

func TestAsyncEvents(t *testing.T) {
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}}}
	tc := &captureTracer{}
	d, _ := newAsyncDriver(t, strat, AsyncConfig{BufferK: 2}, func(c *Config) { c.Tracer = tc })
	d.RunRound(0)

	buffered := 0
	for _, e := range tc.events {
		if e.Kind == telemetry.KindUpdateBuffered {
			buffered++
			if e.Fill == 0 || e.Clock == 0 {
				t.Fatalf("update_buffered missing fill/clock: %+v", e)
			}
		}
	}
	if buffered != 2 {
		t.Fatalf("update_buffered events = %d, want 2", buffered)
	}
	agg := tc.find(telemetry.KindAggregateAsync)
	if agg == nil {
		t.Fatal("no aggregate_async event")
	}
	if !reflect.DeepEqual(agg.Clients, []int{0, 1}) || agg.Fill != 2 || agg.Staleness != 0 {
		t.Fatalf("aggregate_async = %+v", agg)
	}
}

// TestAsyncSpanTree checks the async cycle span shape: the shared
// availability/select/dispatch phases, then drain in place of the sync
// driver's collect, with train spans under dispatch.
func TestAsyncSpanTree(t *testing.T) {
	sink := &telemetry.MemorySink{}
	spans := telemetry.NewSpanTracer(sink, nil)
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}}}
	d, _ := newAsyncDriver(t, strat, AsyncConfig{BufferK: 2}, func(c *Config) { c.Spans = spans })
	d.RunRound(0)

	byName := map[string][]telemetry.Event{}
	for _, e := range sink.Filter(telemetry.KindSpan) {
		byName[e.Span] = append(byName[e.Span], e)
	}
	if len(byName["round"]) != 1 {
		t.Fatalf("round spans = %d, want 1", len(byName["round"]))
	}
	root := byName["round"][0]
	for _, phase := range []string{"availability", "select", "dispatch", "drain", "aggregate", "update"} {
		evs := byName[phase]
		if len(evs) != 1 {
			t.Fatalf("%q spans = %d, want 1", phase, len(evs))
		}
		if evs[0].ParentID != root.SpanID {
			t.Errorf("%q span not under the round root", phase)
		}
	}
	if got := len(byName["train"]); got != 3 {
		t.Fatalf("train spans = %d, want 3", got)
	}
	if len(byName["collect"]) != 0 {
		t.Fatal("async cycle emitted a sync collect span")
	}
}

func TestAsyncDriverMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}}}
	d, _ := newAsyncDriver(t, strat, AsyncConfig{BufferK: 2}, func(c *Config) { c.Metrics = reg })
	d.RunRound(0)
	check := func(name string, want float64) {
		t.Helper()
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("haccs_async_updates_buffered_total", 2)
	check("haccs_async_updates_stale_total", 0)
	check("haccs_async_aggregations_total", 1)
	check("haccs_rounds_total", 1)
	check("haccs_clients_selected_total", 3)
	if got := reg.Histogram("haccs_async_staleness", "", StalenessBuckets).Snapshot().Count; got != 2 {
		t.Errorf("haccs_async_staleness count = %d, want 2", got)
	}
	if got := reg.Gauge("haccs_async_buffer_fill", "").Value(); got != 0 {
		t.Errorf("buffer fill gauge = %v, want 0 after flush", got)
	}
	if got := reg.Gauge("haccs_virtual_clock_seconds", "").Value(); got != 1.5 {
		t.Errorf("clock gauge = %v, want 1.5", got)
	}
}

// runAsyncTrajectory drives a fresh fixture for n cycles with the
// canonical repeating script and returns the driver.
func runAsyncTrajectory(t *testing.T, async AsyncConfig, from, to int, d *AsyncDriver) *AsyncDriver {
	t.Helper()
	if d == nil {
		d, _ = newAsyncDriver(t, trajectoryStrategy{}, async)
	}
	for r := from; r < to; r++ {
		d.RunRound(r)
	}
	return d
}

// trajectoryStrategy re-selects every available client each cycle —
// a stateless stand-in that keeps the queue saturated so snapshots
// land mid-queue.
type trajectoryStrategy struct{}

func (trajectoryStrategy) Select(round int, available []bool, k int) []int {
	var out []int
	for i, ok := range available {
		if ok && len(out) < k {
			out = append(out, i)
		}
	}
	return out
}
func (trajectoryStrategy) Update(int, []int, []float64) {}

func TestAsyncResumeBitIdentical(t *testing.T) {
	async := AsyncConfig{BufferK: 2, MaxStaleness: 4}
	const snapAt, total = 3, 9

	ref := runAsyncTrajectory(t, async, 0, total, nil)

	half := runAsyncTrajectory(t, async, 0, snapAt, nil)
	if half.InFlight() == 0 {
		t.Fatal("fixture defect: snapshot must land with updates in flight")
	}
	snap, err := half.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	global := append([]float64(nil), half.Global()...)

	resumed, _ := newAsyncDriver(t, trajectoryStrategy{}, async)
	if err := resumed.SetGlobal(global); err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	runAsyncTrajectory(t, async, snapAt, total, resumed)

	if resumed.Clock() != ref.Clock() {
		t.Fatalf("clock diverged: resumed %v, reference %v", resumed.Clock(), ref.Clock())
	}
	for i := range ref.Global() {
		if math.Float64bits(resumed.Global()[i]) != math.Float64bits(ref.Global()[i]) {
			t.Fatalf("global[%d] diverged: resumed %v, reference %v", i, resumed.Global()[i], ref.Global()[i])
		}
	}
	snapRef, err := ref.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	snapResumed, err := resumed.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapRef, snapResumed) {
		t.Fatal("final snapshots differ between resumed and uninterrupted runs")
	}
}

func TestAsyncRestoreRejectsMismatch(t *testing.T) {
	async := AsyncConfig{BufferK: 2}
	d := runAsyncTrajectory(t, async, 0, 2, nil)
	snap, err := d.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	// Wrong roster size.
	_, tr := newFakeCluster([]float64{1, 2}, []int{100, 100})
	other := NewAsyncDriver(Config{ClientsPerRound: 2}, async, tr, trajectoryStrategy{}, make([]float64, testDim))
	if err := other.RestoreState(snap); err == nil {
		t.Fatal("restore accepted a snapshot for a different roster")
	}

	// Corrupt payload.
	if err := d.RestoreState([]byte("junk")); err == nil {
		t.Fatal("restore accepted junk")
	}
}

func TestAsyncIntrospectionState(t *testing.T) {
	strat := &scriptStrategy{selections: [][]int{{0, 1, 2}}}
	d, _ := newAsyncDriver(t, strat, AsyncConfig{BufferK: 2})
	st := d.AsyncState()
	if st.BufferK != 2 || st.Version != 0 || len(st.InFlight) != 0 {
		t.Fatalf("initial state = %+v", st)
	}
	if st.StalenessExponent != DefaultStalenessExponent {
		t.Fatalf("staleness exponent = %v, want default", st.StalenessExponent)
	}
	d.RunRound(0)
	st = d.AsyncState()
	if st.Version != 1 || st.LastFlush != 2 || st.Buffered != 2 {
		t.Fatalf("post-cycle state = %+v", st)
	}
	if !reflect.DeepEqual(st.InFlight, []int{2}) {
		t.Fatalf("in-flight = %v, want [2]", st.InFlight)
	}
	if st.BufferFill != 0 {
		t.Fatalf("buffer fill = %d, want 0 at cycle boundary", st.BufferFill)
	}
	if st.StalenessCounts[0] != 2 {
		t.Fatalf("staleness counts = %v", st.StalenessCounts)
	}
}
