package rounds

import (
	"errors"
	"strings"
	"testing"

	"haccs/internal/telemetry"
)

// hierTestProxy is a deterministic in-process client: training returns
// params + (id+1) with NumSamples 1, so every aggregate over a
// power-of-two reporter count is exact dyadic-rational arithmetic and
// the flat-vs-hierarchical comparison is bitwise.
type hierTestProxy struct {
	id  int
	lat float64
}

func (p *hierTestProxy) Train(round, worker, slot int, params []float64, _ telemetry.SpanContext) (Result, error) {
	out := make([]float64, len(params))
	for i, v := range params {
		out[i] = v + float64(p.id+1)
	}
	return Result{ClientID: p.id, Params: out, NumSamples: 1, Loss: float64(p.id)}, nil
}

func (p *hierTestProxy) Latency() float64 { return p.lat }

type hierTestTransport struct{ proxies []Proxy }

func (t hierTestTransport) Proxies() []Proxy { return t.proxies }
func (t hierTestTransport) Parallelism() int { return len(t.proxies) }

// fakeShard runs the shard side of a sync round in-process: it trains
// every selected client (including to-be-cut stragglers, matching the
// flat wire semantics), recomputes the deadline cut, and returns the
// unnormalized sample-weighted partial over its reporters.
type fakeShard struct {
	id       int
	clients  []ShardClient
	proxies  map[int]*hierTestProxy
	deadline float64
	fail     func(round int) bool
}

func (s *fakeShard) ID() int                { return s.id }
func (s *fakeShard) Clients() []ShardClient { return s.clients }

func (s *fakeShard) Exec(cmd ShardCmd) (*ShardReport, error) {
	if s.fail != nil && s.fail(cmd.Round) {
		return nil, errors.New("fake shard down")
	}
	rep := &ShardReport{}
	var partial []float64
	for _, id := range cmd.Selected {
		p := s.proxies[id]
		res, err := p.Train(cmd.Round, 0, 0, cmd.Params, telemetry.SpanContext{})
		if err != nil {
			rep.Failed = append(rep.Failed, id)
			continue
		}
		if s.deadline > 0 && p.lat > s.deadline {
			rep.Cut = append(rep.Cut, id)
			continue
		}
		if partial == nil {
			partial = make([]float64, len(res.Params))
		}
		for i, v := range res.Params {
			partial[i] += float64(res.NumSamples) * v
		}
		rep.Samples += res.NumSamples
		rep.Reporters = append(rep.Reporters, Result{
			ClientID:   id,
			NumSamples: res.NumSamples,
			Loss:       res.Loss,
		})
	}
	rep.Partial = partial
	rep.BaseVersion = cmd.Version
	return rep, nil
}

// buildHierFixture partitions n clients over two fake shards (even IDs
// on shard 0, odd on shard 1) and returns matching flat and
// hierarchical drivers sharing latencies, script, and deadline.
func buildHierFixture(t *testing.T, n int, lats []float64, deadline float64, script [][]int, dim int) (*Driver, *HierDriver) {
	t.Helper()
	proxies := make([]Proxy, n)
	byID := make(map[int]*hierTestProxy, n)
	for i := 0; i < n; i++ {
		p := &hierTestProxy{id: i, lat: lats[i%len(lats)]}
		proxies[i] = p
		byID[i] = p
	}
	flat := NewDriver(Config{ClientsPerRound: 4, Deadline: deadline},
		hierTestTransport{proxies}, &scriptStrategy{selections: script}, make([]float64, dim))

	shards := make([]ShardProxy, 2)
	for slot := 0; slot < 2; slot++ {
		fs := &fakeShard{id: slot, proxies: map[int]*hierTestProxy{}, deadline: deadline}
		for id, p := range byID {
			if id%2 == slot {
				fs.proxies[id] = p
				fs.clients = append(fs.clients, ShardClient{ID: id, Latency: p.lat})
			}
		}
		shards[slot] = fs
	}
	hier, err := NewHierDriver(Config{ClientsPerRound: 4, Deadline: deadline},
		HierConfig{Mode: ModeSync}, shards, &scriptStrategy{selections: script}, make([]float64, dim))
	if err != nil {
		t.Fatal(err)
	}
	return flat, hier
}

// TestHierMatchesFlatBitwise pins the core hierarchical-FedAvg
// property: with exact arithmetic (integer updates, unit sample
// weights, power-of-two reporter counts) the shard grouping is
// invisible and the hierarchical trajectory equals the flat one bit
// for bit, round by round.
func TestHierMatchesFlatBitwise(t *testing.T) {
	script := [][]int{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
		{1, 3, 5, 7},
		{0, 2, 4, 6},
		{2, 3, 6, 7},
		{0, 1, 4, 5},
	}
	flat, hier := buildHierFixture(t, 8, []float64{2}, 0, script, 5)
	for r := 0; r < len(script); r++ {
		fo := flat.RunRound(r)
		ho := hier.RunRound(r)
		if !fo.Aggregated || !ho.Aggregated {
			t.Fatalf("round %d: aggregated flat=%v hier=%v", r, fo.Aggregated, ho.Aggregated)
		}
		for i := range flat.Global() {
			if flat.Global()[i] != hier.Global()[i] {
				t.Fatalf("round %d param %d: flat %v hier %v", r, i, flat.Global()[i], hier.Global()[i])
			}
		}
		if flat.Clock() != hier.Clock() {
			t.Fatalf("round %d clock: flat %v hier %v", r, flat.Clock(), hier.Clock())
		}
	}
}

// TestHierMatchesFlatWithCuts repeats the bitwise comparison with a
// straggler deadline: clients 8 and 9 (latency 10 > deadline 5) are
// cut on both paths, leaving power-of-two reporter counts so the
// arithmetic stays exact.
func TestHierMatchesFlatWithCuts(t *testing.T) {
	lats := []float64{2, 2, 2, 2, 2, 2, 2, 2, 10, 10}
	script := [][]int{
		{0, 1, 8, 9}, // reporters {0,1}, cut {8,9}
		{2, 3, 4, 5}, // clean round
		{6, 7, 8, 9}, // reporters {6,7}, cut {8,9}
		{0, 2, 4, 8}, // reporters {0,2,4}? no — 3 reporters is inexact
	}
	// Replace the last round: one straggler, leaving 2 reporters + a
	// repeat pair keeps counts in {2,4}.
	script[3] = []int{1, 3, 8, 9}
	n := 10
	proxies := make([]Proxy, n)
	byID := make(map[int]*hierTestProxy, n)
	for i := 0; i < n; i++ {
		p := &hierTestProxy{id: i, lat: lats[i]}
		proxies[i] = p
		byID[i] = p
	}
	const deadline = 5.0
	flat := NewDriver(Config{ClientsPerRound: 4, Deadline: deadline},
		hierTestTransport{proxies}, &scriptStrategy{selections: script}, make([]float64, 3))
	shards := make([]ShardProxy, 2)
	for slot := 0; slot < 2; slot++ {
		fs := &fakeShard{id: slot, proxies: map[int]*hierTestProxy{}, deadline: deadline}
		for id, p := range byID {
			if id%2 == slot {
				fs.proxies[id] = p
				fs.clients = append(fs.clients, ShardClient{ID: id, Latency: p.lat})
			}
		}
		shards[slot] = fs
	}
	hier, err := NewHierDriver(Config{ClientsPerRound: 4, Deadline: deadline},
		HierConfig{Mode: ModeSync}, shards, &scriptStrategy{selections: script}, make([]float64, 3))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < len(script); r++ {
		fo := flat.RunRound(r)
		ho := hier.RunRound(r)
		if len(fo.Cut) != len(ho.Cut) {
			t.Fatalf("round %d cut: flat %v hier %v", r, fo.Cut, ho.Cut)
		}
		for i := range flat.Global() {
			if flat.Global()[i] != hier.Global()[i] {
				t.Fatalf("round %d param %d: flat %v hier %v", r, i, flat.Global()[i], hier.Global()[i])
			}
		}
		if flat.Clock() != hier.Clock() {
			t.Fatalf("round %d clock: flat %v hier %v", r, flat.Clock(), hier.Clock())
		}
	}
}

// TestHierShardFailure checks whole-shard loss semantics: the failed
// shard's selected clients are discarded for the round (Cut) but stay
// alive, and the surviving shard's partial still aggregates with
// renormalized weights.
func TestHierShardFailure(t *testing.T) {
	script := [][]int{
		{0, 1, 2, 3},
		{0, 1, 2, 3},
		{0, 1, 2, 3},
	}
	n := 8
	byID := make(map[int]*hierTestProxy, n)
	for i := 0; i < n; i++ {
		byID[i] = &hierTestProxy{id: i, lat: 2}
	}
	shards := make([]ShardProxy, 2)
	for slot := 0; slot < 2; slot++ {
		fs := &fakeShard{id: slot, proxies: map[int]*hierTestProxy{}}
		if slot == 1 {
			fs.fail = func(round int) bool { return round == 1 }
		}
		for id, p := range byID {
			if id%2 == slot {
				fs.proxies[id] = p
				fs.clients = append(fs.clients, ShardClient{ID: id, Latency: p.lat})
			}
		}
		shards[slot] = fs
	}
	hier, err := NewHierDriver(Config{ClientsPerRound: 4},
		HierConfig{Mode: ModeSync}, shards, &scriptStrategy{selections: script}, make([]float64, 2))
	if err != nil {
		t.Fatal(err)
	}
	if o := hier.RunRound(0); len(o.Reporters) != 4 {
		t.Fatalf("round 0 reporters = %v", o.Reporters)
	}
	o := hier.RunRound(1)
	if len(o.Cut) != 2 || len(o.Failed) != 0 {
		t.Fatalf("round 1: cut %v failed %v, want shard 1's clients cut", o.Cut, o.Failed)
	}
	if len(o.Reporters) != 2 || !o.Aggregated {
		t.Fatalf("round 1: reporters %v aggregated %v", o.Reporters, o.Aggregated)
	}
	for _, id := range []int{1, 3} {
		if hier.Dead(id) {
			t.Fatalf("client %d marked dead after shard failure", id)
		}
	}
	// The shard recovers: the full selection reports again.
	if o := hier.RunRound(2); len(o.Reporters) != 4 {
		t.Fatalf("round 2 reporters = %v", o.Reporters)
	}
	sts := hier.ShardStatuses()
	if sts[1].Failures != 1 {
		t.Fatalf("shard 1 failures = %d, want 1", sts[1].Failures)
	}
}

// TestHierReportValidation checks that a shard disagreeing with the
// root's deadline arithmetic is rejected as a whole-shard failure.
func TestHierReportValidation(t *testing.T) {
	n := 4
	byID := make(map[int]*hierTestProxy, n)
	for i := 0; i < n; i++ {
		byID[i] = &hierTestProxy{id: i, lat: 2}
	}
	// Shard 1 lies about its cut set: deadline arithmetic mismatch.
	lying := &fakeShard{id: 1, proxies: map[int]*hierTestProxy{}, deadline: 1}
	honest := &fakeShard{id: 0, proxies: map[int]*hierTestProxy{}}
	for id, p := range byID {
		fs := honest
		if id%2 == 1 {
			fs = lying
		}
		fs.proxies[id] = p
		fs.clients = append(fs.clients, ShardClient{ID: id, Latency: p.lat})
	}
	hier, err := NewHierDriver(Config{ClientsPerRound: 4},
		HierConfig{Mode: ModeSync}, []ShardProxy{honest, lying},
		&scriptStrategy{selections: [][]int{{0, 1, 2, 3}}}, make([]float64, 2))
	if err != nil {
		t.Fatal(err)
	}
	o := hier.RunRound(0)
	// The lying shard's clients (1, 3) are cut; the honest shard's
	// reporters (0, 2) aggregate.
	if len(o.Cut) != 2 || len(o.Reporters) != 2 {
		t.Fatalf("cut %v reporters %v", o.Cut, o.Reporters)
	}
}

// TestHierRosterValidation checks constructor rejection of overlapping
// and non-dense shard rosters.
func TestHierRosterValidation(t *testing.T) {
	mk := func(id int, clients ...int) *fakeShard {
		fs := &fakeShard{id: id, proxies: map[int]*hierTestProxy{}}
		for _, c := range clients {
			fs.clients = append(fs.clients, ShardClient{ID: c, Latency: 1})
		}
		return fs
	}
	cases := []struct {
		name   string
		shards []ShardProxy
		want   string
	}{
		{"overlap", []ShardProxy{mk(0, 0, 1), mk(1, 1, 2)}, "owned by shards"},
		{"out of range", []ShardProxy{mk(0, 0, 1), mk(1, 2, 5)}, "outside the dense roster"},
		{"none", []ShardProxy{}, "at least one shard"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewHierDriver(Config{ClientsPerRound: 2}, HierConfig{Mode: ModeSync},
				tc.shards, &scriptStrategy{}, make([]float64, 1))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestHierCheckpointRoundTrip checks the driver state component
// restores clock, dead mask, model version and async bookkeeping.
func TestHierCheckpointRoundTrip(t *testing.T) {
	script := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}}
	_, hier := buildHierFixture(t, 8, []float64{2}, 0, script, 3)
	hier.RunRound(0)
	hier.RunRound(1)
	state, err := hier.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	global := append([]float64(nil), hier.Global()...)

	_, restored := buildHierFixture(t, 8, []float64{2}, 0, script, 3)
	if err := restored.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if err := restored.SetGlobal(global); err != nil {
		t.Fatal(err)
	}
	if restored.Clock() != hier.Clock() || restored.Version() != hier.Version() {
		t.Fatalf("restored clock/version %v/%d, want %v/%d",
			restored.Clock(), restored.Version(), hier.Clock(), hier.Version())
	}
	// Wrong-geometry snapshots are rejected.
	_, small := buildHierFixture(t, 4, []float64{2}, 0, script, 3)
	if err := small.RestoreState(state); err == nil {
		t.Fatal("restore into a smaller roster should fail")
	}
}

// asyncFakeShard scripts the async shard surface: each Exec returns a
// fixed delta with the shard's current base version, tracking resyncs.
type asyncFakeShard struct {
	id      int
	clients []ShardClient
	delta   float64
	clock   float64
	base    int
	execs   int
}

func (s *asyncFakeShard) ID() int                { return s.id }
func (s *asyncFakeShard) Clients() []ShardClient { return s.clients }

func (s *asyncFakeShard) Exec(cmd ShardCmd) (*ShardReport, error) {
	s.execs++
	if cmd.Params != nil {
		s.base = cmd.Version
	}
	s.clock += float64(s.id + 1)
	return &ShardReport{
		Partial:     []float64{s.delta},
		Samples:     1,
		Reporters:   []Result{{ClientID: s.clients[0].ID, NumSamples: 1, Loss: 0.5}},
		LocalClock:  s.clock,
		BaseVersion: s.base,
	}, nil
}

// TestHierAsyncMerge checks the staleness-weighted async merge: with
// ResyncEvery 2 the shards' bases lag by one version on odd cycles,
// discounting their deltas by 1/(1+τ)^α, and the root clock tracks the
// shard-local frontier.
func TestHierAsyncMerge(t *testing.T) {
	mkShards := func() []ShardProxy {
		return []ShardProxy{
			&asyncFakeShard{id: 0, clients: []ShardClient{{ID: 0, Latency: 1}}, delta: 2},
			&asyncFakeShard{id: 1, clients: []ShardClient{{ID: 1, Latency: 1}}, delta: 4},
		}
	}
	run := func() []float64 {
		d, err := NewHierDriver(Config{ClientsPerRound: 2},
			HierConfig{Mode: ModeAsync, ResyncEvery: 2, Async: AsyncConfig{StalenessExponent: 1}},
			mkShards(), nil, []float64{0})
		if err != nil {
			t.Fatal(err)
		}
		var traj []float64
		for r := 0; r < 4; r++ {
			o := d.RunRound(r)
			if !o.Aggregated {
				t.Fatalf("cycle %d did not aggregate", r)
			}
			traj = append(traj, d.Global()[0])
		}
		if d.Version() != 4 {
			t.Fatalf("version = %d, want 4", d.Version())
		}
		if d.Clock() != 8 {
			// Shard 1 advances its local clock by 2 per cycle; the root
			// clock rides the frontier: 2, 4, 6, 8.
			t.Fatalf("clock = %v, want 8", d.Clock())
		}
		return traj
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("async trajectory not deterministic at cycle %d: %v vs %v", i, a, b)
		}
	}
	// Cycle 0 (resync, τ=0 both): equal weights → (2+4)/2 = 3.
	if a[0] != 3 {
		t.Fatalf("cycle 0 global = %v, want 3", a[0])
	}
	// Cycle 1 (no resync): both bases lag one version (τ=1), weights
	// still equal → another +3.
	if a[1] != 6 {
		t.Fatalf("cycle 1 global = %v, want 6", a[1])
	}
}

// TestHierAsyncStaleDrop checks MaxStaleness excludes a lagging
// shard's flush entirely.
func TestHierAsyncStaleDrop(t *testing.T) {
	fresh := &asyncFakeShard{id: 0, clients: []ShardClient{{ID: 0, Latency: 1}}, delta: 2}
	stale := &staleShard{asyncFakeShard{id: 1, clients: []ShardClient{{ID: 1, Latency: 1}}, delta: 100}}
	d, err := NewHierDriver(Config{ClientsPerRound: 2},
		HierConfig{Mode: ModeAsync, ResyncEvery: 1, Async: AsyncConfig{MaxStaleness: 2, StalenessExponent: 1}},
		[]ShardProxy{fresh, stale}, nil, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		d.RunRound(r)
	}
	// The stale shard always reports a base 10 versions behind; its
	// delta of 100 must never reach the global model.
	if g := d.Global()[0]; g != 10 {
		t.Fatalf("global = %v, want 10 (five merges of the fresh shard's +2)", g)
	}
}

// staleShard reports a base version far behind whatever the root sent.
type staleShard struct{ asyncFakeShard }

func (s *staleShard) Exec(cmd ShardCmd) (*ShardReport, error) {
	rep, err := s.asyncFakeShard.Exec(cmd)
	if rep != nil {
		rep.BaseVersion = cmd.Version - 10
	}
	return rep, err
}
