package rounds

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"haccs/internal/fleet"
)

// asyncDriverStateVersion versions the async driver's gob payload.
const asyncDriverStateVersion = 1

// asyncEntryState is the serialized form of one in-flight (or, for
// completeness, buffered) update. Entries are trained eagerly at
// dispatch, so a snapshot taken between cycles carries finished deltas
// waiting on their virtual finish events — restoring replays the event
// queue, never the training.
type asyncEntryState struct {
	Client        int
	DispatchRound int
	ModelVersion  int
	Finish        float64
	Seq           uint64
	Delta         []float64
	Loss          float64
	NumSamples    int
	Summary       []float64
	HasStats      bool
	Stats         fleet.ClientStats
}

// asyncDriverState is the async driver's serialized mutable state
// beyond the global model (which travels as its own component): the
// clock, the model-version and dispatch-sequence counters, the dead
// mask, the event queue in canonical (Finish, Seq) order — pop order
// is a total order, so the heap's internal layout never needs to
// travel and identical logical states serialize to identical bytes —
// and the cumulative introspection counters.
type asyncDriverState struct {
	Version         int
	Clock           float64
	ModelVersion    int
	Seq             uint64
	Dead            []bool
	Queue           []asyncEntryState
	Buffer          []asyncEntryState
	BufferedTotal   int
	StaleDropped    int
	LastFlush       int
	StalenessCounts []int
}

func encodeEntry(e *asyncEntry) asyncEntryState {
	return asyncEntryState{
		Client:        e.client,
		DispatchRound: e.dispatchRound,
		ModelVersion:  e.version,
		Finish:        e.finish,
		Seq:           e.seq,
		Delta:         append([]float64(nil), e.delta...),
		Loss:          e.loss,
		NumSamples:    e.numSamples,
		Summary:       append([]float64(nil), e.summary...),
		HasStats:      e.stats != nil,
		Stats:         e.statsVal,
	}
}

func (d *AsyncDriver) decodeEntry(st asyncEntryState) (*asyncEntry, error) {
	if st.Client < 0 || st.Client >= len(d.proxies) {
		return nil, fmt.Errorf("rounds: async snapshot entry for client %d, driver has %d clients", st.Client, len(d.proxies))
	}
	if len(st.Delta) != len(d.global) {
		return nil, fmt.Errorf("rounds: async snapshot delta dim %d, driver model dim %d", len(st.Delta), len(d.global))
	}
	e := d.checkout()
	e.client = st.Client
	e.dispatchRound = st.DispatchRound
	e.version = st.ModelVersion
	e.finish = st.Finish
	e.seq = st.Seq
	e.delta = append(e.delta[:0], st.Delta...)
	e.loss = st.Loss
	e.numSamples = st.NumSamples
	if len(st.Summary) > 0 {
		e.summary = append(e.summary[:0], st.Summary...)
	} else {
		e.summary = nil
	}
	if st.HasStats {
		e.statsVal = st.Stats
		e.stats = &e.statsVal
	} else {
		e.stats = nil
	}
	return e, nil
}

// SnapshotState implements checkpoint.Snapshotter. The payload travels
// under the "driver_async" component name (distinct from the sync
// driver's "driver"), so resuming a run under the wrong mode fails
// loudly at the component table instead of silently misreading state.
func (d *AsyncDriver) SnapshotState() ([]byte, error) {
	queue := make([]asyncEntryState, len(d.queue))
	for i, e := range d.queue {
		queue[i] = encodeEntry(e)
	}
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].Finish != queue[j].Finish {
			return queue[i].Finish < queue[j].Finish
		}
		return queue[i].Seq < queue[j].Seq
	})
	buffer := make([]asyncEntryState, len(d.buffer))
	for i, e := range d.buffer {
		buffer[i] = encodeEntry(e)
	}
	st := asyncDriverState{
		Version:         asyncDriverStateVersion,
		Clock:           d.clock,
		ModelVersion:    d.version,
		Seq:             d.seq,
		Dead:            append([]bool(nil), d.dead...),
		Queue:           queue,
		Buffer:          buffer,
		BufferedTotal:   d.bufferedTotal,
		StaleDropped:    d.staleDroppedTotal,
		LastFlush:       d.insp.LastFlush,
		StalenessCounts: append([]int(nil), d.stalenessCounts...),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("rounds: encode async driver state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements checkpoint.Snapshotter. The driver must have
// been constructed over the same roster, model dimension and async
// configuration as the run that produced the snapshot; the event queue
// (including mid-buffer in-flight deltas) is rebuilt exactly, so the
// resumed trajectory is bit-identical to an uninterrupted one.
func (d *AsyncDriver) RestoreState(data []byte) error {
	var st asyncDriverState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("rounds: decode async driver state: %w", err)
	}
	if st.Version != asyncDriverStateVersion {
		return fmt.Errorf("rounds: async driver state version %d, this build reads %d", st.Version, asyncDriverStateVersion)
	}
	if len(st.Dead) != len(d.proxies) {
		return fmt.Errorf("rounds: async driver snapshot for %d clients, driver has %d", len(st.Dead), len(d.proxies))
	}
	if n := len(st.Queue) + len(st.Buffer); n > d.cfg.ClientsPerRound {
		return fmt.Errorf("rounds: async driver snapshot holds %d entries, concurrency is %d", n, d.cfg.ClientsPerRound)
	}
	if len(st.StalenessCounts) != inspStalenessSlots {
		return fmt.Errorf("rounds: async driver snapshot has %d staleness slots, this build uses %d", len(st.StalenessCounts), inspStalenessSlots)
	}
	for _, e := range d.queue {
		d.release(e)
	}
	for _, e := range d.buffer {
		d.release(e)
	}
	d.queue = d.queue[:0]
	d.buffer = d.buffer[:0]
	for i := range d.busy {
		d.busy[i] = false
	}
	// Queue entries were serialized in canonical (Finish, Seq) order —
	// already a valid min-heap layout — so appending in order rebuilds
	// the exact pop sequence.
	for _, es := range st.Queue {
		e, err := d.decodeEntry(es)
		if err != nil {
			return err
		}
		d.queue = append(d.queue, e)
		d.busy[e.client] = true
	}
	for _, es := range st.Buffer {
		e, err := d.decodeEntry(es)
		if err != nil {
			return err
		}
		d.buffer = append(d.buffer, e)
	}
	d.clock = st.Clock
	d.version = st.ModelVersion
	d.seq = st.Seq
	copy(d.dead, st.Dead)
	d.bufferedTotal = st.BufferedTotal
	d.staleDroppedTotal = st.StaleDropped
	copy(d.stalenessCounts, st.StalenessCounts)
	if d.met != nil {
		d.met.clock.Set(d.clock)
	}
	d.refreshInspection(st.LastFlush)
	return nil
}

// SetGlobal overwrites the driver-owned global parameter vector — the
// restore path of the model snapshot component. The dimension must
// match the vector the driver was constructed with.
func (d *AsyncDriver) SetGlobal(params []float64) error {
	if len(params) != len(d.global) {
		return fmt.Errorf("rounds: SetGlobal with %d params, driver has %d", len(params), len(d.global))
	}
	copy(d.global, params)
	return nil
}
