// Package rounds is the transport-agnostic federated round runtime:
// one driver owns the full per-round state machine — strategy
// selection over availability, parameter dispatch, reply collection
// with a virtual-time deadline, straggler cutoff with partial FedAvg
// over the reporters, loss feedback to the strategy, and
// summary-refresh forwarding — while a Transport/Proxy pair abstracts
// how a training job actually reaches a client. The in-process
// evaluation engine (internal/fl) and the TCP coordinator
// (internal/flnet) are both thin adapters over this driver, so
// deadline and partial-aggregation semantics are identical in
// simulation and over the wire (the paper's Fig. 2 protocol, pinned in
// one place).
package rounds

import (
	"haccs/internal/fleet"
	"haccs/internal/telemetry"
)

// Result is what one client returns to the server after local
// training. internal/fl aliases its TrainResult to this type, so the
// in-process proxy returns it without conversion.
type Result struct {
	ClientID int
	// Params is the client's updated flat parameter vector.
	Params []float64
	// NumSamples weights this update in federated averaging.
	NumSamples int
	// Loss is the client's observed first-epoch training loss, the
	// utility signal loss-aware schedulers consume.
	Loss float64
	// Summary, when non-nil, is a refreshed P(y) label-count summary
	// piggybacked on the reply (the paper's §IV-C asynchronous summary
	// update); the driver forwards it through Config.OnSummary.
	Summary []float64
	// Stats, when non-nil, is the client's self-reported training
	// statistics block (flnet wire transports fill it from the
	// validated TrainReply; in-process transports leave it nil). The
	// driver forwards it to the fleet health registry.
	Stats *fleet.ClientStats
}

// Proxy is one client endpoint the driver can dispatch a local-training
// job to.
type Proxy interface {
	// Train runs one local-training job against the given global
	// parameters and returns the client's result. The driver calls it
	// from its worker goroutines: worker (in [0, Transport.Parallelism()))
	// identifies the calling worker so in-process transports can pin
	// per-worker scratch state, and slot is the job's selection-order
	// index so transports can reuse per-slot result buffers. Network
	// transports ignore both. sc is the driver's per-client train span
	// context (zero when span tracing is off); network transports
	// propagate it on the wire so the remote side can parent its local
	// spans under this dispatch, in-process transports may ignore it.
	// Implementations must not retain params.
	Train(round, worker, slot int, params []float64, sc telemetry.SpanContext) (Result, error)
	// Latency is the client's expected round latency in virtual
	// seconds — the driver's clock advance and deadline-cutoff input.
	Latency() float64
}

// Transport provides the driver's client endpoints.
type Transport interface {
	// Proxies returns one proxy per client, indexed by dense client ID.
	// The driver caches the slice and each proxy's Latency at
	// construction.
	Proxies() []Proxy
	// Parallelism bounds concurrent Train dispatches: the driver runs
	// min(Parallelism, selected) workers per round. In-process
	// transports return their worker-context count; network transports
	// return the roster size so every push goes out concurrently.
	Parallelism() int
}

// FedAvg computes the sample-weighted average of client parameter
// vectors (McMahan et al., Federated Averaging): the new global model
// is sum_i (n_i / n) * w_i over the participating clients. All vectors
// must have equal length; the result is written into a new slice.
func FedAvg(results []Result) []float64 {
	if len(results) == 0 {
		panic("rounds: FedAvg with no results")
	}
	out := make([]float64, len(results[0].Params))
	FedAvgInto(out, results)
	return out
}

// FedAvgInto is FedAvg written into a caller-owned vector (the driver
// reuses its global vector across rounds). dst must have the parameter
// dimension and must not alias any result's Params; it is overwritten.
// When the driver cuts stragglers, results holds only the reporters, so
// the weights renormalize over them.
func FedAvgInto(dst []float64, results []Result) {
	if len(results) == 0 {
		panic("rounds: FedAvg with no results")
	}
	dim := len(results[0].Params)
	if len(dst) != dim {
		panic("rounds: FedAvgInto destination dimension mismatch")
	}
	total := 0
	for _, r := range results {
		if len(r.Params) != dim {
			panic("rounds: FedAvg parameter dimension mismatch")
		}
		if r.NumSamples <= 0 {
			panic("rounds: FedAvg result with non-positive sample count")
		}
		total += r.NumSamples
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, r := range results {
		w := float64(r.NumSamples) / float64(total)
		for i, v := range r.Params {
			dst[i] += w * v
		}
	}
}
