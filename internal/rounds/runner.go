package rounds

import (
	"errors"
	"fmt"
)

// Mode selects which round runtime drives a run: the synchronous
// barrier rounds the paper evaluates, or FedBuff-style buffered
// asynchronous aggregation. The zero value means sync, so existing
// configurations keep their behavior untouched.
type Mode string

const (
	// ModeSync is the classic synchronous round: select k, wait for
	// every reporter (or the deadline), aggregate once per round.
	ModeSync Mode = "sync"
	// ModeAsync is buffered asynchronous training: selected clients
	// train continuously against the virtual clock and the server
	// aggregates whenever K staleness-weighted updates fill the buffer.
	ModeAsync Mode = "async"
)

// ParseMode converts a -mode flag value ("" defaults to sync).
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "", "sync":
		return ModeSync, true
	case "async":
		return ModeAsync, true
	}
	return ModeSync, false
}

// Runner is the round-runtime surface both drivers implement. The
// in-process engine (internal/fl) and the TCP coordinator
// (internal/flnet) hold a Runner and never care which mode drives it:
// RunRound advances one scheduling cycle (one aggregation in either
// mode), and the checkpoint methods make the runner a
// checkpoint.Snapshotter.
type Runner interface {
	// RunRound executes one scheduling cycle and reports its outcome
	// (see Outcome for buffer lifetimes).
	RunRound(round int) Outcome
	// Global returns the runner-owned global parameter vector
	// (read-only; overwritten by aggregation).
	Global() []float64
	// SetGlobal overwrites the global vector (model-component restore).
	SetGlobal(params []float64) error
	// Clock returns the virtual time elapsed so far in seconds.
	Clock() float64
	// Latency returns a client's expected round latency in virtual
	// seconds.
	Latency(id int) float64
	// Dead reports whether a client's transport failed earlier.
	Dead(id int) bool
	// SnapshotState / RestoreState serialize the runner's mutable
	// state (checkpoint.Snapshotter).
	SnapshotState() ([]byte, error)
	RestoreState(data []byte) error
}

// Typed configuration errors. NewDriver and NewAsyncDriver treat an
// invalid Config as a programming error and panic with one of these
// wrapped values; callers that receive configuration from users (the
// flnet coordinator, CLIs) call Validate first and surface the error.
var (
	// ErrNegativeDeadline rejects Config.Deadline < 0 at config time.
	// The documented contract is "0 disables the cutoff" — a negative
	// deadline is always a caller bug, not a synonym for 0.
	ErrNegativeDeadline = errors.New("rounds: Deadline must be >= 0")
	// ErrBadClientsPerRound rejects a non-positive selection budget.
	ErrBadClientsPerRound = errors.New("rounds: ClientsPerRound must be positive")
	// ErrDeadlineInAsync rejects a straggler deadline combined with the
	// async driver: async rounds have no barrier to cut against; use
	// AsyncConfig.MaxStaleness to bound slow updates instead.
	ErrDeadlineInAsync = errors.New("rounds: Deadline is sync-only; async mode bounds slow updates with AsyncConfig.MaxStaleness")
	// ErrBadBufferK rejects an aggregation trigger outside
	// [1, ClientsPerRound] (after defaulting).
	ErrBadBufferK = errors.New("rounds: BufferK must be in [1, ClientsPerRound]")
	// ErrBadMaxStaleness rejects a negative staleness bound.
	ErrBadMaxStaleness = errors.New("rounds: MaxStaleness must be >= 0")
)

// Validate checks the driver-independent configuration invariants and
// returns a typed error (wrapping one of the Err* values) on the first
// violation. NewDriver panics with exactly this error, so callers that
// would rather report than crash validate first.
func (c Config) Validate() error {
	if c.ClientsPerRound <= 0 {
		return fmt.Errorf("%w (got %d)", ErrBadClientsPerRound, c.ClientsPerRound)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("%w (got %v)", ErrNegativeDeadline, c.Deadline)
	}
	return nil
}

// DefaultStalenessExponent is the polynomial staleness-discount
// exponent α applied when AsyncConfig leaves it zero: an update with
// staleness τ is weighted by 1/(1+τ)^α, so α=0.5 reproduces the
// FedBuff paper's 1/sqrt(1+τ) discount.
const DefaultStalenessExponent = 0.5

// AsyncConfig parameterizes the buffered asynchronous driver on top of
// the shared Config. The zero value is usable: BufferK defaults to
// half the concurrency and the staleness discount to
// DefaultStalenessExponent.
type AsyncConfig struct {
	// BufferK is the aggregation trigger: the server folds the buffer
	// into the global model as soon as it holds K staleness-weighted
	// updates. 0 defaults to max(1, ClientsPerRound/2) — flushing at
	// half the concurrency is what lets fast clients lap slow ones.
	BufferK int
	// MaxStaleness drops updates whose model-version staleness exceeds
	// it instead of buffering them (0 = unlimited, every update counts).
	MaxStaleness int
	// StalenessExponent is α in the polynomial discount 1/(1+τ)^α
	// weighting a buffered update of staleness τ. 0 defaults to
	// DefaultStalenessExponent; it must not be negative.
	StalenessExponent float64
}

// withDefaults resolves the zero-value fields against the selection
// budget k.
func (a AsyncConfig) withDefaults(k int) AsyncConfig {
	if a.BufferK == 0 {
		a.BufferK = max(1, k/2)
	}
	if a.StalenessExponent == 0 {
		a.StalenessExponent = DefaultStalenessExponent
	}
	return a
}

// ValidateAsync checks the async-mode configuration: the shared Config
// invariants, the no-deadline rule, and the AsyncConfig ranges (after
// defaulting). NewAsyncDriver panics with exactly this error.
func ValidateAsync(cfg Config, async AsyncConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Deadline != 0 {
		return fmt.Errorf("%w (got Deadline %v)", ErrDeadlineInAsync, cfg.Deadline)
	}
	a := async.withDefaults(cfg.ClientsPerRound)
	if a.BufferK < 1 || a.BufferK > cfg.ClientsPerRound {
		return fmt.Errorf("%w (got %d with ClientsPerRound %d)", ErrBadBufferK, a.BufferK, cfg.ClientsPerRound)
	}
	if a.MaxStaleness < 0 {
		return fmt.Errorf("%w (got %d)", ErrBadMaxStaleness, a.MaxStaleness)
	}
	if a.StalenessExponent < 0 {
		return fmt.Errorf("rounds: StalenessExponent must be >= 0 (got %v)", a.StalenessExponent)
	}
	return nil
}
