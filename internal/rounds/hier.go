package rounds

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"haccs/internal/fleet"
	"haccs/internal/simnet"
	"haccs/internal/telemetry"
)

// This file is the root half of hierarchical FedAvg: a HierDriver runs
// rounds over shard proxies instead of client proxies. Each shard owns
// a slice of the population (consistent hashing lives in
// internal/shard); the root selects globally, partitions the selection
// by owner, and folds the shards' unnormalized sample-weighted partial
// sums back into one global model. Because every shard reports
// Σ n_r·w_r (not a locally normalized average), the root's
// renormalization (Σ_s partial_s) / (Σ_s samples_s) computes exactly
// the quantity flat FedAvg computes — the grouping by shard is
// invisible wherever the arithmetic is exact, which the golden
// equivalence test pins over real TCP.

// ShardClient describes one client as owned by a shard: its global ID
// and its expected round latency in virtual seconds.
type ShardClient struct {
	ID      int
	Latency float64
}

// ShardCmd is one root→shard work order (one root scheduling cycle).
type ShardCmd struct {
	// Round is the root round/cycle index.
	Round int
	// Params is the global parameter snapshot the shard trains from.
	// In async mode it is nil between resyncs: the shard keeps training
	// from its local model until the root pushes a fresh base.
	Params []float64
	// Selected are the shard-owned clients the root selected this
	// round, in global selection order (sync mode; nil in async mode,
	// where shards select locally under their θ budget).
	Selected []int
	// Version is the root model version Params carries; shards echo it
	// back as ShardReport.BaseVersion so the root can compute staleness.
	Version int
}

// ShardReport is one shard's reply to a ShardCmd.
type ShardReport struct {
	// Partial is the unnormalized sample-weighted partial aggregate:
	// sync Σ n_r·w_r over the shard's reporters, async the shard's
	// local model delta for the cycle. Nil/empty when the shard had
	// nothing to contribute.
	Partial []float64
	// Samples is the total NumSamples behind Partial.
	Samples int
	// Reporters carries per-reporter metadata (loss, samples, summary,
	// stats) in the shard's selection order; Params fields are nil —
	// only the partial sum crosses the tree.
	Reporters []Result
	// Cut are the shard-owned selected clients discarded at the
	// deadline (sync; the root validates them against its own latency
	// table).
	Cut []int
	// Failed are the shard-owned selected clients whose client↔shard
	// transport died mid-round; the root marks them dead.
	Failed []int
	// LocalClock is the shard driver's virtual clock after the cycle
	// (async mode; 0 in sync mode, where the root owns the clock).
	LocalClock float64
	// BaseVersion is the root model version of the shard's current
	// training base (async staleness bookkeeping).
	BaseVersion int
	// Sessions and Reconnects are the shard's live client-session count
	// and cumulative reconnect count, piggybacked so the root can
	// export merged fleet gauges without scraping the shards.
	Sessions   int
	Reconnects int
}

// ShardProxy is one shard coordinator as seen from the root.
// Implementations (internal/shard's TCP proxy, test fakes) must be
// safe for one Exec call at a time per proxy; the root calls the
// proxies in parallel but never overlaps calls to the same shard.
type ShardProxy interface {
	// ID returns the stable shard identifier (the consistent-hash ring
	// member name).
	ID() int
	// Clients returns the roster slice this shard owns. The root caches
	// it at construction.
	Clients() []ShardClient
	// Exec runs one root cycle on the shard and returns its report. An
	// error means the whole shard failed the round trip; its selected
	// clients are discarded for the round but stay alive.
	Exec(cmd ShardCmd) (*ShardReport, error)
}

// HierConfig parameterizes the hierarchical root driver on top of the
// shared Config.
type HierConfig struct {
	// Mode selects sync barrier rounds (the root selects globally,
	// shards train their slices, one aggregation per round) or async
	// (shards run local buffered cycles; the root merges their flushes
	// staleness-weighted).
	Mode Mode
	// Async tunes the async-mode root merge: MaxStaleness bounds how
	// many root versions a shard base may lag before its flush is
	// dropped, StalenessExponent is the polynomial discount. BufferK is
	// ignored at the root (shards buffer locally).
	Async AsyncConfig
	// ResyncEvery is the async base-refresh cadence: the root pushes a
	// fresh global snapshot to every shard each ResyncEvery cycles
	// (0 defaults to 1 — every cycle). Larger values trade staleness
	// for bandwidth.
	ResyncEvery int
}

// ErrBadResyncEvery rejects a negative async resync cadence.
var ErrBadResyncEvery = errors.New("rounds: ResyncEvery must be >= 0")

func (h HierConfig) withDefaults() HierConfig {
	if h.Mode == "" {
		h.Mode = ModeSync
	}
	if h.ResyncEvery == 0 {
		h.ResyncEvery = 1
	}
	if h.Async.StalenessExponent == 0 {
		h.Async.StalenessExponent = DefaultStalenessExponent
	}
	return h
}

// ValidateHier checks the hierarchical configuration: the shared
// Config invariants, the sync/async mode split, and the resync
// cadence. NewHierDriver returns exactly this error.
func ValidateHier(cfg Config, hier HierConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	h := hier.withDefaults()
	if h.Mode != ModeSync && h.Mode != ModeAsync {
		return fmt.Errorf("rounds: unknown hierarchical mode %q", hier.Mode)
	}
	if h.Mode == ModeAsync && cfg.Deadline != 0 {
		return fmt.Errorf("%w (got Deadline %v)", ErrDeadlineInAsync, cfg.Deadline)
	}
	if h.ResyncEvery < 0 {
		return fmt.Errorf("%w (got %d)", ErrBadResyncEvery, hier.ResyncEvery)
	}
	if h.Async.MaxStaleness < 0 {
		return fmt.Errorf("%w (got %d)", ErrBadMaxStaleness, hier.Async.MaxStaleness)
	}
	if h.Async.StalenessExponent < 0 {
		return fmt.Errorf("rounds: StalenessExponent must be >= 0 (got %v)", hier.Async.StalenessExponent)
	}
	return nil
}

// ShardStatus is the root's per-shard view after the last round,
// served at /debug/shards by internal/shard.
type ShardStatus struct {
	ID          int     `json:"id"`
	Clients     int     `json:"clients"`
	Sessions    int     `json:"sessions"`
	Reconnects  int     `json:"reconnects"`
	LocalClock  float64 `json:"local_clock"`
	BaseVersion int     `json:"base_version"`
	Failures    int     `json:"failures"`
}

// hierMetrics caches the shard-level collectors (nil when metrics are
// off); the shared round collectors live in driverMetrics.
type hierMetrics struct {
	shardRound      telemetry.HistogramVec
	shardClients    telemetry.GaugeVec
	shardSessions   telemetry.GaugeVec
	shardReconnects telemetry.GaugeVec
	shardFailures   telemetry.CounterVec
	rootAgg         *telemetry.Histogram
	merges          *telemetry.Counter
	stale           *telemetry.Counter
	netSessions     *telemetry.Gauge
	netReconnects   *telemetry.Counter
}

// ShardRoundBuckets cover the root's view of one shard round trip:
// loopback sub-millisecond up to multi-second WAN tails.
var ShardRoundBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func newHierMetrics(reg *telemetry.Registry) *hierMetrics {
	if reg == nil {
		return nil
	}
	return &hierMetrics{
		shardRound:      reg.HistogramVec("haccs_shard_round_seconds", "Root-observed wall time of one shard round trip.", "shard", ShardRoundBuckets),
		shardClients:    reg.GaugeVec("haccs_shard_clients", "Clients owned by each shard.", "shard"),
		shardSessions:   reg.GaugeVec("haccs_shard_sessions", "Live client sessions per shard (shard self-reported).", "shard"),
		shardReconnects: reg.GaugeVec("haccs_shard_reconnects", "Cumulative client reconnects per shard (shard self-reported).", "shard"),
		shardFailures:   reg.CounterVec("haccs_shard_failures_total", "Whole-shard round-trip failures observed by the root.", "shard"),
		rootAgg:         reg.Histogram("haccs_root_aggregate_seconds", "Wall time of the root's hierarchical aggregation step.", ShardRoundBuckets),
		merges:          reg.Counter("haccs_shard_merges_total", "Shard partials folded into the global model."),
		stale:           reg.Counter("haccs_shard_stale_total", "Async shard flushes dropped past the staleness bound."),
		netSessions:     reg.Gauge("haccs_net_sessions_active", "Live client sessions across all shards (merged view)."),
		netReconnects:   reg.Counter("haccs_net_reconnects_total", "Client reconnects across all shards (merged view)."),
	}
}

// HierDriver runs the root half of hierarchical FedAvg over shard
// proxies. It implements Runner, so the flat coordinator surface
// (checkpointing, the round loop, /debug handlers) works unchanged.
// Like the flat drivers it is not safe for concurrent use.
type HierDriver struct {
	cfg      Config
	hier     HierConfig
	strategy Strategy
	shards   []ShardProxy

	// Roster geometry, fixed at construction: owner maps a global
	// client ID to its shard slot, slotClients holds each shard's
	// client IDs in ascending order.
	owner       []int
	slotClients [][]int
	latency     []float64
	labels      []string

	global  []float64
	clock   float64
	version int // root model version: aggregations applied so far
	cycle   int // async resync cadence counter
	dead    []bool

	// Async bookkeeping: each shard's current base version and the
	// cumulative per-shard counters behind ShardStatus.
	base       []int
	sessions   []int
	reconnects []int
	lastClock  []float64
	failures   []int

	// Round-loop buffers, sized once and reused.
	available []bool
	seen      []bool
	down      []int
	cut       []int
	failed    []int
	repIDs    []int
	losses    []float64
	perShard  [][]int
	repBuf    []*ShardReport
	errBuf    []error
	scratch   []float64
	reports   []fleet.ClientReport

	met  *driverMetrics
	hmet *hierMetrics
}

// NewHierDriver builds the root driver over the shards. The shards'
// client sets must partition a dense roster 0..n-1; initial is the
// global parameter vector (the driver takes ownership). In sync mode
// the strategy is the global selection strategy and must already be
// initialized over the full roster; in async mode it may be nil (the
// shards select locally) and is only fed reporter losses when present.
// Unlike NewDriver, invalid input returns an error: the roster arrives
// over the network, so it is not a programming-error panic.
func NewHierDriver(cfg Config, hier HierConfig, shards []ShardProxy, strategy Strategy, initial []float64) (*HierDriver, error) {
	if err := ValidateHier(cfg, hier); err != nil {
		return nil, err
	}
	hier = hier.withDefaults()
	if cfg.Dropout == nil {
		cfg.Dropout = simnet.NoDropout{}
	}
	if len(shards) == 0 {
		return nil, errors.New("rounds: hierarchical driver needs at least one shard")
	}
	if hier.Mode == ModeSync && strategy == nil {
		return nil, errors.New("rounds: sync hierarchical driver needs a selection strategy")
	}
	n := 0
	for _, s := range shards {
		n += len(s.Clients())
	}
	if n == 0 {
		return nil, errors.New("rounds: shards own no clients")
	}
	d := &HierDriver{
		cfg:      cfg,
		hier:     hier,
		strategy: strategy,
		shards:   shards,
		met:      newDriverMetrics(cfg.Metrics),
		hmet:     newHierMetrics(cfg.Metrics),
	}
	d.owner = make([]int, n)
	d.latency = make([]float64, n)
	for i := range d.owner {
		d.owner[i] = -1
	}
	d.slotClients = make([][]int, len(shards))
	d.labels = make([]string, len(shards))
	for slot, s := range shards {
		d.labels[slot] = strconv.Itoa(s.ID())
		ids := make([]int, 0, len(s.Clients()))
		for _, c := range s.Clients() {
			if c.ID < 0 || c.ID >= n {
				return nil, fmt.Errorf("rounds: shard %d owns client %d outside the dense roster [0,%d)", s.ID(), c.ID, n)
			}
			if d.owner[c.ID] != -1 {
				return nil, fmt.Errorf("rounds: client %d owned by shards %d and %d", c.ID, shards[d.owner[c.ID]].ID(), s.ID())
			}
			if c.Latency < 0 {
				return nil, fmt.Errorf("rounds: shard %d reports negative latency for client %d", s.ID(), c.ID)
			}
			d.owner[c.ID] = slot
			d.latency[c.ID] = c.Latency
			ids = append(ids, c.ID)
		}
		sort.Ints(ids)
		d.slotClients[slot] = ids
	}
	d.global = initial
	d.dead = make([]bool, n)
	d.base = make([]int, len(shards))
	d.sessions = make([]int, len(shards))
	d.reconnects = make([]int, len(shards))
	d.lastClock = make([]float64, len(shards))
	d.failures = make([]int, len(shards))
	k := cfg.ClientsPerRound
	d.available = make([]bool, n)
	d.seen = make([]bool, n)
	d.cut = make([]int, 0, k)
	d.failed = make([]int, 0, k)
	d.repIDs = make([]int, 0, k)
	d.losses = make([]float64, 0, k)
	d.perShard = make([][]int, len(shards))
	for i := range d.perShard {
		d.perShard[i] = make([]int, 0, k)
	}
	d.repBuf = make([]*ShardReport, len(shards))
	d.errBuf = make([]error, len(shards))
	d.scratch = make([]float64, len(initial))
	if cfg.Fleet != nil {
		d.reports = make([]fleet.ClientReport, 0, k)
	}
	if d.hmet != nil {
		for slot := range shards {
			d.hmet.shardClients.With(d.labels[slot]).Set(float64(len(d.slotClients[slot])))
		}
	}
	return d, nil
}

// Global returns the driver-owned global parameter vector (read-only).
func (d *HierDriver) Global() []float64 { return d.global }

// Clock returns the virtual time elapsed so far in seconds.
func (d *HierDriver) Clock() float64 { return d.clock }

// Version returns the root model version — aggregations applied so far.
func (d *HierDriver) Version() int { return d.version }

// Latency returns a client's expected round latency in virtual seconds.
func (d *HierDriver) Latency(id int) float64 { return d.latency[id] }

// Dead reports whether a client's transport failed in an earlier round.
func (d *HierDriver) Dead(id int) bool { return d.dead[id] }

// Owner returns the shard slot owning a client, or -1 if out of range.
func (d *HierDriver) Owner(id int) int {
	if id < 0 || id >= len(d.owner) {
		return -1
	}
	return d.owner[id]
}

// ShardStatuses returns the per-shard view after the last completed
// round, in shard slot order. The slice is freshly allocated.
func (d *HierDriver) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(d.shards))
	for slot, s := range d.shards {
		out[slot] = ShardStatus{
			ID:          s.ID(),
			Clients:     len(d.slotClients[slot]),
			Sessions:    d.sessions[slot],
			Reconnects:  d.reconnects[slot],
			LocalClock:  d.lastClock[slot],
			BaseVersion: d.base[slot],
			Failures:    d.failures[slot],
		}
	}
	return out
}

// RunRound executes one root scheduling cycle: a sync barrier round
// (global selection partitioned by owner, parallel shard execution,
// one renormalized aggregation) or an async merge cycle (every shard
// runs one local buffered cycle; the root folds the flushes
// staleness-weighted). Implements Runner.
func (d *HierDriver) RunRound(round int) Outcome {
	if d.hier.Mode == ModeAsync {
		return d.runAsync(round)
	}
	return d.runSync(round)
}

func (d *HierDriver) runSync(round int) Outcome {
	tracer := d.cfg.Tracer
	if tracer != nil {
		tracer.Emit(telemetry.RoundStart(round))
	}
	mask := d.cfg.Dropout.Unavailable(round, len(d.owner))
	available := d.available
	down := d.down[:0]
	for i := range available {
		available[i] = !mask[i] && !d.dead[i]
		if !available[i] {
			down = append(down, i)
		}
	}
	d.down = down
	if len(down) > 0 {
		if tracer != nil {
			tracer.Emit(telemetry.Unavailable(round, down))
		}
		if d.met != nil {
			d.met.unavailable.Add(float64(len(down)))
		}
	}
	selected := d.strategy.Select(round, available, d.cfg.ClientsPerRound)
	if tracer != nil {
		tracer.Emit(telemetry.Selection(round, append([]int(nil), selected...)))
	}
	if len(selected) == 0 {
		d.clock++
		d.strategy.Update(round, nil, nil)
		if d.met != nil {
			d.met.rounds.Inc()
			d.met.clock.Set(d.clock)
		}
		if d.cfg.Fleet != nil {
			d.cfg.Fleet.ObserveRound(fleet.RoundObservation{
				Round:        round,
				Unavailable:  down,
				RoundVirtual: 1,
				Clock:        d.clock,
			})
		}
		return Outcome{RoundVirtual: 1}
	}
	validateSelection(selected, available, d.seen, len(d.owner), d.cfg.ClientsPerRound)

	// Partition the selection by owning shard, preserving global
	// selection order within each shard.
	for slot := range d.perShard {
		d.perShard[slot] = d.perShard[slot][:0]
	}
	for _, id := range selected {
		slot := d.owner[id]
		d.perShard[slot] = append(d.perShard[slot], id)
	}
	d.exec(func(slot int) ShardCmd {
		return ShardCmd{Round: round, Params: d.global, Selected: d.perShard[slot], Version: d.version}
	}, func(slot int) bool { return len(d.perShard[slot]) > 0 })

	// Collect: validate each shard's report against the root's own
	// latency table, then walk the global selection order with
	// per-shard cursors to rebuild reporters/cut/failed exactly as the
	// flat driver's collect loop would.
	deadline := d.cfg.Deadline
	cut := d.cut[:0]
	failed := d.failed[:0]
	repIDs := d.repIDs[:0]
	losses := d.losses[:0]
	if d.cfg.Fleet != nil {
		d.reports = d.reports[:0]
	}
	for slot := range d.shards {
		if len(d.perShard[slot]) == 0 {
			continue
		}
		if d.errBuf[slot] == nil {
			if err := d.checkSyncReport(slot, d.repBuf[slot]); err != nil {
				d.errBuf[slot] = err
			}
		}
		if d.errBuf[slot] != nil {
			d.failures[slot]++
			if d.hmet != nil {
				d.hmet.shardFailures.With(d.labels[slot]).Inc()
			}
			if tracer != nil {
				tracer.Emit(telemetry.ShardFailed(round, d.shards[slot].ID(), append([]int(nil), d.perShard[slot]...)))
			}
		}
	}
	cursor := make(map[int]int, len(d.shards))
	failedSet := d.seen
	clear(failedSet)
	for slot := range d.shards {
		if d.errBuf[slot] == nil && d.repBuf[slot] != nil {
			for _, id := range d.repBuf[slot].Failed {
				failedSet[id] = true
			}
		}
	}
	maxAll, maxRep := 0.0, 0.0
	samples := 0
	for _, id := range selected {
		lat := d.latency[id]
		if lat > maxAll {
			maxAll = lat
		}
		slot := d.owner[id]
		if d.errBuf[slot] != nil {
			// Whole-shard failure: the update is lost for the round but
			// the client is not dead — its shard is.
			cut = append(cut, id)
			continue
		}
		if failedSet[id] {
			failed = append(failed, id)
			d.dead[id] = true
			continue
		}
		if deadline > 0 && lat > deadline {
			cut = append(cut, id)
			continue
		}
		rep := d.repBuf[slot]
		r := &rep.Reporters[cursor[slot]]
		cursor[slot]++
		repIDs = append(repIDs, id)
		losses = append(losses, r.Loss)
		samples += r.NumSamples
		if lat > maxRep {
			maxRep = lat
		}
		if d.met != nil {
			d.met.trainVirt.Observe(lat)
		}
		if d.cfg.OnSummary != nil && r.Summary != nil {
			d.cfg.OnSummary(id, r.Summary)
		}
		if d.cfg.Fleet != nil {
			d.reports = append(d.reports, fleet.ClientReport{
				ClientID:   id,
				Loss:       r.Loss,
				NumSamples: r.NumSamples,
				VirtualSec: lat,
				Stats:      r.Stats,
			})
		}
	}
	d.cut, d.failed, d.repIDs, d.losses = cut, failed, repIDs, losses

	roundTime := maxRep
	if len(cut)+len(failed) > 0 {
		if deadline > 0 {
			roundTime = deadline
		} else {
			roundTime = maxAll
		}
	}

	// Aggregate: sum the shards' unnormalized partials and renormalize
	// once by the total sample count — flat FedAvg, grouped by shard.
	aggregated := false
	var aggStart time.Time
	if d.hmet != nil {
		aggStart = time.Now()
	}
	if len(repIDs) > 0 {
		for i := range d.scratch {
			d.scratch[i] = 0
		}
		merged := 0
		for slot := range d.shards {
			rep := d.repBuf[slot]
			if d.errBuf[slot] != nil || rep == nil || rep.Samples == 0 {
				continue
			}
			for i, v := range rep.Partial {
				d.scratch[i] += v
			}
			merged++
		}
		inv := float64(samples)
		for i := range d.global {
			d.global[i] = d.scratch[i] / inv
		}
		d.version++
		aggregated = true
		if d.hmet != nil {
			d.hmet.merges.Add(float64(merged))
		}
		if tracer != nil {
			tracer.Emit(telemetry.ShardMerge(round, merged, samples, time.Since(aggStart).Seconds(), d.clock+roundTime))
		}
	}
	if d.hmet != nil {
		d.hmet.rootAgg.Observe(time.Since(aggStart).Seconds())
	}
	d.clock += roundTime

	if len(cut) > 0 && tracer != nil {
		tracer.Emit(telemetry.StragglerCut(round, append([]int(nil), cut...), deadline))
	}
	if len(failed) > 0 && tracer != nil {
		tracer.Emit(telemetry.ClientFailed(round, append([]int(nil), failed...)))
	}
	if aggregated && tracer != nil {
		tracer.Emit(telemetry.Aggregated(round, append([]int(nil), selected...), roundTime, d.clock))
	}
	if d.met != nil {
		d.met.rounds.Inc()
		d.met.selected.Add(float64(len(selected)))
		if len(cut) > 0 {
			d.met.stragglers.Add(float64(len(cut)))
		}
		if len(failed) > 0 {
			d.met.failures.Add(float64(len(failed)))
		}
		d.met.roundVirt.Observe(roundTime)
		d.met.clock.Set(d.clock)
	}
	d.strategy.Update(round, repIDs, losses)
	if d.cfg.Fleet != nil {
		d.cfg.Fleet.ObserveRound(fleet.RoundObservation{
			Round:        round,
			Selected:     selected,
			Reports:      d.reports,
			Cut:          cut,
			Failed:       failed,
			Unavailable:  down,
			RoundVirtual: roundTime,
			Clock:        d.clock,
		})
	}
	return Outcome{
		Selected:     selected,
		Reporters:    repIDs,
		Losses:       losses,
		Cut:          cut,
		Failed:       failed,
		RoundVirtual: roundTime,
		Aggregated:   aggregated,
	}
}

// checkSyncReport validates one shard's sync report against the root's
// independent view: the cut set must match the root's deadline
// arithmetic, reporters must be exactly the selected minus cut minus
// failed in order, and the partial must be dimensioned and weighted
// consistently. A violation is treated as a whole-shard failure for
// the round (the transport layer additionally drops the session).
func (d *HierDriver) checkSyncReport(slot int, rep *ShardReport) error {
	if rep == nil {
		return fmt.Errorf("rounds: shard %d returned no report", d.shards[slot].ID())
	}
	sel := d.perShard[slot]
	inSel := make(map[int]bool, len(sel))
	for _, id := range sel {
		inSel[id] = true
	}
	for _, id := range rep.Failed {
		if !inSel[id] {
			return fmt.Errorf("rounds: shard %d reported unselected client %d as failed", d.shards[slot].ID(), id)
		}
	}
	failedSet := make(map[int]bool, len(rep.Failed))
	for _, id := range rep.Failed {
		failedSet[id] = true
	}
	// Recompute the expected cut and reporter sequences.
	deadline := d.cfg.Deadline
	wantCut := make([]int, 0, len(sel))
	wantRep := make([]int, 0, len(sel))
	for _, id := range sel {
		if failedSet[id] {
			continue
		}
		if deadline > 0 && d.latency[id] > deadline {
			wantCut = append(wantCut, id)
			continue
		}
		wantRep = append(wantRep, id)
	}
	if len(rep.Cut) != len(wantCut) {
		return fmt.Errorf("rounds: shard %d cut %d clients, root expected %d", d.shards[slot].ID(), len(rep.Cut), len(wantCut))
	}
	for i, id := range rep.Cut {
		if id != wantCut[i] {
			return fmt.Errorf("rounds: shard %d cut set disagrees at position %d (%d vs %d)", d.shards[slot].ID(), i, id, wantCut[i])
		}
	}
	if len(rep.Reporters) != len(wantRep) {
		return fmt.Errorf("rounds: shard %d reported %d reporters, root expected %d", d.shards[slot].ID(), len(rep.Reporters), len(wantRep))
	}
	samples := 0
	for i := range rep.Reporters {
		r := &rep.Reporters[i]
		if r.ClientID != wantRep[i] {
			return fmt.Errorf("rounds: shard %d reporter order disagrees at position %d (%d vs %d)", d.shards[slot].ID(), i, r.ClientID, wantRep[i])
		}
		if r.NumSamples <= 0 {
			return fmt.Errorf("rounds: shard %d reporter %d has non-positive sample count", d.shards[slot].ID(), r.ClientID)
		}
		samples += r.NumSamples
	}
	if len(rep.Reporters) > 0 {
		if len(rep.Partial) != len(d.global) {
			return fmt.Errorf("rounds: shard %d partial dimension %d, model has %d", d.shards[slot].ID(), len(rep.Partial), len(d.global))
		}
		if rep.Samples != samples {
			return fmt.Errorf("rounds: shard %d partial weight %d, reporters sum to %d", d.shards[slot].ID(), rep.Samples, samples)
		}
	} else if rep.Samples != 0 {
		return fmt.Errorf("rounds: shard %d reported weight %d with no reporters", d.shards[slot].ID(), rep.Samples)
	}
	return nil
}

// runAsync executes one async root cycle: every shard runs one local
// buffered cycle (from a freshly pushed base on resync cycles) and the
// root folds the returned deltas staleness-weighted, in deterministic
// (LocalClock, shard ID) order.
func (d *HierDriver) runAsync(round int) Outcome {
	tracer := d.cfg.Tracer
	if tracer != nil {
		tracer.Emit(telemetry.RoundStart(round))
	}
	resync := d.cycle%d.hier.ResyncEvery == 0
	d.cycle++
	d.exec(func(slot int) ShardCmd {
		cmd := ShardCmd{Round: round, Version: d.version}
		if resync {
			cmd.Params = d.global
		}
		return cmd
	}, func(slot int) bool { return true })

	type flush struct {
		slot int
		rep  *ShardReport
		tau  int
	}
	flushes := make([]flush, 0, len(d.shards))
	failed := d.failed[:0]
	cut := d.cut[:0]
	for slot := range d.shards {
		if d.errBuf[slot] != nil {
			d.failures[slot]++
			if d.hmet != nil {
				d.hmet.shardFailures.With(d.labels[slot]).Inc()
			}
			if tracer != nil {
				tracer.Emit(telemetry.ShardFailed(round, d.shards[slot].ID(), nil))
			}
			continue
		}
		rep := d.repBuf[slot]
		if rep == nil {
			continue
		}
		if resync {
			d.base[slot] = d.version
		}
		d.lastClock[slot] = rep.LocalClock
		tau := d.version - rep.BaseVersion
		if tau < 0 {
			tau = 0
		}
		for _, id := range rep.Failed {
			if id >= 0 && id < len(d.dead) {
				d.dead[id] = true
				failed = append(failed, id)
			}
		}
		cut = append(cut, rep.Cut...)
		if rep.Samples <= 0 || len(rep.Reporters) == 0 {
			continue
		}
		if len(rep.Partial) != len(d.global) {
			d.failures[slot]++
			continue
		}
		if d.hier.Async.MaxStaleness > 0 && tau > d.hier.Async.MaxStaleness {
			if d.hmet != nil {
				d.hmet.stale.Inc()
			}
			continue
		}
		flushes = append(flushes, flush{slot: slot, rep: rep, tau: tau})
	}
	d.failed, d.cut = failed, cut
	sort.Slice(flushes, func(i, j int) bool {
		if flushes[i].rep.LocalClock != flushes[j].rep.LocalClock {
			return flushes[i].rep.LocalClock < flushes[j].rep.LocalClock
		}
		return d.shards[flushes[i].slot].ID() < d.shards[flushes[j].slot].ID()
	})

	var aggStart time.Time
	if d.hmet != nil {
		aggStart = time.Now()
	}
	repIDs := d.repIDs[:0]
	losses := d.losses[:0]
	if d.cfg.Fleet != nil {
		d.reports = d.reports[:0]
	}
	aggregated := false
	samples := 0
	if len(flushes) > 0 {
		total := 0.0
		for _, f := range flushes {
			total += float64(f.rep.Samples) / math.Pow(1+float64(f.tau), d.hier.Async.StalenessExponent)
		}
		for _, f := range flushes {
			w := float64(f.rep.Samples) / math.Pow(1+float64(f.tau), d.hier.Async.StalenessExponent)
			c := w / total
			for i, v := range f.rep.Partial {
				d.global[i] += c * v
			}
			samples += f.rep.Samples
			for i := range f.rep.Reporters {
				r := &f.rep.Reporters[i]
				repIDs = append(repIDs, r.ClientID)
				losses = append(losses, r.Loss)
				if d.cfg.OnSummary != nil && r.Summary != nil {
					d.cfg.OnSummary(r.ClientID, r.Summary)
				}
				if d.cfg.Fleet != nil {
					lat := 0.0
					if r.ClientID >= 0 && r.ClientID < len(d.latency) {
						lat = d.latency[r.ClientID]
					}
					d.reports = append(d.reports, fleet.ClientReport{
						ClientID:   r.ClientID,
						Loss:       r.Loss,
						NumSamples: r.NumSamples,
						VirtualSec: lat,
						Stats:      r.Stats,
						Staleness:  f.tau,
					})
				}
			}
			if tracer != nil {
				ids := make([]int, len(f.rep.Reporters))
				for i := range f.rep.Reporters {
					ids[i] = f.rep.Reporters[i].ClientID
				}
				tracer.Emit(telemetry.ShardReport(round, d.shards[f.slot].ID(), ids, f.rep.Samples, 0, f.tau, f.rep.LocalClock))
			}
		}
		d.version++
		aggregated = true
		if d.hmet != nil {
			d.hmet.merges.Add(float64(len(flushes)))
		}
	}
	d.repIDs, d.losses = repIDs, losses

	// The root clock tracks the frontier of shard-local virtual time;
	// an empty cycle idles one virtual second like the flat drivers.
	prev := d.clock
	for slot := range d.shards {
		if d.lastClock[slot] > d.clock {
			d.clock = d.lastClock[slot]
		}
	}
	if d.clock == prev && !aggregated {
		d.clock++
	}
	roundVirtual := d.clock - prev
	if d.hmet != nil {
		d.hmet.rootAgg.Observe(time.Since(aggStart).Seconds())
	}
	if aggregated && tracer != nil {
		tracer.Emit(telemetry.ShardMerge(round, len(flushes), samples, time.Since(aggStart).Seconds(), d.clock))
	}
	if d.met != nil {
		d.met.rounds.Inc()
		if len(failed) > 0 {
			d.met.failures.Add(float64(len(failed)))
		}
		d.met.roundVirt.Observe(roundVirtual)
		d.met.clock.Set(d.clock)
	}
	if d.strategy != nil {
		d.strategy.Update(round, repIDs, losses)
	}
	if d.cfg.Fleet != nil {
		d.cfg.Fleet.ObserveRound(fleet.RoundObservation{
			Round:        round,
			Reports:      d.reports,
			Cut:          cut,
			Failed:       failed,
			RoundVirtual: roundVirtual,
			Clock:        d.clock,
			Async:        true,
		})
	}
	return Outcome{
		Reporters:    repIDs,
		Losses:       losses,
		Cut:          cut,
		Failed:       failed,
		RoundVirtual: roundVirtual,
		Aggregated:   aggregated,
	}
}

// exec fans one command out to every participating shard in parallel,
// filling d.repBuf/d.errBuf by slot. Shard-level telemetry (round-trip
// histogram, session/reconnect gauges) is recorded here.
func (d *HierDriver) exec(cmd func(slot int) ShardCmd, participates func(slot int) bool) {
	for slot := range d.shards {
		d.repBuf[slot] = nil
		d.errBuf[slot] = nil
	}
	var wg sync.WaitGroup
	for slot := range d.shards {
		if !participates(slot) {
			continue
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			start := time.Now()
			rep, err := d.shards[slot].Exec(cmd(slot))
			if d.hmet != nil {
				d.hmet.shardRound.With(d.labels[slot]).Observe(time.Since(start).Seconds())
			}
			d.repBuf[slot], d.errBuf[slot] = rep, err
		}(slot)
	}
	wg.Wait()
	if d.hmet != nil {
		live := 0
		for slot := range d.shards {
			rep := d.repBuf[slot]
			if rep == nil {
				continue
			}
			if rep.Reconnects > d.reconnects[slot] {
				d.hmet.netReconnects.Add(float64(rep.Reconnects - d.reconnects[slot]))
			}
			d.sessions[slot] = rep.Sessions
			d.reconnects[slot] = rep.Reconnects
			d.hmet.shardSessions.With(d.labels[slot]).Set(float64(rep.Sessions))
			d.hmet.shardReconnects.With(d.labels[slot]).Set(float64(rep.Reconnects))
		}
		for slot := range d.shards {
			live += d.sessions[slot]
		}
		d.hmet.netSessions.Set(float64(live))
	} else {
		for slot := range d.shards {
			if rep := d.repBuf[slot]; rep != nil {
				d.sessions[slot] = rep.Sessions
				d.reconnects[slot] = rep.Reconnects
			}
		}
	}
}

// hierStateVersion versions the hierarchical driver's gob payload.
const hierStateVersion = 1

// hierState is the root driver's serialized mutable state beyond the
// global model: the clock, the dead mask, the model version and the
// async resync bookkeeping. Shard-local state (async buffers in
// flight) is deliberately not captured — on restore the shards rebuild
// from the restored global base, losing at most one un-merged local
// buffer per shard (the documented bounded-loss semantics; sync shards
// are stateless between rounds, so the sync path restores exactly).
type hierState struct {
	Version      int
	Clock        float64
	Dead         []bool
	ModelVersion int
	Cycle        int
	Base         []int
	// Per-shard cumulative counters as of the snapshot. Restoring them
	// re-baselines the merged reconnect counter, so a restored root does
	// not re-count client reconnects the crashed root already counted,
	// and keeps /debug/shards continuous across a restore.
	Sessions   []int
	Reconnects []int
	LastClock  []float64
	Failures   []int
}

// SnapshotState implements checkpoint.Snapshotter.
func (d *HierDriver) SnapshotState() ([]byte, error) {
	st := hierState{
		Version:      hierStateVersion,
		Clock:        d.clock,
		Dead:         append([]bool(nil), d.dead...),
		ModelVersion: d.version,
		Cycle:        d.cycle,
		Base:         append([]int(nil), d.base...),
		Sessions:     append([]int(nil), d.sessions...),
		Reconnects:   append([]int(nil), d.reconnects...),
		LastClock:    append([]float64(nil), d.lastClock...),
		Failures:     append([]int(nil), d.failures...),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("rounds: encode hierarchical driver state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements checkpoint.Snapshotter. The driver must have
// been constructed over the same roster partition as the run that
// produced the snapshot.
func (d *HierDriver) RestoreState(data []byte) error {
	var st hierState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("rounds: decode hierarchical driver state: %w", err)
	}
	if st.Version != hierStateVersion {
		return fmt.Errorf("rounds: hierarchical driver state version %d, this build reads %d", st.Version, hierStateVersion)
	}
	if len(st.Dead) != len(d.dead) {
		return fmt.Errorf("rounds: hierarchical snapshot for %d clients, driver has %d", len(st.Dead), len(d.dead))
	}
	if len(st.Base) != len(d.base) {
		return fmt.Errorf("rounds: hierarchical snapshot for %d shards, driver has %d", len(st.Base), len(d.base))
	}
	d.clock = st.Clock
	copy(d.dead, st.Dead)
	d.version = st.ModelVersion
	d.cycle = st.Cycle
	copy(d.base, st.Base)
	if len(st.Sessions) == len(d.sessions) {
		copy(d.sessions, st.Sessions)
	}
	if len(st.Reconnects) == len(d.reconnects) {
		copy(d.reconnects, st.Reconnects)
	}
	if len(st.LastClock) == len(d.lastClock) {
		copy(d.lastClock, st.LastClock)
	}
	if len(st.Failures) == len(d.failures) {
		copy(d.failures, st.Failures)
	}
	if d.met != nil {
		d.met.clock.Set(d.clock)
	}
	return nil
}

// SetGlobal overwrites the driver-owned global parameter vector — the
// restore path of the model snapshot component.
func (d *HierDriver) SetGlobal(params []float64) error {
	if len(params) != len(d.global) {
		return fmt.Errorf("rounds: SetGlobal with %d params, driver has %d", len(params), len(d.global))
	}
	copy(d.global, params)
	return nil
}

var _ Runner = (*HierDriver)(nil)
