package rounds

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"haccs/internal/fleet"
	"haccs/internal/introspect"
	"haccs/internal/simnet"
	"haccs/internal/telemetry"
)

// AsyncDriver is the FedBuff-style buffered asynchronous round
// runtime. Selected clients train continuously against the virtual
// clock: every scheduling cycle (one RunRound call) first refills the
// free concurrency slots through the strategy, then pops virtual
// finish events off a (finishTime, dispatchSeq) min-heap until the
// aggregation buffer holds BufferK updates and flushes them into the
// global model with polynomial staleness discounting. Clients whose
// events have not fired simply keep training across cycles — a slow
// client never stalls the clock the way a sync barrier round does.
//
// Determinism: finish events are ordered by virtual finish time with
// the dispatch sequence number as the tie-break, every training job
// derives its randomness from the (client, dispatchRound) pair, and
// client updates are folded in buffer order — so a fixed seed yields a
// bit-identical trajectory regardless of host scheduling, exactly like
// the sync driver. Like the sync driver it is not safe for concurrent
// use; cycles run one at a time.
type AsyncDriver struct {
	cfg         Config
	async       AsyncConfig
	strategy    Strategy
	proxies     []Proxy
	latency     []float64
	parallelism int

	global  []float64
	clock   float64
	version int // model version: buffered aggregations applied so far
	seq     uint64
	dead    []bool
	busy    []bool // client has an in-flight (queued) update

	queue  eventQueue
	buffer []*asyncEntry
	free   []*asyncEntry

	// Cycle-loop buffers, sized once and reused across cycles.
	available []bool
	seen      []bool
	down      []int
	repIDs    []int
	losses    []float64
	cut       []int
	failed    []int
	reports   []fleet.ClientReport
	errs      []error
	batch     []*asyncEntry
	weights   []float64

	// Cumulative counters behind the introspection state.
	bufferedTotal     int
	staleDroppedTotal int
	stalenessCounts   []int

	met  *driverMetrics
	amet *asyncMetrics

	// insp is the snapshot served at /debug/selection, refreshed at
	// the end of every cycle under inspMu (the HTTP handler races the
	// run by design). Its slices are insp-owned copies.
	inspMu sync.Mutex
	insp   introspect.AsyncState
}

// asyncEntry is one dispatched training job: trained eagerly at
// dispatch time (the result depends only on the parameter snapshot and
// the (client, dispatchRound) random stream, so eager training cannot
// leak scheduling order into the trajectory), carrying its model delta
// until its virtual finish event fires.
type asyncEntry struct {
	client        int
	dispatchRound int
	version       int     // model version at dispatch
	finish        float64 // virtual finish time
	seq           uint64  // dispatch order tie-break
	staleness     int     // set when the finish event pops

	delta      []float64
	loss       float64
	numSamples int
	summary    []float64
	stats      *fleet.ClientStats
	statsVal   fleet.ClientStats
}

// fill captures a training result as a delta against the dispatch-time
// global snapshot, copying the reply's summary and stats so the entry
// survives transport buffer reuse across cycles.
func (e *asyncEntry) fill(id, round, version int, base []float64, res Result) {
	if len(res.Params) != len(base) {
		panic("rounds: async update parameter dimension mismatch")
	}
	e.client = id
	e.dispatchRound = round
	e.version = version
	e.loss = res.Loss
	e.numSamples = res.NumSamples
	if cap(e.delta) < len(base) {
		e.delta = make([]float64, len(base))
	}
	e.delta = e.delta[:len(base)]
	for j, v := range res.Params {
		e.delta[j] = v - base[j]
	}
	if res.Summary != nil {
		e.summary = append(e.summary[:0], res.Summary...)
	} else {
		e.summary = nil
	}
	if res.Stats != nil {
		e.statsVal = *res.Stats
		e.stats = &e.statsVal
	} else {
		e.stats = nil
	}
}

// eventQueue is the virtual-time event min-heap: earliest finish
// first, dispatch sequence as the deterministic tie-break.
type eventQueue []*asyncEntry

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].finish != q[j].finish {
		return q[i].finish < q[j].finish
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*asyncEntry)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// StalenessBuckets cover the haccs_async_staleness histogram: buffered
// aggregation rarely lets updates fall more than a few versions behind
// unless the latency tail is extreme.
var StalenessBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64}

// inspStalenessSlots sizes the cumulative staleness histogram in the
// introspection state (last slot is the overflow).
const inspStalenessSlots = 16

// asyncMetrics caches the async-only collectors (nil when metrics are
// off); the shared round collectors live in driverMetrics.
type asyncMetrics struct {
	staleness  *telemetry.Histogram
	buffered   *telemetry.Counter
	stale      *telemetry.Counter
	aggregates *telemetry.Counter
	fill       *telemetry.Gauge
}

func newAsyncMetrics(reg *telemetry.Registry) *asyncMetrics {
	if reg == nil {
		return nil
	}
	return &asyncMetrics{
		staleness:  reg.Histogram("haccs_async_staleness", "Model-version staleness of buffered client updates.", StalenessBuckets),
		buffered:   reg.Counter("haccs_async_updates_buffered_total", "Client updates accepted into the aggregation buffer."),
		stale:      reg.Counter("haccs_async_updates_stale_total", "Client updates dropped past the staleness bound."),
		aggregates: reg.Counter("haccs_async_aggregations_total", "Buffered aggregations folded into the global model."),
		fill:       reg.Gauge("haccs_async_buffer_fill", "Aggregation buffer occupancy after the last buffer step."),
	}
}

// NewAsyncDriver builds the buffered asynchronous driver over the
// transport. Config.ClientsPerRound is the training concurrency (how
// many clients train at once); async tunes the buffer. initial is the
// global parameter vector; the driver takes ownership. The strategy
// must already be initialized, exactly as for NewDriver. Invalid
// configuration panics with the ValidateAsync error; callers holding
// user-supplied configuration should ValidateAsync first.
func NewAsyncDriver(cfg Config, async AsyncConfig, t Transport, strategy Strategy, initial []float64) *AsyncDriver {
	if err := ValidateAsync(cfg, async); err != nil {
		panic(err)
	}
	async = async.withDefaults(cfg.ClientsPerRound)
	if cfg.Dropout == nil {
		cfg.Dropout = simnet.NoDropout{}
	}
	proxies := t.Proxies()
	if len(proxies) == 0 {
		panic("rounds: transport has no clients")
	}
	par := t.Parallelism()
	if par <= 0 {
		panic("rounds: transport parallelism must be positive")
	}
	d := &AsyncDriver{
		cfg:         cfg,
		async:       async,
		strategy:    strategy,
		proxies:     proxies,
		parallelism: par,
		global:      initial,
		met:         newDriverMetrics(cfg.Metrics),
		amet:        newAsyncMetrics(cfg.Metrics),
	}
	d.latency = make([]float64, len(proxies))
	for i, p := range proxies {
		d.latency[i] = p.Latency()
	}
	c := cfg.ClientsPerRound
	d.queue = make(eventQueue, 0, c)
	d.buffer = make([]*asyncEntry, 0, async.BufferK)
	d.repIDs = make([]int, 0, async.BufferK)
	d.losses = make([]float64, 0, async.BufferK)
	d.weights = make([]float64, 0, async.BufferK)
	d.cut = make([]int, 0, c)
	d.failed = make([]int, 0, c)
	d.errs = make([]error, c)
	d.batch = make([]*asyncEntry, c)
	if cfg.Fleet != nil {
		d.reports = make([]fleet.ClientReport, 0, async.BufferK)
	}
	d.available = make([]bool, len(proxies))
	d.seen = make([]bool, len(proxies))
	d.dead = make([]bool, len(proxies))
	d.busy = make([]bool, len(proxies))
	d.stalenessCounts = make([]int, inspStalenessSlots)
	d.refreshInspection(0)
	return d
}

// Global returns the driver-owned global parameter vector (read-only).
func (d *AsyncDriver) Global() []float64 { return d.global }

// Clock returns the virtual time elapsed so far in seconds.
func (d *AsyncDriver) Clock() float64 { return d.clock }

// Version returns the global model version — the number of buffered
// aggregations applied so far.
func (d *AsyncDriver) Version() int { return d.version }

// Latency returns a client's expected round latency in virtual seconds.
func (d *AsyncDriver) Latency(id int) float64 { return d.latency[id] }

// Dead reports whether a client's transport failed earlier; dead
// clients are excluded from availability forever.
func (d *AsyncDriver) Dead(id int) bool { return d.dead[id] }

// InFlight returns how many dispatched updates are awaiting their
// virtual finish event.
func (d *AsyncDriver) InFlight() int { return len(d.queue) }

// RunRound executes one scheduling cycle: refill the free concurrency
// slots through the strategy (training the new dispatches eagerly),
// pop virtual finish events in deterministic order, buffer or
// stale-drop each update, and flush the buffer into the global model
// once it holds BufferK updates (or the queue runs dry). The returned
// Outcome maps the cycle onto the sync vocabulary: Selected are the
// new dispatches, Reporters the aggregated updates in buffer order,
// Cut the stale-dropped clients, RoundVirtual the cycle's virtual
// duration.
func (d *AsyncDriver) RunRound(round int) Outcome {
	tracer := d.cfg.Tracer
	root := d.cfg.Spans.Root("round", round)
	defer root.End()
	if tracer != nil {
		tracer.Emit(telemetry.RoundStart(round))
	}

	// Availability: dropout and death feed the Unavailable event
	// exactly as in sync mode; clients still training are additionally
	// masked from selection without counting as down.
	sp := root.Child("availability")
	mask := d.cfg.Dropout.Unavailable(round, len(d.proxies))
	available := d.available
	down := d.down[:0]
	for i := range available {
		unavailable := mask[i] || d.dead[i]
		if unavailable {
			down = append(down, i)
		}
		available[i] = !unavailable && !d.busy[i]
	}
	d.down = down
	sp.End()
	if len(down) > 0 {
		if tracer != nil {
			tracer.Emit(telemetry.Unavailable(round, down))
		}
		if d.met != nil {
			d.met.unavailable.Add(float64(len(down)))
		}
	}

	// Refill: hand the strategy only the free concurrency slots, so
	// selected clients train continuously across cycles.
	var selected []int
	if want := d.cfg.ClientsPerRound - len(d.queue); want > 0 {
		sp = root.Child("select")
		selected = d.strategy.Select(round, available, want)
		sp.End()
		if tracer != nil {
			tracer.Emit(telemetry.Selection(round, append([]int(nil), selected...)))
		}
		validateSelection(selected, available, d.seen, len(d.proxies), want)
		if len(selected) > 0 {
			sp = root.Child("dispatch")
			d.dispatch(round, selected, sp)
			sp.End()
		}
	}

	// Fold dispatch outcomes in selection order: failures mark the
	// client dead immediately (no virtual cost — the transport error
	// is instantaneous); successes enter the event queue.
	failed := d.failed[:0]
	for i, id := range selected {
		if d.errs[i] != nil {
			d.dead[id] = true
			failed = append(failed, id)
			d.release(d.batch[i])
			continue
		}
		e := d.batch[i]
		e.finish = d.clock + d.latency[id]
		e.seq = d.seq
		d.seq++
		heap.Push(&d.queue, e)
		d.busy[id] = true
	}
	d.failed = failed
	if len(failed) > 0 {
		if tracer != nil {
			tracer.Emit(telemetry.ClientFailed(round, append([]int(nil), failed...)))
		}
		if d.met != nil {
			d.met.failures.Add(float64(len(failed)))
		}
	}

	// Drain: pop finish events in (finish, seq) order until the buffer
	// reaches BufferK or the queue runs dry. The clock rides the
	// popped finish times — monotonic, because every dispatch happens
	// at the current clock and adds a non-negative latency.
	sp = root.Child("drain")
	cycleStart := d.clock
	cut := d.cut[:0]
	for len(d.queue) > 0 && len(d.buffer) < d.async.BufferK {
		e := heap.Pop(&d.queue).(*asyncEntry)
		d.clock = e.finish
		d.busy[e.client] = false
		tau := d.version - e.version
		e.staleness = tau
		if d.async.MaxStaleness > 0 && tau > d.async.MaxStaleness {
			cut = append(cut, e.client)
			d.staleDroppedTotal++
			if tracer != nil {
				tracer.Emit(telemetry.UpdateStale(round, e.client, tau, d.clock))
			}
			if d.amet != nil {
				d.amet.stale.Inc()
			}
			d.release(e)
			continue
		}
		d.buffer = append(d.buffer, e)
		d.bufferedTotal++
		d.stalenessCounts[min(tau, inspStalenessSlots-1)]++
		if tracer != nil {
			tracer.Emit(telemetry.UpdateBuffered(round, e.client, tau, len(d.buffer), d.clock))
		}
		if d.amet != nil {
			d.amet.staleness.Observe(float64(tau))
			d.amet.buffered.Inc()
			d.amet.fill.Set(float64(len(d.buffer)))
		}
	}
	d.cut = cut
	sp.End()

	// Aggregate: staleness-weighted FedBuff step over the buffered
	// deltas. A partial buffer still flushes when the queue is dry —
	// no more events are coming this cycle, and stranding updates
	// behind an unfillable buffer (fleet deaths) would lose them. A
	// cycle with nothing dispatched, queued or buffered idles one
	// virtual second, exactly like the sync driver's empty round.
	sp = root.Child("aggregate")
	aggregated := false
	repIDs := d.repIDs[:0]
	losses := d.losses[:0]
	maxTau := 0
	if len(d.buffer) > 0 {
		d.applyBuffer()
		d.version++
		aggregated = true
		for _, e := range d.buffer {
			repIDs = append(repIDs, e.client)
			losses = append(losses, e.loss)
			if e.staleness > maxTau {
				maxTau = e.staleness
			}
		}
	} else if len(selected) == 0 && len(d.queue) == 0 {
		d.clock++
	}
	d.repIDs, d.losses = repIDs, losses
	roundVirtual := d.clock - cycleStart
	sp.End()

	if aggregated && tracer != nil {
		tracer.Emit(telemetry.AggregateAsync(round, append([]int(nil), repIDs...), maxTau, roundVirtual, d.clock))
	}
	if d.met != nil {
		d.met.rounds.Inc()
		if len(selected) > 0 {
			d.met.selected.Add(float64(len(selected)))
		}
		d.met.roundVirt.Observe(roundVirtual)
		d.met.clock.Set(d.clock)
	}
	if d.amet != nil && aggregated {
		d.amet.aggregates.Inc()
		d.amet.fill.Set(0)
	}

	sp = root.Child("update")
	if d.cfg.OnSummary != nil {
		for _, e := range d.buffer {
			if e.summary != nil {
				d.cfg.OnSummary(e.client, e.summary)
			}
		}
	}
	d.strategy.Update(round, repIDs, losses)
	sp.End()

	if d.cfg.Fleet != nil {
		reports := d.reports[:0]
		for _, e := range d.buffer {
			reports = append(reports, fleet.ClientReport{
				ClientID:   e.client,
				Loss:       e.loss,
				NumSamples: e.numSamples,
				VirtualSec: d.latency[e.client],
				Stats:      e.stats,
				Staleness:  e.staleness,
			})
		}
		d.reports = reports
		d.cfg.Fleet.ObserveRound(fleet.RoundObservation{
			Round:        round,
			Selected:     selected,
			Reports:      reports,
			Cut:          cut,
			Failed:       failed,
			Unavailable:  down,
			RoundVirtual: roundVirtual,
			Clock:        d.clock,
			Async:        true,
		})
	}

	flushed := len(d.buffer)
	for _, e := range d.buffer {
		d.release(e)
	}
	d.buffer = d.buffer[:0]
	d.refreshInspection(flushed)

	return Outcome{
		Selected:     selected,
		Reporters:    repIDs,
		Losses:       losses,
		Cut:          cut,
		Failed:       failed,
		RoundVirtual: roundVirtual,
		Aggregated:   aggregated,
	}
}

// dispatch trains the newly selected clients in parallel — the same
// worker-pinned fan-out as the sync driver — capturing each result
// eagerly as a delta in its pre-assigned entry so transport-owned
// reply buffers can be reused next cycle.
func (d *AsyncDriver) dispatch(round int, selected []int, disp telemetry.Span) {
	batch := d.batch[:len(selected)]
	errs := d.errs[:len(selected)]
	for i := range batch {
		batch[i] = d.checkout()
		errs[i] = nil
	}
	workers := min(d.parallelism, len(selected))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(selected) {
					return
				}
				id := selected[i]
				var start time.Time
				if d.cfg.Tracer != nil || d.met != nil {
					start = time.Now()
				}
				ts := disp.ChildClient("train", id)
				res, err := d.proxies[id].Train(round, w, i, d.global, ts.Context())
				ts.End()
				if err != nil {
					errs[i] = err
					continue
				}
				batch[i].fill(id, round, d.version, d.global, res)
				if d.cfg.Tracer != nil || d.met != nil {
					wall := time.Since(start).Seconds()
					virt := d.latency[id]
					if d.cfg.Tracer != nil {
						d.cfg.Tracer.Emit(telemetry.ClientTrained(round, id, res.Loss, res.NumSamples, wall, virt))
					}
					if d.met != nil {
						d.met.trainWall.Observe(wall)
						d.met.trainVirt.Observe(virt)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// applyBuffer folds the buffered deltas into the global model:
// global += Σ (w_i / Σw) · delta_i with w_i = n_i / (1+τ_i)^α. At
// τ = 0 everywhere this reduces to sample-weighted FedAvg over the
// deltas.
func (d *AsyncDriver) applyBuffer() {
	weights := d.weights[:0]
	total := 0.0
	for _, e := range d.buffer {
		if e.numSamples <= 0 {
			panic("rounds: async update with non-positive sample count")
		}
		w := float64(e.numSamples) / math.Pow(1+float64(e.staleness), d.async.StalenessExponent)
		weights = append(weights, w)
		total += w
	}
	d.weights = weights
	for i, e := range d.buffer {
		c := weights[i] / total
		for j, v := range e.delta {
			d.global[j] += c * v
		}
	}
}

// checkout takes an entry from the pool (entries cycle between the
// event queue, the buffer and the free list; the population is bounded
// by the concurrency).
func (d *AsyncDriver) checkout() *asyncEntry {
	if n := len(d.free); n > 0 {
		e := d.free[n-1]
		d.free = d.free[:n-1]
		return e
	}
	return &asyncEntry{}
}

func (d *AsyncDriver) release(e *asyncEntry) {
	e.summary = nil
	e.stats = nil
	d.free = append(d.free, e)
}

// refreshInspection snapshots the driver state served at
// /debug/selection. Called at the end of every cycle (and at
// construction/restore), it copies everything the HTTP handler reads
// so AsyncState never races the drain loop.
func (d *AsyncDriver) refreshInspection(lastFlush int) {
	inflight := make([]*asyncEntry, len(d.queue))
	copy(inflight, d.queue)
	sort.Slice(inflight, func(i, j int) bool {
		if inflight[i].finish != inflight[j].finish {
			return inflight[i].finish < inflight[j].finish
		}
		return inflight[i].seq < inflight[j].seq
	})
	ids := make([]int, len(inflight))
	for i, e := range inflight {
		ids[i] = e.client
	}
	counts := append([]int(nil), d.stalenessCounts...)
	d.inspMu.Lock()
	d.insp = introspect.AsyncState{
		Version:           d.version,
		BufferK:           d.async.BufferK,
		MaxStaleness:      d.async.MaxStaleness,
		StalenessExponent: d.async.StalenessExponent,
		InFlight:          ids,
		BufferFill:        len(d.buffer),
		LastFlush:         lastFlush,
		Buffered:          d.bufferedTotal,
		StaleDropped:      d.staleDroppedTotal,
		StalenessCounts:   counts,
		Clock:             d.clock,
	}
	d.inspMu.Unlock()
}

// AsyncState implements introspect.AsyncInspector; safe to call
// concurrently with RunRound.
func (d *AsyncDriver) AsyncState() introspect.AsyncState {
	d.inspMu.Lock()
	defer d.inspMu.Unlock()
	st := d.insp
	st.InFlight = append([]int(nil), st.InFlight...)
	st.StalenessCounts = append([]int(nil), st.StalenessCounts...)
	return st
}

// validateSelection enforces the Strategy contract shared by both
// drivers: valid, available, distinct IDs within the budget.
// Violations are programming errors and panic.
func validateSelection(selected []int, available, seen []bool, n, budget int) {
	clear(seen)
	for _, id := range selected {
		if id < 0 || id >= n {
			panic(fmt.Sprintf("rounds: strategy selected invalid client %d", id))
		}
		if !available[id] {
			panic(fmt.Sprintf("rounds: strategy selected unavailable client %d", id))
		}
		if seen[id] {
			panic(fmt.Sprintf("rounds: strategy selected client %d twice", id))
		}
		seen[id] = true
	}
	if len(selected) > budget {
		panic("rounds: strategy selected more clients than the budget")
	}
}

// Both drivers present the same runtime surface.
var (
	_ Runner                    = (*Driver)(nil)
	_ Runner                    = (*AsyncDriver)(nil)
	_ introspect.AsyncInspector = (*AsyncDriver)(nil)
)
