package rounds

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// driverStateVersion versions the driver's gob payload.
const driverStateVersion = 1

// driverState is the round driver's serialized mutable state beyond
// the global model (which travels as its own snapshot component): the
// virtual clock and the dead-client mask. The round counter lives with
// the caller's loop and is recorded in the snapshot header; all
// per-(client, round) training randomness is derived statelessly by
// the transports, so nothing else needs to travel.
type driverState struct {
	Version int
	Clock   float64
	Dead    []bool
}

// SnapshotState implements checkpoint.Snapshotter.
func (d *Driver) SnapshotState() ([]byte, error) {
	st := driverState{
		Version: driverStateVersion,
		Clock:   d.clock,
		Dead:    append([]bool(nil), d.dead...),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("rounds: encode driver state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements checkpoint.Snapshotter. The driver must have
// been constructed over the same roster as the run that produced the
// snapshot.
func (d *Driver) RestoreState(data []byte) error {
	var st driverState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("rounds: decode driver state: %w", err)
	}
	if st.Version != driverStateVersion {
		return fmt.Errorf("rounds: driver state version %d, this build reads %d", st.Version, driverStateVersion)
	}
	if len(st.Dead) != len(d.proxies) {
		return fmt.Errorf("rounds: driver snapshot for %d clients, driver has %d", len(st.Dead), len(d.proxies))
	}
	d.clock = st.Clock
	copy(d.dead, st.Dead)
	if d.met != nil {
		d.met.clock.Set(d.clock)
	}
	return nil
}

// SetGlobal overwrites the driver-owned global parameter vector — the
// restore path of the model snapshot component. The dimension must
// match the vector the driver was constructed with.
func (d *Driver) SetGlobal(params []float64) error {
	if len(params) != len(d.global) {
		return fmt.Errorf("rounds: SetGlobal with %d params, driver has %d", len(params), len(d.global))
	}
	copy(d.global, params)
	return nil
}
