package rounds

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"haccs/internal/fleet"
	"haccs/internal/simnet"
	"haccs/internal/telemetry"
)

// Strategy is the selection surface the driver needs each round.
// fl.Strategy is a structural superset (it adds Name and Init), so any
// initialized fl.Strategy — including the HACCS scheduler — satisfies
// this interface directly; the adapter that builds the driver is
// responsible for calling Init first.
type Strategy interface {
	// Select returns up to k client IDs to train this round, drawn only
	// from clients whose availability flag is true. Returning fewer
	// than k (even zero) is allowed.
	Select(round int, available []bool, k int) []int
	// Update reports the reporters of the round — the selected clients
	// whose updates were aggregated — and their losses, in selection
	// order. Cut stragglers and failed clients are omitted.
	Update(round int, selected []int, losses []float64)
}

// Config parameterizes the round driver.
type Config struct {
	// ClientsPerRound is the selection budget k.
	ClientsPerRound int
	// Deadline is the virtual-time round deadline in seconds: selected
	// clients whose expected latency exceeds it are cut as stragglers
	// and their updates discarded (partial FedAvg over the reporters,
	// renormalized by NumSamples). 0 disables the cutoff, making the
	// round fully synchronous — it then lasts as long as its slowest
	// participant.
	Deadline float64
	// Dropout injects per-round unavailability (nil = no dropout).
	Dropout simnet.DropoutModel
	// Tracer receives the structured round-trace event stream; nil
	// disables tracing. Implementations must tolerate concurrent Emit
	// calls (client-trained events come from worker goroutines).
	Tracer telemetry.Tracer
	// Spans, when non-nil, times every phase of the round lifecycle
	// (availability → select → dispatch → per-client train → collect →
	// aggregate → update) as a span tree rooted at the round span. The
	// per-client train span's context is handed to Proxy.Train so
	// network transports can propagate it on the wire. A nil tracer
	// costs nothing (zero-alloc, pinned by benchmark).
	Spans *telemetry.SpanTracer
	// Metrics, when non-nil, receives the driver's counters, gauges
	// and histograms (see DESIGN.md "Observability").
	Metrics *telemetry.Registry
	// OnSummary, when non-nil, receives refreshed client summaries
	// piggybacked on training replies (Result.Summary), after
	// aggregation and before Strategy.Update — the hook the HACCS
	// scheduler's re-clustering consumes.
	OnSummary func(clientID int, labelCounts []float64)
	// Fleet, when non-nil, receives one RoundObservation at the end of
	// every round (including empty-selection retry rounds), feeding the
	// per-client health registry. A nil registry costs nothing
	// (zero-alloc, pinned by the tracked fleet_record_disabled
	// benchmark).
	Fleet *fleet.Registry
}

// Outcome describes one completed round. The Reporters, Cut, Failed
// and Losses slices are driver-owned and valid until the next RunRound
// call; Selected is the strategy's own slice.
type Outcome struct {
	// Selected is the strategy's selection in selection order (nil
	// when nothing was available).
	Selected []int
	// Reporters are the selected clients whose updates were
	// aggregated, in selection order.
	Reporters []int
	// Losses are the reporters' training losses, in selection order.
	Losses []float64
	// Cut are the selected clients discarded at the deadline.
	Cut []int
	// Failed are the selected clients whose transport died mid-round;
	// they are marked dead and never selected again.
	Failed []int
	// RoundVirtual is the round's virtual duration in seconds.
	RoundVirtual float64
	// Aggregated reports whether any update was folded into the global
	// model this round.
	Aggregated bool
}

// Driver owns the per-round state machine over one Transport. It is
// not safe for concurrent use; rounds run one at a time.
type Driver struct {
	cfg         Config
	strategy    Strategy
	proxies     []Proxy
	latency     []float64
	parallelism int

	global []float64
	clock  float64
	dead   []bool

	// Round-loop buffers, sized once and reused across rounds so the
	// steady-state loop allocates nothing beyond what the transport
	// does.
	results   []Result
	errs      []error
	reporters []Result
	repIDs    []int
	losses    []float64
	available []bool
	seen      []bool
	down      []int
	cut       []int
	failed    []int
	reports   []fleet.ClientReport

	met *driverMetrics
}

// driverMetrics caches the driver's telemetry collectors (nil when
// metrics are off) so the hot loop never touches the registry maps.
type driverMetrics struct {
	rounds      *telemetry.Counter
	selected    *telemetry.Counter
	unavailable *telemetry.Counter
	stragglers  *telemetry.Counter
	failures    *telemetry.Counter
	trainWall   *telemetry.Histogram
	trainVirt   *telemetry.Histogram
	roundVirt   *telemetry.Histogram
	clock       *telemetry.Gauge
}

// TrainWallBuckets cover host-side local-training times: sub-ms MLP
// steps at Quick scale up to seconds for paper-scale CNNs.
var TrainWallBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// VirtualBuckets cover the simulator's per-round latencies (Table II
// profiles land in tens to hundreds of virtual seconds).
var VirtualBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

func newDriverMetrics(reg *telemetry.Registry) *driverMetrics {
	if reg == nil {
		return nil
	}
	return &driverMetrics{
		rounds:      reg.Counter("haccs_rounds_total", "Training rounds completed by the round driver."),
		selected:    reg.Counter("haccs_clients_selected_total", "Client training jobs dispatched."),
		unavailable: reg.Counter("haccs_clients_unavailable_total", "Per-round client dropout occurrences."),
		stragglers:  reg.Counter("haccs_clients_straggler_cut_total", "Client updates discarded at the round deadline."),
		failures:    reg.Counter("haccs_clients_failed_total", "Clients whose transport died mid-round (marked dead)."),
		trainWall:   reg.Histogram("haccs_client_train_seconds", "Host wall-clock duration of one local training job.", TrainWallBuckets),
		trainVirt:   reg.Histogram("haccs_client_virtual_latency_seconds", "Simulated per-client round latency.", VirtualBuckets),
		roundVirt:   reg.Histogram("haccs_round_virtual_seconds", "Simulated round makespan (slowest reporter, or the deadline).", VirtualBuckets),
		clock:       reg.Gauge("haccs_virtual_clock_seconds", "Virtual time elapsed in the run."),
	}
}

// NewDriver builds a driver over the transport. initial is the global
// parameter vector; the driver takes ownership and aggregates into it.
// The strategy must already be initialized (Init called with the
// roster) by the adapter constructing the driver.
func NewDriver(cfg Config, t Transport, strategy Strategy, initial []float64) *Driver {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Dropout == nil {
		cfg.Dropout = simnet.NoDropout{}
	}
	proxies := t.Proxies()
	if len(proxies) == 0 {
		panic("rounds: transport has no clients")
	}
	par := t.Parallelism()
	if par <= 0 {
		panic("rounds: transport parallelism must be positive")
	}
	d := &Driver{
		cfg:         cfg,
		strategy:    strategy,
		proxies:     proxies,
		parallelism: par,
		global:      initial,
		met:         newDriverMetrics(cfg.Metrics),
	}
	d.latency = make([]float64, len(proxies))
	for i, p := range proxies {
		d.latency[i] = p.Latency()
	}
	k := cfg.ClientsPerRound
	d.results = make([]Result, k)
	d.errs = make([]error, k)
	d.reporters = make([]Result, 0, k)
	d.repIDs = make([]int, 0, k)
	d.losses = make([]float64, 0, k)
	d.cut = make([]int, 0, k)
	d.failed = make([]int, 0, k)
	if cfg.Fleet != nil {
		d.reports = make([]fleet.ClientReport, 0, k)
	}
	d.available = make([]bool, len(proxies))
	d.seen = make([]bool, len(proxies))
	d.dead = make([]bool, len(proxies))
	return d
}

// Global returns the driver-owned global parameter vector. Callers must
// treat it as read-only; it is overwritten by aggregation each round.
func (d *Driver) Global() []float64 { return d.global }

// Clock returns the virtual time elapsed so far in seconds.
func (d *Driver) Clock() float64 { return d.clock }

// Latency returns a client's expected round latency in virtual seconds.
func (d *Driver) Latency(id int) float64 { return d.latency[id] }

// Dead reports whether a client's transport failed in an earlier round;
// dead clients are excluded from availability forever.
func (d *Driver) Dead(id int) bool { return d.dead[id] }

// RunRound executes one full round: availability masking, strategy
// selection, dispatch, collection with the deadline cutoff, partial
// FedAvg over the reporters, telemetry, summary forwarding, and loss
// feedback to the strategy. With Config.Spans set, every phase is
// timed under one round-rooted span tree.
func (d *Driver) RunRound(round int) Outcome {
	tracer := d.cfg.Tracer
	root := d.cfg.Spans.Root("round", round)
	defer root.End()
	if tracer != nil {
		tracer.Emit(telemetry.RoundStart(round))
	}
	sp := root.Child("availability")
	mask := d.cfg.Dropout.Unavailable(round, len(d.proxies))
	available := d.available
	down := d.down[:0]
	for i := range available {
		available[i] = !mask[i] && !d.dead[i]
		if !available[i] {
			down = append(down, i)
		}
	}
	d.down = down
	sp.End()
	if len(down) > 0 {
		if tracer != nil {
			tracer.Emit(telemetry.Unavailable(round, down))
		}
		if d.met != nil {
			d.met.unavailable.Add(float64(len(down)))
		}
	}
	sp = root.Child("select")
	selected := d.strategy.Select(round, available, d.cfg.ClientsPerRound)
	sp.End()
	if tracer != nil {
		tracer.Emit(telemetry.Selection(round, append([]int(nil), selected...)))
	}
	if len(selected) == 0 {
		// Nothing available: the server idles briefly and retries next
		// round. One virtual second models the scheduler's retry tick.
		d.clock++
		d.strategy.Update(round, nil, nil)
		if d.met != nil {
			d.met.rounds.Inc()
			d.met.clock.Set(d.clock)
		}
		if d.cfg.Fleet != nil {
			d.cfg.Fleet.ObserveRound(fleet.RoundObservation{
				Round:        round,
				Unavailable:  down,
				RoundVirtual: 1,
				Clock:        d.clock,
			})
		}
		return Outcome{RoundVirtual: 1}
	}
	d.validateSelection(selected, available)

	sp = root.Child("dispatch")
	d.dispatch(round, selected, sp)
	sp.End()

	// Collect: partition the selection into reporters, deadline-cut
	// stragglers and transport failures, preserving selection order.
	sp = root.Child("collect")
	deadline := d.cfg.Deadline
	reporters := d.reporters[:0]
	repIDs := d.repIDs[:0]
	losses := d.losses[:0]
	cut := d.cut[:0]
	failed := d.failed[:0]
	maxAll, maxRep := 0.0, 0.0
	for i, id := range selected {
		lat := d.latency[id]
		if lat > maxAll {
			maxAll = lat
		}
		if d.errs[i] != nil {
			failed = append(failed, id)
			d.dead[id] = true
			continue
		}
		if deadline > 0 && lat > deadline {
			cut = append(cut, id)
			continue
		}
		reporters = append(reporters, d.results[i])
		repIDs = append(repIDs, id)
		losses = append(losses, d.results[i].Loss)
		if lat > maxRep {
			maxRep = lat
		}
	}
	d.reporters, d.repIDs, d.losses = reporters, repIDs, losses
	d.cut, d.failed = cut, failed
	sp.End()

	// The round lasts as long as its slowest reporter; when anyone was
	// cut or died, the server waits out the deadline (or, without one,
	// the missing client's expected reply time) before closing.
	roundTime := maxRep
	if len(cut)+len(failed) > 0 {
		if deadline > 0 {
			roundTime = deadline
		} else {
			roundTime = maxAll
		}
	}
	sp = root.Child("aggregate")
	if len(reporters) > 0 {
		FedAvgInto(d.global, reporters)
	}
	d.clock += roundTime
	sp.End()

	if len(cut) > 0 && tracer != nil {
		tracer.Emit(telemetry.StragglerCut(round, append([]int(nil), cut...), deadline))
	}
	if len(failed) > 0 && tracer != nil {
		tracer.Emit(telemetry.ClientFailed(round, append([]int(nil), failed...)))
	}
	if len(reporters) > 0 && tracer != nil {
		tracer.Emit(telemetry.Aggregated(round, append([]int(nil), selected...), roundTime, d.clock))
	}
	if d.met != nil {
		d.met.rounds.Inc()
		d.met.selected.Add(float64(len(selected)))
		if len(cut) > 0 {
			d.met.stragglers.Add(float64(len(cut)))
		}
		if len(failed) > 0 {
			d.met.failures.Add(float64(len(failed)))
		}
		d.met.roundVirt.Observe(roundTime)
		d.met.clock.Set(d.clock)
	}
	sp = root.Child("update")
	if d.cfg.OnSummary != nil {
		for i := range reporters {
			if s := reporters[i].Summary; s != nil {
				d.cfg.OnSummary(reporters[i].ClientID, s)
			}
		}
	}
	d.strategy.Update(round, repIDs, losses)
	sp.End()
	if d.cfg.Fleet != nil {
		reports := d.reports[:0]
		for i := range reporters {
			reports = append(reports, fleet.ClientReport{
				ClientID:   repIDs[i],
				Loss:       reporters[i].Loss,
				NumSamples: reporters[i].NumSamples,
				VirtualSec: d.latency[repIDs[i]],
				Stats:      reporters[i].Stats,
			})
		}
		d.reports = reports
		d.cfg.Fleet.ObserveRound(fleet.RoundObservation{
			Round:        round,
			Selected:     selected,
			Reports:      reports,
			Cut:          cut,
			Failed:       failed,
			Unavailable:  down,
			RoundVirtual: roundTime,
			Clock:        d.clock,
		})
	}
	return Outcome{
		Selected:     selected,
		Reporters:    repIDs,
		Losses:       losses,
		Cut:          cut,
		Failed:       failed,
		RoundVirtual: roundTime,
		Aggregated:   len(reporters) > 0,
	}
}

// validateSelection enforces the Strategy contract: valid, available,
// distinct IDs within the budget. Violations are programming errors and
// panic, exactly as the pre-driver engine did.
func (d *Driver) validateSelection(selected []int, available []bool) {
	clear(d.seen)
	for _, id := range selected {
		if id < 0 || id >= len(d.proxies) {
			panic(fmt.Sprintf("rounds: strategy selected invalid client %d", id))
		}
		if !available[id] {
			panic(fmt.Sprintf("rounds: strategy selected unavailable client %d", id))
		}
		if d.seen[id] {
			panic(fmt.Sprintf("rounds: strategy selected client %d twice", id))
		}
		d.seen[id] = true
	}
	if len(selected) > d.cfg.ClientsPerRound {
		panic("rounds: strategy selected more clients than the budget")
	}
}

// dispatch trains the selected clients in parallel, each from the
// current global parameters, filling d.results/d.errs in selection
// order. The fan-out spawns min(parallelism, jobs) goroutines per round
// — each pinned to one worker index so in-process transports can pin a
// persistent TrainContext — that pull job indices from an atomic
// counter; no semaphore churn and no per-job closure allocations.
// Results are independent of scheduling because transports derive all
// per-job randomness from the (client, round) pair and each selection
// slot owns its result buffer. Each job gets a per-client "train" span
// parented under disp; its context rides to the proxy so network
// transports can propagate it on the wire.
func (d *Driver) dispatch(round int, selected []int, disp telemetry.Span) {
	results := d.results[:len(selected)]
	errs := d.errs[:len(selected)]
	for i := range errs {
		errs[i] = nil
	}
	workers := min(d.parallelism, len(selected))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(selected) {
					return
				}
				id := selected[i]
				var start time.Time
				if d.cfg.Tracer != nil || d.met != nil {
					start = time.Now()
				}
				ts := disp.ChildClient("train", id)
				res, err := d.proxies[id].Train(round, w, i, d.global, ts.Context())
				ts.End()
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = res
				if d.cfg.Tracer != nil || d.met != nil {
					wall := time.Since(start).Seconds()
					virt := d.latency[id]
					if d.cfg.Tracer != nil {
						d.cfg.Tracer.Emit(telemetry.ClientTrained(round, id, res.Loss, res.NumSamples, wall, virt))
					}
					if d.met != nil {
						d.met.trainWall.Observe(wall)
						d.met.trainVirt.Observe(virt)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
