// Package fl implements the federated-learning substrate: simulated
// clients with local datasets and system profiles, federated averaging,
// and a deterministic virtual-clock training engine that drives any
// client-selection Strategy through the paper's round structure.
//
// Rounds advance a virtual clock instead of sleeping: each selected
// client's round latency is computed from its simnet.Profile (compute
// delay, bandwidth, network latency) and the round takes as long as its
// slowest participant, exactly as in a synchronous FedAvg deployment.
package fl

import (
	"fmt"

	"haccs/internal/dataset"
	"haccs/internal/nn"
	"haccs/internal/rounds"
	"haccs/internal/simnet"
	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Client is one simulated device: local train/test data plus a sampled
// system profile. Clients train clones of the global model; they never
// share raw data with the server, only parameter vectors (and, for
// HACCS, distribution summaries produced elsewhere).
type Client struct {
	ID      int
	Data    dataset.ClientData
	Profile simnet.Profile
}

// NumTrainSamples returns the client's local training set size.
func (c *Client) NumTrainSamples() int { return c.Data.Train.Len() }

// TrainResult is what a client returns to the server after local
// training. It is an alias of rounds.Result — the round driver's reply
// type — so the in-process transport hands client results straight to
// the driver without conversion. Loss is the mean minibatch loss
// observed during the first local epoch (before updates from later
// epochs), the utility signal loss-aware schedulers consume.
type TrainResult = rounds.Result

// LocalTrainConfig controls one client's local optimization.
type LocalTrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// ProxMu enables a FedProx-style proximal term (mu/2)·||w − w_g||²
	// in the local objective (0 disables). Bounding local drift is the
	// FedProx answer to the same heterogeneity HACCS addresses by
	// selection; the two compose.
	ProxMu float64
}

// TrainContext bundles the per-worker state one local-training job
// needs: a scratch model (parameters overwritten per job), a persistent
// optimizer (velocity reset per job so each job still starts cold), and
// a scratch arena backing minibatch assembly. One context serves one
// goroutine at a time; a long-lived worker reuses its context across
// rounds so steady-state training allocates nothing.
type TrainContext struct {
	Model *nn.Network
	Opt   *nn.SGD
	// Scratch backs minibatch buffers (may be nil: buffers are then
	// allocated per batch, matching the original LocalTrain behavior).
	Scratch *tensor.Scratch
}

// NewTrainContext builds a context around a fresh clone of the given
// template network, with its own scratch arena.
func NewTrainContext(template *nn.Network) *TrainContext {
	return &TrainContext{Model: template.Clone(), Scratch: tensor.NewScratch()}
}

// LocalTrain runs local SGD from the given global parameters and returns
// the updated parameters with the observed loss. The model is a scratch
// network owned by the caller (reused across rounds to avoid
// reallocation); its parameters are overwritten. The RNG drives batch
// shuffling only.
func (c *Client) LocalTrain(model *nn.Network, globalParams []float64, cfg LocalTrainConfig, rng *stats.RNG) TrainResult {
	return c.LocalTrainCtx(&TrainContext{Model: model}, globalParams, nil, cfg, rng)
}

// LocalTrainCtx is LocalTrain against a reusable TrainContext: numerics
// and RNG consumption are identical, but the optimizer, minibatch
// buffers and (when paramsDst is non-nil) the result vector are all
// reused, making the steady-state round loop allocation-free. paramsDst,
// when given, must have NumParams entries and becomes TrainResult.Params.
func (c *Client) LocalTrainCtx(tc *TrainContext, globalParams []float64, paramsDst []float64, cfg LocalTrainConfig, rng *stats.RNG) TrainResult {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		panic(fmt.Sprintf("fl: bad local train config %+v", cfg))
	}
	model := tc.Model
	model.SetParamsVector(globalParams)
	if tc.Opt == nil || tc.Opt.LR != cfg.LR || tc.Opt.Momentum != cfg.Momentum {
		tc.Opt = nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	} else {
		// A fresh job starts with zero velocity, exactly like the fresh
		// optimizer the one-shot path builds.
		tc.Opt.Reset()
	}
	opt := tc.Opt
	firstEpochLoss := 0.0
	firstEpochBatches := 0
	for e := 0; e < cfg.Epochs; e++ {
		c.Data.Train.BatchesScratch(cfg.BatchSize, rng, tc.Scratch, func(x *tensor.Dense, y []int) {
			var loss float64
			if cfg.ProxMu > 0 {
				model.ZeroGrads()
				logits := model.Forward(x)
				var grad *tensor.Dense
				loss, grad = model.LossGrad(logits, y)
				model.Backward(grad)
				model.AddProximalGrad(globalParams, cfg.ProxMu)
				opt.Step(model)
			} else {
				loss = nn.TrainBatch(model, opt, x, y)
			}
			if e == 0 {
				firstEpochLoss += loss
				firstEpochBatches++
			}
		})
	}
	loss := 0.0
	if firstEpochBatches > 0 {
		loss = firstEpochLoss / float64(firstEpochBatches)
	}
	params := paramsDst
	if params == nil {
		params = model.ParamsVector()
	} else {
		model.ParamsVectorInto(params)
	}
	return TrainResult{
		ClientID:   c.ID,
		Params:     params,
		NumSamples: c.NumTrainSamples(),
		Loss:       loss,
	}
}

// RoundLatency returns the client's expected virtual-time cost for one
// round: local compute (scaled by data volume, local epochs and the
// profile's compute multiplier) plus the model transfer both ways and
// the request RTT.
func (c *Client) RoundLatency(perSampleSec float64, localEpochs, modelBytes int) float64 {
	compute := perSampleSec * float64(c.NumTrainSamples()) * float64(localEpochs)
	return c.Profile.RoundLatency(compute, modelBytes)
}
