package fl

import (
	"bytes"
	"reflect"
	"testing"

	"haccs/internal/simnet"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// TestRunEmitsEventSequence runs a short training and checks the trace
// against the engine's own Result: every round produces the expected
// event skeleton and the selection events reconstruct exactly the
// per-round selected-client lists (the acceptance criterion for the
// JSONL trace).
func TestRunEmitsEventSequence(t *testing.T) {
	clients := buildClients(t, 6, 40, 3)
	cfg := smallConfig(3)
	cfg.MaxRounds = 6
	cfg.RecordSelections = true
	var sink telemetry.MemorySink
	cfg.Tracer = &sink
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg

	strat := &fixedStrategy{order: [][]int{{0, 2, 4}, {1, 3, 5}}}
	res := NewEngine(cfg, clients, strat).Run()

	starts := sink.Filter(telemetry.KindRoundStart)
	if len(starts) != res.Rounds {
		t.Fatalf("round_start events = %d, want %d", len(starts), res.Rounds)
	}
	selections := sink.Filter(telemetry.KindSelection)
	if len(selections) != res.Rounds {
		t.Fatalf("selection events = %d, want %d", len(selections), res.Rounds)
	}
	for r, e := range selections {
		if e.Round != r {
			t.Errorf("selection %d has round %d", r, e.Round)
		}
		if !reflect.DeepEqual(e.Clients, res.Selected[r]) {
			t.Errorf("round %d: trace selection %v != result %v", r, e.Clients, res.Selected[r])
		}
	}
	trained := sink.Filter(telemetry.KindClientTrained)
	wantTrained := 0
	for _, sel := range res.Selected {
		wantTrained += len(sel)
	}
	if len(trained) != wantTrained {
		t.Fatalf("client_trained events = %d, want %d", len(trained), wantTrained)
	}
	for _, e := range trained {
		if e.Client < 0 || e.Client >= len(clients) {
			t.Errorf("trained event has bad client %d", e.Client)
		}
		if e.VirtualSec <= 0 {
			t.Errorf("trained event missing virtual latency: %+v", e)
		}
	}
	aggs := sink.Filter(telemetry.KindAggregated)
	if len(aggs) != res.Rounds {
		t.Fatalf("aggregated events = %d, want %d", len(aggs), res.Rounds)
	}
	if got := aggs[len(aggs)-1].Clock; got != res.Clock {
		t.Errorf("final aggregated clock = %v, want %v", got, res.Clock)
	}
	evals := sink.Filter(telemetry.KindEvaluated)
	if len(evals) != len(res.History) {
		t.Fatalf("evaluated events = %d, want %d", len(evals), len(res.History))
	}
	for i, e := range evals {
		if e.Acc != res.History[i].Acc || e.Loss != res.History[i].Loss {
			t.Errorf("eval event %d = (%v, %v), want (%v, %v)", i, e.Acc, e.Loss, res.History[i].Acc, res.History[i].Loss)
		}
	}

	// The per-event ordering inside one round is fixed: round_start,
	// selection, then training, then the aggregate.
	events := sink.Events()
	kindAt := func(i int) string { return events[i].Kind }
	if kindAt(0) != telemetry.KindRoundStart || kindAt(1) != telemetry.KindSelection {
		t.Errorf("round prologue = %s, %s", kindAt(0), kindAt(1))
	}

	// Engine-level metrics must agree with the result.
	if got := reg.Counter("haccs_rounds_total", "").Value(); got != float64(res.Rounds) {
		t.Errorf("rounds counter = %v, want %d", got, res.Rounds)
	}
	if got := reg.Counter("haccs_clients_selected_total", "").Value(); got != float64(wantTrained) {
		t.Errorf("selected counter = %v, want %d", got, wantTrained)
	}
	if got := reg.Gauge("haccs_virtual_clock_seconds", "").Value(); got != res.Clock {
		t.Errorf("clock gauge = %v, want %v", got, res.Clock)
	}
	snap := reg.Histogram("haccs_client_train_seconds", "", trainWallBuckets).Snapshot()
	if snap.Count != uint64(wantTrained) {
		t.Errorf("train histogram count = %d, want %d", snap.Count, wantTrained)
	}
}

// TestRunTraceJSONLReconstruction streams the trace through the JSONL
// sink and reconstructs the selected-client lists from the decoded
// file, mirroring how an operator replays a haccs-sim trace.
func TestRunTraceJSONLReconstruction(t *testing.T) {
	clients := buildClients(t, 6, 40, 4)
	cfg := smallConfig(4)
	cfg.MaxRounds = 5
	cfg.RecordSelections = true
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	cfg.Tracer = sink

	strat := &fixedStrategy{order: [][]int{{1, 2}, {3, 4}, {0, 5}}}
	res := NewEngine(cfg, clients, strat).Run()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var selections [][]int
	for _, e := range events {
		if e.Kind == telemetry.KindSelection {
			selections = append(selections, e.Clients)
		}
	}
	if !reflect.DeepEqual(selections, res.Selected) {
		t.Errorf("JSONL selections %v != result %v", selections, res.Selected)
	}
}

// TestRunDropoutEvents checks unavailability reporting under a dropout
// model and that telemetry does not perturb the run itself.
func TestRunDropoutEvents(t *testing.T) {
	clients := buildClients(t, 6, 40, 5)
	base := smallConfig(5)
	base.MaxRounds = 8
	base.ClientsPerRound = 6
	base.RecordSelections = true
	base.Dropout = simnet.TransientDropout{
		Rate:   0.3,
		Seed:   99,
		NewRNG: func(s uint64) interface{ Float64() float64 } { return stats.NewRNG(s) },
	}

	run := func(traced bool) (*Result, *telemetry.MemorySink) {
		cfg := base
		var sink *telemetry.MemorySink
		if traced {
			sink = &telemetry.MemorySink{}
			cfg.Tracer = sink
			cfg.Metrics = telemetry.NewRegistry()
		}
		strat := &fixedStrategy{order: [][]int{{0, 1, 2, 3, 4, 5}}}
		return NewEngine(cfg, clients, strat).Run(), sink
	}
	plain, _ := run(false)
	traced, sink := run(true)

	// Telemetry must be a pure observer: bit-identical history.
	if !reflect.DeepEqual(plain.Selected, traced.Selected) || plain.Clock != traced.Clock {
		t.Fatal("telemetry changed the run outcome")
	}
	downs := sink.Filter(telemetry.KindUnavailable)
	if len(downs) == 0 {
		t.Fatal("no unavailability events despite 30% dropout over 8 rounds")
	}
	for _, e := range downs {
		if len(e.Clients) == 0 {
			t.Errorf("empty unavailable event: %+v", e)
		}
	}
}
