package fl

import (
	"sync"
	"testing"

	"haccs/internal/dataset"
	"haccs/internal/nn"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// TestLocalTrainCtxMatchesLocalTrain pins the reusable-context training
// path to the one-shot path: same client, parameters, config and RNG
// stream must yield bit-identical updated parameters and loss, with the
// context's scratch arena and persistent optimizer in play.
func TestLocalTrainCtxMatchesLocalTrain(t *testing.T) {
	clients := buildClients(t, 2, 60, 11)
	c := clients[0]
	arch := nn.Arch{Kind: "mlp", In: 36, Hidden: []int{16}, Classes: 4}
	template := arch.Build(stats.NewRNG(1))
	global := template.ParamsVector()
	cfg := LocalTrainConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9}

	want := c.LocalTrain(template.Clone(), global, cfg, stats.NewRNG(42))

	tc := NewTrainContext(template)
	dst := make([]float64, len(global))
	// Two runs through the same context: the second exercises warm
	// arenas and a reset optimizer and must still match exactly.
	for run := 0; run < 2; run++ {
		got := c.LocalTrainCtx(tc, global, dst, cfg, stats.NewRNG(42))
		if got.Loss != want.Loss {
			t.Fatalf("run %d: loss %v != %v", run, got.Loss, want.Loss)
		}
		if got.NumSamples != want.NumSamples || got.ClientID != want.ClientID {
			t.Fatalf("run %d: metadata mismatch: %+v vs %+v", run, got, want)
		}
		for i := range want.Params {
			if got.Params[i] != want.Params[i] {
				t.Fatalf("run %d: param %d = %v, want %v (not bit-identical)", run, i, got.Params[i], want.Params[i])
			}
		}
	}

	// The proximal path must agree across the two entry points too.
	proxCfg := cfg
	proxCfg.ProxMu = 0.01
	wantProx := c.LocalTrain(template.Clone(), global, proxCfg, stats.NewRNG(43))
	gotProx := c.LocalTrainCtx(tc, global, dst, proxCfg, stats.NewRNG(43))
	if gotProx.Loss != wantProx.Loss {
		t.Fatalf("prox: loss %v != %v", gotProx.Loss, wantProx.Loss)
	}
	for i := range wantProx.Params {
		if gotProx.Params[i] != wantProx.Params[i] {
			t.Fatalf("prox: param %d differs", i)
		}
	}
}

// TestLocalTrainCtxConcurrent runs many local-training jobs across
// goroutine-owned contexts (the engine's concurrency pattern) and
// checks under -race that contexts do not share state and results stay
// bit-identical to serial execution.
func TestLocalTrainCtxConcurrent(t *testing.T) {
	clients := buildClients(t, 8, 40, 17)
	arch := nn.Arch{Kind: "mlp", In: 36, Hidden: []int{12}, Classes: 4}
	template := arch.Build(stats.NewRNG(2))
	global := template.ParamsVector()
	cfg := LocalTrainConfig{Epochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0.9}

	serial := make([]TrainResult, len(clients))
	sctx := NewTrainContext(template)
	for i, c := range clients {
		serial[i] = c.LocalTrainCtx(sctx, global, nil, cfg, stats.NewRNG(uint64(100+i)))
	}

	const workers = 4
	parallel := make([]TrainResult, len(clients))
	var wg sync.WaitGroup
	wg.Add(workers)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			tc := NewTrainContext(template)
			for i := range jobs {
				parallel[i] = clients[i].LocalTrainCtx(tc, global, nil, cfg, stats.NewRNG(uint64(100+i)))
			}
		}()
	}
	for i := range clients {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i := range clients {
		if serial[i].Loss != parallel[i].Loss {
			t.Fatalf("client %d: loss %v != %v", i, parallel[i].Loss, serial[i].Loss)
		}
		for j := range serial[i].Params {
			if serial[i].Params[j] != parallel[i].Params[j] {
				t.Fatalf("client %d: param %d differs between serial and parallel", i, j)
			}
		}
	}
}

// TestFedAvgIntoMatchesFedAvg checks the in-place aggregation against
// the allocating one, including overwrite of stale destination content.
func TestFedAvgIntoMatchesFedAvg(t *testing.T) {
	results := []TrainResult{
		{Params: []float64{1, -2, 3}, NumSamples: 2},
		{Params: []float64{0.5, 4, -1}, NumSamples: 5},
		{Params: []float64{2, 2, 2}, NumSamples: 1},
	}
	want := FedAvg(results)
	dst := []float64{99, -99, 99} // stale garbage must be overwritten
	FedAvgInto(dst, results)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("FedAvgInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

// buildConvClients creates clients over a 16x16 single-channel task —
// large enough to survive LeNet's two conv+pool stages.
func buildConvClients(t testing.TB, n, samples int, seed uint64) []*Client {
	t.Helper()
	spec := dataset.Spec{Name: "conv-t", Channels: 1, Height: 16, Width: 16, Classes: 4, NoiseStd: 0.12, Blobs: 3}
	gen := dataset.NewGenerator(spec, seed)
	rng := stats.NewRNG(stats.DeriveSeed(seed, 5))
	profRNG := stats.NewRNG(stats.DeriveSeed(seed, 6))
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		major := i % 4
		ld := dataset.MajorityNoise(major, 0.75, []int{(major + 1) % 4, (major + 2) % 4, (major + 3) % 4}, dataset.DefaultMajorityFractions)
		full := gen.Generate(ld.Draw(samples, rng), rng)
		train, test := full.Split(0.8, rng)
		clients[i] = &Client{
			ID:      i,
			Data:    dataset.ClientData{Train: train, Test: test, Group: major},
			Profile: simnet.SampleProfile(profRNG),
		}
	}
	return clients
}

// TestEngineBatchedConvMatchesReference is the end-to-end regression
// for the batched convolution rewrite: two engines that differ only in
// conv implementation ("lenet" batched vs "lenet-ref" per-image) must
// produce bit-identical global parameter vectors after three federated
// rounds — local training, aggregation and selection included.
func TestEngineBatchedConvMatchesReference(t *testing.T) {
	run := func(kind string) *Result {
		clients := buildConvClients(t, 6, 30, 23)
		cfg := Config{
			Arch:                nn.Arch{Kind: kind, Channels: 1, Height: 16, Width: 16, Classes: 4, ConvFilters: [2]int{2, 3}},
			Seed:                7,
			Local:               LocalTrainConfig{Epochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0.9},
			ClientsPerRound:     3,
			MaxRounds:           3,
			PerSampleComputeSec: 0.001,
			Parallelism:         2,
		}
		strategy := &fixedStrategy{order: [][]int{{0, 1, 2}, {3, 4, 5}, {1, 3, 5}}}
		return NewEngine(cfg, clients, strategy).Run()
	}
	batched := run("lenet")
	ref := run("lenet-ref")
	if len(batched.FinalParams) != len(ref.FinalParams) {
		t.Fatalf("parameter count %d != %d", len(batched.FinalParams), len(ref.FinalParams))
	}
	for i := range ref.FinalParams {
		if batched.FinalParams[i] != ref.FinalParams[i] {
			t.Fatalf("global param %d = %v (batched) vs %v (reference); not bit-identical",
				i, batched.FinalParams[i], ref.FinalParams[i])
		}
	}
	if batched.FinalAccuracy() != ref.FinalAccuracy() {
		t.Fatalf("final accuracy %v != %v", batched.FinalAccuracy(), ref.FinalAccuracy())
	}
}
