package fl

import "haccs/internal/stats"

// ClientInfo is the system-level knowledge the server legitimately holds
// about a client when training starts: its identity, expected round
// latency, and data volume. Distribution summaries (the HACCS addition)
// travel separately — see internal/core — so baseline strategies cannot
// accidentally peek at them.
type ClientInfo struct {
	ID         int
	Latency    float64 // expected round latency in virtual seconds
	NumSamples int
}

// Strategy is a client-selection policy. The engine calls Init once,
// then Select/Update every round. Implementations live in
// internal/selection (Random, TiFL, Oort) and internal/core (HACCS).
// The Select/Update subset structurally satisfies rounds.Strategy, so
// every implementation also drives the shared round runtime
// (internal/rounds) — in-process or over the flnet transport — with no
// adaptation.
type Strategy interface {
	// Name identifies the strategy in results and logs.
	Name() string
	// Init receives the client roster and a dedicated RNG stream before
	// the first round.
	Init(clients []ClientInfo, rng *stats.RNG)
	// Select returns up to k client IDs to train this epoch, drawn only
	// from clients whose availability flag is true. Returning fewer than
	// k (even zero, if nothing is available) is allowed.
	Select(epoch int, available []bool, k int) []int
	// Update reports the round's observed losses. Its selected slice
	// holds the REPORTERS — the selected clients that returned an update
	// within the round deadline — in selection order, with losses
	// aligned to it. Clients cut by the deadline or lost to transport
	// failures are omitted, so loss-driven state (Oort utilities, HACCS
	// ACL) never ingests results the aggregate excluded. With no
	// deadline and no failures, selected equals the full selection.
	Update(epoch int, selected []int, losses []float64)
}

// FilterAvailable returns the IDs in candidates whose availability flag
// is set — a helper shared by strategy implementations.
func FilterAvailable(available []bool) []int {
	var out []int
	for id, ok := range available {
		if ok {
			out = append(out, id)
		}
	}
	return out
}
