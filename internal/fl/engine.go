package fl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"haccs/internal/nn"
	"haccs/internal/simnet"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// Config parameterizes one federated training run.
type Config struct {
	// Arch is the model family every client trains.
	Arch nn.Arch
	// Seed is the root seed for all engine-owned randomness (model init,
	// batch shuffling, strategy stream).
	Seed uint64
	// Local controls client-side optimization.
	Local LocalTrainConfig
	// ClientsPerRound is the selection budget k.
	ClientsPerRound int
	// MaxRounds bounds the run.
	MaxRounds int
	// TargetAccuracy stops the run early once the evaluated global
	// accuracy reaches it (0 disables early stop).
	TargetAccuracy float64
	// EvalEvery evaluates the global model every that many rounds
	// (default 1). The final round is always evaluated.
	EvalEvery int
	// PerSampleComputeSec is the baseline compute cost of one training
	// sample for one local epoch on a Fast device; per-client compute
	// time scales with data volume and the profile multiplier.
	PerSampleComputeSec float64
	// Dropout injects per-epoch unavailability (nil = no dropout).
	Dropout simnet.DropoutModel
	// Parallelism bounds concurrent client training (0 = GOMAXPROCS).
	Parallelism int
	// RecordSelections keeps the per-round selected-client lists in the
	// Result (needed by the Table III / Fig 11 analyses).
	RecordSelections bool
	// Tracer receives the structured round-trace event stream; nil
	// disables tracing at the cost of one branch per emission site.
	// Implementations must tolerate concurrent Emit calls (client
	// training events come from worker goroutines).
	Tracer telemetry.Tracer
	// Metrics, when non-nil, receives engine-level counters, gauges and
	// histograms (see DESIGN.md "Observability" for the name contract).
	Metrics *telemetry.Registry
}

func (c *Config) validate() {
	if c.ClientsPerRound <= 0 {
		panic("fl: ClientsPerRound must be positive")
	}
	if c.MaxRounds <= 0 {
		panic("fl: MaxRounds must be positive")
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.PerSampleComputeSec < 0 {
		panic("fl: negative PerSampleComputeSec")
	}
	if c.Dropout == nil {
		c.Dropout = simnet.NoDropout{}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Point is one evaluation of the global model.
type Point struct {
	Round int     // rounds completed when evaluated
	Time  float64 // virtual seconds elapsed
	Acc   float64 // mean per-client test accuracy
	Loss  float64 // mean per-client test loss
}

// Result summarizes a training run.
type Result struct {
	Strategy string
	History  []Point
	// PerClientAcc is each client's test accuracy under the final
	// global model.
	PerClientAcc []float64
	// Selected holds the chosen client IDs per round when
	// Config.RecordSelections is set.
	Selected [][]int
	// Rounds is the number of rounds executed.
	Rounds int
	// Clock is the final virtual time in seconds.
	Clock float64
	// FinalParams is the final global parameter vector.
	FinalParams []float64
}

// FinalAccuracy returns the last evaluated global accuracy (0 if the
// run produced no evaluations).
func (r *Result) FinalAccuracy() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1].Acc
}

// Engine drives one federated training run.
type Engine struct {
	cfg      Config
	clients  []*Client
	strategy Strategy

	global     []float64
	modelBytes int
	clock      float64

	// Per-worker training contexts for parallel local training and
	// evaluation; allocated once and reused every round so the
	// steady-state round loop allocates nothing.
	workers []*TrainContext

	// Round-loop buffers, sized once and reused across rounds.
	results   []TrainResult
	paramsBuf [][]float64 // one parameter vector per selection slot
	losses    []float64
	available []bool
	seen      []bool
	down      []int
	evalLoss  []float64

	// met caches the engine's telemetry collectors (nil when metrics
	// are off) so the hot loop never touches the registry maps.
	met *engineMetrics
}

// engineMetrics holds the collectors the engine records into; looked
// up once at construction.
type engineMetrics struct {
	rounds      *telemetry.Counter
	selected    *telemetry.Counter
	unavailable *telemetry.Counter
	trainWall   *telemetry.Histogram
	trainVirt   *telemetry.Histogram
	roundVirt   *telemetry.Histogram
	clock       *telemetry.Gauge
	evalAcc     *telemetry.Gauge
	evalLoss    *telemetry.Gauge
}

// trainWallBuckets cover host-side local-training times: sub-ms MLP
// steps at Quick scale up to seconds for paper-scale CNNs.
var trainWallBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// virtualBuckets cover the simulator's per-round latencies (Table II
// profiles land in tens to hundreds of virtual seconds).
var virtualBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

func newEngineMetrics(reg *telemetry.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		rounds:      reg.Counter("haccs_rounds_total", "Training rounds completed by the engine."),
		selected:    reg.Counter("haccs_clients_selected_total", "Client training jobs dispatched."),
		unavailable: reg.Counter("haccs_clients_unavailable_total", "Per-round client dropout occurrences."),
		trainWall:   reg.Histogram("haccs_client_train_seconds", "Host wall-clock duration of one local training job.", trainWallBuckets),
		trainVirt:   reg.Histogram("haccs_client_virtual_latency_seconds", "Simulated per-client round latency.", virtualBuckets),
		roundVirt:   reg.Histogram("haccs_round_virtual_seconds", "Simulated round makespan (slowest selected client).", virtualBuckets),
		clock:       reg.Gauge("haccs_virtual_clock_seconds", "Virtual time elapsed in the run."),
		evalAcc:     reg.Gauge("haccs_eval_accuracy", "Latest mean per-client test accuracy of the global model."),
		evalLoss:    reg.Gauge("haccs_eval_loss", "Latest mean per-client test loss of the global model."),
	}
}

// NewEngine validates the configuration and initializes the global model
// deterministically from the seed.
func NewEngine(cfg Config, clients []*Client, strategy Strategy) *Engine {
	cfg.validate()
	if len(clients) == 0 {
		panic("fl: no clients")
	}
	for i, c := range clients {
		if c.ID != i {
			panic(fmt.Sprintf("fl: client %d has ID %d; IDs must be dense indices", i, c.ID))
		}
		if c.NumTrainSamples() == 0 {
			panic(fmt.Sprintf("fl: client %d has no training data", i))
		}
	}
	template := cfg.Arch.Build(stats.NewRNG(stats.DeriveSeed(cfg.Seed, 0)))
	e := &Engine{
		cfg:        cfg,
		clients:    clients,
		strategy:   strategy,
		global:     template.ParamsVector(),
		modelBytes: template.WireBytes(),
		met:        newEngineMetrics(cfg.Metrics),
	}
	e.workers = make([]*TrainContext, cfg.Parallelism)
	for i := range e.workers {
		e.workers[i] = NewTrainContext(template)
	}
	e.results = make([]TrainResult, 0, cfg.ClientsPerRound)
	e.paramsBuf = make([][]float64, cfg.ClientsPerRound)
	for i := range e.paramsBuf {
		e.paramsBuf[i] = make([]float64, len(e.global))
	}
	e.losses = make([]float64, 0, cfg.ClientsPerRound)
	e.available = make([]bool, len(clients))
	e.seen = make([]bool, len(clients))
	e.evalLoss = make([]float64, len(clients))
	infos := make([]ClientInfo, len(clients))
	for i, c := range clients {
		infos[i] = ClientInfo{
			ID:         c.ID,
			Latency:    c.RoundLatency(cfg.PerSampleComputeSec, cfg.Local.Epochs, e.modelBytes),
			NumSamples: c.NumTrainSamples(),
		}
	}
	strategy.Init(infos, stats.NewRNG(stats.DeriveSeed(cfg.Seed, 1)))
	return e
}

// ModelBytes returns the simulated wire size of one model transfer.
func (e *Engine) ModelBytes() int { return e.modelBytes }

// ClientLatency returns a client's expected round latency under the
// engine's configuration.
func (e *Engine) ClientLatency(id int) float64 {
	return e.clients[id].RoundLatency(e.cfg.PerSampleComputeSec, e.cfg.Local.Epochs, e.modelBytes)
}

// Run executes the configured number of rounds (or stops early at the
// target accuracy) and returns the result.
func (e *Engine) Run() *Result {
	res := &Result{Strategy: e.strategy.Name()}
	for round := 0; round < e.cfg.MaxRounds; round++ {
		selected := e.runRound(round)
		res.Rounds = round + 1
		if e.cfg.RecordSelections {
			res.Selected = append(res.Selected, selected)
		}
		last := round == e.cfg.MaxRounds-1
		if (round+1)%e.cfg.EvalEvery == 0 || last {
			acc, loss, perClient := e.Evaluate()
			res.History = append(res.History, Point{Round: round + 1, Time: e.clock, Acc: acc, Loss: loss})
			res.PerClientAcc = perClient
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.Emit(telemetry.Evaluated(round, acc, loss, e.clock))
			}
			if e.met != nil {
				e.met.evalAcc.Set(acc)
				e.met.evalLoss.Set(loss)
			}
			if e.cfg.TargetAccuracy > 0 && acc >= e.cfg.TargetAccuracy {
				break
			}
		}
	}
	res.Clock = e.clock
	res.FinalParams = append([]float64(nil), e.global...)
	return res
}

// runRound executes one selection + local training + aggregation round
// and returns the selected client IDs.
func (e *Engine) runRound(round int) []int {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Emit(telemetry.RoundStart(round))
	}
	mask := e.cfg.Dropout.Unavailable(round, len(e.clients))
	available := e.available
	down := e.down[:0]
	for i := range available {
		available[i] = !mask[i]
		if mask[i] {
			down = append(down, i)
		}
	}
	e.down = down
	if len(down) > 0 {
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.Emit(telemetry.Unavailable(round, down))
		}
		if e.met != nil {
			e.met.unavailable.Add(float64(len(down)))
		}
	}
	selected := e.strategy.Select(round, available, e.cfg.ClientsPerRound)
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Emit(telemetry.Selection(round, append([]int(nil), selected...)))
	}
	if len(selected) == 0 {
		// Nothing available: the server idles briefly and retries next
		// round. One virtual second models the scheduler's retry tick.
		e.clock++
		e.strategy.Update(round, nil, nil)
		if e.met != nil {
			e.met.rounds.Inc()
			e.met.clock.Set(e.clock)
		}
		return nil
	}
	clear(e.seen)
	for _, id := range selected {
		if id < 0 || id >= len(e.clients) {
			panic(fmt.Sprintf("fl: strategy selected invalid client %d", id))
		}
		if !available[id] {
			panic(fmt.Sprintf("fl: strategy selected unavailable client %d", id))
		}
		if e.seen[id] {
			panic(fmt.Sprintf("fl: strategy selected client %d twice", id))
		}
		e.seen[id] = true
	}
	if len(selected) > e.cfg.ClientsPerRound {
		panic("fl: strategy selected more clients than the budget")
	}

	results := e.trainSelected(round, selected)
	FedAvgInto(e.global, results)

	// Synchronous FedAvg: the round takes as long as its slowest
	// participant.
	roundTime := 0.0
	losses := e.losses[:0]
	for i, id := range selected {
		if lat := e.ClientLatency(id); lat > roundTime {
			roundTime = lat
		}
		losses = append(losses, results[i].Loss)
	}
	e.losses = losses
	e.clock += roundTime
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Emit(telemetry.Aggregated(round, append([]int(nil), selected...), roundTime, e.clock))
	}
	if e.met != nil {
		e.met.rounds.Inc()
		e.met.selected.Add(float64(len(selected)))
		e.met.roundVirt.Observe(roundTime)
		e.met.clock.Set(e.clock)
	}
	e.strategy.Update(round, selected, losses)
	return selected
}

// trainSelected trains the selected clients in parallel, each from the
// current global parameters, returning results in selection order. The
// fan-out spawns min(workers, jobs) goroutines per round — each pinned
// to one persistent TrainContext — that pull job indices from an atomic
// counter; no semaphore churn and no per-job closure allocations.
// Results are independent of scheduling because every (client, round)
// pair owns a derived RNG stream and each selection slot owns its
// parameter buffer.
func (e *Engine) trainSelected(round int, selected []int) []TrainResult {
	results := e.results[:len(selected)]
	workers := min(len(e.workers), len(selected))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(tc *TrainContext) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(selected) {
					return
				}
				id := selected[i]
				// Each (client, round) pair owns an independent stream so
				// results do not depend on scheduling order.
				rng := stats.NewRNG(stats.DeriveSeed(e.cfg.Seed, 1000+uint64(id)*1_000_003+uint64(round)))
				var start time.Time
				if e.cfg.Tracer != nil || e.met != nil {
					start = time.Now()
				}
				results[i] = e.clients[id].LocalTrainCtx(tc, e.global, e.paramsBuf[i], e.cfg.Local, rng)
				if e.cfg.Tracer != nil || e.met != nil {
					wall := time.Since(start).Seconds()
					virt := e.ClientLatency(id)
					if e.cfg.Tracer != nil {
						e.cfg.Tracer.Emit(telemetry.ClientTrained(round, id, results[i].Loss, results[i].NumSamples, wall, virt))
					}
					if e.met != nil {
						e.met.trainWall.Observe(wall)
						e.met.trainVirt.Observe(virt)
					}
				}
			}
		}(e.workers[w])
	}
	wg.Wait()
	return results
}

// Evaluate measures the current global model against every client's
// local test set, returning the unweighted mean accuracy and loss across
// clients (the paper's "average test accuracy on all devices") plus the
// per-client accuracies. perClient is freshly allocated (callers retain
// it in Result); the loss buffer is engine-owned and reused.
func (e *Engine) Evaluate() (meanAcc, meanLoss float64, perClient []float64) {
	perClient = make([]float64, len(e.clients))
	losses := e.evalLoss
	workers := min(len(e.workers), len(e.clients))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(tc *TrainContext) {
			defer wg.Done()
			model := tc.Model
			model.SetParamsVector(e.global)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.clients) {
					return
				}
				test := e.clients[i].Data.Test
				losses[i], perClient[i] = model.Evaluate(test.X, test.Y)
			}
		}(e.workers[w])
	}
	wg.Wait()
	return stats.Mean(perClient), stats.Mean(losses), perClient
}

// GlobalParams returns a copy of the current global parameter vector.
func (e *Engine) GlobalParams() []float64 { return append([]float64(nil), e.global...) }
