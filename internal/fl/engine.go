package fl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"haccs/internal/checkpoint"
	"haccs/internal/fleet"
	"haccs/internal/nn"
	"haccs/internal/rounds"
	"haccs/internal/simnet"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// Config parameterizes one federated training run.
type Config struct {
	// Arch is the model family every client trains.
	Arch nn.Arch
	// Seed is the root seed for all engine-owned randomness (model init,
	// batch shuffling, strategy stream).
	Seed uint64
	// Local controls client-side optimization.
	Local LocalTrainConfig
	// ClientsPerRound is the selection budget k.
	ClientsPerRound int
	// MaxRounds bounds the run.
	MaxRounds int
	// TargetAccuracy stops the run early once the evaluated global
	// accuracy reaches it (0 disables early stop).
	TargetAccuracy float64
	// EvalEvery evaluates the global model every that many rounds
	// (default 1). The final round is always evaluated.
	EvalEvery int
	// PerSampleComputeSec is the baseline compute cost of one training
	// sample for one local epoch on a Fast device; per-client compute
	// time scales with data volume and the profile multiplier.
	PerSampleComputeSec float64
	// RoundDeadline is the virtual-time round deadline in seconds:
	// selected clients slower than it are cut as stragglers and the
	// round aggregates only the reporters (see rounds.Config.Deadline).
	// 0 keeps rounds fully synchronous. Sync-only: async mode bounds
	// slow updates with Async.MaxStaleness instead.
	RoundDeadline float64
	// Mode selects the round runtime: synchronous barrier rounds (the
	// zero value) or FedBuff-style buffered asynchronous aggregation
	// (see rounds.Mode).
	Mode rounds.Mode
	// Async tunes the buffered asynchronous driver when Mode is
	// rounds.ModeAsync; ignored in sync mode.
	Async rounds.AsyncConfig
	// Dropout injects per-epoch unavailability (nil = no dropout).
	Dropout simnet.DropoutModel
	// Parallelism bounds concurrent client training (0 = GOMAXPROCS).
	Parallelism int
	// RecordSelections keeps the per-round selected-client lists in the
	// Result (needed by the Table III / Fig 11 analyses).
	RecordSelections bool
	// Tracer receives the structured round-trace event stream; nil
	// disables tracing at the cost of one branch per emission site.
	// Implementations must tolerate concurrent Emit calls (client
	// training events come from worker goroutines).
	Tracer telemetry.Tracer
	// Spans, when non-nil, times the round lifecycle as a span tree
	// (see rounds.Config.Spans). A nil tracer costs nothing.
	Spans *telemetry.SpanTracer
	// Metrics, when non-nil, receives engine-level counters, gauges and
	// histograms (see DESIGN.md "Observability" for the name contract).
	Metrics *telemetry.Registry
	// OnSummary, when non-nil, receives refreshed client summaries
	// piggybacked on training replies (unused by the simulated local
	// transport today; part of the shared round-driver contract).
	OnSummary func(clientID int, labelCounts []float64)
	// Fleet, when non-nil, is the per-client health registry fed one
	// observation per round by the driver (see internal/fleet). On the
	// in-process transport its latency statistics are simulated virtual
	// seconds, keeping registry state deterministic; it joins the
	// checkpoint component set so resumed runs keep their fleet history
	// bit-identically. Nil disables fleet recording at zero cost.
	Fleet *fleet.Registry
	// Checkpoint, when non-nil, durably persists the full run state
	// (model, driver clock, strategy, run progress, dropout schedule)
	// into the store every CheckpointEvery rounds; a run restored from
	// such a snapshot (see Engine.Restore) reproduces the uninterrupted
	// trajectory bit for bit. Nil disables checkpointing at zero cost
	// to the round hot path.
	Checkpoint *checkpoint.Store
	// CheckpointEvery is the snapshot cadence in rounds when Checkpoint
	// is set (<= 0 means every round).
	CheckpointEvery int
}

func (c *Config) validate() {
	if c.ClientsPerRound <= 0 {
		panic("fl: ClientsPerRound must be positive")
	}
	if c.MaxRounds <= 0 {
		panic("fl: MaxRounds must be positive")
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.PerSampleComputeSec < 0 {
		panic("fl: negative PerSampleComputeSec")
	}
	if c.RoundDeadline < 0 {
		panic("fl: negative RoundDeadline")
	}
	if c.Dropout == nil {
		c.Dropout = simnet.NoDropout{}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Point is one evaluation of the global model.
type Point struct {
	Round int     // rounds completed when evaluated
	Time  float64 // virtual seconds elapsed
	Acc   float64 // mean per-client test accuracy
	Loss  float64 // mean per-client test loss
}

// Result summarizes a training run.
type Result struct {
	Strategy string
	History  []Point
	// PerClientAcc is each client's test accuracy under the final
	// global model.
	PerClientAcc []float64
	// Selected holds the chosen client IDs per round when
	// Config.RecordSelections is set.
	Selected [][]int
	// Rounds is the number of rounds executed.
	Rounds int
	// Clock is the final virtual time in seconds.
	Clock float64
	// FinalParams is the final global parameter vector.
	FinalParams []float64
}

// FinalAccuracy returns the last evaluated global accuracy (0 if the
// run produced no evaluations).
func (r *Result) FinalAccuracy() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1].Acc
}

// Engine drives one federated training run. Since the round-runtime
// extraction it is a thin adapter: the per-round state machine
// (selection, dispatch, deadline cutoff, partial FedAvg, telemetry)
// lives in internal/rounds; the engine owns what is specific to the
// in-process simulation — the client roster, the worker TrainContexts,
// the evaluation loop, and the run-level History/early-stop logic.
type Engine struct {
	cfg      Config
	clients  []*Client
	strategy Strategy
	driver   rounds.Runner

	modelBytes int

	// Per-worker training contexts for parallel local training and
	// evaluation; allocated once and reused every round so the
	// steady-state round loop allocates nothing. The driver pins its
	// worker goroutine w to workers[w] via the Proxy worker index.
	workers []*TrainContext
	// paramsBuf holds one parameter vector per selection slot, reused
	// across rounds (indexed by the Proxy slot argument).
	paramsBuf [][]float64

	evalLoss []float64

	// Run-level progress lives on the engine (not a Run-local Result)
	// so checkpoints can capture it and Restore can replay it: a
	// resumed run's Result carries the full history, not a suffix.
	history      []Point
	perClientAcc []float64
	selected     [][]int
	roundsDone   int
	// startRound is where the next Run call begins: 0 for a fresh
	// engine, the snapshot round after Restore.
	startRound int
	// saver persists snapshots on cadence; nil = checkpointing off
	// (MaybeSave on a nil saver is a zero-alloc no-op).
	saver *checkpoint.Saver

	// met caches the engine's evaluation gauges (nil when metrics are
	// off); the round-level collectors are owned by the driver.
	met *engineMetrics
}

// engineMetrics holds the evaluation collectors the engine records
// into; looked up once at construction.
type engineMetrics struct {
	evalAcc  *telemetry.Gauge
	evalLoss *telemetry.Gauge
}

// trainWallBuckets and virtualBuckets moved to the rounds driver with
// the collectors that use them; aliased here for tests and callers that
// referenced the fl-level layouts.
var (
	trainWallBuckets = rounds.TrainWallBuckets
	virtualBuckets   = rounds.VirtualBuckets
)

func newEngineMetrics(reg *telemetry.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		evalAcc:  reg.Gauge("haccs_eval_accuracy", "Latest mean per-client test accuracy of the global model."),
		evalLoss: reg.Gauge("haccs_eval_loss", "Latest mean per-client test loss of the global model."),
	}
}

// NewEngine validates the configuration and initializes the global model
// deterministically from the seed.
func NewEngine(cfg Config, clients []*Client, strategy Strategy) *Engine {
	cfg.validate()
	if len(clients) == 0 {
		panic("fl: no clients")
	}
	for i, c := range clients {
		if c.ID != i {
			panic(fmt.Sprintf("fl: client %d has ID %d; IDs must be dense indices", i, c.ID))
		}
		if c.NumTrainSamples() == 0 {
			panic(fmt.Sprintf("fl: client %d has no training data", i))
		}
	}
	template := cfg.Arch.Build(stats.NewRNG(stats.DeriveSeed(cfg.Seed, 0)))
	initial := template.ParamsVector()
	e := &Engine{
		cfg:        cfg,
		clients:    clients,
		strategy:   strategy,
		modelBytes: template.WireBytes(),
		met:        newEngineMetrics(cfg.Metrics),
	}
	e.workers = make([]*TrainContext, cfg.Parallelism)
	for i := range e.workers {
		e.workers[i] = NewTrainContext(template)
	}
	e.paramsBuf = make([][]float64, cfg.ClientsPerRound)
	for i := range e.paramsBuf {
		e.paramsBuf[i] = make([]float64, len(initial))
	}
	e.evalLoss = make([]float64, len(clients))
	infos := make([]ClientInfo, len(clients))
	for i, c := range clients {
		infos[i] = ClientInfo{
			ID:         c.ID,
			Latency:    c.RoundLatency(cfg.PerSampleComputeSec, cfg.Local.Epochs, e.modelBytes),
			NumSamples: c.NumTrainSamples(),
		}
	}
	strategy.Init(infos, stats.NewRNG(stats.DeriveSeed(cfg.Seed, 1)))
	rcfg := rounds.Config{
		ClientsPerRound: cfg.ClientsPerRound,
		Deadline:        cfg.RoundDeadline,
		Dropout:         cfg.Dropout,
		Tracer:          cfg.Tracer,
		Spans:           cfg.Spans,
		Metrics:         cfg.Metrics,
		OnSummary:       cfg.OnSummary,
		Fleet:           cfg.Fleet,
	}
	if cfg.Mode == rounds.ModeAsync {
		e.driver = rounds.NewAsyncDriver(rcfg, cfg.Async, localTransport{e}, strategy, initial)
	} else {
		e.driver = rounds.NewDriver(rcfg, localTransport{e}, strategy, initial)
	}
	e.saver = checkpoint.NewSaver(cfg.Checkpoint, cfg.CheckpointEvery, e.checkpointComponents(), cfg.Tracer, cfg.Spans, cfg.Metrics)
	return e
}

// ModelBytes returns the simulated wire size of one model transfer.
func (e *Engine) ModelBytes() int { return e.modelBytes }

// ClientLatency returns a client's expected round latency under the
// engine's configuration.
func (e *Engine) ClientLatency(id int) float64 {
	return e.clients[id].RoundLatency(e.cfg.PerSampleComputeSec, e.cfg.Local.Epochs, e.modelBytes)
}

// Run executes the configured number of rounds (or stops early at the
// target accuracy) and returns the result. After Restore it continues
// from the snapshot round; the returned Result spans the whole run,
// restored prefix included.
func (e *Engine) Run() *Result {
	for round := e.startRound; round < e.cfg.MaxRounds; round++ {
		out := e.driver.RunRound(round)
		e.roundsDone = round + 1
		if e.cfg.RecordSelections {
			e.selected = append(e.selected, out.Selected)
		}
		stop := false
		last := round == e.cfg.MaxRounds-1
		if (round+1)%e.cfg.EvalEvery == 0 || last {
			acc, loss, perClient := e.Evaluate()
			e.history = append(e.history, Point{Round: round + 1, Time: e.driver.Clock(), Acc: acc, Loss: loss})
			e.perClientAcc = perClient
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.Emit(telemetry.Evaluated(round, acc, loss, e.driver.Clock()))
			}
			if e.met != nil {
				e.met.evalAcc.Set(acc)
				e.met.evalLoss.Set(loss)
			}
			if e.cfg.TargetAccuracy > 0 && acc >= e.cfg.TargetAccuracy {
				stop = true
			}
		}
		// The snapshot is taken after the round's evaluation so its
		// history prefix matches what an uninterrupted run would have
		// accumulated by this point.
		if _, err := e.saver.MaybeSave(round + 1); err != nil {
			panic(fmt.Sprintf("fl: checkpoint save after round %d: %v", round+1, err))
		}
		if stop {
			break
		}
	}
	return &Result{
		Strategy:     e.strategy.Name(),
		History:      append([]Point(nil), e.history...),
		PerClientAcc: e.perClientAcc,
		Selected:     append([][]int(nil), e.selected...),
		Rounds:       e.roundsDone,
		Clock:        e.driver.Clock(),
		FinalParams:  append([]float64(nil), e.driver.Global()...),
	}
}

// RunRound executes one round through the shared driver and returns its
// outcome (see rounds.Outcome for buffer lifetimes).
func (e *Engine) RunRound(round int) rounds.Outcome { return e.driver.RunRound(round) }

// Clock returns the virtual time elapsed so far in seconds.
func (e *Engine) Clock() float64 { return e.driver.Clock() }

// Evaluate measures the current global model against every client's
// local test set, returning the unweighted mean accuracy and loss across
// clients (the paper's "average test accuracy on all devices") plus the
// per-client accuracies. perClient is freshly allocated (callers retain
// it in Result); the loss buffer is engine-owned and reused.
func (e *Engine) Evaluate() (meanAcc, meanLoss float64, perClient []float64) {
	perClient = make([]float64, len(e.clients))
	losses := e.evalLoss
	global := e.driver.Global()
	workers := min(len(e.workers), len(e.clients))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(tc *TrainContext) {
			defer wg.Done()
			model := tc.Model
			model.SetParamsVector(global)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.clients) {
					return
				}
				test := e.clients[i].Data.Test
				losses[i], perClient[i] = model.Evaluate(test.X, test.Y)
			}
		}(e.workers[w])
	}
	wg.Wait()
	return stats.Mean(perClient), stats.Mean(losses), perClient
}

// GlobalParams returns a copy of the current global parameter vector.
func (e *Engine) GlobalParams() []float64 { return append([]float64(nil), e.driver.Global()...) }

// Runner exposes the underlying round runtime — callers that need
// mode-specific surfaces (the async driver's introspection state, for
// example) type-assert on the returned value.
func (e *Engine) Runner() rounds.Runner { return e.driver }
