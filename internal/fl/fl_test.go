package fl

import (
	"math"
	"testing"

	"haccs/internal/dataset"
	"haccs/internal/nn"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// fixedStrategy selects a predetermined rotation of clients.
type fixedStrategy struct {
	order [][]int
	inits int
	calls int
}

func (f *fixedStrategy) Name() string                       { return "fixed" }
func (f *fixedStrategy) Init(c []ClientInfo, r *stats.RNG)  { f.inits++ }
func (f *fixedStrategy) Update(e int, s []int, l []float64) {}
func (f *fixedStrategy) Select(e int, available []bool, k int) []int {
	sel := f.order[f.calls%len(f.order)]
	f.calls++
	var out []int
	for _, id := range sel {
		if id < len(available) && available[id] {
			out = append(out, id)
		}
	}
	return out
}

// buildClients creates n clients over a small synthetic task with fixed
// profiles.
func buildClients(t testing.TB, n, samples int, seed uint64) []*Client {
	t.Helper()
	spec := dataset.Spec{Name: "t", Channels: 1, Height: 6, Width: 6, Classes: 4, NoiseStd: 0.12, Blobs: 3}
	gen := dataset.NewGenerator(spec, seed)
	rng := stats.NewRNG(stats.DeriveSeed(seed, 5))
	profRNG := stats.NewRNG(stats.DeriveSeed(seed, 6))
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		major := i % 4
		ld := dataset.MajorityNoise(major, 0.75, []int{(major + 1) % 4, (major + 2) % 4, (major + 3) % 4}, dataset.DefaultMajorityFractions)
		full := gen.Generate(ld.Draw(samples, rng), rng)
		train, test := full.Split(0.8, rng)
		clients[i] = &Client{
			ID:      i,
			Data:    dataset.ClientData{Train: train, Test: test, Group: major},
			Profile: simnet.SampleProfile(profRNG),
		}
	}
	return clients
}

func smallConfig(seed uint64) Config {
	return Config{
		Arch:                nn.Arch{Kind: "mlp", In: 36, Hidden: []int{16}, Classes: 4},
		Seed:                seed,
		Local:               LocalTrainConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9},
		ClientsPerRound:     3,
		MaxRounds:           10,
		EvalEvery:           2,
		PerSampleComputeSec: 0.001,
	}
}

func TestFedAvgWeighted(t *testing.T) {
	results := []TrainResult{
		{Params: []float64{1, 2}, NumSamples: 1},
		{Params: []float64{4, 5}, NumSamples: 3},
	}
	avg := FedAvg(results)
	want := []float64{0.25*1 + 0.75*4, 0.25*2 + 0.75*5}
	for i := range want {
		if math.Abs(avg[i]-want[i]) > 1e-12 {
			t.Errorf("FedAvg[%d] = %v, want %v", i, avg[i], want[i])
		}
	}
}

func TestFedAvgSingleClientIdentity(t *testing.T) {
	r := TrainResult{Params: []float64{3, 1, 4}, NumSamples: 7}
	avg := FedAvg([]TrainResult{r})
	for i := range r.Params {
		if avg[i] != r.Params[i] {
			t.Fatal("single-client FedAvg not identity")
		}
	}
}

func TestFedAvgValidation(t *testing.T) {
	cases := [][]TrainResult{
		{},
		{{Params: []float64{1}, NumSamples: 1}, {Params: []float64{1, 2}, NumSamples: 1}},
		{{Params: []float64{1}, NumSamples: 0}},
	}
	for i, rs := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			FedAvg(rs)
		}()
	}
}

func TestLocalTrainReducesLoss(t *testing.T) {
	clients := buildClients(t, 4, 200, 1)
	arch := nn.Arch{Kind: "mlp", In: 36, Hidden: []int{16}, Classes: 4}
	model := arch.Build(stats.NewRNG(2))
	global := model.ParamsVector()
	scratch := model.Clone()
	cfg := LocalTrainConfig{Epochs: 3, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	res := clients[0].LocalTrain(scratch, global, cfg, stats.NewRNG(3))
	if res.ClientID != 0 || res.NumSamples != clients[0].NumTrainSamples() {
		t.Fatal("result metadata wrong")
	}
	// Updated params must differ from the global.
	diff := 0.0
	for i := range global {
		diff += math.Abs(res.Params[i] - global[i])
	}
	if diff == 0 {
		t.Fatal("LocalTrain did not move parameters")
	}
	// Training from the result should show lower loss than from scratch.
	model.SetParamsVector(res.Params)
	after := model.Loss(clients[0].Data.Train.X, clients[0].Data.Train.Y)
	model.SetParamsVector(global)
	before := model.Loss(clients[0].Data.Train.X, clients[0].Data.Train.Y)
	if after >= before {
		t.Errorf("local training raised loss: %v -> %v", before, after)
	}
	if res.Loss <= 0 {
		t.Errorf("reported loss %v", res.Loss)
	}
}

func TestLocalTrainDeterministic(t *testing.T) {
	clients := buildClients(t, 1, 100, 4)
	arch := nn.Arch{Kind: "mlp", In: 36, Hidden: []int{8}, Classes: 4}
	model := arch.Build(stats.NewRNG(5))
	global := model.ParamsVector()
	cfg := LocalTrainConfig{Epochs: 2, BatchSize: 8, LR: 0.05, Momentum: 0}
	a := clients[0].LocalTrain(model.Clone(), global, cfg, stats.NewRNG(6))
	b := clients[0].LocalTrain(model.Clone(), global, cfg, stats.NewRNG(6))
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			t.Fatal("LocalTrain not deterministic under equal seeds")
		}
	}
}

func TestEngineRunProducesHistory(t *testing.T) {
	clients := buildClients(t, 8, 120, 7)
	strat := &fixedStrategy{order: [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 0}}}
	eng := NewEngine(smallConfig(8), clients, strat)
	res := eng.Run()
	if strat.inits != 1 {
		t.Errorf("Init called %d times", strat.inits)
	}
	if res.Rounds != 10 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	// EvalEvery=2 over 10 rounds -> 5 history points.
	if len(res.History) != 5 {
		t.Fatalf("history has %d points", len(res.History))
	}
	// Virtual time must be strictly increasing.
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Time <= res.History[i-1].Time {
			t.Errorf("virtual time not increasing: %v", res.History)
		}
	}
	if len(res.PerClientAcc) != 8 {
		t.Errorf("per-client accs: %d", len(res.PerClientAcc))
	}
	if res.Clock <= 0 {
		t.Errorf("clock = %v", res.Clock)
	}
	if len(res.FinalParams) == 0 {
		t.Error("missing final params")
	}
}

func TestEngineLearnsOnEasyTask(t *testing.T) {
	clients := buildClients(t, 8, 300, 9)
	cfg := smallConfig(10)
	cfg.MaxRounds = 40
	cfg.EvalEvery = 40
	cfg.ClientsPerRound = 4
	cfg.Local.Epochs = 2
	strat := &fixedStrategy{order: [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}}
	res := NewEngine(cfg, clients, strat).Run()
	if acc := res.FinalAccuracy(); acc < 0.7 {
		t.Errorf("final accuracy %v after 40 rounds on easy task", acc)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() *Result {
		clients := buildClients(t, 6, 100, 11)
		strat := &fixedStrategy{order: [][]int{{0, 1}, {2, 3}, {4, 5}}}
		cfg := smallConfig(12)
		cfg.MaxRounds = 6
		return NewEngine(cfg, clients, strat).Run()
	}
	a, b := run(), run()
	if a.Clock != b.Clock {
		t.Errorf("clocks differ: %v vs %v", a.Clock, b.Clock)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history differs at %d: %+v vs %+v", i, a.History[i], b.History[i])
		}
	}
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatal("final params differ across identical runs")
		}
	}
}

func TestEngineTargetAccuracyStopsEarly(t *testing.T) {
	clients := buildClients(t, 8, 300, 13)
	cfg := smallConfig(14)
	cfg.MaxRounds = 100
	cfg.EvalEvery = 1
	cfg.TargetAccuracy = 0.5
	cfg.ClientsPerRound = 4
	strat := &fixedStrategy{order: [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}}
	res := NewEngine(cfg, clients, strat).Run()
	if res.Rounds >= 100 {
		t.Error("early stop did not trigger")
	}
	if res.FinalAccuracy() < 0.5 {
		t.Errorf("stopped below target: %v", res.FinalAccuracy())
	}
}

func TestEngineDropoutRespected(t *testing.T) {
	clients := buildClients(t, 6, 80, 15)
	cfg := smallConfig(16)
	cfg.MaxRounds = 4
	cfg.RecordSelections = true
	cfg.Dropout = simnet.PermanentDropout{Dropped: []int{0, 1}}
	strat := &fixedStrategy{order: [][]int{{0, 1, 2}, {3, 4, 5}}}
	res := NewEngine(cfg, clients, strat).Run()
	for r, sel := range res.Selected {
		for _, id := range sel {
			if id == 0 || id == 1 {
				t.Fatalf("round %d selected dropped client %d", r, id)
			}
		}
	}
}

func TestEngineEmptySelectionAdvancesClock(t *testing.T) {
	clients := buildClients(t, 3, 80, 17)
	cfg := smallConfig(18)
	cfg.MaxRounds = 3
	cfg.Dropout = simnet.PermanentDropout{Dropped: []int{0, 1, 2}}
	strat := &fixedStrategy{order: [][]int{{0, 1, 2}}}
	res := NewEngine(cfg, clients, strat).Run()
	if res.Clock != 3 {
		t.Errorf("idle clock = %v, want 3 (one retry second per empty round)", res.Clock)
	}
}

func TestEngineRoundTimeIsMaxOfSelected(t *testing.T) {
	clients := buildClients(t, 4, 100, 19)
	// Pin profiles for exact arithmetic.
	for i, c := range clients {
		c.Profile = simnet.Profile{
			Category:          simnet.Fast,
			ComputeMultiplier: float64(i + 1),
			BandwidthMbps:     100,
			NetLatencySec:     0.05,
		}
	}
	cfg := smallConfig(20)
	cfg.MaxRounds = 1
	cfg.EvalEvery = 1
	strat := &fixedStrategy{order: [][]int{{0, 3}}}
	eng := NewEngine(cfg, clients, strat)
	want := eng.ClientLatency(3) // slowest of the two selected
	if lat0 := eng.ClientLatency(0); lat0 >= want {
		t.Fatalf("test premise broken: %v >= %v", lat0, want)
	}
	res := eng.Run()
	if math.Abs(res.Clock-want) > 1e-9 {
		t.Errorf("round time %v, want slowest participant %v", res.Clock, want)
	}
}

// recordingStrategy is fixedStrategy plus a log of Update calls.
type recordingStrategy struct {
	fixedStrategy
	updSelected [][]int
	updLosses   [][]float64
}

func (r *recordingStrategy) Update(e int, s []int, l []float64) {
	r.updSelected = append(r.updSelected, append([]int(nil), s...))
	r.updLosses = append(r.updLosses, append([]float64(nil), l...))
}

func TestEngineRoundDeadlineCutsStraggler(t *testing.T) {
	clients := buildClients(t, 4, 100, 19)
	for i, c := range clients {
		c.Profile = simnet.Profile{
			Category:          simnet.Fast,
			ComputeMultiplier: float64(i + 1),
			BandwidthMbps:     100,
			NetLatencySec:     0.05,
		}
	}
	cfg := smallConfig(20)
	cfg.MaxRounds = 1
	cfg.EvalEvery = 1
	strat := &recordingStrategy{fixedStrategy: fixedStrategy{order: [][]int{{0, 3}}}}
	// Pick a deadline between the two selected clients' latencies, so
	// client 3 is cut and only client 0 reports.
	eng0 := NewEngine(cfg, clients, &fixedStrategy{order: [][]int{{0}}})
	lat0, lat3 := eng0.ClientLatency(0), eng0.ClientLatency(3)
	if lat0 >= lat3 {
		t.Fatalf("test premise broken: %v >= %v", lat0, lat3)
	}
	cfg.RoundDeadline = (lat0 + lat3) / 2
	eng := NewEngine(cfg, clients, strat)
	res := eng.Run()
	// The round waits out the deadline because a straggler was cut.
	if math.Abs(res.Clock-cfg.RoundDeadline) > 1e-9 {
		t.Errorf("clock = %v, want the deadline %v", res.Clock, cfg.RoundDeadline)
	}
	// Update sees the reporter only.
	if len(strat.updSelected) != 1 || len(strat.updSelected[0]) != 1 || strat.updSelected[0][0] != 0 {
		t.Fatalf("Update selected = %v, want [[0]]", strat.updSelected)
	}
	if len(strat.updLosses[0]) != 1 {
		t.Fatalf("Update losses = %v, want reporter's loss only", strat.updLosses)
	}
	// The aggregated model is exactly the reporter's update: re-train
	// client 0 alone from the same initial model and compare.
	cfg2 := smallConfig(20)
	cfg2.MaxRounds = 1
	cfg2.EvalEvery = 1
	solo := NewEngine(cfg2, buildClients(t, 4, 100, 19), &fixedStrategy{order: [][]int{{0}}}).Run()
	if len(solo.FinalParams) != len(res.FinalParams) {
		t.Fatal("param dimension mismatch")
	}
	for i := range res.FinalParams {
		if res.FinalParams[i] != solo.FinalParams[i] {
			t.Fatalf("params[%d] = %v, want the lone reporter's update %v", i, res.FinalParams[i], solo.FinalParams[i])
		}
	}
}

func TestEngineValidatesStrategyOutput(t *testing.T) {
	clients := buildClients(t, 3, 80, 21)
	for name, order := range map[string][][]int{
		"duplicate":  {{0, 0}},
		"overbudget": {{0, 1, 2}},
	} {
		cfg := smallConfig(22)
		cfg.ClientsPerRound = 2
		cfg.MaxRounds = 1
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s selection did not panic", name)
				}
			}()
			NewEngine(cfg, clients, &fixedStrategy{order: order}).Run()
		}()
	}
}

func TestEngineRejectsBadRoster(t *testing.T) {
	clients := buildClients(t, 3, 80, 23)
	clients[1].ID = 5
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-dense IDs")
		}
	}()
	NewEngine(smallConfig(24), clients, &fixedStrategy{order: [][]int{{0}}})
}

func TestFilterAvailable(t *testing.T) {
	got := FilterAvailable([]bool{true, false, true, true})
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("FilterAvailable = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilterAvailable = %v", got)
		}
	}
}

func TestEvaluatePerClientOrdering(t *testing.T) {
	clients := buildClients(t, 5, 150, 25)
	cfg := smallConfig(26)
	strat := &fixedStrategy{order: [][]int{{0, 1, 2}}}
	eng := NewEngine(cfg, clients, strat)
	mean, _, per := eng.Evaluate()
	if len(per) != 5 {
		t.Fatalf("per-client len %d", len(per))
	}
	if math.Abs(mean-stats.Mean(per)) > 1e-12 {
		t.Errorf("mean %v != mean(per-client) %v", mean, stats.Mean(per))
	}
}

func TestLocalTrainProximalBoundsDrift(t *testing.T) {
	// FedProx: with a large proximal coefficient, the locally trained
	// parameters stay much closer to the global reference.
	clients := buildClients(t, 1, 200, 27)
	arch := nn.Arch{Kind: "mlp", In: 36, Hidden: []int{16}, Classes: 4}
	model := arch.Build(stats.NewRNG(28))
	global := model.ParamsVector()

	drift := func(mu float64) float64 {
		cfg := LocalTrainConfig{Epochs: 5, BatchSize: 16, LR: 0.1, ProxMu: mu}
		res := clients[0].LocalTrain(model.Clone(), global, cfg, stats.NewRNG(29))
		d := 0.0
		for i := range global {
			d += (res.Params[i] - global[i]) * (res.Params[i] - global[i])
		}
		return math.Sqrt(d)
	}
	plain := drift(0)
	prox := drift(1.0)
	if prox >= plain {
		t.Errorf("proximal drift %v not below plain drift %v", prox, plain)
	}
	if prox <= 0 {
		t.Error("proximal training did not move at all")
	}
}
