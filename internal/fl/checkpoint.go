package fl

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"haccs/internal/checkpoint"
	"haccs/internal/rounds"
)

// runStateVersion versions the engine's run-progress payload.
const runStateVersion = 1

// runState is the engine's run-level progress: everything Run
// accumulates outside the driver, plus the seed and strategy name so a
// restore into a differently configured engine fails loudly instead of
// resuming a subtly different experiment.
type runState struct {
	Version      int
	Seed         uint64
	Strategy     string
	Rounds       int
	History      []Point
	PerClientAcc []float64
	Selected     [][]int
}

// engineRun adapts the engine's run-level progress to
// checkpoint.Snapshotter.
type engineRun struct{ e *Engine }

// SnapshotState implements checkpoint.Snapshotter.
func (r engineRun) SnapshotState() ([]byte, error) {
	e := r.e
	st := runState{
		Version:      runStateVersion,
		Seed:         e.cfg.Seed,
		Strategy:     e.strategy.Name(),
		Rounds:       e.roundsDone,
		History:      append([]Point(nil), e.history...),
		PerClientAcc: append([]float64(nil), e.perClientAcc...),
		Selected:     append([][]int(nil), e.selected...),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("fl: encode run state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements checkpoint.Snapshotter.
func (r engineRun) RestoreState(data []byte) error {
	e := r.e
	var st runState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("fl: decode run state: %w", err)
	}
	if st.Version != runStateVersion {
		return fmt.Errorf("fl: run state version %d, this build reads %d", st.Version, runStateVersion)
	}
	if st.Seed != e.cfg.Seed {
		return fmt.Errorf("fl: snapshot taken with seed %d, engine configured with %d", st.Seed, e.cfg.Seed)
	}
	if st.Strategy != e.strategy.Name() {
		return fmt.Errorf("fl: snapshot taken with strategy %q, engine runs %q", st.Strategy, e.strategy.Name())
	}
	e.roundsDone = st.Rounds
	e.history = st.History
	e.perClientAcc = st.PerClientAcc
	e.selected = st.Selected
	return nil
}

// checkpointComponents lists every stateful layer of this run, in a
// stable naming scheme shared with the flnet coordinator ("model",
// "driver"/"driver_async", "strategy", "dropout"; "run" is
// engine-only). The async driver snapshots under its own component
// name so restoring a snapshot into an engine running the other mode
// fails loudly at the component table instead of misreading state.
func (e *Engine) checkpointComponents() []checkpoint.Component {
	comps := []checkpoint.Component{
		{Name: "run", S: engineRun{e}},
		{Name: "model", S: checkpoint.Model{Arch: e.cfg.Arch, Params: e.driver.Global, SetParams: e.driver.SetGlobal}},
		{Name: driverComponentName(e.cfg.Mode), S: e.driver},
	}
	if s, ok := e.strategy.(checkpoint.Snapshotter); ok {
		comps = append(comps, checkpoint.Component{Name: "strategy", S: s})
	}
	if l, ok := e.strategy.(checkpoint.ComponentLister); ok {
		comps = append(comps, l.ExtraComponents()...)
	}
	if d, ok := e.cfg.Dropout.(checkpoint.Snapshotter); ok {
		comps = append(comps, checkpoint.Component{Name: "dropout", S: d})
	}
	if e.cfg.Fleet != nil {
		comps = append(comps, checkpoint.Component{Name: "fleet", S: e.cfg.Fleet})
	}
	return comps
}

// driverComponentName maps the round-runtime mode to its checkpoint
// component name.
func driverComponentName(mode rounds.Mode) string {
	if mode == rounds.ModeAsync {
		return "driver_async"
	}
	return "driver"
}

// Snapshot captures the engine's complete run state after roundsDone
// completed rounds, independent of any configured store.
func (e *Engine) Snapshot(roundsDone int) (*checkpoint.Snapshot, error) {
	return checkpoint.Capture(roundsDone, e.checkpointComponents())
}

// Restore replays a snapshot into a freshly constructed engine, which
// must have been built with the same configuration and roster as the
// run that produced it (validated where possible: seed, strategy
// name, model architecture, vector and roster dimensions, dropout
// schedule). The next Run call continues from the snapshot's round
// and reproduces the uninterrupted run bit for bit.
func (e *Engine) Restore(snap *checkpoint.Snapshot) error {
	if e.roundsDone > 0 || e.startRound > 0 {
		return fmt.Errorf("fl: Restore on an engine that has already run %d rounds", e.roundsDone)
	}
	if err := snap.Restore(e.checkpointComponents()); err != nil {
		return err
	}
	e.startRound = snap.Round
	e.roundsDone = snap.Round
	return nil
}

// StartRound returns the round index the next Run call starts from
// (0 for a fresh engine, the snapshot round after Restore).
func (e *Engine) StartRound() int { return e.startRound }
