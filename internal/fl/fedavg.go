package fl

// FedAvg computes the sample-weighted average of client parameter
// vectors (McMahan et al., Federated Averaging): the new global model is
// sum_i (n_i / n) * w_i over the participating clients. All vectors must
// have equal length; the result is written into a new slice.
func FedAvg(results []TrainResult) []float64 {
	if len(results) == 0 {
		panic("fl: FedAvg with no results")
	}
	out := make([]float64, len(results[0].Params))
	FedAvgInto(out, results)
	return out
}

// FedAvgInto is FedAvg written into a caller-owned vector (the engine
// reuses its global vector across rounds). dst must have the parameter
// dimension and must not alias any result's Params; it is overwritten.
func FedAvgInto(dst []float64, results []TrainResult) {
	if len(results) == 0 {
		panic("fl: FedAvg with no results")
	}
	dim := len(results[0].Params)
	if len(dst) != dim {
		panic("fl: FedAvgInto destination dimension mismatch")
	}
	total := 0
	for _, r := range results {
		if len(r.Params) != dim {
			panic("fl: FedAvg parameter dimension mismatch")
		}
		if r.NumSamples <= 0 {
			panic("fl: FedAvg result with non-positive sample count")
		}
		total += r.NumSamples
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, r := range results {
		w := float64(r.NumSamples) / float64(total)
		for i, v := range r.Params {
			dst[i] += w * v
		}
	}
}
