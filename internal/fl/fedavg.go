package fl

// FedAvg computes the sample-weighted average of client parameter
// vectors (McMahan et al., Federated Averaging): the new global model is
// sum_i (n_i / n) * w_i over the participating clients. All vectors must
// have equal length; the result is written into a new slice.
func FedAvg(results []TrainResult) []float64 {
	if len(results) == 0 {
		panic("fl: FedAvg with no results")
	}
	dim := len(results[0].Params)
	total := 0
	for _, r := range results {
		if len(r.Params) != dim {
			panic("fl: FedAvg parameter dimension mismatch")
		}
		if r.NumSamples <= 0 {
			panic("fl: FedAvg result with non-positive sample count")
		}
		total += r.NumSamples
	}
	out := make([]float64, dim)
	for _, r := range results {
		w := float64(r.NumSamples) / float64(total)
		for i, v := range r.Params {
			out[i] += w * v
		}
	}
	return out
}
