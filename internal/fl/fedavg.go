package fl

import "haccs/internal/rounds"

// FedAvg computes the sample-weighted average of client parameter
// vectors (McMahan et al., Federated Averaging). The implementation
// lives in the transport-agnostic round runtime; this wrapper keeps the
// historical fl-level entry point.
func FedAvg(results []TrainResult) []float64 { return rounds.FedAvg(results) }

// FedAvgInto is FedAvg written into a caller-owned vector. dst must
// have the parameter dimension and must not alias any result's Params;
// it is overwritten.
func FedAvgInto(dst []float64, results []TrainResult) { rounds.FedAvgInto(dst, results) }
