package fl

import (
	"haccs/internal/rounds"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// localTransport adapts the engine's in-process training substrate —
// the persistent per-worker TrainContexts and per-slot parameter
// buffers from the hot-path work — to the round driver's Transport
// interface. Parallelism is the worker-context count, so the driver's
// worker index w always addresses the context pinned to goroutine w,
// exactly as the pre-driver engine fan-out did.
type localTransport struct {
	e *Engine
}

func (t localTransport) Proxies() []rounds.Proxy {
	ps := make([]rounds.Proxy, len(t.e.clients))
	for i := range ps {
		ps[i] = &localProxy{e: t.e, id: i, latency: t.e.ClientLatency(i)}
	}
	return ps
}

func (t localTransport) Parallelism() int { return len(t.e.workers) }

// localProxy trains one simulated client inline on the calling worker's
// TrainContext, writing the updated parameters into the selection
// slot's reusable buffer.
type localProxy struct {
	e       *Engine
	id      int
	latency float64
}

// Train runs the job inline; the span context needs no propagation —
// the driver's train span already covers this call exactly.
func (p *localProxy) Train(round, worker, slot int, params []float64, _ telemetry.SpanContext) (rounds.Result, error) {
	e := p.e
	// Each (client, round) pair owns an independent stream so results do
	// not depend on scheduling order.
	rng := stats.NewRNG(stats.DeriveSeed(e.cfg.Seed, 1000+uint64(p.id)*1_000_003+uint64(round)))
	return e.clients[p.id].LocalTrainCtx(e.workers[worker], params, e.paramsBuf[slot], e.cfg.Local, rng), nil
}

func (p *localProxy) Latency() float64 { return p.latency }
