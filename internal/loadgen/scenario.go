package loadgen

import (
	"fmt"
	"path/filepath"
	"time"

	"haccs/internal/checkpoint"
	"haccs/internal/fleet"
	"haccs/internal/flnet"
	"haccs/internal/rounds"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// Leg is one scenario in the matrix.
type Leg struct {
	// Name labels the leg in reports ("sync", "async", "storm",
	// "crash").
	Name string
	// Mode selects the round runtime (sync barrier or FedBuff-style
	// async).
	Mode rounds.Mode
	// Async tunes the async driver when Mode is rounds.ModeAsync.
	Async rounds.AsyncConfig
	// Rounds to drive.
	Rounds int
	// K is the per-round selection budget.
	K int
	// Deadline is the sync straggler deadline in virtual seconds
	// (must be 0 for async legs; the heavy-tail latency model makes it
	// bite).
	Deadline float64
	// StormFraction, when positive, kills that fraction of live
	// connections halfway through the leg and requires the fleet to
	// reconnect.
	StormFraction float64
	// Crash, when true, aborts the coordinator halfway through the
	// leg (no Shutdown envelopes — a process-death simulation) and
	// resumes from the latest checkpoint on a fresh server, with the
	// fleet redialing under load.
	Crash bool
	// Shards, when > 1, runs the leg through the hierarchical topology
	// instead of a flat coordinator: clients partition across Shards
	// shard coordinators by the consistent-hash ring, shard agents
	// uplink to a root aggregator, and the leg's storm hits one whole
	// shard's slice (a third of the way in) while Crash kills the root
	// (two thirds in) rather than a shard.
	Shards int
}

// MatrixConfig is the shared environment for every leg.
type MatrixConfig struct {
	// Fleet configures the synthetic client fleet (fresh per leg, so
	// legs are independent).
	Fleet FleetConfig
	// ScrapeEvery is the round cadence of periodic /metrics scrapes
	// (default 5; the final scrape always happens).
	ScrapeEvery int
	// ParamDim is the global parameter vector length (default 256).
	ParamDim int
	// CheckpointDir backs crash legs' checkpoint stores (one subdir
	// per leg). Required when any leg has Crash set.
	CheckpointDir string
	// RuntimeSample is the RuntimeCollector interval (default 1s; the
	// harness also samples synchronously before every scrape).
	RuntimeSample time.Duration
}

func (c MatrixConfig) withDefaults() MatrixConfig {
	if c.ScrapeEvery <= 0 {
		c.ScrapeEvery = 5
	}
	if c.ParamDim <= 0 {
		c.ParamDim = 256
	}
	return c
}

// DefaultLegs is the canonical scenario matrix the committed scale
// results run: a sync leg with a deadline that cuts heavy-tail
// stragglers, an async leg over the same heavy tail, a reconnect
// storm, and a coordinator crash + checkpoint resume.
func DefaultLegs(roundsPerLeg, k int) []Leg {
	return []Leg{
		{Name: "sync", Rounds: roundsPerLeg, K: k, Deadline: 8},
		{Name: "async", Mode: rounds.ModeAsync, Rounds: roundsPerLeg, K: k,
			Async: rounds.AsyncConfig{BufferK: max(1, k/2), MaxStaleness: 16}},
		{Name: "storm", Rounds: roundsPerLeg, K: k, Deadline: 8, StormFraction: 0.25},
		{Name: "crash", Rounds: roundsPerLeg, K: k, Deadline: 8, Crash: true},
		{Name: "sharded", Rounds: roundsPerLeg, K: k, Deadline: 8, Shards: 4,
			StormFraction: 1, Crash: true},
	}
}

// LegResult is everything the report renders for one leg. Every field
// except the wall clock and pass/fail bookkeeping is computed from
// /metrics and /debug/fleet scrapes — the harness has no private
// channel into the coordinator.
type LegResult struct {
	Name    string
	Clients int
	Rounds  int
	WallSec float64

	// Round latency percentiles (seconds) from the coordinator's own
	// haccs_net_round_seconds derived-quantile series.
	P50, P99 float64
	// Throughput over the leg from counter deltas.
	RoundsPerSec   float64
	BufferedPerSec float64 // async only; 0 elsewhere

	// Churn and failure counts (deltas over the leg).
	StragglerCuts float64
	Failed        float64
	Reconnects    float64
	SessionsMin   float64
	SessionsFinal float64

	// Runtime resource envelope (maxima over all scrapes).
	HeapMaxBytes  float64
	GoroutinesMax float64
	GCPauseP99    float64
	SchedP99      float64

	// Fleet view from the final /debug/fleet scrape.
	FleetRounds int
	Fairness    float64

	// Storm leg: connections killed and seconds until the reconnect
	// counter showed every victim re-admitted (-1 = never recovered).
	StormKilled      int
	StormRecoverySec float64
	// Crash leg: the round index the restored coordinator resumed
	// from (-1 when the leg did not crash).
	CrashResumedFrom int
	// Sharded leg: shard count and the root-observed shard session
	// churn (0 for flat legs).
	Shards          int
	ShardReconnects float64
	RootAggP99      float64

	ScrapeErrors []string
	Notes        []string
	Pass         bool
}

// RunMatrix drives every leg in sequence, each against a fresh
// coordinator and fleet, and returns one result per leg. A leg that
// fails to even start aborts the matrix with an error; a leg that runs
// but misses its bar comes back with Pass=false for the report (and
// the caller's exit code) to surface.
func RunMatrix(cfg MatrixConfig, legs []Leg) ([]LegResult, error) {
	results := make([]LegResult, 0, len(legs))
	for _, leg := range legs {
		res, err := RunLeg(cfg, leg)
		if err != nil {
			return results, fmt.Errorf("loadgen: leg %s: %w", leg.Name, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// RunLeg runs one scenario end to end: boot a coordinator with
// telemetry and fleet endpoints, launch the fleet, drive the rounds
// (injecting the leg's storm or crash), scrape throughout, and fold
// the scrapes into a LegResult.
func RunLeg(cfg MatrixConfig, leg Leg) (LegResult, error) {
	cfg = cfg.withDefaults()
	if leg.Shards > 1 {
		return runShardedLeg(cfg, leg)
	}
	res := LegResult{Name: leg.Name, Clients: cfg.Fleet.N, Rounds: leg.Rounds, CrashResumedFrom: -1, StormRecoverySec: -1}
	if leg.Mode == rounds.ModeAsync && leg.Deadline != 0 {
		return res, fmt.Errorf("async leg cannot carry a deadline")
	}

	reg := telemetry.NewRegistry()
	rc := telemetry.NewRuntimeCollector(reg, cfg.RuntimeSample)
	rc.Start()
	defer rc.Stop()
	fleetReg := fleet.NewRegistry(cfg.Fleet.N, fleet.Options{Metrics: reg})

	srv, httpAddr, err := bootServer(reg, fleetReg)
	if err != nil {
		return res, err
	}
	defer func() { srv.Close() }()

	fl, err := StartFleet(cfg.Fleet, srv.Addr())
	if err != nil {
		return res, err
	}
	defer fl.Stop()
	if _, err := srv.AcceptClients(cfg.Fleet.N); err != nil {
		return res, fmt.Errorf("accept: %w", err)
	}
	srv.ServeReconnects()

	var store *checkpoint.Store
	if leg.Crash {
		if cfg.CheckpointDir == "" {
			return res, fmt.Errorf("crash leg needs MatrixConfig.CheckpointDir")
		}
		store, err = checkpoint.NewStore(filepath.Join(cfg.CheckpointDir, leg.Name), 2)
		if err != nil {
			return res, err
		}
	}
	ccfg := flnet.CoordinatorConfig{
		ClientsPerRound: leg.K,
		Deadline:        leg.Deadline,
		Mode:            leg.Mode,
		Async:           leg.Async,
		Metrics:         reg,
		Fleet:           fleetReg,
		Checkpoint:      store,
		CheckpointEvery: 1,
	}
	strategySeed := stats.DeriveSeed(cfg.Fleet.Seed, 0x5e1ec7)
	coord, err := flnet.NewCoordinator(srv, ccfg, NewUniformStrategy(strategySeed), make([]float64, cfg.ParamDim))
	if err != nil {
		return res, err
	}

	scraper := NewScraper(httpAddr)
	var env envelope
	scrape := func() *scrapePoint {
		rc.SampleOnce()
		e, err := scraper.Metrics()
		if err != nil {
			res.ScrapeErrors = append(res.ScrapeErrors, err.Error())
			return nil
		}
		p := scrapePoint{at: time.Now(), e: e}
		env.add(p)
		return &p
	}

	base := scrape()
	if base == nil {
		return res, fmt.Errorf("baseline scrape failed: %s", res.ScrapeErrors[len(res.ScrapeErrors)-1])
	}

	stormAt, crashAt := -1, -1
	if leg.StormFraction > 0 {
		stormAt = leg.Rounds / 2
	}
	if leg.Crash {
		crashAt = leg.Rounds / 2
	}
	var stormStart time.Time
	var reconnectsAtStorm float64

	start := time.Now()
	for r := 0; r < leg.Rounds; r++ {
		if r == stormAt {
			reconnectsAtStorm, _ = env.points[len(env.points)-1].e.Value("haccs_net_reconnects_total")
			res.StormKilled = fl.Storm(int(leg.StormFraction * float64(cfg.Fleet.N)))
			stormStart = time.Now()
		}
		if r == crashAt {
			coord, srv, scraper, err = crashAndResume(cfg, ccfg, strategySeed, srv, reg, fleetReg, fl, store)
			if err != nil {
				return res, fmt.Errorf("crash+resume at round %d: %w", r, err)
			}
			res.CrashResumedFrom = coord.NextRound()
			if res.CrashResumedFrom != r {
				res.Notes = append(res.Notes, fmt.Sprintf("resumed from round %d, expected %d", res.CrashResumedFrom, r))
			}
		}
		coord.RunRound(r)
		// Scrape on cadence; during storm recovery scrape every round
		// so the recovery time is tight.
		if r%cfg.ScrapeEvery == 0 || (res.StormKilled > 0 && res.StormRecoverySec < 0) {
			if p := scrape(); p != nil && res.StormKilled > 0 && res.StormRecoverySec < 0 {
				if rec := p.value("haccs_net_reconnects_total") - reconnectsAtStorm; rec >= float64(res.StormKilled) {
					res.StormRecoverySec = p.at.Sub(stormStart).Seconds()
				}
			}
		}
	}
	res.WallSec = time.Since(start).Seconds()

	final := scrape()
	if final == nil {
		return res, fmt.Errorf("final scrape failed: %s", res.ScrapeErrors[len(res.ScrapeErrors)-1])
	}
	if st, err := scraper.Fleet(); err != nil {
		res.ScrapeErrors = append(res.ScrapeErrors, err.Error())
	} else {
		res.FleetRounds = st.Rounds
		res.Fairness = st.Fairness
	}

	summarize(&res, *base, *final, &env)
	res.Pass = len(res.ScrapeErrors) == 0 &&
		res.RoundsPerSec > 0 &&
		(!leg.Crash || res.CrashResumedFrom >= 0) &&
		(res.StormKilled == 0 || res.StormRecoverySec >= 0)
	return res, nil
}

// bootServer builds a coordinator server with its observability
// endpoint (/metrics plus /debug/fleet) on an ephemeral port.
func bootServer(reg *telemetry.Registry, fleetReg *fleet.Registry) (*flnet.Server, string, error) {
	srv, err := flnet.NewServer("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	httpAddr, err := srv.EnableTelemetry(reg, nil, nil, "127.0.0.1:0",
		telemetry.WithEndpoint("/debug/fleet", fleet.Handler(fleetReg)))
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	return srv, httpAddr, nil
}

// crashAndResume is the PR-5 restart recipe under load: abort the
// server (no farewells — clients see a dead coordinator), bring up a
// fresh one, point the fleet at it, wait for every client to
// re-register, rebuild the strategy and coordinator, and restore the
// latest snapshot. The telemetry and fleet registries carry across the
// crash (fleet state is additionally a checkpoint component, restored
// bit-identically).
func crashAndResume(cfg MatrixConfig, ccfg flnet.CoordinatorConfig, strategySeed uint64, old *flnet.Server, reg *telemetry.Registry, fleetReg *fleet.Registry, fl *Fleet, store *checkpoint.Store) (*flnet.Coordinator, *flnet.Server, *Scraper, error) {
	if err := old.Abort(); err != nil {
		return nil, nil, nil, fmt.Errorf("abort: %w", err)
	}
	srv, httpAddr, err := bootServer(reg, fleetReg)
	if err != nil {
		return nil, nil, nil, err
	}
	fl.SetTarget(srv.Addr())
	if _, err := srv.AcceptClients(cfg.Fleet.N); err != nil {
		srv.Close()
		return nil, nil, nil, fmt.Errorf("re-accept: %w", err)
	}
	srv.ServeReconnects()
	coord, err := flnet.NewCoordinator(srv, ccfg, NewUniformStrategy(strategySeed), make([]float64, cfg.ParamDim))
	if err != nil {
		srv.Close()
		return nil, nil, nil, err
	}
	snap, err := store.LoadLatest()
	if err != nil {
		srv.Close()
		return nil, nil, nil, fmt.Errorf("load snapshot: %w", err)
	}
	if err := coord.Restore(snap); err != nil {
		srv.Close()
		return nil, nil, nil, fmt.Errorf("restore: %w", err)
	}
	return coord, srv, NewScraper(httpAddr), nil
}

// summarize folds the scrape series into the result's headline
// numbers. All deltas are final-minus-baseline so per-leg throughput
// is unaffected by where counters started.
func summarize(res *LegResult, base, final scrapePoint, env *envelope) {
	res.P50 = final.value("haccs_net_round_seconds", [2]string{"quantile", "0.5"})
	res.P99 = final.value("haccs_net_round_seconds", [2]string{"quantile", "0.99"})
	wall := final.at.Sub(base.at).Seconds()
	if wall > 0 {
		res.RoundsPerSec = (final.value("haccs_net_rounds_total") - base.value("haccs_net_rounds_total")) / wall
		res.BufferedPerSec = (final.value("haccs_async_updates_buffered_total") - base.value("haccs_async_updates_buffered_total")) / wall
	}
	res.StragglerCuts = final.value("haccs_clients_straggler_cut_total") - base.value("haccs_clients_straggler_cut_total")
	res.Failed = final.value("haccs_clients_failed_total") - base.value("haccs_clients_failed_total")
	res.Reconnects = final.value("haccs_net_reconnects_total") - base.value("haccs_net_reconnects_total")
	res.SessionsMin = env.min("haccs_net_sessions_active")
	res.SessionsFinal = final.value("haccs_net_sessions_active")
	res.HeapMaxBytes = env.max("haccs_runtime_heap_bytes")
	res.GoroutinesMax = env.max("haccs_runtime_goroutines")
	res.GCPauseP99 = env.max("haccs_runtime_gc_pause_p99_seconds")
	res.SchedP99 = env.max("haccs_runtime_sched_latency_p99_seconds")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
