package loadgen

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"haccs/internal/checkpoint"
	"haccs/internal/fleet"
	"haccs/internal/flnet"
	"haccs/internal/rounds"
	"haccs/internal/shard"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// runShardedLeg is RunLeg's hierarchical variant: the fleet partitions
// across leg.Shards shard coordinators by the consistent-hash ring,
// each shard runs an in-process agent uplinked to a root aggregator
// over loopback TCP, and every scraped number comes from the root's
// observability endpoint (the shard servers expose nothing — the
// merged view is the point). Fault injection moves up the tree with
// the topology: the storm (StormFraction > 0; the fraction itself is
// implied — one whole shard's slice) hits a third of the way in, and
// Crash aborts the root, not a shard, two thirds in, resuming from the
// root checkpoint while the shard processes and their fleets stay up.
func runShardedLeg(cfg MatrixConfig, leg Leg) (LegResult, error) {
	res := LegResult{
		Name: leg.Name, Clients: cfg.Fleet.N, Rounds: leg.Rounds,
		Shards: leg.Shards, CrashResumedFrom: -1, StormRecoverySec: -1,
	}
	if leg.Mode == rounds.ModeAsync && leg.Deadline != 0 {
		return res, fmt.Errorf("async leg cannot carry a deadline")
	}
	var store *checkpoint.Store
	var err error
	if leg.Crash {
		if cfg.CheckpointDir == "" {
			return res, fmt.Errorf("crash leg needs MatrixConfig.CheckpointDir")
		}
		store, err = checkpoint.NewStore(filepath.Join(cfg.CheckpointDir, leg.Name), 2)
		if err != nil {
			return res, err
		}
	}

	reg := telemetry.NewRegistry()
	rc := telemetry.NewRuntimeCollector(reg, cfg.RuntimeSample)
	rc.Start()
	defer rc.Stop()
	fleetReg := fleet.NewRegistry(cfg.Fleet.N, fleet.Options{Metrics: reg})

	shardIDs := make([]int, leg.Shards)
	for s := range shardIDs {
		shardIDs[s] = s
	}
	ring, err := shard.NewRing(shardIDs, 0)
	if err != nil {
		return res, err
	}
	parts := ring.Partition(cfg.Fleet.N)

	// One flat coordinator per shard, each owning its ring slice.
	servers := make([]*flnet.Server, leg.Shards)
	for s := range servers {
		if servers[s], err = flnet.NewServer("127.0.0.1:0"); err != nil {
			return res, err
		}
		defer servers[s].Close()
	}

	fcfg := cfg.Fleet
	fcfg.Route = func(id int) string { return servers[ring.Owner(id)].Addr() }
	fl, err := StartFleet(fcfg, servers[0].Addr())
	if err != nil {
		return res, err
	}
	defer fl.Stop()
	for s, srv := range servers {
		if _, err := srv.AcceptClients(len(parts[s])); err != nil {
			return res, fmt.Errorf("shard %d accept: %w", s, err)
		}
		srv.ServeReconnects()
	}

	// The root's observability endpoint rebinds after a crash, and its
	// /debug/shards view needs the current Root, so the handlers read
	// through an atomic pointer.
	var rootPtr atomic.Pointer[shard.Root]
	bootRoot := func(addr string) (*shard.RootServer, string, error) {
		rootSrv, err := shard.NewRootServer(addr)
		if err != nil {
			return nil, "", err
		}
		httpAddr, err := rootSrv.EnableTelemetry(reg, nil, nil, "127.0.0.1:0",
			telemetry.WithEndpoint("/debug/fleet", shard.FleetHandler(fleetReg, ring.Owner)),
			telemetry.WithEndpoint("/debug/shards", shard.StatusHandler(func() []rounds.ShardStatus {
				if r := rootPtr.Load(); r != nil {
					return r.ShardStatuses()
				}
				return nil
			})))
		if err != nil {
			rootSrv.Shutdown()
			return nil, "", err
		}
		return rootSrv, httpAddr, nil
	}
	rootSrv, httpAddr, err := bootRoot("127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer func() { rootSrv.Shutdown() }()

	agents := make([]*shard.Agent, leg.Shards)
	for s, srv := range servers {
		agents[s], err = shard.NewAgent(shard.AgentConfig{
			ShardID: s,
			Root:    rootSrv.Addr(),
			Server:  srv,
		})
		if err != nil {
			return res, fmt.Errorf("shard %d agent: %w", s, err)
		}
		go agents[s].Run()
		defer agents[s].Close()
	}
	if _, err := rootSrv.AcceptShards(leg.Shards); err != nil {
		return res, err
	}
	rootSrv.ServeReconnects()

	rcfg := shard.RootConfig{
		ClientsPerRound: leg.K,
		Deadline:        leg.Deadline,
		Mode:            leg.Mode,
		Async:           leg.Async,
		Metrics:         reg,
		Fleet:           fleetReg,
		Checkpoint:      store,
		CheckpointEvery: 1,
	}
	strategySeed := stats.DeriveSeed(cfg.Fleet.Seed, 0x5e1ec7)
	root, err := shard.NewRoot(rootSrv, rcfg, NewUniformStrategy(strategySeed), make([]float64, cfg.ParamDim))
	if err != nil {
		return res, err
	}
	rootPtr.Store(root)

	scraper := NewScraper(httpAddr)
	var env envelope
	scrape := func() *scrapePoint {
		rc.SampleOnce()
		e, err := scraper.Metrics()
		if err != nil {
			res.ScrapeErrors = append(res.ScrapeErrors, err.Error())
			return nil
		}
		p := scrapePoint{at: time.Now(), e: e}
		env.add(p)
		return &p
	}
	base := scrape()
	if base == nil {
		return res, fmt.Errorf("baseline scrape failed: %s", res.ScrapeErrors[len(res.ScrapeErrors)-1])
	}

	stormAt, crashAt := -1, -1
	if leg.StormFraction > 0 {
		stormAt = leg.Rounds / 3
	}
	if leg.Crash {
		crashAt = 2 * leg.Rounds / 3
	}
	var stormStart time.Time
	var reconnectsAtStorm float64

	start := time.Now()
	for r := 0; r < leg.Rounds; r++ {
		if r == stormAt {
			reconnectsAtStorm = env.points[len(env.points)-1].value("haccs_net_reconnects_total")
			res.StormKilled = fl.StormIDs(parts[0])
			stormStart = time.Now()
		}
		if r == crashAt {
			addr := rootSrv.Addr()
			if err := rootSrv.Abort(); err != nil {
				return res, fmt.Errorf("root abort: %w", err)
			}
			// Rebind the same address so the shard agents' redial loops
			// land on the restarted root.
			rootSrv, httpAddr, err = bootRoot(addr)
			if err != nil {
				return res, fmt.Errorf("root restart: %w", err)
			}
			if _, err := rootSrv.AcceptShards(leg.Shards); err != nil {
				return res, fmt.Errorf("root re-accept: %w", err)
			}
			rootSrv.ServeReconnects()
			root, err = shard.NewRoot(rootSrv, rcfg, NewUniformStrategy(strategySeed), make([]float64, cfg.ParamDim))
			if err != nil {
				return res, fmt.Errorf("root rebuild: %w", err)
			}
			snap, err := store.LoadLatest()
			if err != nil {
				return res, fmt.Errorf("load snapshot: %w", err)
			}
			if err := root.Restore(snap); err != nil {
				return res, fmt.Errorf("restore: %w", err)
			}
			rootPtr.Store(root)
			scraper = NewScraper(httpAddr)
			res.CrashResumedFrom = root.NextRound()
			if res.CrashResumedFrom != r {
				res.Notes = append(res.Notes, fmt.Sprintf("resumed from round %d, expected %d", res.CrashResumedFrom, r))
			}
		}
		root.RunRound(r)
		if r%cfg.ScrapeEvery == 0 || (res.StormKilled > 0 && res.StormRecoverySec < 0) {
			if p := scrape(); p != nil && res.StormKilled > 0 && res.StormRecoverySec < 0 {
				if rec := p.value("haccs_net_reconnects_total") - reconnectsAtStorm; rec >= float64(res.StormKilled) {
					res.StormRecoverySec = p.at.Sub(stormStart).Seconds()
				}
			}
		}
	}
	res.WallSec = time.Since(start).Seconds()

	final := scrape()
	if final == nil {
		return res, fmt.Errorf("final scrape failed: %s", res.ScrapeErrors[len(res.ScrapeErrors)-1])
	}
	if st, err := scraper.Fleet(); err != nil {
		res.ScrapeErrors = append(res.ScrapeErrors, err.Error())
	} else {
		res.FleetRounds = st.Rounds
		res.Fairness = st.Fairness
	}

	summarize(&res, *base, *final, &env)
	res.ShardReconnects = final.value("haccs_root_shard_reconnects_total") - base.value("haccs_root_shard_reconnects_total")
	res.RootAggP99 = final.value("haccs_root_aggregate_seconds", [2]string{"quantile", "0.99"})
	res.Pass = len(res.ScrapeErrors) == 0 &&
		res.RoundsPerSec > 0 &&
		(!leg.Crash || res.CrashResumedFrom >= 0) &&
		(res.StormKilled == 0 || res.StormRecoverySec >= 0)
	return res, nil
}
