package loadgen

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// RunMeta stamps a scale report the way benchrun stamps BENCH files:
// enough provenance to compare runs across revisions.
type RunMeta struct {
	// Rev is the git revision the run measured (the file is named
	// after it, mirroring BENCH_<rev>.json).
	Rev string
	// Date is the run date (YYYY-MM-DD).
	Date string
	// GoVersion and Host describe the environment.
	GoVersion string
	Host      string
	// Clients is the fleet size shared by every leg.
	Clients int
	// Seed is the run's root RNG seed.
	Seed uint64
}

// ReportPath is the canonical location of a revision's scale results.
func ReportPath(dir, rev string) string {
	return filepath.Join(dir, rev+".md")
}

// WriteReport renders the versioned scale-results markdown: run
// provenance, one summary table across legs, and a detail section per
// leg. The schema is documented in DESIGN.md §14; keep them in sync.
func WriteReport(w io.Writer, meta RunMeta, legs []LegResult) error {
	bw := &errWriter{w: w}
	bw.printf("# Scale results @ %s\n\n", meta.Rev)
	bw.printf("- date: %s\n- go: %s\n- host: %s\n- clients: %d\n- seed: %d\n\n",
		meta.Date, meta.GoVersion, meta.Host, meta.Clients, meta.Seed)

	bw.printf("## Summary\n\n")
	bw.printf("| leg | rounds | wall s | p50 s | p99 s | rounds/s | buffered/s | cuts | failed | reconnects | pass |\n")
	bw.printf("|-----|-------:|-------:|------:|------:|---------:|-----------:|-----:|-------:|-----------:|------|\n")
	for _, l := range legs {
		bw.printf("| %s | %d | %.1f | %.4f | %.4f | %.2f | %.2f | %.0f | %.0f | %.0f | %s |\n",
			l.Name, l.Rounds, l.WallSec, l.P50, l.P99, l.RoundsPerSec, l.BufferedPerSec,
			l.StragglerCuts, l.Failed, l.Reconnects, passMark(l.Pass))
	}
	bw.printf("\n")

	for _, l := range legs {
		bw.printf("## Leg: %s\n\n", l.Name)
		bw.printf("- round latency: p50 %.4fs, p99 %.4fs; %.2f rounds/s over %.1fs wall\n",
			l.P50, l.P99, l.RoundsPerSec, l.WallSec)
		if l.BufferedPerSec > 0 {
			bw.printf("- async: %.2f buffered updates/s\n", l.BufferedPerSec)
		}
		bw.printf("- churn: %.0f straggler cuts, %.0f failed clients, %.0f reconnects; sessions min %.0f / final %.0f of %d\n",
			l.StragglerCuts, l.Failed, l.Reconnects, l.SessionsMin, l.SessionsFinal, l.Clients)
		bw.printf("- runtime envelope: heap max %.1f MiB, goroutines max %.0f, GC pause p99 %.2gs, sched latency p99 %.2gs\n",
			l.HeapMaxBytes/(1<<20), l.GoroutinesMax, l.GCPauseP99, l.SchedP99)
		bw.printf("- fleet: %d observed rounds, Jain fairness %.3f\n", l.FleetRounds, l.Fairness)
		if l.StormKilled > 0 {
			if l.StormRecoverySec >= 0 {
				bw.printf("- storm: %d connections killed, all re-admitted in %.2fs\n", l.StormKilled, l.StormRecoverySec)
			} else {
				bw.printf("- storm: %d connections killed, NOT fully re-admitted\n", l.StormKilled)
			}
		}
		if l.CrashResumedFrom >= 0 {
			if l.Shards > 0 {
				bw.printf("- crash: root aggregator aborted mid-run, resumed from checkpoint at round %d with shards re-registering under load\n", l.CrashResumedFrom)
			} else {
				bw.printf("- crash: coordinator aborted mid-run, resumed from checkpoint at round %d under load\n", l.CrashResumedFrom)
			}
		}
		if l.Shards > 0 {
			bw.printf("- hierarchy: %d shard coordinators under one root; %.0f shard re-registrations; root aggregation p99 %.2gs\n",
				l.Shards, l.ShardReconnects, l.RootAggP99)
		}
		for _, n := range l.Notes {
			bw.printf("- note: %s\n", n)
		}
		for _, e := range l.ScrapeErrors {
			bw.printf("- scrape error: %s\n", e)
		}
		bw.printf("- result: %s\n\n", passMark(l.Pass))
	}

	bw.printf("All numbers above come from the coordinator's own `/metrics` and `/debug/fleet`\nendpoints, scraped over HTTP during the run (see `internal/loadgen`).\n")
	return bw.err
}

func passMark(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// AllPass reports whether every leg passed (the harness's exit
// criterion).
func AllPass(legs []LegResult) bool {
	for _, l := range legs {
		if !l.Pass {
			return false
		}
	}
	return len(legs) > 0
}

// FailureSummary lists the failing legs and why, one line each.
func FailureSummary(legs []LegResult) string {
	var lines []string
	for _, l := range legs {
		if l.Pass {
			continue
		}
		why := "did not meet leg criteria"
		if len(l.ScrapeErrors) > 0 {
			why = l.ScrapeErrors[0]
		} else if l.StormKilled > 0 && l.StormRecoverySec < 0 {
			why = "reconnect storm never fully recovered"
		} else if l.CrashResumedFrom < 0 && l.Name == "crash" {
			why = "crash leg did not resume from checkpoint"
		}
		lines = append(lines, fmt.Sprintf("leg %s: %s", l.Name, why))
	}
	return strings.Join(lines, "\n")
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
