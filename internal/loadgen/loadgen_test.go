package loadgen

import (
	"runtime"
	"testing"
	"time"

	"haccs/internal/rounds"
	"haccs/internal/stats"
)

// testMatrix is a fast environment: tiny sleeps, aggressive scrape
// cadence, small parameter vector.
func testMatrix(t *testing.T, n int) MatrixConfig {
	t.Helper()
	return MatrixConfig{
		Fleet: FleetConfig{
			N:          n,
			Latency:    HeavyTailLatency{BaseSec: 2, SlowEvery: 4, SlowFactor: 15},
			SleepScale: 0.0005, // 2 virtual s -> 1ms wall
			MaxSleep:   20 * time.Millisecond,
			Seed:       42,
		},
		ScrapeEvery:   2,
		ParamDim:      32,
		CheckpointDir: t.TempDir(),
	}
}

func TestLatencyModels(t *testing.T) {
	u := UniformLatency{MinSec: 1, MaxSec: 5, Seed: 7}
	for id := 0; id < 50; id++ {
		e := u.Expect(id)
		if e < 1 || e > 5 {
			t.Fatalf("uniform Expect(%d) = %v outside [1,5]", id, e)
		}
		if e != u.Expect(id) {
			t.Fatalf("uniform Expect(%d) not deterministic", id)
		}
	}
	h := HeavyTailLatency{BaseSec: 2, SlowEvery: 4, SlowFactor: 15}
	for id := 0; id < 12; id++ {
		want := 2.0
		if id%4 == 3 {
			want = 30
		}
		if got := h.Expect(id); got != want {
			t.Fatalf("heavy-tail Expect(%d) = %v, want %v", id, got, want)
		}
	}
	rng := stats.NewRNG(1)
	d := h.Delay(3, 0, rng)
	if d < 27 || d > 33 {
		t.Errorf("heavy-tail Delay jitter out of band: %v", d)
	}
	if got := sleepFor(2, 0.001, time.Millisecond); got != time.Millisecond {
		t.Errorf("sleepFor clamp: %v", got)
	}
	if got := sleepFor(2, 0.001, 0); got != 2*time.Millisecond {
		t.Errorf("sleepFor unclamped: %v", got)
	}
}

func TestUniformStrategySelects(t *testing.T) {
	s := NewUniformStrategy(3)
	available := make([]bool, 20)
	for i := range available {
		available[i] = i%2 == 0 // 10 available
	}
	sel := s.Select(0, available, 4)
	if len(sel) != 4 {
		t.Fatalf("selected %d, want 4", len(sel))
	}
	seen := map[int]bool{}
	for _, id := range sel {
		if !available[id] {
			t.Errorf("selected unavailable client %d", id)
		}
		if seen[id] {
			t.Errorf("duplicate selection %d", id)
		}
		seen[id] = true
	}
	if got := s.Select(1, available, 99); len(got) != 10 {
		t.Errorf("over-budget select returned %d, want all 10 available", len(got))
	}
	s.Update(0, sel, []float64{1, 2, 3, 4}) // must not panic
}

func TestSyncLegSmallFleet(t *testing.T) {
	cfg := testMatrix(t, 24)
	res, err := RunLeg(cfg, Leg{Name: "sync", Rounds: 6, K: 6, Deadline: 8})
	if err != nil {
		t.Fatalf("RunLeg: %v", err)
	}
	if !res.Pass {
		t.Fatalf("leg failed: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("round latency percentiles implausible: p50=%v p99=%v", res.P50, res.P99)
	}
	if res.RoundsPerSec <= 0 {
		t.Errorf("rounds/s = %v", res.RoundsPerSec)
	}
	// Every 4th client registers 30 virtual seconds against a deadline
	// of 8: any slow client selected must show up as a straggler cut.
	if res.StragglerCuts == 0 {
		t.Error("heavy-tail fleet under a deadline produced no straggler cuts")
	}
	if res.SessionsFinal != 24 {
		t.Errorf("final sessions = %v, want 24", res.SessionsFinal)
	}
	if res.HeapMaxBytes <= 0 || res.GoroutinesMax <= 0 {
		t.Errorf("runtime envelope empty: heap=%v goroutines=%v", res.HeapMaxBytes, res.GoroutinesMax)
	}
	if res.FleetRounds == 0 {
		t.Error("fleet endpoint recorded no rounds")
	}
}

func TestAsyncLegBuffersUpdates(t *testing.T) {
	cfg := testMatrix(t, 16)
	res, err := RunLeg(cfg, Leg{
		Name:   "async",
		Mode:   rounds.ModeAsync,
		Async:  rounds.AsyncConfig{BufferK: 3, MaxStaleness: 16},
		Rounds: 6, K: 6,
	})
	if err != nil {
		t.Fatalf("RunLeg: %v", err)
	}
	if !res.Pass {
		t.Fatalf("leg failed: %+v", res)
	}
	if res.BufferedPerSec <= 0 {
		t.Errorf("async leg buffered no updates: %+v", res)
	}
}

func TestAsyncLegRejectsDeadline(t *testing.T) {
	cfg := testMatrix(t, 4)
	if _, err := RunLeg(cfg, Leg{Name: "bad", Mode: rounds.ModeAsync, Rounds: 1, K: 2, Deadline: 5}); err == nil {
		t.Fatal("async leg with a deadline must be rejected")
	}
}

func TestStormLegRecovers(t *testing.T) {
	cfg := testMatrix(t, 24)
	res, err := RunLeg(cfg, Leg{Name: "storm", Rounds: 10, K: 4, Deadline: 8, StormFraction: 0.25})
	if err != nil {
		t.Fatalf("RunLeg: %v", err)
	}
	if res.StormKilled == 0 {
		t.Fatal("storm killed no connections")
	}
	if res.StormRecoverySec < 0 {
		t.Fatalf("storm never recovered: %+v", res)
	}
	if res.Reconnects < float64(res.StormKilled) {
		t.Errorf("reconnects %v < killed %v", res.Reconnects, res.StormKilled)
	}
	if !res.Pass {
		t.Fatalf("leg failed: %+v", res)
	}
}

func TestCrashResumeLegUnderLoad(t *testing.T) {
	cfg := testMatrix(t, 16)
	res, err := RunLeg(cfg, Leg{Name: "crash", Rounds: 8, K: 4, Deadline: 8, Crash: true})
	if err != nil {
		t.Fatalf("RunLeg: %v", err)
	}
	if res.CrashResumedFrom != 4 {
		t.Errorf("resumed from round %d, want 4", res.CrashResumedFrom)
	}
	if len(res.Notes) > 0 {
		t.Errorf("unexpected notes: %v", res.Notes)
	}
	if !res.Pass {
		t.Fatalf("leg failed: %+v", res)
	}
}

func TestShardedLegStormAndRootCrash(t *testing.T) {
	cfg := testMatrix(t, 24)
	res, err := RunLeg(cfg, Leg{
		Name: "sharded", Rounds: 12, K: 6, Deadline: 8,
		Shards: 3, StormFraction: 1, Crash: true,
	})
	if err != nil {
		t.Fatalf("RunLeg: %v", err)
	}
	if res.Shards != 3 {
		t.Errorf("result shards = %d", res.Shards)
	}
	if res.StormKilled == 0 {
		t.Fatal("storm killed no connections")
	}
	if res.StormRecoverySec < 0 {
		t.Fatalf("stormed shard never recovered: %+v", res)
	}
	if res.CrashResumedFrom != 8 {
		t.Errorf("root resumed from round %d, want 8", res.CrashResumedFrom)
	}
	if res.ShardReconnects < 3 {
		t.Errorf("shard re-registrations after root crash = %v, want >= 3", res.ShardReconnects)
	}
	if res.RoundsPerSec <= 0 {
		t.Errorf("rounds/s = %v", res.RoundsPerSec)
	}
	if res.FleetRounds == 0 {
		t.Error("fleet endpoint recorded no rounds")
	}
	if !res.Pass {
		t.Fatalf("leg failed: %+v", res)
	}
}

func TestShardedLegSmallFleetSync(t *testing.T) {
	cfg := testMatrix(t, 16)
	res, err := RunLeg(cfg, Leg{Name: "sharded", Rounds: 6, K: 4, Deadline: 8, Shards: 2})
	if err != nil {
		t.Fatalf("RunLeg: %v", err)
	}
	if !res.Pass {
		t.Fatalf("leg failed: %+v", res)
	}
	if res.SessionsFinal != 16 {
		t.Errorf("final sessions = %v, want 16", res.SessionsFinal)
	}
	if res.StragglerCuts == 0 {
		t.Error("heavy-tail fleet under a deadline produced no straggler cuts")
	}
}

func TestCrashLegRequiresCheckpointDir(t *testing.T) {
	cfg := testMatrix(t, 4)
	cfg.CheckpointDir = ""
	if _, err := RunLeg(cfg, Leg{Name: "crash", Rounds: 2, K: 2, Crash: true}); err == nil {
		t.Fatal("crash leg without a checkpoint dir must error")
	}
}

func TestFleetStopLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testMatrix(t, 12)
	res, err := RunLeg(cfg, Leg{Name: "sync", Rounds: 2, K: 4, Deadline: 8})
	if err != nil || !res.Pass {
		t.Fatalf("RunLeg: %v %+v", err, res)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
