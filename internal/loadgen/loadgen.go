package loadgen

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"haccs/internal/flnet"
	"haccs/internal/stats"
)

// FleetConfig parameterizes a synthetic client fleet.
type FleetConfig struct {
	// N is the fleet size (client IDs 0..N-1, the dense roster the
	// coordinator requires).
	N int
	// Latency shapes per-client expected latency and per-request
	// training sleeps.
	Latency LatencyModel
	// SleepScale converts virtual latency seconds into wall sleep
	// seconds (e.g. 0.001 makes a 2-virtual-second client sleep 2ms
	// per request). Zero disables sleeping entirely.
	SleepScale float64
	// MaxSleep clamps any single training sleep (0 = no clamp).
	MaxSleep time.Duration
	// Flakiness is the per-request probability that a client hangs up
	// mid-round instead of replying — the server sees a receive error,
	// drops the session, and the client redials.
	Flakiness float64
	// Seed roots every per-client RNG stream.
	Seed uint64
	// Classes is the synthetic label-histogram width carried in each
	// registration (default 10).
	Classes int
	// Route, when set, overrides the fleet-wide target per client —
	// the sharded legs point each client at its owning shard
	// coordinator. Routed clients ignore SetTarget (shard servers
	// survive a root crash, so their addresses never move).
	Route func(id int) string
}

func (c *FleetConfig) withDefaults() FleetConfig {
	out := *c
	if out.Latency == nil {
		out.Latency = UniformLatency{MinSec: 1, MaxSec: 5, Seed: out.Seed}
	}
	if out.Classes <= 0 {
		out.Classes = 10
	}
	return out
}

// Fleet is a running set of synthetic clients. Each client is a
// goroutine in a dial-serve-redial loop: it connects to the current
// target, registers, serves training requests, and on any connection
// loss (coordinator crash, injected storm, its own flakiness) backs
// off briefly and redials — which the coordinator's reconnect loop
// admits as a session replacement.
type Fleet struct {
	cfg FleetConfig

	target   atomic.Value // string: coordinator address
	stopping atomic.Bool
	wg       sync.WaitGroup

	mu    sync.Mutex
	conns map[int]net.Conn

	dials atomic.Int64
}

// redialBackoff spaces redial attempts so a dead coordinator is not
// hammered; jittered per client to spread reconnect storms over a few
// accept cycles.
const redialBackoff = 20 * time.Millisecond

// StartFleet launches cfg.N clients against the coordinator at addr.
// It returns immediately; AcceptClients on the server side observes
// the registrations.
func StartFleet(cfg FleetConfig, addr string) (*Fleet, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("loadgen: fleet size must be positive, got %d", cfg.N)
	}
	f := &Fleet{cfg: cfg.withDefaults(), conns: make(map[int]net.Conn, cfg.N)}
	f.target.Store(addr)
	f.wg.Add(f.cfg.N)
	for id := 0; id < f.cfg.N; id++ {
		go f.clientLoop(id)
	}
	return f, nil
}

// SetTarget points subsequent (re)dials at a new coordinator address —
// the crash+resume leg moves the fleet to the restarted server's port.
func (f *Fleet) SetTarget(addr string) { f.target.Store(addr) }

// Dials returns the total dial attempts so far (diagnostics).
func (f *Fleet) Dials() int64 { return f.dials.Load() }

// Live returns the number of clients currently holding a connection.
func (f *Fleet) Live() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.conns)
}

// Storm abruptly closes up to n live client connections — a staged
// reconnect storm. The victims' serve loops fail, back off, and
// redial. Returns the number of connections actually closed.
func (f *Fleet) Storm(n int) int {
	f.mu.Lock()
	victims := make([]net.Conn, 0, n)
	for _, c := range f.conns {
		if len(victims) >= n {
			break
		}
		victims = append(victims, c)
	}
	f.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	return len(victims)
}

// StormIDs abruptly closes the live connections of exactly the given
// clients — the sharded legs use it to storm one shard's slice while
// the rest of the fleet stays seated. Returns the number of
// connections actually closed (clients mid-redial have none).
func (f *Fleet) StormIDs(ids []int) int {
	f.mu.Lock()
	victims := make([]net.Conn, 0, len(ids))
	for _, id := range ids {
		if c, ok := f.conns[id]; ok {
			victims = append(victims, c)
		}
	}
	f.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	return len(victims)
}

// Stop tears the fleet down: no further redials, all live connections
// closed, and every client goroutine joined before return.
func (f *Fleet) Stop() {
	f.stopping.Store(true)
	f.mu.Lock()
	for _, c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// registration builds client id's synthetic Register: a peaked label
// histogram (class id%Classes dominant) and the latency model's
// expectation, which the coordinator's virtual clock and straggler
// deadline consume.
func (f *Fleet) registration(id int) flnet.Register {
	counts := make([]float64, f.cfg.Classes)
	for c := range counts {
		counts[c] = 1
	}
	counts[id%f.cfg.Classes] = 10
	return flnet.RegisterFromSummary(id, counts, nil, f.cfg.Latency.Expect(id), 100+id%50)
}

func (f *Fleet) clientLoop(id int) {
	defer f.wg.Done()
	rng := stats.NewRNG(stats.DeriveSeed(f.cfg.Seed, uint64(id)))
	for !f.stopping.Load() {
		addr := f.target.Load().(string)
		if f.cfg.Route != nil {
			addr = f.cfg.Route(id)
		}
		f.dials.Add(1)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			// Coordinator down (crash leg) or listen backlog overrun
			// under a storm; back off and retry.
			f.sleepInterruptibly(redialBackoff + time.Duration(rng.Intn(int(redialBackoff))))
			continue
		}
		f.mu.Lock()
		if f.stopping.Load() {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conns[id] = conn
		f.mu.Unlock()

		c := &flnet.Client{
			Reg:     f.registration(id),
			Trainer: f.trainer(id, conn, rng),
		}
		_, _ = c.Serve(conn)

		f.mu.Lock()
		if f.conns[id] == conn {
			delete(f.conns, id)
		}
		f.mu.Unlock()
		f.sleepInterruptibly(time.Duration(rng.Intn(int(redialBackoff))))
	}
}

// sleepInterruptibly naps without delaying Stop by more than one poll.
func (f *Fleet) sleepInterruptibly(d time.Duration) {
	const poll = 5 * time.Millisecond
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if f.stopping.Load() {
			return
		}
		step := time.Until(deadline)
		if step > poll {
			step = poll
		}
		time.Sleep(step)
	}
}

// trainer builds the synthetic local-training function for one client:
// sleep the modeled latency (compressed by SleepScale), optionally
// hang up to inject flakiness, and echo the parameters nudged by a
// small client-specific shift so payload integrity is checkable end to
// end.
func (f *Fleet) trainer(id int, conn net.Conn, rng *stats.RNG) flnet.Trainer {
	return flnet.TrainerFunc(func(round int, params []float64) ([]float64, int, float64) {
		if f.cfg.SleepScale > 0 {
			time.Sleep(sleepFor(f.cfg.Latency.Delay(id, round, rng), f.cfg.SleepScale, f.cfg.MaxSleep))
		}
		if f.cfg.Flakiness > 0 && rng.Float64() < f.cfg.Flakiness {
			// Hang up instead of replying: the server's read fails and
			// drops the session; the serve loop returns and redials.
			conn.Close()
		}
		out := make([]float64, len(params))
		shift := 1.0 / float64(id+1)
		for i, v := range params {
			out[i] = v + shift
		}
		return out, 100 + id%50, 1.0 / float64(round+1)
	})
}
