package loadgen

import "haccs/internal/stats"

// UniformStrategy selects k clients uniformly at random from the
// available set each round. The harness deliberately uses the
// simplest possible strategy: the scale results measure the transport
// and round runtime, and a uniform draw keeps selection cost and bias
// out of the numbers. It holds no model state, so the crash+resume leg
// rebuilds it fresh (it is not a checkpoint.Snapshotter).
type UniformStrategy struct {
	rng *stats.RNG
	ids []int // scratch, reused across rounds
}

// NewUniformStrategy seeds the selection stream.
func NewUniformStrategy(seed uint64) *UniformStrategy {
	return &UniformStrategy{rng: stats.NewRNG(seed)}
}

// Select implements rounds.Strategy with a partial Fisher-Yates over
// the available IDs.
func (s *UniformStrategy) Select(round int, available []bool, k int) []int {
	s.ids = s.ids[:0]
	for id, ok := range available {
		if ok {
			s.ids = append(s.ids, id)
		}
	}
	if k > len(s.ids) {
		k = len(s.ids)
	}
	for i := 0; i < k; i++ {
		j := i + s.rng.Intn(len(s.ids)-i)
		s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	}
	return append([]int(nil), s.ids[:k]...)
}

// Update implements rounds.Strategy; a uniform sampler learns nothing.
func (s *UniformStrategy) Update(round int, selected []int, losses []float64) {}
