// Package loadgen generates synthetic TCP client fleets against the
// flnet coordinator: thousands of goroutine clients with configurable
// latency distributions, flakiness, staged reconnect storms and a
// coordinator crash + checkpoint-resume scenario. It is the load side
// of the scale-test harness; cmd/haccs-load drives its scenario matrix
// and turns the coordinator's own /metrics and /debug/fleet scrapes
// into the committed tests/results/scale reports.
package loadgen

import (
	"time"

	"haccs/internal/stats"
)

// LatencyModel shapes the fleet's heterogeneity. Expect is the
// client's registered latency estimate in virtual seconds — it drives
// the coordinator's virtual clock and deadline straggler cuts exactly
// as in the simulation experiments. Delay is the wall-clock training
// sleep injected into one request (before SleepScale compression).
type LatencyModel interface {
	Expect(clientID int) float64
	Delay(clientID, round int, rng *stats.RNG) float64
}

// UniformLatency draws each client's expected latency uniformly from
// [MinSec, MaxSec], deterministically from Seed and the client ID, and
// jitters each request ±10% around it.
type UniformLatency struct {
	MinSec, MaxSec float64
	Seed           uint64
}

// Expect implements LatencyModel.
func (u UniformLatency) Expect(clientID int) float64 {
	r := stats.NewRNG(stats.DeriveSeed(u.Seed, uint64(clientID)))
	return r.Uniform(u.MinSec, u.MaxSec)
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(clientID, round int, rng *stats.RNG) float64 {
	return u.Expect(clientID) * rng.Uniform(0.9, 1.1)
}

// HeavyTailLatency matches the async experiment's straggler shape:
// every SlowEvery-th client is SlowFactor slower than BaseSec (the
// canonical configuration — every 4th client 15x slower — is the
// regime where FedBuff-style buffering wins in the paper's async
// comparison).
type HeavyTailLatency struct {
	BaseSec    float64
	SlowEvery  int
	SlowFactor float64
}

// Expect implements LatencyModel.
func (h HeavyTailLatency) Expect(clientID int) float64 {
	if h.SlowEvery > 0 && clientID%h.SlowEvery == h.SlowEvery-1 {
		return h.BaseSec * h.SlowFactor
	}
	return h.BaseSec
}

// Delay implements LatencyModel.
func (h HeavyTailLatency) Delay(clientID, round int, rng *stats.RNG) float64 {
	return h.Expect(clientID) * rng.Uniform(0.9, 1.1)
}

// sleepFor compresses a virtual-seconds delay into a bounded wall
// sleep: delay*scale seconds, clamped to max (so a 15x straggler slows
// a leg, not the whole matrix).
func sleepFor(delaySec, scale float64, max time.Duration) time.Duration {
	d := time.Duration(delaySec * scale * float64(time.Second))
	if d < 0 {
		return 0
	}
	if max > 0 && d > max {
		return max
	}
	return d
}
