package loadgen

import (
	"strings"
	"testing"
)

func sampleLegs() []LegResult {
	return []LegResult{
		{
			Name: "sync", Clients: 2000, Rounds: 40, WallSec: 12.5,
			P50: 0.021, P99: 0.085, RoundsPerSec: 3.2,
			StragglerCuts: 120, Failed: 0, Reconnects: 0,
			SessionsMin: 2000, SessionsFinal: 2000,
			HeapMaxBytes: 96 << 20, GoroutinesMax: 2105,
			GCPauseP99: 0.0004, SchedP99: 0.002,
			FleetRounds: 40, Fairness: 0.93,
			CrashResumedFrom: -1, StormRecoverySec: -1, Pass: true,
		},
		{
			Name: "storm", Clients: 2000, Rounds: 40, WallSec: 15.1,
			P50: 0.025, P99: 0.2, RoundsPerSec: 2.6,
			Reconnects: 500, SessionsMin: 1980, SessionsFinal: 2000,
			StormKilled: 500, StormRecoverySec: 1.7,
			CrashResumedFrom: -1, Pass: false,
			ScrapeErrors: []string{"scrape /metrics: HTTP 500"},
		},
	}
}

func TestWriteReport(t *testing.T) {
	var sb strings.Builder
	meta := RunMeta{Rev: "abc1234", Date: "2026-08-07", GoVersion: "go1.22", Host: "ci", Clients: 2000, Seed: 42}
	if err := WriteReport(&sb, meta, sampleLegs()); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Scale results @ abc1234",
		"clients: 2000",
		"| sync | 40 | 12.5 | 0.0210 | 0.0850 | 3.20 |",
		"500 connections killed, all re-admitted in 1.70s",
		"scrape error: scrape /metrics: HTTP 500",
		"- result: FAIL",
		"/metrics` and `/debug/fleet`",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n---\n%s", want, out)
		}
	}
}

func TestAllPassAndFailureSummary(t *testing.T) {
	legs := sampleLegs()
	if AllPass(legs) {
		t.Error("AllPass true with a failing leg")
	}
	if AllPass(nil) {
		t.Error("AllPass true with no legs")
	}
	legs[1].Pass = true
	if !AllPass(legs) {
		t.Error("AllPass false with all legs passing")
	}
	legs[1].Pass = false
	sum := FailureSummary(legs)
	if !strings.Contains(sum, "leg storm") || !strings.Contains(sum, "HTTP 500") {
		t.Errorf("failure summary: %q", sum)
	}
}

func TestReportPath(t *testing.T) {
	if got := ReportPath("tests/results/scale", "deadbeef"); got != "tests/results/scale/deadbeef.md" {
		t.Errorf("ReportPath = %q", got)
	}
}
