package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"haccs/internal/fleet"
	"haccs/internal/telemetry"
)

// Scraper reads the coordinator's own observability endpoints over
// HTTP — the identical path an external Prometheus server or operator
// would use. Every number in a scale report comes through here: the
// harness deliberately has no side channel into the coordinator's
// internals, so the committed results also certify the endpoints.
type Scraper struct {
	base   string // e.g. "http://127.0.0.1:PORT"
	client *http.Client
}

// NewScraper targets the observability endpoint bound at hostport.
func NewScraper(hostport string) *Scraper {
	return &Scraper{
		base:   "http://" + hostport,
		client: &http.Client{Timeout: 10 * time.Second},
	}
}

// Metrics GETs /metrics, lints the exposition (any violation is a
// scrape error — conformance is part of what the harness certifies),
// and returns the parsed families.
func (s *Scraper) Metrics() (*telemetry.Exposition, error) {
	body, err := s.get("/metrics")
	if err != nil {
		return nil, err
	}
	if errs := telemetry.LintExposition(body); len(errs) > 0 {
		return nil, fmt.Errorf("loadgen: /metrics lint: %v (and %d more)", errs[0], len(errs)-1)
	}
	return telemetry.ParseExposition(body)
}

// Fleet GETs /debug/fleet and decodes the health state.
func (s *Scraper) Fleet() (*fleet.State, error) {
	body, err := s.get("/debug/fleet")
	if err != nil {
		return nil, err
	}
	var st fleet.State
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("loadgen: /debug/fleet decode: %w", err)
	}
	return &st, nil
}

func (s *Scraper) get(path string) ([]byte, error) {
	resp, err := s.client.Get(s.base + path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: HTTP %d", path, resp.StatusCode)
	}
	return body, nil
}

// scrapePoint is one periodic reading used to build the leg's
// resource envelope and counter deltas.
type scrapePoint struct {
	at time.Time
	e  *telemetry.Exposition
}

func (p scrapePoint) value(series string, labels ...[2]string) float64 {
	v, _ := p.e.Value(series, labels...)
	return v
}

// envelope folds periodic scrapes into min/max readings for the
// report.
type envelope struct {
	points []scrapePoint
}

func (ev *envelope) add(p scrapePoint) { ev.points = append(ev.points, p) }

// max returns the maximum of one series across all scrapes.
func (ev *envelope) max(series string, labels ...[2]string) float64 {
	m := 0.0
	for _, p := range ev.points {
		if v := p.value(series, labels...); v > m {
			m = v
		}
	}
	return m
}

// min returns the minimum of one series across all scrapes (0 when no
// scrape carried it).
func (ev *envelope) min(series string, labels ...[2]string) float64 {
	first := true
	m := 0.0
	for _, p := range ev.points {
		v, ok := p.e.Value(series, labels...)
		if !ok {
			continue
		}
		if first || v < m {
			m, first = v, false
		}
	}
	return m
}
