package fleet

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The registry checkpoints itself the same way the rounds driver does:
// a versioned gob payload of every field that feeds future
// observations. Because ObserveRound is deterministic in the round
// history and the P² estimators serialize their full marker state, a
// restored registry continues byte-identically to an uninterrupted one
// (pinned by the experiments resume test).

// registryStateVersion tags the snapshot payload layout. Version 2
// added the async-driver accounting (per-client buffered/staleness
// counters in clientHealth plus the fleet-wide staleness histogram).
const registryStateVersion = 2

// registryState is the serialized form of a Registry.
type registryState struct {
	Version         int
	Rounds          int
	Clock           float64
	TotalSelected   int
	Fairness        float64
	Clients         []clientHealth
	Clusters        []clusterHealth
	AsyncRounds     int
	StaleDropped    int
	StalenessCounts []int
}

// SnapshotState implements checkpoint.Snapshotter.
func (r *Registry) SnapshotState() ([]byte, error) {
	r.mu.Lock()
	st := registryState{
		Version:         registryStateVersion,
		Rounds:          r.rounds,
		Clock:           r.clock,
		TotalSelected:   r.totalSelected,
		Fairness:        r.fairness,
		Clients:         append([]clientHealth(nil), r.clients...),
		Clusters:        make([]clusterHealth, len(r.clusters)),
		AsyncRounds:     r.asyncRounds,
		StaleDropped:    r.staleDropped,
		StalenessCounts: append([]int(nil), r.stalenessCounts[:]...),
	}
	for i := range r.clusters {
		st.Clusters[i] = r.clusters[i]
		st.Clusters[i].Members = append([]int(nil), r.clusters[i].Members...)
	}
	r.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("fleet: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements checkpoint.Snapshotter. The receiver must
// have been built for the same roster size as the snapshot.
func (r *Registry) RestoreState(data []byte) error {
	var st registryState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("fleet: restore: %w", err)
	}
	if st.Version != registryStateVersion {
		return fmt.Errorf("fleet: restore: snapshot version %d, want %d", st.Version, registryStateVersion)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(st.Clients) != len(r.clients) {
		return fmt.Errorf("fleet: restore: snapshot has %d clients, registry %d", len(st.Clients), len(r.clients))
	}
	if len(st.StalenessCounts) != stalenessBuckets {
		return fmt.Errorf("fleet: restore: snapshot has %d staleness buckets, this build uses %d", len(st.StalenessCounts), stalenessBuckets)
	}
	r.rounds = st.Rounds
	r.clock = st.Clock
	r.totalSelected = st.TotalSelected
	r.fairness = st.Fairness
	copy(r.clients, st.Clients)
	r.clusters = st.Clusters
	r.asyncRounds = st.AsyncRounds
	r.staleDropped = st.StaleDropped
	copy(r.stalenessCounts[:], st.StalenessCounts)
	return nil
}
