package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Handler serves the registry at /debug/fleet, following the
// /debug/selection pattern: indented JSON of the State snapshot by
// default, a fixed-width text table with ?format=table, sortable with
// ?sort=<column> (one of id, selected, reported, cut, failed,
// unavailable, flakiness, ewma, p50, p90, p99 — metric columns sort
// descending).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		st := r.State()
		if req.URL.Query().Get("format") == "table" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteTable(w, st, req.URL.Query().Get("sort"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// clientSortKeys maps a ?sort= value to the comparison key; metric
// columns sort descending (worst first), id ascending.
var clientSortKeys = map[string]func(c ClientHealth) float64{
	"selected":    func(c ClientHealth) float64 { return float64(c.Selected) },
	"reported":    func(c ClientHealth) float64 { return float64(c.Reported) },
	"cut":         func(c ClientHealth) float64 { return float64(c.StragglerCut) },
	"failed":      func(c ClientHealth) float64 { return float64(c.Failed) },
	"unavailable": func(c ClientHealth) float64 { return float64(c.Unavailable) },
	"flakiness":   func(c ClientHealth) float64 { return c.Flakiness },
	"ewma":        func(c ClientHealth) float64 { return c.LatencyEWMA },
	"p50":         func(c ClientHealth) float64 { return c.LatencyP50 },
	"p90":         func(c ClientHealth) float64 { return c.LatencyP90 },
	"p99":         func(c ClientHealth) float64 { return c.LatencyP99 },
}

// WriteTable renders a State as the fixed-width text form of
// /debug/fleet?format=table.
func WriteTable(w io.Writer, st State, sortKey string) {
	fmt.Fprintf(w, "fleet: rounds %d  clock %.3f  selections %d  fairness %.4f\n",
		st.Rounds, st.Clock, st.TotalSelected, st.Fairness)

	clients := append([]ClientHealth(nil), st.Clients...)
	if key, ok := clientSortKeys[sortKey]; ok {
		sort.SliceStable(clients, func(i, j int) bool { return key(clients[i]) > key(clients[j]) })
	}
	fmt.Fprintf(w, "\n%6s %8s %8s %6s %6s %6s %8s %9s %9s %9s %9s %9s %9s\n",
		"client", "selected", "reported", "cut", "failed", "unavl", "lastseen", "loss", "flaky", "ewma", "p50", "p90", "p99")
	for _, c := range clients {
		fmt.Fprintf(w, "%6d %8d %8d %6d %6d %6d %8d %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f\n",
			c.ID, c.Selected, c.Reported, c.StragglerCut, c.Failed, c.Unavailable,
			c.LastSeen, c.LastLoss, c.Flakiness, c.LatencyEWMA, c.LatencyP50, c.LatencyP90, c.LatencyP99)
	}

	if len(st.Clusters) > 0 {
		fmt.Fprintf(w, "\n%7s %7s %8s %8s %8s\n", "cluster", "members", "share", "target", "drift")
		for _, ch := range st.Clusters {
			fmt.Fprintf(w, "%7d %7d %8.4f %8.4f %8.4f\n",
				ch.ID, len(ch.Members), ch.Share, ch.TargetShare, ch.Drift)
		}
	}
}
