// Package fleet is the longitudinal health view of a federated
// client population: where internal/telemetry records what happened in
// one round and internal/introspect exposes the scheduler's current
// decision state, fleet accumulates per-client behavior across rounds —
// rolling train-latency statistics (EWMA + P² streaming quantiles),
// participation/straggler/failure counters, a flakiness score — and
// derives fleet-level signals every round: Jain's fairness index over
// cumulative selection counts, per-cluster selection share against the
// scheduler's θ targets, and cluster centroid drift since cluster time.
//
// The registry is fed synchronously by the rounds driver (one
// ObserveRound per round, local or flnet transport alike) so its state
// is a pure deterministic function of the round history; it is a
// checkpoint.Snapshotter, and a resumed run reproduces the registry
// byte-identically. A nil *Registry is the documented "off" state and
// costs nothing on the round hot path (pinned by the tracked
// fleet_record_disabled benchmark), matching the nil Tracer / nil
// Saver convention used everywhere else in the repo.
package fleet

// ClientStats is the client-reported training statistics block carried
// on the flnet TrainReply wire (validated by the coordinator like the
// piggybacked TrainSpan — a malformed block is a protocol violation
// that drops the session). In the in-process engine transport no
// client self-reports, and reports reach the registry with a nil
// Stats; the registry then falls back to the simulated virtual latency
// so engine-path state stays deterministic.
type ClientStats struct {
	// TrainWallSec is the client-measured wall time of the local
	// training call, in seconds. Must be finite and non-negative.
	TrainWallSec float64
	// Samples is the number of samples processed locally. Must be
	// positive.
	Samples int
	// Loss is the client's final local training loss. Must be finite.
	Loss float64
	// Epochs is the number of local epochs run. Must be non-negative.
	Epochs int
}

// ClientReport is one reporter's contribution to a round observation.
type ClientReport struct {
	ClientID   int
	Loss       float64
	NumSamples int
	// VirtualSec is the simulated round latency the driver charged the
	// client — the latency fallback when the client sent no stats.
	VirtualSec float64
	// Stats is the client-reported block off the wire; nil on the
	// in-process transport.
	Stats *ClientStats
	// Staleness is how many model versions behind the update was when
	// the async driver buffered it; always 0 on the sync driver.
	Staleness int
}

// RoundObservation is everything the registry learns from one driver
// round. Slices are only read during ObserveRound and never retained,
// so the driver reuses its buffers across rounds.
type RoundObservation struct {
	Round    int
	Selected []int
	// Reports covers the clients whose updates made aggregation.
	Reports []ClientReport
	// Cut and Failed are the selected clients discarded mid-round — at
	// the straggler deadline (sync) or the staleness bound (async) —
	// and the ones whose transport failed.
	Cut    []int
	Failed []int
	// Async marks observations from the buffered asynchronous driver:
	// Reports are then buffered updates carrying a Staleness, and Cut
	// lists stale-dropped (not deadline-cut) clients; the registry
	// accounts them separately.
	Async bool
	// Unavailable lists the clients that were down this round (dropout
	// or marked dead after an earlier failure).
	Unavailable []int
	// RoundVirtual is the round's simulated makespan; Clock the
	// virtual clock after the round.
	RoundVirtual float64
	Clock        float64
}

// ClusterTargets is the scheduler-side cluster view the registry reads
// once per round: current membership, normalized θ target shares, and
// each cluster's centroid drift since it was formed. Slices must be
// safe for the registry to retain (the provider copies).
type ClusterTargets struct {
	// Members holds each cluster's client IDs.
	Members [][]int
	// Theta is each cluster's eq. 7 sampling weight normalized to a
	// share (sums to 1 over alive clusters).
	Theta []float64
	// Drift is the Hellinger distance between each cluster's current
	// label-distribution centroid and its centroid at cluster time.
	Drift []float64
}

// ClusterSource supplies ClusterTargets; the HACCS scheduler
// implements it. Strategies without cluster structure leave the
// registry's Source nil and the per-cluster gauges are simply absent.
type ClusterSource interface {
	FleetClusterState() ClusterTargets
}
