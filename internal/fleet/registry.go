package fleet

import (
	"math"
	"strconv"
	"sync"

	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// latencyAlpha is the EWMA smoothing factor for the rolling train
// latency; flakyAlpha smooths the per-selection outcome stream (1 for
// a cut or failed selection, 0 for a clean report) into the flakiness
// score.
const (
	latencyAlpha = 0.2
	flakyAlpha   = 0.2
)

// stalenessBuckets sizes the fleet-wide staleness histogram: one
// bucket per staleness value 0..14 plus an overflow bucket for >= 15.
const stalenessBuckets = 16

// clientHealth is the rolling per-client record. Fields are exported
// for gob (the registry checkpoints itself); the type stays package
// private.
type clientHealth struct {
	Selected    int
	Reported    int
	Cut         int
	Failed      int
	Unavailable int
	LastSeen    int // last round the client was selected; -1 = never
	LastLoss    float64
	Samples     int // cumulative samples contributed to aggregation

	LatEWMA float64
	LatInit bool
	Flaky   float64

	// Async-driver accounting: buffered updates contributed, updates
	// dropped past the staleness bound, and the running staleness sum
	// and maximum over the buffered ones. All stay zero under the sync
	// driver.
	Buffered     int
	StaleDropped int
	StaleSum     int
	StaleMax     int

	P50, P90, P99 stats.P2
}

// observeLatency folds one train-latency sample into the EWMA and the
// three quantile estimators.
func (c *clientHealth) observeLatency(v float64) {
	if !c.LatInit {
		c.LatEWMA = v
		c.LatInit = true
	} else {
		c.LatEWMA = latencyAlpha*v + (1-latencyAlpha)*c.LatEWMA
	}
	c.P50.Observe(v)
	c.P90.Observe(v)
	c.P99.Observe(v)
}

// observeOutcome folds one selection outcome (0 clean, 1 cut/failed)
// into the flakiness score. The score starts at 0 (no evidence of
// flakiness), so the EWMA needs no init flag.
func (c *clientHealth) observeOutcome(bad float64) {
	c.Flaky = flakyAlpha*bad + (1-flakyAlpha)*c.Flaky
}

// clusterHealth is the registry's per-cluster reading, refreshed each
// round from the ClusterSource. Exported fields for gob.
type clusterHealth struct {
	Members     []int
	Share       float64
	TargetShare float64
	Drift       float64
}

// Options configures a Registry; all fields are optional.
type Options struct {
	// Tracer receives one fleet-level and one per-cluster
	// KindFleetHealth event per observed round.
	Tracer telemetry.Tracer
	// Metrics, when set, gets the haccs_fleet_* gauge families.
	Metrics *telemetry.Registry
	// Source supplies cluster membership, θ targets and drift; nil
	// disables the per-cluster view.
	Source ClusterSource
}

// Registry is the fleet health store. All methods are safe for
// concurrent use (the /debug/fleet handler races the run loop) and
// safe on a nil receiver, which disables recording entirely.
type Registry struct {
	mu            sync.Mutex
	clients       []clientHealth
	rounds        int
	clock         float64
	totalSelected int
	fairness      float64
	clusters      []clusterHealth

	// Async-driver fleet view: rounds observed in async mode and the
	// fleet-wide staleness histogram over buffered updates (index is
	// the staleness in model versions, last bucket is the overflow).
	asyncRounds     int
	staleDropped    int
	stalenessCounts [stalenessBuckets]int

	tracer telemetry.Tracer
	source ClusterSource

	fairGauge *telemetry.Gauge
	shareVec  telemetry.GaugeVec
	targetVec telemetry.GaugeVec
	driftVec  telemetry.GaugeVec
	hasVecs   bool
}

// NewRegistry builds a registry for a dense roster of n clients
// (IDs 0..n-1, matching the driver's proxy indexing).
func NewRegistry(n int, opts Options) *Registry {
	if n <= 0 {
		panic("fleet: registry needs a positive roster size")
	}
	r := &Registry{
		clients: make([]clientHealth, n),
		tracer:  opts.Tracer,
		source:  opts.Source,
	}
	for i := range r.clients {
		r.clients[i].LastSeen = -1
		r.clients[i].P50 = stats.NewP2(0.5)
		r.clients[i].P90 = stats.NewP2(0.9)
		r.clients[i].P99 = stats.NewP2(0.99)
	}
	if reg := opts.Metrics; reg != nil {
		r.fairGauge = reg.Gauge("haccs_fleet_fairness_jain",
			"Jain's fairness index over cumulative client selection counts.")
		r.shareVec = reg.GaugeVec("haccs_fleet_cluster_share",
			"Cluster's share of cumulative client selections.", "cluster")
		r.targetVec = reg.GaugeVec("haccs_fleet_cluster_target_share",
			"Scheduler's normalized theta target share for the cluster.", "cluster")
		r.driftVec = reg.GaugeVec("haccs_fleet_cluster_drift",
			"Hellinger drift of the cluster's label centroid since cluster time.", "cluster")
		r.hasVecs = true
	}
	return r
}

// Size returns the roster size (0 on a nil registry).
func (r *Registry) Size() int {
	if r == nil {
		return 0
	}
	return len(r.clients)
}

// ObserveRound folds one completed driver round into the registry.
// The driver calls it synchronously at the end of every round —
// including empty-selection rounds — so registry state is a
// deterministic function of the round history. No-op on nil.
func (r *Registry) ObserveRound(obs RoundObservation) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rounds++
	r.clock = obs.Clock

	for _, id := range obs.Selected {
		c := &r.clients[id]
		c.Selected++
		c.LastSeen = obs.Round
	}
	r.totalSelected += len(obs.Selected)
	if obs.Async {
		r.asyncRounds++
	}
	for i := range obs.Reports {
		rep := &obs.Reports[i]
		c := &r.clients[rep.ClientID]
		c.Reported++
		c.LastLoss = rep.Loss
		c.Samples += rep.NumSamples
		lat := rep.VirtualSec
		if rep.Stats != nil {
			lat = rep.Stats.TrainWallSec
		}
		c.observeLatency(lat)
		c.observeOutcome(0)
		if obs.Async {
			c.Buffered++
			c.StaleSum += rep.Staleness
			if rep.Staleness > c.StaleMax {
				c.StaleMax = rep.Staleness
			}
			r.stalenessCounts[min(rep.Staleness, stalenessBuckets-1)]++
		}
	}
	for _, id := range obs.Cut {
		c := &r.clients[id]
		if obs.Async {
			c.StaleDropped++
			r.staleDropped++
		} else {
			c.Cut++
		}
		c.observeOutcome(1)
	}
	for _, id := range obs.Failed {
		c := &r.clients[id]
		c.Failed++
		c.observeOutcome(1)
	}
	for _, id := range obs.Unavailable {
		r.clients[id].Unavailable++
	}

	r.fairness = r.jainLocked()
	r.refreshClustersLocked()

	// Emit under the lock: the driver calls ObserveRound serially, so
	// this only ever delays a concurrent /debug/fleet read, and the
	// cluster slice stays safe from reuse across rounds.
	if r.fairGauge != nil {
		r.fairGauge.Set(r.fairness)
	}
	if r.tracer != nil {
		r.tracer.Emit(telemetry.FleetHealth(obs.Round, r.fairness, r.clock))
	}
	for i := range r.clusters {
		ch := &r.clusters[i]
		if r.hasVecs {
			label := strconv.Itoa(i)
			r.shareVec.With(label).Set(ch.Share)
			r.targetVec.With(label).Set(ch.TargetShare)
			r.driftVec.With(label).Set(ch.Drift)
		}
		if r.tracer != nil {
			r.tracer.Emit(telemetry.FleetClusterHealth(obs.Round, i, ch.Share, ch.TargetShare, ch.Drift))
		}
	}
	r.mu.Unlock()
}

// jainLocked computes Jain's fairness index J = (Σx)² / (n·Σx²) over
// the roster's cumulative selection counts: 1 when selections are
// perfectly even, →1/n as they concentrate on one client, and 0 (by
// convention) before any selection.
func (r *Registry) jainLocked() float64 {
	var sum, sumSq float64
	for i := range r.clients {
		x := float64(r.clients[i].Selected)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(r.clients)) * sumSq)
}

// refreshClustersLocked pulls the scheduler's current cluster view and
// recomputes each cluster's cumulative selection share.
func (r *Registry) refreshClustersLocked() {
	if r.source == nil {
		return
	}
	ct := r.source.FleetClusterState()
	if cap(r.clusters) < len(ct.Members) {
		r.clusters = make([]clusterHealth, len(ct.Members))
	}
	r.clusters = r.clusters[:len(ct.Members)]
	for i, members := range ct.Members {
		sel := 0
		for _, id := range members {
			sel += r.clients[id].Selected
		}
		share := 0.0
		if r.totalSelected > 0 {
			share = float64(sel) / float64(r.totalSelected)
		}
		r.clusters[i] = clusterHealth{
			Members:     members,
			Share:       share,
			TargetShare: ct.Theta[i],
			Drift:       ct.Drift[i],
		}
	}
}

// ClientHealth is the exported per-client reading in a State snapshot.
// Latency fields are in client-reported wall seconds on the flnet
// transport and simulated virtual seconds in the in-process engine.
type ClientHealth struct {
	ID           int     `json:"id"`
	Selected     int     `json:"selected"`
	Reported     int     `json:"reported"`
	StragglerCut int     `json:"straggler_cut"`
	Failed       int     `json:"failed"`
	Unavailable  int     `json:"unavailable"`
	LastSeen     int     `json:"last_seen_round"`
	LastLoss     float64 `json:"last_loss"`
	Samples      int     `json:"samples"`
	LatencyEWMA  float64 `json:"latency_ewma"`
	LatencyP50   float64 `json:"latency_p50"`
	LatencyP90   float64 `json:"latency_p90"`
	LatencyP99   float64 `json:"latency_p99"`
	Flakiness    float64 `json:"flakiness"`
	// Async-driver counters (zero and omitted on sync runs): buffered
	// updates contributed, updates dropped past the staleness bound,
	// and the mean/max staleness of the buffered ones.
	Buffered      int     `json:"buffered,omitempty"`
	StaleDropped  int     `json:"stale_dropped,omitempty"`
	MeanStaleness float64 `json:"mean_staleness,omitempty"`
	MaxStaleness  int     `json:"max_staleness,omitempty"`
}

// ClusterHealth is the exported per-cluster reading in a State
// snapshot.
type ClusterHealth struct {
	ID          int     `json:"id"`
	Members     []int   `json:"members"`
	Share       float64 `json:"share"`
	TargetShare float64 `json:"target_share"`
	Drift       float64 `json:"drift"`
}

// State is a point-in-time copy of the whole registry — what
// /debug/fleet serves. Safe on a nil registry (returns the zero
// State).
type State struct {
	Rounds        int             `json:"rounds"`
	Clock         float64         `json:"clock"`
	TotalSelected int             `json:"total_selected"`
	Fairness      float64         `json:"fairness"`
	Clients       []ClientHealth  `json:"clients"`
	Clusters      []ClusterHealth `json:"clusters,omitempty"`
	// Async is the fleet-wide async-driver view; nil on sync-only runs.
	Async *AsyncHealth `json:"async,omitempty"`
}

// AsyncHealth is the fleet-wide reading of the buffered asynchronous
// driver: how many observed rounds ran async, how many updates were
// dropped past the staleness bound, and the staleness histogram over
// every buffered update (index = staleness in model versions; the last
// bucket accumulates the overflow).
type AsyncHealth struct {
	Rounds          int   `json:"rounds"`
	StaleDropped    int   `json:"stale_dropped"`
	StalenessCounts []int `json:"staleness_counts"`
}

// State snapshots the registry under the lock.
func (r *Registry) State() State {
	if r == nil {
		return State{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := State{
		Rounds:        r.rounds,
		Clock:         r.clock,
		TotalSelected: r.totalSelected,
		Fairness:      r.fairness,
		Clients:       make([]ClientHealth, len(r.clients)),
	}
	for i := range r.clients {
		c := &r.clients[i]
		meanStale := 0.0
		if c.Buffered > 0 {
			meanStale = float64(c.StaleSum) / float64(c.Buffered)
		}
		st.Clients[i] = ClientHealth{
			ID:            i,
			Selected:      c.Selected,
			Reported:      c.Reported,
			StragglerCut:  c.Cut,
			Failed:        c.Failed,
			Unavailable:   c.Unavailable,
			LastSeen:      c.LastSeen,
			LastLoss:      c.LastLoss,
			Samples:       c.Samples,
			LatencyEWMA:   c.LatEWMA,
			LatencyP50:    c.P50.Value(),
			LatencyP90:    c.P90.Value(),
			LatencyP99:    c.P99.Value(),
			Flakiness:     c.Flaky,
			Buffered:      c.Buffered,
			StaleDropped:  c.StaleDropped,
			MeanStaleness: meanStale,
			MaxStaleness:  c.StaleMax,
		}
	}
	if r.asyncRounds > 0 {
		st.Async = &AsyncHealth{
			Rounds:          r.asyncRounds,
			StaleDropped:    r.staleDropped,
			StalenessCounts: append([]int(nil), r.stalenessCounts[:]...),
		}
	}
	if len(r.clusters) > 0 {
		st.Clusters = make([]ClusterHealth, len(r.clusters))
		for i := range r.clusters {
			ch := &r.clusters[i]
			st.Clusters[i] = ClusterHealth{
				ID:          i,
				Members:     append([]int(nil), ch.Members...),
				Share:       ch.Share,
				TargetShare: ch.TargetShare,
				Drift:       ch.Drift,
			}
		}
	}
	return st
}

// ValidStats reports whether a client-reported stats block satisfies
// the wire contract: finite non-negative wall time, positive samples,
// finite loss, non-negative epochs. nil is valid (stats are optional).
func ValidStats(s *ClientStats) bool {
	if s == nil {
		return true
	}
	if math.IsNaN(s.TrainWallSec) || math.IsInf(s.TrainWallSec, 0) || s.TrainWallSec < 0 {
		return false
	}
	if s.Samples <= 0 {
		return false
	}
	if math.IsNaN(s.Loss) || math.IsInf(s.Loss, 0) {
		return false
	}
	return s.Epochs >= 0
}
