package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"haccs/internal/telemetry"
)

func TestHandlerServesJSONSnapshot(t *testing.T) {
	r := NewRegistry(3, Options{})
	feed(r, 0, 10)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got State
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if want := r.State(); !reflect.DeepEqual(got, want) {
		t.Errorf("served state = %+v, want %+v", got, want)
	}
}

func TestHandlerTable(t *testing.T) {
	src := staticSource{ClusterTargets{
		Members: [][]int{{0, 1, 2}},
		Theta:   []float64{1},
		Drift:   []float64{0.1},
	}}
	r := NewRegistry(3, Options{Source: src})
	// Client 2 is the designated straggler.
	r.ObserveRound(RoundObservation{Round: 0, Selected: []int{0, 2}, Cut: []int{2},
		Reports: []ClientReport{{ClientID: 0, NumSamples: 1, VirtualSec: 1}}})
	r.ObserveRound(RoundObservation{Round: 1, Selected: []int{2}, Cut: []int{2}})
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?format=table&sort=cut")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if !strings.Contains(out, "fleet: rounds 2") {
		t.Errorf("missing header:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Line 0 header, 1 blank, 2 column names, 3 first client row —
	// sorted by cut descending, so client 2 leads.
	if !strings.HasPrefix(strings.TrimSpace(lines[3]), "2 ") {
		t.Errorf("sort=cut did not rank client 2 first:\n%s", out)
	}
	if !strings.Contains(out, "cluster") || !strings.Contains(out, "drift") {
		t.Errorf("missing cluster table:\n%s", out)
	}
}

func TestWriteReplaySummary(t *testing.T) {
	events := []telemetry.Event{
		telemetry.Selection(0, []int{0, 1}),
		telemetry.Selection(1, []int{0, 2}),
		telemetry.StragglerCut(0, []int{1}, 5),
		telemetry.ClientFailed(1, []int{2}),
		telemetry.FleetHealth(0, 0.5, 5),
		telemetry.FleetHealth(1, 0.8, 10),
		telemetry.FleetClusterHealth(0, 0, 0.6, 0.5, 0.0),
		telemetry.FleetClusterHealth(1, 0, 0.55, 0.5, 0.12),
	}
	var sb strings.Builder
	WriteReplaySummary(&sb, events)
	out := sb.String()
	for _, want := range []string{
		"== fleet summary ==",
		"top stragglers",
		"fairness trajectory",
		"round     1  0.8000",
		"cluster drift timeline",
		"r1=0.1200",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReplaySummaryEmpty(t *testing.T) {
	var sb strings.Builder
	WriteReplaySummary(&sb, nil)
	out := sb.String()
	if !strings.Contains(out, "no straggler cuts or failures recorded") ||
		!strings.Contains(out, "no fleet_health events recorded") {
		t.Errorf("empty summary:\n%s", out)
	}
}
