package fleet

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"

	"haccs/internal/telemetry"
)

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.ObserveRound(RoundObservation{Round: 0, Selected: []int{0, 1}})
	if got := r.State(); !reflect.DeepEqual(got, State{}) {
		t.Errorf("nil State() = %+v, want zero", got)
	}
	if r.Size() != 0 {
		t.Errorf("nil Size() = %d, want 0", r.Size())
	}
}

func TestNilRegistryZeroAllocs(t *testing.T) {
	var r *Registry
	obs := RoundObservation{Round: 1, Selected: []int{0, 1}, Cut: []int{1}}
	allocs := testing.AllocsPerRun(1000, func() {
		r.ObserveRound(obs)
		_ = r.State()
	})
	if allocs != 0 {
		t.Errorf("nil registry fast path allocates %v per round, want 0", allocs)
	}
}

func TestNewRegistryPanicsOnEmptyRoster(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRegistry(0) did not panic")
		}
	}()
	NewRegistry(0, Options{})
}

func TestObserveRoundCounters(t *testing.T) {
	r := NewRegistry(4, Options{})
	r.ObserveRound(RoundObservation{
		Round:    3,
		Selected: []int{0, 1, 2},
		Reports: []ClientReport{
			{ClientID: 0, Loss: 1.5, NumSamples: 10, VirtualSec: 2.0},
			{ClientID: 1, Loss: 0.7, NumSamples: 20, VirtualSec: 4.0},
		},
		Cut:          []int{2},
		Unavailable:  []int{3},
		RoundVirtual: 4.0,
		Clock:        4.0,
	})
	st := r.State()
	if st.Rounds != 1 || st.Clock != 4.0 || st.TotalSelected != 3 {
		t.Fatalf("header = %+v", st)
	}
	c0 := st.Clients[0]
	if c0.Selected != 1 || c0.Reported != 1 || c0.LastSeen != 3 || c0.LastLoss != 1.5 || c0.Samples != 10 {
		t.Errorf("client 0 = %+v", c0)
	}
	// First latency sample seeds the EWMA directly.
	if c0.LatencyEWMA != 2.0 || c0.LatencyP50 != 2.0 {
		t.Errorf("client 0 latency = %+v", c0)
	}
	if c0.Flakiness != 0 {
		t.Errorf("clean report moved flakiness to %v", c0.Flakiness)
	}
	c2 := st.Clients[2]
	if c2.StragglerCut != 1 || c2.Reported != 0 {
		t.Errorf("cut client 2 = %+v", c2)
	}
	if math.Abs(c2.Flakiness-flakyAlpha) > 1e-15 {
		t.Errorf("cut flakiness = %v, want %v", c2.Flakiness, flakyAlpha)
	}
	if st.Clients[3].Unavailable != 1 {
		t.Errorf("client 3 = %+v", st.Clients[3])
	}
}

func TestLatencyPrefersWireStats(t *testing.T) {
	r := NewRegistry(1, Options{})
	r.ObserveRound(RoundObservation{Round: 0, Selected: []int{0}, Reports: []ClientReport{
		{ClientID: 0, NumSamples: 1, VirtualSec: 2.0, Stats: &ClientStats{TrainWallSec: 5.0, Samples: 1}},
	}})
	if got := r.State().Clients[0].LatencyEWMA; got != 5.0 {
		t.Errorf("EWMA = %v, want the wire-reported 5.0", got)
	}
}

func TestEWMAAndFlakinessSequences(t *testing.T) {
	r := NewRegistry(1, Options{})
	// Clean report at latency 1, then a cut, then a clean report at 3.
	r.ObserveRound(RoundObservation{Round: 0, Selected: []int{0},
		Reports: []ClientReport{{ClientID: 0, NumSamples: 1, VirtualSec: 1}}})
	r.ObserveRound(RoundObservation{Round: 1, Selected: []int{0}, Cut: []int{0}})
	r.ObserveRound(RoundObservation{Round: 2, Selected: []int{0},
		Reports: []ClientReport{{ClientID: 0, NumSamples: 1, VirtualSec: 3}}})
	c := r.State().Clients[0]
	wantEWMA := latencyAlpha*3 + (1-latencyAlpha)*1.0
	if math.Abs(c.LatencyEWMA-wantEWMA) > 1e-15 {
		t.Errorf("EWMA = %v, want %v", c.LatencyEWMA, wantEWMA)
	}
	wantFlaky := (1 - flakyAlpha) * flakyAlpha // 1-outcome then 0-outcome
	if math.Abs(c.Flakiness-wantFlaky) > 1e-15 {
		t.Errorf("flakiness = %v, want %v", c.Flakiness, wantFlaky)
	}
	if c.Selected != 3 || c.Reported != 2 || c.StragglerCut != 1 || c.LastSeen != 2 {
		t.Errorf("counters = %+v", c)
	}
}

func TestJainFairness(t *testing.T) {
	r := NewRegistry(4, Options{})
	if got := r.State().Fairness; got != 0 {
		t.Errorf("fairness before any selection = %v, want 0", got)
	}
	// One client hogging every selection: J = 1/n.
	r.ObserveRound(RoundObservation{Round: 0, Selected: []int{0}})
	r.ObserveRound(RoundObservation{Round: 1, Selected: []int{0}})
	if got := r.State().Fairness; math.Abs(got-0.25) > 1e-15 {
		t.Errorf("concentrated fairness = %v, want 0.25", got)
	}
	// Even out: J = 1.
	r.ObserveRound(RoundObservation{Round: 2, Selected: []int{1, 2, 3}})
	r.ObserveRound(RoundObservation{Round: 3, Selected: []int{1, 2, 3}})
	if got := r.State().Fairness; math.Abs(got-1) > 1e-15 {
		t.Errorf("even fairness = %v, want 1", got)
	}
}

// staticSource is a canned ClusterSource.
type staticSource struct{ t ClusterTargets }

func (s staticSource) FleetClusterState() ClusterTargets { return s.t }

func TestClusterView(t *testing.T) {
	src := staticSource{ClusterTargets{
		Members: [][]int{{0, 1}, {2, 3}},
		Theta:   []float64{0.75, 0.25},
		Drift:   []float64{0.1, 0.2},
	}}
	r := NewRegistry(4, Options{Source: src})
	r.ObserveRound(RoundObservation{Round: 0, Selected: []int{0, 1, 2}})
	st := r.State()
	if len(st.Clusters) != 2 {
		t.Fatalf("clusters = %+v", st.Clusters)
	}
	c0, c1 := st.Clusters[0], st.Clusters[1]
	if math.Abs(c0.Share-2.0/3.0) > 1e-15 || math.Abs(c1.Share-1.0/3.0) > 1e-15 {
		t.Errorf("shares = %v, %v", c0.Share, c1.Share)
	}
	if c0.TargetShare != 0.75 || c1.Drift != 0.2 {
		t.Errorf("targets/drift = %+v", st.Clusters)
	}
	if !reflect.DeepEqual(c0.Members, []int{0, 1}) {
		t.Errorf("members = %v", c0.Members)
	}
}

func TestFleetHealthEvents(t *testing.T) {
	var sink telemetry.MemorySink
	src := staticSource{ClusterTargets{
		Members: [][]int{{0, 1}},
		Theta:   []float64{1},
		Drift:   []float64{0.3},
	}}
	r := NewRegistry(2, Options{Tracer: &sink, Source: src})
	r.ObserveRound(RoundObservation{Round: 5, Selected: []int{0}, Clock: 7.5})
	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	fleetEv, clusterEv := evs[0], evs[1]
	if fleetEv.Kind != telemetry.KindFleetHealth || fleetEv.Cluster != -1 ||
		fleetEv.Round != 5 || fleetEv.Clock != 7.5 || fleetEv.Fairness != 0.5 {
		t.Errorf("fleet event = %+v", fleetEv)
	}
	if clusterEv.Cluster != 0 || clusterEv.Share != 1 || clusterEv.Theta != 1 || clusterEv.Drift != 0.3 {
		t.Errorf("cluster event = %+v", clusterEv)
	}
}

func TestFleetGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	src := staticSource{ClusterTargets{
		Members: [][]int{{0}},
		Theta:   []float64{1},
		Drift:   []float64{0.25},
	}}
	r := NewRegistry(2, Options{Metrics: reg, Source: src})
	r.ObserveRound(RoundObservation{Round: 0, Selected: []int{0}})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"haccs_fleet_fairness_jain 0.5",
		`haccs_fleet_cluster_share{cluster="0"} 1`,
		`haccs_fleet_cluster_target_share{cluster="0"} 1`,
		`haccs_fleet_cluster_drift{cluster="0"} 0.25`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// feed replays a fixed deterministic round history into a registry.
func feed(r *Registry, from, to int) {
	for round := from; round < to; round++ {
		obs := RoundObservation{
			Round:    round,
			Selected: []int{round % 3, (round + 1) % 3},
			Reports: []ClientReport{
				{ClientID: round % 3, Loss: 1.0 / float64(round+1), NumSamples: 5, VirtualSec: float64(round%7) + 0.5},
			},
			Clock: float64(round + 1),
		}
		if round%4 == 0 {
			obs.Cut = []int{(round + 1) % 3}
		} else {
			obs.Reports = append(obs.Reports, ClientReport{
				ClientID: (round + 1) % 3, NumSamples: 3, VirtualSec: float64(round%5) + 1.5,
			})
		}
		r.ObserveRound(obs)
	}
}

func TestSnapshotRestoreBitIdentical(t *testing.T) {
	ref := NewRegistry(3, Options{})
	feed(ref, 0, 20)

	// Second registry: same history up to round 8, snapshot, restore
	// into a third, continue both to 20.
	a := NewRegistry(3, Options{})
	feed(a, 0, 8)
	snap, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	b := NewRegistry(3, Options{})
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	feed(b, 8, 20)

	want, err := ref.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("restored registry diverged from uninterrupted run")
	}
	if !reflect.DeepEqual(ref.State(), b.State()) {
		t.Error("State() snapshots differ")
	}
}

func TestRestoreRejectsRosterMismatch(t *testing.T) {
	a := NewRegistry(3, Options{})
	snap, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	b := NewRegistry(4, Options{})
	if err := b.RestoreState(snap); err == nil {
		t.Error("restore across roster sizes did not fail")
	}
}

func TestConcurrentStateAndObserve(t *testing.T) {
	r := NewRegistry(8, Options{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		feed(r, 0, 200)
	}()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
			_ = r.State()
			_, _ = r.SnapshotState()
		}
	}
}

func TestValidStats(t *testing.T) {
	cases := []struct {
		name string
		s    *ClientStats
		want bool
	}{
		{"nil", nil, true},
		{"ok", &ClientStats{TrainWallSec: 1, Samples: 10, Loss: 0.5, Epochs: 1}, true},
		{"zero wall", &ClientStats{Samples: 1}, true},
		{"nan wall", &ClientStats{TrainWallSec: math.NaN(), Samples: 1}, false},
		{"neg wall", &ClientStats{TrainWallSec: -1, Samples: 1}, false},
		{"inf wall", &ClientStats{TrainWallSec: math.Inf(1), Samples: 1}, false},
		{"zero samples", &ClientStats{TrainWallSec: 1}, false},
		{"inf loss", &ClientStats{TrainWallSec: 1, Samples: 1, Loss: math.Inf(-1)}, false},
		{"neg epochs", &ClientStats{TrainWallSec: 1, Samples: 1, Epochs: -1}, false},
	}
	for _, c := range cases {
		if got := ValidStats(c.s); got != c.want {
			t.Errorf("%s: ValidStats = %v, want %v", c.name, got, c.want)
		}
	}
}
