package fleet

import (
	"fmt"
	"io"
	"sort"

	"haccs/internal/telemetry"
)

// WriteReplaySummary reconstructs a fleet health summary from a
// recorded JSONL event stream (cmd/haccs-trace drives it): top
// stragglers aggregated from the per-round selection/cut/failure
// events, the fairness trajectory and the per-cluster drift timeline
// from the fleet_health records.
func WriteReplaySummary(w io.Writer, events []telemetry.Event) {
	type tally struct{ selected, cut, failed, buffered, stale int }
	perClient := map[int]*tally{}
	get := func(id int) *tally {
		t, ok := perClient[id]
		if !ok {
			t = &tally{}
			perClient[id] = t
		}
		return t
	}
	type fairPoint struct {
		round    int
		fairness float64
	}
	var fairness []fairPoint
	drift := map[int][]fairPoint{} // cluster -> (round, drift)

	for _, e := range events {
		switch e.Kind {
		case telemetry.KindSelection:
			for _, id := range e.Clients {
				get(id).selected++
			}
		case telemetry.KindStragglerCut:
			for _, id := range e.Clients {
				get(id).cut++
			}
		case telemetry.KindClientFailed:
			for _, id := range e.Clients {
				get(id).failed++
			}
		case telemetry.KindUpdateBuffered:
			get(e.Client).buffered++
		case telemetry.KindUpdateStale:
			get(e.Client).stale++
		case telemetry.KindFleetHealth:
			if e.Cluster < 0 {
				fairness = append(fairness, fairPoint{e.Round, e.Fairness})
			} else {
				drift[e.Cluster] = append(drift[e.Cluster], fairPoint{e.Round, e.Drift})
			}
		}
	}

	fmt.Fprintf(w, "== fleet summary ==\n")

	// Top stragglers: clients ranked by discarded work (deadline cuts
	// plus mid-round failures).
	type row struct {
		id                    int
		selected, cut, failed int
	}
	var rows []row
	for id, t := range perClient {
		if t.cut+t.failed > 0 {
			rows = append(rows, row{id, t.selected, t.cut, t.failed})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if a, b := rows[i].cut+rows[i].failed, rows[j].cut+rows[j].failed; a != b {
			return a > b
		}
		return rows[i].id < rows[j].id
	})
	if len(rows) == 0 {
		fmt.Fprintf(w, "\nno straggler cuts or failures recorded\n")
	} else {
		const topN = 10
		fmt.Fprintf(w, "\ntop stragglers (of %d affected clients):\n", len(rows))
		fmt.Fprintf(w, "%6s %8s %6s %6s %9s\n", "client", "selected", "cut", "failed", "cut_rate")
		for i, r := range rows {
			if i == topN {
				break
			}
			rate := 0.0
			if r.selected > 0 {
				rate = float64(r.cut+r.failed) / float64(r.selected)
			}
			fmt.Fprintf(w, "%6d %8d %6d %6d %9.3f\n", r.id, r.selected, r.cut, r.failed, rate)
		}
	}

	// Async runs: buffered-update and stale-drop totals per client (the
	// async analogue of the straggler table — a chronically stale client
	// is the async run's straggler).
	type asyncRow struct{ id, buffered, stale int }
	var asyncRows []asyncRow
	for id, t := range perClient {
		if t.buffered+t.stale > 0 {
			asyncRows = append(asyncRows, asyncRow{id, t.buffered, t.stale})
		}
	}
	if len(asyncRows) > 0 {
		sort.Slice(asyncRows, func(i, j int) bool {
			if asyncRows[i].stale != asyncRows[j].stale {
				return asyncRows[i].stale > asyncRows[j].stale
			}
			return asyncRows[i].id < asyncRows[j].id
		})
		const topN = 10
		fmt.Fprintf(w, "\nasync update activity (%d clients, most stale-dropped first):\n", len(asyncRows))
		fmt.Fprintf(w, "%6s %9s %6s\n", "client", "buffered", "stale")
		for i, r := range asyncRows {
			if i == topN {
				break
			}
			fmt.Fprintf(w, "%6d %9d %6d\n", r.id, r.buffered, r.stale)
		}
	}

	if len(fairness) == 0 && len(drift) == 0 {
		fmt.Fprintf(w, "\nno fleet_health events recorded (run with fleet telemetry enabled)\n")
		return
	}

	if len(fairness) > 0 {
		fmt.Fprintf(w, "\nfairness trajectory (Jain's index):\n")
		for _, p := range samplePoints(fairness, 12) {
			fmt.Fprintf(w, "  round %5d  %.4f\n", p.round, p.fairness)
		}
	}

	if len(drift) > 0 {
		ids := make([]int, 0, len(drift))
		for c := range drift {
			ids = append(ids, c)
		}
		sort.Ints(ids)
		fmt.Fprintf(w, "\ncluster drift timeline (Hellinger vs. cluster-time centroid):\n")
		for _, c := range ids {
			pts := samplePoints(drift[c], 6)
			fmt.Fprintf(w, "  cluster %d:", c)
			for _, p := range pts {
				fmt.Fprintf(w, "  r%d=%.4f", p.round, p.fairness)
			}
			fmt.Fprintf(w, "\n")
		}
	}
}

// samplePoints thins a trajectory to at most n evenly spaced points,
// always keeping the first and last.
func samplePoints[T any](pts []T, n int) []T {
	if len(pts) <= n || n < 2 {
		return pts
	}
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*(len(pts)-1)/(n-1)])
	}
	return out
}
