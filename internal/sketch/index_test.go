package sketch

import (
	"math"
	"testing"

	"haccs/internal/stats"
)

// groupedSketches builds nClients sketches drawn from nGroups well-
// separated base distributions with small per-client jitter, plus the
// ground-truth group of each client.
func groupedSketches(t *testing.T, nClients, nGroups int) ([][]float64, []int) {
	t.Helper()
	rng := stats.NewRNG(21)
	s := New(Config{Dim: 64, Seed: 5})
	const width = 32
	bases := make([][]float64, nGroups)
	for g := range bases {
		p := make([]float64, width)
		// Disjoint dominant coordinates keep groups far apart in
		// Hellinger distance.
		for i := range p {
			p[i] = 0.01
		}
		p[g%width] = 1.0
		bases[g] = p
	}
	sketches := make([][]float64, nClients)
	truth := make([]int, nClients)
	for c := 0; c < nClients; c++ {
		g := c % nGroups
		truth[c] = g
		p := make([]float64, width)
		total := 0.0
		for i := range p {
			p[i] = bases[g][i] * math.Exp(rng.Normal(0, 0.02))
			total += p[i]
		}
		for i := range p {
			p[i] = math.Sqrt(p[i] / total)
		}
		sketches[c] = s.Sketch(p)
	}
	return sketches, truth
}

// TestLeaderIndexGrouping: clients from G well-separated distributions
// must collapse onto close to G representatives, with every client's
// representative shared only by clients of its own group.
func TestLeaderIndexGrouping(t *testing.T) {
	const nClients, nGroups = 200, 5
	sketches, truth := groupedSketches(t, nClients, nGroups)
	idx := NewIndex(nClients, 64, DefaultAttachRadius, nil)
	for c, sk := range sketches {
		idx.Observe(c, sk)
	}
	if k := idx.Len(); k < nGroups || k > 3*nGroups {
		t.Fatalf("index built %d representatives for %d groups, want within [%d, %d]", k, nGroups, nGroups, 3*nGroups)
	}
	// Each representative must be pure: all its members from one group.
	repGroup := make(map[int]int)
	for c := 0; c < nClients; c++ {
		r := idx.Assignment(c)
		if r < 0 {
			t.Fatalf("client %d unassigned", c)
		}
		if g, seen := repGroup[r]; seen && g != truth[c] {
			t.Fatalf("representative %d mixes groups %d and %d", r, g, truth[c])
		} else if !seen {
			repGroup[r] = truth[c]
		}
	}
	// Counts must total the client population.
	total := 0
	for r := 0; r < idx.Len(); r++ {
		total += idx.Count(r)
	}
	if total != nClients {
		t.Fatalf("representative counts sum to %d, want %d", total, nClients)
	}
}

// TestObserveReassign: re-observing a client with a different sketch
// must move its assignment and keep counts consistent.
func TestObserveReassign(t *testing.T) {
	sketches, _ := groupedSketches(t, 10, 2)
	idx := NewIndex(10, 64, DefaultAttachRadius, nil)
	for c, sk := range sketches {
		idx.Observe(c, sk)
	}
	before := idx.Assignment(0)
	// Client 0 (group 0) now reports group-1 data (client 1's sketch).
	rep, created := idx.Observe(0, sketches[1])
	if created {
		t.Fatal("reassignment to an existing neighbourhood created a new representative")
	}
	if rep == before {
		t.Fatal("re-observation with different data did not move the assignment")
	}
	if rep != idx.Assignment(1) {
		t.Fatalf("client 0 moved to rep %d, want client 1's rep %d", rep, idx.Assignment(1))
	}
	total := 0
	for r := 0; r < idx.Len(); r++ {
		if idx.Count(r) < 0 {
			t.Fatalf("representative %d has negative count", r)
		}
		total += idx.Count(r)
	}
	if total != 10 {
		t.Fatalf("counts sum to %d after reassignment, want 10", total)
	}
}

// TestNearestZeroAlloc: the O(K·Dim) nearest-representative scan is the
// per-client steady-state cost and must not allocate.
func TestNearestZeroAlloc(t *testing.T) {
	sketches, _ := groupedSketches(t, 100, 4)
	idx := NewIndex(100, 64, DefaultAttachRadius, nil)
	for c, sk := range sketches {
		idx.Observe(c, sk)
	}
	probe := sketches[0]
	if allocs := testing.AllocsPerRun(100, func() { idx.Nearest(probe) }); allocs != 0 {
		t.Fatalf("Nearest allocated %v times per run, want 0", allocs)
	}
}

// TestIndexSnapshotRoundTrip: Snapshot→Restore must reproduce the index
// bit-for-bit, and a restored index must make identical decisions on
// subsequent observations.
func TestIndexSnapshotRoundTrip(t *testing.T) {
	sketches, _ := groupedSketches(t, 50, 3)
	idx := NewIndex(50, 64, 0, nil)
	for c := 0; c < 40; c++ {
		idx.Observe(c, sketches[c])
	}
	blob, err := idx.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored := NewIndex(50, 64, 0, nil)
	if err := restored.Restore(blob); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Len() != idx.Len() || restored.AttachRadius() != idx.AttachRadius() {
		t.Fatalf("restored index shape (%d reps, radius %v) != original (%d, %v)",
			restored.Len(), restored.AttachRadius(), idx.Len(), idx.AttachRadius())
	}
	for r := 0; r < idx.Len(); r++ {
		a, b := idx.Rep(r), restored.Rep(r)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("representative %d coordinate %d differs after restore", r, i)
			}
		}
	}
	// The remaining clients must be routed identically by both indexes.
	for c := 40; c < 50; c++ {
		r1, n1 := idx.Observe(c, sketches[c])
		r2, n2 := restored.Observe(c, sketches[c])
		if r1 != r2 || n1 != n2 {
			t.Fatalf("client %d diverged after restore: (%d,%v) vs (%d,%v)", c, r1, n1, r2, n2)
		}
	}
}

// TestRestoreRejectsMismatch: restoring across a changed sketch width or
// client count must fail loudly rather than corrupt geometry.
func TestRestoreRejectsMismatch(t *testing.T) {
	idx := NewIndex(10, 64, 0, nil)
	idx.Observe(0, make([]float64, 64))
	blob, err := idx.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := NewIndex(10, 32, 0, nil).Restore(blob); err == nil {
		t.Fatal("Restore accepted a snapshot with mismatched sketch width")
	}
	if err := NewIndex(11, 64, 0, nil).Restore(blob); err == nil {
		t.Fatal("Restore accepted a snapshot with mismatched client count")
	}
}
