package sketch

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// DefaultAttachRadius is the sketch-space Hellinger radius within which
// a client attaches to an existing representative instead of founding a
// new one. Same-distribution clients sampled from a few hundred
// examples land within ~0.05–0.08 of each other (multinomial sampling
// noise), while distinct label mixtures sit several tenths apart, so
// 0.1 absorbs sampling noise into a handful of representatives per
// distribution without ever merging distributions a density-based
// extraction would separate.
const DefaultAttachRadius = 0.1

// Index is the representative layer of the sketch clustering pipeline:
// a greedy ε-net (leader algorithm) over sketch space. The first client
// seen in any neighbourhood founds a representative holding a verbatim
// copy of its sketch; every later client within AttachRadius assigns to
// the nearest representative in O(K·Dim) — no pairwise structure, no
// global recomputation on churn. Density-based clustering then runs
// over the K representatives only, and a client's cluster is its
// representative's cluster.
//
// Determinism: representatives depend only on the order clients are
// Observed, so callers feed clients in a canonical order (ascending ID)
// and the index is bit-stable — the property the checkpoint layer's
// bit-identical resume contract relies on.
type Index struct {
	dim    int
	attach float64   // attach radius on the [0,1] sketch-distance scale
	metric Metric    // nil selects the Euclidean/√2 Hellinger estimate
	reps   []float64 // K·dim flat representative sketches, append-only
	counts []int     // members currently assigned to each representative
	assign []int     // client -> representative (-1 while unseen)
}

// Metric is a custom dissimilarity over encoded vectors, for callers
// whose sketch layout carries more than a flat amplitude embedding
// (e.g. per-class blocks plus prevalence masses). Implementations must
// return values in [0, 1], be symmetric, and not allocate — Nearest
// runs them once per representative on the steady-state path.
type Metric interface {
	Distance(a, b []float64) float64
}

// NewIndex builds an empty index over nClients slots. attachRadius <= 0
// selects DefaultAttachRadius; a nil metric selects the default
// Euclidean/√2 sketch distance. The metric is part of the index's
// construction, not its serialized state — Restore keeps whatever the
// receiving index was built with.
func NewIndex(nClients, dim int, attachRadius float64, metric Metric) *Index {
	if dim <= 0 {
		panic("sketch: NewIndex with non-positive dim")
	}
	if attachRadius <= 0 {
		attachRadius = DefaultAttachRadius
	}
	idx := &Index{dim: dim, attach: attachRadius, metric: metric, assign: make([]int, nClients)}
	for i := range idx.assign {
		idx.assign[i] = -1
	}
	return idx
}

// Len returns the number of representatives K.
func (x *Index) Len() int { return len(x.counts) }

// NumClients returns the number of client slots.
func (x *Index) NumClients() int { return len(x.assign) }

// AttachRadius returns the radius within which clients attach to an
// existing representative.
func (x *Index) AttachRadius() float64 { return x.attach }

// Rep returns a read-only view of representative r's sketch.
func (x *Index) Rep(r int) []float64 { return x.reps[r*x.dim : (r+1)*x.dim] }

// Count returns how many clients are currently assigned to
// representative r.
func (x *Index) Count(r int) int { return x.counts[r] }

// Assignment returns client c's representative, or -1 if the client has
// never been observed.
func (x *Index) Assignment(c int) int { return x.assign[c] }

// Nearest scans the representatives for the one closest to sk and
// returns its id and distance on the [0,1] sketch scale. It allocates
// nothing — the steady-state assignment cost is one O(K·Dim) scan.
// Returns (-1, +Inf) on an empty index.
func (x *Index) Nearest(sk []float64) (rep int, dist float64) {
	if x.metric != nil {
		best, bestD := -1, math.Inf(1)
		for r := 0; r < len(x.counts); r++ {
			d := x.metric.Distance(x.reps[r*x.dim:(r+1)*x.dim], sk)
			if d < bestD {
				best, bestD = r, d
			}
		}
		return best, bestD
	}
	best, bestSq := -1, math.Inf(1)
	for r := 0; r < len(x.counts); r++ {
		d := DistanceSq(x.reps[r*x.dim:(r+1)*x.dim], sk)
		if d < bestSq {
			best, bestSq = r, d
		}
	}
	if best == -1 {
		return -1, math.Inf(1)
	}
	d := math.Sqrt(bestSq) / math.Sqrt2
	if d > 1 {
		d = 1
	}
	return best, d
}

// RepDistance returns the configured metric's distance between two
// representatives — the pairwise kernel the K×K representative
// clustering runs on.
func (x *Index) RepDistance(r1, r2 int) float64 {
	a, b := x.Rep(r1), x.Rep(r2)
	if x.metric != nil {
		return x.metric.Distance(a, b)
	}
	return Distance(a, b)
}

// Observe assigns client c to the nearest representative within the
// attach radius, founding a new representative from a copy of sk when
// none is close enough (or when the index is empty). It returns the
// representative id and whether it was newly created. Re-observing a
// client (a §IV-C summary update) moves its assignment and adjusts the
// member counts.
func (x *Index) Observe(c int, sk []float64) (rep int, created bool) {
	if len(sk) != x.dim {
		panic(fmt.Sprintf("sketch: Observe sketch width %d, index width %d", len(sk), x.dim))
	}
	rep, dist := x.Nearest(sk)
	if rep == -1 || dist > x.attach {
		rep = len(x.counts)
		x.reps = append(x.reps, sk...)
		x.counts = append(x.counts, 0)
		created = true
	}
	if prev := x.assign[c]; prev >= 0 {
		x.counts[prev]--
	}
	x.assign[c] = rep
	x.counts[rep]++
	return rep, created
}

// indexState is the gob payload behind Snapshot/Restore. Exported
// fields for gob.
type indexState struct {
	Dim    int
	Attach float64
	Reps   []float64
	Counts []int
	Assign []int
}

// Snapshot serializes the index — representative sketches verbatim, so
// a resumed run's future Observe calls see bit-identical geometry.
func (x *Index) Snapshot() ([]byte, error) {
	st := indexState{
		Dim:    x.dim,
		Attach: x.attach,
		Reps:   x.reps,
		Counts: x.counts,
		Assign: x.assign,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("sketch: encode index: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore overwrites the index from a Snapshot payload. The index must
// have been constructed over the same client count and sketch width as
// the run that produced the snapshot.
func (x *Index) Restore(data []byte) error {
	var st indexState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("sketch: decode index: %w", err)
	}
	if st.Dim != x.dim {
		return fmt.Errorf("sketch: snapshot sketch width %d, index width %d", st.Dim, x.dim)
	}
	if len(st.Assign) != len(x.assign) {
		return fmt.Errorf("sketch: snapshot for %d clients, index has %d", len(st.Assign), len(x.assign))
	}
	if len(st.Reps) != st.Dim*len(st.Counts) {
		return fmt.Errorf("sketch: corrupt snapshot: %d rep floats for %d representatives of width %d",
			len(st.Reps), len(st.Counts), st.Dim)
	}
	x.attach = st.Attach
	x.reps = st.Reps
	x.counts = st.Counts
	x.assign = st.Assign
	return nil
}
