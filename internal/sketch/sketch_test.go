package sketch

import (
	"math"
	"testing"

	"haccs/internal/stats"
)

// randomAmplitude draws a Dirichlet probability vector and returns its
// Hellinger embedding √p (unit L2 norm). Low alpha concentrates mass on
// few coordinates, mimicking skewed non-IID client distributions.
func randomAmplitude(rng *stats.RNG, dim int, alpha float64) []float64 {
	p := rng.Dirichlet(dim, alpha)
	for i, v := range p {
		p[i] = math.Sqrt(v)
	}
	return p
}

// TestExactEmbedding: inputs no wider than the sketch must round-trip
// with bit-identical distances — the zero-distortion contract the
// dense/sketch equivalence test leans on for label histograms.
func TestExactEmbedding(t *testing.T) {
	rng := stats.NewRNG(7)
	s := New(Config{Dim: 128, Seed: 42})
	for trial := 0; trial < 50; trial++ {
		a := randomAmplitude(rng, 10, 0.5)
		b := randomAmplitude(rng, 10, 0.5)
		want := stats.AmplitudeDistance(a, b)
		got := Distance(s.Sketch(a), s.Sketch(b))
		if got != want {
			t.Fatalf("trial %d: exact embed distance %v, want bit-identical %v", trial, got, want)
		}
	}
}

// TestProjectionFidelity pins the sketch's approximation guarantee: for
// inputs wide enough to force the sparse projection (640 → 256, a 2.5×
// compression), sketch distance must track exact Hellinger within
// ε = 0.1 absolute on the [0,1] scale per pair, and within 0.03 on
// average. At Dim=256 the estimator's standard error on squared norms
// is √(2/Dim) ≈ 9%, roughly halved by the square root; the observed
// errors (mean 0.02, max 0.08 over this seeded sweep) sit comfortably
// inside the bounds, and the test is fully seeded, so it is
// deterministic.
func TestProjectionFidelity(t *testing.T) {
	const (
		inputDim = 640 // 20 classes × 32 feature bins: a realistic PXY width
		pairs    = 200
		epsPair  = 0.1
		epsMean  = 0.03
	)
	rng := stats.NewRNG(11)
	s := New(Config{Dim: 256, Seed: 99})
	sumErr, maxErr := 0.0, 0.0
	for trial := 0; trial < pairs; trial++ {
		// Mix concentrations so the test covers near-uniform and skewed
		// distributions (small and large true distances).
		alpha := []float64{0.05, 0.3, 1.0, 5.0}[trial%4]
		a := randomAmplitude(rng, inputDim, alpha)
		b := randomAmplitude(rng, inputDim, alpha)
		want := stats.AmplitudeDistance(a, b)
		got := Distance(s.Sketch(a), s.Sketch(b))
		err := math.Abs(got - want)
		sumErr += err
		if err > maxErr {
			maxErr = err
		}
		if err > epsPair {
			t.Fatalf("trial %d: sketch distance %.4f vs exact Hellinger %.4f, |err| %.4f > %v",
				trial, got, want, err, epsPair)
		}
	}
	if mean := sumErr / pairs; mean > epsMean {
		t.Fatalf("mean |err| %.4f > %v (max %.4f)", mean, epsMean, maxErr)
	}
	t.Logf("projection fidelity over %d pairs: mean |err| %.4f, max %.4f", pairs, sumErr/pairs, maxErr)
}

// TestSketchDeterminism: equal (Dim, Seed) must give bit-identical
// sketches across Sketcher instances — the property checkpoint resume
// relies on.
func TestSketchDeterminism(t *testing.T) {
	rng := stats.NewRNG(3)
	amp := randomAmplitude(rng, 500, 0.5)
	s1 := New(Config{Dim: 64, Seed: 1234})
	s2 := New(Config{Dim: 64, Seed: 1234})
	a, b := s1.Sketch(amp), s2.Sketch(amp)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coordinate %d differs across identically configured sketchers: %v vs %v", i, a[i], b[i])
		}
	}
	s3 := New(Config{Dim: 64, Seed: 1235})
	c := s3.Sketch(amp)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical projections")
	}
}

// TestNormPreservation: the projection must preserve the unit L2 norm of
// amplitude vectors in expectation; a systematic norm bias would bias
// every distance.
func TestNormPreservation(t *testing.T) {
	rng := stats.NewRNG(5)
	s := New(Config{Dim: 128, Seed: 7})
	sum := 0.0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		amp := randomAmplitude(rng, 400, 0.5)
		sk := s.Sketch(amp)
		n := 0.0
		for _, v := range sk {
			n += v * v
		}
		sum += n
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean sketched squared norm %.4f, want ≈ 1", mean)
	}
}

func TestDimRounding(t *testing.T) {
	if got := New(Config{Dim: 130}).Dim(); got != 132 {
		t.Fatalf("Dim 130 rounded to %d, want 132 (multiple of sparsity)", got)
	}
	if got := New(Config{}).Dim(); got != DefaultDim {
		t.Fatalf("zero Dim gave %d, want DefaultDim %d", got, DefaultDim)
	}
}

// TestSketchIntoZeroAlloc: the steady-state assignment path must not
// allocate.
func TestSketchIntoZeroAlloc(t *testing.T) {
	rng := stats.NewRNG(9)
	amp := randomAmplitude(rng, 400, 0.5)
	s := New(Config{Dim: 128, Seed: 1})
	dst := make([]float64, s.Dim())
	if allocs := testing.AllocsPerRun(100, func() { s.SketchInto(dst, amp) }); allocs != 0 {
		t.Fatalf("SketchInto allocated %v times per run, want 0", allocs)
	}
}
