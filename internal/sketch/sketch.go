// Package sketch compresses client distribution summaries into small
// fixed-size vectors whose Euclidean geometry approximates the Hellinger
// geometry of the original distributions, and maintains the
// representative index that turns clustering from an O(N²) pairwise
// problem into O(N·K) incremental assignments against K ≪ N
// representatives.
//
// The pipeline exploits the Hellinger identity
//
//	H(p, q) = (1/√2) · ‖√p − √q‖₂
//
// so a distribution's "amplitude" vector √p (unit L2 norm) embeds the
// Hellinger metric isometrically into Euclidean space, where linear
// dimensionality reduction applies. A Sketcher maps amplitude vectors of
// any input width to a fixed Dim-wide sketch: inputs that already fit
// are embedded exactly (zero distortion — the common case for label
// histograms), larger inputs pass through a seeded sparse ±1 projection
// (sparse Johnson–Lindenstrauss / count-sketch compaction) that
// preserves pairwise distances within a small relative error. The
// projection is a pure function of (seed, input width), so sketches are
// bit-stable across processes, runs and checkpoint resumes.
//
// Distance between sketches is ‖a−b‖₂/√2 clamped to [0, 1] — exactly
// Hellinger for exactly-embedded inputs, an unbiased low-variance
// estimate of it otherwise (pinned by the fidelity property test).
package sketch

import (
	"fmt"
	"math"
)

// DefaultDim is the default sketch width. Label histograms (tens of
// classes) embed exactly at this size; class-conditional feature
// summaries (hundreds of cells) compress ~3–5× with a distance error a
// few percent of the [0,1] scale.
const DefaultDim = 128

// sparsity is the number of ±1 entries per input column of the sparse
// projection (Kane–Nelson style: the sketch splits into sparsity blocks
// and each input coordinate lands once per block). More nonzeros cut
// estimator variance ∝ 1/Dim regardless, but spreading each coordinate
// over several blocks removes the heavy tail a single-hash count sketch
// suffers when two big coordinates collide.
const sparsity = 4

// Config parameterizes a Sketcher.
type Config struct {
	// Dim is the sketch width (0 selects DefaultDim). Must be a multiple
	// of the internal block count; Dim values that are not are rounded
	// up by New.
	Dim int
	// Seed drives the projection hashes. Two Sketchers with equal
	// (Dim, Seed) produce bit-identical sketches for equal inputs.
	Seed uint64
}

// Sketcher maps amplitude vectors to fixed-size sketches.
type Sketcher struct {
	dim  int
	seed uint64
}

// New builds a Sketcher. Dim is rounded up to a multiple of the
// projection sparsity so the block decomposition is exact.
func New(cfg Config) *Sketcher {
	dim := cfg.Dim
	if dim <= 0 {
		dim = DefaultDim
	}
	if r := dim % sparsity; r != 0 {
		dim += sparsity - r
	}
	return &Sketcher{dim: dim, seed: cfg.Seed}
}

// Dim returns the sketch width.
func (s *Sketcher) Dim() int { return s.dim }

// Sketch allocates and returns the sketch of one amplitude vector.
func (s *Sketcher) Sketch(amp []float64) []float64 {
	dst := make([]float64, s.dim)
	s.SketchInto(dst, amp)
	return dst
}

// SketchInto writes the sketch of amp into dst (len(dst) must equal
// Dim) without allocating — the steady-state assignment path. Inputs no
// wider than the sketch are embedded exactly (copy + zero pad), so
// sketch distances for them are bit-identical to exact Hellinger;
// wider inputs go through the seeded sparse projection.
func (s *Sketcher) SketchInto(dst, amp []float64) {
	if len(dst) != s.dim {
		panic(fmt.Sprintf("sketch: SketchInto dst width %d, sketch width %d", len(dst), s.dim))
	}
	if len(amp) <= s.dim {
		copy(dst, amp)
		for i := len(amp); i < s.dim; i++ {
			dst[i] = 0
		}
		return
	}
	for i := range dst {
		dst[i] = 0
	}
	block := s.dim / sparsity
	// invSqrtS scales each of the sparsity copies so the projection
	// preserves squared norms in expectation.
	invSqrtS := 1 / math.Sqrt(sparsity)
	base := s.seed ^ mix(uint64(len(amp)))
	for i, v := range amp {
		if v == 0 {
			continue // amplitude vectors of sparse histograms are mostly zero
		}
		h := mix(base ^ mix(uint64(i)))
		for b := 0; b < sparsity; b++ {
			// Each 16-bit nibble of the hash drives one block's cell and
			// sign; block widths beyond 32768 would need a wider draw,
			// far past any sensible sketch size.
			bits := h >> (16 * b)
			cell := int(bits&0x7fff) % block
			if bits&0x8000 != 0 {
				dst[b*block+cell] += v * invSqrtS
			} else {
				dst[b*block+cell] -= v * invSqrtS
			}
		}
	}
}

// mix is the splitmix64 finalizer: a bijective avalanche hash, the
// stateless source of every projection coordinate.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Distance returns the sketch-space Hellinger estimate ‖a−b‖₂/√2,
// clamped to [0, 1]. Nonnegative by construction, symmetric, and exact
// when both sketches came from exactly-embedded inputs.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sketch: Distance on sketches of different widths")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	h := math.Sqrt(sum) / math.Sqrt2
	if h > 1 {
		h = 1
	}
	return h
}

// DistanceSq returns the squared Euclidean sketch distance without the
// √/2 scaling or clamp — the comparison kernel the representative
// index's nearest-neighbour scans run on (one sqrt per query instead of
// one per candidate).
func DistanceSq(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
