package nn

import (
	"fmt"
	"math"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Sigmoid is the logistic activation, applied element-wise.
type Sigmoid struct {
	arena   tensor.Scratch
	lastOut *tensor.Dense
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer. The output is arena-owned and valid until
// the next Forward.
func (s *Sigmoid) Forward(x *tensor.Dense) *tensor.Dense {
	y := s.arena.Dense2D("y", x.Rows(), x.Cols())
	for i, v := range x.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.lastOut = y
	return y
}

// Backward implements Layer. The returned gradient is arena-owned and
// valid until the next Backward.
func (s *Sigmoid) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if s.lastOut == nil {
		panic("nn: Sigmoid.Backward before Forward")
	}
	g := s.arena.Dense2D("g", gradOut.Rows(), gradOut.Cols())
	for i, v := range gradOut.Data {
		o := s.lastOut.Data[i]
		g.Data[i] = v * (o * (1 - o))
	}
	return g
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Dense { return nil }

// ZeroGrads implements Layer.
func (s *Sigmoid) ZeroGrads() {}

// Clone implements Layer.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "Sigmoid" }

// Tanh is the hyperbolic-tangent activation, applied element-wise.
type Tanh struct {
	arena   tensor.Scratch
	lastOut *tensor.Dense
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer. The output is arena-owned and valid until
// the next Forward.
func (t *Tanh) Forward(x *tensor.Dense) *tensor.Dense {
	y := t.arena.Dense2D("y", x.Rows(), x.Cols())
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	t.lastOut = y
	return y
}

// Backward implements Layer. The returned gradient is arena-owned and
// valid until the next Backward.
func (t *Tanh) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if t.lastOut == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	g := t.arena.Dense2D("g", gradOut.Rows(), gradOut.Cols())
	for i, v := range gradOut.Data {
		o := t.lastOut.Data[i]
		g.Data[i] = v * (1 - o*o)
	}
	return g
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Dense { return nil }

// ZeroGrads implements Layer.
func (t *Tanh) ZeroGrads() {}

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "Tanh" }

// Dropout randomly zeroes a fraction of activations during training and
// scales the survivors by 1/(1-rate) (inverted dropout), so inference
// needs no rescaling. Train mode must be toggled explicitly; Clone
// returns a layer in inference mode.
type Dropout struct {
	Rate float64

	arena    tensor.Scratch
	training bool
	rng      *stats.RNG
	mask     []bool
}

// NewDropout constructs a dropout layer with the given drop rate in
// [0, 1) and a deterministic mask stream.
func NewDropout(rate float64, rng *stats.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// SetTraining toggles mask sampling; outside training the layer is the
// identity.
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Forward implements Layer. In training mode the output is arena-owned
// and valid until the next Forward; in inference mode it is x itself.
func (d *Dropout) Forward(x *tensor.Dense) *tensor.Dense {
	if !d.training || d.Rate == 0 {
		d.mask = nil
		return x
	}
	y := d.arena.Dense2D("y", x.Rows(), x.Cols())
	if cap(d.mask) < len(y.Data) {
		d.mask = make([]bool, len(y.Data))
	}
	d.mask = d.mask[:len(y.Data)]
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() < d.Rate {
			d.mask[i] = true
			y.Data[i] = 0
		} else {
			d.mask[i] = false
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward implements Layer. The returned gradient is arena-owned and
// valid until the next Backward (or gradOut itself in inference mode).
func (d *Dropout) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if d.mask == nil {
		return gradOut
	}
	g := d.arena.Dense2D("g", gradOut.Rows(), gradOut.Cols())
	scale := 1 / (1 - d.Rate)
	for i, v := range gradOut.Data {
		if d.mask[i] {
			g.Data[i] = 0
		} else {
			g.Data[i] = v * scale
		}
	}
	return g
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Dense { return nil }

// ZeroGrads implements Layer.
func (d *Dropout) ZeroGrads() {}

// Clone implements Layer.
func (d *Dropout) Clone() Layer { return &Dropout{Rate: d.Rate, rng: d.rng} }

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.Rate) }

// AvgPool2D is average pooling over flattened C×H×W rows with a square
// window.
type AvgPool2D struct {
	Geom tensor.ConvGeom // Kernel is the pool window; Pad must be 0.

	arena  tensor.Scratch
	lastIn int
}

// NewAvgPool2D constructs an average-pooling layer. geom.Pad must be 0.
func NewAvgPool2D(geom tensor.ConvGeom) *AvgPool2D {
	geom.Validate()
	if geom.Pad != 0 {
		panic("nn: AvgPool2D does not support padding")
	}
	return &AvgPool2D{Geom: geom}
}

// OutSize returns the flattened per-image output length.
func (p *AvgPool2D) OutSize() int { return p.Geom.Channels * p.Geom.OutHeight() * p.Geom.OutWidth() }

// InSize returns the flattened per-image input length.
func (p *AvgPool2D) InSize() int { return p.Geom.Channels * p.Geom.Height * p.Geom.Width }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Dense) *tensor.Dense {
	batch := x.Rows()
	if x.Cols() != p.InSize() {
		panic(fmt.Sprintf("nn: AvgPool2D input width %d, want %d", x.Cols(), p.InSize()))
	}
	p.lastIn = x.Cols()
	outH, outW := p.Geom.OutHeight(), p.Geom.OutWidth()
	y := p.arena.Dense2D("y", batch, p.OutSize())
	for b := 0; b < batch; b++ {
		in := x.Row(b)
		out := y.Row(b)
		for c := 0; c < p.Geom.Channels; c++ {
			chanBase := c * p.Geom.Height * p.Geom.Width
			outChan := c * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					sum, cnt := 0.0, 0
					for ky := 0; ky < p.Geom.Kernel; ky++ {
						iy := oy*p.Geom.Stride + ky
						if iy >= p.Geom.Height {
							continue
						}
						for kx := 0; kx < p.Geom.Kernel; kx++ {
							ix := ox*p.Geom.Stride + kx
							if ix >= p.Geom.Width {
								continue
							}
							sum += in[chanBase+iy*p.Geom.Width+ix]
							cnt++
						}
					}
					out[outChan+oy*outW+ox] = sum / float64(cnt)
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(gradOut *tensor.Dense) *tensor.Dense {
	batch := gradOut.Rows()
	outH, outW := p.Geom.OutHeight(), p.Geom.OutWidth()
	gradIn := p.arena.Dense2D("gradin", batch, p.lastIn)
	gradIn.Zero() // scratch is not zeroed, and the scatter accumulates
	for b := 0; b < batch; b++ {
		g := gradOut.Row(b)
		gi := gradIn.Row(b)
		for c := 0; c < p.Geom.Channels; c++ {
			chanBase := c * p.Geom.Height * p.Geom.Width
			outChan := c * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					// Count window size (handles edge truncation).
					cnt := 0
					for ky := 0; ky < p.Geom.Kernel; ky++ {
						if oy*p.Geom.Stride+ky >= p.Geom.Height {
							continue
						}
						for kx := 0; kx < p.Geom.Kernel; kx++ {
							if ox*p.Geom.Stride+kx < p.Geom.Width {
								cnt++
							}
						}
					}
					share := g[outChan+oy*outW+ox] / float64(cnt)
					for ky := 0; ky < p.Geom.Kernel; ky++ {
						iy := oy*p.Geom.Stride + ky
						if iy >= p.Geom.Height {
							continue
						}
						for kx := 0; kx < p.Geom.Kernel; kx++ {
							ix := ox*p.Geom.Stride + kx
							if ix >= p.Geom.Width {
								continue
							}
							gi[chanBase+iy*p.Geom.Width+ix] += share
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (p *AvgPool2D) Grads() []*tensor.Dense { return nil }

// ZeroGrads implements Layer.
func (p *AvgPool2D) ZeroGrads() {}

// Clone implements Layer.
func (p *AvgPool2D) Clone() Layer { return &AvgPool2D{Geom: p.Geom} }

// Name implements Layer.
func (p *AvgPool2D) Name() string {
	return fmt.Sprintf("AvgPool2D(k=%d,s=%d)", p.Geom.Kernel, p.Geom.Stride)
}
