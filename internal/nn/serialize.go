package nn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"haccs/internal/stats"
)

// Checkpoint is the serialized form of a model's parameters plus enough
// architecture metadata to validate compatibility on load. Only
// parameters travel — architecture is reconstructed from the Arch spec,
// mirroring how federated deployments ship weights, not graphs.
type Checkpoint struct {
	// Arch describes the model family the parameters belong to.
	Arch Arch
	// Params is the flat parameter vector (see Network.ParamsVector).
	Params []float64
	// Round optionally records the federated round that produced the
	// parameters.
	Round int
}

// ErrCorruptCheckpoint marks a checkpoint stream that could not be
// decoded: truncated file, torn write, or bytes that were never a gob
// checkpoint. Match with errors.Is.
var ErrCorruptCheckpoint = errors.New("nn: corrupt or truncated checkpoint")

// ArchMismatchError reports a checkpoint whose architecture stamp or
// parameter count does not match what the caller expects. Match with
// errors.As.
type ArchMismatchError struct {
	Got, Want Arch
	// GotParams/WantParams are filled when the architectures matched
	// but the stored vector has the wrong length (a checkpoint written
	// by an incompatible build, or silent truncation upstream).
	GotParams, WantParams int
}

func (e *ArchMismatchError) Error() string {
	if e.WantParams > 0 && e.GotParams != e.WantParams {
		return fmt.Sprintf("nn: checkpoint has %d params, architecture needs %d", e.GotParams, e.WantParams)
	}
	return fmt.Sprintf("nn: checkpoint architecture %+v does not match expected %+v", e.Got, e.Want)
}

// EncodeCheckpoint writes a parameter vector (with its architecture
// stamp) as a gob stream.
func EncodeCheckpoint(w io.Writer, arch Arch, params []float64, round int) error {
	cp := Checkpoint{Arch: arch, Params: params, Round: round}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return nil
}

// DecodeCheckpoint reads one checkpoint and validates it against the
// expected architecture, returning the stored parameter vector and
// round. wantParams, when positive, additionally pins the parameter
// count (architectures alone do not determine it without building the
// network). Decode failures wrap ErrCorruptCheckpoint; validation
// failures return an *ArchMismatchError.
func DecodeCheckpoint(r io.Reader, expect Arch, wantParams int) ([]float64, int, error) {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	if !archEqual(cp.Arch, expect) {
		return nil, 0, &ArchMismatchError{Got: cp.Arch, Want: expect}
	}
	if wantParams > 0 && len(cp.Params) != wantParams {
		return nil, 0, &ArchMismatchError{Got: cp.Arch, Want: expect, GotParams: len(cp.Params), WantParams: wantParams}
	}
	return cp.Params, cp.Round, nil
}

// SaveCheckpoint writes the network's parameters (with its architecture
// stamp) as a gob stream.
func SaveCheckpoint(w io.Writer, arch Arch, n *Network, round int) error {
	return EncodeCheckpoint(w, arch, n.ParamsVector(), round)
}

// LoadCheckpoint reads a checkpoint and validates it against the
// expected architecture; on success it returns a freshly built network
// holding the stored parameters and the recorded round. The RNG seeds
// the throwaway initialization that the stored parameters overwrite.
// Decode failures wrap ErrCorruptCheckpoint; architecture or
// parameter-count mismatches return an *ArchMismatchError.
func LoadCheckpoint(r io.Reader, expect Arch, seedRNG *stats.RNG) (*Network, int, error) {
	params, round, err := DecodeCheckpoint(r, expect, 0)
	if err != nil {
		return nil, 0, err
	}
	n := expect.Build(seedRNG)
	if len(params) != n.NumParams() {
		return nil, 0, &ArchMismatchError{Got: expect, Want: expect, GotParams: len(params), WantParams: n.NumParams()}
	}
	n.SetParamsVector(params)
	return n, round, nil
}

func archEqual(a, b Arch) bool {
	if a.Kind != b.Kind || a.In != b.In || a.Channels != b.Channels ||
		a.Height != b.Height || a.Width != b.Width || a.Classes != b.Classes ||
		a.ConvFilters != b.ConvFilters || len(a.Hidden) != len(b.Hidden) {
		return false
	}
	for i := range a.Hidden {
		if a.Hidden[i] != b.Hidden[i] {
			return false
		}
	}
	return true
}
