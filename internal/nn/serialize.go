package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"haccs/internal/stats"
)

// Checkpoint is the serialized form of a model's parameters plus enough
// architecture metadata to validate compatibility on load. Only
// parameters travel — architecture is reconstructed from the Arch spec,
// mirroring how federated deployments ship weights, not graphs.
type Checkpoint struct {
	// Arch describes the model family the parameters belong to.
	Arch Arch
	// Params is the flat parameter vector (see Network.ParamsVector).
	Params []float64
	// Round optionally records the federated round that produced the
	// parameters.
	Round int
}

// SaveCheckpoint writes the network's parameters (with its architecture
// stamp) as a gob stream.
func SaveCheckpoint(w io.Writer, arch Arch, n *Network, round int) error {
	cp := Checkpoint{Arch: arch, Params: n.ParamsVector(), Round: round}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint and validates it against the
// expected architecture; on success it returns a freshly built network
// holding the stored parameters and the recorded round. The RNG seeds
// the throwaway initialization that the stored parameters overwrite.
func LoadCheckpoint(r io.Reader, expect Arch, seedRNG *stats.RNG) (*Network, int, error) {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, 0, fmt.Errorf("nn: load checkpoint: %w", err)
	}
	if !archEqual(cp.Arch, expect) {
		return nil, 0, fmt.Errorf("nn: checkpoint architecture %+v does not match expected %+v", cp.Arch, expect)
	}
	n := expect.Build(seedRNG)
	if len(cp.Params) != n.NumParams() {
		return nil, 0, fmt.Errorf("nn: checkpoint has %d params, architecture needs %d", len(cp.Params), n.NumParams())
	}
	n.SetParamsVector(cp.Params)
	return n, cp.Round, nil
}

func archEqual(a, b Arch) bool {
	if a.Kind != b.Kind || a.In != b.In || a.Channels != b.Channels ||
		a.Height != b.Height || a.Width != b.Width || a.Classes != b.Classes ||
		a.ConvFilters != b.ConvFilters || len(a.Hidden) != len(b.Hidden) {
		return false
	}
	for i := range a.Hidden {
		if a.Hidden[i] != b.Hidden[i] {
			return false
		}
	}
	return true
}
