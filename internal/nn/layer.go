// Package nn is a from-scratch neural-network substrate sufficient to
// train the LeNet-style convolutional networks and multilayer perceptrons
// used in the HACCS evaluation. It provides dense, convolutional, pooling
// and activation layers with exact backpropagation, a softmax
// cross-entropy loss, minibatch SGD with momentum and weight decay, and
// flat parameter (de)serialization so federated averaging can treat a
// model as a single vector.
//
// The paper trains its models with PyTorch/PySyft; this package replaces
// that dependency with stdlib-only Go while preserving the property the
// evaluation depends on — real gradient descent whose loss and accuracy
// respond to the data distribution each client holds.
package nn

import (
	"fmt"
	"math"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward consumes a
// batch (rows are examples) and returns the batch output; Backward
// consumes the gradient of the loss with respect to the layer output and
// returns the gradient with respect to the layer input, accumulating
// parameter gradients internally.
//
// Layers are stateful across a Forward/Backward pair (they cache
// activations) and are therefore not safe for concurrent use; each
// simulated client owns its own model clone.
//
// Tensors returned by Forward and Backward are owned by the layer's
// scratch arena: a Forward result is valid until that layer's next
// Forward, a Backward result until its next Backward. Callers that need
// a result to outlive the next pass must copy it. Clone starts with a
// fresh, empty arena.
type Layer interface {
	// Forward computes the layer output for a batch.
	Forward(x *tensor.Dense) *tensor.Dense
	// Backward computes the input gradient given the output gradient.
	// It must be called after Forward on the same batch.
	Backward(gradOut *tensor.Dense) *tensor.Dense
	// Params returns the layer's parameter tensors (possibly empty).
	Params() []*tensor.Dense
	// Grads returns the parameter gradients, parallel to Params.
	Grads() []*tensor.Dense
	// ZeroGrads clears accumulated parameter gradients.
	ZeroGrads()
	// Clone returns a deep copy with independent parameters and no
	// cached activations.
	Clone() Layer
	// Name identifies the layer for diagnostics.
	Name() string
}

// Dense is a fully connected layer: y = xW + b, where x is (batch × in),
// W is (in × out) and b is broadcast over the batch.
type Dense struct {
	W, B   *tensor.Dense
	dW, dB *tensor.Dense
	arena  tensor.Scratch
	lastX  *tensor.Dense

	params, grads []*tensor.Dense // lazily built Params/Grads views
}

// NewDense constructs a fully connected layer with He-uniform initialized
// weights, the appropriate default for ReLU networks.
func NewDense(in, out int, rng *stats.RNG) *Dense {
	d := &Dense{
		W:  tensor.New(in, out),
		B:  tensor.New(1, out),
		dW: tensor.New(in, out),
		dB: tensor.New(1, out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	d.W.RandUniform(-limit, limit, rng)
	return d
}

// Forward implements Layer. The output is arena-owned and valid until
// the next Forward.
func (d *Dense) Forward(x *tensor.Dense) *tensor.Dense {
	d.lastX = x
	y := d.arena.Dense2D("y", x.Rows(), d.W.Cols())
	tensor.MatMulInto(y, x, d.W)
	rows, cols := y.Rows(), y.Cols()
	for i := 0; i < rows; i++ {
		row := y.Row(i)
		for j := 0; j < cols; j++ {
			row[j] += d.B.Data[j]
		}
	}
	return y
}

// Backward implements Layer. The returned gradient is arena-owned and
// valid until the next Backward.
func (d *Dense) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if d.lastX == nil {
		panic("nn: Dense.Backward before Forward")
	}
	// dW += xᵀ · gradOut ; dB += column sums ; dX = gradOut · Wᵀ.
	dw := d.arena.Dense2D("dw", d.W.Rows(), d.W.Cols())
	tensor.MatMulTransAInto(dw, d.lastX, gradOut)
	d.dW.Add(dw)
	rows, cols := gradOut.Rows(), gradOut.Cols()
	for i := 0; i < rows; i++ {
		row := gradOut.Row(i)
		for j := 0; j < cols; j++ {
			d.dB.Data[j] += row[j]
		}
	}
	dx := d.arena.Dense2D("dx", rows, d.W.Rows())
	tensor.MatMulTransBInto(dx, gradOut, d.W)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Dense {
	if d.params == nil {
		d.params = []*tensor.Dense{d.W, d.B}
	}
	return d.params
}

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Dense {
	if d.grads == nil {
		d.grads = []*tensor.Dense{d.dW, d.dB}
	}
	return d.grads
}

// ZeroGrads implements Layer.
func (d *Dense) ZeroGrads() { d.dW.Zero(); d.dB.Zero() }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		W:  d.W.Clone(),
		B:  d.B.Clone(),
		dW: tensor.New(d.W.Shape...),
		dB: tensor.New(d.B.Shape...),
	}
}

// Name implements Layer.
func (d *Dense) Name() string {
	return fmt.Sprintf("Dense(%d->%d)", d.W.Rows(), d.W.Cols())
}

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	arena tensor.Scratch
	mask  []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer. The output is arena-owned and valid until
// the next Forward.
func (r *ReLU) Forward(x *tensor.Dense) *tensor.Dense {
	y := r.arena.Dense2D("y", x.Rows(), x.Cols())
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			y.Data[i] = v
		} else {
			r.mask[i] = false
			y.Data[i] = 0
		}
	}
	return y
}

// Backward implements Layer. The returned gradient is arena-owned and
// valid until the next Backward.
func (r *ReLU) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if len(r.mask) != len(gradOut.Data) {
		panic("nn: ReLU.Backward shape mismatch with last Forward")
	}
	g := r.arena.Dense2D("g", gradOut.Rows(), gradOut.Cols())
	for i, v := range gradOut.Data {
		if r.mask[i] {
			g.Data[i] = v
		} else {
			g.Data[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Dense { return nil }

// ZeroGrads implements Layer.
func (r *ReLU) ZeroGrads() {}

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Flatten reshapes (batch × any...) input to (batch × rest); with the
// 2-D-batch convention used here it is the identity and exists to make
// network definitions read like their PyTorch counterparts.
type Flatten struct{}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Dense) *tensor.Dense { return x }

// Backward implements Layer.
func (f *Flatten) Backward(g *tensor.Dense) *tensor.Dense { return g }

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Dense { return nil }

// ZeroGrads implements Layer.
func (f *Flatten) ZeroGrads() {}

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }
