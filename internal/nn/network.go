package nn

import (
	"math"

	"haccs/internal/tensor"
)

// Network is an ordered stack of layers trained with softmax
// cross-entropy. It owns parameter flattening for federated averaging:
// ParamsVector/SetParamsVector view the whole model as one float64 slice.
type Network struct {
	Layers []Layer

	arena tensor.Scratch // backs LossGrad/Loss/Evaluate; per-network, not concurrency-safe
}

// NewNetwork builds a network from layers in forward order.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the batch through every layer and returns the logits.
func (n *Network) Forward(x *tensor.Dense) *tensor.Dense {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the loss gradient from the logits back through the
// stack, accumulating parameter gradients.
func (n *Network) Backward(gradLogits *tensor.Dense) {
	g := gradLogits
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// ZeroGrads clears the accumulated gradients of every layer.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		l.ZeroGrads()
	}
}

// Clone returns a deep copy with independent parameters.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.Clone()
	}
	return &Network{Layers: layers}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			total += p.Size()
		}
	}
	return total
}

// ParamsVector flattens all parameters into a single new slice, in layer
// order. The result is the unit of exchange in federated averaging and
// also determines the simulated model transfer size.
func (n *Network) ParamsVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			out = append(out, p.Data...)
		}
	}
	return out
}

// ParamsVectorInto writes the flat parameter vector into dst, which
// must have NumParams entries; the allocation-free ParamsVector.
func (n *Network) ParamsVectorInto(dst []float64) {
	if len(dst) != n.NumParams() {
		panic("nn: ParamsVectorInto length mismatch")
	}
	off := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			copy(dst[off:off+p.Size()], p.Data)
			off += p.Size()
		}
	}
}

// SetParamsVector writes a flat parameter vector (as produced by
// ParamsVector on a network of identical architecture) into the model.
// It panics if the length does not match.
func (n *Network) SetParamsVector(v []float64) {
	if len(v) != n.NumParams() {
		panic("nn: SetParamsVector length mismatch")
	}
	off := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			copy(p.Data, v[off:off+p.Size()])
			off += p.Size()
		}
	}
}

// GradsVector flattens all parameter gradients into a single new slice,
// parallel to ParamsVector.
func (n *Network) GradsVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, l := range n.Layers {
		for _, g := range l.Grads() {
			out = append(out, g.Data...)
		}
	}
	return out
}

// AddProximalGrad adds the gradient of the FedProx proximal term
// (mu/2)·||w − w_ref||² to the accumulated parameter gradients:
// grad += mu · (w − w_ref). ref must be a flat vector from an identical
// architecture (as produced by ParamsVector). Used by clients running
// FedProx-style local solvers (Li et al., MLSys'20), which bound local
// drift on heterogeneous data.
func (n *Network) AddProximalGrad(ref []float64, mu float64) {
	if len(ref) != n.NumParams() {
		panic("nn: AddProximalGrad reference length mismatch")
	}
	if mu == 0 {
		return
	}
	off := 0
	for _, l := range n.Layers {
		params := l.Params()
		grads := l.Grads()
		for i, p := range params {
			g := grads[i]
			for j := range p.Data {
				g.Data[j] += mu * (p.Data[j] - ref[off+j])
			}
			off += p.Size()
		}
	}
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer labels and the gradient of that loss with respect to
// the logits (softmax(logits) - onehot(labels), scaled by 1/batch).
func SoftmaxCrossEntropy(logits *tensor.Dense, labels []int) (loss float64, grad *tensor.Dense) {
	batch := logits.Rows()
	if batch != len(labels) {
		panic("nn: SoftmaxCrossEntropy batch/label mismatch")
	}
	probs := logits.SoftmaxRows()
	grad = probs.Clone()
	inv := 1.0 / float64(batch)
	total := 0.0
	for i := 0; i < batch; i++ {
		y := labels[i]
		if y < 0 || y >= logits.Cols() {
			panic("nn: label out of range")
		}
		p := probs.At(i, y)
		// Clamp to avoid -Inf on (numerically) zero probabilities.
		if p < 1e-15 {
			p = 1e-15
		}
		total += -math.Log(p)
		grad.Set(i, y, grad.At(i, y)-1)
	}
	grad.Scale(inv)
	return total * inv, grad
}

// LossGrad is SoftmaxCrossEntropy computed into network-owned scratch:
// same loss and gradient values, but the returned tensor is only valid
// until the next LossGrad/Loss/Evaluate call on this network. It is the
// loss entry point of the allocation-free training hot path.
func (n *Network) LossGrad(logits *tensor.Dense, labels []int) (loss float64, grad *tensor.Dense) {
	batch := logits.Rows()
	if batch != len(labels) {
		panic("nn: LossGrad batch/label mismatch")
	}
	probs := n.arena.Dense2D("probs", batch, logits.Cols())
	logits.SoftmaxRowsInto(probs)
	grad = n.arena.Dense2D("lossgrad", batch, logits.Cols())
	copy(grad.Data, probs.Data)
	inv := 1.0 / float64(batch)
	total := 0.0
	for i := 0; i < batch; i++ {
		y := labels[i]
		if y < 0 || y >= logits.Cols() {
			panic("nn: label out of range")
		}
		p := probs.At(i, y)
		// Clamp to avoid -Inf on (numerically) zero probabilities.
		if p < 1e-15 {
			p = 1e-15
		}
		total += -math.Log(p)
		grad.Set(i, y, grad.At(i, y)-1)
	}
	grad.Scale(inv)
	return total * inv, grad
}

// Loss computes the mean cross-entropy of the network on a batch without
// updating gradients or parameters.
func (n *Network) Loss(x *tensor.Dense, labels []int) float64 {
	logits := n.Forward(x)
	loss, _ := n.LossGrad(logits, labels)
	return loss
}

// Accuracy computes the fraction of correct argmax predictions on a
// batch.
func (n *Network) Accuracy(x *tensor.Dense, labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	logits := n.Forward(x)
	pred := n.arena.Ints("preds", logits.Rows())
	logits.ArgMaxRowsInto(pred)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Evaluate returns both mean loss and accuracy in a single forward pass.
func (n *Network) Evaluate(x *tensor.Dense, labels []int) (loss, acc float64) {
	if len(labels) == 0 {
		return 0, 0
	}
	logits := n.Forward(x)
	loss, _ = n.LossGrad(logits, labels)
	pred := n.arena.Ints("preds", logits.Rows())
	logits.ArgMaxRowsInto(pred)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return loss, float64(correct) / float64(len(labels))
}
