package nn

import (
	"fmt"
	"math"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Conv2DRef is the per-image reference implementation of Conv2D: one
// im2col and one GEMM per image, allocating every intermediate. It is
// retained as the correctness oracle for the batched layer — identity
// tests assert that Conv2D matches it bit for bit on outputs and
// gradients — and is not used on any hot path.
type Conv2DRef struct {
	Geom    tensor.ConvGeom
	Filters int
	W, B    *tensor.Dense
	dW, dB  *tensor.Dense

	lastCols []*tensor.Dense // cached im2col matrices, one per image

	params, grads []*tensor.Dense // lazily built Params/Grads views
}

// NewConv2DRef constructs a reference convolution layer with the same
// He-uniform init (and RNG draw order) as NewConv2D.
func NewConv2DRef(geom tensor.ConvGeom, filters int, rng *stats.RNG) *Conv2DRef {
	geom.Validate()
	if filters <= 0 {
		panic("nn: Conv2DRef with non-positive filter count")
	}
	fan := geom.ColRows()
	c := &Conv2DRef{
		Geom:    geom,
		Filters: filters,
		W:       tensor.New(filters, fan),
		B:       tensor.New(1, filters),
		dW:      tensor.New(filters, fan),
		dB:      tensor.New(1, filters),
	}
	limit := math.Sqrt(6.0 / float64(fan))
	c.W.RandUniform(-limit, limit, rng)
	return c
}

// OutSize returns the flattened per-image output length.
func (c *Conv2DRef) OutSize() int { return c.Filters * c.Geom.OutHeight() * c.Geom.OutWidth() }

// InSize returns the flattened per-image input length.
func (c *Conv2DRef) InSize() int { return c.Geom.Channels * c.Geom.Height * c.Geom.Width }

// Forward implements Layer.
func (c *Conv2DRef) Forward(x *tensor.Dense) *tensor.Dense {
	batch := x.Rows()
	if x.Cols() != c.InSize() {
		panic(fmt.Sprintf("nn: Conv2DRef input width %d, want %d", x.Cols(), c.InSize()))
	}
	outHW := c.Geom.OutHeight() * c.Geom.OutWidth()
	y := tensor.New(batch, c.OutSize())
	c.lastCols = make([]*tensor.Dense, batch)
	for b := 0; b < batch; b++ {
		cols := tensor.Im2Col(x.Row(b), c.Geom)
		c.lastCols[b] = cols
		prod := tensor.MatMul(c.W, cols) // (F × outHW)
		dst := y.Row(b)
		for f := 0; f < c.Filters; f++ {
			bias := c.B.Data[f]
			src := prod.Data[f*outHW : (f+1)*outHW]
			out := dst[f*outHW : (f+1)*outHW]
			for i, v := range src {
				out[i] = v + bias
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2DRef) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if c.lastCols == nil {
		panic("nn: Conv2DRef.Backward before Forward")
	}
	batch := gradOut.Rows()
	if batch != len(c.lastCols) {
		panic("nn: Conv2DRef.Backward batch mismatch with last Forward")
	}
	outHW := c.Geom.OutHeight() * c.Geom.OutWidth()
	gradIn := tensor.New(batch, c.InSize())
	for b := 0; b < batch; b++ {
		// View this image's output gradient as (F × outHW).
		g := tensor.FromSlice(gradOut.Row(b), c.Filters, outHW)
		// dW += g · colsᵀ ; dB += row sums of g.
		c.dW.Add(tensor.MatMulTransB(g, c.lastCols[b]))
		for f := 0; f < c.Filters; f++ {
			s := 0.0
			for _, v := range g.Row(f) {
				s += v
			}
			c.dB.Data[f] += s
		}
		// dCols = Wᵀ · g, scattered back to image space.
		dcols := tensor.MatMulTransA(c.W, g)
		img := tensor.Col2Im(dcols, c.Geom)
		copy(gradIn.Row(b), img)
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2DRef) Params() []*tensor.Dense {
	if c.params == nil {
		c.params = []*tensor.Dense{c.W, c.B}
	}
	return c.params
}

// Grads implements Layer.
func (c *Conv2DRef) Grads() []*tensor.Dense {
	if c.grads == nil {
		c.grads = []*tensor.Dense{c.dW, c.dB}
	}
	return c.grads
}

// ZeroGrads implements Layer.
func (c *Conv2DRef) ZeroGrads() { c.dW.Zero(); c.dB.Zero() }

// Clone implements Layer.
func (c *Conv2DRef) Clone() Layer {
	return &Conv2DRef{
		Geom:    c.Geom,
		Filters: c.Filters,
		W:       c.W.Clone(),
		B:       c.B.Clone(),
		dW:      tensor.New(c.dW.Shape...),
		dB:      tensor.New(c.dB.Shape...),
	}
}

// Name implements Layer.
func (c *Conv2DRef) Name() string {
	return fmt.Sprintf("Conv2DRef(%dx%dx%d,k=%d,f=%d)", c.Geom.Channels, c.Geom.Height, c.Geom.Width, c.Geom.Kernel, c.Filters)
}
