package nn

import (
	"bytes"
	"testing"

	"haccs/internal/stats"
)

func TestCheckpointRoundTrip(t *testing.T) {
	arch := Arch{Kind: "mlp", In: 6, Hidden: []int{5}, Classes: 3}
	n := arch.Build(stats.NewRNG(1))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, arch, n, 42); err != nil {
		t.Fatal(err)
	}
	loaded, round, err := LoadCheckpoint(&buf, arch, stats.NewRNG(999))
	if err != nil {
		t.Fatal(err)
	}
	if round != 42 {
		t.Errorf("round = %d", round)
	}
	a, b := n.ParamsVector(), loaded.ParamsVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
}

func TestCheckpointArchMismatch(t *testing.T) {
	arch := Arch{Kind: "mlp", In: 6, Hidden: []int{5}, Classes: 3}
	n := arch.Build(stats.NewRNG(1))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, arch, n, 0); err != nil {
		t.Fatal(err)
	}
	other := Arch{Kind: "mlp", In: 6, Hidden: []int{7}, Classes: 3}
	if _, _, err := LoadCheckpoint(&buf, other, stats.NewRNG(1)); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
}

func TestCheckpointCorruptStream(t *testing.T) {
	arch := Arch{Kind: "mlp", In: 2, Classes: 2}
	if _, _, err := LoadCheckpoint(bytes.NewReader([]byte("garbage")), arch, stats.NewRNG(1)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCheckpointLeNet(t *testing.T) {
	arch := Arch{Kind: "lenet", Channels: 1, Height: 16, Width: 16, Classes: 4, ConvFilters: [2]int{2, 3}}
	n := arch.Build(stats.NewRNG(2))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, arch, n, 7); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadCheckpoint(&buf, arch, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != n.NumParams() {
		t.Fatal("param counts differ")
	}
}

func TestArchEqual(t *testing.T) {
	a := Arch{Kind: "mlp", In: 4, Hidden: []int{3, 2}, Classes: 2}
	if !archEqual(a, a) {
		t.Error("identical archs unequal")
	}
	b := a
	b.Hidden = []int{3, 9}
	if archEqual(a, b) {
		t.Error("different hidden sizes equal")
	}
	c := a
	c.Kind = "lenet"
	if archEqual(a, c) {
		t.Error("different kinds equal")
	}
}
