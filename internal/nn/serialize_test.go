package nn

import (
	"bytes"
	"errors"
	"testing"

	"haccs/internal/stats"
)

func TestCheckpointRoundTrip(t *testing.T) {
	arch := Arch{Kind: "mlp", In: 6, Hidden: []int{5}, Classes: 3}
	n := arch.Build(stats.NewRNG(1))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, arch, n, 42); err != nil {
		t.Fatal(err)
	}
	loaded, round, err := LoadCheckpoint(&buf, arch, stats.NewRNG(999))
	if err != nil {
		t.Fatal(err)
	}
	if round != 42 {
		t.Errorf("round = %d", round)
	}
	a, b := n.ParamsVector(), loaded.ParamsVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
}

func TestCheckpointArchMismatch(t *testing.T) {
	arch := Arch{Kind: "mlp", In: 6, Hidden: []int{5}, Classes: 3}
	n := arch.Build(stats.NewRNG(1))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, arch, n, 0); err != nil {
		t.Fatal(err)
	}
	other := Arch{Kind: "mlp", In: 6, Hidden: []int{7}, Classes: 3}
	if _, _, err := LoadCheckpoint(&buf, other, stats.NewRNG(1)); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
}

func TestCheckpointCorruptStream(t *testing.T) {
	arch := Arch{Kind: "mlp", In: 2, Classes: 2}
	if _, _, err := LoadCheckpoint(bytes.NewReader([]byte("garbage")), arch, stats.NewRNG(1)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCheckpointLeNet(t *testing.T) {
	arch := Arch{Kind: "lenet", Channels: 1, Height: 16, Width: 16, Classes: 4, ConvFilters: [2]int{2, 3}}
	n := arch.Build(stats.NewRNG(2))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, arch, n, 7); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadCheckpoint(&buf, arch, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != n.NumParams() {
		t.Fatal("param counts differ")
	}
}

func TestArchEqual(t *testing.T) {
	a := Arch{Kind: "mlp", In: 4, Hidden: []int{3, 2}, Classes: 2}
	if !archEqual(a, a) {
		t.Error("identical archs unequal")
	}
	b := a
	b.Hidden = []int{3, 9}
	if archEqual(a, b) {
		t.Error("different hidden sizes equal")
	}
	c := a
	c.Kind = "lenet"
	if archEqual(a, c) {
		t.Error("different kinds equal")
	}
}

// TestLoadCheckpointTypedErrors pins the error taxonomy of the load
// path: stream-level damage (truncation, garbage, empty input) wraps
// ErrCorruptCheckpoint, while structurally valid checkpoints for the
// wrong model surface an *ArchMismatchError carrying both sides.
func TestLoadCheckpointTypedErrors(t *testing.T) {
	arch := Arch{Kind: "mlp", In: 6, Hidden: []int{5}, Classes: 3}
	var good bytes.Buffer
	if err := SaveCheckpoint(&good, arch, arch.Build(stats.NewRNG(1)), 3); err != nil {
		t.Fatal(err)
	}
	wrongArch := Arch{Kind: "mlp", In: 6, Hidden: []int{7}, Classes: 3}
	var wrongBuf bytes.Buffer
	if err := SaveCheckpoint(&wrongBuf, wrongArch, wrongArch.Build(stats.NewRNG(1)), 0); err != nil {
		t.Fatal(err)
	}
	// A checkpoint whose arch stamp matches but whose vector is short:
	// hand-encode a Checkpoint with a truncated Params slice.
	var shortVec bytes.Buffer
	if err := EncodeCheckpoint(&shortVec, arch, make([]float64, 5), 0); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		data        []byte
		wantCorrupt bool
		wantArch    bool
	}{
		{"empty", nil, true, false},
		{"garbage", []byte("not a gob stream at all"), true, false},
		{"truncated", good.Bytes()[:len(good.Bytes())/2], true, false},
		{"single_byte", good.Bytes()[:1], true, false},
		{"wrong_arch", wrongBuf.Bytes(), false, true},
		{"short_param_vector", shortVec.Bytes(), false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := LoadCheckpoint(bytes.NewReader(tc.data), arch, stats.NewRNG(9))
			if err == nil {
				t.Fatal("bad checkpoint accepted")
			}
			if got := errors.Is(err, ErrCorruptCheckpoint); got != tc.wantCorrupt {
				t.Errorf("errors.Is(err, ErrCorruptCheckpoint) = %v, want %v (err: %v)", got, tc.wantCorrupt, err)
			}
			var am *ArchMismatchError
			if got := errors.As(err, &am); got != tc.wantArch {
				t.Errorf("errors.As(err, *ArchMismatchError) = %v, want %v (err: %v)", got, tc.wantArch, err)
			}
			if tc.wantArch && tc.name == "wrong_arch" {
				if !archEqual(am.Want, arch) || archEqual(am.Got, arch) {
					t.Errorf("ArchMismatchError sides wrong: got %+v want %+v", am.Got, am.Want)
				}
			}
		})
	}
}

// TestDecodeCheckpointParamCountPin covers the wantParams guard that
// the checkpoint subsystem's model component relies on.
func TestDecodeCheckpointParamCountPin(t *testing.T) {
	arch := Arch{Kind: "mlp", In: 4, Hidden: []int{3}, Classes: 2}
	n := arch.Build(stats.NewRNG(4))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, arch, n, 11); err != nil {
		t.Fatal(err)
	}
	params, round, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()), arch, n.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	if round != 11 || len(params) != n.NumParams() {
		t.Fatalf("round=%d len=%d", round, len(params))
	}
	var am *ArchMismatchError
	if _, _, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()), arch, n.NumParams()+1); !errors.As(err, &am) {
		t.Fatalf("wrong wantParams not rejected with ArchMismatchError: %v", err)
	} else if am.GotParams != n.NumParams() || am.WantParams != n.NumParams()+1 {
		t.Fatalf("counts not carried: %+v", am)
	}
}
