package nn

import (
	"fmt"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Arch is a declarative model architecture. The federated engine builds
// one network per experiment from an Arch so that every strategy trains
// the exact same model family, seeded identically.
type Arch struct {
	// Kind selects the family: "mlp", "lenet", or "lenet-ref" (the
	// same LeNet built on the per-image Conv2DRef oracle layers, used
	// by regression tests that pin the batched conv to the reference).
	Kind string
	// Input geometry. For "mlp", In is the flat feature count and the
	// image fields are ignored. For "lenet", Channels/Height/Width
	// describe the image.
	In       int
	Channels int
	Height   int
	Width    int
	// Hidden holds hidden-layer widths for "mlp" (e.g. {128, 64}).
	Hidden []int
	// Classes is the number of output classes.
	Classes int
	// ConvFilters holds the two conv-layer filter counts for "lenet";
	// zero values default to the LeNet-style (6, 16).
	ConvFilters [2]int
}

// Build constructs a freshly initialized network for the architecture.
func (a Arch) Build(rng *stats.RNG) *Network {
	switch a.Kind {
	case "mlp":
		return NewMLP(a.In, a.Hidden, a.Classes, rng)
	case "lenet":
		f1, f2 := a.ConvFilters[0], a.ConvFilters[1]
		if f1 == 0 {
			f1 = 6
		}
		if f2 == 0 {
			f2 = 16
		}
		return NewLeNet(a.Channels, a.Height, a.Width, a.Classes, f1, f2, rng)
	case "lenet-ref":
		f1, f2 := a.ConvFilters[0], a.ConvFilters[1]
		if f1 == 0 {
			f1 = 6
		}
		if f2 == 0 {
			f2 = 16
		}
		return NewLeNetRef(a.Channels, a.Height, a.Width, a.Classes, f1, f2, rng)
	default:
		panic(fmt.Sprintf("nn: unknown architecture kind %q", a.Kind))
	}
}

// NewMLP builds a multilayer perceptron with ReLU activations:
// in -> hidden[0] -> ... -> hidden[n-1] -> classes.
func NewMLP(in int, hidden []int, classes int, rng *stats.RNG) *Network {
	if in <= 0 || classes <= 0 {
		panic("nn: NewMLP with non-positive dimensions")
	}
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, rng), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(prev, classes, rng))
	return NewNetwork(layers...)
}

// NewLeNet builds a LeNet-style convolutional network, the architecture
// family the paper trains (LeNet on FEMNIST/CIFAR-10 images):
//
//	conv(k=5, f1) -> ReLU -> maxpool(2)
//	conv(k=5, f2) -> ReLU -> maxpool(2)
//	flatten -> dense(120) -> ReLU -> dense(classes)
//
// Channels/height/width describe the input image; the spatial dimensions
// must survive the two conv+pool stages (>= 16 pixels on each side with
// k=5; smaller inputs should pass padding-friendly sizes or use NewMLP).
func NewLeNet(channels, height, width, classes, f1, f2 int, rng *stats.RNG) *Network {
	conv := func(g tensor.ConvGeom, f int, rng *stats.RNG) Layer { return NewConv2D(g, f, rng) }
	return buildLeNet(channels, height, width, classes, f1, f2, conv, rng)
}

// NewLeNetRef is NewLeNet built on Conv2DRef, the per-image reference
// convolution. Both constructors share buildLeNet and draw from the RNG
// in the same order, so with equal seeds the two networks start from
// bit-identical parameters — the precondition for the batched-vs-
// reference training regression tests.
func NewLeNetRef(channels, height, width, classes, f1, f2 int, rng *stats.RNG) *Network {
	conv := func(g tensor.ConvGeom, f int, rng *stats.RNG) Layer { return NewConv2DRef(g, f, rng) }
	return buildLeNet(channels, height, width, classes, f1, f2, conv, rng)
}

func buildLeNet(channels, height, width, classes, f1, f2 int, conv func(tensor.ConvGeom, int, *stats.RNG) Layer, rng *stats.RNG) *Network {
	g1 := tensor.ConvGeom{Channels: channels, Height: height, Width: width, Kernel: 5, Stride: 1, Pad: 0}
	conv1 := conv(g1, f1, rng)
	p1 := tensor.ConvGeom{Channels: f1, Height: g1.OutHeight(), Width: g1.OutWidth(), Kernel: 2, Stride: 2, Pad: 0}
	pool1 := NewMaxPool2D(p1)
	g2 := tensor.ConvGeom{Channels: f1, Height: p1.OutHeight(), Width: p1.OutWidth(), Kernel: 5, Stride: 1, Pad: 0}
	conv2 := conv(g2, f2, rng)
	p2 := tensor.ConvGeom{Channels: f2, Height: g2.OutHeight(), Width: g2.OutWidth(), Kernel: 2, Stride: 2, Pad: 0}
	pool2 := NewMaxPool2D(p2)
	flat := f2 * p2.OutHeight() * p2.OutWidth()
	return NewNetwork(
		conv1, NewReLU(), pool1,
		conv2, NewReLU(), pool2,
		NewFlatten(),
		NewDense(flat, 120, rng), NewReLU(),
		NewDense(120, classes, rng),
	)
}

// WireBytes returns the simulated size in bytes of one model transfer.
// Parameters travel as float32 on the wire (the standard federated
// deployment choice), so the size is 4 bytes per scalar.
func (n *Network) WireBytes() int { return 4 * n.NumParams() }
