package nn

import (
	"testing"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// fillPattern writes a deterministic sign-varying pattern so tests do
// not depend on RNG plumbing for input data.
func fillPattern(data []float64, salt uint64) {
	x := salt*0x9e3779b97f4a7c15 + 1
	for i := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		data[i] = float64(int64(x%2000)-1000) / 997.0
	}
}

func bitEqual(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v (not bit-identical)", what, i, got[i], want[i])
		}
	}
}

var identityGeoms = []tensor.ConvGeom{
	{Channels: 1, Height: 8, Width: 8, Kernel: 3, Stride: 1, Pad: 0},
	{Channels: 3, Height: 9, Width: 7, Kernel: 3, Stride: 1, Pad: 1},
	{Channels: 2, Height: 11, Width: 11, Kernel: 5, Stride: 2, Pad: 2},
	{Channels: 3, Height: 16, Width: 16, Kernel: 5, Stride: 1, Pad: 0},
	{Channels: 4, Height: 6, Width: 10, Kernel: 2, Stride: 2, Pad: 0},
}

// TestConv2DMatchesReferenceBitExact pins the batched im2col+GEMM
// convolution to the per-image reference: identical parameters and
// inputs must produce bit-identical forward outputs, input gradients,
// weight gradients and bias gradients — the invariant the batched
// kernels are designed around (see internal/tensor/matmul.go). Two
// passes per geometry exercise arena reuse.
func TestConv2DMatchesReferenceBitExact(t *testing.T) {
	for gi, g := range identityGeoms {
		const filters = 5
		batched := NewConv2D(g, filters, stats.NewRNG(uint64(100+gi)))
		ref := NewConv2DRef(g, filters, stats.NewRNG(uint64(100+gi)))
		bitEqual(t, batched.W.Data, ref.W.Data, "initial W")
		bitEqual(t, batched.B.Data, ref.B.Data, "initial B")

		const batch = 3
		outSize := filters * g.OutHeight() * g.OutWidth()
		for pass := 0; pass < 2; pass++ {
			x := tensor.New(batch, g.Channels*g.Height*g.Width)
			fillPattern(x.Data, uint64(7*gi+pass))
			gradOut := tensor.New(batch, outSize)
			fillPattern(gradOut.Data, uint64(31*gi+pass))

			yB := batched.Forward(x)
			yR := ref.Forward(x)
			bitEqual(t, yB.Data, yR.Data, "forward output")

			batched.ZeroGrads()
			ref.ZeroGrads()
			gB := batched.Backward(gradOut)
			gR := ref.Backward(gradOut)
			bitEqual(t, gB.Data, gR.Data, "input gradient")
			bitEqual(t, batched.dW.Data, ref.dW.Data, "weight gradient")
			bitEqual(t, batched.dB.Data, ref.dB.Data, "bias gradient")
		}
	}
}

// TestConv2DGradAccumulatesLikeReference checks that gradient
// accumulation across multiple Backward calls (without ZeroGrads)
// stays bit-identical too: dW is accumulated via chunked partial sums
// in the batched layer and via per-image adds in the reference.
func TestConv2DGradAccumulatesLikeReference(t *testing.T) {
	g := identityGeoms[1]
	const filters, batch = 4, 2
	batched := NewConv2D(g, filters, stats.NewRNG(55))
	ref := NewConv2DRef(g, filters, stats.NewRNG(55))
	outSize := filters * g.OutHeight() * g.OutWidth()
	for pass := 0; pass < 3; pass++ {
		x := tensor.New(batch, g.Channels*g.Height*g.Width)
		fillPattern(x.Data, uint64(pass))
		gradOut := tensor.New(batch, outSize)
		fillPattern(gradOut.Data, uint64(pass+17))
		batched.Forward(x)
		ref.Forward(x)
		batched.Backward(gradOut)
		ref.Backward(gradOut)
	}
	bitEqual(t, batched.dW.Data, ref.dW.Data, "accumulated dW")
	bitEqual(t, batched.dB.Data, ref.dB.Data, "accumulated dB")
}

// TestLeNetMatchesLeNetRef runs full training steps on the batched and
// reference LeNets from identical seeds and demands bit-identical
// parameters afterwards — the end-to-end version of the layer-level
// identity above.
func TestLeNetMatchesLeNetRef(t *testing.T) {
	a := NewLeNet(1, 16, 16, 4, 3, 5, stats.NewRNG(77))
	b := NewLeNetRef(1, 16, 16, 4, 3, 5, stats.NewRNG(77))
	optA := NewSGD(0.05, 0.9, 1e-4)
	optB := NewSGD(0.05, 0.9, 1e-4)
	const batch = 4
	labels := []int{0, 1, 2, 3}
	for step := 0; step < 3; step++ {
		x := tensor.New(batch, 16*16)
		fillPattern(x.Data, uint64(step))
		lossA := TrainBatch(a, optA, x, labels)
		lossB := TrainBatch(b, optB, x, labels)
		if lossA != lossB {
			t.Fatalf("step %d: loss %v != %v", step, lossA, lossB)
		}
	}
	bitEqual(t, a.ParamsVector(), b.ParamsVector(), "trained parameters")
}

// TestTrainBatchSteadyStateAllocs asserts the training hot path is
// allocation-free once arenas are warm (the PR's ≤2 allocs/op budget).
func TestTrainBatchSteadyStateAllocs(t *testing.T) {
	net := NewLeNet(1, 16, 16, 4, 3, 5, stats.NewRNG(9))
	opt := NewSGD(0.05, 0.9, 0)
	const batch = 4
	x := tensor.New(batch, 16*16)
	fillPattern(x.Data, 3)
	labels := []int{0, 1, 2, 3}
	TrainBatch(net, opt, x, labels) // warm up arenas and optimizer state
	allocs := testing.AllocsPerRun(10, func() {
		TrainBatch(net, opt, x, labels)
	})
	if allocs > 2 {
		t.Fatalf("TrainBatch steady state allocates %.1f objects/op, want <= 2", allocs)
	}
}
