package nn

import (
	"fmt"
	"math"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Conv2D is a 2-D convolution over inputs laid out as flattened C×H×W
// rows of a (batch × C*H*W) tensor. It is implemented as im2col followed
// by a single GEMM per image, the standard formulation that turns the
// convolution into dense matrix math.
type Conv2D struct {
	Geom    tensor.ConvGeom
	Filters int
	// W has shape (Filters × C*K*K); B has shape (1 × Filters).
	W, B   *tensor.Dense
	dW, dB *tensor.Dense

	lastCols []*tensor.Dense // cached im2col matrices, one per image
}

// NewConv2D constructs a convolution layer with He-uniform init.
func NewConv2D(geom tensor.ConvGeom, filters int, rng *stats.RNG) *Conv2D {
	geom.Validate()
	if filters <= 0 {
		panic("nn: Conv2D with non-positive filter count")
	}
	fan := geom.Channels * geom.Kernel * geom.Kernel
	c := &Conv2D{
		Geom:    geom,
		Filters: filters,
		W:       tensor.New(filters, fan),
		B:       tensor.New(1, filters),
		dW:      tensor.New(filters, fan),
		dB:      tensor.New(1, filters),
	}
	limit := math.Sqrt(6.0 / float64(fan))
	c.W.RandUniform(-limit, limit, rng)
	return c
}

// OutSize returns the flattened per-image output length, Filters*outH*outW.
func (c *Conv2D) OutSize() int { return c.Filters * c.Geom.OutHeight() * c.Geom.OutWidth() }

// InSize returns the flattened per-image input length, C*H*W.
func (c *Conv2D) InSize() int { return c.Geom.Channels * c.Geom.Height * c.Geom.Width }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Dense) *tensor.Dense {
	batch := x.Rows()
	if x.Cols() != c.InSize() {
		panic(fmt.Sprintf("nn: Conv2D input width %d, want %d", x.Cols(), c.InSize()))
	}
	outHW := c.Geom.OutHeight() * c.Geom.OutWidth()
	y := tensor.New(batch, c.OutSize())
	c.lastCols = make([]*tensor.Dense, batch)
	for b := 0; b < batch; b++ {
		cols := tensor.Im2Col(x.Row(b), c.Geom)
		c.lastCols[b] = cols
		prod := tensor.MatMul(c.W, cols) // (F × outHW)
		dst := y.Row(b)
		for f := 0; f < c.Filters; f++ {
			bias := c.B.Data[f]
			src := prod.Data[f*outHW : (f+1)*outHW]
			out := dst[f*outHW : (f+1)*outHW]
			for i, v := range src {
				out[i] = v + bias
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if c.lastCols == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	batch := gradOut.Rows()
	if batch != len(c.lastCols) {
		panic("nn: Conv2D.Backward batch mismatch with last Forward")
	}
	outHW := c.Geom.OutHeight() * c.Geom.OutWidth()
	gradIn := tensor.New(batch, c.InSize())
	for b := 0; b < batch; b++ {
		// View this image's output gradient as (F × outHW).
		g := tensor.FromSlice(gradOut.Row(b), c.Filters, outHW)
		// dW += g · colsᵀ ; dB += row sums of g.
		c.dW.Add(tensor.MatMulTransB(g, c.lastCols[b]))
		for f := 0; f < c.Filters; f++ {
			s := 0.0
			for _, v := range g.Row(f) {
				s += v
			}
			c.dB.Data[f] += s
		}
		// dCols = Wᵀ · g, scattered back to image space.
		dcols := tensor.MatMulTransA(c.W, g)
		img := tensor.Col2Im(dcols, c.Geom)
		copy(gradIn.Row(b), img)
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Dense { return []*tensor.Dense{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Dense { return []*tensor.Dense{c.dW, c.dB} }

// ZeroGrads implements Layer.
func (c *Conv2D) ZeroGrads() { c.dW.Zero(); c.dB.Zero() }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		Geom:    c.Geom,
		Filters: c.Filters,
		W:       c.W.Clone(),
		B:       c.B.Clone(),
		dW:      tensor.New(c.dW.Shape...),
		dB:      tensor.New(c.dB.Shape...),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%dx%dx%d,k=%d,f=%d)", c.Geom.Channels, c.Geom.Height, c.Geom.Width, c.Geom.Kernel, c.Filters)
}

// MaxPool2D is a max pooling layer over flattened C×H×W rows with a
// square window and equal stride (non-overlapping pooling when
// stride == window, as in LeNet).
type MaxPool2D struct {
	Geom tensor.ConvGeom // Kernel is the pool window; Pad must be 0.

	lastArg []int // flat input index chosen per output element, per batch row
	lastIn  int   // input width cached from Forward
}

// NewMaxPool2D constructs a max-pooling layer. geom.Pad must be zero.
func NewMaxPool2D(geom tensor.ConvGeom) *MaxPool2D {
	geom.Validate()
	if geom.Pad != 0 {
		panic("nn: MaxPool2D does not support padding")
	}
	return &MaxPool2D{Geom: geom}
}

// OutSize returns the flattened per-image output length.
func (p *MaxPool2D) OutSize() int { return p.Geom.Channels * p.Geom.OutHeight() * p.Geom.OutWidth() }

// InSize returns the flattened per-image input length.
func (p *MaxPool2D) InSize() int { return p.Geom.Channels * p.Geom.Height * p.Geom.Width }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Dense) *tensor.Dense {
	batch := x.Rows()
	if x.Cols() != p.InSize() {
		panic(fmt.Sprintf("nn: MaxPool2D input width %d, want %d", x.Cols(), p.InSize()))
	}
	outH, outW := p.Geom.OutHeight(), p.Geom.OutWidth()
	y := tensor.New(batch, p.OutSize())
	p.lastArg = make([]int, batch*p.OutSize())
	p.lastIn = x.Cols()
	for b := 0; b < batch; b++ {
		in := x.Row(b)
		out := y.Row(b)
		argBase := b * p.OutSize()
		for c := 0; c < p.Geom.Channels; c++ {
			chanBase := c * p.Geom.Height * p.Geom.Width
			outChan := c * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					bestIdx := -1
					bestVal := math.Inf(-1)
					for ky := 0; ky < p.Geom.Kernel; ky++ {
						iy := oy*p.Geom.Stride + ky
						if iy >= p.Geom.Height {
							continue
						}
						for kx := 0; kx < p.Geom.Kernel; kx++ {
							ix := ox*p.Geom.Stride + kx
							if ix >= p.Geom.Width {
								continue
							}
							idx := chanBase + iy*p.Geom.Width + ix
							if in[idx] > bestVal {
								bestVal = in[idx]
								bestIdx = idx
							}
						}
					}
					o := outChan + oy*outW + ox
					out[o] = bestVal
					p.lastArg[argBase+o] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if p.lastArg == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	batch := gradOut.Rows()
	gradIn := tensor.New(batch, p.lastIn)
	for b := 0; b < batch; b++ {
		g := gradOut.Row(b)
		gi := gradIn.Row(b)
		argBase := b * p.OutSize()
		for o, v := range g {
			gi[p.lastArg[argBase+o]] += v
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Dense { return nil }

// ZeroGrads implements Layer.
func (p *MaxPool2D) ZeroGrads() {}

// Clone implements Layer.
func (p *MaxPool2D) Clone() Layer { return &MaxPool2D{Geom: p.Geom} }

// Name implements Layer.
func (p *MaxPool2D) Name() string {
	return fmt.Sprintf("MaxPool2D(k=%d,s=%d)", p.Geom.Kernel, p.Geom.Stride)
}
