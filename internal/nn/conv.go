package nn

import (
	"fmt"
	"math"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

// Conv2D is a 2-D convolution over inputs laid out as flattened C×H×W
// rows of a (batch × C*H*W) tensor. The whole minibatch is unrolled into
// one im2col matrix so each Forward issues a single
// (F × C·K·K) · (C·K·K × batch·outH·outW) GEMM instead of one small GEMM
// per image, and every intermediate lives in a layer-owned scratch arena,
// so steady-state passes allocate nothing.
//
// The per-element floating-point accumulation order is identical to the
// per-image formulation (see Conv2DRef), so both produce bit-equal
// outputs and gradients.
type Conv2D struct {
	Geom    tensor.ConvGeom
	Filters int
	// W has shape (Filters × C*K*K); B has shape (1 × Filters).
	W, B   *tensor.Dense
	dW, dB *tensor.Dense

	arena    tensor.Scratch
	lastCols *tensor.Dense // batched im2col matrix, arena-owned

	params, grads []*tensor.Dense // lazily built Params/Grads views
}

// NewConv2D constructs a convolution layer with He-uniform init.
func NewConv2D(geom tensor.ConvGeom, filters int, rng *stats.RNG) *Conv2D {
	geom.Validate()
	if filters <= 0 {
		panic("nn: Conv2D with non-positive filter count")
	}
	fan := geom.ColRows()
	c := &Conv2D{
		Geom:    geom,
		Filters: filters,
		W:       tensor.New(filters, fan),
		B:       tensor.New(1, filters),
		dW:      tensor.New(filters, fan),
		dB:      tensor.New(1, filters),
	}
	limit := math.Sqrt(6.0 / float64(fan))
	c.W.RandUniform(-limit, limit, rng)
	return c
}

// OutSize returns the flattened per-image output length, Filters*outH*outW.
func (c *Conv2D) OutSize() int { return c.Filters * c.Geom.OutHeight() * c.Geom.OutWidth() }

// InSize returns the flattened per-image input length, C*H*W.
func (c *Conv2D) InSize() int { return c.Geom.Channels * c.Geom.Height * c.Geom.Width }

// Forward implements Layer. The output is arena-owned and valid until
// this layer's next Forward.
func (c *Conv2D) Forward(x *tensor.Dense) *tensor.Dense {
	batch := x.Rows()
	if x.Cols() != c.InSize() {
		panic(fmt.Sprintf("nn: Conv2D input width %d, want %d", x.Cols(), c.InSize()))
	}
	outHW := c.Geom.OutHeight() * c.Geom.OutWidth()
	width := batch * outHW
	cols := c.arena.Dense2D("cols", c.Geom.ColRows(), width)
	tensor.Im2ColBatchedInto(cols, x, c.Geom)
	c.lastCols = cols
	prod := c.arena.Dense2D("prod", c.Filters, width)
	tensor.MatMulInto(prod, c.W, cols) // one GEMM convolves the whole batch
	// Scatter (F × batch·outHW) into per-image rows, adding the bias.
	y := c.arena.Dense2D("y", batch, c.OutSize())
	for b := 0; b < batch; b++ {
		dst := y.Row(b)
		for f := 0; f < c.Filters; f++ {
			bias := c.B.Data[f]
			src := prod.Data[f*width+b*outHW : f*width+(b+1)*outHW]
			out := dst[f*outHW : (f+1)*outHW]
			for i, v := range src {
				out[i] = v + bias
			}
		}
	}
	return y
}

// Backward implements Layer. The returned gradient is arena-owned and
// valid until this layer's next Backward.
func (c *Conv2D) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if c.lastCols == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	batch := gradOut.Rows()
	outHW := c.Geom.OutHeight() * c.Geom.OutWidth()
	width := batch * outHW
	if c.lastCols.Cols() != width {
		panic("nn: Conv2D.Backward batch mismatch with last Forward")
	}
	// Gather per-image (F × outHW) gradients into one (F × batch·outHW)
	// matrix matching the im2col column layout.
	g := c.arena.Dense2D("g", c.Filters, width)
	for b := 0; b < batch; b++ {
		src := gradOut.Row(b)
		for f := 0; f < c.Filters; f++ {
			copy(g.Data[f*width+b*outHW:f*width+(b+1)*outHW], src[f*outHW:(f+1)*outHW])
		}
	}
	// dW += g · colsᵀ, summed image by image (chunk = outHW) so the
	// accumulation order matches the per-image reference bit for bit.
	tensor.AddMatMulTransBChunked(c.dW, g, c.lastCols, outHW)
	// dB += per-image row sums of g, images in ascending order.
	for f := 0; f < c.Filters; f++ {
		row := g.Data[f*width : (f+1)*width]
		for b := 0; b < batch; b++ {
			s := 0.0
			for _, v := range row[b*outHW : (b+1)*outHW] {
				s += v
			}
			c.dB.Data[f] += s
		}
	}
	// dCols = Wᵀ · g, scattered back to image space.
	dcols := c.arena.Dense2D("dcols", c.Geom.ColRows(), width)
	tensor.MatMulTransAInto(dcols, c.W, g)
	gradIn := c.arena.Dense2D("gradin", batch, c.InSize())
	tensor.Col2ImBatchedInto(gradIn, dcols, c.Geom)
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Dense {
	if c.params == nil {
		c.params = []*tensor.Dense{c.W, c.B}
	}
	return c.params
}

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Dense {
	if c.grads == nil {
		c.grads = []*tensor.Dense{c.dW, c.dB}
	}
	return c.grads
}

// ZeroGrads implements Layer.
func (c *Conv2D) ZeroGrads() { c.dW.Zero(); c.dB.Zero() }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		Geom:    c.Geom,
		Filters: c.Filters,
		W:       c.W.Clone(),
		B:       c.B.Clone(),
		dW:      tensor.New(c.dW.Shape...),
		dB:      tensor.New(c.dB.Shape...),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%dx%dx%d,k=%d,f=%d)", c.Geom.Channels, c.Geom.Height, c.Geom.Width, c.Geom.Kernel, c.Filters)
}

// MaxPool2D is a max pooling layer over flattened C×H×W rows with a
// square window and equal stride (non-overlapping pooling when
// stride == window, as in LeNet).
type MaxPool2D struct {
	Geom tensor.ConvGeom // Kernel is the pool window; Pad must be 0.

	arena   tensor.Scratch
	lastArg []int // flat input index chosen per output element, per batch row
	lastIn  int   // input width cached from Forward
}

// NewMaxPool2D constructs a max-pooling layer. geom.Pad must be zero.
func NewMaxPool2D(geom tensor.ConvGeom) *MaxPool2D {
	geom.Validate()
	if geom.Pad != 0 {
		panic("nn: MaxPool2D does not support padding")
	}
	return &MaxPool2D{Geom: geom}
}

// OutSize returns the flattened per-image output length.
func (p *MaxPool2D) OutSize() int { return p.Geom.Channels * p.Geom.OutHeight() * p.Geom.OutWidth() }

// InSize returns the flattened per-image input length.
func (p *MaxPool2D) InSize() int { return p.Geom.Channels * p.Geom.Height * p.Geom.Width }

// Forward implements Layer. The output is arena-owned and valid until
// this layer's next Forward.
func (p *MaxPool2D) Forward(x *tensor.Dense) *tensor.Dense {
	batch := x.Rows()
	if x.Cols() != p.InSize() {
		panic(fmt.Sprintf("nn: MaxPool2D input width %d, want %d", x.Cols(), p.InSize()))
	}
	outH, outW := p.Geom.OutHeight(), p.Geom.OutWidth()
	y := p.arena.Dense2D("y", batch, p.OutSize())
	if cap(p.lastArg) < batch*p.OutSize() {
		p.lastArg = make([]int, batch*p.OutSize())
	}
	p.lastArg = p.lastArg[:batch*p.OutSize()]
	p.lastIn = x.Cols()
	for b := 0; b < batch; b++ {
		in := x.Row(b)
		out := y.Row(b)
		argBase := b * p.OutSize()
		for c := 0; c < p.Geom.Channels; c++ {
			chanBase := c * p.Geom.Height * p.Geom.Width
			outChan := c * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					bestIdx := -1
					bestVal := math.Inf(-1)
					for ky := 0; ky < p.Geom.Kernel; ky++ {
						iy := oy*p.Geom.Stride + ky
						if iy >= p.Geom.Height {
							continue
						}
						for kx := 0; kx < p.Geom.Kernel; kx++ {
							ix := ox*p.Geom.Stride + kx
							if ix >= p.Geom.Width {
								continue
							}
							idx := chanBase + iy*p.Geom.Width + ix
							if in[idx] > bestVal {
								bestVal = in[idx]
								bestIdx = idx
							}
						}
					}
					o := outChan + oy*outW + ox
					out[o] = bestVal
					p.lastArg[argBase+o] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward implements Layer. The returned gradient is arena-owned and
// valid until this layer's next Backward.
func (p *MaxPool2D) Backward(gradOut *tensor.Dense) *tensor.Dense {
	if p.lastArg == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	batch := gradOut.Rows()
	gradIn := p.arena.Dense2D("gradin", batch, p.lastIn)
	gradIn.Zero() // scratch is not zeroed, and the scatter accumulates
	for b := 0; b < batch; b++ {
		g := gradOut.Row(b)
		gi := gradIn.Row(b)
		argBase := b * p.OutSize()
		for o, v := range g {
			gi[p.lastArg[argBase+o]] += v
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Dense { return nil }

// ZeroGrads implements Layer.
func (p *MaxPool2D) ZeroGrads() {}

// Clone implements Layer.
func (p *MaxPool2D) Clone() Layer { return &MaxPool2D{Geom: p.Geom} }

// Name implements Layer.
func (p *MaxPool2D) Name() string {
	return fmt.Sprintf("MaxPool2D(k=%d,s=%d)", p.Geom.Kernel, p.Geom.Stride)
}
