package nn

import "haccs/internal/tensor"

// SGD is minibatch stochastic gradient descent with classical momentum
// and L2 weight decay — the optimizer used for local client updates in
// the federated training loop.
type SGD struct {
	LR          float64 // learning rate
	Momentum    float64 // classical momentum coefficient (0 disables)
	WeightDecay float64 // L2 penalty coefficient (0 disables)

	velocity map[*tensor.Dense]*tensor.Dense
}

// NewSGD constructs an optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	if lr <= 0 {
		panic("nn: SGD with non-positive learning rate")
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*tensor.Dense]*tensor.Dense)}
}

// Step applies one update to every parameter of the network using the
// currently accumulated gradients, then leaves the gradients untouched
// (callers ZeroGrads between batches).
func (s *SGD) Step(n *Network) {
	for _, l := range n.Layers {
		params := l.Params()
		grads := l.Grads()
		for i, p := range params {
			g := grads[i]
			if s.WeightDecay > 0 {
				// g' = g + wd * p, applied without mutating the
				// stored gradient.
				for j := range p.Data {
					s.update(p, j, g.Data[j]+s.WeightDecay*p.Data[j])
				}
				continue
			}
			for j := range p.Data {
				s.update(p, j, g.Data[j])
			}
		}
	}
}

func (s *SGD) update(p *tensor.Dense, j int, g float64) {
	if s.Momentum > 0 {
		v := s.velocity[p]
		if v == nil {
			v = tensor.New(p.Shape...)
			s.velocity[p] = v
		}
		v.Data[j] = s.Momentum*v.Data[j] + g
		g = v.Data[j]
	}
	p.Data[j] -= s.LR * g
}

// Reset clears momentum state; used when the optimizer is reused across
// federated rounds where the global parameters were replaced wholesale.
func (s *SGD) Reset() {
	s.velocity = make(map[*tensor.Dense]*tensor.Dense)
}

// TrainBatch runs one forward/backward/update cycle on a batch and
// returns the batch loss before the update.
func TrainBatch(n *Network, opt *SGD, x *tensor.Dense, labels []int) float64 {
	n.ZeroGrads()
	logits := n.Forward(x)
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	n.Backward(grad)
	opt.Step(n)
	return loss
}
