package nn

import "haccs/internal/tensor"

// SGD is minibatch stochastic gradient descent with classical momentum
// and L2 weight decay — the optimizer used for local client updates in
// the federated training loop.
type SGD struct {
	LR          float64 // learning rate
	Momentum    float64 // classical momentum coefficient (0 disables)
	WeightDecay float64 // L2 penalty coefficient (0 disables)

	velocity map[*tensor.Dense]*tensor.Dense
}

// NewSGD constructs an optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	if lr <= 0 {
		panic("nn: SGD with non-positive learning rate")
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*tensor.Dense]*tensor.Dense)}
}

// Step applies one update to every parameter of the network using the
// currently accumulated gradients, then leaves the gradients untouched
// (callers ZeroGrads between batches). The velocity tensor for each
// parameter is looked up once per tensor, not per element, and update
// arithmetic matches the scalar formulation exactly:
// g' = g + wd·p; v = momentum·v + g'; p -= lr·v.
func (s *SGD) Step(n *Network) {
	for _, l := range n.Layers {
		params := l.Params()
		grads := l.Grads()
		for i, p := range params {
			g := grads[i]
			if s.Momentum > 0 {
				v := s.velocity[p]
				if v == nil {
					v = tensor.New(p.Shape...)
					s.velocity[p] = v
				}
				vd := v.Data
				for j := range p.Data {
					gj := g.Data[j]
					if s.WeightDecay > 0 {
						gj += s.WeightDecay * p.Data[j]
					}
					vd[j] = s.Momentum*vd[j] + gj
					p.Data[j] -= s.LR * vd[j]
				}
				continue
			}
			for j := range p.Data {
				gj := g.Data[j]
				if s.WeightDecay > 0 {
					gj += s.WeightDecay * p.Data[j]
				}
				p.Data[j] -= s.LR * gj
			}
		}
	}
}

// Reset clears momentum state; used when the optimizer is reused across
// federated rounds where the global parameters were replaced wholesale.
// Velocity tensors are zeroed in place so a long-lived optimizer does
// not reallocate them every round.
func (s *SGD) Reset() {
	for _, v := range s.velocity {
		v.Zero()
	}
}

// TrainBatch runs one forward/backward/update cycle on a batch and
// returns the batch loss before the update.
func TrainBatch(n *Network, opt *SGD, x *tensor.Dense, labels []int) float64 {
	n.ZeroGrads()
	logits := n.Forward(x)
	loss, grad := n.LossGrad(logits, labels)
	n.Backward(grad)
	opt.Step(n)
	return loss
}
