package nn

import (
	"math"
	"testing"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

func TestSigmoidForwardKnown(t *testing.T) {
	s := NewSigmoid()
	y := s.Forward(tensor.FromSlice([]float64{0, 100, -100}, 1, 3))
	if math.Abs(y.Data[0]-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", y.Data[0])
	}
	if y.Data[1] < 0.999 || y.Data[2] > 0.001 {
		t.Errorf("sigmoid saturation wrong: %v", y.Data)
	}
}

func TestTanhForwardKnown(t *testing.T) {
	th := NewTanh()
	y := th.Forward(tensor.FromSlice([]float64{0, 2}, 1, 2))
	if y.Data[0] != 0 || math.Abs(y.Data[1]-math.Tanh(2)) > 1e-12 {
		t.Errorf("tanh forward %v", y.Data)
	}
}

func TestGradientCheckSigmoidTanhNetwork(t *testing.T) {
	rng := stats.NewRNG(31)
	n := NewNetwork(
		NewDense(5, 7, rng), NewSigmoid(),
		NewDense(7, 6, rng), NewTanh(),
		NewDense(6, 3, rng),
	)
	x := tensor.New(4, 5)
	x.RandNormal(0, 1, rng)
	checkGradients(t, n, x, []int{0, 1, 2, 0}, 1e-6)
}

func TestGradientCheckAvgPoolNetwork(t *testing.T) {
	rng := stats.NewRNG(32)
	g := tensor.ConvGeom{Channels: 2, Height: 6, Width: 6, Kernel: 2, Stride: 2, Pad: 0}
	n := NewNetwork(
		NewAvgPool2D(g),
		NewDense(2*3*3, 3, rng),
	)
	x := tensor.New(3, 72)
	x.RandNormal(0, 1, rng)
	checkGradients(t, n, x, []int{0, 2, 1}, 1e-6)
}

func TestAvgPoolForwardKnown(t *testing.T) {
	g := tensor.ConvGeom{Channels: 1, Height: 4, Width: 4, Kernel: 2, Stride: 2, Pad: 0}
	p := NewAvgPool2D(g)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 16)
	y := p.Forward(x)
	want := []float64{2.5, 6.5, 10.5, 14.5}
	for i, w := range want {
		if math.Abs(y.Data[i]-w) > 1e-12 {
			t.Errorf("avg pool out[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestAvgPoolBackwardDistributesEvenly(t *testing.T) {
	g := tensor.ConvGeom{Channels: 1, Height: 2, Width: 2, Kernel: 2, Stride: 2, Pad: 0}
	p := NewAvgPool2D(g)
	p.Forward(tensor.New(1, 4))
	grad := p.Backward(tensor.FromSlice([]float64{4}, 1, 1))
	for i, v := range grad.Data {
		if v != 1 {
			t.Errorf("grad[%d] = %v, want 1", i, v)
		}
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	d := NewDropout(0.5, stats.NewRNG(33))
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	y := d.Forward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("inference-mode dropout altered input")
		}
	}
}

func TestDropoutTrainingDropsAndScales(t *testing.T) {
	d := NewDropout(0.5, stats.NewRNG(34))
	d.SetTraining(true)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(x)
	zeros := 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2: // 1 / (1 - 0.5)
		default:
			t.Fatalf("unexpected activation %v", v)
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("dropped fraction %v, want ~0.5", frac)
	}
	// Expected value preserved (inverted dropout).
	if mean := y.Sum() / float64(y.Size()); math.Abs(mean-1) > 0.05 {
		t.Errorf("mean activation %v, want ~1", mean)
	}
	// Backward routes gradients through the same mask.
	g := d.Backward(x.Clone())
	for i, v := range g.Data {
		if (y.Data[i] == 0) != (v == 0) {
			t.Fatal("backward mask inconsistent with forward")
		}
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1, stats.NewRNG(1))
}

func TestAdamConvergesOnSeparableData(t *testing.T) {
	rng := stats.NewRNG(35)
	n := NewMLP(2, []int{16}, 2, rng)
	opt := NewAdam(0.01)
	batch := 64
	x := tensor.New(batch, 2)
	labels := make([]int, batch)
	for i := 0; i < batch; i++ {
		if i%2 == 0 {
			x.Set(i, 0, rng.Normal(2, 0.5))
			x.Set(i, 1, rng.Normal(2, 0.5))
		} else {
			x.Set(i, 0, rng.Normal(-2, 0.5))
			x.Set(i, 1, rng.Normal(-2, 0.5))
			labels[i] = 1
		}
	}
	initial := n.Loss(x, labels)
	for i := 0; i < 150; i++ {
		TrainBatchAdam(n, opt, x, labels)
	}
	final, acc := n.Evaluate(x, labels)
	if final >= initial || acc < 0.95 {
		t.Errorf("Adam failed to converge: loss %v -> %v, acc %v", initial, final, acc)
	}
}

func TestAdamFasterThanSGDOnIllConditioned(t *testing.T) {
	// A feature with a tiny scale makes plain SGD slow; Adam's
	// per-parameter adaptation shrugs it off.
	build := func() (*Network, *tensor.Dense, []int) {
		rng := stats.NewRNG(36)
		n := NewMLP(2, nil, 2, rng)
		batch := 64
		x := tensor.New(batch, 2)
		labels := make([]int, batch)
		for i := 0; i < batch; i++ {
			cls := i % 2
			sign := float64(2*cls - 1)
			x.Set(i, 0, sign*0.001+rng.Normal(0, 0.0002)) // tiny informative feature
			x.Set(i, 1, rng.Normal(0, 1))                 // big useless feature
			labels[i] = cls
		}
		return n, x, labels
	}
	nSGD, x, labels := build()
	sgd := NewSGD(0.05, 0, 0)
	for i := 0; i < 100; i++ {
		TrainBatch(nSGD, sgd, x, labels)
	}
	nAdam, x2, labels2 := build()
	adam := NewAdam(0.05)
	for i := 0; i < 100; i++ {
		TrainBatchAdam(nAdam, adam, x2, labels2)
	}
	sgdAcc := nSGD.Accuracy(x, labels)
	adamAcc := nAdam.Accuracy(x2, labels2)
	if adamAcc <= sgdAcc {
		t.Errorf("Adam accuracy %v not above SGD %v on ill-conditioned features", adamAcc, sgdAcc)
	}
}

func TestAdamResetAndValidation(t *testing.T) {
	a := NewAdam(0.01)
	a.step = 5
	a.Reset()
	if a.step != 0 {
		t.Error("Reset did not clear step")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad lr")
		}
	}()
	NewAdam(0)
}

func TestExtraLayersCloneAndName(t *testing.T) {
	g := tensor.ConvGeom{Channels: 1, Height: 4, Width: 4, Kernel: 2, Stride: 2, Pad: 0}
	layers := []Layer{NewSigmoid(), NewTanh(), NewDropout(0.3, stats.NewRNG(1)), NewAvgPool2D(g)}
	for _, l := range layers {
		c := l.Clone()
		if c.Name() != l.Name() {
			t.Errorf("clone name %q != %q", c.Name(), l.Name())
		}
		if len(l.Params()) != 0 || len(l.Grads()) != 0 {
			t.Errorf("%s unexpectedly has parameters", l.Name())
		}
	}
	// Dropout clones come back in inference mode.
	d := NewDropout(0.9, stats.NewRNG(2))
	d.SetTraining(true)
	clone := d.Clone().(*Dropout)
	x := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4)
	y := clone.Forward(x)
	for i := range x.Data {
		if y.Data[i] != 1 {
			t.Fatal("cloned dropout not in inference mode")
		}
	}
}

func TestAddProximalGrad(t *testing.T) {
	rng := stats.NewRNG(37)
	n := NewMLP(3, nil, 2, rng)
	ref := make([]float64, n.NumParams()) // zero reference
	n.ZeroGrads()
	n.AddProximalGrad(ref, 0.5)
	// With a zero reference, grad == mu * params.
	params := n.ParamsVector()
	grads := n.GradsVector()
	for i := range params {
		if math.Abs(grads[i]-0.5*params[i]) > 1e-12 {
			t.Fatalf("prox grad[%d] = %v, want %v", i, grads[i], 0.5*params[i])
		}
	}
	// mu = 0 is a no-op.
	n.ZeroGrads()
	n.AddProximalGrad(ref, 0)
	for _, g := range n.GradsVector() {
		if g != 0 {
			t.Fatal("mu=0 modified gradients")
		}
	}
}

func TestAddProximalGradLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP(2, nil, 2, stats.NewRNG(1)).AddProximalGrad([]float64{1}, 0.1)
}
