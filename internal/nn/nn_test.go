package nn

import (
	"math"
	"testing"

	"haccs/internal/stats"
	"haccs/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, stats.NewRNG(1))
	copy(d.W.Data, []float64{1, 2, 3, 4})
	copy(d.B.Data, []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x)
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Errorf("Dense forward = %v", y.Data)
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Errorf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient: (0.25 - onehot)/batch.
	if math.Abs(grad.At(0, 0)-(0.25-1)/2) > 1e-12 {
		t.Errorf("grad[0,0] = %v", grad.At(0, 0))
	}
	if math.Abs(grad.At(0, 1)-0.25/2) > 1e-12 {
		t.Errorf("grad[0,1] = %v", grad.At(0, 1))
	}
}

func TestSoftmaxCrossEntropyGradSumsToZero(t *testing.T) {
	rng := stats.NewRNG(2)
	logits := tensor.New(3, 5)
	logits.RandNormal(0, 2, rng)
	_, grad := SoftmaxCrossEntropy(logits, []int{1, 0, 4})
	for i := 0; i < 3; i++ {
		s := 0.0
		for _, v := range grad.Row(i) {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("row %d gradient sums to %v, want 0", i, s)
		}
	}
}

// numericalGrad estimates d(loss)/d(param[idx]) by central differences.
func numericalGrad(n *Network, x *tensor.Dense, labels []int, p *tensor.Dense, idx int) float64 {
	const h = 1e-5
	orig := p.Data[idx]
	p.Data[idx] = orig + h
	lossPlus := n.Loss(x, labels)
	p.Data[idx] = orig - h
	lossMinus := n.Loss(x, labels)
	p.Data[idx] = orig
	return (lossPlus - lossMinus) / (2 * h)
}

func checkGradients(t *testing.T, n *Network, x *tensor.Dense, labels []int, tol float64) {
	t.Helper()
	n.ZeroGrads()
	logits := n.Forward(x)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	n.Backward(grad)
	for li, l := range n.Layers {
		params := l.Params()
		grads := l.Grads()
		for pi, p := range params {
			// Check a subset of indices for big tensors.
			step := p.Size()/25 + 1
			for idx := 0; idx < p.Size(); idx += step {
				want := numericalGrad(n, x, labels, p, idx)
				got := grads[pi].Data[idx]
				if math.Abs(got-want) > tol*(1+math.Abs(want)) {
					t.Errorf("layer %d (%s) param %d idx %d: analytic %v numeric %v",
						li, l.Name(), pi, idx, got, want)
				}
			}
		}
	}
}

func TestGradientCheckMLP(t *testing.T) {
	rng := stats.NewRNG(3)
	n := NewMLP(6, []int{8, 5}, 3, rng)
	x := tensor.New(4, 6)
	x.RandNormal(0, 1, rng)
	checkGradients(t, n, x, []int{0, 1, 2, 1}, 1e-6)
}

func TestGradientCheckConvNet(t *testing.T) {
	rng := stats.NewRNG(4)
	g := tensor.ConvGeom{Channels: 1, Height: 8, Width: 8, Kernel: 3, Stride: 1, Pad: 0}
	conv := NewConv2D(g, 2, rng)
	pg := tensor.ConvGeom{Channels: 2, Height: 6, Width: 6, Kernel: 2, Stride: 2, Pad: 0}
	pool := NewMaxPool2D(pg)
	n := NewNetwork(conv, NewReLU(), pool, NewFlatten(), NewDense(2*3*3, 3, rng))
	x := tensor.New(3, 64)
	x.RandNormal(0, 1, rng)
	checkGradients(t, n, x, []int{0, 2, 1}, 1e-5)
}

func TestGradientCheckConvWithPadding(t *testing.T) {
	rng := stats.NewRNG(5)
	g := tensor.ConvGeom{Channels: 2, Height: 5, Width: 5, Kernel: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, 3, rng)
	n := NewNetwork(conv, NewReLU(), NewFlatten(), NewDense(3*5*5, 2, rng))
	x := tensor.New(2, 50)
	x.RandNormal(0, 1, rng)
	checkGradients(t, n, x, []int{1, 0}, 1e-5)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 2, -3, 4}, 1, 4)
	y := r.Forward(x)
	want := []float64{0, 2, 0, 4}
	for i, w := range want {
		if y.Data[i] != w {
			t.Errorf("ReLU forward[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	g := r.Backward(tensor.FromSlice([]float64{5, 5, 5, 5}, 1, 4))
	wantG := []float64{0, 5, 0, 5}
	for i, w := range wantG {
		if g.Data[i] != w {
			t.Errorf("ReLU backward[%d] = %v, want %v", i, g.Data[i], w)
		}
	}
}

func TestMaxPoolForward(t *testing.T) {
	pg := tensor.ConvGeom{Channels: 1, Height: 4, Width: 4, Kernel: 2, Stride: 2, Pad: 0}
	p := NewMaxPool2D(pg)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 16)
	y := p.Forward(x)
	want := []float64{4, 8, 12, 16}
	for i, w := range want {
		if y.Data[i] != w {
			t.Errorf("pool out[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	// Backward routes gradient only to the argmax positions.
	g := p.Backward(tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4))
	nonzero := 0
	for _, v := range g.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 4 {
		t.Errorf("pool backward nonzeros = %d, want 4", nonzero)
	}
	if g.Data[5] != 1 { // position of value 4
		t.Error("gradient not routed to argmax")
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	rng := stats.NewRNG(6)
	n := NewMLP(4, []int{7}, 3, rng)
	v := n.ParamsVector()
	if len(v) != n.NumParams() {
		t.Fatalf("vector length %d, want %d", len(v), n.NumParams())
	}
	if n.NumParams() != 4*7+7+7*3+3 {
		t.Fatalf("NumParams = %d", n.NumParams())
	}
	m := NewMLP(4, []int{7}, 3, stats.NewRNG(7))
	m.SetParamsVector(v)
	v2 := m.ParamsVector()
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestSetParamsVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP(2, nil, 2, stats.NewRNG(1)).SetParamsVector([]float64{1})
}

func TestCloneIndependence(t *testing.T) {
	rng := stats.NewRNG(8)
	n := NewMLP(3, []int{4}, 2, rng)
	c := n.Clone()
	before := n.ParamsVector()
	// Mutate the clone.
	cv := c.ParamsVector()
	for i := range cv {
		cv[i] += 1
	}
	c.SetParamsVector(cv)
	after := n.ParamsVector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Clone shares parameter storage")
		}
	}
}

func TestSGDReducesLossOnSeparableData(t *testing.T) {
	rng := stats.NewRNG(9)
	n := NewMLP(2, []int{16}, 2, rng)
	opt := NewSGD(0.1, 0.9, 0)
	// Two well-separated Gaussian blobs.
	batch := 64
	x := tensor.New(batch, 2)
	labels := make([]int, batch)
	for i := 0; i < batch; i++ {
		if i%2 == 0 {
			x.Set(i, 0, rng.Normal(2, 0.5))
			x.Set(i, 1, rng.Normal(2, 0.5))
			labels[i] = 0
		} else {
			x.Set(i, 0, rng.Normal(-2, 0.5))
			x.Set(i, 1, rng.Normal(-2, 0.5))
			labels[i] = 1
		}
	}
	initial := n.Loss(x, labels)
	for epoch := 0; epoch < 100; epoch++ {
		TrainBatch(n, opt, x, labels)
	}
	final, acc := n.Evaluate(x, labels)
	if final >= initial {
		t.Errorf("loss did not decrease: %v -> %v", initial, final)
	}
	if acc < 0.95 {
		t.Errorf("accuracy = %v on separable blobs, want >= 0.95", acc)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := stats.NewRNG(10)
	n := NewMLP(2, nil, 2, rng)
	opt := NewSGD(0.1, 0, 0.5)
	x := tensor.New(1, 2) // zero input: only decay acts on W
	labels := []int{0}
	normBefore := n.Layers[0].Params()[0].Norm2()
	for i := 0; i < 20; i++ {
		TrainBatch(n, opt, x, labels)
	}
	normAfter := n.Layers[0].Params()[0].Norm2()
	if normAfter >= normBefore {
		t.Errorf("weight decay did not shrink weights: %v -> %v", normBefore, normAfter)
	}
}

func TestLeNetShapesAndTraining(t *testing.T) {
	rng := stats.NewRNG(11)
	// 28x28 single channel, as synthetic MNIST.
	n := NewLeNet(1, 28, 28, 10, 4, 8, rng)
	x := tensor.New(8, 28*28)
	x.RandNormal(0, 1, rng)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	logits := n.Forward(x)
	if logits.Rows() != 8 || logits.Cols() != 10 {
		t.Fatalf("LeNet logits shape %v", logits.Shape)
	}
	opt := NewSGD(0.05, 0.9, 0)
	initial := n.Loss(x, labels)
	for i := 0; i < 30; i++ {
		TrainBatch(n, opt, x, labels)
	}
	if final := n.Loss(x, labels); final >= initial {
		t.Errorf("LeNet memorization failed: %v -> %v", initial, final)
	}
}

func TestArchBuild(t *testing.T) {
	rng := stats.NewRNG(12)
	mlp := Arch{Kind: "mlp", In: 10, Hidden: []int{5}, Classes: 3}.Build(rng)
	if mlp.NumParams() != 10*5+5+5*3+3 {
		t.Errorf("mlp params = %d", mlp.NumParams())
	}
	lenet := Arch{Kind: "lenet", Channels: 1, Height: 28, Width: 28, Classes: 10}.Build(rng)
	if lenet.NumParams() == 0 {
		t.Error("lenet has no params")
	}
	if lenet.WireBytes() != 4*lenet.NumParams() {
		t.Error("WireBytes mismatch")
	}
}

func TestArchBuildUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Arch{Kind: "transformer"}.Build(stats.NewRNG(1))
}

func TestBuildDeterministicFromSeed(t *testing.T) {
	a := Arch{Kind: "mlp", In: 6, Hidden: []int{4}, Classes: 2}
	n1 := a.Build(stats.NewRNG(77))
	n2 := a.Build(stats.NewRNG(77))
	v1, v2 := n1.ParamsVector(), n2.ParamsVector()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same seed produced different init")
		}
	}
}

func TestEvaluateEmptyBatch(t *testing.T) {
	n := NewMLP(2, nil, 2, stats.NewRNG(1))
	loss, acc := n.Evaluate(tensor.New(1, 2), nil)
	if loss != 0 || acc != 0 {
		t.Errorf("empty evaluate = %v, %v", loss, acc)
	}
}

func TestAccuracyPerfectAndZero(t *testing.T) {
	// A hand-built network that always predicts class 1.
	d := NewDense(1, 2, stats.NewRNG(1))
	copy(d.W.Data, []float64{0, 0})
	copy(d.B.Data, []float64{0, 10})
	n := NewNetwork(d)
	x := tensor.New(4, 1)
	if acc := n.Accuracy(x, []int{1, 1, 1, 1}); acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	if acc := n.Accuracy(x, []int{0, 0, 0, 0}); acc != 0 {
		t.Errorf("accuracy = %v, want 0", acc)
	}
}

func TestLabelOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 2), []int{5})
}
