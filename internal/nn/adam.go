package nn

import (
	"math"

	"haccs/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba): per-parameter
// adaptive learning rates from exponential moving averages of gradients
// and squared gradients, with bias correction. Provided as an
// alternative local solver to SGD; federated averaging is agnostic to
// how clients compute their local updates.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	step int
	m    map[*tensor.Dense]*tensor.Dense // first-moment estimates
	v    map[*tensor.Dense]*tensor.Dense // second-moment estimates
}

// NewAdam constructs an Adam optimizer with the reference defaults
// (beta1 0.9, beta2 0.999, epsilon 1e-8).
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic("nn: Adam with non-positive learning rate")
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: map[*tensor.Dense]*tensor.Dense{},
		v: map[*tensor.Dense]*tensor.Dense{},
	}
}

// Step applies one Adam update using the currently accumulated
// gradients.
func (a *Adam) Step(n *Network) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, l := range n.Layers {
		params := l.Params()
		grads := l.Grads()
		for i, p := range params {
			g := grads[i]
			m := a.m[p]
			if m == nil {
				m = tensor.New(p.Shape...)
				a.m[p] = m
			}
			v := a.v[p]
			if v == nil {
				v = tensor.New(p.Shape...)
				a.v[p] = v
			}
			for j := range p.Data {
				gj := g.Data[j]
				m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
				v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
				mHat := m.Data[j] / bc1
				vHat := v.Data[j] / bc2
				p.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
			}
		}
	}
}

// Reset clears moment estimates and the step counter. Moment tensors
// are zeroed in place so a long-lived optimizer does not reallocate
// them every round.
func (a *Adam) Reset() {
	a.step = 0
	for _, m := range a.m {
		m.Zero()
	}
	for _, v := range a.v {
		v.Zero()
	}
}

// TrainBatchAdam mirrors TrainBatch for the Adam optimizer.
func TrainBatchAdam(n *Network, opt *Adam, x *tensor.Dense, labels []int) float64 {
	n.ZeroGrads()
	logits := n.Forward(x)
	loss, grad := n.LossGrad(logits, labels)
	n.Backward(grad)
	opt.Step(n)
	return loss
}
