package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if fewer than
// two observations).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between order statistics. It panics on an empty
// slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval under the normal approximation (1.96 * stderr).
// The paper reports such margins for the Fig. 8a clustering-accuracy
// experiment.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	stderr := StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, 1.96 * stderr
}

// EMA returns the exponential moving average of xs with smoothing factor
// alpha in (0, 1]; larger alpha tracks the raw series more closely.
// Used to render the "smoothed curve" style of the paper's Fig. 5.
func EMA(xs []float64, alpha float64) []float64 {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EMA alpha out of (0, 1]")
	}
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// ArgMaxFloat returns the index of the largest element (first on ties).
// It panics on an empty slice.
func ArgMaxFloat(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMaxFloat of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMinFloat returns the index of the smallest element (first on ties).
// It panics on an empty slice.
func ArgMinFloat(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMinFloat of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
