package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTotalVariationKnown(t *testing.T) {
	if d := TotalVariation([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Errorf("disjoint TV = %v", d)
	}
	if d := TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5}); d != 0 {
		t.Errorf("identical TV = %v", d)
	}
	if d := TotalVariation([]float64{0.8, 0.2}, []float64{0.6, 0.4}); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("TV = %v, want 0.2", d)
	}
}

func TestJensenShannonKnown(t *testing.T) {
	if d := JensenShannon([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint JS = %v, want 1", d)
	}
	if d := JensenShannon([]float64{0.3, 0.7}, []float64{0.3, 0.7}); d > 1e-9 {
		t.Errorf("identical JS = %v", d)
	}
}

func TestBhattacharyyaRelatesToHellinger(t *testing.T) {
	// H² = 1 - BC, i.e. Bhattacharyya() == Hellinger()².
	p := []float64{0.7, 0.2, 0.1}
	q := []float64{0.1, 0.3, 0.6}
	h := Hellinger(p, q)
	b := Bhattacharyya(p, q)
	if math.Abs(b-h*h) > 1e-12 {
		t.Errorf("Bhattacharyya %v != Hellinger² %v", b, h*h)
	}
}

func TestKLDivergence(t *testing.T) {
	if d := KLDivergence([]float64{0.5, 0.5}, []float64{0.5, 0.5}); d != 0 {
		t.Errorf("identical KL = %v", d)
	}
	// Mass where q has none: infinite.
	if d := KLDivergence([]float64{0.5, 0.5}, []float64{1, 0}); !math.IsInf(d, 1) {
		t.Errorf("KL onto zero support = %v, want +Inf", d)
	}
	// Asymmetric in general.
	p := []float64{0.9, 0.1}
	q := []float64{0.5, 0.5}
	if math.Abs(KLDivergence(p, q)-KLDivergence(q, p)) < 1e-9 {
		t.Error("KL unexpectedly symmetric")
	}
}

func TestDistancesPropertyBoundsSymmetry(t *testing.T) {
	type distFn struct {
		name string
		fn   func(p, q []float64) float64
	}
	fns := []distFn{
		{"tv", TotalVariation},
		{"js", JensenShannon},
		{"bhattacharyya", Bhattacharyya},
		{"hellinger", Hellinger},
	}
	f := func(a, b [5]float64) bool {
		p := randomSimplex(a[:], 5)
		q := randomSimplex(b[:], 5)
		for _, d := range fns {
			v1 := d.fn(p, q)
			v2 := d.fn(q, p)
			if v1 < 0 || v1 > 1 {
				return false
			}
			if math.Abs(v1-v2) > 1e-12 {
				return false
			}
			if d.fn(p, p) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceOrderingConsistency(t *testing.T) {
	// All bounded distances should agree on gross ordering: a near copy
	// is closer than a disjoint distribution.
	base := []float64{0.7, 0.2, 0.1, 0}
	near := []float64{0.65, 0.25, 0.1, 0}
	far := []float64{0, 0, 0.1, 0.9}
	for name, fn := range map[string]func(p, q []float64) float64{
		"tv": TotalVariation, "js": JensenShannon, "bhattacharyya": Bhattacharyya, "hellinger": Hellinger,
	} {
		if fn(base, near) >= fn(base, far) {
			t.Errorf("%s: near (%v) not closer than far (%v)", name, fn(base, near), fn(base, far))
		}
	}
}

func TestDistancesLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(p, q []float64) float64{
		"tv": TotalVariation, "js": JensenShannon, "bhattacharyya": Bhattacharyya, "kl": KLDivergence,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn([]float64{1}, []float64{0.5, 0.5})
		}()
	}
}
