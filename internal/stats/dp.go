package stats

import "math"

// The Laplace mechanism (Dwork & Roth) releases a histogram under
// (epsilon, 0)-differential privacy by adding independent
// Laplace(0, sensitivity/epsilon) noise to every bin. For counting
// histograms the L1 sensitivity is 1 (adding or removing one training
// point changes exactly one bin by one), matching the paper's
// Laplace(0, 1/epsilon) noise (eq. 5 gives its variance 2/epsilon^2).

// LaplaceMechanism returns a copy of h with independent Laplace(0, 1/eps)
// noise added to every bin. Smaller eps means stronger privacy and
// noisier summaries. It panics if eps <= 0; use the un-noised histogram
// directly when no privacy is required.
func LaplaceMechanism(h *Histogram, eps float64, rng *RNG) *Histogram {
	return LaplaceMechanismSensitivity(h, eps, 1, rng)
}

// LaplaceMechanismSensitivity is LaplaceMechanism with an explicit L1
// sensitivity, for summaries where one data point can move more than one
// unit of bin mass (e.g. histograms normalized before release).
func LaplaceMechanismSensitivity(h *Histogram, eps, sensitivity float64, rng *RNG) *Histogram {
	if eps <= 0 {
		panic("stats: LaplaceMechanism with non-positive epsilon")
	}
	if sensitivity <= 0 {
		panic("stats: LaplaceMechanism with non-positive sensitivity")
	}
	out := h.Clone()
	scale := sensitivity / eps
	for i := range out.Counts {
		out.Counts[i] += rng.Laplace(0, scale)
	}
	return out
}

// LaplaceNoiseVariance returns the variance of the noise added per bin for
// a given epsilon at sensitivity 1: Var = 2*(1/eps)^2 (paper eq. 5).
func LaplaceNoiseVariance(eps float64) float64 {
	return 2 / (eps * eps)
}

// PrivacyForVariance inverts LaplaceNoiseVariance: the epsilon that yields
// the given per-bin noise variance.
func PrivacyForVariance(variance float64) float64 {
	if variance <= 0 {
		panic("stats: PrivacyForVariance with non-positive variance")
	}
	return math.Sqrt(2 / variance)
}
