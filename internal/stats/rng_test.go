package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsIndependent(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 1000; i++ {
		s := DeriveSeed(7, i)
		if prev, ok := seen[s]; ok {
			t.Fatalf("DeriveSeed collision: indices %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64MeanAndVariance(t *testing.T) {
	r := NewRNG(4)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumsq += f * f
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12.0) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12.0)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) value %d drawn %d times out of 70000, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(6)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("normal variance = %v, want ~4", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := NewRNG(7)
	n := 400000
	b := 1.5
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Laplace(0, b)
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("laplace mean = %v, want ~0", mean)
	}
	want := 2 * b * b
	if math.Abs(variance-want) > 0.15 {
		t.Errorf("laplace variance = %v, want ~%v", variance, want)
	}
}

func TestLaplaceVarianceMatchesEquation5(t *testing.T) {
	// Paper eq. 5: Var = 2*(1/eps)^2 for the privacy-noise distribution.
	for _, eps := range []float64{0.001, 0.01, 0.1, 1} {
		got := LaplaceNoiseVariance(eps)
		want := 2 / (eps * eps)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("LaplaceNoiseVariance(%v) = %v, want %v", eps, got, want)
		}
		back := PrivacyForVariance(got)
		if math.Abs(back-eps) > 1e-9 {
			t.Errorf("PrivacyForVariance round trip: %v -> %v", eps, back)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(8)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exponential(4)
		if x < 0 {
			t.Fatalf("Exponential returned negative %v", x)
		}
		sum += x
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("exponential mean = %v, want ~0.25", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	r := NewRNG(10)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(50) + 1
		k := r.Intn(n + 1)
		s := r.SampleWithoutReplacement(n, k)
		if len(s) != k {
			t.Fatalf("sample length %d, want %d", len(s), k)
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid or duplicate sample %d (n=%d)", v, n)
			}
			seen[v] = true
		}
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	r := NewRNG(11)
	weights := []float64{1, 0, 3, 6}
	counts := make([]int, len(weights))
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		want := w / 10 * float64(n)
		if math.Abs(float64(counts[i])-want) > 0.05*float64(n) {
			t.Errorf("index %d drawn %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestWeightedChoiceAllZeroFallsBackToUniform(t *testing.T) {
	r := NewRNG(12)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedChoice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("all-zero weights: index %d drawn %d times, want ~10000", i, c)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		a := NewRNG(99)
		b := NewRNG(99)
		want := a.Perm(n)
		got := make([]int, n)
		b.PermInto(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PermInto[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		// Both must have consumed the identical stream.
		if a.Float64() != b.Float64() {
			t.Fatalf("n=%d: RNG streams diverged after Perm vs PermInto", n)
		}
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(7)
	// Burn an odd number of normal draws so the Box-Muller spare is
	// cached: the snapshot must carry it, or the restored stream skips
	// one deviate.
	for i := 0; i < 5; i++ {
		r.Normal(0, 1)
	}
	st := r.State()
	if !st.HasSpare {
		t.Fatal("expected a cached Box-Muller spare after 5 Normal draws")
	}
	want := make([]float64, 64)
	for i := range want {
		switch i % 3 {
		case 0:
			want[i] = r.Float64()
		case 1:
			want[i] = r.Normal(2, 3)
		default:
			want[i] = float64(r.Intn(1000))
		}
	}
	fresh := NewRNG(12345)
	fresh.SetState(st)
	for i := range want {
		var got float64
		switch i % 3 {
		case 0:
			got = fresh.Float64()
		case 1:
			got = fresh.Normal(2, 3)
		default:
			got = float64(fresh.Intn(1000))
		}
		if got != want[i] {
			t.Fatalf("draw %d after SetState = %v, want %v", i, got, want[i])
		}
	}
}

func TestRNGSetStateRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetState with all-zero state did not panic")
		}
	}()
	NewRNG(1).SetState(RNGState{})
}
