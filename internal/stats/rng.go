// Package stats provides the statistical substrate for HACCS: a
// deterministic random number generator, probability distributions,
// histogram summaries, the Hellinger distance, and the Laplace mechanism
// for differential privacy.
//
// Every stochastic component in the repository draws from this package so
// that experiments are reproducible from a single root seed. The generator
// is xoshiro256** seeded via splitmix64, the combination recommended by
// Blackman & Vigna; it is small, fast, and has no shared global state, so
// concurrent simulations can each own an independent stream.
package stats

import "math"

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is used both as a standalone mixer (fanning one root seed out into
// independent subsystem seeds) and to seed xoshiro256**.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives the i-th child seed from a root
// seed. Subsystems (dataset generation, network heterogeneity, each
// selection strategy, dropout processes) use distinct indices so changing
// one subsystem's draws never perturbs another's.
func DeriveSeed(root uint64, index uint64) uint64 {
	state := root ^ (0x517cc1b727220a95 * (index + 1))
	return SplitMix64(&state)
}

// RNG is a deterministic xoshiro256** pseudo-random generator.
// The zero value is not valid; construct with NewRNG.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// RNGState is the complete serializable state of an RNG: the four
// xoshiro256** words plus the cached Box-Muller spare. Restoring it
// with SetState continues the stream exactly where State captured it,
// which is what makes checkpoint/resume bit-identical for every
// consumer of engine randomness.
type RNGState struct {
	S        [4]uint64
	Spare    float64
	HasSpare bool
}

// State captures the generator's current state.
func (r *RNG) State() RNGState {
	return RNGState{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// SetState overwrites the generator's state with a previously captured
// one. It panics on an all-zero xoshiro state, which the generator can
// never reach from a valid seed.
func (r *RNG) SetState(st RNGState) {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		panic("stats: SetState with all-zero xoshiro state")
	}
	r.s = st.S
	r.spare = st.Spare
	r.hasSpare = st.HasSpare
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster, but
	// simple rejection keeps the stream layout obvious and is plenty fast
	// for simulation workloads.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Laplace returns a draw from the Laplace(mu, b) distribution, where b is
// the scale parameter. This is the noise distribution of the Laplace
// mechanism used to make histogram summaries differentially private.
func (r *RNG) Laplace(mu, b float64) float64 {
	// Inverse CDF sampling: U ~ Uniform(-1/2, 1/2),
	// X = mu - b * sign(U) * ln(1 - 2|U|).
	u := r.Float64() - 0.5
	if u >= 0 {
		return mu - b*math.Log(1-2*u)
	}
	return mu + b*math.Log(1+2*u)
}

// Exponential returns a draw from the exponential distribution with the
// given rate (lambda).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a pseudo-random permutation of [0, len(p)),
// consuming exactly the same RNG stream as Perm of the same length —
// the allocation-free variant for hot loops.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle pseudo-randomly permutes the first n elements using the provided
// swap function (same contract as math/rand.Shuffle).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n or k < 0.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleWithoutReplacement with k out of range")
	}
	p := r.Perm(n)
	return p[:k]
}

// WeightedChoice samples one index from the categorical distribution given
// by weights. Non-positive weights are treated as zero. If all weights are
// zero it falls back to a uniform draw. Used by the cluster scheduler's
// weighted simple random sampling with replacement (Weighted-SRSWR).
func (r *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating-point slack: return last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Gamma returns a draw from the Gamma distribution with the given shape
// and scale, using the Marsaglia-Tsang squeeze method (with the standard
// boost for shape < 1). Used to sample Dirichlet label distributions for
// the Dirichlet non-IID partitioner.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma with non-positive parameters")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Dirichlet returns a draw from the symmetric Dirichlet distribution
// with concentration alpha over dim categories: a probability vector.
// Small alpha concentrates mass on few categories (high skew); large
// alpha approaches uniform (near IID).
func (r *RNG) Dirichlet(dim int, alpha float64) []float64 {
	if dim <= 0 || alpha <= 0 {
		panic("stats: Dirichlet with non-positive parameters")
	}
	out := make([]float64, dim)
	total := 0.0
	for i := range out {
		out[i] = r.Gamma(alpha, 1)
		total += out[i]
	}
	if total <= 0 {
		// Numerically degenerate draw (all ~0): put everything on one
		// uniformly chosen category, the alpha->0 limit.
		out[r.Intn(dim)] = 1
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}
