package stats

import (
	"bytes"
	"encoding/gob"
	"math"
	"sort"
	"testing"
)

// exactQuantile is the reference: nearest-rank quantile on the full
// sorted sample.
func exactQuantile(vals []float64, p float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestP2Empty(t *testing.T) {
	e := NewP2(0.5)
	if got := e.Value(); got != 0 {
		t.Fatalf("empty Value = %v, want 0", got)
	}
	if e.Count() != 0 {
		t.Fatalf("empty Count = %d", e.Count())
	}
}

func TestP2SmallSampleExact(t *testing.T) {
	e := NewP2(0.5)
	for _, v := range []float64{9, 1, 5} {
		e.Observe(v)
	}
	// Below five observations the estimate is the exact nearest-rank
	// quantile of what has been seen.
	if got, want := e.Value(), exactQuantile([]float64{9, 1, 5}, 0.5); got != want {
		t.Fatalf("Value = %v, want %v", got, want)
	}
}

func TestP2ConvergesOnUniform(t *testing.T) {
	for _, p := range []float64{0.5, 0.9, 0.99} {
		e := NewP2(p)
		rng := NewRNG(7)
		vals := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := rng.Float64() * 100
			vals = append(vals, v)
			e.Observe(v)
		}
		want := exactQuantile(vals, p)
		got := e.Value()
		if math.Abs(got-want) > 1.5 {
			t.Errorf("p=%v: estimate %v, exact %v", p, got, want)
		}
	}
}

func TestP2ConvergesOnSkewed(t *testing.T) {
	// Exponential-ish distribution via inverse transform: heavy tail
	// stresses the marker adjustment more than uniform.
	e := NewP2(0.9)
	rng := NewRNG(11)
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := -math.Log(1 - rng.Float64())
		vals = append(vals, v)
		e.Observe(v)
	}
	want := exactQuantile(vals, 0.9)
	got := e.Value()
	if math.Abs(got-want) > 0.15 {
		t.Errorf("estimate %v, exact %v", got, want)
	}
}

func TestP2Deterministic(t *testing.T) {
	a, b := NewP2(0.9), NewP2(0.9)
	rng := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := rng.Float64()
		a.Observe(v)
		b.Observe(v)
	}
	if a != b {
		t.Fatalf("same stream diverged: %+v vs %+v", a, b)
	}
}

// TestP2GobRoundTrip pins the checkpoint property: serialize mid-stream,
// restore, keep observing — state stays bit-identical to the
// uninterrupted estimator.
func TestP2GobRoundTrip(t *testing.T) {
	ref := NewP2(0.99)
	rng := NewRNG(5)
	stream := make([]float64, 500)
	for i := range stream {
		stream[i] = rng.Float64() * 10
	}
	for _, v := range stream[:200] {
		ref.Observe(v)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ref); err != nil {
		t.Fatal(err)
	}
	var restored P2
	if err := gob.NewDecoder(&buf).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	if restored != ref {
		t.Fatalf("restore mismatch: %+v vs %+v", restored, ref)
	}

	for _, v := range stream[200:] {
		ref.Observe(v)
		restored.Observe(v)
	}
	if restored != ref {
		t.Fatalf("post-restore divergence: %+v vs %+v", restored, ref)
	}
}

func TestP2BadQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", p)
				}
			}()
			NewP2(p)
		}()
	}
}
