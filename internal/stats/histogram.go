package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width histogram over either discrete class labels
// (one bin per label, used for the P(y) summary) or a bounded continuous
// range (used for the per-label feature histograms of the P(X|y) summary).
//
// Counts are stored as float64 so that Laplace noise can be added in place
// by the differential-privacy mechanism; a noised histogram may therefore
// contain negative "counts", which Normalize clamps.
type Histogram struct {
	// Counts holds the per-bin mass. For a label histogram, bin i is the
	// count of label i. For a feature histogram, bin i covers
	// [Lo + i*w, Lo + (i+1)*w) with w = (Hi-Lo)/len(Counts).
	Counts []float64
	// Lo and Hi bound the continuous range for feature histograms.
	// They are ignored (zero) for label histograms.
	Lo, Hi float64
}

// NewLabelHistogram returns an empty histogram with one bin per class.
func NewLabelHistogram(numClasses int) *Histogram {
	if numClasses <= 0 {
		panic("stats: NewLabelHistogram with non-positive class count")
	}
	return &Histogram{Counts: make([]float64, numClasses)}
}

// NewRangeHistogram returns an empty histogram with bins equal-width bins
// over [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewRangeHistogram(bins int, lo, hi float64) *Histogram {
	if bins <= 0 {
		panic("stats: NewRangeHistogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: NewRangeHistogram with empty range")
	}
	return &Histogram{Counts: make([]float64, bins), Lo: lo, Hi: hi}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// AddLabel increments the bin for a discrete label. Out-of-range labels
// panic: they indicate a dataset/model class-count mismatch.
func (h *Histogram) AddLabel(label int) {
	h.Counts[label]++
}

// AddValue bins a continuous value. Values outside [Lo, Hi) are clamped
// into the first or last bin; feature ranges are nominal bounds and raw
// pixel noise may slightly exceed them.
func (h *Histogram) AddValue(v float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	i := int(math.Floor((v - h.Lo) / w))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the sum of all bin masses (negative bins contribute
// negatively; call after Clamp if that matters).
func (h *Histogram) Total() float64 {
	t := 0.0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Clamp zeroes any negative bins (which appear after Laplace noising).
func (h *Histogram) Clamp() {
	for i, c := range h.Counts {
		if c < 0 {
			h.Counts[i] = 0
		}
	}
}

// Normalize returns the histogram as a probability vector: non-negative
// entries summing to 1. Negative bins are clamped to zero first. If the
// histogram is entirely empty (or all-negative), a uniform distribution is
// returned so that downstream distance computations remain well defined.
func (h *Histogram) Normalize() []float64 {
	p := make([]float64, len(h.Counts))
	total := 0.0
	for i, c := range h.Counts {
		if c > 0 {
			p[i] = c
			total += c
		}
	}
	if total <= 0 {
		u := 1.0 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

// Amplitude returns the histogram's Hellinger embedding: the element-wise
// square root of its normalized probability vector. Amplitude vectors have
// unit L2 norm (√p · √p = Σp = 1), so the Hellinger distance between two
// histograms is exactly AmplitudeDistance of their amplitudes — computing
// the amplitude once per histogram and reusing it across every pairwise
// comparison removes the per-pair normalize+sqrt work that dominates a
// dense distance-matrix build.
func (h *Histogram) Amplitude() []float64 {
	a := h.Normalize()
	for i, p := range a {
		a[i] = math.Sqrt(p)
	}
	return a
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{Counts: make([]float64, len(h.Counts)), Lo: h.Lo, Hi: h.Hi}
	copy(c.Counts, h.Counts)
	return c
}

// String renders a compact representation, useful in logs and tests.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram{bins=%d total=%.1f}", len(h.Counts), h.Total())
}

// Hellinger computes the Hellinger distance between two probability
// vectors p and q:
//
//	H(p, q) = (1/sqrt(2)) * || sqrt(p) - sqrt(q) ||_2
//
// It is the paper's distance function d for comparing distribution
// summaries (eq. 3): bounded in [0, 1], symmetric, and tolerant of zero
// entries. The inputs must already be normalized and of equal length.
func Hellinger(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: Hellinger on vectors of different lengths")
	}
	sum := 0.0
	for i := range p {
		d := math.Sqrt(math.Max(p[i], 0)) - math.Sqrt(math.Max(q[i], 0))
		sum += d * d
	}
	h := math.Sqrt(sum) / math.Sqrt2
	// Guard against floating-point overshoot past the theoretical bound.
	if h > 1 {
		h = 1
	}
	return h
}

// HistogramHellinger normalizes both histograms and returns their
// Hellinger distance.
func HistogramHellinger(a, b *Histogram) float64 {
	return Hellinger(a.Normalize(), b.Normalize())
}

// AmplitudeDistance computes the Hellinger distance from two precomputed
// amplitude vectors (see Histogram.Amplitude):
//
//	H(p, q) = (1/sqrt(2)) * || sqrt(p) - sqrt(q) ||_2
//
// It performs the identical float64 operations as Hellinger on the
// underlying probability vectors — same subtraction, same accumulation
// order, same clamp — so swapping a per-pair Hellinger call for a
// precomputed-amplitude AmplitudeDistance call is bit-exact, not merely
// approximate. It also serves as the distance between equal-width
// sketches, which are linear images of amplitude vectors.
func AmplitudeDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: AmplitudeDistance on vectors of different lengths")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	h := math.Sqrt(sum) / math.Sqrt2
	if h > 1 {
		h = 1
	}
	return h
}

// AverageHellinger computes the mean Hellinger distance across two
// parallel sets of histograms — the paper's distance for the P(X|y)
// summary, where each client sends one feature histogram per class label.
// The sets must have equal length; pairs where either histogram is nil are
// compared as uniform-vs-uniform only when both are nil (distance 0);
// when exactly one side is missing the label entirely, the distance for
// that pair is the maximum 1, reflecting total disagreement about that
// class-conditional distribution.
func AverageHellinger(a, b []*Histogram) float64 {
	if len(a) != len(b) {
		panic("stats: AverageHellinger on sets of different lengths")
	}
	if len(a) == 0 {
		return 0
	}
	sum := 0.0
	for i := range a {
		switch {
		case a[i] == nil && b[i] == nil:
			// Neither client has the label: no evidence of disagreement.
		case a[i] == nil || b[i] == nil:
			sum += 1
		default:
			sum += HistogramHellinger(a[i], b[i])
		}
	}
	return sum / float64(len(a))
}
