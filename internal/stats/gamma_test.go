package stats

import (
	"math"
	"testing"
)

func TestGammaMoments(t *testing.T) {
	r := NewRNG(21)
	for _, tc := range []struct{ shape, scale float64 }{
		{1, 1}, {2.5, 1}, {0.5, 2}, {9, 0.5},
	} {
		n := 200000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(tc.shape, tc.scale)
			if x < 0 {
				t.Fatalf("Gamma(%v,%v) returned negative %v", tc.shape, tc.scale, x)
			}
			sum += x
			sumsq += x * x
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean %v, want ~%v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.08*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) variance %v, want ~%v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Gamma(0, 1)
}

func TestDirichletSimplex(t *testing.T) {
	r := NewRNG(22)
	for _, alpha := range []float64{0.1, 1, 10} {
		for trial := 0; trial < 200; trial++ {
			p := r.Dirichlet(6, alpha)
			sum := 0.0
			for _, v := range p {
				if v < 0 {
					t.Fatalf("negative component %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet sums to %v", sum)
			}
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small alpha concentrates mass; large alpha spreads it. Measure via
	// the mean maximum component.
	r := NewRNG(23)
	meanMax := func(alpha float64) float64 {
		total := 0.0
		for i := 0; i < 2000; i++ {
			total += Max(r.Dirichlet(10, alpha))
		}
		return total / 2000
	}
	small := meanMax(0.05)
	large := meanMax(50)
	if small < 0.7 {
		t.Errorf("alpha=0.05 mean max component %v, want > 0.7 (high skew)", small)
	}
	if large > 0.25 {
		t.Errorf("alpha=50 mean max component %v, want < 0.25 (near uniform)", large)
	}
}

func TestDirichletPanicsOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"dim":   func() { NewRNG(1).Dirichlet(0, 1) },
		"alpha": func() { NewRNG(1).Dirichlet(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
