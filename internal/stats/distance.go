package stats

import "math"

// Alternative distribution distances. The paper selects the Hellinger
// distance for summary comparison (eq. 3) citing bounded output and
// tolerance of empty bins; these comparators exist so that choice can be
// measured rather than assumed (see the distance-function ablation in
// internal/experiments). All operate on probability vectors of equal
// length, as produced by Histogram.Normalize, and are scaled to [0, 1].

// TotalVariation returns half the L1 distance between two probability
// vectors: TV(p, q) = (1/2) Σ |p_i - q_i|, in [0, 1].
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: TotalVariation on vectors of different lengths")
	}
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	tv := s / 2
	if tv > 1 {
		tv = 1
	}
	return tv
}

// JensenShannon returns the Jensen-Shannon *distance* (the square root
// of the JS divergence computed with base-2 logarithms), a bounded
// metric in [0, 1]. Unlike raw KL divergence it is symmetric and finite
// on zero entries.
func JensenShannon(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: JensenShannon on vectors of different lengths")
	}
	div := 0.0
	for i := range p {
		m := (p[i] + q[i]) / 2
		if p[i] > 0 {
			div += 0.5 * p[i] * math.Log2(p[i]/m)
		}
		if q[i] > 0 {
			div += 0.5 * q[i] * math.Log2(q[i]/m)
		}
	}
	if div < 0 {
		div = 0
	}
	d := math.Sqrt(div)
	if d > 1 {
		d = 1
	}
	return d
}

// Bhattacharyya returns the Bhattacharyya distance mapped into [0, 1)
// via 1 - BC(p, q), where BC = Σ sqrt(p_i q_i) is the Bhattacharyya
// coefficient. It relates to Hellinger by H² = 1 - BC; the paper cites
// Kailath's treatment of both.
func Bhattacharyya(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: Bhattacharyya on vectors of different lengths")
	}
	bc := 0.0
	for i := range p {
		if p[i] > 0 && q[i] > 0 {
			bc += math.Sqrt(p[i] * q[i])
		}
	}
	if bc > 1 {
		bc = 1
	}
	return 1 - bc
}

// KLDivergence returns the Kullback-Leibler divergence D(p||q) in nats.
// It is asymmetric, unbounded, and infinite when p puts mass where q has
// none — exactly the failure modes that make it unsuitable for comparing
// sparse label histograms (the ablation demonstrates this); exposed for
// completeness and for smoothed inputs.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence on vectors of different lengths")
	}
	d := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	if d < 0 {
		d = 0
	}
	return d
}
