package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLabelHistogramCounts(t *testing.T) {
	h := NewLabelHistogram(4)
	for _, l := range []int{0, 1, 1, 3, 3, 3} {
		h.AddLabel(l)
	}
	want := []float64{1, 2, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %v, want %v", i, h.Counts[i], w)
		}
	}
	if h.Total() != 6 {
		t.Errorf("total = %v, want 6", h.Total())
	}
}

func TestRangeHistogramBinning(t *testing.T) {
	h := NewRangeHistogram(4, 0, 1)
	for _, v := range []float64{0, 0.1, 0.3, 0.55, 0.99} {
		h.AddValue(v)
	}
	want := []float64{2, 1, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %v, want %v", i, h.Counts[i], w)
		}
	}
}

func TestRangeHistogramClampsOutOfRange(t *testing.T) {
	h := NewRangeHistogram(3, 0, 1)
	h.AddValue(-5)
	h.AddValue(7)
	if h.Counts[0] != 1 || h.Counts[2] != 1 {
		t.Errorf("out-of-range values not clamped: %v", h.Counts)
	}
}

func TestNormalizeSumsToOne(t *testing.T) {
	h := NewLabelHistogram(5)
	for i := 0; i < 37; i++ {
		h.AddLabel(i % 5)
	}
	p := h.Normalize()
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Errorf("negative probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("normalized sum = %v, want 1", sum)
	}
}

func TestNormalizeEmptyIsUniform(t *testing.T) {
	h := NewLabelHistogram(4)
	p := h.Normalize()
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("empty histogram normalize = %v, want uniform", p)
		}
	}
}

func TestNormalizeClampsNegative(t *testing.T) {
	h := &Histogram{Counts: []float64{-3, 1, 1}}
	p := h.Normalize()
	if p[0] != 0 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("negative bins not clamped: %v", p)
	}
}

func TestCloneIndependent(t *testing.T) {
	h := NewLabelHistogram(2)
	h.AddLabel(0)
	c := h.Clone()
	c.AddLabel(1)
	if h.Counts[1] != 0 {
		t.Error("Clone shares backing array")
	}
}

func TestHellingerKnownValues(t *testing.T) {
	tests := []struct {
		p, q []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 0},
		{[]float64{1, 0}, []float64{0, 1}, 1},
		{[]float64{0.5, 0.5}, []float64{0.5, 0.5}, 0},
		// H^2 = 1 - sum sqrt(p_i q_i) = 1 - sqrt(0.5) for (1,0) vs uniform.
		{[]float64{1, 0}, []float64{0.5, 0.5}, math.Sqrt(1 - math.Sqrt(0.5))},
	}
	for _, tc := range tests {
		got := Hellinger(tc.p, tc.q)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Hellinger(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

// randomSimplex maps arbitrary quick-generated non-negative values onto a
// probability simplex point.
func randomSimplex(raw []float64, dim int) []float64 {
	p := make([]float64, dim)
	total := 0.0
	for i := 0; i < dim; i++ {
		v := 0.0
		if i < len(raw) {
			v = math.Abs(raw[i])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			// Bound the magnitude so the sum cannot overflow to +Inf.
			v = math.Mod(v, 1000)
		}
		p[i] = v
		total += v
	}
	if total == 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		for i := range p {
			p[i] = 1.0 / float64(dim)
		}
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

func TestHellingerPropertyBoundsAndSymmetry(t *testing.T) {
	f := func(a, b [6]float64) bool {
		p := randomSimplex(a[:], 6)
		q := randomSimplex(b[:], 6)
		d1 := Hellinger(p, q)
		d2 := Hellinger(q, p)
		if d1 < 0 || d1 > 1 {
			return false
		}
		if math.Abs(d1-d2) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHellingerPropertyIdentity(t *testing.T) {
	f := func(a [6]float64) bool {
		p := randomSimplex(a[:], 6)
		return Hellinger(p, p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHellingerPropertyTriangleInequality(t *testing.T) {
	// Hellinger distance is a true metric; spot-check the triangle
	// inequality on random simplex points.
	f := func(a, b, c [5]float64) bool {
		p := randomSimplex(a[:], 5)
		q := randomSimplex(b[:], 5)
		r := randomSimplex(c[:], 5)
		return Hellinger(p, r) <= Hellinger(p, q)+Hellinger(q, r)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHellingerMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	Hellinger([]float64{1}, []float64{0.5, 0.5})
}

func TestAverageHellinger(t *testing.T) {
	a := NewLabelHistogram(2)
	a.AddLabel(0)
	b := NewLabelHistogram(2)
	b.AddLabel(1)
	// Identical sets -> 0.
	if d := AverageHellinger([]*Histogram{a, b}, []*Histogram{a, b}); d != 0 {
		t.Errorf("identical sets distance %v, want 0", d)
	}
	// Opposite singletons -> 1.
	if d := AverageHellinger([]*Histogram{a}, []*Histogram{b}); math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint singletons distance %v, want 1", d)
	}
	// Missing on one side counts as max distance for that label.
	if d := AverageHellinger([]*Histogram{a, nil}, []*Histogram{a, b}); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("half-missing distance %v, want 0.5", d)
	}
	// Missing on both sides contributes zero.
	if d := AverageHellinger([]*Histogram{a, nil}, []*Histogram{a, nil}); d != 0 {
		t.Errorf("both-missing distance %v, want 0", d)
	}
}

func TestAverageHellingerEmptySets(t *testing.T) {
	if d := AverageHellinger(nil, nil); d != 0 {
		t.Errorf("empty sets distance %v, want 0", d)
	}
}

func TestClamp(t *testing.T) {
	h := &Histogram{Counts: []float64{-1, 2, -0.5}}
	h.Clamp()
	if h.Counts[0] != 0 || h.Counts[1] != 2 || h.Counts[2] != 0 {
		t.Errorf("Clamp result %v", h.Counts)
	}
}

func TestLaplaceMechanismPreservesShape(t *testing.T) {
	rng := NewRNG(99)
	h := NewLabelHistogram(10)
	// 1000 points on label 3, as in the paper's Fig. 3 setting.
	for i := 0; i < 1000; i++ {
		h.AddLabel(3)
	}
	noised := LaplaceMechanism(h, 0.1, rng)
	if len(noised.Counts) != 10 {
		t.Fatalf("noised bins = %d", len(noised.Counts))
	}
	// With eps=0.1 the noise stddev is ~14, far below the 1000-count
	// signal: the dominant bin must survive.
	if ArgMaxFloat(noised.Counts) != 3 {
		t.Errorf("eps=0.1 noise destroyed a 1000-count signal: %v", noised.Counts)
	}
	// Original must be untouched.
	if h.Counts[3] != 1000 {
		t.Error("LaplaceMechanism mutated its input")
	}
}

func TestLaplaceMechanismSmallEpsilonDrownsSignal(t *testing.T) {
	// Mirrors the paper's Fig. 3: eps=0.005 makes a 1000-count histogram
	// unrecognizable. Check that noise magnitude dominates the bins often.
	rng := NewRNG(100)
	h := NewLabelHistogram(10)
	for i := 0; i < 100; i++ {
		h.AddLabel(3)
	}
	destroyed := 0
	trials := 200
	for i := 0; i < trials; i++ {
		noised := LaplaceMechanism(h, 0.005, rng)
		if ArgMaxFloat(noised.Counts) != 3 {
			destroyed++
		}
	}
	if destroyed < trials/2 {
		t.Errorf("eps=0.005 preserved the signal in %d/%d trials; expected heavy destruction", trials-destroyed, trials)
	}
}

func TestLaplaceMechanismPanicsOnBadEpsilon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for eps <= 0")
		}
	}()
	LaplaceMechanism(NewLabelHistogram(2), 0, NewRNG(1))
}
