package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of single element != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMeanCI95(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	mean, hw := MeanCI95(xs)
	if math.Abs(mean-49.5) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
	if hw <= 0 {
		t.Errorf("half width = %v, want positive", hw)
	}
	// Single observation: zero half-width.
	if _, hw := MeanCI95([]float64{1}); hw != 0 {
		t.Errorf("single obs half width = %v", hw)
	}
}

func TestEMAConvergesToConstant(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 7
	}
	out := EMA(xs, 0.3)
	for i, v := range out {
		if math.Abs(v-7) > 1e-9 {
			t.Fatalf("EMA of constant series diverged at %d: %v", i, v)
		}
	}
}

func TestEMASmoothes(t *testing.T) {
	xs := []float64{0, 10, 0, 10, 0, 10}
	out := EMA(xs, 0.5)
	// Smoothed series should have smaller max jump than raw.
	maxJump := 0.0
	for i := 1; i < len(out); i++ {
		if d := math.Abs(out[i] - out[i-1]); d > maxJump {
			maxJump = d
		}
	}
	if maxJump >= 10 {
		t.Errorf("EMA did not smooth: max jump %v", maxJump)
	}
}

func TestEMAPropertyBounded(t *testing.T) {
	f := func(raw [12]float64, alphaRaw uint8) bool {
		alpha := float64(alphaRaw%99+1) / 100
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range EMA(xs, alpha) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArgMaxMinFloat(t *testing.T) {
	xs := []float64{3, 9, 9, -2}
	if ArgMaxFloat(xs) != 1 {
		t.Errorf("ArgMaxFloat = %d, want first max index 1", ArgMaxFloat(xs))
	}
	if ArgMinFloat(xs) != 3 {
		t.Errorf("ArgMinFloat = %d", ArgMinFloat(xs))
	}
}
