package stats

import (
	"fmt"
	"sort"
)

// P2 is a streaming quantile estimator implementing the P² algorithm of
// Jain & Chlamtac (CACM 1985): five markers track the running minimum,
// the target quantile, two intermediate quantiles and the maximum, and
// each observation adjusts marker heights by parabolic (falling back to
// linear) interpolation. Memory is O(1), the update is deterministic,
// and — unlike sampling-based sketches — the estimate depends only on
// the observation sequence, so checkpoint/resume reproduces it
// bit-identically.
//
// All fields are exported so the estimator serializes through encoding
// gob as-is (the fleet registry checkpoints it); treat them as opaque.
// The zero value is NOT usable; call NewP2.
type P2 struct {
	P float64 // target quantile in (0, 1)

	N int // observations seen so far

	// Marker state, meaningful once N >= 5. Until then the first
	// observations accumulate (sorted) in Heights[:N].
	Heights [5]float64 // marker heights q_i
	Pos     [5]float64 // marker positions n_i (1-based)
	Want    [5]float64 // desired marker positions n'_i
	Incr    [5]float64 // desired-position increments dn'_i
}

// NewP2 returns an estimator for the p-quantile; p outside (0, 1)
// panics.
func NewP2(p float64) P2 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: P2 quantile %v outside (0, 1)", p))
	}
	return P2{
		P:    p,
		Pos:  [5]float64{1, 2, 3, 4, 5},
		Want: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		Incr: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Observe feeds one value into the estimator.
func (e *P2) Observe(v float64) {
	if e.N < 5 {
		e.Heights[e.N] = v
		e.N++
		sort.Float64s(e.Heights[:e.N])
		return
	}

	// Find the cell k such that Heights[k] <= v < Heights[k+1], bumping
	// the extremes when v falls outside the current range.
	var k int
	switch {
	case v < e.Heights[0]:
		e.Heights[0] = v
		k = 0
	case v >= e.Heights[4]:
		e.Heights[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.Heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.Pos[i]++
	}
	for i := range e.Want {
		e.Want[i] += e.Incr[i]
	}
	e.N++

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.Want[i] - e.Pos[i]
		if (d >= 1 && e.Pos[i+1]-e.Pos[i] > 1) || (d <= -1 && e.Pos[i-1]-e.Pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			h := e.parabolic(i, s)
			if e.Heights[i-1] < h && h < e.Heights[i+1] {
				e.Heights[i] = h
			} else {
				e.Heights[i] = e.linear(i, s)
			}
			e.Pos[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic (PP) height update for marker i
// moving by s (±1).
func (e *P2) parabolic(i int, s float64) float64 {
	return e.Heights[i] + s/(e.Pos[i+1]-e.Pos[i-1])*
		((e.Pos[i]-e.Pos[i-1]+s)*(e.Heights[i+1]-e.Heights[i])/(e.Pos[i+1]-e.Pos[i])+
			(e.Pos[i+1]-e.Pos[i]-s)*(e.Heights[i]-e.Heights[i-1])/(e.Pos[i]-e.Pos[i-1]))
}

// linear is the fallback linear height update for marker i moving by s.
func (e *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.Heights[i] + s*(e.Heights[j]-e.Heights[i])/(e.Pos[j]-e.Pos[i])
}

// Value returns the current quantile estimate: 0 before any
// observation, the exact sample quantile (nearest-rank on the sorted
// prefix) below five observations, and the P² marker estimate after.
func (e *P2) Value() float64 {
	switch {
	case e.N == 0:
		return 0
	case e.N < 5:
		idx := int(e.P * float64(e.N))
		if idx >= e.N {
			idx = e.N - 1
		}
		return e.Heights[idx]
	}
	return e.Heights[2]
}

// Count returns how many values have been observed.
func (e *P2) Count() int { return e.N }
