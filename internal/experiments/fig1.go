package experiments

import (
	"fmt"
	"strings"

	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/metrics"
	"haccs/internal/nn"
	"haccs/internal/selection"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// Fig1Report reproduces the §III motivation experiment (Table I +
// Fig. 1): clients are partitioned into 10 groups of two labels each;
// 80% of devices are dropped permanently either at random (policy a) or
// by whole groups (policy b); the global model's per-group test accuracy
// shows that accuracy depends on representing every distribution, not
// every client.
type Fig1Report struct {
	Groups          [][]int   // label sets per group (Table I)
	RandomDropAcc   []float64 // per-group accuracy, random dropout
	GroupDropAcc    []float64 // per-group accuracy, group dropout
	DroppedGroups   []int     // groups dropped under policy b
	SurvivingGroups []int     // groups that kept all clients under policy b
}

// RunFig1 executes both dropout policies.
func RunFig1(scale Scale, seed uint64) *Fig1Report {
	spec := specFor("mnist", 10, scale)
	// Paper-exact partition at both scales: 100 clients in 10 groups of
	// 10, select 20 per epoch, drop 80 permanently. Group survival
	// probabilities matter here — with fewer members per group, random
	// dropout wipes out whole groups and the Fig. 1a "no drop" result
	// cannot appear — so this experiment does not shrink the roster.
	clientsPerGroup := 10
	k := 20
	rounds := 150
	if scale == Full {
		rounds = 300
	}
	plan := dataset.GroupPlan(dataset.TableIGroups, clientsPerGroup, 300)
	arch := archFor(spec, scale)
	n := plan.NumClients()
	dropCount := n * 8 / 10

	report := &Fig1Report{Groups: dataset.TableIGroups}

	// Policy a: drop 80% of clients uniformly at random.
	rng := stats.NewRNG(stats.DeriveSeed(seed, seedMisc))
	randomDropped := rng.SampleWithoutReplacement(n, dropCount)
	report.RandomDropAcc = runFig1Policy(spec, plan, arch, seed, k, rounds, randomDropped, clientsPerGroup)

	// Policy b: drop 8 of the 10 groups entirely.
	numDropGroups := len(dataset.TableIGroups) * 8 / 10
	groupPerm := rng.Perm(len(dataset.TableIGroups))
	var groupDropped []int
	for _, g := range groupPerm[:numDropGroups] {
		report.DroppedGroups = append(report.DroppedGroups, g)
		for c := 0; c < clientsPerGroup; c++ {
			groupDropped = append(groupDropped, g*clientsPerGroup+c)
		}
	}
	for _, g := range groupPerm[numDropGroups:] {
		report.SurvivingGroups = append(report.SurvivingGroups, g)
	}
	report.GroupDropAcc = runFig1Policy(spec, plan, arch, seed, k, rounds, groupDropped, clientsPerGroup)
	return report
}

// runFig1Policy trains with random selection under a permanent dropout
// set and returns the mean per-group test accuracy of the final model.
func runFig1Policy(spec dataset.Spec, plan *dataset.PartitionPlan, arch nn.Arch, seed uint64, k, rounds int, dropped []int, clientsPerGroup int) []float64 {
	w := BuildWorkload(spec, plan, arch, seed)
	cfg := fl.Config{
		Arch:                w.Arch,
		Seed:                stats.DeriveSeed(seed, seedEngine),
		Local:               fl.LocalTrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05},
		ClientsPerRound:     k,
		MaxRounds:           rounds,
		EvalEvery:           rounds, // only the final model matters here
		PerSampleComputeSec: 0.01,
		Dropout:             simnet.PermanentDropout{Dropped: dropped},
		Tracer:              telem.tracer,
		Metrics:             telem.reg,
	}
	res := fl.NewEngine(cfg, w.Clients, selection.NewRandom()).Run()
	numGroups := len(dataset.TableIGroups)
	acc := make([]float64, numGroups)
	for g := 0; g < numGroups; g++ {
		sum := 0.0
		for c := 0; c < clientsPerGroup; c++ {
			sum += res.PerClientAcc[g*clientsPerGroup+c]
		}
		acc[g] = sum / float64(clientsPerGroup)
	}
	return acc
}

// String renders the per-group accuracy comparison.
func (r *Fig1Report) String() string {
	var b strings.Builder
	b.WriteString("== Fig. 1: dropout with skewed labels (Table I groups) ==\n")
	t := metrics.NewTable("group", "labels", "acc(random-drop)", "acc(group-drop)", "dropped-entirely")
	droppedSet := map[int]bool{}
	for _, g := range r.DroppedGroups {
		droppedSet[g] = true
	}
	for g := range r.Groups {
		t.AddRow(g, fmt.Sprintf("%v", r.Groups[g]), r.RandomDropAcc[g], r.GroupDropAcc[g], droppedSet[g])
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "mean accuracy: random-drop %.3f, group-drop %.3f\n",
		stats.Mean(r.RandomDropAcc), stats.Mean(r.GroupDropAcc))
	return b.String()
}

// MeanDroppedGroupAcc returns the mean accuracy over groups dropped
// entirely (policy b) — the bars that collapse in Fig. 1b.
func (r *Fig1Report) MeanDroppedGroupAcc() float64 {
	var accs []float64
	for _, g := range r.DroppedGroups {
		accs = append(accs, r.GroupDropAcc[g])
	}
	return stats.Mean(accs)
}

// MeanSurvivingGroupAcc returns the mean accuracy over the groups whose
// clients all survived policy b.
func (r *Fig1Report) MeanSurvivingGroupAcc() float64 {
	var accs []float64
	for _, g := range r.SurvivingGroups {
		accs = append(accs, r.GroupDropAcc[g])
	}
	return stats.Mean(accs)
}
