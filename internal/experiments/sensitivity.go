package experiments

import (
	"fmt"
	"math"
	"strings"

	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/metrics"
	"haccs/internal/stats"
)

// SkewLevel names the three Fig. 7 data distributions.
type SkewLevel int

const (
	// SkewIID gives every client the uniform distribution over all
	// labels and equal data volume.
	SkewIID SkewLevel = iota
	// SkewModerate assigns 5 random labels per client.
	SkewModerate
	// SkewHigh assigns one majority label plus noise labels (the §V-A
	// default).
	SkewHigh
)

// String implements fmt.Stringer.
func (s SkewLevel) String() string {
	switch s {
	case SkewIID:
		return "iid"
	case SkewModerate:
		return "5-labels"
	default:
		return "high-skew"
	}
}

// planForSkew builds the partition plan for a skew level.
func planForSkew(level SkewLevel, clients, classes int, scale Scale, rng *stats.RNG) *dataset.PartitionPlan {
	lo, hi := sampleBounds(scale)
	switch level {
	case SkewIID:
		// IID also equalizes volume across clients (§V-D1).
		return dataset.IIDPlan(clients, classes, (lo+hi)/2)
	case SkewModerate:
		return dataset.KRandomLabelsPlan(clients, classes, 5, (lo+hi)/2, rng)
	default:
		return dataset.MajorityNoisePlan(clients, classes, lo, hi, rng)
	}
}

// Fig7Report holds the time-to-50% results per skew level and strategy.
type Fig7Report struct {
	Levels  []SkewLevel
	Reports []*CompareReport // parallel to Levels
}

// RunFig7 reproduces the degree-of-label-skew sensitivity experiment
// (Fig. 7): time to 50% accuracy for all five strategies across IID,
// 5-label, and high-skew CIFAR-10 workloads.
func RunFig7(scale Scale, seed uint64) *Fig7Report {
	report := &Fig7Report{}
	for _, level := range []SkewLevel{SkewIID, SkewModerate, SkewHigh} {
		level := level
		target := 0.5
		ec := defaultEngine(scale, target)
		build := func(s uint64) (*Workload, EngineConfig) {
			spec := specFor("cifar", 10, scale)
			rng := stats.NewRNG(stats.DeriveSeed(s, seedMisc+3+uint64(level)))
			plan := planForSkew(level, clientCount(scale), 10, scale, rng)
			return BuildWorkload(spec, plan, archFor(spec, scale), s), ec
		}
		cr := runComparisonSeeds(fmt.Sprintf("Fig. 7 (%s skew)", level), 5, target, comparisonRepeats(scale), seed, build,
			func(w *Workload, i int, s uint64) fl.Strategy {
				return buildStrategyForRun(w, i, 0, 0.75, s)
			})
		report.Levels = append(report.Levels, level)
		report.Reports = append(report.Reports, cr)
	}
	return report
}

// String renders the Fig. 7 grid.
func (r *Fig7Report) String() string {
	var b strings.Builder
	b.WriteString("== Fig. 7: time to 50% accuracy vs degree of label skew (CIFAR-10) ==\n")
	t := metrics.NewTable("strategy", "tta(iid)", "tta(5-labels)", "tta(high-skew)")
	if len(r.Reports) == 0 {
		return b.String()
	}
	for i, run := range r.Reports[0].Runs {
		cells := []interface{}{run.Name}
		for _, cr := range r.Reports {
			rr := cr.Runs[i]
			if rr.TTAReached {
				cells = append(cells, fmt.Sprintf("%.1fs", rr.TTA))
			} else {
				cells = append(cells, "not reached")
			}
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig8aPoint is one cell of the ε-vs-clustering-accuracy sweep.
type Fig8aPoint struct {
	Epsilon   float64
	DataSize  int
	Accuracy  float64 // mean exact-cluster recovery over trials
	CI95      float64 // half-width of the 95% confidence interval
	NumTrials int
}

// Fig8aReport is the privacy/clustering-accuracy trade-off (Fig. 8a).
type Fig8aReport struct {
	Points []Fig8aPoint
}

// RunFig8a reproduces the clustering-accuracy experiment: 20 clients,
// exactly 2 per CIFAR-10 label with a 70/10/10/10 distribution; for each
// (ε, per-client data size) pair, cluster the noised P(y) summaries 10
// times and score the fraction of the 10 ground-truth clusters recovered
// exactly.
func RunFig8a(scale Scale, seed uint64) *Fig8aReport {
	epsilons := []float64{1, 0.5, 0.1, 0.05, 0.01, 0.005, 0.001}
	dataSizes := []int{100, 500, 1000}
	trials := 10
	classes := 10
	clientsPerLabel := 2
	spec := specFor("cifar", classes, scale)
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, seedData))

	report := &Fig8aReport{}
	for _, m := range dataSizes {
		// One fixed roster of client datasets per data size; trials vary
		// only the privacy noise, matching the paper's repeated-noising
		// protocol.
		rosterRNG := stats.NewRNG(stats.DeriveSeed(seed, seedMisc+10+uint64(m)))
		plan := dataset.PairedLabelPlan(classes, clientsPerLabel, m, rosterRNG)
		var sets []*dataset.Dataset
		for i := 0; i < plan.NumClients(); i++ {
			labels := plan.Dists[i].Draw(plan.Samples[i], rosterRNG)
			sets = append(sets, gen.Generate(labels, rosterRNG))
		}
		truth := plan.Group

		for _, eps := range epsilons {
			noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, seedNoise+uint64(m)*31+uint64(eps*1e6)))
			accs := make([]float64, trials)
			for trial := 0; trial < trials; trial++ {
				sums := core.BuildSummaries(sets, core.PY, 0, eps, noiseRNG)
				labels := clusterLabelsFor(sums)
				accs[trial] = cluster.ExactRecovery(labels, truth)
			}
			mean, hw := stats.MeanCI95(accs)
			report.Points = append(report.Points, Fig8aPoint{
				Epsilon: eps, DataSize: m, Accuracy: mean, CI95: hw, NumTrials: trials,
			})
		}
	}
	return report
}

// clusterLabelsFor runs the HACCS server-side clustering pipeline on a
// summary set (distance matrix -> OPTICS -> auto extraction) without a
// full scheduler.
func clusterLabelsFor(sums []core.Summary) []int {
	m := core.DistanceMatrix(sums)
	res := cluster.OPTICS(m, 2, math.Inf(1))
	labels := res.ExtractBestSilhouette(m, 0)
	// Singletonize noise, mirroring the scheduler.
	next := 0
	for _, l := range labels {
		if l >= next {
			next = l + 1
		}
	}
	for i, l := range labels {
		if l == cluster.Noise {
			labels[i] = next
			next++
		}
	}
	return labels
}

// Accuracy returns the mean clustering accuracy for an (eps, size) cell.
func (r *Fig8aReport) Accuracy(eps float64, size int) (float64, bool) {
	for _, p := range r.Points {
		if p.Epsilon == eps && p.DataSize == size {
			return p.Accuracy, true
		}
	}
	return 0, false
}

// String renders the sweep.
func (r *Fig8aReport) String() string {
	var b strings.Builder
	b.WriteString("== Fig. 8a: epsilon vs clustering accuracy, P(y) summaries ==\n")
	t := metrics.NewTable("epsilon", "data-size", "cluster-accuracy", "ci95")
	for _, p := range r.Points {
		t.AddRow(p.Epsilon, p.DataSize, p.Accuracy, p.CI95)
	}
	b.WriteString(t.String())
	return b.String()
}

// RunFig8b reproduces the ε-vs-TTA experiment (Fig. 8b): HACCS-P(y)
// under ε ∈ {0.1, 0.01, 0.001} against the random baseline on the
// skewed CIFAR-10 workload.
func RunFig8b(scale Scale, seed uint64) *CompareReport {
	target := 0.5
	ec := defaultEngine(scale, target)
	epsilons := []float64{0, 0.1, 0.01, 0.001} // index 0 is the random baseline
	build := func(s uint64) (*Workload, EngineConfig) {
		return buildStandardWorkload("cifar", 10, scale, s), ec
	}
	report := runComparisonSeeds("Fig. 8b: epsilon vs TTA (CIFAR-10)", len(epsilons), target, comparisonRepeats(scale), seed, build,
		func(w *Workload, i int, s uint64) fl.Strategy {
			if i == 0 {
				return buildStrategyForRun(w, 0, 0, 0.75, s) // random
			}
			return HACCSOnly(w, core.PY, epsilons[i], 0.75, s)
		})
	// Disambiguate run names with their epsilon.
	for i := range report.Runs {
		if i > 0 {
			report.Runs[i].Name = fmt.Sprintf("haccs-P(y) eps=%g", epsilons[i])
		}
	}
	return report
}

// RunFig9 reproduces the ρ sensitivity sweep (Fig. 9): HACCS-P(y) on the
// skewed CIFAR-10 workload across ρ values; larger ρ (latency-favouring)
// converges faster in the paper.
func RunFig9(scale Scale, seed uint64) *CompareReport {
	target := 0.5
	rhos := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	ec := defaultEngine(scale, target)
	build := func(s uint64) (*Workload, EngineConfig) {
		return buildStandardWorkload("cifar", 10, scale, s), ec
	}
	report := runComparisonSeeds("Fig. 9: effect of rho (CIFAR-10)", len(rhos), target, comparisonRepeats(scale), seed, build,
		func(w *Workload, i int, s uint64) fl.Strategy {
			return HACCSOnly(w, core.PY, 0, rhos[i], s)
		})
	for i := range report.Runs {
		report.Runs[i].Name = fmt.Sprintf("rho=%g", rhos[i])
	}
	return report
}

// RunFig10 reproduces the feature-skew experiment (Fig. 10): half the
// clients hold images rotated 45°, with majority labels aligned to the
// rotation so that P(y) clustering cannot see the skew but P(X|y) can.
func RunFig10(scale Scale, seed uint64) *CompareReport {
	target := 0.5
	ec := defaultEngine(scale, target)
	build := func(s uint64) (*Workload, EngineConfig) {
		return buildFeatureSkewWorkload(scale, s), ec
	}
	return runComparisonSeeds("Fig. 10: label + feature skew (rotated synthetic MNIST)", 5, target, comparisonRepeats(scale), seed, build,
		func(w *Workload, i int, s uint64) fl.Strategy {
			return buildStrategyForRun(w, i, 0, 0.75, s)
		})
}

// buildFeatureSkewWorkload creates the rotated-MNIST workload: the
// standard majority/noise label skew, with every client whose majority
// label falls in the upper half of the class range holding 45°-rotated
// images (feature skew aligned with the majority label, §V-D4).
func buildFeatureSkewWorkload(scale Scale, seed uint64) *Workload {
	spec := specFor("mnist", 10, scale)
	lo, hi := sampleBounds(scale)
	planRNG := stats.NewRNG(stats.DeriveSeed(seed, seedMisc+4))
	// Two clients per (majority, rotation) pair keep the fine-grained
	// feature-skew groups redundant, as in the paper's 50-client roster.
	n := clientCount(scale)
	if n < 40 {
		n = 40
	}
	plan := dataset.MajorityNoisePlan(n, 10, lo, hi, planRNG)
	w := BuildWorkload(spec, plan, archFor(spec, scale), seed)
	for i, c := range w.Clients {
		if plan.Group[i]%2 == 1 {
			c.Data.Train = c.Data.Train.Rotate(45)
			c.Data.Test = c.Data.Test.Rotate(45)
			w.TrainSets[i] = c.Data.Train
		}
	}
	return w
}
