package experiments

import (
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// buildStandardWorkload constructs the §V-A default workload: 50 clients
// (30 at Quick scale), each holding one majority label (75%) plus three
// noise labels (12/7/6%), with varying data volume and Table II system
// profiles. The roster never falls below two clients per majority label:
// HACCS's robustness comes from intra-cluster redundancy, which a
// one-client-per-distribution roster would remove by construction.
func buildStandardWorkload(family string, classes int, scale Scale, seed uint64) *Workload {
	spec := specFor(family, classes, scale)
	lo, hi := sampleBounds(scale)
	planRNG := stats.NewRNG(stats.DeriveSeed(seed, seedMisc+1))
	n := clientCount(scale)
	if n < 2*classes {
		n = 2 * classes
	}
	plan := dataset.MajorityNoisePlan(n, classes, lo, hi, planRNG)
	return BuildWorkload(spec, plan, archFor(spec, scale), seed)
}

// RunFig5 reproduces the scheduling-performance comparison (Fig. 5):
// the five strategies race to a target accuracy on the skewed workload.
// family is "cifar" (Fig. 5a) or "femnist" (Fig. 5b); both use 10
// classes, k = 20% of clients.
func RunFig5(family string, scale Scale, seed uint64) *CompareReport {
	// The paper's FEMNIST target is 80%; the quick-scale synthetic
	// substitute (8x8 images, 100 rounds) tops out below that, so the
	// quick target is 50% for both datasets while full scale keeps the
	// paper's bar.
	target := 0.5
	if family == "femnist" && scale == Full {
		target = 0.8
	}
	ec := defaultEngine(scale, target)
	build := func(s uint64) (*Workload, EngineConfig) {
		return buildStandardWorkload(family, 10, scale, s), ec
	}
	title := "Fig. 5a: CIFAR-10 scheduling performance"
	if family == "femnist" {
		title = "Fig. 5b: FEMNIST scheduling performance"
	}
	return runComparisonSeeds(title, 5, target, comparisonRepeats(scale), seed, build,
		func(w *Workload, i int, s uint64) fl.Strategy {
			return buildStrategyForRun(w, i, 0, 0.75, s)
		})
}

// comparisonRepeats returns how many seeds headline comparisons average
// over: 3 at quick scale (cheap, noisy runs), 1 at full scale (long,
// stabler runs).
func comparisonRepeats(scale Scale) int {
	if scale == Full {
		return 1
	}
	return 3
}

// buildStrategyForRun constructs the i-th comparison strategy fresh for
// a fresh workload (order: random, tifl, oort, haccs-P(y), haccs-P(X|y)).
// Indices 5 and 6 build the two HACCS kinds on the sketch clustering
// backend — not part of the paper's comparison set, but indexed here so
// the resume suite covers the sketch pipeline with the same machinery.
func buildStrategyForRun(w *Workload, i int, eps, rho float64, seed uint64) fl.Strategy {
	switch i {
	case 5:
		return HACCSSketch(w, core.PY, eps, rho, seed)
	case 6:
		return HACCSSketch(w, core.PXY, eps, rho, seed)
	}
	return StrategySet(w, eps, rho, seed)[i]
}

// RunFig6 reproduces the dropout-performance experiment (Fig. 6): the
// same comparison with 10% of clients transiently unavailable each
// epoch (recovering at the end of the epoch), on a 20-class FEMNIST
// workload. The dropout mask is seeded identically across strategies,
// exactly as in the paper.
func RunFig6(scale Scale, seed uint64) *CompareReport {
	// 20 classes over 8x8 quick-scale images converge slowly; the quick
	// run extends the round budget and tracks a 35% bar (the level the
	// strategies separate at within that budget) while full scale keeps
	// the paper's 50% target.
	target := 0.35
	if scale == Full {
		target = 0.5
	}
	ec := defaultEngine(scale, target)
	if scale == Quick {
		ec.MaxRounds = 250
		ec.EvalEvery = 10
	}
	build := func(s uint64) (*Workload, EngineConfig) {
		// The dropout schedule derives from the per-repeat seed but is
		// identical for every strategy within that repeat, as in the
		// paper.
		ecCopy := ec
		ecCopy.Dropout = simnet.TransientDropout{
			Rate:   0.10,
			Seed:   stats.DeriveSeed(s, seedMisc+2),
			NewRNG: func(x uint64) interface{ Float64() float64 } { return stats.NewRNG(x) },
		}
		return buildStandardWorkload("femnist", 20, scale, s), ecCopy
	}
	return runComparisonSeeds("Fig. 6: 10% transient dropout, FEMNIST-20", 5, target, comparisonRepeats(scale), seed, build,
		func(w *Workload, i int, s uint64) fl.Strategy {
			return buildStrategyForRun(w, i, 0, 0.75, s)
		})
}
