package experiments

import (
	"strings"
	"testing"

	"haccs/internal/core"
	"haccs/internal/fl"
	"haccs/internal/metrics"
	"haccs/internal/stats"
)

func TestScaleParsing(t *testing.T) {
	if s, ok := ParseScale("quick"); !ok || s != Quick {
		t.Error("quick parse failed")
	}
	if s, ok := ParseScale("full"); !ok || s != Full {
		t.Error("full parse failed")
	}
	if _, ok := ParseScale("huge"); ok {
		t.Error("bogus scale accepted")
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale strings wrong")
	}
}

func TestBuildWorkloadShape(t *testing.T) {
	w := buildStandardWorkload("cifar", 10, Quick, 7)
	if w.NumClients() != clientCount(Quick) {
		t.Fatalf("workload has %d clients", w.NumClients())
	}
	for i, c := range w.Clients {
		if c.ID != i {
			t.Fatal("client IDs not dense")
		}
		if c.Data.Train.Len() == 0 || c.Data.Test.Len() == 0 {
			t.Fatalf("client %d missing data", i)
		}
		if w.TrainSets[i] != c.Data.Train {
			t.Fatal("TrainSets not aliased to client train data")
		}
	}
}

func TestBuildWorkloadDeterministic(t *testing.T) {
	a := buildStandardWorkload("femnist", 10, Quick, 3)
	b := buildStandardWorkload("femnist", 10, Quick, 3)
	for i := range a.Clients {
		if a.Clients[i].Profile != b.Clients[i].Profile {
			t.Fatal("profiles differ across identical builds")
		}
		if a.Clients[i].Data.Train.Y[0] != b.Clients[i].Data.Train.Y[0] {
			t.Fatal("data differs across identical builds")
		}
	}
}

func TestStrategySetComposition(t *testing.T) {
	w := buildStandardWorkload("cifar", 10, Quick, 5)
	set := StrategySet(w, 0, 0.75, 5)
	want := []string{"random", "tifl", "oort", "haccs-P(y)", "haccs-P(X|y)"}
	if len(set) != len(want) {
		t.Fatalf("strategy set size %d", len(set))
	}
	for i, s := range set {
		if s.Name() != want[i] {
			t.Errorf("strategy %d = %q, want %q", i, s.Name(), want[i])
		}
	}
}

// TestFig5Shape is the headline reproduction check: on the skewed
// workload, HACCS-P(y) must beat the random baseline in time to target
// (the paper reports 18-38% reductions).
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison skipped in -short mode")
	}
	r := RunFig5("cifar", Quick, 1)
	if len(r.Runs) != 5 {
		t.Fatalf("expected 5 strategies, got %d", len(r.Runs))
	}
	py, ok := r.Get("haccs-P(y)")
	if !ok || !py.TTAReached {
		t.Fatalf("haccs-P(y) did not reach the 50%% target: %+v", py)
	}
	random, ok := r.Get("random")
	if !ok {
		t.Fatal("random run missing")
	}
	if random.TTAReached && py.TTA >= random.TTA {
		t.Errorf("haccs-P(y) TTA %.0fs not better than random %.0fs", py.TTA, random.TTA)
	}
	// Virtual time monotone within each run.
	for _, run := range r.Runs {
		for i := 1; i < len(run.Result.History); i++ {
			if run.Result.History[i].Time <= run.Result.History[i-1].Time {
				t.Fatalf("%s: non-increasing virtual time", run.Name)
			}
		}
	}
	if !strings.Contains(r.String(), "haccs-P(y)") {
		t.Error("report string missing strategy rows")
	}
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison skipped in -short mode")
	}
	r := RunFig1(Quick, 2)
	if len(r.RandomDropAcc) != 10 || len(r.GroupDropAcc) != 10 {
		t.Fatalf("per-group accuracy lengths %d/%d", len(r.RandomDropAcc), len(r.GroupDropAcc))
	}
	if len(r.DroppedGroups) != 8 || len(r.SurvivingGroups) != 2 {
		t.Fatalf("dropped %d groups, surviving %d", len(r.DroppedGroups), len(r.SurvivingGroups))
	}
	// The paper's core observation: surviving groups hold up much better
	// than fully dropped groups.
	if r.MeanSurvivingGroupAcc() <= r.MeanDroppedGroupAcc() {
		t.Errorf("surviving groups (%.3f) not better than dropped groups (%.3f)",
			r.MeanSurvivingGroupAcc(), r.MeanDroppedGroupAcc())
	}
	// Under random dropout, no group collapses relative to the mean of
	// the surviving-group accuracy under group dropout.
	if stats.Min(r.RandomDropAcc) <= 0.5*r.MeanDroppedGroupAcc() {
		t.Logf("note: random-drop min %.3f vs dropped-group mean %.3f", stats.Min(r.RandomDropAcc), r.MeanDroppedGroupAcc())
	}
	if !strings.Contains(r.String(), "group") {
		t.Error("report rendering broken")
	}
}

func TestFig8aShape(t *testing.T) {
	r := RunFig8a(Quick, 3)
	if len(r.Points) != 21 { // 7 epsilons x 3 data sizes
		t.Fatalf("got %d sweep points", len(r.Points))
	}
	// Large epsilon + ample data: near-perfect recovery (paper: eps >=
	// 0.05 stays high for >= 500 points).
	hi, ok := r.Accuracy(1, 1000)
	if !ok || hi < 0.9 {
		t.Errorf("eps=1, m=1000 accuracy %.2f, want >= 0.9", hi)
	}
	// Tiny epsilon destroys clustering at every data size.
	lo, ok := r.Accuracy(0.001, 100)
	if !ok || lo > 0.5 {
		t.Errorf("eps=0.001, m=100 accuracy %.2f, want <= 0.5", lo)
	}
	// Monotone-ish: strongest privacy never beats weakest at equal size.
	for _, m := range []int{100, 500, 1000} {
		weak, _ := r.Accuracy(1, m)
		strong, _ := r.Accuracy(0.001, m)
		if strong > weak {
			t.Errorf("m=%d: eps=0.001 accuracy %.2f exceeds eps=1 accuracy %.2f", m, strong, weak)
		}
	}
	// More data tolerates more noise at moderate epsilon.
	small, _ := r.Accuracy(0.01, 100)
	large, _ := r.Accuracy(0.01, 1000)
	if small > large+0.2 {
		t.Errorf("eps=0.01: m=100 (%.2f) should not beat m=1000 (%.2f) by a wide margin", small, large)
	}
	if !strings.Contains(r.String(), "epsilon") {
		t.Error("report rendering broken")
	}
}

func TestFig8aCIReported(t *testing.T) {
	r := RunFig8a(Quick, 4)
	for _, p := range r.Points {
		if p.NumTrials != 10 {
			t.Fatalf("trials = %d", p.NumTrials)
		}
		if p.CI95 < 0 {
			t.Fatalf("negative CI")
		}
		// Paper: all margins of error for a 95%% CI are below 0.1; at the
		// cliff edge of the trade-off, quick-scale trials oscillate more,
		// so allow a wider (but still bounded) margin.
		if p.CI95 > 0.35 {
			t.Errorf("eps=%g m=%d CI95 = %.3f suspiciously wide", p.Epsilon, p.DataSize, p.CI95)
		}
	}
}

func TestBiasReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison skipped in -short mode")
	}
	r := RunBias(core.PY, Quick, 5)
	total := r.Buckets[0] + r.Buckets[1] + r.Buckets[2]
	if total != len(r.InclusionFrac) || total == 0 {
		t.Fatalf("bucket total %d vs %d clusters", total, len(r.InclusionFrac))
	}
	for c, f := range r.InclusionFrac {
		if f < 0 || f > 1 {
			t.Fatalf("cluster %d inclusion %v", c, f)
		}
	}
	if len(r.AccGap) != len(r.InclusionFrac) || len(r.ClusterSizes) != len(r.AccGap) {
		t.Fatal("parallel slices out of sync")
	}
	for c, size := range r.ClusterSizes {
		if size == 1 && r.AccGap[c] != 0 {
			t.Errorf("singleton cluster %d has nonzero gap", c)
		}
	}
	// Table III's observation at rho=0.01: most clusters include most of
	// their devices at some point.
	if r.Buckets[2] == 0 {
		t.Error("no cluster reached 75%+ inclusion at rho=0.01")
	}
	if !strings.Contains(r.String(), "rho=0.01") {
		t.Error("report rendering broken")
	}
}

func TestClusteringAblation(t *testing.T) {
	ab := RunClusteringAblation(Quick, 0.1, 6)
	if ab.OPTICSAcc < 0.8 {
		t.Errorf("OPTICS recovery %.2f at eps=0.1 with 500 samples, want >= 0.8", ab.OPTICSAcc)
	}
	// The ablation's point: OPTICS with auto-extraction needs no radius
	// choice, while DBSCAN's quality depends on picking the radius well —
	// OPTICS must be at least competitive with DBSCAN's best grid point.
	best := 0.0
	for _, acc := range ab.DBSCANAcc {
		if acc > best {
			best = acc
		}
	}
	if ab.OPTICSAcc < best-0.1 {
		t.Errorf("OPTICS (%.2f) far below DBSCAN's best grid point (%.2f)", ab.OPTICSAcc, best)
	}
	if !strings.Contains(ab.String(), "optics-auto") {
		t.Error("report rendering broken")
	}
}

func TestLatencyAblation(t *testing.T) {
	ab := RunLatencyAblation(5000, 7)
	totalClients := 0
	for _, c := range ab.Count {
		totalClients += c
	}
	if totalClients != 5000 {
		t.Fatalf("counted %d clients", totalClients)
	}
	// Latency must increase along the category ordering.
	for c := 1; c < 4; c++ {
		if ab.Mean[c] <= ab.Mean[c-1] {
			t.Errorf("category %d mean %.2f not above category %d mean %.2f", c, ab.Mean[c], c-1, ab.Mean[c-1])
		}
	}
	if r := ab.StragglerRatio(); r < 2 || r > 5 {
		t.Errorf("straggler ratio %.2f outside the plausible 2-5x band", r)
	}
	if !strings.Contains(ab.String(), "straggler") {
		t.Error("report rendering broken")
	}
}

func TestSummarySizeAblation(t *testing.T) {
	ab := RunSummarySizeAblation(Quick, 8)
	if len(ab.PYBytes) != clientCount(Quick) {
		t.Fatalf("%d PY sizes", len(ab.PYBytes))
	}
	for i := range ab.PYBytes {
		if ab.PXYBytes[i] <= ab.PYBytes[i] {
			t.Errorf("client %d: PXY (%dB) not larger than PY (%dB)", i, ab.PXYBytes[i], ab.PYBytes[i])
		}
	}
}

func TestFeatureSkewWorkloadRotation(t *testing.T) {
	w := buildFeatureSkewWorkload(Quick, 9)
	// Clients with odd majority labels hold rotated data; verify the
	// feature means differ between an odd-group and even-group client
	// sharing no construction difference otherwise.
	if w.NumClients() < 2 {
		t.Fatal("tiny workload")
	}
	// At minimum, the plan's group parity must partition the roster.
	odd, even := 0, 0
	for _, g := range w.Plan.Group {
		if g%2 == 1 {
			odd++
		} else {
			even++
		}
	}
	if odd == 0 || even == 0 {
		t.Fatal("rotation partition degenerate")
	}
}

func TestPlanForSkewLevels(t *testing.T) {
	rng := stats.NewRNG(10)
	iid := planForSkew(SkewIID, 10, 10, Quick, rng)
	for _, d := range iid.Dists {
		if len(d.Labels) != 10 {
			t.Fatal("IID plan not uniform over all labels")
		}
	}
	mod := planForSkew(SkewModerate, 10, 10, Quick, rng)
	for _, d := range mod.Dists {
		if len(d.Labels) != 5 {
			t.Fatal("moderate plan not 5 labels")
		}
	}
	high := planForSkew(SkewHigh, 10, 10, Quick, rng)
	for _, d := range high.Dists {
		if len(d.Labels) != 4 {
			t.Fatal("high-skew plan not majority+3")
		}
	}
	if SkewIID.String() != "iid" || SkewModerate.String() != "5-labels" || SkewHigh.String() != "high-skew" {
		t.Error("skew level strings")
	}
}

// TestComparisonReportHelpers exercises report plumbing with synthetic
// results, no training.
func TestComparisonReportHelpers(t *testing.T) {
	mk := func(name string, tta float64, reached bool, acc float64) StrategyRun {
		return StrategyRun{
			Name:       name,
			Result:     &fl.Result{Strategy: name, History: []fl.Point{{Round: 1, Time: 10, Acc: acc}}},
			TTA:        tta,
			TTAReached: reached,
		}
	}
	r := &CompareReport{Title: "t", Target: 0.5, Runs: []StrategyRun{
		mk("random", 100, true, 0.6),
		mk("haccs-P(y)", 60, true, 0.7),
		mk("slowpoke", 0, false, 0.3),
	}}
	if r.Best().Name != "haccs-P(y)" {
		t.Errorf("Best = %q", r.Best().Name)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get found a ghost")
	}
	s := r.String()
	if !strings.Contains(s, "not reached") || !strings.Contains(s, "-40%") {
		t.Errorf("table rendering:\n%s", s)
	}
	if !strings.Contains(r.Curves(3), "acc=") {
		t.Error("curves rendering broken")
	}
	// All unreached: Best falls back to final accuracy.
	r2 := &CompareReport{Runs: []StrategyRun{mk("a", 0, false, 0.2), mk("b", 0, false, 0.4)}}
	if r2.Best().Name != "b" {
		t.Errorf("fallback Best = %q", r2.Best().Name)
	}
	_ = metrics.Reduction // keep metrics import meaningful if assertions change
}
