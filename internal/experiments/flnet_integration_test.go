package experiments

import (
	"sync"
	"testing"

	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/flnet"
	"haccs/internal/stats"
)

// TestFederatedTrainingOverTCP runs the full HACCS pipeline over real
// TCP connections: clients register with P(y) summaries, the server
// clusters them and drives FedAvg rounds where each selected client
// trains a real model locally. This is the deployment-path analogue of
// the paper's gRPC/PySyft implementation (Fig. 2 end to end).
func TestFederatedTrainingOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("network training run skipped in -short mode")
	}
	const (
		seed    = 31
		nClient = 8
		classes = 4
		k       = 4
		rounds  = 30
	)
	w := func() *Workload {
		spec := specFor("mnist", classes, Quick)
		plan := dataPlanForTCP(nClient, classes, seed)
		return BuildWorkload(spec, plan, archFor(spec, Quick), seed)
	}()

	srv, err := flnet.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Launch the clients: each registers its (noiseless) P(y) summary
	// and serves local-training requests with a real model.
	var wg sync.WaitGroup
	arch := w.Arch
	for i := 0; i < nClient; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := w.Clients[i]
			model := arch.Build(stats.NewRNG(1)) // scratch; params overwritten per request
			trainer := flnet.TrainerFunc(func(round int, params []float64) ([]float64, int, float64) {
				res := client.LocalTrain(model, params,
					fl.LocalTrainConfig{Epochs: 2, BatchSize: 16, LR: 0.05},
					stats.NewRNG(stats.DeriveSeed(seed, uint64(1000+i*100+round))))
				return res.Params, res.NumSamples, res.Loss
			})
			summary := core.Summarize(client.Data.Train, core.PY, 0)
			reg := flnet.RegisterFromSummary(i, summary.Label.Counts, nil,
				client.RoundLatency(0.01, 1, 1000), client.NumTrainSamples())
			c := &flnet.Client{Reg: reg, Trainer: trainer}
			if _, err := c.Run(srv.Addr()); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}

	regs, err := srv.AcceptClients(nClient)
	if err != nil {
		t.Fatal(err)
	}

	// Server side: rebuild summaries from the wire payloads and run the
	// HACCS clustering + scheduling pipeline.
	sums := make([]core.Summary, nClient)
	infos := make([]fl.ClientInfo, nClient)
	for _, r := range regs {
		sums[r.ClientID] = core.Summary{Kind: core.PY, Label: r.LabelHistogram()}
		infos[r.ClientID] = fl.ClientInfo{ID: r.ClientID, Latency: r.LatencyEstimate, NumSamples: r.NumSamples}
	}
	sched := core.NewScheduler(core.Config{Kind: core.PY, Rho: 0.5}, sums)
	sched.Init(infos, stats.NewRNG(stats.DeriveSeed(seed, 2)))
	if got := sched.NumClusters(); got != classes {
		t.Fatalf("server clustered wire summaries into %d clusters, want %d: %v",
			got, classes, sched.ClusterLabels())
	}
	wantClusters := cluster.Purity(sched.ClusterLabels(), w.Plan.Group)
	if wantClusters != 1 {
		t.Fatalf("wire-summary clusters impure: %.2f", wantClusters)
	}

	// Drive FedAvg rounds over TCP through the shared round runtime —
	// the same driver the in-process engine uses, with the gob protocol
	// as transport.
	global := arch.Build(stats.NewRNG(stats.DeriveSeed(seed, 3)))
	coord, err := flnet.NewCoordinator(srv, flnet.CoordinatorConfig{
		ClientsPerRound: k,
	}, sched, global.ParamsVector())
	if err != nil {
		t.Fatal(err)
	}
	firstLoss, lastLoss := 0.0, 0.0
	for round := 0; round < rounds; round++ {
		out := coord.RunRound(round)
		if !out.Aggregated || len(out.Failed) != 0 || len(out.Cut) != 0 {
			t.Fatalf("round %d outcome = %+v, want a clean synchronous round", round, out)
		}
		meanLoss := 0.0
		for _, l := range out.Losses {
			meanLoss += l / float64(len(out.Losses))
		}
		if round == 0 {
			firstLoss = meanLoss
		}
		lastLoss = meanLoss
	}
	srv.Close()
	wg.Wait()

	if lastLoss >= firstLoss {
		t.Errorf("federated training over TCP did not reduce loss: %.3f -> %.3f", firstLoss, lastLoss)
	}
	// The aggregated model must actually classify: evaluate on every
	// client's local test set.
	global.SetParamsVector(coord.Global())
	total, n := 0.0, 0
	for _, c := range w.Clients {
		_, acc := global.Evaluate(c.Data.Test.X, c.Data.Test.Y)
		total += acc
		n++
	}
	if mean := total / float64(n); mean < 0.4 {
		t.Errorf("TCP-trained global model accuracy %.3f, want >= 0.4", mean)
	}
}

// dataPlanForTCP builds a small group partition: nClient clients evenly
// assigned to `classes` single-label groups (tight clusters the server
// must recover from wire summaries).
func dataPlanForTCP(nClient, classes int, seed uint64) *dataset.PartitionPlan {
	groups := make([][]int, classes)
	for c := 0; c < classes; c++ {
		groups[c] = []int{c}
	}
	_ = seed
	return dataset.GroupPlan(groups, nClient/classes, 200)
}
