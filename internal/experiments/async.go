package experiments

import (
	"fmt"
	"math"
	"strings"

	"haccs/internal/fl"
	"haccs/internal/metrics"
	"haccs/internal/rounds"
)

// RunAsyncComparison measures the buffered-async driver's headline
// claim: under a heavy-tailed device latency distribution, FedBuff-style
// buffered aggregation reaches the same accuracy as synchronous rounds
// in far less virtual time, because a sync barrier round always waits
// for its slowest selected client while the async driver keeps
// aggregating around the stragglers.
//
// Both legs run the same workload — the standard 10-class CIFAR-style
// partition with every fourth client's compute multiplier inflated
// 15x (a deliberately heavy tail on top of the Table II profiles) —
// under uniform random selection, so slow devices cannot be scheduled
// around and the tail cost lands squarely on the runtime. The async leg
// gets a larger cycle budget (cycles advance the clock only to the next
// few finish events, a fraction of a barrier round) and both histories
// are scored by time-to-target at a common accuracy level.
type AsyncReport struct {
	Target      float64 // common accuracy level both legs are scored at
	SyncFinal   float64 // sync leg's final accuracy
	AsyncFinal  float64 // async leg's final accuracy
	SyncTTA     float64 // virtual seconds for sync to reach Target
	AsyncTTA    float64 // virtual seconds for async to reach Target
	SyncClock   float64 // sync leg's total virtual time
	AsyncClock  float64 // async leg's total virtual time
	Reached     bool    // both legs crossed Target
	Speedup     float64 // SyncTTA / AsyncTTA when Reached
	SyncRounds  int
	AsyncCycles int
}

// heavyTailLatency inflates every fourth client's compute multiplier so
// the latency distribution grows a deliberate heavy tail: ~25% of the
// fleet becomes an order of magnitude slower than the Table II draw.
func heavyTailLatency(w *Workload) {
	for i, c := range w.Clients {
		if i%4 == 0 {
			c.Profile.ComputeMultiplier *= 15
		}
	}
}

// RunAsyncComparison runs the sync-vs-async heavy-tail experiment.
func RunAsyncComparison(scale Scale, seed uint64) *AsyncReport {
	ec := defaultEngine(scale, 0)
	ec.MaxRounds = 40
	ec.EvalEvery = 2
	ec.Record = false

	// Sync leg: barrier rounds, every round pays the slowest selected
	// client's latency in full.
	wSync := buildStandardWorkload("cifar", 10, scale, seed)
	heavyTailLatency(wSync)
	sSync := buildStrategyForRun(wSync, 0, 0, 0.75, seed) // random
	syncRes := fl.NewEngine(ec.ToFL(wSync, seed), wSync.Clients, sSync).Run()

	// Async leg: identical workload and budgeted to the same number of
	// model updates (cycles flush BufferK of ClientsPerRound concurrent
	// trainers, so updates arrive in smaller, cheaper steps).
	wAsync := buildStandardWorkload("cifar", 10, scale, seed)
	heavyTailLatency(wAsync)
	sAsync := buildStrategyForRun(wAsync, 0, 0, 0.75, seed)
	ecAsync := ec
	ecAsync.MaxRounds = ec.MaxRounds * 4
	cfg := ecAsync.ToFL(wAsync, seed)
	cfg.Mode = rounds.ModeAsync
	cfg.Async = rounds.AsyncConfig{BufferK: 3, MaxStaleness: 12}
	asyncRes := fl.NewEngine(cfg, wAsync.Clients, sAsync).Run()

	// Score both histories at a common level: 90% of the weaker leg's
	// best accuracy, so the target is reachable by construction and the
	// comparison is pure time-to-target.
	target := 0.9 * math.Min(metrics.BestAccuracy(syncRes.History), metrics.BestAccuracy(asyncRes.History))
	r := &AsyncReport{
		Target:      target,
		SyncFinal:   syncRes.FinalAccuracy(),
		AsyncFinal:  asyncRes.FinalAccuracy(),
		SyncClock:   syncRes.Clock,
		AsyncClock:  asyncRes.Clock,
		SyncRounds:  syncRes.Rounds,
		AsyncCycles: asyncRes.Rounds,
	}
	syncTTA, okSync := metrics.TTA(syncRes.History, target)
	asyncTTA, okAsync := metrics.TTA(asyncRes.History, target)
	r.SyncTTA, r.AsyncTTA = syncTTA, asyncTTA
	r.Reached = okSync && okAsync
	if r.Reached && asyncTTA > 0 {
		r.Speedup = syncTTA / asyncTTA
	}
	return r
}

// String renders the comparison.
func (r *AsyncReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== sync vs async under heavy-tail latency ==\n")
	fmt.Fprintf(&b, "target accuracy: %.3f\n", r.Target)
	fmt.Fprintf(&b, "%-6s %9s %11s %11s %8s\n", "mode", "final-acc", "tta", "clock", "rounds")
	fmt.Fprintf(&b, "%-6s %9.3f %10.1fs %10.1fs %8d\n", "sync", r.SyncFinal, r.SyncTTA, r.SyncClock, r.SyncRounds)
	fmt.Fprintf(&b, "%-6s %9.3f %10.1fs %10.1fs %8d\n", "async", r.AsyncFinal, r.AsyncTTA, r.AsyncClock, r.AsyncCycles)
	if r.Reached {
		fmt.Fprintf(&b, "async speedup to target: %.1fx\n", r.Speedup)
	} else {
		fmt.Fprintf(&b, "target not reached by both legs\n")
	}
	return b.String()
}
