package experiments

import (
	"bytes"
	"sync"
	"testing"

	"haccs/internal/checkpoint"
	"haccs/internal/core"
	"haccs/internal/fl"
	"haccs/internal/fleet"
	"haccs/internal/flnet"
	"haccs/internal/metrics"
	"haccs/internal/rounds"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// The async suite is the buffered-aggregation analogue of the golden /
// resume gates: every selection strategy must run under the async
// driver on both transports, a fixed seed must reproduce the trajectory
// byte for byte, and a run restored from a snapshot taken with updates
// still in flight must match the uninterrupted run bit for bit.

const (
	asyncSeed   = 171717
	asyncCycles = 14
	asyncSnapAt = 7 // mid-run snapshot used by the restore leg
)

// asyncEngine builds one async-mode engine over a freshly materialized
// canonical workload, mirroring resumeEngine: dropout on (availability
// interacts with the busy mask), no deadline (sync-only), staleness
// bound active, fleet registry attached so async observations join the
// bit-identical contract. store == nil disables checkpointing.
func asyncEngine(t *testing.T, stratIdx int, store *checkpoint.Store) (*fl.Engine, *fleet.Registry) {
	t.Helper()
	w := buildStandardWorkload("cifar", 10, Quick, asyncSeed)
	ec := defaultEngine(Quick, 0)
	ec.MaxRounds = asyncCycles
	ec.EvalEvery = 2
	ec.Record = true
	ec.Dropout = simnet.TransientDropout{
		Rate:   0.15,
		Seed:   9,
		NewRNG: func(s uint64) interface{ Float64() float64 } { return stats.NewRNG(s) },
	}
	cfg := ec.ToFL(w, asyncSeed)
	cfg.Mode = rounds.ModeAsync
	cfg.Async = rounds.AsyncConfig{BufferK: 3, MaxStaleness: 8}
	if store != nil {
		cfg.Checkpoint = store
		cfg.CheckpointEvery = 1
	}
	s := buildStrategyForRun(w, stratIdx, 0, 0.75, asyncSeed)
	var src fleet.ClusterSource
	if cs, ok := s.(fleet.ClusterSource); ok {
		src = cs
	}
	reg := fleet.NewRegistry(len(w.Clients), fleet.Options{Source: src})
	cfg.Fleet = reg
	return fl.NewEngine(cfg, w.Clients, s), reg
}

// summaryJSON digests a result through the export path — the
// determinism contract is byte-identical summary JSON, not just equal
// floats.
func summaryJSON(t *testing.T, res *fl.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := metrics.Summarize(res, 0).WriteJSON(&buf); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	return buf.Bytes()
}

// TestAsyncConformanceAllStrategies drives every selection strategy —
// baselines, both HACCS variants and the sketch backends — through the
// async driver under dropout and verifies the engine invariants hold,
// and that two identically seeded runs export byte-identical summary
// JSON (the async determinism contract).
func TestAsyncConformanceAllStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	names := []string{"random", "tifl", "oort", "haccs-py", "haccs-pxy", "haccs-py-sketch", "haccs-pxy-sketch"}
	for i, name := range names {
		t.Run(name, func(t *testing.T) {
			engA, _ := asyncEngine(t, i, nil)
			resA := engA.Run()
			if resA.Rounds != asyncCycles {
				t.Fatalf("cycles = %d, want %d", resA.Rounds, asyncCycles)
			}
			if len(resA.History) == 0 {
				t.Fatal("no evaluations recorded")
			}
			if resA.FinalAccuracy() <= 0 {
				t.Error("final accuracy not positive")
			}
			budget := defaultEngine(Quick, 0).ClientsPerRound
			for r, sel := range resA.Selected {
				if len(sel) > budget {
					t.Errorf("cycle %d dispatched over concurrency: %d", r, len(sel))
				}
			}

			engB, _ := asyncEngine(t, i, nil)
			resB := engB.Run()
			a, b := summaryJSON(t, resA), summaryJSON(t, resB)
			if !bytes.Equal(a, b) {
				t.Errorf("two identically seeded async runs exported different summaries:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestAsyncResumeFromMidRunSnapshot is the crash-mid-buffer leg of the
// resume gate: a snapshot taken while dispatched updates are still in
// flight (queued finish events carrying trained deltas) must restore
// into a fresh engine and reproduce the uninterrupted trajectory bit
// for bit — clock, history, selections and the final parameter vector —
// including the fleet registry's staleness state.
func TestAsyncResumeFromMidRunSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	names := []string{"random", "tifl", "oort", "haccs-py", "haccs-pxy", "haccs-py-sketch", "haccs-pxy-sketch"}
	for i, name := range names {
		t.Run(name, func(t *testing.T) {
			refEng, refFleet := asyncEngine(t, i, nil)
			ref := refEng.Run()
			refBytes := fleetSnapshot(t, refFleet)

			store, err := checkpoint.NewStore(t.TempDir(), asyncCycles+2)
			if err != nil {
				t.Fatal(err)
			}
			chkEng, chkFleet := asyncEngine(t, i, store)
			assertSameResult(t, "checkpointed", chkEng.Run(), ref)
			if !bytes.Equal(fleetSnapshot(t, chkFleet), refBytes) {
				t.Error("checkpointed: fleet registry state differs from reference")
			}

			snap, err := store.Load(asyncSnapAt)
			if err != nil {
				t.Fatalf("load mid-run snapshot: %v", err)
			}
			eng, resFleet := asyncEngine(t, i, nil)
			if err := eng.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			// The point of this leg: the snapshot must capture a
			// non-trivial in-flight state, or it degenerates into the
			// sync resume test with different labels.
			type inflighter interface{ InFlight() int }
			if fl, ok := eng.Runner().(inflighter); !ok {
				t.Fatal("async runner does not expose InFlight")
			} else if fl.InFlight() == 0 {
				t.Fatal("snapshot restored with an empty event queue; pick a snapAt with updates in flight")
			}
			assertSameResult(t, "resumed", eng.Run(), ref)
			if !bytes.Equal(fleetSnapshot(t, resFleet), refBytes) {
				t.Error("resumed: fleet registry state differs from reference")
			}
		})
	}
}

// TestAsyncModeMismatchRejected pins the failure mode the driver_async
// component name exists for: a snapshot from a sync run must not
// restore into an async engine (and vice versa) — the component tables
// differ, so Restore fails loudly instead of silently reinterpreting
// driver state.
func TestAsyncModeMismatchRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	syncEng, _ := resumeEngine(t, 0, nil)
	snap, err := syncEng.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	asyncEng, _ := asyncEngine(t, 0, nil)
	if err := asyncEng.Restore(snap); err == nil {
		t.Fatal("sync snapshot restored into an async engine")
	}
}

// TestAsyncFederatedTrainingOverTCP mirrors the synchronous TCP
// integration test with the buffered async driver: the same gob
// protocol, registration flow and HACCS clustering, but the coordinator
// now dispatches eagerly and flushes BufferK-deep buffers. This is the
// second-transport leg of the async acceptance gate.
func TestAsyncFederatedTrainingOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("network training run skipped in -short mode")
	}
	const (
		seed    = 31
		nClient = 8
		classes = 4
		k       = 4
		cycles  = 60
	)
	w := func() *Workload {
		spec := specFor("mnist", classes, Quick)
		plan := dataPlanForTCP(nClient, classes, seed)
		return BuildWorkload(spec, plan, archFor(spec, Quick), seed)
	}()

	srv, err := flnet.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	arch := w.Arch
	for i := 0; i < nClient; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := w.Clients[i]
			model := arch.Build(stats.NewRNG(1))
			trainer := flnet.TrainerFunc(func(round int, params []float64) ([]float64, int, float64) {
				res := client.LocalTrain(model, params,
					fl.LocalTrainConfig{Epochs: 2, BatchSize: 16, LR: 0.05},
					stats.NewRNG(stats.DeriveSeed(seed, uint64(1000+i*100+round))))
				return res.Params, res.NumSamples, res.Loss
			})
			summary := core.Summarize(client.Data.Train, core.PY, 0)
			reg := flnet.RegisterFromSummary(i, summary.Label.Counts, nil,
				client.RoundLatency(0.01, 1, 1000), client.NumTrainSamples())
			c := &flnet.Client{Reg: reg, Trainer: trainer}
			if _, err := c.Run(srv.Addr()); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}

	regs, err := srv.AcceptClients(nClient)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]core.Summary, nClient)
	infos := make([]fl.ClientInfo, nClient)
	for _, r := range regs {
		sums[r.ClientID] = core.Summary{Kind: core.PY, Label: r.LabelHistogram()}
		infos[r.ClientID] = fl.ClientInfo{ID: r.ClientID, Latency: r.LatencyEstimate, NumSamples: r.NumSamples}
	}
	sched := core.NewScheduler(core.Config{Kind: core.PY, Rho: 0.5}, sums)
	sched.Init(infos, stats.NewRNG(stats.DeriveSeed(seed, 2)))

	global := arch.Build(stats.NewRNG(stats.DeriveSeed(seed, 3)))
	coord, err := flnet.NewCoordinator(srv, flnet.CoordinatorConfig{
		ClientsPerRound: k,
		Mode:            rounds.ModeAsync,
		Async:           rounds.AsyncConfig{BufferK: 2, MaxStaleness: 8},
	}, sched, global.ParamsVector())
	if err != nil {
		t.Fatal(err)
	}
	flushes := 0
	firstLoss, lastLoss := 0.0, 0.0
	for cycle := 0; cycle < cycles; cycle++ {
		out := coord.RunRound(cycle)
		if len(out.Failed) != 0 {
			t.Fatalf("cycle %d failed clients over a live TCP transport: %v", cycle, out.Failed)
		}
		if !out.Aggregated {
			continue
		}
		meanLoss := 0.0
		for _, l := range out.Losses {
			meanLoss += l / float64(len(out.Losses))
		}
		if flushes == 0 {
			firstLoss = meanLoss
		}
		lastLoss = meanLoss
		flushes++
	}
	srv.Close()
	wg.Wait()

	if flushes < cycles/2 {
		t.Errorf("only %d of %d cycles flushed the buffer", flushes, cycles)
	}
	if lastLoss >= firstLoss {
		t.Errorf("async training over TCP did not reduce loss: %.3f -> %.3f", firstLoss, lastLoss)
	}
	global.SetParamsVector(coord.Global())
	total, n := 0.0, 0
	for _, c := range w.Clients {
		_, acc := global.Evaluate(c.Data.Test.X, c.Data.Test.Y)
		total += acc
		n++
	}
	if mean := total / float64(n); mean < 0.4 {
		t.Errorf("async TCP-trained global model accuracy %.3f, want >= 0.4", mean)
	}
}

// TestAsyncBeatsSyncUnderHeavyTail runs the committed heavy-tail
// experiment and asserts its headline: under a latency distribution
// with a deliberate heavy tail, the async driver reaches the common
// accuracy target in less virtual time than barrier rounds.
func TestAsyncBeatsSyncUnderHeavyTail(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	r := RunAsyncComparison(Quick, 1)
	t.Logf("\n%s", r)
	if !r.Reached {
		t.Fatalf("target %.3f not reached by both legs: %+v", r.Target, r)
	}
	if r.Speedup <= 1 {
		t.Errorf("async TTA %.1fs not faster than sync TTA %.1fs under heavy-tail latency",
			r.AsyncTTA, r.SyncTTA)
	}
}
