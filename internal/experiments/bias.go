package experiments

import (
	"fmt"
	"strings"

	"haccs/internal/core"
	"haccs/internal/metrics"
)

// BiasReport holds the scheduling-bias analyses of §V-D5: Table III
// (fraction of each cluster's devices ever included over the run at
// ρ = 0.01) and Fig. 11 (accuracy gap between the fastest and slowest
// device of each cluster under the final model).
type BiasReport struct {
	Kind core.SummaryKind
	// InclusionFrac[c] is the fraction of cluster c's devices selected
	// at least once.
	InclusionFrac []float64
	// Buckets counts clusters by inclusion fraction: [0-50%), [50-75%),
	// [75-100%] — the three columns of Table III.
	Buckets [3]int
	// AccGap[c] = accuracy(fastest member) - accuracy(slowest member)
	// under the final global model; 0 for singleton clusters (Fig. 11).
	AccGap []float64
	// ClusterSizes records each cluster's membership count.
	ClusterSizes []int
	Epochs       int
}

// RunBias executes the feature-skew workload for the given summary kind
// with ρ = 0.01 (strong loss preference, the Table III setting), records
// every selection, and computes both analyses.
func RunBias(kind core.SummaryKind, scale Scale, seed uint64) *BiasReport {
	ec := defaultEngine(scale, 0) // no early stop: fixed epoch budget
	ec.Record = true
	epochs := 60
	if scale == Full {
		epochs = 200 // the paper's 200-epoch budget
	}
	ec.MaxRounds = epochs
	ec.EvalEvery = epochs

	w := buildFeatureSkewWorkload(scale, seed)
	sched := HACCSOnly(w, kind, 0, 0.01, seed)
	eng := newEngineForReport(ec, w, sched, seed)
	res := eng.Run()

	clusters := sched.Clusters()
	report := &BiasReport{Kind: kind, Epochs: epochs}

	selectedEver := map[int]bool{}
	for _, sel := range res.Selected {
		for _, id := range sel {
			selectedEver[id] = true
		}
	}
	for _, members := range clusters {
		report.ClusterSizes = append(report.ClusterSizes, len(members))
		included := 0
		for _, id := range members {
			if selectedEver[id] {
				included++
			}
		}
		frac := float64(included) / float64(len(members))
		report.InclusionFrac = append(report.InclusionFrac, frac)
		switch {
		case frac < 0.5:
			report.Buckets[0]++
		case frac < 0.75:
			report.Buckets[1]++
		default:
			report.Buckets[2]++
		}

		// Fig. 11: accuracy difference between the fastest and slowest
		// member (0 for singletons, as in the paper).
		if len(members) < 2 {
			report.AccGap = append(report.AccGap, 0)
			continue
		}
		fastest, slowest := members[0], members[0]
		for _, id := range members[1:] {
			if eng.ClientLatency(id) < eng.ClientLatency(fastest) {
				fastest = id
			}
			if eng.ClientLatency(id) > eng.ClientLatency(slowest) {
				slowest = id
			}
		}
		report.AccGap = append(report.AccGap, res.PerClientAcc[fastest]-res.PerClientAcc[slowest])
	}
	return report
}

// String renders both Table III and the Fig. 11 series.
func (r *BiasReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table III + Fig. 11: scheduling bias, %s clusters, rho=0.01, %d epochs ==\n", r.Kind, r.Epochs)
	t := metrics.NewTable("devices-included", "0-50%", "50-75%", "75-100%")
	t.AddRow(fmt.Sprintf("%s clusters", r.Kind), r.Buckets[0], r.Buckets[1], r.Buckets[2])
	b.WriteString(t.String())
	b.WriteString("fastest-vs-slowest accuracy gap per cluster (Fig. 11):\n")
	g := metrics.NewTable("cluster", "size", "inclusion", "acc-gap")
	for c := range r.AccGap {
		g.AddRow(c, r.ClusterSizes[c], r.InclusionFrac[c], r.AccGap[c])
	}
	b.WriteString(g.String())
	return b.String()
}
