package experiments

import (
	"testing"

	"haccs/internal/core"
	"haccs/internal/fl"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// TestAllStrategiesConformance drives every selection strategy —
// baselines and both HACCS variants — through the engine under per-epoch
// dropout and verifies the engine's invariants hold (no panics, valid
// selections, monotone virtual time, training progress recorded). This
// is the cross-package contract test for fl.Strategy implementations.
func TestAllStrategiesConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	for i, name := range []string{"random", "tifl", "oort", "haccs-py", "haccs-pxy"} {
		i := i
		t.Run(name, func(t *testing.T) {
			w := buildStandardWorkload("cifar", 10, Quick, 99)
			ec := defaultEngine(Quick, 0)
			ec.MaxRounds = 12
			ec.EvalEvery = 4
			ec.Record = true
			ec.Dropout = simnet.TransientDropout{
				Rate:   0.25,
				Seed:   7,
				NewRNG: func(s uint64) interface{ Float64() float64 } { return stats.NewRNG(s) },
			}
			s := buildStrategyForRun(w, i, 0, 0.75, 99)
			res := fl.NewEngine(ec.ToFL(w, 99), w.Clients, s).Run()
			if res.Rounds != 12 {
				t.Fatalf("rounds = %d", res.Rounds)
			}
			if len(res.Selected) != 12 {
				t.Fatalf("selections recorded for %d rounds", len(res.Selected))
			}
			// Engine already panics on invalid selections; check the
			// budget was used when clients were available.
			for r, sel := range res.Selected {
				if len(sel) == 0 {
					t.Errorf("round %d selected nobody despite 75%% availability", r)
				}
				if len(sel) > ec.ClientsPerRound {
					t.Errorf("round %d over budget: %d", r, len(sel))
				}
			}
			if len(res.History) == 0 {
				t.Fatal("no evaluations recorded")
			}
			if res.FinalAccuracy() <= 0 {
				t.Error("final accuracy not positive")
			}
		})
	}
}

// TestComparisonSeedAveraging verifies the multi-seed aggregation logic:
// a strategy reaching the target in all seeds reports the mean, and the
// ReachedCount/Repeats bookkeeping is correct.
func TestComparisonSeedAveraging(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	ec := defaultEngine(Quick, 0.2) // low bar: everyone reaches it
	ec.MaxRounds = 30
	report := runComparisonSeeds("avg-test", 1, 0.2, 2, 5,
		func(s uint64) (*Workload, EngineConfig) {
			return buildStandardWorkload("cifar", 10, Quick, s), ec
		},
		func(w *Workload, i int, s uint64) fl.Strategy {
			return buildStrategyForRun(w, 0, 0, 0.75, s) // random
		})
	run := report.Runs[0]
	if run.Repeats != 2 {
		t.Errorf("repeats = %d", run.Repeats)
	}
	if run.ReachedCount != 2 || !run.TTAReached {
		t.Errorf("reached %d/%d, TTAReached=%v", run.ReachedCount, run.Repeats, run.TTAReached)
	}
	if run.TTA <= 0 {
		t.Errorf("mean TTA = %v", run.TTA)
	}
	if run.Result == nil {
		t.Error("first-seed result not retained")
	}
}

// TestGradientAblationShape checks the §IV-A alternative-summary
// ablation: gradient clustering recovers the groups at round 0 and the
// wire-size asymmetry is large.
func TestGradientAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	r := RunGradientAblation(Quick, 2)
	if r.GradRecoveryRound0 < 0.8 {
		t.Errorf("gradient recovery at round 0 = %.2f", r.GradRecoveryRound0)
	}
	if r.PYRecovery < 0.8 {
		t.Errorf("P(y) recovery = %.2f", r.PYRecovery)
	}
	if r.CrossRoundAgreement < 0 || r.CrossRoundAgreement > 1 {
		t.Errorf("rand index %v", r.CrossRoundAgreement)
	}
	if r.GradientBytes < 100*r.PYBytes {
		t.Errorf("gradient summary (%dB) not >100x P(y) (%dB)", r.GradientBytes, r.PYBytes)
	}
}

// TestIntraClusterPolicyAblation compares PickFastest against
// PickWeighted end-to-end: the weighted policy must include strictly
// more distinct devices over a run (the §V-D5 bias mitigation) while
// still training successfully.
func TestIntraClusterPolicyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	distinct := map[string]int{}
	for _, tc := range []struct {
		name   string
		policy int
	}{{"fastest", 0}, {"weighted", 1}} {
		w := buildStandardWorkload("cifar", 10, Quick, 17)
		ec := defaultEngine(Quick, 0)
		ec.MaxRounds = 40
		ec.EvalEvery = 40
		ec.Record = true
		var s fl.Strategy = HACCSOnly(w, core.PY, 0, 0.75, 17)
		if tc.policy == 1 {
			s = HACCSOnlyWeighted(w, 0, 0.75, 17)
		}
		res := fl.NewEngine(ec.ToFL(w, 17), w.Clients, s).Run()
		seen := map[int]bool{}
		for _, sel := range res.Selected {
			for _, id := range sel {
				seen[id] = true
			}
		}
		distinct[tc.name] = len(seen)
	}
	if distinct["weighted"] <= distinct["fastest"] {
		t.Errorf("weighted policy used %d distinct devices, fastest used %d; expected strictly more",
			distinct["weighted"], distinct["fastest"])
	}
}

// TestFullScaleSmoke validates the Full-scale configuration end to end
// at a tiny round budget: 50 clients, LeNet-style CNN on 16x16 images,
// HACCS-P(y) selection. The full-length runs belong to
// `haccs-bench -scale full`; this just proves the path works.
func TestFullScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs skipped in -short mode")
	}
	w := buildStandardWorkload("cifar", 10, Full, 1)
	if w.NumClients() != 50 {
		t.Fatalf("full workload has %d clients", w.NumClients())
	}
	if w.Arch.Kind != "lenet" {
		t.Fatalf("full arch is %q, want lenet", w.Arch.Kind)
	}
	ec := defaultEngine(Full, 0)
	ec.MaxRounds = 2
	ec.EvalEvery = 2
	s := HACCSOnly(w, core.PY, 0, 0.75, 1)
	res := fl.NewEngine(ec.ToFL(w, 1), w.Clients, s).Run()
	if res.Rounds != 2 || len(res.History) == 0 {
		t.Fatalf("full-scale smoke run malformed: %+v", res)
	}
	if s.NumClusters() < 5 {
		t.Errorf("full-scale clustering found only %d clusters", s.NumClusters())
	}
}
