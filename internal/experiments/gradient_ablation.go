package experiments

import (
	"fmt"
	"strings"

	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/fl"
	"haccs/internal/metrics"
	"haccs/internal/selection"
	"haccs/internal/stats"
)

// GradientAblation quantifies the paper's §IV-A argument against
// gradient-based summaries: they cluster well at any single round but
// their assignments drift as the global model moves, so they would need
// continuous re-communication and re-clustering, whereas histogram
// summaries are computed once.
type GradientAblation struct {
	// Recovery of the ground-truth groups by each summary family, at the
	// initial model and after Rounds of training.
	GradRecoveryRound0 float64
	GradRecoveryRoundK float64
	PYRecovery         float64
	// CrossRoundAgreement is the Rand index between the gradient
	// clusterings at round 0 and round K — low values mean the
	// assignments drifted and re-clustering was necessary.
	CrossRoundAgreement float64
	Rounds              int
	// GradientBytes and PYBytes compare the per-client summary wire
	// sizes: a gradient summary is one float per model parameter and
	// must be re-sent whenever the model moves, while P(y) is Θ(classes)
	// and sent once.
	GradientBytes int
	PYBytes       int
}

// RunGradientAblation clusters one skewed workload three ways: gradient
// summaries at round 0, gradient summaries after a few training rounds,
// and P(y) histograms (which never change).
func RunGradientAblation(scale Scale, seed uint64) *GradientAblation {
	w := buildStandardWorkload("cifar", 10, scale, seed)
	truth := w.Plan.Group
	rounds := 80
	if scale == Full {
		rounds = 120
	}

	// P(y) reference clustering.
	py := core.BuildSummaries(w.TrainSets, core.PY, 0, 0, stats.NewRNG(stats.DeriveSeed(seed, seedNoise)))
	pyLabels := clusterLabelsFor(py)

	// Gradient clustering at the initial global model.
	model := w.Arch.Build(stats.NewRNG(stats.DeriveSeed(seed, seedEngine)))
	params0 := model.ParamsVector()
	scratch := model.Clone()
	grads0 := make([][]float64, len(w.TrainSets))
	for i, d := range w.TrainSets {
		grads0[i] = core.GradientSummary(scratch, params0, d)
	}
	labels0 := core.ClusterGradients(grads0, 2)

	// Advance the global model with a plain random-selection run, then
	// recompute gradient summaries at the new parameters.
	ec := defaultEngine(scale, 0)
	ec.MaxRounds = rounds
	ec.EvalEvery = rounds
	res := fl.NewEngine(ec.ToFL(w, seed), w.Clients, selection.NewRandom()).Run()
	gradsK := make([][]float64, len(w.TrainSets))
	for i, d := range w.TrainSets {
		gradsK[i] = core.GradientSummary(scratch, res.FinalParams, d)
	}
	labelsK := core.ClusterGradients(gradsK, 2)

	return &GradientAblation{
		GradRecoveryRound0:  cluster.ExactRecovery(labels0, truth),
		GradRecoveryRoundK:  cluster.ExactRecovery(labelsK, truth),
		PYRecovery:          cluster.ExactRecovery(pyLabels, truth),
		CrossRoundAgreement: cluster.RandIndex(labels0, labelsK),
		Rounds:              rounds,
		GradientBytes:       8 * len(grads0[0]),
		PYBytes:             py[0].Bytes(),
	}
}

// String renders the comparison.
func (a *GradientAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Ablation: gradient summaries vs P(y) histograms (drift over %d rounds) ==\n", a.Rounds)
	t := metrics.NewTable("summary", "recovery@round0", fmt.Sprintf("recovery@round%d", a.Rounds), "stable-across-rounds")
	t.AddRow("gradient+cosine", a.GradRecoveryRound0, a.GradRecoveryRoundK,
		fmt.Sprintf("rand-index %.2f", a.CrossRoundAgreement))
	t.AddRow("P(y)+Hellinger", a.PYRecovery, a.PYRecovery, "identical (computed once)")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "per-client summary size: gradient %d bytes (re-sent every re-cluster) vs P(y) %d bytes (once)\n",
		a.GradientBytes, a.PYBytes)
	b.WriteString("measured nuance: on stationary synthetic data the gradient clusters stay\n" +
		"stable, so the paper's drift concern is workload-dependent — but the cost\n" +
		"asymmetry (model-sized uploads plus a full local forward/backward per\n" +
		"refresh, vs one tiny histogram) holds regardless.\n")
	return b.String()
}
