package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"haccs/internal/fl"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// The golden trajectories below were captured from the pre-refactor
// fl.Engine (the seed implementation with its hand-rolled round loop)
// at commit 68d6384, with GOLDEN=1 TestPrintGolden. The conformance
// test asserts the rounds-driver in-process path reproduces them
// bit-for-bit: clock, every History point, and an FNV-64a hash over the
// raw Float64bits of the final parameter vector. Any change to
// selection order, RNG stream derivation, aggregation arithmetic,
// worker fan-out, or clock accounting shows up here as a hard failure.

// goldenPoint is one evaluation, stored as raw IEEE-754 bit patterns so
// "equal" means bit-identical, not approximately close.
type goldenPoint struct {
	Round           int
	Time, Acc, Loss uint64
}

type goldenCase struct {
	name     string
	stratIdx int // buildStrategyForRun index
	dropout  bool
	clock    uint64
	params   uint64 // FNV-64a over Float64bits of FinalParams
	history  []goldenPoint
	selected int // total client selections across the run
}

var goldenCases = []goldenCase{
	{
		name:     "random",
		stratIdx: 0,
		dropout:  false,
		clock:    0x40520c6e7515f191,
		params:   0x5361f0c1a3acb909,
		history: []goldenPoint{
			{2, 0x4031ab36fcaf3cf8, 0x3fbe4cd84b04e271, 0x40042622c1d380e6},
			{4, 0x403dd4119f25282d, 0x3fbeb19686b67f4c, 0x4004eca0678b9f32},
			{6, 0x4046ae192b7af4d2, 0x3fc178385d34914d, 0x40036197f047ca39},
			{8, 0x404b43416bd444a6, 0x3fc63f26a0c0273f, 0x4003584cf982f95d},
			{10, 0x40520c6e7515f191, 0x3fc6716872e8fbf5, 0x4002f767c53b0483},
		},
		selected: 60,
	},
	{
		name:     "haccs-py",
		stratIdx: 3,
		dropout:  true,
		clock:    0x4043da461a92e4da,
		params:   0x31773a444a938918,
		history: []goldenPoint{
			{2, 0x401c7d9c9713026e, 0x3fb8e3c307fbb6a3, 0x4003bbf3618268c6},
			{4, 0x403049b7a6776043, 0x3fbdb7f42adb0f1a, 0x4003f97ca89e9447},
			{6, 0x4037f476f995d5b7, 0x3fbfca76f4aea096, 0x40039394a83f7112},
			{8, 0x403fb5c6a34e6ba8, 0x3fc6846acf7f3f1c, 0x4002f2b20c18d789},
			{10, 0x4043da461a92e4da, 0x3fc3ae6a05673690, 0x40022ff547506221},
		},
		selected: 60,
	},
}

// goldenRun builds the canonical determinism workload and runs it.
func goldenRun(t *testing.T, stratIdx int, withDropout bool) *fl.Result {
	t.Helper()
	const seed = 424242
	w := buildStandardWorkload("cifar", 10, Quick, seed)
	ec := defaultEngine(Quick, 0)
	ec.MaxRounds = 10
	ec.EvalEvery = 2
	ec.Record = true
	if withDropout {
		ec.Dropout = simnet.TransientDropout{
			Rate:   0.2,
			Seed:   9,
			NewRNG: func(s uint64) interface{ Float64() float64 } { return stats.NewRNG(s) },
		}
	}
	s := buildStrategyForRun(w, stratIdx, 0, 0.75, seed)
	return fl.NewEngine(ec.ToFL(w, seed), w.Clients, s).Run()
}

func paramsHash(params []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range params {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestDriverMatchesSeedTrajectory is the refactor's conformance guard:
// the engine, now an adapter over internal/rounds, must reproduce the
// seed engine's trajectory bit-for-bit on a fixed seed and config —
// with and without dropout, for both a stateless strategy (random) and
// the loss-feedback HACCS scheduler.
func TestDriverMatchesSeedTrajectory(t *testing.T) {
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			res := goldenRun(t, gc.stratIdx, gc.dropout)
			if got := math.Float64bits(res.Clock); got != gc.clock {
				t.Errorf("clock bits = %#x, want %#x (%v vs %v)",
					got, gc.clock, res.Clock, math.Float64frombits(gc.clock))
			}
			if got := paramsHash(res.FinalParams); got != gc.params {
				t.Errorf("final params hash = %#x, want %#x", got, gc.params)
			}
			if len(res.History) != len(gc.history) {
				t.Fatalf("history has %d points, want %d", len(res.History), len(gc.history))
			}
			for i, p := range res.History {
				want := gc.history[i]
				if p.Round != want.Round {
					t.Errorf("history[%d].Round = %d, want %d", i, p.Round, want.Round)
				}
				if got := math.Float64bits(p.Time); got != want.Time {
					t.Errorf("history[%d].Time bits = %#x, want %#x", i, got, want.Time)
				}
				if got := math.Float64bits(p.Acc); got != want.Acc {
					t.Errorf("history[%d].Acc bits = %#x, want %#x", i, got, want.Acc)
				}
				if got := math.Float64bits(p.Loss); got != want.Loss {
					t.Errorf("history[%d].Loss bits = %#x, want %#x", i, got, want.Loss)
				}
			}
			sel := 0
			for _, s := range res.Selected {
				sel += len(s)
			}
			if sel != gc.selected {
				t.Errorf("total selections = %d, want %d", sel, gc.selected)
			}
		})
	}
}

// TestPrintGolden regenerates the table above (GOLDEN=1 go test -run
// TestPrintGolden -v); paste its output into goldenCases after an
// intentional numerics change.
func TestPrintGolden(t *testing.T) {
	if os.Getenv("GOLDEN") == "" {
		t.Skip("set GOLDEN=1 to print golden trajectory data")
	}
	for _, tc := range []struct {
		name    string
		idx     int
		dropout bool
	}{{"random", 0, false}, {"haccs-py", 3, true}} {
		res := goldenRun(t, tc.idx, tc.dropout)
		fmt.Printf("=== %s\n", tc.name)
		fmt.Printf("clock: %#x\n", math.Float64bits(res.Clock))
		fmt.Printf("paramsHash: %#x\n", paramsHash(res.FinalParams))
		for _, p := range res.History {
			fmt.Printf("{%d, %#x, %#x, %#x},\n", p.Round,
				math.Float64bits(p.Time), math.Float64bits(p.Acc), math.Float64bits(p.Loss))
		}
		sel := 0
		for _, s := range res.Selected {
			sel += len(s)
		}
		fmt.Printf("selectedTotal: %d\n", sel)
	}
}
