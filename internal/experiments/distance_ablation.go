package experiments

import (
	"fmt"
	"math"
	"strings"

	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/metrics"
	"haccs/internal/stats"
)

// DistanceAblation measures the paper's choice of the Hellinger distance
// (eq. 3) against alternative bounded distribution distances on the
// Fig. 8a-style clustering task, with and without DP noise. The paper
// argues Hellinger "can tolerate zero entries" and "produces a nice
// bounded output"; this ablation quantifies how much the choice matters.
type DistanceAblation struct {
	// Recovery[distance][epsilonIndex] is the exact-recovery accuracy.
	Recovery map[string][]float64
	Epsilons []float64
	Trials   int
}

// distanceFns are the comparators under test. All operate on normalized
// label histograms and return values in [0, 1].
var distanceFns = []struct {
	Name string
	Fn   func(p, q []float64) float64
}{
	{"hellinger", stats.Hellinger},
	{"total-variation", stats.TotalVariation},
	{"jensen-shannon", stats.JensenShannon},
	{"bhattacharyya", stats.Bhattacharyya},
}

// RunDistanceAblation clusters the Fig. 8a roster (20 clients, 2 per
// label, 500 samples) under each distance function across a privacy
// sweep, averaging exact recovery over trials.
func RunDistanceAblation(scale Scale, seed uint64) *DistanceAblation {
	const (
		classes = 10
		perLbl  = 2
		samples = 500
		trials  = 5
	)
	spec := specFor("cifar", classes, scale)
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, seedData))
	rng := stats.NewRNG(stats.DeriveSeed(seed, seedMisc+30))
	plan := dataset.PairedLabelPlan(classes, perLbl, samples, rng)
	var sets []*dataset.Dataset
	for i := 0; i < plan.NumClients(); i++ {
		sets = append(sets, gen.Generate(plan.Dists[i].Draw(plan.Samples[i], rng), rng))
	}

	ab := &DistanceAblation{
		Recovery: map[string][]float64{},
		Epsilons: []float64{0, 1, 0.1, 0.05, 0.01},
		Trials:   trials,
	}
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, seedNoise+31))
	for _, d := range distanceFns {
		ab.Recovery[d.Name] = make([]float64, len(ab.Epsilons))
	}
	for ei, eps := range ab.Epsilons {
		nTrials := trials
		if eps == 0 {
			nTrials = 1 // no noise: deterministic
		}
		for trial := 0; trial < nTrials; trial++ {
			sums := core.BuildSummaries(sets, core.PY, 0, eps, noiseRNG)
			probs := make([][]float64, len(sums))
			for i, s := range sums {
				probs[i] = s.Label.Normalize()
			}
			for _, d := range distanceFns {
				m := cluster.FromFunc(len(probs), func(i, j int) float64 {
					return d.Fn(probs[i], probs[j])
				})
				labels := cluster.OPTICS(m, 2, math.Inf(1)).ExtractBestSilhouette(m, 0)
				ab.Recovery[d.Name][ei] += cluster.ExactRecovery(labels, plan.Group) / float64(nTrials)
			}
		}
	}
	return ab
}

// String renders the grid.
func (a *DistanceAblation) String() string {
	var b strings.Builder
	b.WriteString("== Ablation: summary distance function vs clustering accuracy ==\n")
	header := []string{"distance"}
	for _, e := range a.Epsilons {
		if e == 0 {
			header = append(header, "no-noise")
		} else {
			header = append(header, fmt.Sprintf("eps=%g", e))
		}
	}
	t := metrics.NewTable(header...)
	for _, d := range distanceFns {
		cells := []interface{}{d.Name}
		for _, v := range a.Recovery[d.Name] {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	b.WriteString("the paper's Hellinger choice is compared against other bounded metrics;\nKL divergence is excluded (infinite on the zero bins sparse label\nhistograms always contain — the disqualifier the paper cites).\n")
	return b.String()
}
