package experiments

import (
	"bytes"
	"math"
	"testing"

	"haccs/internal/checkpoint"
	"haccs/internal/fl"
	"haccs/internal/fleet"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// The resume suite is the checkpoint subsystem's acceptance gate: for
// every selection strategy, a run that snapshots each round and a run
// restored from a mid-run snapshot must both reproduce the
// uninterrupted trajectory bit for bit — clock, history, selections,
// per-client accuracies and the final parameter vector. The workload
// deliberately turns on the two features that interact with recovery:
// transient dropout (a stateless per-epoch mask that must realign) and
// a round deadline (partial aggregation, so the strategies' loss
// feedback differs from the synchronous path).

const (
	resumeSeed   = 424242
	resumeRounds = 12
	resumeSnapAt = 7 // mid-run snapshot used by the restore leg
)

// resumeEngine builds one engine over a freshly materialized canonical
// workload, as a restarted process would, with a fleet health registry
// attached so the suite also proves the registry's state is part of the
// bit-identical contract. store == nil disables checkpointing.
func resumeEngine(t *testing.T, stratIdx int, store *checkpoint.Store) (*fl.Engine, *fleet.Registry) {
	t.Helper()
	w := buildStandardWorkload("cifar", 10, Quick, resumeSeed)
	ec := defaultEngine(Quick, 0) // no target: every leg runs to MaxRounds
	ec.MaxRounds = resumeRounds
	ec.EvalEvery = 2
	ec.Record = true
	ec.Dropout = simnet.TransientDropout{
		Rate:   0.15,
		Seed:   9,
		NewRNG: func(s uint64) interface{ Float64() float64 } { return stats.NewRNG(s) },
	}
	cfg := ec.ToFL(w, resumeSeed)
	cfg.RoundDeadline = 6 // cuts the slowest selected clients most rounds
	if store != nil {
		cfg.Checkpoint = store
		cfg.CheckpointEvery = 1
	}
	s := buildStrategyForRun(w, stratIdx, 0, 0.75, resumeSeed)
	var src fleet.ClusterSource
	if cs, ok := s.(fleet.ClusterSource); ok {
		src = cs // HACCS strategies expose cluster targets
	}
	reg := fleet.NewRegistry(len(w.Clients), fleet.Options{Source: src})
	cfg.Fleet = reg
	return fl.NewEngine(cfg, w.Clients, s), reg
}

// fleetSnapshot serializes a registry, failing the test on error.
func fleetSnapshot(t *testing.T, r *fleet.Registry) []byte {
	t.Helper()
	b, err := r.SnapshotState()
	if err != nil {
		t.Fatalf("fleet snapshot: %v", err)
	}
	return b
}

// assertSameResult compares two runs bit for bit: float64 fields by
// their IEEE-754 bit patterns, never by tolerance.
func assertSameResult(t *testing.T, leg string, got, want *fl.Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Errorf("%s: rounds = %d, want %d", leg, got.Rounds, want.Rounds)
	}
	if g, w := math.Float64bits(got.Clock), math.Float64bits(want.Clock); g != w {
		t.Errorf("%s: clock bits = %#x, want %#x (%v vs %v)", leg, g, w, got.Clock, want.Clock)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history has %d points, want %d", leg, len(got.History), len(want.History))
	}
	for i, p := range got.History {
		q := want.History[i]
		if p.Round != q.Round ||
			math.Float64bits(p.Time) != math.Float64bits(q.Time) ||
			math.Float64bits(p.Acc) != math.Float64bits(q.Acc) ||
			math.Float64bits(p.Loss) != math.Float64bits(q.Loss) {
			t.Errorf("%s: history[%d] = %+v, want %+v", leg, i, p, q)
		}
	}
	if len(got.Selected) != len(want.Selected) {
		t.Fatalf("%s: %d selection rounds, want %d", leg, len(got.Selected), len(want.Selected))
	}
	for r, sel := range got.Selected {
		if len(sel) != len(want.Selected[r]) {
			t.Errorf("%s: round %d selected %v, want %v", leg, r, sel, want.Selected[r])
			continue
		}
		for i, id := range sel {
			if id != want.Selected[r][i] {
				t.Errorf("%s: round %d selected %v, want %v", leg, r, sel, want.Selected[r])
				break
			}
		}
	}
	if len(got.PerClientAcc) != len(want.PerClientAcc) {
		t.Fatalf("%s: %d per-client accuracies, want %d", leg, len(got.PerClientAcc), len(want.PerClientAcc))
	}
	for i, v := range got.PerClientAcc {
		if math.Float64bits(v) != math.Float64bits(want.PerClientAcc[i]) {
			t.Errorf("%s: perClientAcc[%d] = %v, want %v", leg, i, v, want.PerClientAcc[i])
		}
	}
	if gh, wh := paramsHash(got.FinalParams), paramsHash(want.FinalParams); gh != wh {
		t.Errorf("%s: final params hash = %#x, want %#x", leg, gh, wh)
	}
}

// TestResumeBitIdentical runs three legs per strategy: A uninterrupted
// (the reference), B with per-round checkpointing (proving snapshots
// are observationally free), and C a fresh engine restored from the
// round-7 snapshot and run to completion (proving restore continues
// every RNG stream, the virtual clock and the strategies' mutable
// state exactly).
func TestResumeBitIdentical(t *testing.T) {
	names := []string{"random", "tifl", "oort", "haccs-py", "haccs-pxy", "haccs-py-sketch", "haccs-pxy-sketch"}
	for i, name := range names {
		t.Run(name, func(t *testing.T) {
			refEng, refFleet := resumeEngine(t, i, nil)
			ref := refEng.Run()
			refBytes := fleetSnapshot(t, refFleet)

			store, err := checkpoint.NewStore(t.TempDir(), resumeRounds+2)
			if err != nil {
				t.Fatal(err)
			}
			chkEng, chkFleet := resumeEngine(t, i, store)
			assertSameResult(t, "checkpointed", chkEng.Run(), ref)
			if !bytes.Equal(fleetSnapshot(t, chkFleet), refBytes) {
				t.Error("checkpointed: fleet registry state differs from reference")
			}

			snap, err := store.Load(resumeSnapAt)
			if err != nil {
				t.Fatalf("load mid-run snapshot: %v", err)
			}
			eng, resFleet := resumeEngine(t, i, nil)
			if err := eng.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if eng.StartRound() != resumeSnapAt {
				t.Fatalf("StartRound = %d, want %d", eng.StartRound(), resumeSnapAt)
			}
			assertSameResult(t, "resumed", eng.Run(), ref)
			if !bytes.Equal(fleetSnapshot(t, resFleet), refBytes) {
				t.Error("resumed: fleet registry state differs from reference")
			}
		})
	}
}

// TestRestoreValidation pins the failure modes: a snapshot must not
// restore into an engine with a different strategy or seed, nor into
// an engine that has already run.
func TestRestoreValidation(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := resumeEngine(t, 0, store)
	snap, err := eng.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(snap); err != nil {
		t.Fatal(err)
	}

	t.Run("wrong_strategy", func(t *testing.T) {
		other, _ := resumeEngine(t, 1, nil) // tifl, snapshot is random
		if err := other.Restore(snap); err == nil {
			t.Fatal("snapshot restored into a different strategy")
		}
	})
	t.Run("already_ran", func(t *testing.T) {
		ran, _ := resumeEngine(t, 0, nil)
		ran.Run()
		if err := ran.Restore(snap); err == nil {
			t.Fatal("snapshot restored into an engine that already ran")
		}
	})
	t.Run("wrong_seed", func(t *testing.T) {
		w := buildStandardWorkload("cifar", 10, Quick, resumeSeed)
		ec := defaultEngine(Quick, 0)
		ec.MaxRounds = resumeRounds
		cfg := ec.ToFL(w, resumeSeed+1) // different root seed
		other := fl.NewEngine(cfg, w.Clients, buildStrategyForRun(w, 0, 0, 0.75, resumeSeed+1))
		if err := other.Restore(snap); err == nil {
			t.Fatal("snapshot restored under a different seed")
		}
	})
}
