// Package experiments contains one runner per table and figure of the
// HACCS evaluation (§III and §V). Every runner is deterministic given a
// seed, supports a Quick scale (seconds, used by `go test -bench`) and a
// Full scale (minutes, paper-sized client counts and models, used by
// cmd/haccs-bench -scale=full), and returns a structured report whose
// String() prints the same rows/series the paper plots.
package experiments

import (
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/nn"
	"haccs/internal/selection"
	"haccs/internal/simnet"
	"haccs/internal/stats"
	"haccs/internal/telemetry"
)

// telem is the optional process-wide instrumentation every engine and
// HACCS scheduler the runners construct records into. It exists for
// cmd/haccs-bench's -metrics-addr / -telemetry-jsonl flags; tests and
// library users leave it unset, which costs nothing. Set it once,
// before any runner starts — the runners read it concurrently.
var telem struct {
	reg    *telemetry.Registry
	tracer telemetry.Tracer
}

// EnableTelemetry installs a registry and tracer into every experiment
// runner in this process. Not safe to call while runs are in flight.
func EnableTelemetry(reg *telemetry.Registry, tracer telemetry.Tracer) {
	telem.reg = reg
	telem.tracer = tracer
}

// Scale selects experiment size.
type Scale int

const (
	// Quick shrinks images, client counts and round budgets so the whole
	// suite runs in minutes; the qualitative comparisons survive.
	Quick Scale = iota
	// Full uses paper-scale client counts (50 clients, k=10) and
	// full-resolution synthetic datasets.
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// ParseScale converts "quick"/"full".
func ParseScale(s string) (Scale, bool) {
	switch s {
	case "quick":
		return Quick, true
	case "full":
		return Full, true
	}
	return Quick, false
}

// Workload bundles everything a run needs: the client roster (data +
// system profiles), the raw per-client training sets (for summary
// construction), and the model architecture.
type Workload struct {
	Clients   []*fl.Client
	TrainSets []*dataset.Dataset
	Plan      *dataset.PartitionPlan
	Spec      dataset.Spec
	Arch      nn.Arch
}

// NumClients returns the roster size.
func (w *Workload) NumClients() int { return len(w.Clients) }

// seed channel indices for DeriveSeed, one per stochastic subsystem.
const (
	seedData = iota + 10
	seedProfiles
	seedEngine
	seedNoise
	seedMisc
)

// BuildWorkload materializes a partition plan into clients with sampled
// Table II system profiles.
func BuildWorkload(spec dataset.Spec, plan *dataset.PartitionPlan, arch nn.Arch, seed uint64) *Workload {
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, seedData))
	dataRNG := stats.NewRNG(stats.DeriveSeed(seed, seedData+100))
	profRNG := stats.NewRNG(stats.DeriveSeed(seed, seedProfiles))
	clientData := plan.Materialize(gen, 0.8, dataRNG)
	w := &Workload{Plan: plan, Spec: spec, Arch: arch}
	for i, cd := range clientData {
		w.Clients = append(w.Clients, &fl.Client{
			ID:      i,
			Data:    cd,
			Profile: simnet.SampleProfile(profRNG),
		})
		w.TrainSets = append(w.TrainSets, cd.Train)
	}
	return w
}

// EngineConfig returns the shared training configuration for a workload;
// all strategies in a comparison run with identical configs and seeds.
type EngineConfig struct {
	ClientsPerRound int
	MaxRounds       int
	EvalEvery       int
	Target          float64 // target accuracy for TTA reporting
	Local           fl.LocalTrainConfig
	PerSampleSec    float64
	Dropout         simnet.DropoutModel
	Record          bool
}

// ToFL converts to the engine's configuration for the given workload.
// The TTA target doubles as the engine's early-stop bound: once a
// strategy crosses it, the comparison has its number and further rounds
// only cost wall time. A small overshoot margin keeps the curve past the
// crossing point so interpolation stays well conditioned.
func (c EngineConfig) ToFL(w *Workload, seed uint64) fl.Config {
	stop := 0.0
	if c.Target > 0 {
		stop = c.Target + 0.05
		if stop > 0.99 {
			stop = 0.99
		}
	}
	return fl.Config{
		Arch:                w.Arch,
		Seed:                stats.DeriveSeed(seed, seedEngine),
		Local:               c.Local,
		ClientsPerRound:     c.ClientsPerRound,
		MaxRounds:           c.MaxRounds,
		EvalEvery:           c.EvalEvery,
		TargetAccuracy:      stop,
		PerSampleComputeSec: c.PerSampleSec,
		Dropout:             c.Dropout,
		RecordSelections:    c.Record,
		Tracer:              telem.tracer,
		Metrics:             telem.reg,
	}
}

// StrategySet builds the paper's five comparison strategies for a
// workload: Random, TiFL, Oort, HACCS-P(y) and HACCS-P(X|y). eps <= 0
// disables summary noising; rho is the HACCS latency/loss trade-off.
func StrategySet(w *Workload, eps, rho float64, seed uint64) []fl.Strategy {
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, seedNoise))
	py := core.BuildSummaries(w.TrainSets, core.PY, 0, eps, noiseRNG)
	pxy := core.BuildSummaries(w.TrainSets, core.PXY, 0, eps, noiseRNG)
	return []fl.Strategy{
		selection.NewRandom(),
		selection.NewTiFL(5),
		selection.NewOort(),
		core.NewScheduler(core.Config{Kind: core.PY, Rho: rho, Tracer: telem.tracer, Metrics: telem.reg}, py),
		core.NewScheduler(core.Config{Kind: core.PXY, Rho: rho, Tracer: telem.tracer, Metrics: telem.reg}, pxy),
	}
}

// HACCSOnly builds just the HACCS strategy of the given kind.
func HACCSOnly(w *Workload, kind core.SummaryKind, eps, rho float64, seed uint64) *core.Scheduler {
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, seedNoise))
	sums := core.BuildSummaries(w.TrainSets, kind, 0, eps, noiseRNG)
	return core.NewScheduler(core.Config{Kind: kind, Rho: rho, Tracer: telem.tracer, Metrics: telem.reg}, sums)
}

// HACCSSketch builds the HACCS strategy of the given kind on the
// sketch clustering backend (representative index instead of the dense
// N×N Hellinger matrix), with default sketch options.
func HACCSSketch(w *Workload, kind core.SummaryKind, eps, rho float64, seed uint64) *core.Scheduler {
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, seedNoise))
	sums := core.BuildSummaries(w.TrainSets, kind, 0, eps, noiseRNG)
	return core.NewScheduler(core.Config{
		Kind: kind, Rho: rho, Backend: core.SketchBackend,
		Tracer: telem.tracer, Metrics: telem.reg,
	}, sums)
}

// HACCSOnlyWeighted is HACCSOnly with the §V-D5 intra-cluster weighted
// sampling policy instead of strict min-latency device choice.
func HACCSOnlyWeighted(w *Workload, eps, rho float64, seed uint64) *core.Scheduler {
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, seedNoise))
	sums := core.BuildSummaries(w.TrainSets, core.PY, 0, eps, noiseRNG)
	return core.NewScheduler(core.Config{Kind: core.PY, Rho: rho, IntraCluster: core.PickWeighted}, sums)
}

// specFor returns the dataset spec for a named family at the given
// scale. Quick shrinks images to 10×10 (grayscale) or 12×12 (color).
func specFor(name string, classes int, scale Scale) dataset.Spec {
	var spec dataset.Spec
	switch name {
	case "mnist":
		spec = dataset.SyntheticMNIST()
		spec.Classes = classes
	case "femnist":
		spec = dataset.SyntheticFEMNIST(classes)
	case "cifar":
		spec = dataset.SyntheticCIFAR()
		spec.Classes = classes
	default:
		panic("experiments: unknown dataset family " + name)
	}
	if scale == Quick {
		spec = spec.Compact(8, 8)
	} else {
		// Full scale keeps the paper's client counts and round budgets
		// but renders images at 16x16: pure-Go training at 28x28/32x32
		// would take hours per figure without changing any comparison.
		spec = spec.Compact(16, 16)
	}
	return spec
}

// archFor returns the model family for a spec at the given scale: a
// LeNet-style CNN at Full scale and an MLP at Quick scale (8×8 inputs
// do not survive two 5×5 conv + pool stages).
func archFor(spec dataset.Spec, scale Scale) nn.Arch {
	if scale == Full && spec.Height >= 16 && spec.Width >= 16 {
		return nn.Arch{
			Kind:        "lenet",
			Channels:    spec.Channels,
			Height:      spec.Height,
			Width:       spec.Width,
			Classes:     spec.Classes,
			ConvFilters: [2]int{4, 8},
		}
	}
	return nn.Arch{Kind: "mlp", In: spec.FeatureDim(), Hidden: []int{32}, Classes: spec.Classes}
}

// defaultEngine returns the shared engine parameters at a scale.
func defaultEngine(scale Scale, target float64) EngineConfig {
	if scale == Full {
		return EngineConfig{
			ClientsPerRound: 10,
			MaxRounds:       150,
			EvalEvery:       5,
			Target:          target,
			Local:           fl.LocalTrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05, Momentum: 0},
			PerSampleSec:    0.01,
		}
	}
	return EngineConfig{
		ClientsPerRound: 6,
		MaxRounds:       200,
		EvalEvery:       5,
		Target:          target,
		Local:           fl.LocalTrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05, Momentum: 0},
		PerSampleSec:    0.01,
	}
}

// clientCount returns the roster size at a scale (the paper emulates 50
// clients).
func clientCount(scale Scale) int {
	if scale == Full {
		return 50
	}
	return 30
}

// sampleBounds returns the per-client data volume range at a scale
// ("the amount of data available in each client varies").
func sampleBounds(scale Scale) (lo, hi int) {
	if scale == Full {
		return 300, 800
	}
	return 100, 240
}
