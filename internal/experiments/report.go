package experiments

import (
	"fmt"
	"math"
	"strings"

	"haccs/internal/fl"
	"haccs/internal/metrics"
)

// StrategyRun is one strategy's outcome within a comparison. When the
// comparison runs multiple seeds, TTA is the mean over seeds that
// reached the target, Result holds the first seed's run (for curves),
// and ReachedCount/Repeats record how often the target was met.
type StrategyRun struct {
	Name         string
	Result       *fl.Result
	TTA          float64
	TTAReached   bool
	ReachedCount int
	Repeats      int
}

// CompareReport is the outcome of running several strategies on the same
// workload — the shape of Figs. 5, 6, 8b, 9 and 10.
type CompareReport struct {
	Title  string
	Target float64
	Runs   []StrategyRun
}

// runComparison executes every strategy on an identically rebuilt
// workload and engine configuration. build must return a fresh workload
// per call (given a seed) so no strategy observes another's state; the
// strategy for index i is produced by strat.
func runComparison(title string, n int, target float64,
	build func(seed uint64) (*Workload, EngineConfig),
	strat func(w *Workload, i int, seed uint64) fl.Strategy) *CompareReport {
	return runComparisonSeeds(title, n, target, 1, 0, build, strat)
}

// runComparisonSeeds is runComparison averaged over several seeds
// (baseSeed, baseSeed+101, baseSeed+202, ...): single-seed quick-scale
// TTA comparisons are noisy, and the paper's curves come from far larger
// runs, so headline comparisons average a few seeds.
func runComparisonSeeds(title string, n int, target float64, repeats int, baseSeed uint64,
	build func(seed uint64) (*Workload, EngineConfig),
	strat func(w *Workload, i int, seed uint64) fl.Strategy) *CompareReport {

	if repeats < 1 {
		repeats = 1
	}
	report := &CompareReport{Title: title, Target: target}
	for i := 0; i < n; i++ {
		var run StrategyRun
		run.Repeats = repeats
		sumTTA := 0.0
		for rep := 0; rep < repeats; rep++ {
			seed := baseSeed + uint64(rep)*101
			w, ec := build(seed)
			s := strat(w, i, seed)
			res := fl.NewEngine(ec.ToFL(w, seed), w.Clients, s).Run()
			if rep == 0 {
				run.Name = s.Name()
				run.Result = res
			}
			if tta, ok := metrics.TTA(res.History, target); ok {
				sumTTA += tta
				run.ReachedCount++
			}
		}
		// The target must be met in a majority of seeds to count.
		if run.ReachedCount*2 > repeats {
			run.TTA = sumTTA / float64(run.ReachedCount)
			run.TTAReached = true
		}
		report.Runs = append(report.Runs, run)
	}
	return report
}

// Best returns the run with the lowest reached TTA (falling back to the
// highest final accuracy when nobody reached the target).
func (r *CompareReport) Best() StrategyRun {
	best := -1
	for i, run := range r.Runs {
		if !run.TTAReached {
			continue
		}
		if best == -1 || run.TTA < r.Runs[best].TTA {
			best = i
		}
	}
	if best >= 0 {
		return r.Runs[best]
	}
	for i, run := range r.Runs {
		if best == -1 || run.Result.FinalAccuracy() > r.Runs[best].Result.FinalAccuracy() {
			best = i
		}
	}
	return r.Runs[best]
}

// Get returns the named run, or false.
func (r *CompareReport) Get(name string) (StrategyRun, bool) {
	for _, run := range r.Runs {
		if run.Name == name {
			return run, true
		}
	}
	return StrategyRun{}, false
}

// Table renders the comparison summary: final accuracy, TTA at target
// and the reduction relative to the random baseline.
func (r *CompareReport) Table() *metrics.Table {
	t := metrics.NewTable("strategy", "final-acc", fmt.Sprintf("tta@%.0f%%", r.Target*100), "vs-random")
	baseline := math.NaN()
	if run, ok := r.Get("random"); ok && run.TTAReached {
		baseline = run.TTA
	}
	for _, run := range r.Runs {
		tta := "not reached"
		vs := "-"
		if run.TTAReached {
			tta = fmt.Sprintf("%.1fs", run.TTA)
			if !math.IsNaN(baseline) {
				vs = fmt.Sprintf("%+.0f%%", -100*metrics.Reduction(baseline, run.TTA))
			}
		}
		t.AddRow(run.Name, run.Result.FinalAccuracy(), tta, vs)
	}
	return t
}

// Curves renders each strategy's accuracy-over-virtual-time series (the
// figure's plotted lines) at a modest number of sample points.
func (r *CompareReport) Curves(points int) string {
	var b strings.Builder
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%s:\n", run.Name)
		h := run.Result.History
		step := len(h)/points + 1
		for i := 0; i < len(h); i += step {
			fmt.Fprintf(&b, "  t=%8.1fs  acc=%.3f\n", h[i].Time, h[i].Acc)
		}
		if len(h) > 0 {
			last := h[len(h)-1]
			fmt.Fprintf(&b, "  t=%8.1fs  acc=%.3f (final)\n", last.Time, last.Acc)
		}
	}
	return b.String()
}

// String renders the full report.
func (r *CompareReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	b.WriteString(r.Table().String())
	return b.String()
}
