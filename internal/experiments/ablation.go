package experiments

import (
	"fmt"
	"math"
	"strings"

	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/metrics"
	"haccs/internal/simnet"
	"haccs/internal/stats"
)

// newEngineForReport wires an EngineConfig and workload into an engine.
func newEngineForReport(ec EngineConfig, w *Workload, s fl.Strategy, seed uint64) *fl.Engine {
	return fl.NewEngine(ec.ToFL(w, seed), w.Clients, s)
}

// ClusteringAblation compares OPTICS auto-extraction against DBSCAN at a
// fixed radius on DP-noised P(y) summaries — the DESIGN.md ablation for
// the paper's "OPTICS has one less hyperparameter" argument.
type ClusteringAblation struct {
	Epsilon   float64
	OPTICSAcc float64
	DBSCANAcc map[float64]float64 // eps radius -> recovery accuracy
	// HierarchicalAcc is agglomerative clustering's recovery per
	// linkage, cut at the (oracle) true cluster count — an upper bound
	// DBSCAN/OPTICS must approach without knowing k.
	HierarchicalAcc map[string]float64
	GroundTruth     int // number of true clusters
}

// dbscanRadiusGrid is the radius sweep DBSCAN is given in the ablation;
// OPTICS auto-extraction competes against the best point of this grid
// without being told any radius.
var dbscanRadiusGrid = []float64{0.1, 0.25, 0.4, 0.5, 0.55, 0.6}

// RunClusteringAblation clusters one noised roster with both algorithms.
func RunClusteringAblation(scale Scale, eps float64, seed uint64) *ClusteringAblation {
	classes := 10
	spec := specFor("cifar", classes, scale)
	gen := dataset.NewGenerator(spec, stats.DeriveSeed(seed, seedData))
	rng := stats.NewRNG(stats.DeriveSeed(seed, seedMisc+20))
	plan := dataset.PairedLabelPlan(classes, 2, 500, rng)
	var sets []*dataset.Dataset
	for i := 0; i < plan.NumClients(); i++ {
		sets = append(sets, gen.Generate(plan.Dists[i].Draw(plan.Samples[i], rng), rng))
	}
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, seedNoise+21))
	sums := core.BuildSummaries(sets, core.PY, 0, eps, noiseRNG)
	m := core.DistanceMatrix(sums)

	ab := &ClusteringAblation{
		Epsilon:     eps,
		DBSCANAcc:   map[float64]float64{},
		GroundTruth: classes,
	}
	ab.OPTICSAcc = cluster.ExactRecovery(clusterLabelsFor(sums), plan.Group)
	for _, radius := range dbscanRadiusGrid {
		labels := cluster.DBSCAN(m, radius, 2)
		ab.DBSCANAcc[radius] = cluster.ExactRecovery(labels, plan.Group)
	}
	ab.HierarchicalAcc = map[string]float64{}
	for _, link := range []cluster.Linkage{cluster.SingleLinkage, cluster.CompleteLinkage, cluster.AverageLinkage} {
		labels := cluster.Agglomerative(m, link).CutK(classes)
		ab.HierarchicalAcc[link.String()] = cluster.ExactRecovery(labels, plan.Group)
	}
	return ab
}

// String renders the comparison.
func (a *ClusteringAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Ablation: OPTICS auto-extract vs DBSCAN (eps=%g, %d true clusters) ==\n", a.Epsilon, a.GroundTruth)
	t := metrics.NewTable("algorithm", "radius", "exact-recovery")
	t.AddRow("optics-auto", "-", a.OPTICSAcc)
	for _, r := range dbscanRadiusGrid {
		t.AddRow("dbscan", r, a.DBSCANAcc[r])
	}
	for _, link := range []string{"single", "complete", "average"} {
		t.AddRow("agglomerative-"+link, "oracle-k", a.HierarchicalAcc[link])
	}
	b.WriteString(t.String())
	b.WriteString("agglomerative rows are cut at the true cluster count (an oracle);\n" +
		"density methods must find the structure without being told k.\n")
	return b.String()
}

// LatencyAblation characterizes the Table II latency model: per-category
// round-latency statistics for a reference workload, quantifying the
// straggler effect the schedulers exploit.
type LatencyAblation struct {
	// Mean and P95 latency (seconds) per category, indexed by
	// simnet.Category.
	Mean [4]float64
	P95  [4]float64
	// Count of sampled clients per category.
	Count [4]int
}

// RunLatencyAblation samples n profiles and evaluates the round latency
// each would impose for a fixed compute/model-size point.
func RunLatencyAblation(n int, seed uint64) *LatencyAblation {
	rng := stats.NewRNG(stats.DeriveSeed(seed, seedProfiles))
	perCat := make(map[simnet.Category][]float64)
	const computeSec = 1.0
	const modelBytes = 500_000
	for i := 0; i < n; i++ {
		p := simnet.SampleProfile(rng)
		perCat[p.Category] = append(perCat[p.Category], p.RoundLatency(computeSec, modelBytes))
	}
	ab := &LatencyAblation{}
	for c := simnet.Fast; c <= simnet.VerySlow; c++ {
		ls := perCat[c]
		ab.Count[c] = len(ls)
		if len(ls) == 0 {
			continue
		}
		ab.Mean[c] = stats.Mean(ls)
		ab.P95[c] = stats.Percentile(ls, 95)
	}
	return ab
}

// StragglerRatio returns mean(very-slow latency) / mean(fast latency),
// the headline heterogeneity factor.
func (a *LatencyAblation) StragglerRatio() float64 {
	if a.Mean[simnet.Fast] == 0 {
		return math.NaN()
	}
	return a.Mean[simnet.VerySlow] / a.Mean[simnet.Fast]
}

// String renders the latency table.
func (a *LatencyAblation) String() string {
	var b strings.Builder
	b.WriteString("== Ablation: Table II latency model (1s compute, 500KB model) ==\n")
	t := metrics.NewTable("category", "clients", "mean-latency", "p95-latency")
	for c := simnet.Fast; c <= simnet.VerySlow; c++ {
		t.AddRow(c.String(), a.Count[c], a.Mean[c], a.P95[c])
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "straggler ratio (very-slow / fast): %.2fx\n", a.StragglerRatio())
	return b.String()
}

// SummarySizeAblation verifies the paper's Θ(c) vs Θ(c·p) summary-size
// claim on a concrete roster.
type SummarySizeAblation struct {
	PYBytes  []int
	PXYBytes []int
}

// RunSummarySizeAblation measures summary wire sizes on the standard
// workload.
func RunSummarySizeAblation(scale Scale, seed uint64) *SummarySizeAblation {
	w := buildStandardWorkload("cifar", 10, scale, seed)
	ab := &SummarySizeAblation{}
	for _, d := range w.TrainSets {
		ab.PYBytes = append(ab.PYBytes, core.Summarize(d, core.PY, 0).Bytes())
		ab.PXYBytes = append(ab.PXYBytes, core.Summarize(d, core.PXY, 0).Bytes())
	}
	return ab
}

// String renders mean sizes.
func (a *SummarySizeAblation) String() string {
	toF := func(xs []int) []float64 {
		out := make([]float64, len(xs))
		for i, v := range xs {
			out[i] = float64(v)
		}
		return out
	}
	return fmt.Sprintf("== Ablation: summary wire size ==\nP(y):   mean %.0f bytes\nP(X|y): mean %.0f bytes\n",
		stats.Mean(toF(a.PYBytes)), stats.Mean(toF(a.PXYBytes)))
}
