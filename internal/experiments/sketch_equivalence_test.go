package experiments

import (
	"fmt"
	"testing"

	"haccs/internal/cluster"
	"haccs/internal/core"
	"haccs/internal/dataset"
	"haccs/internal/fl"
	"haccs/internal/stats"
)

// The sketch backend is an approximation of the dense pipeline, and
// this suite pins how good the approximation must be: on the seed
// experiment workloads (majority-noise rosters across dataset families,
// both summary kinds, several seeds, up to 500 clients) the sketch
// path's cluster assignment must agree with the dense path's at
// adjusted Rand index ≥ 0.9. Everything is seeded, so the gate is
// deterministic.

// equivalenceARIFloor is the acceptance bar for dense/sketch agreement.
const equivalenceARIFloor = 0.9

// clusterBoth builds two schedulers over the same summaries — dense and
// sketch — Inits them on an identical roster, and returns both label
// vectors.
func clusterBoth(t *testing.T, w *Workload, kind core.SummaryKind, seed uint64) (dense, sk []int) {
	t.Helper()
	noiseRNG := stats.NewRNG(stats.DeriveSeed(seed, seedNoise))
	sums := core.BuildSummaries(w.TrainSets, kind, 0, 0, noiseRNG)
	infos := make([]fl.ClientInfo, len(w.Clients))
	for i, c := range w.Clients {
		infos[i] = fl.ClientInfo{ID: i, Latency: float64(1 + i), NumSamples: c.Data.Train.Len()}
	}
	d := core.NewScheduler(core.Config{Kind: kind, Rho: 0.5}, sums)
	d.Init(infos, stats.NewRNG(stats.DeriveSeed(seed, seedMisc)))
	// The sketch scheduler gets its own summary slice: both schedulers
	// own their summaries after NewScheduler.
	sums2 := core.BuildSummaries(w.TrainSets, kind, 0, 0, stats.NewRNG(stats.DeriveSeed(seed, seedNoise)))
	s := core.NewScheduler(core.Config{Kind: kind, Rho: 0.5, Backend: core.SketchBackend}, sums2)
	s.Init(infos, stats.NewRNG(stats.DeriveSeed(seed, seedMisc)))
	return d.ClusterLabels(), s.ClusterLabels()
}

// TestSketchDenseEquivalenceStandardWorkloads sweeps the standard §V-A
// comparison workloads (the ones fig5/fig6 race strategies on) across
// families, summary kinds and seeds.
func TestSketchDenseEquivalenceStandardWorkloads(t *testing.T) {
	for _, family := range []string{"cifar", "femnist"} {
		for _, kind := range []core.SummaryKind{core.PY, core.PXY} {
			for _, seed := range []uint64{1, 7, 99} {
				name := fmt.Sprintf("%s/%v/seed%d", family, kind, seed)
				t.Run(name, func(t *testing.T) {
					w := buildStandardWorkload(family, 10, Quick, seed)
					dense, sk := clusterBoth(t, w, kind, seed)
					ari := cluster.AdjustedRand(dense, sk)
					if ari < equivalenceARIFloor {
						t.Errorf("ARI %.3f < %.2f\ndense:  %v\nsketch: %v", ari, equivalenceARIFloor, dense, sk)
					}
				})
			}
		}
	}
}

// TestSketchDenseEquivalenceLargeRoster scales the same check to a
// 500-client majority-noise roster — the largest population the dense
// path is still cheap enough to serve as ground truth for.
func TestSketchDenseEquivalenceLargeRoster(t *testing.T) {
	if testing.Short() {
		t.Skip("500-client roster materialization in -short mode")
	}
	const n, classes = 500, 10
	seed := uint64(5)
	spec := specFor("cifar", classes, Quick)
	planRNG := stats.NewRNG(stats.DeriveSeed(seed, seedMisc+1))
	plan := dataset.MajorityNoisePlan(n, classes, 60, 140, planRNG)
	w := BuildWorkload(spec, plan, archFor(spec, Quick), seed)
	for _, kind := range []core.SummaryKind{core.PY, core.PXY} {
		dense, sk := clusterBoth(t, w, kind, seed)
		ari := cluster.AdjustedRand(dense, sk)
		if ari < equivalenceARIFloor {
			t.Errorf("%v: ARI %.3f < %.2f over %d clients", kind, ari, equivalenceARIFloor, n)
		}
	}
}
