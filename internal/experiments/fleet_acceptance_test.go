package experiments

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"haccs/internal/fleet"
	"haccs/internal/telemetry"
)

// TestFleetEndpointAcceptance is the /debug/fleet acceptance gate: after
// a multi-round run with dropout and a straggler deadline, the JSON the
// endpoint serves must decode to exactly the registry's State snapshot,
// and the workload must have actually exercised the interesting signals
// (straggler cuts, a meaningful fairness index, the HACCS cluster view).
func TestFleetEndpointAcceptance(t *testing.T) {
	eng, reg := resumeEngine(t, 3, nil) // haccs-py: registry gets a ClusterSource
	eng.Run()

	srv, err := telemetry.Serve("127.0.0.1:0", nil, nil,
		telemetry.WithEndpoint("/debug/fleet", fleet.Handler(reg)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var served fleet.State
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if want := reg.State(); !reflect.DeepEqual(served, want) {
		t.Errorf("served state = %+v\nwant %+v", served, want)
	}

	if served.Rounds != resumeRounds {
		t.Errorf("rounds = %d, want %d", served.Rounds, resumeRounds)
	}
	if served.Fairness <= 0 || served.Fairness > 1 {
		t.Errorf("fairness = %v, want in (0,1]", served.Fairness)
	}
	cuts := 0
	for _, c := range served.Clients {
		cuts += c.StragglerCut
	}
	if cuts == 0 {
		t.Error("RoundDeadline=6 workload recorded no straggler cuts")
	}
	if len(served.Clusters) == 0 {
		t.Fatal("HACCS run served no cluster view")
	}
	shareSum := 0.0
	for _, ch := range served.Clusters {
		if len(ch.Members) == 0 {
			t.Errorf("cluster %d has no members", ch.ID)
		}
		shareSum += ch.Share
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("cluster shares sum to %v, want ~1", shareSum)
	}
}
