package telemetry

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func runtimeGaugeValue(t *testing.T, reg *Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("gauge %s not registered", name)
	return 0
}

func TestRuntimeCollectorSamplesAcrossGC(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, 0)
	c.SampleOnce()

	heap := runtimeGaugeValue(t, reg, "haccs_runtime_heap_bytes")
	if heap <= 0 {
		t.Errorf("haccs_runtime_heap_bytes = %v, want > 0", heap)
	}
	gor := runtimeGaugeValue(t, reg, "haccs_runtime_goroutines")
	if gor < 1 {
		t.Errorf("haccs_runtime_goroutines = %v, want >= 1", gor)
	}
	cycles := runtimeGaugeValue(t, reg, "haccs_runtime_gc_cycles")

	// Force a GC and re-sample: the cycle counter must advance and
	// the pause histogram must now have observations, proving the
	// gauges track live runtime state rather than a one-shot read.
	runtime.GC()
	runtime.GC()
	c.SampleOnce()
	if got := runtimeGaugeValue(t, reg, "haccs_runtime_gc_cycles"); got < cycles+2 {
		t.Errorf("gc cycles after 2 forced GCs: got %v, had %v", got, cycles)
	}
	if p99 := runtimeGaugeValue(t, reg, "haccs_runtime_gc_pause_p99_seconds"); p99 <= 0 {
		t.Errorf("haccs_runtime_gc_pause_p99_seconds = %v after forced GC, want > 0", p99)
	}
}

func TestRuntimeCollectorStopLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewRuntimeCollector(NewRegistry(), time.Millisecond)
	c.Start()
	c.Start() // idempotent: must not spawn a second sampler
	time.Sleep(5 * time.Millisecond)
	c.Stop()
	c.Stop() // idempotent on a stopped collector

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRuntimeCollectorNilIsInert(t *testing.T) {
	var c *RuntimeCollector
	c.SampleOnce()
	c.Start()
	c.Stop()
	if got := testing.AllocsPerRun(100, func() { c.SampleOnce() }); got != 0 {
		t.Errorf("nil collector SampleOnce allocs/op = %v, want 0", got)
	}
	if c := NewRuntimeCollector(nil, time.Second); c != nil {
		t.Errorf("NewRuntimeCollector(nil, ...) = %v, want nil", c)
	}
}

func TestSetBuildInfoExposesRevisionAndGoVersion(t *testing.T) {
	reg := NewRegistry()
	SetBuildInfo(reg)
	SetBuildInfo(reg) // re-registering the identical shape must not panic

	found := false
	for _, s := range reg.Snapshot() {
		if s.Name != "haccs_build_info" {
			continue
		}
		found = true
		if s.Value != 1 {
			t.Errorf("haccs_build_info = %v, want 1", s.Value)
		}
		var haveRev, haveGo bool
		for _, p := range s.Pairs {
			switch p[0] {
			case "revision":
				haveRev = p[1] != ""
			case "go_version":
				haveGo = strings.HasPrefix(p[1], "go")
			}
		}
		if !haveRev || !haveGo {
			t.Errorf("haccs_build_info pairs = %v, want revision and go_version", s.Pairs)
		}
	}
	if !found {
		t.Fatal("haccs_build_info not registered")
	}
}
