package telemetry

import (
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestRegistryConcurrentScrape hammers Histogram.Observe/Snapshot and
// counter/gauge updates from many goroutines while the Prometheus
// handler scrapes over real HTTP. Run under -race (the CI race step
// includes this package); the assertion is simply that nothing tears.
func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, NewRingSink(64))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		writers = 8
		iters   = 500
	)
	hist := reg.Histogram("haccs_client_train_seconds", "train time", []float64{0.1, 1, 10})
	hv := reg.HistogramVec("haccs_span_seconds", "span time", "span", SpanBuckets)
	ctr := reg.Counter("haccs_rounds_total", "rounds")
	cv := reg.CounterVec("haccs_picks_total", "picks", "cluster")
	g := reg.Gauge("haccs_clock", "clock")

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			span := []string{"select", "dispatch", "collect"}[w%3]
			for i := 0; i < iters; i++ {
				hist.Observe(float64(i%20) / 2)
				hv.With(span).Observe(float64(i) * 1e-4)
				ctr.Inc()
				cv.With("0").Add(2)
				g.Set(float64(i))
				if i%50 == 0 {
					_ = hist.Snapshot()
					_ = reg.Snapshot()
				}
			}
		}(w)
	}
	// Scrapers: concurrent HTTP GETs of /metrics while writers run.
	scrapeErr := make(chan error, 4)
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				resp, err := http.Get("http://" + srv.Addr() + "/metrics")
				if err != nil {
					scrapeErr <- err
					return
				}
				_, err = io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					scrapeErr <- err
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	if got, want := ctr.Value(), float64(writers*iters); got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	snap := hist.Snapshot()
	if snap.Count != writers*iters {
		t.Errorf("histogram count = %d, want %d", snap.Count, writers*iters)
	}
	var bucketSum uint64
	for _, c := range snap.Counts {
		bucketSum += c
	}
	if bucketSum != snap.Count {
		t.Errorf("bucket counts sum %d != count %d", bucketSum, snap.Count)
	}
}
