package telemetry

import (
	"strings"
	"testing"
)

// TestStatsdLines checks the line protocol rendering and the
// counter-delta behaviour across flushes.
func TestStatsdLines(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("haccs_rounds_total", "").Add(3)
	reg.Gauge("haccs_clusters", "").Set(4)
	reg.CounterVec("haccs_clustering_runs_total", "", "algo").With("optics").Inc()
	h := reg.Histogram("haccs_round_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(1.5)

	sd := NewStatsdWriter("haccs")
	var sb strings.Builder
	if err := sd.EmitTo(&sb, reg); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"haccs.haccs_rounds_total:3|c\n",
		"haccs.haccs_clusters:4|g\n",
		"haccs.haccs_clustering_runs_total.optics:1|c\n",
		"haccs.haccs_round_seconds.sum:2|c\n",
		"haccs.haccs_round_seconds.count:2|c\n",
		"haccs.haccs_round_seconds.mean:1000|ms\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing line %q in:\n%s", want, got)
		}
	}

	// Nothing changed: the second flush must emit no counter lines and
	// keep exporting the gauge.
	sb.Reset()
	if err := sd.EmitTo(&sb, reg); err != nil {
		t.Fatal(err)
	}
	got = sb.String()
	if strings.Contains(got, "|c") {
		t.Errorf("idle flush emitted counter deltas:\n%s", got)
	}
	if !strings.Contains(got, "haccs.haccs_clusters:4|g\n") {
		t.Errorf("idle flush dropped the gauge:\n%s", got)
	}

	// A counter increment flushes only its delta.
	reg.Counter("haccs_rounds_total", "").Add(2)
	sb.Reset()
	if err := sd.EmitTo(&sb, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "haccs.haccs_rounds_total:2|c\n") {
		t.Errorf("delta flush wrong:\n%s", sb.String())
	}
}
