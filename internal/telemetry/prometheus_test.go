package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte-for-byte: the
// scrape output is a contract with external collectors, so any change
// here is a breaking change.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("haccs_rounds_total", "Training rounds completed by the engine.").Add(3)
	reg.Gauge("haccs_clusters", "Schedulable clusters.").Set(5)
	tv := reg.GaugeVec("haccs_cluster_theta", "Eq. 7 sampling weight.", "cluster")
	tv.With("0").Set(0.25)
	tv.With("1").Set(0.75)
	h := reg.Histogram("haccs_client_train_seconds", "Local training wall time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP haccs_client_train_seconds Local training wall time.
# TYPE haccs_client_train_seconds histogram
haccs_client_train_seconds_bucket{le="0.1"} 2
haccs_client_train_seconds_bucket{le="1"} 3
haccs_client_train_seconds_bucket{le="+Inf"} 4
haccs_client_train_seconds{quantile="0.5"} 0.1
haccs_client_train_seconds{quantile="0.9"} 1
haccs_client_train_seconds{quantile="0.99"} 1
haccs_client_train_seconds_sum 30.6
haccs_client_train_seconds_count 4
# HELP haccs_cluster_theta Eq. 7 sampling weight.
# TYPE haccs_cluster_theta gauge
haccs_cluster_theta{cluster="0"} 0.25
haccs_cluster_theta{cluster="1"} 0.75
# HELP haccs_clusters Schedulable clusters.
# TYPE haccs_clusters gauge
haccs_clusters 5
# HELP haccs_rounds_total Training rounds completed by the engine.
# TYPE haccs_rounds_total counter
haccs_rounds_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
