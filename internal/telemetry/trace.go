package telemetry

// The round trace is a structured event stream: one typed event per
// scheduler/engine decision, emitted through the Tracer interface. A
// nil Tracer is the documented "off" state — every instrumentation
// site guards with `if tracer != nil`, so the fast path costs one
// predictable branch (see BenchmarkEngineRun_NilTelemetry).

// Event kinds. The set (and the fields each kind fills) is part of the
// documented observability contract — see DESIGN.md "Observability".
const (
	// KindRoundStart opens a round: Round.
	KindRoundStart = "round_start"
	// KindUnavailable reports the clients dropped out this round:
	// Round, Clients.
	KindUnavailable = "unavailable"
	// KindClusterSampled is one Weighted-SRSWR draw by the HACCS
	// scheduler: Round, Cluster, Theta, Tau, ACL, ACLShare.
	KindClusterSampled = "cluster_sampled"
	// KindClientPicked is the device chosen within a sampled cluster:
	// Round, Cluster, Client, Latency.
	KindClientPicked = "client_picked"
	// KindSelection is the engine-level view of the full round
	// selection: Round, Clients (selection order).
	KindSelection = "selection"
	// KindClientTrained is one finished local training job: Round,
	// Client, Loss, NumSamples, WallSec (host time), VirtualSec
	// (simulated round latency).
	KindClientTrained = "client_trained"
	// KindAggregated closes the FedAvg step: Round, Clients (count via
	// len), VirtualSec (round makespan), Clock.
	KindAggregated = "aggregated"
	// KindEvaluated is a global-model evaluation: Round, Acc, Loss,
	// Clock.
	KindEvaluated = "evaluated"
	// KindReclustered reports a (re-)clustering pass: Clusters,
	// WallSec. Round is -1 for the Init-time pass.
	KindReclustered = "reclustered"
	// KindNetRound is one flnet coordinator round completing: Round,
	// Clients, WallSec.
	KindNetRound = "net_round"
	// KindStragglerCut reports the selected clients whose updates were
	// discarded at the round deadline: Round, Clients (cut, selection
	// order), VirtualSec (the deadline).
	KindStragglerCut = "straggler_cut"
	// KindClientFailed reports selected clients whose transport failed
	// mid-round (disconnect, protocol violation); they are excluded
	// from aggregation and marked dead for future rounds: Round,
	// Clients.
	KindClientFailed = "client_failed"
	// KindSpan is one completed timed span of the round lifecycle:
	// Span (name), TraceID, SpanID, ParentID (absent for roots), Round,
	// Client (-1 unless client-scoped), StartSec (host seconds since
	// the tracer started; -1 for foreign spans shipped over the wire),
	// WallSec (duration).
	KindSpan = "span"
	// KindClusterState is the per-round introspection record of one
	// cluster's live scheduling state: Round, Cluster, Theta, Tau, ACL,
	// ACLShare, Clients (member IDs). Emitted once per cluster per
	// Select call, it is the flight-recorder form of /debug/selection.
	KindClusterState = "cluster_state"
	// KindCheckpointSaved reports one durable run-state snapshot
	// reaching disk: Round (rounds completed at capture), Bytes
	// (encoded snapshot size), WallSec (capture + write duration), Path
	// (the store directory).
	KindCheckpointSaved = "checkpoint_saved"
	// KindUpdateBuffered is one client update landing in the async
	// aggregation buffer: Round (the scheduling cycle that popped it),
	// Client, Staleness (model versions behind at buffering time), Fill
	// (buffer occupancy after the insert), Clock.
	KindUpdateBuffered = "update_buffered"
	// KindUpdateStale is one client update discarded because its
	// staleness exceeded the async driver's bound: Round, Client,
	// Staleness, Clock.
	KindUpdateStale = "update_stale"
	// KindAggregateAsync closes one buffered aggregation: Round,
	// Clients (buffer order), Fill (updates folded), Staleness (the
	// maximum staleness in the buffer), VirtualSec (the cycle's virtual
	// duration), Clock.
	KindAggregateAsync = "aggregate_async"
	// KindShardReport is one shard's contribution arriving at the root
	// aggregator: Round, Shard, Clients (the shard's reporters in
	// selection order), NumSamples (the partial aggregate's total sample
	// weight), WallSec (the shard round-trip as seen by the root),
	// Staleness (async: root versions behind at merge time), Clock (the
	// shard's local virtual clock).
	KindShardReport = "shard_report"
	// KindShardMerge closes one hierarchical aggregation at the root:
	// Round, Fill (shards folded), NumSamples (total sample weight),
	// WallSec (root aggregation seconds), Clock (root virtual clock
	// after the merge).
	KindShardMerge = "shard_merge"
	// KindShardFailed reports a whole-shard round-trip failure: Round,
	// Shard, Clients (the shard's selected clients whose updates were
	// discarded this round; they stay alive, unlike transport-failed
	// clients).
	KindShardFailed = "shard_failed"
	// KindFleetHealth is the per-round fleet registry reading. The
	// fleet-level record (Cluster -1) carries Fairness (Jain's index
	// over cumulative selection counts) and Clock; the per-cluster
	// records (Cluster >= 0) carry Share (the cluster's cumulative
	// selection share), Theta (the scheduler's normalized θ target
	// share) and Drift (Hellinger distance of the cluster's current
	// label-distribution centroid from its centroid at cluster time).
	KindFleetHealth = "fleet_health"
)

// Event is one record in the round trace. It is a flat union: Kind
// says which fields are meaningful (documented on the Kind*
// constants). Index fields that may legitimately be zero (Cluster,
// Client) use -1 for "not applicable" so the JSONL form stays
// round-trippable without pointer fields.
type Event struct {
	Kind  string `json:"kind"`
	Round int    `json:"round"`

	Cluster int   `json:"cluster"`
	Client  int   `json:"client"`
	Shard   int   `json:"shard"`
	Clients []int `json:"clients,omitempty"`

	// Theta = Rho*Tau + (1-Rho)*ACLShare is the eq. 7 cluster sampling
	// weight; Tau is the latency term, ACL the average cluster loss,
	// ACLShare its normalized share.
	Theta    float64 `json:"theta,omitempty"`
	Tau      float64 `json:"tau,omitempty"`
	ACL      float64 `json:"acl,omitempty"`
	ACLShare float64 `json:"acl_share,omitempty"`

	Latency    float64 `json:"latency,omitempty"`     // virtual seconds
	WallSec    float64 `json:"wall_sec,omitempty"`    // host seconds
	VirtualSec float64 `json:"virtual_sec,omitempty"` // simulated seconds
	Clock      float64 `json:"clock,omitempty"`       // virtual clock after the step

	Loss       float64 `json:"loss,omitempty"`
	Acc        float64 `json:"acc,omitempty"`
	NumSamples int     `json:"num_samples,omitempty"`
	Clusters   int     `json:"clusters,omitempty"`

	// Checkpoint fields (KindCheckpointSaved): the encoded snapshot
	// size and the store directory it landed in.
	Bytes int    `json:"bytes,omitempty"`
	Path  string `json:"path,omitempty"`

	// Span fields (KindSpan): the span name and its hex-rendered
	// trace/span/parent IDs (see FormatSpanID). StartSec is the span's
	// start offset in host seconds since its tracer was constructed, or
	// -1 for foreign spans whose clock is not comparable.
	Span     string  `json:"span,omitempty"`
	TraceID  string  `json:"trace_id,omitempty"`
	SpanID   string  `json:"span_id,omitempty"`
	ParentID string  `json:"parent_id,omitempty"`
	StartSec float64 `json:"start_sec,omitempty"`

	// Async fields (KindUpdateBuffered, KindUpdateStale,
	// KindAggregateAsync): the update's staleness in model versions and
	// the aggregation-buffer occupancy after the step.
	Staleness int `json:"staleness,omitempty"`
	Fill      int `json:"fill,omitempty"`

	// Reason is the human-readable rationale attached to a decision
	// event (KindClientPicked: the intra-cluster policy that chose the
	// device).
	Reason string `json:"reason,omitempty"`

	// Fleet health fields (KindFleetHealth): Jain's fairness index over
	// cumulative selection counts (fleet-level record), one cluster's
	// cumulative selection share, and its centroid drift since cluster
	// time (per-cluster records).
	Fairness float64 `json:"fairness,omitempty"`
	Share    float64 `json:"share,omitempty"`
	Drift    float64 `json:"drift,omitempty"`
}

// newEvent returns an event with the index fields neutralized.
func newEvent(kind string, round int) Event {
	return Event{Kind: kind, Round: round, Cluster: -1, Client: -1, Shard: -1}
}

// RoundStart builds a round-opening event.
func RoundStart(round int) Event { return newEvent(KindRoundStart, round) }

// Unavailable builds a dropout event listing the unavailable clients.
func Unavailable(round int, clients []int) Event {
	e := newEvent(KindUnavailable, round)
	e.Clients = clients
	return e
}

// ClusterSampled builds one SRSWR draw event with the eq. 7 weight
// decomposition.
func ClusterSampled(round, cluster int, theta, tau, acl, aclShare float64) Event {
	e := newEvent(KindClusterSampled, round)
	e.Cluster = cluster
	e.Theta, e.Tau, e.ACL, e.ACLShare = theta, tau, acl, aclShare
	return e
}

// ClientPicked builds an intra-cluster device choice event; reason
// names the policy that made the pick (e.g. "fastest", "weighted").
func ClientPicked(round, cluster, client int, latency float64, reason string) Event {
	e := newEvent(KindClientPicked, round)
	e.Cluster, e.Client, e.Latency = cluster, client, latency
	e.Reason = reason
	return e
}

// Selection builds the engine-level whole-round selection event.
func Selection(round int, clients []int) Event {
	e := newEvent(KindSelection, round)
	e.Clients = clients
	return e
}

// ClientTrained builds a local-training completion event.
func ClientTrained(round, client int, loss float64, numSamples int, wallSec, virtualSec float64) Event {
	e := newEvent(KindClientTrained, round)
	e.Client = client
	e.Loss, e.NumSamples, e.WallSec, e.VirtualSec = loss, numSamples, wallSec, virtualSec
	return e
}

// Aggregated builds the FedAvg completion event.
func Aggregated(round int, clients []int, roundVirtualSec, clock float64) Event {
	e := newEvent(KindAggregated, round)
	e.Clients = clients
	e.VirtualSec, e.Clock = roundVirtualSec, clock
	return e
}

// Evaluated builds a global evaluation event.
func Evaluated(round int, acc, loss, clock float64) Event {
	e := newEvent(KindEvaluated, round)
	e.Acc, e.Loss, e.Clock = acc, loss, clock
	return e
}

// Reclustered builds a clustering-pass event (round -1 = Init).
func Reclustered(round, clusters int, wallSec float64) Event {
	e := newEvent(KindReclustered, round)
	e.Clusters, e.WallSec = clusters, wallSec
	return e
}

// NetRound builds a coordinator round-completion event.
func NetRound(round int, clients []int, wallSec float64) Event {
	e := newEvent(KindNetRound, round)
	e.Clients, e.WallSec = clients, wallSec
	return e
}

// StragglerCut builds a deadline-cutoff event listing the clients whose
// updates were discarded.
func StragglerCut(round int, clients []int, deadline float64) Event {
	e := newEvent(KindStragglerCut, round)
	e.Clients, e.VirtualSec = clients, deadline
	return e
}

// ClientFailed builds a transport-failure event listing the clients that
// died mid-round.
func ClientFailed(round int, clients []int) Event {
	e := newEvent(KindClientFailed, round)
	e.Clients = clients
	return e
}

// SpanEnded builds a completed-span event. parent 0 marks a trace
// root; startSec -1 marks a foreign span with an incomparable clock.
func SpanEnded(name string, trace, span, parent uint64, round, client int, startSec, durSec float64) Event {
	e := newEvent(KindSpan, round)
	e.Span = name
	e.TraceID = FormatSpanID(trace)
	e.SpanID = FormatSpanID(span)
	if parent != 0 {
		e.ParentID = FormatSpanID(parent)
	}
	e.Client = client
	e.StartSec = startSec
	e.WallSec = durSec
	return e
}

// ClusterState builds the per-round introspection record of one
// cluster's scheduling state. members is retained by the event — pass a
// copy.
func ClusterState(round, cluster int, theta, tau, acl, aclShare float64, members []int) Event {
	e := newEvent(KindClusterState, round)
	e.Cluster = cluster
	e.Theta, e.Tau, e.ACL, e.ACLShare = theta, tau, acl, aclShare
	e.Clients = members
	return e
}

// CheckpointSaved builds a snapshot-persisted event. round is the
// number of rounds completed at capture time.
func CheckpointSaved(round, bytes int, wallSec float64, path string) Event {
	e := newEvent(KindCheckpointSaved, round)
	e.Bytes, e.WallSec, e.Path = bytes, wallSec, path
	return e
}

// UpdateBuffered builds an async buffer-insert event.
func UpdateBuffered(round, client, staleness, fill int, clock float64) Event {
	e := newEvent(KindUpdateBuffered, round)
	e.Client = client
	e.Staleness, e.Fill = staleness, fill
	e.Clock = clock
	return e
}

// UpdateStale builds an async stale-drop event for an update whose
// staleness exceeded the configured bound.
func UpdateStale(round, client, staleness int, clock float64) Event {
	e := newEvent(KindUpdateStale, round)
	e.Client = client
	e.Staleness = staleness
	e.Clock = clock
	return e
}

// AggregateAsync builds the buffered-aggregation completion event.
// clients is retained by the event — pass a copy in buffer order.
func AggregateAsync(round int, clients []int, maxStaleness int, cycleVirtualSec, clock float64) Event {
	e := newEvent(KindAggregateAsync, round)
	e.Clients = clients
	e.Fill = len(clients)
	e.Staleness = maxStaleness
	e.VirtualSec, e.Clock = cycleVirtualSec, clock
	return e
}

// FleetHealth builds the fleet-level health record for one round:
// Jain's fairness index over cumulative selection counts and the
// virtual clock at observation time.
func FleetHealth(round int, fairness, clock float64) Event {
	e := newEvent(KindFleetHealth, round)
	e.Fairness, e.Clock = fairness, clock
	return e
}

// FleetClusterHealth builds the per-cluster health record for one
// round: the cluster's cumulative selection share, the scheduler's
// normalized θ target share, and the centroid drift since cluster time.
func FleetClusterHealth(round, cluster int, share, thetaShare, drift float64) Event {
	e := newEvent(KindFleetHealth, round)
	e.Cluster = cluster
	e.Share, e.Theta, e.Drift = share, thetaShare, drift
	return e
}

// ShardReport builds the event for one shard partial landing at the
// root aggregator. reporters is retained by the event — pass a copy in
// the shard's selection order. staleness is 0 in sync mode.
func ShardReport(round, shard int, reporters []int, samples int, wallSec float64, staleness int, shardClock float64) Event {
	e := newEvent(KindShardReport, round)
	e.Shard = shard
	e.Clients = reporters
	e.NumSamples = samples
	e.WallSec = wallSec
	e.Staleness = staleness
	e.Clock = shardClock
	return e
}

// ShardMerge builds the root-side hierarchical aggregation event:
// shards folded, total sample weight, aggregation wall time, and the
// root virtual clock after the merge.
func ShardMerge(round, shards, samples int, wallSec, clock float64) Event {
	e := newEvent(KindShardMerge, round)
	e.Fill = shards
	e.NumSamples = samples
	e.WallSec = wallSec
	e.Clock = clock
	return e
}

// ShardFailed builds a whole-shard failure event listing the shard's
// selected clients whose updates were discarded this round.
func ShardFailed(round, shard int, clients []int) Event {
	e := newEvent(KindShardFailed, round)
	e.Shard = shard
	e.Clients = clients
	return e
}

// Tracer receives trace events. Implementations must be safe for
// concurrent use: the engine emits ClientTrained from its worker
// goroutines. A nil Tracer disables tracing; callers guard, sinks
// never see nil receivers.
type Tracer interface {
	Emit(e Event)
}

// MultiTracer fans an event out to several sinks, skipping nils.
type MultiTracer []Tracer

// Emit implements Tracer.
func (m MultiTracer) Emit(e Event) {
	for _, t := range m {
		if t != nil {
			t.Emit(e)
		}
	}
}

// Combine returns a single Tracer over the non-nil arguments: nil when
// none remain, the sink itself when exactly one does, a MultiTracer
// otherwise.
func Combine(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return MultiTracer(live)
}
